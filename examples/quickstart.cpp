// Quickstart: bring up a small Autonet, let it configure itself, and send
// some packets.
//
//   $ ./examples/quickstart
//
// This walks the library's basic flow: describe a physical installation
// (TopoSpec), instantiate it (Network), boot the switch control programs,
// wait for the distributed reconfiguration to converge, and exchange
// host-to-host traffic.
#include <cstdio>

#include "src/core/network.h"
#include "src/topo/spec.h"

using namespace autonet;

int main() {
  // A 2x2 torus of switches with one host on each switch.  Any topology
  // works: switches may be cabled arbitrarily (section 3.2).
  TopoSpec spec = MakeTorus(2, 2, /*hosts_per_switch=*/1);
  std::printf("topology: %d switches, %zu cables, %zu hosts\n",
              static_cast<int>(spec.switches.size()), spec.cables.size(),
              spec.hosts.size());

  Network net(std::move(spec));
  net.Boot();  // power on every Autopilot and host driver

  // The switches discover their neighbors, elect a spanning-tree root,
  // assign short addresses, and load up*/down* forwarding tables — all
  // without any management action (section 3.3).
  if (!net.WaitForConsistency(60 * kSecond)) {
    std::printf("network failed to converge: %s\n",
                net.CheckConsistency().c_str());
    return 1;
  }
  net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond);
  std::printf("converged at t=%.1f ms (epoch %llu)\n",
              net.sim().now() / 1e6,
              static_cast<unsigned long long>(net.autopilot_at(0).epoch()));

  for (int h = 0; h < net.num_hosts(); ++h) {
    std::printf("  %s registered with short address %s\n",
                net.host_at(h).name().c_str(),
                net.driver_at(h).short_address().ToString().c_str());
  }

  // Send a packet from every host to every other host.
  int sent = 0;
  for (int a = 0; a < net.num_hosts(); ++a) {
    for (int b = 0; b < net.num_hosts(); ++b) {
      if (a != b && net.SendData(a, b, 128)) {
        ++sent;
      }
    }
  }
  net.Run(10 * kMillisecond);

  int delivered = 0;
  for (int h = 0; h < net.num_hosts(); ++h) {
    for (const Delivery& d : net.inbox(h)) {
      if (d.intact()) {
        ++delivered;
      }
    }
  }
  std::printf("traffic: %d/%d packets delivered intact\n", delivered, sent);

  // Cut a trunk cable: the network notices, reconfigures around it, and
  // traffic keeps flowing on the surviving links.
  std::printf("cutting a switch-to-switch cable...\n");
  net.CutCable(0);
  net.WaitForConsistency(net.sim().now() + 60 * kSecond);
  std::printf("reconfigured in %.0f ms\n",
              net.LastReconfig().Duration() / 1e6);

  net.ClearInboxes();
  net.SendData(0, net.num_hosts() - 1, 128);
  net.Run(10 * kMillisecond);
  std::printf("post-failure delivery: %s\n",
              !net.inbox(net.num_hosts() - 1).empty() ? "ok" : "FAILED");
  return 0;
}
