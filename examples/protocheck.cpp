// Protocol correctness CLI: the deterministic message fuzzer and the bounded
// interleaving explorer.  Exit status is 0 only when every check held;
// otherwise each finding is printed with a one-line reproducer, so a failure
// anywhere reduces to a single replayable command.
//
//   protocheck --fuzz 20000 --fuzz-seed 1   round-trip fuzz every parser
//   protocheck --corpus FILE                check a committed corpus file
//   protocheck --inject 200 --topo small3 --seed 7
//                                           fuzz a live converged network
//   protocheck --sweep small3 --budget 50000
//                                           explore same-tick interleavings
//                                           around epoch transitions
//   protocheck --replay small3:cut0+restore:o3:d12.1
//                                           replay one schedule (the
//                                           reproducer form)
//   protocheck --report out.json            write the sweep report
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/check/explore.h"
#include "src/check/fuzz.h"

using namespace autonet;
using namespace autonet::check;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --fuzz N          round-trip fuzz cases per message type\n"
      "  --fuzz-seed S     fuzzer seed (default 1)\n"
      "  --corpus FILE     check a corpus of <type>:<accept|reject>:<hex>\n"
      "  --inject N        inject N mutated bodies into a live network\n"
      "  --inject-target T parsers to hit: switch, host, all (default\n"
      "                    switch; host covers the driver + SRP client)\n"
      "  --sweep TOPO      explore interleavings on this topology\n"
      "  --budget N        schedule budget for the sweep (default 50000)\n"
      "  --max-points N    decision points recorded per schedule (default 64)\n"
      "  --replay ID       replay one schedule id\n"
      "  --topo NAME       topology for --inject (default small3)\n"
      "  --seed S          seed for --inject (default 1)\n"
      "  --jobs N          worker threads (default: hardware concurrency)\n"
      "  --report FILE     write the sweep's JSON report\n"
      "  --list            print known topologies, run nothing\n",
      argv0);
  return 2;
}

void PrintFindings(const std::vector<FuzzFinding>& findings) {
  for (const FuzzFinding& f : findings) {
    std::printf("  [%s/%s] %s\n", f.type.empty() ? "net" : f.type.c_str(),
                f.mutation.c_str(), f.detail.c_str());
    if (!f.hex.empty()) {
      std::printf("    body: %s\n", f.hex.c_str());
    }
    if (!f.reproducer.empty()) {
      std::printf("    reproduce: %s\n", f.reproducer.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int fuzz_cases = 0;
  std::uint64_t fuzz_seed = 1;
  std::string corpus_file;
  int inject_count = 0;
  std::string inject_target = "switch";
  std::string sweep_topo;
  int budget = 50000;
  int max_points = 64;
  std::string replay_id;
  std::string topo = "small3";
  std::uint64_t seed = 1;
  int jobs = 0;
  std::string report_file;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--fuzz") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      fuzz_cases = std::atoi(v);
    } else if (arg == "--fuzz-seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      fuzz_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--corpus") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      corpus_file = v;
    } else if (arg == "--inject") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      inject_count = std::atoi(v);
    } else if (arg == "--inject-target") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      inject_target = v;
    } else if (arg == "--sweep") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sweep_topo = v;
    } else if (arg == "--budget") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      budget = std::atoi(v);
    } else if (arg == "--max-points") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      max_points = std::atoi(v);
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      replay_id = v;
    } else if (arg == "--topo") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      topo = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      jobs = std::atoi(v);
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      report_file = v;
    } else if (arg == "--list") {
      list_only = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (list_only) {
    std::printf("check topologies:");
    for (const std::string& name : CheckTopologyNames()) {
      std::printf(" %s", name.c_str());
    }
    std::printf(" (plus any chaos topology name)\n");
    return 0;
  }
  if (fuzz_cases <= 0 && corpus_file.empty() && inject_count <= 0 &&
      sweep_topo.empty() && replay_id.empty()) {
    return Usage(argv[0]);
  }

  bool all_green = true;

  if (fuzz_cases > 0) {
    FuzzReport report = FuzzRoundTrip(fuzz_seed, fuzz_cases);
    std::printf("fuzz: %d cases (seed %llu): %d accepted, %d rejected, "
                "%zu findings\n",
                report.cases, static_cast<unsigned long long>(fuzz_seed),
                report.accepted, report.rejected, report.findings.size());
    PrintFindings(report.findings);
    all_green = all_green && report.ok();
  }

  if (!corpus_file.empty()) {
    std::vector<CorpusEntry> entries;
    std::string error;
    if (!LoadCorpus(corpus_file, &entries, &error)) {
      std::fprintf(stderr, "%s: %s\n", corpus_file.c_str(), error.c_str());
      return 2;
    }
    FuzzReport report = CheckCorpus(entries);
    std::printf("corpus: %d entries: %zu findings\n", report.cases,
                report.findings.size());
    PrintFindings(report.findings);
    all_green = all_green && report.ok();
  }

  if (inject_count > 0) {
    InjectConfig config;
    config.topo = topo;
    config.seed = seed;
    config.count = inject_count;
    config.target = inject_target;
    InjectReport report = FuzzInject(config);
    std::printf("inject: %d mutated bodies into %s [%s] (seed %llu): "
                "epoch %llu -> %llu, %zu findings\n",
                report.injected, config.topo.c_str(), config.target.c_str(),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(report.epoch_before),
                static_cast<unsigned long long>(report.epoch_after),
                report.findings.size());
    PrintFindings(report.findings);
    all_green = all_green && report.ok();
  }

  if (!replay_id.empty()) {
    auto id = ScheduleId::FromString(replay_id);
    if (!id) {
      std::fprintf(stderr, "bad schedule id '%s'\n", replay_id.c_str());
      return 2;
    }
    ExploreConfig config;
    config.topo = id->topo;
    config.max_decision_points = max_points;
    ScheduleResult result = RunSchedule(config, *id);
    std::printf("replay %s: %s, %d decision points, log %016llx\n",
                result.id.c_str(), result.ok ? "ok" : "VIOLATION",
                result.decision_points,
                static_cast<unsigned long long>(result.log_hash));
    for (const chaos::Violation& v : result.violations) {
      std::printf("  [%s] %s\n    reproduce: %s\n", v.oracle.c_str(),
                  v.detail.c_str(), v.reproducer.c_str());
    }
    all_green = all_green && result.ok;
  }

  if (!sweep_topo.empty()) {
    ExploreConfig config;
    config.topo = sweep_topo;
    config.budget = budget;
    config.max_decision_points = max_points;
    config.jobs = jobs;
    ExploreReport report = Explore(config);
    std::printf(
        "sweep %s: %zu schedules (%d baselines, %llu deviations possible, "
        "%llu skipped, %llu dropped decisions) on %d workers in %.0f ms: "
        "%d passed, %d failed\n",
        report.topo.c_str(), report.runs.size(), report.baselines,
        static_cast<unsigned long long>(report.deviations_possible),
        static_cast<unsigned long long>(report.schedules_skipped),
        static_cast<unsigned long long>(report.dropped_decisions),
        report.jobs, report.wall_ms, report.passed, report.failed);
    if (!report_file.empty()) {
      if (!report.WriteJson(report_file)) {
        std::fprintf(stderr, "cannot write %s\n", report_file.c_str());
        return 2;
      }
      std::printf("report: %s\n", report_file.c_str());
    }
    if (!report.AllPassed()) {
      std::printf("\nviolations:\n");
      for (const ScheduleResult& r : report.runs) {
        for (const chaos::Violation& v : r.violations) {
          std::printf("  [%s] %s\n    reproduce: %s\n", v.oracle.c_str(),
                      v.detail.c_str(), v.reproducer.c_str());
        }
      }
    }
    all_green = all_green && report.AllPassed();
  }

  if (!all_green) {
    return 1;
  }
  std::printf("all checks green\n");
  return 0;
}
