// Chaos campaign CLI: sweeps fault scenarios x topologies x seeds in
// parallel, judges every run with the invariant-oracle battery, and writes a
// JSON campaign report.  Exit status is 0 only when every oracle held in
// every run; otherwise the violations' one-line reproducers are printed so a
// failure anywhere reduces to a single replayable command.
//
//   chaosrun                          run the built-in corpus on the
//                                     standard topology matrix, 5 seeds
//   chaosrun --seeds 8 --jobs 4       wider sweep, bounded parallelism
//   chaosrun --scenario link-flap --topo ring8 --seed 3
//                                     replay one run (the reproducer form)
//   chaosrun --corpus my.chaos        external scenario file
//   chaosrun --workload 'rpc'         drive an application workload in every
//                                     run and judge the SLO oracles too
//   chaosrun --slo-corpus             run the built-in SLO corpus (scenarios
//                                     with their own workload lines)
//   chaosrun --adversary 'root-chase' arm the feedback-driven fault
//                                     adversary in every run
//   chaosrun --adversary-corpus       run the built-in adversarial corpus
//                                     (every strategy + regressions)
//   chaosrun --report out.json        write the campaign report
//   chaosrun --compare-jobs1          rerun single-threaded, record speedup
//   chaosrun --list / --dump-corpus   inspect what would run
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/adversary/spec.h"
#include "src/chaos/corpus.h"
#include "src/chaos/runner.h"
#include "src/workload/spec.h"

using namespace autonet;
using namespace autonet::chaos;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --corpus FILE     scenario file (default: built-in corpus)\n"
      "  --slo-corpus      use the built-in SLO corpus (workload scenarios)\n"
      "  --workload SPEC   campaign workload, e.g. 'rpc bytes 256 window 2'\n"
      "  --adversary SPEC  campaign adversary, e.g. 'root-chase moves 3'\n"
      "  --adversary-corpus  use the built-in adversarial corpus\n"
      "  --scenario NAME   run only this scenario (repeatable)\n"
      "  --topo NAME       run only this topology (repeatable)\n"
      "  --topos all       use every registered topology\n"
      "  --seeds N         seeds 0..N-1 (default 5)\n"
      "  --seed N          run only this seed (repeatable)\n"
      "  --jobs N          worker threads (default: hardware concurrency)\n"
      "  --report FILE     write the JSON campaign report\n"
      "  --compare-jobs1   also run with 1 job and record the speedup\n"
      "  --list            print scenarios and topologies, run nothing\n"
      "  --dump-corpus     print the corpus text, run nothing\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_file;
  bool slo_corpus = false;
  bool adversary_corpus = false;
  std::string workload_text;
  std::string adversary_text;
  std::vector<std::string> want_scenarios;
  std::vector<std::string> want_topos;
  std::vector<std::uint64_t> seeds;
  int seed_count = 5;
  int jobs = 0;
  std::string report_file;
  bool compare_jobs1 = false;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--corpus") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      corpus_file = v;
    } else if (arg == "--slo-corpus") {
      slo_corpus = true;
    } else if (arg == "--adversary-corpus") {
      adversary_corpus = true;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      workload_text = v;
    } else if (arg == "--adversary") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      adversary_text = v;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      want_scenarios.push_back(v);
    } else if (arg == "--topo") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      want_topos.push_back(v);
    } else if (arg == "--topos") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "all") == 0) {
        want_topos = AllTopologyNames();
      } else {
        std::fprintf(stderr, "--topos only understands 'all'\n");
        return 2;
      }
    } else if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seed_count = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seeds.push_back(std::strtoull(v, nullptr, 10));
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      jobs = std::atoi(v);
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      report_file = v;
    } else if (arg == "--compare-jobs1") {
      compare_jobs1 = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--dump-corpus") {
      std::fputs(DefaultCorpusText().c_str(), stdout);
      std::fputs("\n", stdout);
      std::fputs(SloCorpusText().c_str(), stdout);
      std::fputs("\n", stdout);
      std::fputs(AdversaryCorpusText().c_str(), stdout);
      return 0;
    } else {
      return Usage(argv[0]);
    }
  }

  // Load and filter the corpus.  Scenario name lookups (--scenario) see the
  // default and SLO corpora together so any reproducer line replays without
  // extra flags.
  std::vector<Scenario> scenarios;
  if ((!corpus_file.empty() ? 1 : 0) + (slo_corpus ? 1 : 0) +
          (adversary_corpus ? 1 : 0) >
      1) {
    std::fprintf(stderr,
                 "--corpus, --slo-corpus and --adversary-corpus are "
                 "exclusive\n");
    return 2;
  }
  if (corpus_file.empty()) {
    scenarios = slo_corpus         ? SloCorpus()
                : adversary_corpus ? AdversaryCorpus()
                                   : DefaultCorpus();
    if (!slo_corpus && !adversary_corpus && !want_scenarios.empty()) {
      std::vector<Scenario> slo = SloCorpus();
      scenarios.insert(scenarios.end(), slo.begin(), slo.end());
      std::vector<Scenario> adv = AdversaryCorpus();
      scenarios.insert(scenarios.end(), adv.begin(), adv.end());
    }
  } else {
    std::ifstream in(corpus_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", corpus_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    scenarios = ParseScenarios(text.str(), &error);
    if (scenarios.empty()) {
      std::fprintf(stderr, "%s: %s\n", corpus_file.c_str(), error.c_str());
      return 2;
    }
  }
  if (!want_scenarios.empty()) {
    std::vector<Scenario> kept;
    for (const Scenario& s : scenarios) {
      for (const std::string& want : want_scenarios) {
        if (s.name == want) {
          kept.push_back(s);
          break;
        }
      }
    }
    if (kept.empty()) {
      std::fprintf(stderr, "no scenario matched\n");
      return 2;
    }
    scenarios = std::move(kept);
  }

  if (want_topos.empty()) {
    want_topos = StandardTopologyNames();
  }
  std::vector<TopologyCase> topologies;
  for (const std::string& name : want_topos) {
    std::string error;
    TopoSpec spec = TopologyByName(name, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    topologies.push_back({name, std::move(spec)});
  }

  if (seeds.empty()) {
    for (int s = 0; s < seed_count; ++s) {
      seeds.push_back(static_cast<std::uint64_t>(s));
    }
  }

  if (list_only) {
    std::printf("scenarios:\n");
    for (const Scenario& s : scenarios) {
      std::printf("  %-24s %2zu actions, script end %s\n", s.name.c_str(),
                  s.actions.size(), FormatTime(s.ScriptEnd()).c_str());
    }
    std::printf("topologies:");
    for (const TopologyCase& t : topologies) {
      std::printf(" %s", t.name.c_str());
    }
    std::printf("\nseeds: %zu, jobs: %d\n", seeds.size(), jobs);
    return 0;
  }

  CampaignConfig config;
  if (!workload_text.empty()) {
    std::string error;
    if (!workload::ParseSpecText(workload_text, &config.workload, &error)) {
      std::fprintf(stderr, "--workload: %s\n", error.c_str());
      return 2;
    }
  }
  if (!adversary_text.empty()) {
    std::string error;
    if (!adversary::ParseSpecText(adversary_text, &config.adversary,
                                  &error)) {
      std::fprintf(stderr, "--adversary: %s\n", error.c_str());
      return 2;
    }
  }
  config.scenarios = std::move(scenarios);
  config.topologies = std::move(topologies);
  config.seeds = std::move(seeds);
  config.jobs = jobs;
  config.reproducer_stem = "chaosrun";

  std::printf("campaign: %zu scenarios x %zu topologies x %zu seeds = %zu runs\n",
              config.scenarios.size(), config.topologies.size(),
              config.seeds.size(),
              config.scenarios.size() * config.topologies.size() *
                  config.seeds.size());
  CampaignReport report = RunCampaign(config);
  std::printf("ran %zu runs on %d workers in %.0f ms: %d passed, %d failed\n",
              report.runs.size(), report.jobs, report.wall_ms, report.passed,
              report.failed);

  if (compare_jobs1) {
    CampaignConfig single = config;
    single.jobs = 1;
    CampaignReport baseline = RunCampaign(single);
    report.jobs1_wall_ms = baseline.wall_ms;
    std::printf("jobs=1 baseline: %.0f ms (speedup %.2fx)\n", baseline.wall_ms,
                report.wall_ms > 0 ? baseline.wall_ms / report.wall_ms : 0.0);
  }

  if (!report.reconfig_ms.empty()) {
    std::printf("reconfig wave: p50 %.1f ms  p99 %.1f ms  max %.1f ms\n",
                report.reconfig_ms.Percentile(50),
                report.reconfig_ms.Percentile(99), report.reconfig_ms.Max());
  }
  if (!report.converge_ms.empty()) {
    std::printf("convergence:   p50 %.1f ms  p99 %.1f ms  max %.1f ms\n",
                report.converge_ms.Percentile(50),
                report.converge_ms.Percentile(99), report.converge_ms.Max());
  }
  if (!report.slo_outage_ms.empty()) {
    std::printf("slo outage:    p50 %.1f ms  p99 %.1f ms  max %.1f ms\n",
                report.slo_outage_ms.Percentile(50),
                report.slo_outage_ms.Percentile(99),
                report.slo_outage_ms.Max());
    for (const RunResult& r : report.runs) {
      if (r.workload.empty()) {
        continue;
      }
      std::printf(
          "  %-18s %-9s seed %llu: %llu ops, outage %.1f ms (%d win), "
          "p999 %.3f->%.3f ms, lost %llu\n",
          r.scenario.c_str(), r.topology.c_str(),
          static_cast<unsigned long long>(r.seed),
          static_cast<unsigned long long>(r.slo_ops), r.slo_max_outage_ms,
          r.slo_outage_windows, r.slo_steady_p999_ms, r.slo_recovery_p999_ms,
          static_cast<unsigned long long>(r.slo_recovery_lost));
    }
  }

  bool any_adversary = false;
  for (const RunResult& r : report.runs) {
    if (!r.adversary.empty()) {
      any_adversary = true;
      break;
    }
  }
  if (any_adversary) {
    std::printf("adversary runs:\n");
    for (const RunResult& r : report.runs) {
      if (r.adversary.empty()) {
        continue;
      }
      std::printf("  %-24s %-9s seed %llu: [%s] %d moves, transcript %016llx\n",
                  r.scenario.c_str(), r.topology.c_str(),
                  static_cast<unsigned long long>(r.seed), r.adversary.c_str(),
                  r.adversary_moves,
                  static_cast<unsigned long long>(r.adversary_hash));
    }
  }

  if (!report_file.empty()) {
    if (!report.WriteJson(report_file)) {
      std::fprintf(stderr, "cannot write %s\n", report_file.c_str());
      return 2;
    }
    std::printf("report: %s\n", report_file.c_str());
  }

  if (!report.AllPassed()) {
    std::printf("\nviolations:\n");
    for (const RunResult& r : report.runs) {
      for (const Violation& v : r.violations) {
        std::printf("  [%s] %s\n    reproduce: %s\n", v.oracle.c_str(),
                    v.detail.c_str(), v.reproducer.c_str());
        if (!v.blame.empty()) {
          std::printf("    blame: %s\n", v.blame.c_str());
        }
      }
      // The flight-recorder timeline is identical for every violation of a
      // run: print it once, indented, after the run's violations.
      if (!r.violations.empty() && !r.violations.front().timeline.empty()) {
        std::istringstream lines(r.violations.front().timeline);
        std::string line;
        while (std::getline(lines, line)) {
          std::printf("    %s\n", line.c_str());
        }
      }
    }
    return 1;
  }
  std::printf("all oracles green\n");
  return 0;
}
