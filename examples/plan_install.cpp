// The installation-planning workflow the paper wanted site personnel to
// have (section 7): size a fabric for a host population, check the
// availability and capacity claims analytically, then *prove them live* by
// booting the planned network, running traffic, and killing hardware.
#include <cstdio>

#include "src/core/network.h"
#include "src/core/traffic.h"
#include "src/topo/planner.h"

using namespace autonet;

int main() {
  InstallationRequirements req;
  req.hosts = 48;
  req.dual_homed = true;
  req.growth_headroom = 0.25;

  InstallationPlan plan = PlanInstallation(req);
  if (!plan.feasible) {
    std::printf("planning failed: %s\n", plan.error.c_str());
    return 1;
  }
  std::printf("%s\n", plan.Summary().c_str());

  std::printf("commissioning the planned installation...\n");
  Network net(plan.spec);
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond, 200 * kMillisecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond)) {
    std::printf("network failed to converge\n");
    return 1;
  }
  std::printf("  up in %.2f simulated seconds\n\n", net.sim().now() / 1e9);

  // Acceptance test 1: aggregate throughput under permutation load.
  TrafficGenerator::Config tc;
  tc.data_bytes = 4000;
  TrafficGenerator gen(&net, tc);
  auto report = gen.Run(
      TrafficGenerator::Permutation(net.num_hosts(), net.num_hosts() / 2),
      20 * kMillisecond);
  std::printf("acceptance: permutation traffic\n");
  std::printf("  aggregate %.0f Mbit/s, %llu/%llu delivered, "
              "p99 latency %.0f us\n\n",
              report.delivered_mbps,
              static_cast<unsigned long long>(report.delivered),
              static_cast<unsigned long long>(report.sent),
              report.latency_us.Percentile(99));

  // Acceptance test 2: the availability promise.  Kill a switch; every
  // host must still be reachable after failover.
  std::printf("acceptance: single switch failure\n");
  net.CrashSwitch(plan.switches / 2);
  net.WaitForConsistency(net.sim().now() + 5 * 60 * kSecond,
                         200 * kMillisecond);
  net.Run(15 * kSecond);  // failover timers
  net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond);
  int reachable = 0;
  net.ClearInboxes();
  for (int h = 1; h < net.num_hosts(); ++h) {
    net.SendData(0, h, 64);
  }
  net.Run(50 * kMillisecond);
  for (int h = 1; h < net.num_hosts(); ++h) {
    reachable += net.inbox(h).empty() ? 0 : 1;
  }
  std::printf("  %d/%d hosts reachable from host 0 after the crash\n",
              reachable, net.num_hosts() - 1);
  return reachable == net.num_hosts() - 1 ? 0 : 1;
}
