// A network monitoring tool built on SRP, the source-routed debugging
// protocol of section 6.7.  SRP packets are forwarded hop by hop through
// switch control processors using only the constant one-hop part of the
// forwarding tables, so they work even while reconfiguration has normal
// routing shut down.
//
// From one monitoring host, this tool crawls the whole fabric with the
// SrpClient library: it retrieves the local switch's topology view, then
// queries every switch's state (epoch, switch number, port
// classifications) along BFS routes, and finally pulls a remote switch's
// reconfiguration event log — the paper's merged-log debugging workflow,
// done live.
#include <cstdio>

#include "src/core/network.h"
#include "src/host/srp_client.h"
#include "src/topo/spec.h"
#include "src/workload/engine.h"

using namespace autonet;

int main() {
  Network net(MakeTorus(3, 3, 1));
  // Arm the flight recorder so the remote depth/truncated counters below
  // reflect the boot-time reconfiguration's events.
  net.sim().flight().Arm();
  net.Boot();
  if (!net.WaitForConsistency(60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond)) {
    std::printf("network failed to converge\n");
    return 1;
  }
  std::printf("netmon: crawling a %d-switch Autonet over SRP\n\n",
              net.num_switches());

  // Drive a short RPC workload first so the per-switch workload counters
  // queried over SRP below have traffic behind them.  The engine must run
  // and detach before SrpClient below takes over host 0's receive path.
  {
    workload::Spec spec;
    std::string error;
    workload::ParseSpecText("rpc bytes 256 response 32 window 2", &spec,
                            &error);
    workload::WorkloadEngine engine(&net, spec, workload::SloBudgetConfig{},
                                    /*diameter=*/4);
    engine.Start();
    net.Run(300 * kMillisecond);
    engine.Stop();
    net.Run(50 * kMillisecond);
    workload::SloReport slo = engine.Finalize();
    std::printf("rpc warmup: %d flows, %llu ops, steady p99 %.3f ms\n\n",
                engine.flow_count(),
                static_cast<unsigned long long>(slo.completed),
                slo.steady_latency_ms.Percentile(99));
  }

  SrpClient client(&net.driver_at(0));

  auto topo = client.GetTopology({});
  if (!topo.has_value()) {
    std::printf("no topology reply\n");
    return 1;
  }
  std::printf("local switch reports %d switches:\n%s\n", topo->size(),
              topo->ToString().c_str());

  auto entries = client.CrawlTopology();
  std::printf("%-18s %-8s %-6s %-7s %s\n", "route", "epoch", "num", "reconf",
              "port states (1..12)");
  static const char kCode[] = {'-', 'c', 'H', '?', 'L', 'S'};
  for (const auto& entry : entries) {
    std::string route = "local";
    if (!entry.route.empty()) {
      route.clear();
      for (std::uint8_t hop : entry.route) {
        route += "p" + std::to_string(hop);
      }
    }
    std::string states;
    for (std::uint8_t s : entry.state.port_states) {
      states += kCode[s % 6];
    }
    std::printf("%-18s %-8llu %-6u %-7s %s  (%s)\n", route.c_str(),
                static_cast<unsigned long long>(entry.state.epoch),
                entry.state.switch_num,
                entry.state.reconfig_in_progress ? "ACTIVE" : "idle",
                states.c_str(), entry.state.uid.ToString().c_str());
  }

  if (!entries.empty()) {
    const auto& far = entries.back();
    if (auto log = client.GetLogTail(far.route)) {
      std::printf("\nevent log tail of the most distant switch:\n%s\n",
                  log->c_str());
    }

    // Pull the same switch's metric-registry slice remotely: its
    // reconfiguration counters, fetched over SRP with GetStats.
    if (auto stats = client.GetStats(far.route, "reconfig.")) {
      std::printf("\nreconfig counters of the most distant switch:\n");
      for (const auto& s : *stats) {
        switch (s.kind) {
          case obs::MetricKind::kCounter:
            std::printf("  %-32s %llu\n", s.name.c_str(),
                        static_cast<unsigned long long>(s.counter));
            break;
          case obs::MetricKind::kGauge:
            std::printf("  %-32s %.1f\n", s.name.c_str(), s.gauge);
            break;
          case obs::MetricKind::kHistogram:
            std::printf("  %-32s n=%llu min=%.1f max=%.1f mean=%.1f\n",
                        s.name.c_str(),
                        static_cast<unsigned long long>(s.hist_count),
                        s.hist_min, s.hist_max, s.hist_mean);
            break;
        }
      }
    }

    // The same switch's application-workload counters (ops answered for the
    // host it serves, timeouts, per-op latency), fed by the RPC warmup.
    if (auto stats = client.GetStats(far.route, "workload.")) {
      std::printf("\nworkload counters of the most distant switch:\n");
      for (const auto& s : *stats) {
        switch (s.kind) {
          case obs::MetricKind::kCounter:
            std::printf("  %-32s %llu\n", s.name.c_str(),
                        static_cast<unsigned long long>(s.counter));
            break;
          case obs::MetricKind::kHistogram:
            std::printf("  %-32s n=%llu min=%.3f max=%.3f mean=%.3f\n",
                        s.name.c_str(),
                        static_cast<unsigned long long>(s.hist_count),
                        s.hist_min, s.hist_max, s.hist_mean);
            break;
          case obs::MetricKind::kGauge:
            break;
        }
      }
    }

    // Flight-recorder accounting for the same switch: how many events its
    // post-mortem ring retains and how many a ring wrap discarded.  Served
    // as synthetic counters by the GetStats handler.
    if (auto stats = client.GetStats(far.route, "flight.")) {
      std::printf("\nflight recorder of the most distant switch:\n");
      for (const auto& s : *stats) {
        if (s.kind == obs::MetricKind::kCounter) {
          std::printf("  %-32s %llu\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.counter));
        }
      }
    }
  }
  std::printf("legend: H=s.host S=s.switch.good ?=s.switch.who L=loop "
              "c=checking -=dead\n");
  return 0;
}
