// The SRC service network scenario (section 5.5): the 30-switch
// approximately-4x8-torus installation that served Digital's Systems
// Research Center, with dual-connected hosts.  We bring it up, run
// workstation traffic, power a switch off mid-service, and show the two
// mechanisms that keep hosts connected: network-wide reconfiguration and
// host alternate-port failover.  Finally we print an excerpt of the merged
// per-switch event log — the paper's own debugging technique (section 6.7).
#include <cstdio>

#include "src/core/network.h"
#include "src/sim/random.h"
#include "src/topo/spec.h"

using namespace autonet;

namespace {

int RunTrafficRound(Network& net, Rng& rng, int packets) {
  net.ClearInboxes();
  int sent = 0;
  for (int i = 0; i < packets; ++i) {
    int a = static_cast<int>(rng.UniformInt(0, net.num_hosts() - 1));
    int b = static_cast<int>(rng.UniformInt(0, net.num_hosts() - 2));
    if (b >= a) {
      ++b;
    }
    if (net.SendData(a, b, 512)) {
      ++sent;
    }
    net.Run(500 * kMicrosecond);
  }
  net.Run(20 * kMillisecond);
  int delivered = 0;
  for (int h = 0; h < net.num_hosts(); ++h) {
    for (const Delivery& d : net.inbox(h)) {
      if (d.intact()) {
        ++delivered;
      }
    }
  }
  std::printf("  traffic round: %d/%d packets delivered\n", delivered, sent);
  return delivered;
}

}  // namespace

int main() {
  std::printf("building the SRC service LAN: 30 switches, 60 dual-homed "
              "hosts\n");
  Network net(MakeSrcLan(60));
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond, 200 * kMillisecond)) {
    std::printf("failed to converge\n");
    return 1;
  }
  net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond);
  std::printf("service network up at t=%.2f s; boot reconfiguration wave "
              "%.0f ms\n",
              net.sim().now() / 1e9, net.LastReconfig().Duration() / 1e6);

  Rng rng(2026);
  RunTrafficRound(net, rng, 120);

  // A switch dies in the machine room.
  std::printf("\npowering off switch %s...\n", net.switch_at(11).name().c_str());
  Tick crash_at = net.sim().now();
  net.CrashSwitch(11);
  net.WaitForConsistency(net.sim().now() + 5 * 60 * kSecond,
                         200 * kMillisecond);
  std::printf("  survivors reconfigured in %.0f ms; topology now %d "
              "switches\n",
              net.LastReconfig().Duration() / 1e6,
              net.autopilot_at(0).topology()->size());

  // Hosts whose active port died fail over to their alternates.
  net.Run(15 * kSecond);
  net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond);
  int failovers = 0;
  for (int h = 0; h < net.num_hosts(); ++h) {
    failovers += static_cast<int>(net.driver_at(h).stats().failovers);
  }
  std::printf("  host failovers since crash: %d (%.1f s after power-off)\n",
              failovers, (net.sim().now() - crash_at) / 1e9);
  RunTrafficRound(net, rng, 120);

  // The repaired switch returns.
  std::printf("\nrepairing and restarting the switch...\n");
  net.RestartSwitch(11);
  net.WaitForConsistency(net.sim().now() + 5 * 60 * kSecond,
                         200 * kMillisecond);
  std::printf("  network whole again: %d switches, epoch %llu\n",
              net.autopilot_at(0).topology()->size(),
              static_cast<unsigned long long>(net.autopilot_at(0).epoch()));
  RunTrafficRound(net, rng, 120);

  // The merged event log: every switch keeps a timestamped circular log;
  // merging them reconstructs the network-wide history (section 6.7).
  std::printf("\nmerged event log (last 25 entries):\n");
  auto log = net.MergedLog();
  std::size_t start = log.size() > 25 ? log.size() - 25 : 0;
  std::vector<LogEntry> tail(log.begin() + static_cast<long>(start), log.end());
  std::printf("%s", EventLog::Format(tail).c_str());
  return 0;
}
