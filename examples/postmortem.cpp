// Post-mortem CLI: replays one run with the flight recorder armed and
// renders the reconstructed reconfiguration forensics — per-epoch blame
// chain, join wavefront, and convergence-phase breakdown.  Takes either
// a chaosrun reproducer line's coordinates or a protocheck schedule id,
// so any failure either harness reports can be turned into a timeline:
//
//   postmortem --scenario cable-cut --topo ring8 --seed 3
//   postmortem --schedule small3:cut0+restore:o3:d12.1
//   postmortem --scenario link-flap --topo line6 --seed 0 --events
//   postmortem --scenario cable-cut --topo ring8 --seed 3 --trace out.json
//                                     (Perfetto / chrome://tracing)
//   postmortem --scenario adv-corrupt-epoch --topo srclan16 --seed 1
//                                     (adversarial runs replay too: the
//                                      engine's moves land in the timeline
//                                      as flight events and the transcript
//                                      prints below the actions)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/adversary/adversary.h"
#include "src/adversary/spec.h"
#include "src/chaos/corpus.h"
#include "src/chaos/executor.h"
#include "src/chaos/oracles.h"
#include "src/chaos/runner.h"
#include "src/check/explore.h"
#include "src/core/network.h"
#include "src/obs/postmortem.h"

using namespace autonet;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --scenario NAME --topo NAME --seed N [options]\n"
      "       %s --schedule ID [--events]\n"
      "  --scenario NAME   chaos scenario (chaos, SLO, and adversary\n"
      "                    built-in corpora are all searched)\n"
      "  --topo NAME       topology name (chaos registry)\n"
      "  --seed N          scenario seed (default 0)\n"
      "  --corpus FILE     scenario file instead of the built-in corpora\n"
      "  --adversary SPEC  arm a campaign-level adversary, as in chaosrun\n"
      "                    reproducer lines (scenario-level specs win)\n"
      "  --schedule ID     protocheck schedule id instead of a scenario\n"
      "  --events          list every flight-recorder event per epoch\n"
      "  --trace FILE      write a Perfetto-compatible trace (scenario mode)\n",
      argv0, argv0);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
            content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string topo_name;
  std::string corpus_file;
  std::string adversary_text;
  std::string schedule_id;
  std::string trace_file;
  std::uint64_t seed = 0;
  bool with_events = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      scenario_name = v;
    } else if (arg == "--topo") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      topo_name = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--corpus") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      corpus_file = v;
    } else if (arg == "--adversary") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      adversary_text = v;
    } else if (arg == "--schedule") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      schedule_id = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      trace_file = v;
    } else if (arg == "--events") {
      with_events = true;
    } else {
      return Usage(argv[0]);
    }
  }

  // --- protocheck schedule mode ---
  if (!schedule_id.empty()) {
    auto id = check::ScheduleId::FromString(schedule_id);
    if (!id.has_value()) {
      std::fprintf(stderr, "malformed schedule id '%s'\n",
                   schedule_id.c_str());
      return 2;
    }
    check::ExploreConfig config;
    config.capture_postmortem = true;
    check::ScheduleResult result = check::RunSchedule(config, *id);
    for (const chaos::Violation& v : result.violations) {
      std::printf("[%s] %s\n", v.oracle.c_str(), v.detail.c_str());
    }
    std::printf("schedule %s: %s\n\n", result.id.c_str(),
                result.ok ? "all oracles green" : "VIOLATED");
    std::fputs(result.postmortem.c_str(), stdout);
    return result.ok ? 0 : 1;
  }

  if (scenario_name.empty() || topo_name.empty()) {
    return Usage(argv[0]);
  }

  // --- chaosrun reproducer mode ---
  // Replays the run exactly as chaos::RunOne does (same boot, script, and
  // oracle sequence), so the reconstructed timeline matches the one a
  // failed campaign attached to its violations.
  std::vector<chaos::Scenario> scenarios;
  if (corpus_file.empty()) {
    scenarios = chaos::DefaultCorpus();
    for (auto& extra : {chaos::SloCorpus(), chaos::AdversaryCorpus()}) {
      scenarios.insert(scenarios.end(), extra.begin(), extra.end());
    }
  } else {
    std::ifstream in(corpus_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", corpus_file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    scenarios = chaos::ParseScenarios(text.str(), &error);
    if (scenarios.empty()) {
      std::fprintf(stderr, "%s: %s\n", corpus_file.c_str(), error.c_str());
      return 2;
    }
  }
  const chaos::Scenario* scenario = nullptr;
  for (const chaos::Scenario& s : scenarios) {
    if (s.name == scenario_name) {
      scenario = &s;
      break;
    }
  }
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario_name.c_str());
    return 2;
  }
  std::string error;
  TopoSpec spec = chaos::TopologyByName(topo_name, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  chaos::CampaignConfig config;
  Network net(spec, config.network);
  net.sim().flight().Arm();
  net.Boot();
  Tick boot_deadline = config.convergence_base +
                       config.convergence_per_hop * chaos::HealthyDiameter(net);
  if (!net.WaitForConsistency(boot_deadline, config.quiet)) {
    std::fprintf(stderr, "bootstrap never converged; timeline follows\n");
    obs::PostMortem pm = obs::PostMortem::Build(net.sim().flight());
    std::fputs(pm.RenderText(with_events).c_str(), stdout);
    return 1;
  }
  net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond);

  // Arm the adversary exactly as chaos::RunOne does: the scenario's own
  // spec wins, else a campaign-level one passed back in via --adversary
  // (chaosrun stamps it into reproducer lines).
  adversary::Spec cli_adv;
  if (!adversary_text.empty() &&
      !adversary::ParseSpecText(adversary_text, &cli_adv, &error)) {
    std::fprintf(stderr, "--adversary: %s\n", error.c_str());
    return 2;
  }
  const adversary::Spec& adv =
      scenario->adversary.enabled() ? scenario->adversary : cli_adv;

  chaos::ScenarioExecutor executor(&net, *scenario, seed);
  Tick script_start = net.sim().now();
  executor.Schedule(script_start);
  std::unique_ptr<adversary::Engine> adv_engine;
  if (adv.enabled()) {
    adv_engine = std::make_unique<adversary::Engine>(&net, adv, seed);
    adv_engine->Arm(script_start);
  }
  Tick run_until = executor.script_end();
  if (adv_engine != nullptr) {
    run_until = std::max(run_until, adv_engine->end());
  }
  if (run_until > net.sim().now()) {
    net.Run(run_until - net.sim().now());
  }
  for (const std::string& action : executor.resolved()) {
    std::printf("action: %s\n", action.c_str());
  }
  if (adv_engine != nullptr) {
    for (const std::string& line : adv_engine->transcript()) {
      std::printf("adversary: %s\n", line.c_str());
    }
  }

  chaos::OracleContext ctx;
  ctx.net = &net;
  ctx.quiet = config.quiet;
  ctx.deadline = net.sim().now() + config.convergence_base +
                 config.convergence_per_hop * chaos::HealthyDiameter(net);
  bool violated = false;
  for (const auto& oracle : chaos::StandardOracles()) {
    std::string detail = oracle->Check(ctx);
    if (!detail.empty()) {
      std::printf("[%s] %s\n", oracle->name().c_str(), detail.c_str());
      violated = true;
    }
  }
  std::printf("run %s --topo %s --seed %llu: %s\n\n", scenario_name.c_str(),
              topo_name.c_str(), static_cast<unsigned long long>(seed),
              violated ? "VIOLATED" : "all oracles green");

  obs::PostMortem pm = obs::PostMortem::Build(net.sim().flight());
  std::fputs(pm.RenderText(with_events).c_str(), stdout);
  if (!trace_file.empty()) {
    if (!WriteFile(trace_file, pm.ToChromeTraceJson())) {
      std::fprintf(stderr, "cannot write %s\n", trace_file.c_str());
      return 2;
    }
    std::printf("trace: %s\n", trace_file.c_str());
  }
  return violated ? 1 : 0;
}
