// The extended LAN of section 5.5: "The Autonet is connected to the
// Ethernet in the building via a bridge.  Thus the Autonet and Ethernet
// behave as a single extended LAN."
//
// One Firefly runs LocalNet with StartForwarding() (section 6.8.2); hosts
// on either network exchange UID-addressed datagrams without knowing which
// network carries them, and the demo shows the bridge learning locations,
// proxy-answering ARP, and refusing to forward what an Ethernet cannot
// carry (encrypted or oversize packets).
#include <cstdio>

#include "src/core/network.h"
#include "src/host/ethernet.h"
#include "src/host/localnet.h"
#include "src/topo/spec.h"

using namespace autonet;

int main() {
  // Autonet side: a 3-switch line with a workstation (host 0) and the
  // bridge Firefly (host 1).
  Network net(MakeLine(3, 1));
  net.Boot();
  if (!net.WaitForConsistency(60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond)) {
    std::printf("Autonet failed to converge\n");
    return 1;
  }
  std::printf("Autonet up: %d switches\n", net.num_switches());

  // Ethernet side: the building's 10 Mbit/s segment.
  EthernetSegment segment(&net.sim());
  EthernetStation printer(&segment, Uid(0xE0042), "printer");
  EthernetStation bridge_port(&segment, net.host_at(1).uid(), "bridge-eth");

  // LocalNet stacks.
  LocalNet ws(&net.sim(), net.host_at(0).uid(), "workstation");
  ws.AttachAutonet(&net.driver_at(0));
  LocalNet bridge(&net.sim(), net.host_at(1).uid(), "bridge");
  bridge.AttachAutonet(&net.driver_at(1));
  bridge.AttachEthernet(&bridge_port);
  bridge.StartForwarding();
  LocalNet pn(&net.sim(), printer.uid(), "printer-net");
  pn.AttachEthernet(&printer);

  int ws_got = 0, printer_got = 0;
  ws.SetReceiveHandler([&](NetworkId n, const Datagram& d) {
    ++ws_got;
    std::printf("  workstation <- %s via %s (%zu bytes)\n",
                d.src_uid.ToString().c_str(),
                n == NetworkId::kAutonet ? "Autonet" : "Ethernet",
                d.data.size());
  });
  pn.SetReceiveHandler([&](NetworkId, const Datagram& d) {
    ++printer_got;
    std::printf("  printer     <- %s (%zu bytes)\n",
                d.src_uid.ToString().c_str(), d.data.size());
  });

  // The printer announces itself (any client packet teaches the bridge its
  // location — bridges learn from traffic, section 6.8.2).
  std::printf("\nprinter sends a status datagram to the workstation:\n");
  Datagram hello;
  hello.dest_uid = net.host_at(0).uid();
  hello.ether_type = 0x0800;
  hello.data.assign(120, 0x50);
  pn.Send(NetworkId::kEthernet, hello);
  net.Run(200 * kMillisecond);

  std::printf("\nworkstation prints a 1 KB job (crosses the bridge):\n");
  Datagram job;
  job.dest_uid = printer.uid();
  job.ether_type = 0x0800;
  job.data.assign(1024, 0x33);
  ws.Send(NetworkId::kAutonet, job);
  net.Run(300 * kMillisecond);

  std::printf("\nencrypted and oversize packets are refused by the bridge "
              "(Autonet-only capabilities):\n");
  Datagram secret = job;
  secret.encrypted = true;
  ws.keys().Install(0, 0x5EC12E7);
  ws.Send(NetworkId::kAutonet, secret);
  net.Run(200 * kMillisecond);
  std::printf("  forward_refused = %llu\n",
              static_cast<unsigned long long>(bridge.stats().forward_refused));

  std::printf("\nbridge statistics: %llu -> Ethernet, %llu -> Autonet, "
              "cache entries %zu\n",
              static_cast<unsigned long long>(
                  bridge.stats().forwarded_to_ethernet),
              static_cast<unsigned long long>(
                  bridge.stats().forwarded_to_autonet),
              bridge.cache().size());
  std::printf("delivered: workstation %d, printer %d\n", ws_got, printer_got);
  return ws_got >= 1 && printer_got >= 1 ? 0 : 1;
}
