#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/corpus.h"
#include "src/chaos/executor.h"
#include "src/chaos/oracles.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/common/event_log.h"
#include "src/core/network.h"
#include "src/obs/json.h"
#include "src/topo/spec.h"

namespace autonet {
namespace chaos {
namespace {

// --- scenario format --------------------------------------------------------

TEST(Scenario, ParsesEveryActionKind) {
  const std::string text = R"(
scenario everything
  at 100ms cut cable 2
  at 200ms restore cable 2
  at 300ms crash switch ?s
  at 400ms restart switch ?s
  at 500ms cut hostlink 1 primary
  at 600ms restore hostlink 1 alternate
  at 700ms corrupt cable random rate 0.01
  at 800ms reflect cable 0 side b
  flap cable ?f period 50ms from 100ms until 900ms
  at 1s burst cables 3 until 2s
  at 1s burst switches 2
)";
  std::string error;
  std::vector<Scenario> scenarios = ParseScenarios(text, &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(scenarios.size(), 1u);
  const Scenario& s = scenarios[0];
  EXPECT_EQ(s.name, "everything");
  ASSERT_EQ(s.actions.size(), 11u);
  EXPECT_EQ(s.actions[0].kind, Action::Kind::kCutCable);
  EXPECT_EQ(s.actions[0].target, 2);
  EXPECT_EQ(s.actions[2].pick, "s");
  EXPECT_EQ(s.actions[4].which, 0);
  EXPECT_EQ(s.actions[5].which, 1);
  EXPECT_DOUBLE_EQ(s.actions[6].rate, 0.01);
  EXPECT_EQ(s.actions[7].which, 1);
  EXPECT_EQ(s.actions[8].kind, Action::Kind::kFlapCable);
  EXPECT_EQ(s.actions[8].period, 50 * kMillisecond);
  EXPECT_EQ(s.actions[9].count, 3);
  EXPECT_EQ(s.actions[10].kind, Action::Kind::kBurstSwitches);
  EXPECT_EQ(s.ScriptEnd(), 2 * kSecond);
}

TEST(Scenario, TextRoundTrip) {
  std::vector<Scenario> corpus = DefaultCorpus();
  ASSERT_GE(corpus.size(), 10u);
  for (const Scenario& s : corpus) {
    std::string error;
    std::vector<Scenario> again = ParseScenarios(s.ToText(), &error);
    ASSERT_EQ(error, "") << s.name;
    ASSERT_EQ(again.size(), 1u) << s.name;
    EXPECT_EQ(again[0].name, s.name);
    ASSERT_EQ(again[0].actions.size(), s.actions.size()) << s.name;
    for (std::size_t i = 0; i < s.actions.size(); ++i) {
      EXPECT_EQ(again[0].actions[i].kind, s.actions[i].kind) << s.name;
      EXPECT_EQ(again[0].actions[i].at, s.actions[i].at) << s.name;
      EXPECT_EQ(again[0].actions[i].pick, s.actions[i].pick) << s.name;
    }
  }
}

TEST(Scenario, ParseErrorsNameTheLine) {
  std::string error;
  EXPECT_TRUE(ParseScenarios("scenario x\n  at 5 cut cable 0\n", &error)
                  .empty());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  EXPECT_TRUE(ParseScenarios("at 5ms cut cable 0\n", &error).empty());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;

  EXPECT_TRUE(
      ParseScenarios("scenario x\n  at 5ms melt cable 0\n", &error).empty());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// --- deterministic resolution ----------------------------------------------

TEST(Executor, ResolutionIsAPureFunctionOfScenarioTopologySeed) {
  Scenario s;
  s.name = "pick-test";
  s.CutCable(100 * kMillisecond, kRandomTarget, "a")
      .CrashSwitch(200 * kMillisecond)
      .RestoreCable(1 * kSecond, kRandomTarget, "a");

  auto resolve = [&](std::uint64_t seed) {
    Network net(MakeTorus(3, 3, 1));
    ScenarioExecutor exec(&net, s, seed);
    return exec.resolved();
  };
  EXPECT_EQ(resolve(7), resolve(7));

  // Named picks are stable: the cut and the restore hit the same cable.
  std::vector<std::string> r = resolve(7);
  ASSERT_EQ(r.size(), 3u);
  std::string cut_victim = r[0].substr(r[0].find("cable"));
  std::string restore_victim = r[2].substr(r[2].find("cable"));
  EXPECT_EQ(cut_victim, restore_victim);

  // Sweeping seeds sweeps victims (18 cables; 8 seeds all agreeing would
  // mean resolution ignores the seed).
  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    if (resolve(seed) != resolve(0)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

// --- single runs ------------------------------------------------------------

CampaignConfig SmallConfig() {
  CampaignConfig config;
  std::string error;
  config.topologies.push_back({"line6", TopologyByName("line6", &error)});
  return config;
}

TEST(Runner, SameSeedReplaysIdentically) {
  Scenario s;
  s.name = "cut-restore";
  s.CutCable(100 * kMillisecond, kRandomTarget, "a")
      .RestoreCable(600 * kMillisecond, kRandomTarget, "a");

  CampaignConfig config = SmallConfig();
  RunResult first = RunOne(config, s, config.topologies[0], 3);
  RunResult second = RunOne(config, s, config.topologies[0], 3);
  EXPECT_TRUE(first.ok) << (first.violations.empty()
                                ? ""
                                : first.violations[0].detail);
  EXPECT_EQ(first.log_hash, second.log_hash);
  EXPECT_EQ(first.metrics_hash, second.metrics_hash);
  EXPECT_EQ(first.resolved_actions, second.resolved_actions);
}

TEST(Runner, ExecutionStreamIsDeterministic) {
  // Stronger than hash equality: the full merged logs and metric snapshots
  // of two independent replays are byte-identical.
  Scenario s;
  s.name = "crash";
  s.CrashSwitch(100 * kMillisecond, kRandomTarget, "s")
      .RestartSwitch(700 * kMillisecond, kRandomTarget, "s");

  auto run = [&](std::string* log, std::string* metrics) {
    Network net(MakeRing(4, 1));
    net.Boot();
    ASSERT_TRUE(net.WaitForConsistency(60 * kSecond));
    ScenarioExecutor exec(&net, s, 11);
    exec.Schedule(net.sim().now());
    net.Run(5 * kSecond);
    *log = EventLog::Format(net.MergedLog());
    *metrics = net.DumpMetricsJson();
  };
  std::string log_a, metrics_a, log_b, metrics_b;
  run(&log_a, &metrics_a);
  run(&log_b, &metrics_b);
  EXPECT_EQ(log_a, log_b);
  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_NE(log_a.find("power off"), std::string::npos);
}

TEST(Runner, DifferentSeedsAreDistinguishedInTheReport) {
  Scenario s;
  s.name = "cut";
  s.CutCable(100 * kMillisecond).RestoreCable(600 * kMillisecond);
  // (anonymous random pick: cut and restore resolve independently, so use
  // the torus where every cable is redundant)
  CampaignConfig config;
  std::string error;
  config.topologies.push_back({"torus3x3", TopologyByName("torus3x3", &error)});
  config.scenarios.push_back(s);
  config.seeds = {0, 1, 2, 3, 4};
  config.jobs = 2;

  CampaignReport report = RunCampaign(config);
  ASSERT_EQ(report.runs.size(), 5u);
  EXPECT_TRUE(report.AllPassed());
  bool hashes_differ = false;
  for (const RunResult& r : report.runs) {
    if (r.log_hash != report.runs[0].log_hash) {
      hashes_differ = true;
    }
    EXPECT_EQ(r.ok, true);
  }
  EXPECT_TRUE(hashes_differ);
}

// --- campaigns --------------------------------------------------------------

TEST(Runner, CampaignSweepsTheMatrixAndReportsJson) {
  CampaignConfig config = SmallConfig();
  Scenario cut;
  cut.name = "cut";
  cut.CutCable(100 * kMillisecond, kRandomTarget, "a")
      .RestoreCable(600 * kMillisecond, kRandomTarget, "a");
  Scenario crash;
  crash.name = "crash";
  crash.CrashSwitch(100 * kMillisecond, kRandomTarget, "s")
      .RestartSwitch(900 * kMillisecond, kRandomTarget, "s");
  config.scenarios = {cut, crash};
  config.seeds = {1, 2};
  config.jobs = 2;

  CampaignReport report = RunCampaign(config);
  ASSERT_EQ(report.runs.size(), 4u);
  EXPECT_EQ(report.passed, 4);
  EXPECT_EQ(report.failed, 0);
  EXPECT_TRUE(report.AllPassed());
  EXPECT_TRUE(report.ReproducerLines().empty());
  EXPECT_EQ(report.jobs, 2);
  EXPECT_EQ(report.run_wall_ms.count(), 4u);
  EXPECT_GE(report.reconfig_ms.count(), 1u);
  EXPECT_GT(report.metrics.size(), 0u);

  std::optional<JsonValue> json = ParseJson(report.ToJson());
  ASSERT_TRUE(json.has_value());
  const JsonValue* campaign = json->Find("campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->Find("runs")->number, 4);
  EXPECT_EQ(campaign->Find("passed")->number, 4);
  ASSERT_NE(json->Find("runs"), nullptr);
  EXPECT_EQ(json->Find("runs")->array.size(), 4u);
  const JsonValue& run0 = json->Find("runs")->array[0];
  EXPECT_TRUE(run0.Find("log_hash")->is_string());
  EXPECT_FALSE(run0.Find("actions")->array.empty());
  ASSERT_NE(json->Find("metrics"), nullptr);
  EXPECT_TRUE(json->Find("metrics")->Find("counters") != nullptr);
}

// --- violations are caught and reproducible ---------------------------------

class AlwaysFailOracle : public Oracle {
 public:
  std::string name() const override { return "always-fail"; }
  std::string Check(OracleContext&) override {
    return "deliberately broken fixture";
  }
};

std::vector<std::unique_ptr<Oracle>> BrokenBattery() {
  std::vector<std::unique_ptr<Oracle>> oracles;
  oracles.push_back(MakeConvergenceOracle());
  oracles.push_back(std::make_unique<AlwaysFailOracle>());
  return oracles;
}

TEST(Runner, BrokenOracleProducesViolationWithWorkingReproducer) {
  CampaignConfig config = SmallConfig();
  Scenario s;
  s.name = "quiet";
  s.CutCable(100 * kMillisecond, kRandomTarget, "a")
      .RestoreCable(400 * kMillisecond, kRandomTarget, "a");
  config.scenarios = {s};
  config.seeds = {5};
  config.jobs = 1;
  config.oracles = BrokenBattery;

  CampaignReport report = RunCampaign(config);
  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_FALSE(report.AllPassed());
  EXPECT_EQ(report.failed, 1);
  ASSERT_EQ(report.runs[0].violations.size(), 1u);
  const Violation& v = report.runs[0].violations[0];
  EXPECT_EQ(v.oracle, "always-fail");
  EXPECT_EQ(v.detail, "deliberately broken fixture");
  EXPECT_EQ(v.reproducer, "chaosrun --scenario quiet --topo line6 --seed 5");

  // The reproducer line works: parse it back and replay exactly that run.
  std::istringstream tokens(v.reproducer);
  std::string stem, flag, scenario_name, topo_name, seed_text;
  tokens >> stem >> flag >> scenario_name;
  tokens >> flag >> topo_name;
  tokens >> flag >> seed_text;
  ASSERT_EQ(scenario_name, "quiet");
  std::string error;
  TopologyCase topo{topo_name, TopologyByName(topo_name, &error)};
  ASSERT_EQ(error, "");
  RunResult replay = RunOne(config, s, topo,
                            std::stoull(seed_text));
  ASSERT_EQ(replay.violations.size(), 1u);
  EXPECT_EQ(replay.violations[0].reproducer, v.reproducer);
  EXPECT_EQ(replay.log_hash, report.runs[0].log_hash);
  EXPECT_EQ(replay.resolved_actions, report.runs[0].resolved_actions);
}

// --- topology registry -------------------------------------------------------

TEST(Runner, TopologyRegistryKnowsTheMatrix) {
  for (const std::string& name : AllTopologyNames()) {
    std::string error;
    TopoSpec spec = TopologyByName(name, &error);
    EXPECT_EQ(error, "") << name;
    EXPECT_EQ(spec.Validate(), "") << name;
    EXPECT_FALSE(spec.switches.empty()) << name;
  }
  std::string error;
  TopologyByName("no-such-topology", &error);
  EXPECT_NE(error, "");
}

TEST(Oracles, HealthyDiameterScalesDeadlines) {
  Network line(MakeLine(6, 1));
  EXPECT_EQ(HealthyDiameter(line), 5);
  Network ring(MakeRing(8, 1));
  EXPECT_EQ(HealthyDiameter(ring), 4);
}

}  // namespace
}  // namespace chaos
}  // namespace autonet
