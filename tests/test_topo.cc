#include <gtest/gtest.h>

#include <set>

#include "src/routing/spanning_tree.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

TEST(TopoSpec, CableAutoAssignsLowestPorts) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.Cable(0, 1);
  EXPECT_EQ(spec.cables[0].port_a, 1);
  EXPECT_EQ(spec.cables[1].port_a, 2);
  EXPECT_EQ(spec.Validate(), "");
}

TEST(TopoSpec, HostsTakeHighPorts) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddHost(0);
  spec.AddHost(0);
  EXPECT_EQ(spec.hosts[0].primary_port, 12);
  EXPECT_EQ(spec.hosts[1].primary_port, 11);
}

TEST(TopoSpec, DualHomedHostUsesTwoSwitches) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  int h = spec.AddHost(0, 1);
  EXPECT_EQ(spec.hosts[h].primary_switch, 0);
  EXPECT_EQ(spec.hosts[h].alt_switch, 1);
  EXPECT_GE(spec.hosts[h].alt_port, kFirstExternalPort);
  EXPECT_EQ(spec.Validate(), "");
}

TEST(TopoSpec, ValidateCatchesDoubleCabling) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.cables.push_back({0, 1, 1, 1, 0.01});
  spec.cables.push_back({0, 1, 1, 2, 0.01});  // port (0,1) cabled twice
  EXPECT_NE(spec.Validate(), "");
}

TEST(TopoSpec, ExpectedTopologyMatchesCables) {
  TopoSpec spec = MakeRing(5, 1);
  NetTopology topo = spec.ExpectedTopology();
  EXPECT_EQ(topo.Validate(), "");
  EXPECT_EQ(topo.size(), 5);
  for (const SwitchDescriptor& sw : topo.switches) {
    EXPECT_EQ(sw.links.size(), 2u);
    EXPECT_EQ(sw.host_ports.Count(), 1);
  }
}

TEST(TopoSpec, TextRoundTrip) {
  TopoSpec spec = MakeTorus(2, 3, 1);
  std::string text = spec.ToText();
  std::string error;
  TopoSpec parsed = TopoSpec::FromText(text, &error);
  EXPECT_EQ(error, "");
  ASSERT_EQ(parsed.switches.size(), spec.switches.size());
  ASSERT_EQ(parsed.cables.size(), spec.cables.size());
  ASSERT_EQ(parsed.hosts.size(), spec.hosts.size());
  EXPECT_EQ(parsed.ExpectedTopology(), spec.ExpectedTopology());
}

TEST(TopoSpec, ParserRejectsGarbage) {
  std::string error;
  TopoSpec::FromText("switches 2\nfrobnicate 1 2\n", &error);
  EXPECT_NE(error, "");
}

TEST(Generators, LineHasNMinusOneCables) {
  TopoSpec spec = MakeLine(7, 0);
  EXPECT_EQ(spec.cables.size(), 6u);
  EXPECT_EQ(spec.Validate(), "");
}

TEST(Generators, RingOfTwoHasOneCable) {
  TopoSpec spec = MakeRing(2, 0);
  EXPECT_EQ(spec.cables.size(), 1u);
  EXPECT_EQ(spec.Validate(), "");
}

TEST(Generators, TreeSwitchCount) {
  // Complete binary tree of depth 3: 1 + 2 + 4 + 8 = 15.
  TopoSpec spec = MakeTree(2, 3, 0);
  EXPECT_EQ(spec.switches.size(), 15u);
  EXPECT_EQ(spec.cables.size(), 14u);
}

TEST(Generators, TorusDegreeFour) {
  TopoSpec spec = MakeTorus(3, 4, 0);
  NetTopology topo = spec.ExpectedTopology();
  for (const SwitchDescriptor& sw : topo.switches) {
    EXPECT_EQ(sw.links.size(), 4u);
  }
}

TEST(Generators, TwoColumnTorusAvoidsDoubleCables) {
  TopoSpec spec = MakeTorus(2, 2, 0);
  EXPECT_EQ(spec.Validate(), "");
  NetTopology topo = spec.ExpectedTopology();
  // Each switch connects to its row and column neighbor exactly once.
  for (const SwitchDescriptor& sw : topo.switches) {
    std::set<int> neighbors;
    for (const TopoLink& l : sw.links) {
      EXPECT_TRUE(neighbors.insert(l.remote_switch).second);
    }
  }
}

TEST(Generators, RandomTopologiesAreConnectedAndValid) {
  for (int seed = 0; seed < 10; ++seed) {
    TopoSpec spec = MakeRandom(14, 10, 500 + seed, 1);
    ASSERT_EQ(spec.Validate(), "") << seed;
    NetTopology topo = spec.ExpectedTopology();
    ASSERT_EQ(topo.Validate(), "") << seed;
    // Connectivity: BFS reaches everyone.
    std::vector<bool> seen(topo.size(), false);
    std::vector<int> queue{0};
    seen[0] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const TopoLink& l : topo.switches[queue[head]].links) {
        if (!seen[l.remote_switch]) {
          seen[l.remote_switch] = true;
          queue.push_back(l.remote_switch);
        }
      }
    }
    EXPECT_EQ(static_cast<int>(queue.size()), topo.size()) << seed;
  }
}

TEST(Generators, SrcLanMatchesPaperShape) {
  TopoSpec spec = MakeSrcLan(60);
  EXPECT_EQ(spec.switches.size(), 30u);  // "30 switches"
  EXPECT_EQ(spec.hosts.size(), 60u);
  EXPECT_EQ(spec.Validate(), "");
  NetTopology topo = spec.ExpectedTopology();
  EXPECT_EQ(topo.Validate(), "");

  // "four of the twelve ports on each switch for links to other switches"
  for (const SwitchDescriptor& sw : topo.switches) {
    EXPECT_EQ(sw.links.size(), 4u);
  }

  // "maximum switch-to-switch distance of 6"
  int diameter = 0;
  for (int s = 0; s < topo.size(); ++s) {
    std::vector<int> dist(topo.size(), -1);
    std::vector<int> queue{s};
    dist[s] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const TopoLink& l : topo.switches[queue[head]].links) {
        if (dist[l.remote_switch] < 0) {
          dist[l.remote_switch] = dist[queue[head]] + 1;
          queue.push_back(l.remote_switch);
        }
      }
    }
    for (int d : dist) {
      diameter = std::max(diameter, d);
    }
  }
  EXPECT_EQ(diameter, 6);

  // Every host dual-connected to two different switches.
  for (const TopoSpec::HostSpec& h : spec.hosts) {
    EXPECT_GE(h.alt_switch, 0);
    EXPECT_NE(h.alt_switch, h.primary_switch);
  }
}

TEST(Generators, UidsAreUniqueAcrossSwitchesAndHosts) {
  TopoSpec spec = MakeSrcLan(60);
  std::set<std::uint64_t> uids;
  for (const auto& sw : spec.switches) {
    EXPECT_TRUE(uids.insert(sw.uid.value()).second);
  }
  for (const auto& h : spec.hosts) {
    EXPECT_TRUE(uids.insert(h.uid.value()).second);
  }
}

}  // namespace
}  // namespace autonet
