// Telemetry subsystem tests: metric registry semantics, trace span
// recording and Chrome-trace export, snapshot JSON round-trips through the
// bundled parser, and the two end-to-end acceptance paths — a 3x3 torus
// reconfiguration producing nested per-switch spans, and SRP GetStats
// pulling a remote switch's counters across the fabric.
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/host/srp_client.h"
#include "src/obs/flight.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/postmortem.h"
#include "src/obs/trace.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

using obs::MetricKind;
using obs::MetricRegistry;
using obs::TraceRecorder;

// --- registry ---

TEST(MetricRegistry, RegistrationReturnsStableHandles) {
  MetricRegistry reg;
  obs::Counter* c = reg.GetCounter("switch.sw0.fabric.packets_forwarded");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.GetCounter("switch.sw0.fabric.packets_forwarded"), c);
  EXPECT_EQ(reg.size(), 1u);

  const MetricRegistry::Entry* e =
      reg.Find("switch.sw0.fabric.packets_forwarded");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricKind::kCounter);
  EXPECT_EQ(reg.Find("no.such.metric"), nullptr);
}

TEST(MetricRegistry, KindMismatchReturnsNull) {
  MetricRegistry reg;
  ASSERT_NE(reg.GetCounter("x"), nullptr);
  EXPECT_EQ(reg.GetGauge("x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("x"), nullptr);
  ASSERT_NE(reg.GetGauge("y"), nullptr);
  EXPECT_EQ(reg.GetCounter("y"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistry, InstrumentSemantics) {
  MetricRegistry reg;
  obs::Counter* c = reg.GetCounter("c");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);

  obs::Gauge* g = reg.GetGauge("g");
  g->Set(3.0);
  g->Add(-1.5);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  g->SetMax(9.0);
  g->SetMax(4.0);  // high-water mark keeps the larger value
  EXPECT_DOUBLE_EQ(g->value(), 9.0);

  Histogram* h = reg.GetHistogram("h");
  h->Add(10);
  h->Add(30);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->Min(), 10);
  EXPECT_DOUBLE_EQ(h->Max(), 30);
  EXPECT_DOUBLE_EQ(h->Mean(), 20);
}

TEST(MetricRegistry, VisitSelectsPrefixInOrder) {
  MetricRegistry reg;
  reg.GetCounter("switch.sw1.fabric.resets");
  reg.GetCounter("switch.sw0.reconfig.triggers");
  reg.GetCounter("switch.sw0.fabric.resets");
  reg.GetCounter("host.h0.uidcache.hit");

  std::vector<std::string> seen;
  reg.Visit("switch.sw0.",
            [&](const MetricRegistry::Entry& e) { seen.push_back(e.name); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "switch.sw0.fabric.resets");
  EXPECT_EQ(seen[1], "switch.sw0.reconfig.triggers");

  seen.clear();
  reg.Visit("", [&](const MetricRegistry::Entry& e) { seen.push_back(e.name); });
  EXPECT_EQ(seen.size(), 4u);
}

TEST(MetricRegistry, MergeFromFoldsByKind) {
  MetricRegistry a;
  a.GetCounter("packets")->Increment(10);
  a.GetGauge("fifo_hwm")->SetMax(5.0);
  a.GetHistogram("latency")->Add(1.0);
  a.GetCounter("only_in_a")->Increment(1);

  MetricRegistry b;
  b.GetCounter("packets")->Increment(32);
  b.GetGauge("fifo_hwm")->SetMax(9.0);
  b.GetHistogram("latency")->Add(3.0);
  b.GetHistogram("only_in_b")->Add(7.0);
  // Same name, different kind: must not alias into a's counter.
  b.GetGauge("only_in_a")->Set(99.0);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("packets")->value(), 42u);          // counters add
  EXPECT_DOUBLE_EQ(a.GetGauge("fifo_hwm")->value(), 9.0);    // high water
  EXPECT_EQ(a.GetHistogram("latency")->count(), 2u);         // sample-exact
  EXPECT_DOUBLE_EQ(a.GetHistogram("latency")->Max(), 3.0);
  EXPECT_EQ(a.GetHistogram("only_in_b")->count(), 1u);       // created
  EXPECT_EQ(a.GetCounter("only_in_a")->value(), 1u);         // kind mismatch
}

TEST(Histogram, MergeEdgeCases) {
  Histogram a;
  a.Add(2.0);
  a.Add(4.0);

  Histogram empty;
  a.Merge(empty);  // empty source: aggregates untouched
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Min(), 2.0);
  EXPECT_DOUBLE_EQ(a.Max(), 4.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.0);

  Histogram b;
  b.Merge(a);  // nonempty into empty: adopts every aggregate exactly
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Min(), 2.0);
  EXPECT_DOUBLE_EQ(b.Max(), 4.0);
  EXPECT_DOUBLE_EQ(b.Percentile(50), 3.0);

  // Self-merge doubles the population and preserves shape; the sample
  // vector reallocates mid-merge, so this also pins the no-dangling-
  // iterator contract of Merge.
  a.Merge(a);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.Min(), 2.0);
  EXPECT_DOUBLE_EQ(a.Max(), 4.0);
}

TEST(MetricRegistry, MergeFromEdgeCases) {
  MetricRegistry a;
  MetricRegistry b;
  b.GetCounter("c")->Increment(5);
  b.GetHistogram("h")->Add(1.0);

  a.MergeFrom(b);  // into an empty registry: every entry is created
  EXPECT_EQ(a.size(), 2u);
  ASSERT_NE(a.GetCounter("c"), nullptr);
  EXPECT_EQ(a.GetCounter("c")->value(), 5u);
  EXPECT_EQ(a.GetHistogram("h")->count(), 1u);

  MetricRegistry none;
  a.MergeFrom(none);  // empty source: no-op
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.GetCounter("c")->value(), 5u);

  a.MergeFrom(a);  // self-merge: counters and sample counts double
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.GetCounter("c")->value(), 10u);
  EXPECT_EQ(a.GetHistogram("h")->count(), 2u);

  // Kind mismatch on merge: the source entry is skipped, never aliased,
  // and the destination keeps both its value and its kind.
  MetricRegistry wrong;
  wrong.GetGauge("c")->Set(123.0);
  a.MergeFrom(wrong);
  ASSERT_NE(a.GetCounter("c"), nullptr);
  EXPECT_EQ(a.GetCounter("c")->value(), 10u);
  EXPECT_EQ(a.GetGauge("c"), nullptr);
}

TEST(MetricRegistry, SnapshotJsonRoundTrips) {
  MetricRegistry reg;
  reg.GetCounter("a.count")->Increment(3);
  reg.GetGauge("a.level")->Set(2.5);
  Histogram* h = reg.GetHistogram("a.lat");
  h->Add(1);
  h->Add(3);
  reg.GetCounter("b.count")->Increment(7);

  auto doc = ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("a.count"), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("a.count")->number, 3.0);
  EXPECT_DOUBLE_EQ(counters->Find("b.count")->number, 7.0);

  const JsonValue* gauges = doc->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("a.level")->number, 2.5);

  const JsonValue* lat = doc->Find("histograms")->Find("a.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(lat->Find("min")->number, 1.0);
  EXPECT_DOUBLE_EQ(lat->Find("max")->number, 3.0);
  EXPECT_DOUBLE_EQ(lat->Find("mean")->number, 2.0);

  // Prefix restriction selects a subtree.
  auto sub = ParseJson(reg.SnapshotJson("a."));
  ASSERT_TRUE(sub.has_value());
  EXPECT_NE(sub->Find("counters")->Find("a.count"), nullptr);
  EXPECT_EQ(sub->Find("counters")->Find("b.count"), nullptr);
}

// --- trace recorder ---

TEST(TraceRecorder, SpanBeginEndPairing) {
  TraceRecorder tr;
  TraceRecorder::SpanId outer = tr.BeginSpan("t", "outer", 1000);
  TraceRecorder::SpanId inner = tr.BeginSpan("t", "inner", 2000);
  EXPECT_NE(outer, 0u);
  EXPECT_NE(inner, 0u);
  EXPECT_EQ(tr.open_count(), 2u);

  tr.EndSpan(inner, 3000);
  tr.EndSpan(outer, 5000);
  EXPECT_EQ(tr.open_count(), 0u);

  tr.EndSpan(0, 6000);      // invalid id: no-op by contract
  tr.EndSpan(inner, 6000);  // double end: no-op
  ASSERT_EQ(tr.spans().size(), 2u);
  EXPECT_EQ(tr.spans()[0].name, "outer");
  EXPECT_EQ(tr.spans()[0].end, 5000);
  EXPECT_EQ(tr.spans()[1].end, 3000);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(TraceRecorder, ChromeExportShapesEvents) {
  TraceRecorder tr;
  TraceRecorder::SpanId outer = tr.BeginSpan("sw0.reconfig", "epoch 1", 1000);
  TraceRecorder::SpanId inner = tr.BeginSpan("sw0.reconfig", "tree", 1000);
  tr.EndSpan(inner, 2000);
  tr.EndSpan(outer, 5000);
  tr.Instant("sw0.reconfig", "trigger: boot", 500);
  tr.BeginSpan("sw1.reconfig", "epoch 1", 1500);  // left open

  auto doc = ParseJson(tr.ToChromeTraceJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<std::string, int> phases;  // ph -> count
  std::set<std::string> tracks;
  int outer_before_inner = -1;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string& ph = ev.Find("ph")->str;
    ++phases[ph];
    if (ph == "M") {
      tracks.insert(ev.Find("args")->Find("name")->str);
    }
    // Same begin tick: the longer (outer) span must be emitted first so
    // viewers nest it around the inner one.
    if (ph == "X" && ev.Find("name")->str == "epoch 1" &&
        ev.Find("tid")->number == 1.0) {
      outer_before_inner = static_cast<int>(i);
    }
    if (ph == "X" && ev.Find("name")->str == "tree") {
      EXPECT_GE(outer_before_inner, 0);
      EXPECT_DOUBLE_EQ(ev.Find("dur")->number, 1.0);  // 1000 ns = 1 us
    }
  }
  EXPECT_EQ(phases["M"], 2);  // one thread_name record per track
  EXPECT_EQ(phases["X"], 2);
  EXPECT_EQ(phases["B"], 1);  // the still-open sw1 span
  EXPECT_EQ(phases["i"], 1);
  EXPECT_TRUE(tracks.count("sw0.reconfig"));
  EXPECT_TRUE(tracks.count("sw1.reconfig"));
}

TEST(TraceRecorder, DropsPastCapacity) {
  TraceRecorder tr(2);
  EXPECT_NE(tr.BeginSpan("t", "a", 0), 0u);
  EXPECT_NE(tr.BeginSpan("t", "b", 1), 0u);
  EXPECT_EQ(tr.BeginSpan("t", "c", 2), 0u);
  tr.Instant("t", "d", 3);
  EXPECT_EQ(tr.spans().size(), 2u);
  EXPECT_EQ(tr.dropped(), 2u);

  tr.Clear();
  EXPECT_EQ(tr.spans().size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_NE(tr.BeginSpan("t", "e", 4), 0u);
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder tr;
  tr.set_enabled(false);
  EXPECT_EQ(tr.BeginSpan("t", "a", 0), 0u);
  tr.Instant("t", "b", 1);
  EXPECT_TRUE(tr.spans().empty());
  EXPECT_EQ(tr.dropped(), 0u);  // disabled is not "dropped"
}

// --- flight recorder & post-mortem ---

TEST(FlightRecorder, DisarmedRecordsNothingAndArmResets) {
  obs::FlightRecorder rec;
  obs::FlightRing* ring = rec.Ring("sw0", Uid(0x10));
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(rec.Ring("sw0", Uid(0x10)), ring);  // stable handle
  EXPECT_FALSE(ring->armed());

  obs::FlightEvent ev;
  ev.time = 1;
  ring->Record(ev);  // disarmed: dropped without accounting
  EXPECT_EQ(ring->depth(), 0u);
  EXPECT_EQ(ring->total(), 0u);

  rec.Arm(4);
  EXPECT_TRUE(ring->armed());
  ring->Record(ev);
  EXPECT_EQ(ring->depth(), 1u);

  rec.Disarm();  // keeps the history for post-mortem reading
  ring->Record(ev);
  EXPECT_EQ(ring->depth(), 1u);
  EXPECT_EQ(ring->total(), 1u);

  rec.Arm(4);  // re-arming starts a fresh recording
  EXPECT_EQ(ring->depth(), 0u);
  EXPECT_EQ(ring->total(), 0u);
}

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsTruncation) {
  obs::FlightRecorder rec;
  rec.Arm(4);
  obs::FlightRing* ring = rec.Ring("sw0", Uid(0x10));
  for (int i = 0; i < 10; ++i) {
    obs::FlightEvent ev;
    ev.time = 100 + i;
    ev.a = static_cast<std::uint64_t>(i);
    ring->Record(ev);
  }
  EXPECT_EQ(ring->depth(), 4u);
  EXPECT_EQ(ring->total(), 10u);
  EXPECT_EQ(ring->truncated(), 6u);

  // The retained window is the newest four events, oldest first.
  std::vector<obs::FlightEvent> events = ring->Chronological();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6 + i);
    EXPECT_EQ(events[i].time, static_cast<Tick>(106 + i));
  }
}

// A hand-built two-switch recording: sw0 sees a link die, trips a skeptic,
// triggers epoch 5, and the epoch propagates to sw1.  The reconstructor
// must recover the blame chain, the wavefront, and every phase duration.
TEST(PostMortem, ReconstructsBlameChainWavefrontAndPhases) {
  obs::FlightRecorder rec;
  rec.Arm();
  obs::FlightRing* sw0 = rec.Ring("sw0", Uid(0x10));
  obs::FlightRing* sw1 = rec.Ring("sw1", Uid(0x11));

  auto record = [](obs::FlightRing* ring, Tick t, obs::FlightEventKind kind,
                   std::uint64_t epoch) {
    obs::FlightEvent ev;
    ev.time = t;
    ev.kind = kind;
    ev.epoch = epoch;
    return ev;  // caller tweaks fields, then ring->Record
  };
  obs::FlightEvent ev;

  // Precursors carry the previous epoch's tag (4).
  ev = record(sw0, 100, obs::FlightEventKind::kLinkChange, 4);
  ev.port = 2;
  ev.a = 0;  // down
  ev.detail = "carrier loss";
  sw0->Record(ev);
  ev = record(sw0, 200, obs::FlightEventKind::kSkepticTrip, 4);
  ev.a = 0;  // status skeptic
  ev.b = 1;
  sw0->Record(ev);

  ev = record(sw0, 1000, obs::FlightEventKind::kTrigger, 5);
  ev.detail = "port change";
  sw0->Record(ev);
  ev = record(sw0, 1000, obs::FlightEventKind::kEpochJoin, 5);
  sw0->Record(ev);  // local: nil origin, port -1
  ev = record(sw1, 1500, obs::FlightEventKind::kEpochJoin, 5);
  ev.origin = Uid(0x10);
  ev.port = 3;
  sw1->Record(ev);
  ev = record(sw0, 2000, obs::FlightEventKind::kTermination, 5);
  ev.a = 2;
  sw0->Record(ev);
  ev = record(sw0, 2100, obs::FlightEventKind::kConfigCompute, 5);
  sw0->Record(ev);
  // Route installs are recorded by the fabric with no epoch; the
  // reconstructor must attribute them to the latest join on the same ring.
  ev = record(sw0, 2200, obs::FlightEventKind::kRouteInstall, 0);
  ev.a = 1;
  sw0->Record(ev);
  ev = record(sw1, 2300, obs::FlightEventKind::kRouteInstall, 0);
  ev.a = 1;
  sw1->Record(ev);

  obs::PostMortem pm = obs::PostMortem::Build(rec);
  const obs::EpochTimeline* tl = pm.FindEpoch(5);
  ASSERT_NE(tl, nullptr);
  EXPECT_EQ(pm.FindEpoch(99), nullptr);

  EXPECT_EQ(tl->trigger_node, "sw0");
  EXPECT_EQ(tl->trigger_time, 1000);
  ASSERT_TRUE(tl->root_cause.has_value());
  EXPECT_EQ(tl->root_cause->ev.kind, obs::FlightEventKind::kLinkChange);
  EXPECT_EQ(tl->root_cause->ev.port, 2);
  ASSERT_TRUE(tl->first_skeptic.has_value());
  EXPECT_EQ(tl->first_skeptic->ev.time, 200);

  ASSERT_EQ(tl->wavefront.size(), 2u);
  EXPECT_EQ(tl->wavefront[0].node, "sw0");
  EXPECT_TRUE(tl->wavefront[0].from.empty());  // local trigger
  EXPECT_EQ(tl->wavefront[1].node, "sw1");
  EXPECT_EQ(tl->wavefront[1].from, "sw0");  // causal tag resolved to a name
  EXPECT_EQ(tl->wavefront[1].port, 3);

  // Phases: monitor 200->1000, tree 1000->1500, fan-in 1500->2000,
  // compute 2000->2100, install 2100->2300.
  EXPECT_EQ(tl->phases.monitor, 800);
  EXPECT_EQ(tl->phases.tree, 500);
  EXPECT_EQ(tl->phases.fanin, 500);
  EXPECT_EQ(tl->phases.compute, 100);
  EXPECT_EQ(tl->phases.install, 200);
  EXPECT_EQ(tl->termination_time, 2000);
  EXPECT_EQ(tl->route_installs, 2);

  const std::string blame = tl->BlameChain();
  EXPECT_NE(blame.find("link down at sw0 port 2 (carrier loss)"),
            std::string::npos);
  EXPECT_NE(blame.find("sw0 skeptic trip (status, level 1)"),
            std::string::npos);
  EXPECT_NE(blame.find("sw0 trigger \"port change\""), std::string::npos);
  EXPECT_NE(blame.find("2 switches joined"), std::string::npos);

  // The rendered timeline and the Perfetto export agree with the model.
  const std::string text = pm.RenderText(true);
  EXPECT_NE(text.find("=== epoch 5"), std::string::npos);
  EXPECT_NE(text.find("<- sw0 (port 3)"), std::string::npos);
  auto doc = ParseJson(pm.ToChromeTraceJson());
  ASSERT_TRUE(doc.has_value());
  std::set<std::string> span_names;
  for (const JsonValue& e : doc->Find("traceEvents")->array) {
    if (e.Find("ph")->str == "X") {
      span_names.insert(e.Find("name")->str);
    }
  }
  EXPECT_TRUE(span_names.count("epoch 5"));
  for (const char* phase :
       {"monitor", "tree", "fan-in", "compute", "install"}) {
    EXPECT_TRUE(span_names.count(phase)) << phase;
  }
}

// --- end-to-end acceptance ---

// A 3x3 torus boots, converges, then loses its spanning-tree root: every
// surviving switch must join a fresh epoch, and the exported Chrome trace
// must carry, for every switch, at least one span per epoch it joined, with
// phase spans nested inside epoch spans and monotonic timestamps.
TEST(Telemetry, TorusReconfigurationTraceSpans) {
  Network net(MakeTorus(3, 3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(120 * kSecond));
  const std::uint64_t boot_epoch = net.autopilot_at(0).epoch();

  // Crash the root: its disappearance can never be a localizable delta.
  const Uid root_uid = net.autopilot_at(0).engine().position_root();
  int root = -1;
  for (int i = 0; i < net.num_switches(); ++i) {
    if (net.autopilot_at(i).uid() == root_uid) {
      root = i;
    }
  }
  ASSERT_GE(root, 0);
  net.CrashSwitch(root);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + 300 * kSecond));

  const int survivor = root == 0 ? 1 : 0;
  const std::uint64_t final_epoch = net.autopilot_at(survivor).epoch();
  EXPECT_GT(final_epoch, boot_epoch);
  // Converged and crashed switches alike have closed all their spans.
  EXPECT_EQ(net.sim().trace().open_count(), 0u);

  auto doc = ParseJson(net.DumpTraceJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::map<int, std::string> track_of;  // tid -> track name
  for (const JsonValue& ev : events->array) {
    if (ev.Find("ph")->str == "M") {
      track_of[static_cast<int>(ev.Find("tid")->number)] =
          ev.Find("args")->Find("name")->str;
    }
  }

  struct Ev {
    double ts = 0;
    double dur = 0;
    std::string name;
  };
  std::map<std::string, std::vector<Ev>> per_track;
  double last_ts = -1.0;
  for (const JsonValue& ev : events->array) {
    if (ev.Find("ph")->str != "X") {
      continue;
    }
    Ev e;
    e.ts = ev.Find("ts")->number;
    e.dur = ev.Find("dur")->number;
    e.name = ev.Find("name")->str;
    // Events are exported in begin-time order: monotonic timestamps.
    EXPECT_GE(e.ts, last_ts);
    EXPECT_GE(e.dur, 0.0);
    last_ts = e.ts;
    per_track[track_of[static_cast<int>(ev.Find("tid")->number)]].push_back(e);
  }

  for (int i = 0; i < net.num_switches(); ++i) {
    const std::string track = "sw" + std::to_string(i) + ".reconfig";
    SCOPED_TRACE(track);
    auto it = per_track.find(track);
    ASSERT_NE(it, per_track.end());

    std::set<std::string> epochs;
    std::vector<Ev> epoch_spans;
    std::vector<Ev> phase_spans;
    for (const Ev& e : it->second) {
      if (e.name.rfind("epoch ", 0) == 0) {
        epochs.insert(e.name);
        epoch_spans.push_back(e);
      } else {
        phase_spans.push_back(e);
      }
    }
    // At least one span per epoch this switch joined; everyone joined the
    // boot epoch, and every survivor joined the post-crash epoch.
    EXPECT_TRUE(epochs.count("epoch " + std::to_string(boot_epoch)));
    if (i != root) {
      EXPECT_TRUE(epochs.count("epoch " + std::to_string(final_epoch)));
    }
    EXPECT_FALSE(phase_spans.empty());
    // Every phase span nests inside some epoch span on its track.
    for (const Ev& p : phase_spans) {
      bool nested = false;
      for (const Ev& e : epoch_spans) {
        if (e.ts <= p.ts + 1e-9 && p.ts + p.dur <= e.ts + e.dur + 1e-9) {
          nested = true;
          break;
        }
      }
      EXPECT_TRUE(nested) << p.name << " at " << p.ts << " not nested";
    }
  }
}

// From a host on one switch, fetch another switch's reconfiguration
// counters over SRP and check them against that switch's actual registry.
TEST(Telemetry, SrpGetStatsFetchesRemoteCounters) {
  Network net(MakeTorus(3, 3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(120 * kSecond));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  SrpClient client(&net.driver_at(0));
  auto entries = client.CrawlTopology();
  ASSERT_FALSE(entries.empty());
  // The BFS crawl ends at the most distant switch; it is not the local one.
  const auto& far = entries.back();
  ASSERT_FALSE(far.route.empty());

  auto stats = client.GetStats(far.route, "reconfig.");
  ASSERT_TRUE(stats.has_value());
  ASSERT_FALSE(stats->empty());

  // Ground truth: the remote switch's own registry entry.
  int remote = -1;
  for (int i = 0; i < net.num_switches(); ++i) {
    if (net.switch_at(i).uid() == far.state.uid) {
      remote = i;
    }
  }
  ASSERT_GE(remote, 0);
  const std::string full_name = "switch." + net.switch_at(remote).name() +
                                ".reconfig.epochs_joined";
  const MetricRegistry::Entry* truth = net.sim().metrics().Find(full_name);
  ASSERT_NE(truth, nullptr);

  bool found = false;
  for (const auto& s : *stats) {
    EXPECT_NE(s.name.find("reconfig."), std::string::npos);
    if (s.name == "reconfig.epochs_joined") {
      found = true;
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      EXPECT_EQ(s.counter, truth->counter.value());
      EXPECT_GE(s.counter, 1u);
    }
  }
  EXPECT_TRUE(found);
}

// GetStats also serves the flight recorder's synthetic depth/truncated
// counters.  With a deliberately tiny ring the boot reconfiguration
// overflows it, and the remotely fetched accounting must match the ring's
// ground truth exactly: depth capped at capacity, truncated = total - depth.
TEST(Telemetry, SrpGetStatsServesFlightRecorderAccounting) {
  Network net(MakeTorus(3, 3, 1));
  net.sim().flight().Arm(8);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(120 * kSecond));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  SrpClient client(&net.driver_at(0));
  auto entries = client.CrawlTopology();
  ASSERT_FALSE(entries.empty());
  const auto& far = entries.back();
  ASSERT_FALSE(far.route.empty());

  auto stats = client.GetStats(far.route, "flight.");
  ASSERT_TRUE(stats.has_value());

  // Ground truth: the remote switch's own ring.
  int remote = -1;
  for (int i = 0; i < net.num_switches(); ++i) {
    if (net.switch_at(i).uid() == far.state.uid) {
      remote = i;
    }
  }
  ASSERT_GE(remote, 0);
  const obs::FlightRing* ring =
      net.sim().flight().Find(net.switch_at(remote).name());
  ASSERT_NE(ring, nullptr);
  // Boot reconfiguration writes far more than 8 events per switch: the
  // ring wrapped, and the wrap is visible in the accounting.
  EXPECT_EQ(ring->depth(), 8u);
  EXPECT_GT(ring->truncated(), 0u);
  EXPECT_EQ(ring->total(), ring->depth() + ring->truncated());

  std::uint64_t depth = 0;
  std::uint64_t truncated = 0;
  bool saw_depth = false;
  bool saw_truncated = false;
  for (const auto& s : *stats) {
    if (s.name == "flight.depth") {
      saw_depth = true;
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      depth = s.counter;
    } else if (s.name == "flight.truncated") {
      saw_truncated = true;
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      truncated = s.counter;
    }
  }
  ASSERT_TRUE(saw_depth);
  ASSERT_TRUE(saw_truncated);
  EXPECT_EQ(depth, ring->depth());
  EXPECT_EQ(truncated, ring->truncated());
}

// The registry view of a live network: booting a torus populates fabric,
// link, reconfig, and host cache metrics under the documented name scheme.
TEST(Telemetry, NetworkSnapshotCoversSubsystems) {
  Network net(MakeTorus(3, 3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(120 * kSecond));

  auto doc = ParseJson(net.DumpMetricsJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);

  const JsonValue* joined =
      counters->Find("switch.sw0.reconfig.epochs_joined");
  ASSERT_NE(joined, nullptr);
  EXPECT_GE(joined->number, 1.0);
  const JsonValue* forwarded =
      counters->Find("switch.sw0.fabric.packets_forwarded");
  ASSERT_NE(forwarded, nullptr);
  EXPECT_GE(forwarded->number, 1.0);

  // Control traffic has exercised the FIFOs: some high-water gauge moved.
  bool fifo_moved = false;
  net.sim().metrics().Visit(
      "switch.sw0.fabric.port", [&](const MetricRegistry::Entry& e) {
        fifo_moved = fifo_moved || e.gauge.value() > 0;
      });
  EXPECT_TRUE(fifo_moved);

  // The global epoch-duration histogram saw every completed epoch.
  const JsonValue* epoch_ms =
      doc->Find("histograms")->Find("autopilot.reconfig.epoch_ms");
  ASSERT_NE(epoch_ms, nullptr);
  EXPECT_GE(epoch_ms->Find("count")->number, 1.0);
}

}  // namespace
}  // namespace autonet
