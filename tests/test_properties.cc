// Property-based sweeps over the core invariants:
//   * up*/down* tables route along minimum-hop *legal* paths exactly;
//   * flow control keeps FIFO occupancy within the analytic bound at every
//     link length;
//   * the control plane converges even over lossy links (CRC + reliable
//     retransmission);
//   * the driver's loopback self-test reports link health truthfully.
#include <gtest/gtest.h>

#include <functional>

#include "src/core/network.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/updown.h"
#include "src/routing/verify.h"
#include "src/topo/spec.h"
#include "tests/topo_helpers.h"

namespace autonet {
namespace {

// Walk every routing alternative and record the maximum path length per
// (origin, destination); it must equal the layered-BFS legal distance.
class MinimalitySuite : public ::testing::TestWithParam<int> {};

TEST_P(MinimalitySuite, TablePathsMatchLegalDistances) {
  NetTopology topo = RandomTopology(10, 7, 9000 + GetParam());
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);

  for (int origin = 0; origin < topo.size(); ++origin) {
    for (int dest = 0; dest < topo.size(); ++dest) {
      if (origin == dest) {
        continue;
      }
      UpDownDistances dist = ComputeDistances(topo, tree, dest);
      ShortAddress addr =
          ShortAddress::FromSwitchPort(topo.switches[dest].assigned_num, 0);
      // DFS across all alternatives, tracking hop counts.
      int max_hops = 0;
      int min_hops = 1 << 20;
      std::function<void(int, PortNum, int)> walk = [&](int sw, PortNum in,
                                                        int hops) {
        ForwardingTable::Entry entry = tables[sw].Lookup(in, addr);
        if (entry.IsDiscard()) {
          return;
        }
        bool terminal = true;
        entry.ports.ForEach([&](PortNum out) {
          for (const TopoLink& link : topo.switches[sw].links) {
            if (link.local_port == out) {
              terminal = false;
              walk(link.remote_switch, link.remote_port, hops + 1);
            }
          }
        });
        if (terminal) {
          max_hops = std::max(max_hops, hops);
          min_hops = std::min(min_hops, hops);
        }
      };
      walk(origin, kCpPort, 0);
      // Every alternative leads to the destination in exactly the legal
      // minimum number of switch-to-switch hops.
      EXPECT_EQ(max_hops, dist.free[origin])
          << "origin " << origin << " dest " << dest;
      EXPECT_EQ(min_hops, dist.free[origin]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalitySuite, ::testing::Range(0, 6));

// Flow-control invariant: at any link length, a blocked receiver's FIFO
// occupancy never exceeds (1-f)N + (S-1) + 2W, and never overflows the
// stock 4096-byte FIFO.
class FlowBoundSuite : public ::testing::TestWithParam<double> {};

TEST_P(FlowBoundSuite, OccupancyStaysWithinPaperBound) {
  double km = GetParam();
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1, km);
  spec.AddHost(0);
  spec.AddHost(1);
  NetworkConfig config;
  config.host_config.rx_process_ns_per_packet = 50 * kMillisecond;  // slow
  config.host_config.rx_buffer_bytes = 700;  // small: back-pressure fast
  Network net(std::move(spec), config);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(60 * kSecond));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  // Saturate host 0 -> host 1.  Host 1 cannot drain, but controllers never
  // send stop; the back-pressure stays inside the fabric where the
  // receiving FIFO of switch 1's trunk port throttles switch 0.
  for (int i = 0; i < 6; ++i) {
    net.SendData(0, 1, 8000);
  }
  net.Run(100 * kMillisecond);

  const TopoSpec::CableSpec& trunk = net.spec().cables[0];
  const PortFifo& fifo =
      net.switch_at(trunk.sw_b).link_unit(trunk.port_b).fifo();
  double bound = 0.5 * 4096 + (kFlowSlotPeriod - 1) + 2 * 64.1 * km;
  EXPECT_EQ(fifo.overflow_count(), 0u) << km;
  EXPECT_LE(static_cast<double>(fifo.max_occupancy()), bound + 1) << km;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FlowBoundSuite,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0));

// The reconfiguration protocol tolerates *transient* loss: damaged packets
// fail their software CRC and the reliable retransmission layer recovers.
// (Sustained corruption is a different story by design: the status sampler
// declares such links dead — see MarginalLink in test_integration.)
TEST(LossyControlPlane, ConvergesDespiteTransientCorruption) {
  Network net(MakeTorus(2, 3, 0));
  std::size_t cables = net.spec().cables.size();
  for (std::size_t c = 0; c < cables; ++c) {
    net.cable_at(static_cast<int>(c)).SetCorruptionRate(0.0005);
  }
  net.Boot();
  net.Run(3 * kSecond);  // converge (or flail) through the lossy period
  for (std::size_t c = 0; c < cables; ++c) {
    net.cable_at(static_cast<int>(c)).SetCorruptionRate(0.0);
  }
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                                     300 * kMillisecond))
      << net.CheckConsistency();
  std::uint64_t retransmissions = 0;
  std::uint64_t crc_errors = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    retransmissions += net.autopilot_at(i).engine().stats().retransmissions;
    crc_errors += net.autopilot_at(i).stats().crc_errors;
  }
  // The lossy period must actually have exercised the recovery machinery.
  EXPECT_GT(crc_errors + retransmissions, 0u);
}

// Loopback link self-tests (sections 6.3, 6.8.3).
TEST(LinkTest, ActiveAndAlternateLoopback) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.AddHost(0, 1);
  Network net(std::move(spec));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(60 * kSecond));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  int results = 0;
  bool active_ok = false;
  net.driver_at(0).TestActiveLink([&](bool ok) {
    active_ok = ok;
    ++results;
  });
  net.Run(kSecond);
  ASSERT_EQ(results, 1);
  EXPECT_TRUE(active_ok);

  // The alternate link works too — and the driver returns to the original
  // port afterwards.
  bool alt_ok = false;
  net.driver_at(0).TestAlternateLink([&](bool ok) {
    alt_ok = ok;
    ++results;
  });
  net.Run(2 * kSecond);
  ASSERT_EQ(results, 2);
  EXPECT_TRUE(alt_ok);
  EXPECT_EQ(net.host_at(0).active_port(), 0);

  // Cut the alternate: the test now fails but the host stays on its
  // original, working port.
  net.CutHostLink(0, 1);
  bool dead_ok = true;
  net.driver_at(0).TestAlternateLink([&](bool ok) {
    dead_ok = ok;
    ++results;
  });
  net.Run(2 * kSecond);
  ASSERT_EQ(results, 3);
  EXPECT_FALSE(dead_ok);
  EXPECT_EQ(net.host_at(0).active_port(), 0);
  EXPECT_EQ(net.driver_at(0).stats().loopback_failures, 1u);
}

}  // namespace
}  // namespace autonet
