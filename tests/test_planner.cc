#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/topo/planner.h"

namespace autonet {
namespace {

TEST(Analysis, DiameterOfRingAndDisconnected) {
  NetTopology ring = MakeRing(6, 0).ExpectedTopology();
  EXPECT_EQ(TopologyDiameter(ring), 3);
  NetTopology line = MakeLine(5, 0).ExpectedTopology();
  EXPECT_EQ(TopologyDiameter(line), 4);
  // Disconnect it.
  line.switches[2].links.clear();
  line.SymmetrizeLinks();
  EXPECT_EQ(TopologyDiameter(line), -1);
}

TEST(Analysis, TwoEdgeConnectivity) {
  EXPECT_TRUE(IsTwoEdgeConnected(MakeRing(5, 0).ExpectedTopology()));
  EXPECT_FALSE(IsTwoEdgeConnected(MakeLine(4, 0).ExpectedTopology()));
  EXPECT_TRUE(IsTwoEdgeConnected(MakeTorus(3, 4, 0).ExpectedTopology()));
  EXPECT_FALSE(IsTwoEdgeConnected(MakeTree(2, 3, 0).ExpectedTopology()));
}

TEST(Analysis, TwoVertexConnectivity) {
  EXPECT_TRUE(IsTwoVertexConnected(MakeRing(5, 0).ExpectedTopology()));
  EXPECT_TRUE(IsTwoVertexConnected(MakeTorus(3, 3, 0).ExpectedTopology()));
  // A tree has articulation points everywhere.
  EXPECT_FALSE(IsTwoVertexConnected(MakeTree(2, 2, 0).ExpectedTopology()));
  // Two rings joined at a single switch: that switch is an articulation
  // point even though the graph is 2-edge-connected.
  TopoSpec spec;
  for (int i = 0; i < 7; ++i) {
    spec.AddSwitch();
  }
  // ring A: 0-1-2-0; ring B: 0-3-4-0 won't work (double use of 0.. fine).
  spec.Cable(0, 1);
  spec.Cable(1, 2);
  spec.Cable(2, 0);
  spec.Cable(0, 3);
  spec.Cable(3, 4);
  spec.Cable(4, 0);
  NetTopology barbell = spec.ExpectedTopology();
  barbell.switches.resize(5);  // drop the unused switches 5,6
  EXPECT_TRUE(IsTwoEdgeConnected(barbell));
  EXPECT_FALSE(IsTwoVertexConnected(barbell));
}

TEST(Planner, SizesForTheSrcPopulation) {
  InstallationRequirements req;
  req.hosts = 96;  // ~SRC scale with headroom
  InstallationPlan plan = PlanInstallation(req);
  ASSERT_TRUE(plan.feasible) << plan.error;
  // 96 dual-homed hosts with 25% headroom: 240 attachments, 8 per switch
  // => 30 switches, the SRC count.
  EXPECT_EQ(plan.switches, 30);
  EXPECT_GE(plan.host_capacity, 96);
  EXPECT_TRUE(plan.single_fault_tolerant);
  EXPECT_EQ(plan.spec.Validate(), "");
  EXPECT_GT(plan.bisection_mbps, 100.0);  // more than one link's worth
  EXPECT_FALSE(plan.Summary().empty());
}

TEST(Planner, SmallOfficeStillFaultTolerant) {
  InstallationRequirements req;
  req.hosts = 6;
  InstallationPlan plan = PlanInstallation(req);
  ASSERT_TRUE(plan.feasible) << plan.error;
  EXPECT_GE(plan.switches, 2);
  EXPECT_TRUE(plan.single_fault_tolerant);
}

TEST(Planner, SingleHomedPlanIsNotFaultTolerant) {
  InstallationRequirements req;
  req.hosts = 20;
  req.dual_homed = false;
  InstallationPlan plan = PlanInstallation(req);
  ASSERT_TRUE(plan.feasible) << plan.error;
  EXPECT_FALSE(plan.single_fault_tolerant);
}

TEST(Planner, RejectsEmptyRequirements) {
  InstallationPlan plan = PlanInstallation(InstallationRequirements{});
  EXPECT_FALSE(plan.feasible);
}

TEST(Planner, PlannedNetworkActuallyConverges) {
  InstallationRequirements req;
  req.hosts = 10;
  InstallationPlan plan = PlanInstallation(req);
  ASSERT_TRUE(plan.feasible) << plan.error;

  Network net(plan.spec);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(5 * 60 * kSecond))
      << net.CheckConsistency();
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond));
  // The availability promise holds live: crash any one switch; every host
  // still reaches every other host.
  net.CrashSwitch(0);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + 5 * 60 * kSecond));
  net.Run(15 * kSecond);  // failover timers
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond));
  net.ClearInboxes();
  ASSERT_TRUE(net.SendData(0, 5, 64));
  net.Run(20 * kMillisecond);
  EXPECT_EQ(net.inbox(5).size(), 1u);
}

}  // namespace
}  // namespace autonet
