// Small NetTopology builders shared by routing tests and benches.
#ifndef TESTS_TOPO_HELPERS_H_
#define TESTS_TOPO_HELPERS_H_

#include <cassert>

#include "src/routing/topology.h"
#include "src/sim/random.h"

namespace autonet {

// Cables the lowest free external ports of switches a and b together.
inline void AddCable(NetTopology* topo, int a, int b) {
  auto free_port = [&](int sw) {
    PortVector used = topo->switches[sw].host_ports;
    for (const TopoLink& link : topo->switches[sw].links) {
      used.Set(link.local_port);
    }
    for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
      if (!used.Test(p)) {
        return p;
      }
    }
    assert(false && "no free port");
    return -1;
  };
  PortNum pa = free_port(a);
  PortNum pb = (a == b) ? -1 : free_port(b);
  if (a == b) {
    return;  // self-cables are omitted from configurations
  }
  topo->switches[a].links.push_back({pa, b, pb});
  topo->switches[b].links.push_back({pb, a, pa});
}

inline NetTopology EmptyTopology(int n, std::uint64_t uid_base = 0x100) {
  NetTopology topo;
  topo.switches.resize(n);
  for (int i = 0; i < n; ++i) {
    topo.switches[i].uid = Uid(uid_base + static_cast<std::uint64_t>(i));
    topo.switches[i].proposed_num = static_cast<SwitchNum>(i + 1);
  }
  return topo;
}

// Adds one host to the lowest free port of every switch.
inline void AddHostPerSwitch(NetTopology* topo) {
  for (auto& sw : topo->switches) {
    PortVector used = sw.host_ports;
    for (const TopoLink& link : sw.links) {
      used.Set(link.local_port);
    }
    for (PortNum p = kPortsPerSwitch - 1; p >= kFirstExternalPort; --p) {
      if (!used.Test(p)) {
        sw.host_ports.Set(p);
        break;
      }
    }
  }
}

inline NetTopology LineTopology(int n) {
  NetTopology topo = EmptyTopology(n);
  for (int i = 0; i + 1 < n; ++i) {
    AddCable(&topo, i, i + 1);
  }
  AddHostPerSwitch(&topo);
  AssignSwitchNumbers(&topo);
  return topo;
}

inline NetTopology RingTopology(int n) {
  NetTopology topo = EmptyTopology(n);
  for (int i = 0; i < n; ++i) {
    AddCable(&topo, i, (i + 1) % n);
  }
  AddHostPerSwitch(&topo);
  AssignSwitchNumbers(&topo);
  return topo;
}

// Random connected topology: a random spanning tree plus extra_edges chords.
inline NetTopology RandomTopology(int n, int extra_edges, std::uint64_t seed) {
  NetTopology topo = EmptyTopology(n);
  Rng rng(seed);
  for (int i = 1; i < n; ++i) {
    AddCable(&topo, static_cast<int>(rng.UniformInt(0, i - 1)), i);
  }
  int added = 0;
  int attempts = 0;
  while (added < extra_edges && attempts < extra_edges * 20) {
    ++attempts;
    int a = static_cast<int>(rng.UniformInt(0, n - 1));
    int b = static_cast<int>(rng.UniformInt(0, n - 1));
    if (a == b) {
      continue;
    }
    // Skip if either side is out of ports.
    auto ports_used = [&](int sw) {
      return static_cast<int>(topo.switches[sw].links.size());
    };
    if (ports_used(a) >= kPortsPerSwitch - 2 ||
        ports_used(b) >= kPortsPerSwitch - 2) {
      continue;
    }
    AddCable(&topo, a, b);
    ++added;
  }
  AddHostPerSwitch(&topo);
  AssignSwitchNumbers(&topo);
  return topo;
}

}  // namespace autonet

#endif  // TESTS_TOPO_HELPERS_H_
