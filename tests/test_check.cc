#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/autopilot/messages.h"
#include "src/autopilot/reconfig.h"
#include "src/check/explore.h"
#include "src/check/fuzz.h"
#include "src/core/network.h"
#include "src/host/srp_client.h"

#ifndef AUTONET_TEST_DATA_DIR
#define AUTONET_TEST_DATA_DIR "tests/data"
#endif

namespace autonet {
namespace check {
namespace {

// --- fuzzer ---

TEST(Fuzz, HexRoundTrip) {
  std::vector<std::uint8_t> bytes = {0x00, 0xAB, 0xFF, 0x12};
  EXPECT_EQ(HexEncode(bytes), "00abff12");
  std::vector<std::uint8_t> back;
  EXPECT_TRUE(HexDecode("00abff12", &back));
  EXPECT_EQ(back, bytes);
  EXPECT_TRUE(HexDecode("00ABFF12", &back));
  EXPECT_EQ(back, bytes);
  EXPECT_FALSE(HexDecode("0", &back));    // odd length
  EXPECT_FALSE(HexDecode("zz", &back));   // not hex
}

TEST(Fuzz, GeneratedBodiesAreValidAndDeterministic) {
  for (int t = 0; t < kNumMsgTypes; ++t) {
    MsgType type = static_cast<MsgType>(t);
    Rng a(42);
    Rng b(42);
    for (int k = 0; k < 50; ++k) {
      std::vector<std::uint8_t> body = GenerateValidBody(type, a);
      EXPECT_EQ(body, GenerateValidBody(type, b));
      EXPECT_EQ(CheckRoundTrip(type, body, /*must_accept=*/true), "")
          << MsgTypeName(type) << " case " << k;
    }
  }
}

TEST(Fuzz, MutationsAreDeterministic) {
  Rng gen(7);
  std::vector<std::uint8_t> body = GenerateValidBody(MsgType::kReconfig, gen);
  Rng a(9);
  Rng b(9);
  std::string name_a;
  std::string name_b;
  EXPECT_EQ(Mutate(body, a, &name_a), Mutate(body, b, &name_b));
  EXPECT_EQ(name_a, name_b);
}

TEST(Fuzz, RoundTripOracleFlagsTrailingByteAcceptance) {
  // The oracle itself: hand it a parser-accepted-but-altered pair by
  // checking a body we know re-serializes differently *if* accepted.  With
  // hardened parsers these are rejected, which the oracle counts as fine.
  ConnectivityMsg m;
  auto bytes = m.Serialize();
  bytes.push_back(0);
  EXPECT_EQ(CheckRoundTrip(MsgType::kConnectivity, bytes), "");
  // And a rejected *valid* body is a finding when must_accept is set.
  EXPECT_NE(CheckRoundTrip(MsgType::kConnectivity, bytes,
                           /*must_accept=*/true),
            "");
}

TEST(Fuzz, SweepIsCleanAfterParserHardening) {
  FuzzReport report = FuzzRoundTrip(/*seed=*/1, /*cases_per_type=*/2000);
  EXPECT_EQ(report.cases, 8000);
  EXPECT_GT(report.accepted, 0);
  EXPECT_GT(report.rejected, 0);
  for (const FuzzFinding& f : report.findings) {
    ADD_FAILURE() << f.type << "/" << f.mutation << ": " << f.detail;
  }
}

// --- corpus ---

TEST(Corpus, ParserAcceptsTheGrammarAndRejectsGarbage) {
  std::vector<CorpusEntry> entries;
  std::string error;
  EXPECT_TRUE(ParseCorpus("# comment\n\n"
                          "connectivity:accept:00\n"
                          "srp:reject:ff\n",
                          &entries, &error));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].type, MsgType::kConnectivity);
  EXPECT_TRUE(entries[0].accept);
  EXPECT_EQ(entries[1].type, MsgType::kSrp);
  EXPECT_FALSE(entries[1].accept);

  EXPECT_FALSE(ParseCorpus("connectivity:accpt:00\n", &entries, &error));
  EXPECT_FALSE(ParseCorpus("bogus:accept:00\n", &entries, &error));
  EXPECT_FALSE(ParseCorpus("srp:reject:0\n", &entries, &error));
  EXPECT_FALSE(ParseCorpus("no colons here\n", &entries, &error));
}

TEST(Corpus, CommittedCorpusChecksClean) {
  std::vector<CorpusEntry> entries;
  std::string error;
  ASSERT_TRUE(LoadCorpus(
      std::string(AUTONET_TEST_DATA_DIR) + "/protocheck_corpus.txt", &entries,
      &error))
      << error;
  EXPECT_GE(entries.size(), 20u);
  FuzzReport report = CheckCorpus(entries);
  for (const FuzzFinding& f : report.findings) {
    ADD_FAILURE() << f.detail << " body " << f.hex;
  }
}

// --- schedule ids ---

TEST(ScheduleIds, RoundTrip) {
  ScheduleId id;
  id.topo = "small3";
  id.fault = "cut0+restore";
  id.offset_index = 3;
  id.deviations = {{12, 1}, {40, 2}};
  EXPECT_EQ(id.ToString(), "small3:cut0+restore:o3:d12.1+d40.2");
  auto back = ScheduleId::FromString(id.ToString());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->topo, id.topo);
  EXPECT_EQ(back->fault, id.fault);
  EXPECT_EQ(back->offset_index, id.offset_index);
  EXPECT_EQ(back->deviations, id.deviations);

  ScheduleId baseline;
  baseline.topo = "pair2";
  baseline.fault = "crash1";
  EXPECT_EQ(baseline.ToString(), "pair2:crash1:o0:-");
  auto base_back = ScheduleId::FromString("pair2:crash1:o0:-");
  ASSERT_TRUE(base_back.has_value());
  EXPECT_TRUE(base_back->deviations.empty());
}

TEST(ScheduleIds, FromStringRejectsMalformedIds) {
  EXPECT_FALSE(ScheduleId::FromString("").has_value());
  EXPECT_FALSE(ScheduleId::FromString("small3:cut0").has_value());
  EXPECT_FALSE(ScheduleId::FromString("small3:cut0:3:-").has_value());
  EXPECT_FALSE(ScheduleId::FromString("small3:cut0:o3:d1").has_value());
  EXPECT_FALSE(ScheduleId::FromString("small3:cut0:o3:d1.0").has_value());
  EXPECT_FALSE(ScheduleId::FromString("a:b:o0:-:extra").has_value());
}

TEST(ScheduleIds, FaultMatrixCoversCablesAndSwitches) {
  std::string error;
  TopoSpec spec = CheckTopologyByName("small3", &error);
  ASSERT_TRUE(error.empty());
  std::vector<std::string> faults = FaultMatrix(spec);
  auto has = [&](const std::string& f) {
    for (const std::string& x : faults) {
      if (x == f) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("cut0"));
  EXPECT_TRUE(has("cut2+restore"));
  EXPECT_TRUE(has("crash1"));
  EXPECT_TRUE(has("crash2+restart"));
  EXPECT_TRUE(has("cut0+cut2"));
  EXPECT_EQ(faults.size(), 15u);
}

// --- the epoch-poisoning regression (fixed in this change) ---

TEST(Inject, ImplausibleEpochIsDroppedNotJoined) {
  // A corrupted epoch field that slips past the CRC used to reset the
  // receiving switch into that epoch — one damaged packet poisoning the
  // epoch sequence of the whole network forever.  Jumps beyond
  // ReconfigEngine::kMaxEpochJump must be dropped as damage.
  std::string error;
  Network net(CheckTopologyByName("pair2", &error));
  ASSERT_TRUE(error.empty());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(40 * kSecond));
  std::uint64_t epoch0 = net.autopilot_at(0).epoch();

  ReconfigMsg msg;
  msg.kind = ReconfigMsg::Kind::kPosition;
  msg.epoch = epoch0 + (std::uint64_t{1} << 40);  // far beyond kMaxEpochJump
  msg.sender_uid = Uid(0xBAD);
  msg.root_uid = Uid(0xBAD);

  Packet p;
  p.dest = kAddrLocalCp;
  p.src = OneHopAddress(1);
  p.type = PacketType::kReconfig;
  p.payload = msg.Serialize();
  PacketRef pkt = MakePacket(std::move(p));
  net.sim().ScheduleAfter(kMillisecond, [&net, pkt] {
    CpPort& cp = net.switch_at(0).cp_port();
    cp.NoteArrivalPort(1);
    cp.SendBegin(pkt);
    for (std::uint32_t i = 0; i < pkt->WireSize(); ++i) {
      cp.SendByte(pkt, i);
    }
    cp.SendEnd(EndFlags{});
  });
  net.Run(5 * kSecond);

  for (int i = 0; i < net.num_switches(); ++i) {
    EXPECT_LT(net.autopilot_at(i).epoch(), epoch0 + 16)
        << "switch " << i << " believed the poisoned epoch";
  }
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + 40 * kSecond));
}

TEST(Inject, SuspectEpochHeldUntilConfirmedBySecondSighting) {
  // The epoch-burn hole: a corrupted epoch below kMaxEpochJump used to be
  // believed outright, so one damaged field could silently burn up to 2^32
  // epochs of counter space.  Jumps beyond kEpochConfirmJump are now held
  // until the same value is seen a second time — a reliable sender's
  // retransmission confirms a genuine jump, while one-shot corruption
  // never reproduces the value.
  std::string error;
  Network net(CheckTopologyByName("pair2", &error));
  ASSERT_TRUE(error.empty());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(40 * kSecond));
  std::uint64_t epoch0 = net.autopilot_at(0).epoch();
  std::uint64_t poisoned = epoch0 + (std::uint64_t{1} << 20);
  ASSERT_GT(std::uint64_t{1} << 20, ReconfigEngine::kEpochConfirmJump);

  // The body claims the real port-1 neighbor's identity, modeling a
  // genuine message from a network segment far ahead in epoch space (the
  // case the confirmation rule must still admit) rather than a phantom
  // root the tree protocol would chase forever.
  ReconfigMsg msg;
  msg.kind = ReconfigMsg::Kind::kPosition;
  msg.epoch = poisoned;  // suspect band: above confirm, below max
  msg.sender_uid = net.autopilot_at(1).uid();
  msg.root_uid = net.autopilot_at(1).uid();

  Packet p;
  p.dest = kAddrLocalCp;
  p.src = OneHopAddress(1);
  p.type = PacketType::kReconfig;
  p.payload = msg.Serialize();
  PacketRef pkt = MakePacket(std::move(p));
  auto deliver = [&net, pkt] {
    CpPort& cp = net.switch_at(0).cp_port();
    cp.NoteArrivalPort(1);
    cp.SendBegin(pkt);
    for (std::uint32_t i = 0; i < pkt->WireSize(); ++i) {
      cp.SendByte(pkt, i);
    }
    cp.SendEnd(EndFlags{});
  };

  // First sighting: held, not joined.
  net.sim().ScheduleAfter(kMillisecond, deliver);
  net.Run(2 * kSecond);
  EXPECT_LT(net.autopilot_at(0).epoch(), epoch0 + 16)
      << "a single suspect epoch sighting was believed";

  // Second sighting of the same value: confirmed and joined, and the
  // jump propagates network-wide (neighbors confirm via the reliable
  // sender's retransmissions).
  net.sim().ScheduleAfter(kMillisecond, deliver);
  net.Run(10 * kSecond);
  EXPECT_GE(net.autopilot_at(0).epoch(), poisoned)
      << "a confirmed epoch was still refused";
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + 40 * kSecond))
      << net.CheckConsistency();
  for (int i = 0; i < net.num_switches(); ++i) {
    EXPECT_GE(net.autopilot_at(i).epoch(), poisoned)
        << "switch " << i << " never caught up to the confirmed epoch";
  }
}

TEST(Inject, MutatedBarrageLeavesNetworkConsistent) {
  InjectConfig config;
  config.topo = "pair2";
  config.seed = 3;
  config.count = 30;
  InjectReport report = FuzzInject(config);
  EXPECT_TRUE(report.booted);
  EXPECT_EQ(report.injected, 30);
  for (const FuzzFinding& f : report.findings) {
    ADD_FAILURE() << f.mutation << ": " << f.detail;
  }
}

TEST(Inject, HostParserBarrageLeavesAddressesIntact) {
  // The host-side surface: targeted kHostAddress replies and SRP bodies,
  // delivered fabric-forwarded into the driver and SRP-client parsers.
  // Registered hosts must keep (or recover) the short address that names
  // their actual attachment point — the driver's hold-then-confirm rule is
  // what makes a one-shot forged re-address harmless.
  InjectConfig config;
  config.topo = "small3";
  config.seed = 5;
  config.count = 30;
  config.target = "host";
  InjectReport report = FuzzInject(config);
  EXPECT_TRUE(report.booted);
  EXPECT_EQ(report.injected, 30);
  for (const FuzzFinding& f : report.findings) {
    ADD_FAILURE() << f.mutation << ": " << f.detail;
  }
}

TEST(Inject, MixedTargetBarrage) {
  InjectConfig config;
  config.topo = "small3";
  config.seed = 11;
  config.count = 40;
  config.target = "all";
  InjectReport report = FuzzInject(config);
  EXPECT_TRUE(report.booted);
  EXPECT_EQ(report.injected, 40);
  for (const FuzzFinding& f : report.findings) {
    ADD_FAILURE() << f.mutation << ": " << f.detail;
  }
}

TEST(Inject, SrpClientChainsClientTraffic) {
  // Regression for a weakness the host-side barrage surfaced: installing
  // an SrpClient used to *replace* the driver's receive handler and drop
  // every non-SRP delivery, silencing all other client traffic on the host
  // while its address book stayed perfectly intact.  The client must chain
  // displaced handlers through.
  std::string error;
  Network net(CheckTopologyByName("small3", &error));
  ASSERT_TRUE(error.empty());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(40 * kSecond));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  std::vector<std::unique_ptr<SrpClient>> clients;
  for (int h = 0; h < net.num_hosts(); ++h) {
    clients.push_back(std::make_unique<SrpClient>(&net.driver_at(h)));
  }
  // The SRP path works through the client...
  EXPECT_TRUE(clients[0]->Echo({}));
  // ...and plain client data still reaches the inbox collection that the
  // client displaced.
  net.ClearInboxes();
  ASSERT_TRUE(net.SendData(0, 1, 64));
  net.Run(2 * kSecond);
  EXPECT_FALSE(net.inbox(1).empty())
      << "installing an SRP client silenced host1's client traffic";
}

// --- explorer ---

ExploreConfig SmallConfig() {
  ExploreConfig config;
  config.topo = "pair2";
  config.offsets = {0, kMillisecond};
  config.max_decision_points = 6;
  config.chooser_window = 500 * kMillisecond;
  config.jobs = 1;
  return config;
}

TEST(Explore, ScheduleReplayIsDeterministic) {
  ExploreConfig config = SmallConfig();
  ScheduleId id;
  id.topo = "pair2";
  id.fault = "cut0+restore";
  id.offset_index = 1;
  ScheduleResult a = RunSchedule(config, id);
  ScheduleResult b = RunSchedule(config, id);
  EXPECT_TRUE(a.ok) << (a.violations.empty() ? "" : a.violations[0].detail);
  EXPECT_EQ(a.log_hash, b.log_hash);
  EXPECT_EQ(a.decision_points, b.decision_points);
  EXPECT_EQ(a.branch_factors, b.branch_factors);
}

TEST(Explore, DeviatedScheduleStillSatisfiesOracles) {
  ExploreConfig config = SmallConfig();
  ScheduleId baseline;
  baseline.topo = "pair2";
  baseline.fault = "cut0+restore";
  baseline.offset_index = 0;
  ScheduleResult base = RunSchedule(config, baseline);
  ASSERT_TRUE(base.ok);
  ASSERT_FALSE(base.branch_factors.empty())
      << "no same-tick ties around the epoch transition — explorer blind";

  ScheduleId deviated = baseline;
  deviated.deviations = {{0, base.branch_factors[0] - 1}};
  ScheduleResult dev = RunSchedule(config, deviated);
  EXPECT_TRUE(dev.ok) << (dev.violations.empty()
                              ? ""
                              : dev.violations[0].detail);
}

TEST(Explore, SweepHonorsBudgetAndReportsSkips) {
  ExploreConfig config = SmallConfig();
  config.budget = 12;
  ExploreReport report = Explore(config);
  EXPECT_EQ(report.runs.size(), 12u);
  EXPECT_EQ(report.failed, 0);
  // pair2 has 9 fault x offset baselines under this offsets grid; the
  // remaining budget went to deviations and the rest were counted skipped.
  EXPECT_EQ(report.baselines, 9);
  EXPECT_GT(report.deviations_possible, 3u);
  EXPECT_EQ(report.schedules_skipped, report.deviations_possible - 3);
  EXPECT_FALSE(report.ToJson().empty());
  EXPECT_TRUE(report.ReproducerLines().empty());
}

TEST(Explore, ViolationCarriesReplayableReproducer) {
  // An unknown topology inside the id is the cheapest guaranteed failure
  // path that still exercises reproducer formatting.
  ExploreConfig config = SmallConfig();
  ScheduleId id;
  id.topo = "no-such-topo";
  id.fault = "cut0";
  ScheduleResult result = RunSchedule(config, id);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations[0].reproducer.find("--replay no-such-topo"),
            std::string::npos);
}

}  // namespace
}  // namespace check
}  // namespace autonet
