#include <gtest/gtest.h>

#include "src/routing/spanning_tree.h"
#include "src/routing/topology.h"
#include "src/routing/updown.h"
#include "src/routing/verify.h"
#include "tests/topo_helpers.h"

namespace autonet {
namespace {

TEST(Topology, ValidateAcceptsWellFormed) {
  NetTopology topo = RingTopology(5);
  EXPECT_EQ(topo.Validate(), "");
}

TEST(Topology, ValidateRejectsAsymmetricLink) {
  NetTopology topo = LineTopology(2);
  topo.switches[0].links.push_back({9, 1, 9});  // no counterpart
  EXPECT_NE(topo.Validate(), "");
}

TEST(Topology, SymmetrizeDropsOneSidedLinks) {
  NetTopology topo = LineTopology(3);
  topo.switches[0].links.push_back({9, 2, 9});
  topo.SymmetrizeLinks();
  EXPECT_EQ(topo.Validate(), "");
  EXPECT_EQ(topo.switches[0].links.size(), 1u);
}

TEST(Topology, RootIsSmallestUid) {
  NetTopology topo = RingTopology(6);
  topo.switches[4].uid = Uid(1);  // force a different root
  EXPECT_EQ(topo.RootIndex(), 4);
}

TEST(AssignSwitchNumbers, HonorsUncontestedProposals) {
  NetTopology topo = LineTopology(3);
  topo.switches[0].proposed_num = 10;
  topo.switches[1].proposed_num = 20;
  topo.switches[2].proposed_num = 30;
  AssignSwitchNumbers(&topo);
  EXPECT_EQ(topo.switches[0].assigned_num, 10);
  EXPECT_EQ(topo.switches[1].assigned_num, 20);
  EXPECT_EQ(topo.switches[2].assigned_num, 30);
}

TEST(AssignSwitchNumbers, SmallestUidWinsConflicts) {
  NetTopology topo = LineTopology(3);
  // All propose 5; UIDs ascend with index, so switch 0 wins.
  for (auto& sw : topo.switches) {
    sw.proposed_num = 5;
  }
  AssignSwitchNumbers(&topo);
  EXPECT_EQ(topo.switches[0].assigned_num, 5);
  // Losers get the lowest unrequested numbers in UID order.
  EXPECT_EQ(topo.switches[1].assigned_num, 1);
  EXPECT_EQ(topo.switches[2].assigned_num, 2);
}

TEST(AssignSwitchNumbers, InvalidProposalTreatedAsUnrequested) {
  NetTopology topo = LineTopology(2);
  topo.switches[0].proposed_num = 0;  // out of range
  topo.switches[1].proposed_num = 3;
  AssignSwitchNumbers(&topo);
  EXPECT_EQ(topo.switches[1].assigned_num, 3);
  EXPECT_EQ(topo.switches[0].assigned_num, 1);
}

TEST(SpanningTree, LineTree) {
  NetTopology topo = LineTopology(4);
  SpanningTree tree = ComputeSpanningTree(topo);
  EXPECT_EQ(tree.root, 0);  // smallest UID
  EXPECT_EQ(tree.level, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(tree.parent, (std::vector<int>{-1, 0, 1, 2}));
  EXPECT_EQ(tree.Depth(), 3);
}

TEST(SpanningTree, RingLevelsAreBfsDistances) {
  NetTopology topo = RingTopology(6);
  SpanningTree tree = ComputeSpanningTree(topo);
  EXPECT_EQ(tree.root, 0);
  EXPECT_EQ(tree.level, (std::vector<int>{0, 1, 2, 3, 2, 1}));
}

TEST(SpanningTree, ParentPrefersSmallerUid) {
  // Diamond: 0 at top, 1 and 2 in the middle, 3 at the bottom.
  NetTopology topo = EmptyTopology(4);
  AddCable(&topo, 0, 1);
  AddCable(&topo, 0, 2);
  AddCable(&topo, 1, 3);
  AddCable(&topo, 2, 3);
  AddHostPerSwitch(&topo);
  AssignSwitchNumbers(&topo);
  SpanningTree tree = ComputeSpanningTree(topo);
  EXPECT_EQ(tree.parent[3], 1);  // uid of 1 < uid of 2
}

TEST(SpanningTree, ChildPortsInverseOfParent) {
  NetTopology topo = RingTopology(5);
  SpanningTree tree = ComputeSpanningTree(topo);
  for (int node = 0; node < topo.size(); ++node) {
    PortVector children = tree.ChildPorts(topo, node);
    children.ForEach([&](PortNum p) {
      const TopoLink* link = nullptr;
      for (const TopoLink& l : topo.switches[node].links) {
        if (l.local_port == p) {
          link = &l;
        }
      }
      ASSERT_NE(link, nullptr);
      EXPECT_EQ(tree.parent[link->remote_switch], node);
    });
  }
}

TEST(UpDown, DirectionPointsTowardRoot) {
  NetTopology topo = LineTopology(3);
  SpanningTree tree = ComputeSpanningTree(topo);
  EXPECT_TRUE(TraversesUp(topo, tree, 1, 0));
  EXPECT_FALSE(TraversesUp(topo, tree, 0, 1));
}

TEST(UpDown, LevelTieBrokenByUid) {
  // Triangle 0-1-2: 1 and 2 are both level 1.
  NetTopology topo = RingTopology(3);
  SpanningTree tree = ComputeSpanningTree(topo);
  EXPECT_TRUE(TraversesUp(topo, tree, 2, 1));  // uid(1) < uid(2)
  EXPECT_FALSE(TraversesUp(topo, tree, 1, 2));
}

TEST(UpDown, DistancesOnLine) {
  NetTopology topo = LineTopology(4);
  SpanningTree tree = ComputeSpanningTree(topo);
  UpDownDistances dist = ComputeDistances(topo, tree, 3);
  // Everything is downhill from the root toward 3.
  EXPECT_EQ(dist.free[0], 3);
  EXPECT_EQ(dist.free[2], 1);
  // From 0, the down distance equals the free distance (all links down).
  EXPECT_EQ(dist.down[0], 3);
  // From 3 itself: zero.
  EXPECT_EQ(dist.free[3], 0);
}

TEST(UpDown, DownPhaseCannotClimb) {
  // Line 0-1-2: from 2, destination host on 0 requires going up.  A packet
  // that arrived *down* into 2 must not have a route back up.
  NetTopology topo = LineTopology(3);
  SpanningTree tree = ComputeSpanningTree(topo);
  UpDownDistances dist = ComputeDistances(topo, tree, 0);
  EXPECT_EQ(dist.free[2], 2);
  EXPECT_GE(dist.down[2], kUnreachable);
}

class TableSuite : public ::testing::TestWithParam<int> {};

TEST_P(TableSuite, RoutesVerifyOnRandomTopologies) {
  NetTopology topo = RandomTopology(12, 8, GetParam());
  ASSERT_EQ(topo.Validate(), "");
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);
  VerifyResult result = VerifyRoutes(topo, tables);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(TableSuite, UpDownTablesAreDeadlockFree) {
  NetTopology topo = RandomTopology(12, 10, GetParam() + 1000);
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);
  DependencyCheck check = CheckChannelDependencies(topo, tables);
  EXPECT_TRUE(check.acyclic)
      << "cycle through " << check.cycle.size() << " channels";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableSuite, ::testing::Range(0, 12));

TEST(Verify, ShortestPathTablesDeadlockOnRing) {
  // A ring routed by plain shortest paths has the classic cyclic channel
  // dependency; up*/down* breaks it.
  NetTopology topo = RingTopology(6);
  auto naive = BuildShortestPathTables(topo);
  DependencyCheck bad = CheckChannelDependencies(topo, naive);
  EXPECT_FALSE(bad.acyclic);

  SpanningTree tree = ComputeSpanningTree(topo);
  auto updown = BuildAllForwardingTables(topo, tree);
  DependencyCheck good = CheckChannelDependencies(topo, updown);
  EXPECT_TRUE(good.acyclic);
}

TEST(Verify, ShortestPathRoutesStillDeliver) {
  NetTopology topo = RingTopology(5);
  auto tables = BuildShortestPathTables(topo);
  // Deliverability holds — it is the *dependency cycles*, not reachability,
  // that make naive shortest paths unusable on this fabric.
  CoverageResult cov = ChannelCoverage(topo, tables);
  EXPECT_EQ(cov.used, cov.total);
}

TEST(Verify, ChannelCoverageCompleteOnTree) {
  // On a pure tree every link is on some minimal route.
  NetTopology topo = LineTopology(5);
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);
  CoverageResult cov = ChannelCoverage(topo, tables);
  EXPECT_EQ(cov.used, cov.total);
}

TEST(Verify, TrunkGroupsGiveAlternatives) {
  // Two parallel cables between two switches act as a trunk group: the
  // forwarding entry lists both ports as alternatives (section 6.3).
  NetTopology topo = EmptyTopology(2);
  AddCable(&topo, 0, 1);
  AddCable(&topo, 0, 1);
  AddHostPerSwitch(&topo);
  AssignSwitchNumbers(&topo);
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);

  PortNum host_port = topo.switches[0].host_ports.Lowest();
  ShortAddress remote_host = ShortAddress::FromSwitchPort(
      topo.switches[1].assigned_num, topo.switches[1].host_ports.Lowest());
  ForwardingTable::Entry entry = tables[0].Lookup(host_port, remote_host);
  EXPECT_FALSE(entry.broadcast);
  EXPECT_EQ(entry.ports.Count(), 2);
}

TEST(Verify, CorruptedAddressDiscardedNotMisrouted) {
  // A packet that went down and then (because of a corrupted address) would
  // need to go up again hits a discard entry (section 6.6.4).
  NetTopology topo = LineTopology(3);
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);

  // At switch 2 (bottom of the line), a packet arriving from switch 1 came
  // down.  An address of a host on switch 0 would require going back up.
  ShortAddress uphill_dest = ShortAddress::FromSwitchPort(
      topo.switches[0].assigned_num, topo.switches[0].host_ports.Lowest());
  PortNum inport = topo.switches[2].links[0].local_port;
  ForwardingTable::Entry entry = tables[2].Lookup(inport, uphill_dest);
  EXPECT_TRUE(entry.IsDiscard());
}

TEST(Verify, BroadcastEntriesFollowTree) {
  NetTopology topo = LineTopology(3);
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);

  // Host on leaf switch 2 broadcasts: up-phase entry points at the parent.
  PortNum host2 = topo.switches[2].host_ports.Lowest();
  ForwardingTable::Entry up = tables[2].Lookup(host2, kAddrBroadcastAll);
  EXPECT_FALSE(up.broadcast);
  EXPECT_EQ(up.ports, PortVector::Single(tree.parent_port[2]));

  // At the root, the flood entry fans to children, hosts and the CP.
  ForwardingTable::Entry flood =
      tables[0].Lookup(tree.parent_port[1], kAddrBroadcastAll);
  // Root's entry is looked up with the port where child 1 attaches; find it.
  PortNum root_child_port = tree.ChildPorts(topo, 0).Lowest();
  flood = tables[0].Lookup(root_child_port, kAddrBroadcastAll);
  EXPECT_TRUE(flood.broadcast);
  EXPECT_TRUE(flood.ports.Test(kCpPort));
  EXPECT_TRUE(flood.ports.Test(topo.switches[0].host_ports.Lowest()));
  EXPECT_TRUE(flood.ports.Test(root_child_port));
}

TEST(Verify, HostsOnlyBroadcastSkipsCps) {
  NetTopology topo = LineTopology(2);
  SpanningTree tree = ComputeSpanningTree(topo);
  auto tables = BuildAllForwardingTables(topo, tree);
  PortNum root_child_port = tree.ChildPorts(topo, 0).Lowest();
  ForwardingTable::Entry flood =
      tables[0].Lookup(root_child_port, kAddrBroadcastHosts);
  EXPECT_FALSE(flood.ports.Test(kCpPort));
}

TEST(ForwardingTable, OneHopConstantPart) {
  ForwardingTable t = ForwardingTable::OneHopOnly();
  // From the CP, address 0x005 goes out port 5.
  ForwardingTable::Entry e = t.Lookup(kCpPort, OneHopAddress(5));
  EXPECT_EQ(e.ports, PortVector::Single(5));
  // From external port 7, the same address reaches the CP.
  e = t.Lookup(7, OneHopAddress(5));
  EXPECT_EQ(e.ports, PortVector::Single(kCpPort));
  // Address 0x000 from a host port reaches the CP.
  e = t.Lookup(3, kAddrLocalCp);
  EXPECT_EQ(e.ports, PortVector::Single(kCpPort));
  // Everything else discards.
  EXPECT_TRUE(t.Lookup(2, ShortAddress(0x345)).IsDiscard());
}

TEST(ForwardingTable, DefaultIsDiscardEverywhere) {
  ForwardingTable t;
  EXPECT_TRUE(t.Lookup(0, ShortAddress(0x010)).IsDiscard());
  EXPECT_TRUE(t.Lookup(12, kAddrBroadcastAll).IsDiscard());
}

TEST(UpDown, AllLinksDirectedAcyclically) {
  // Property: the up-direction assignment contains no directed cycles
  // (the basis of the deadlock-freedom argument).
  for (int seed = 0; seed < 8; ++seed) {
    NetTopology topo = RandomTopology(10, 8, 7000 + seed);
    SpanningTree tree = ComputeSpanningTree(topo);
    // Kahn's algorithm over up-edges.
    std::vector<int> indegree(topo.size(), 0);
    for (int s = 0; s < topo.size(); ++s) {
      for (const TopoLink& l : topo.switches[s].links) {
        if (TraversesUp(topo, tree, s, l.remote_switch)) {
          ++indegree[l.remote_switch];
        }
      }
    }
    std::vector<int> ready;
    for (int s = 0; s < topo.size(); ++s) {
      if (indegree[s] == 0) {
        ready.push_back(s);
      }
    }
    int removed = 0;
    while (!ready.empty()) {
      int s = ready.back();
      ready.pop_back();
      ++removed;
      for (const TopoLink& l : topo.switches[s].links) {
        if (TraversesUp(topo, tree, s, l.remote_switch)) {
          if (--indegree[l.remote_switch] == 0) {
            ready.push_back(l.remote_switch);
          }
        }
      }
    }
    EXPECT_EQ(removed, topo.size()) << "directed cycle with seed " << seed;
  }
}

}  // namespace
}  // namespace autonet
