#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "src/common/crc.h"
#include "src/common/event_log.h"
#include "src/common/histogram.h"
#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/common/port_vector.h"
#include "src/common/serialize.h"

namespace autonet {
namespace {

TEST(Uid, MasksTo48Bits) {
  Uid uid(0xFFFF'1234'5678'9ABCull);
  EXPECT_EQ(uid.value(), 0x1234'5678'9ABCull);
  EXPECT_FALSE(uid.IsNil());
  EXPECT_TRUE(Uid().IsNil());
}

TEST(Uid, Ordering) {
  EXPECT_LT(Uid(1), Uid(2));
  EXPECT_EQ(Uid(7), Uid(7));
}

TEST(ShortAddress, PaperAddressMap) {
  // The assignments of section 6.3 (low 11 bits of the 16-bit constants).
  EXPECT_TRUE(ShortAddress(0x000).IsLocalCp());
  for (std::uint16_t v = 0x001; v <= 0x00F; ++v) {
    EXPECT_TRUE(ShortAddress(v).IsOneHop()) << v;
    EXPECT_FALSE(ShortAddress(v).IsAssignable()) << v;
  }
  EXPECT_TRUE(ShortAddress(0x010).IsAssignable());
  EXPECT_TRUE(ShortAddress(0x7EF).IsAssignable());
  EXPECT_TRUE(ShortAddress(0x7F0).IsReserved());
  EXPECT_TRUE(ShortAddress(0x7FB).IsReserved());
  EXPECT_TRUE(kAddrLoopback.IsLoopback());
  EXPECT_TRUE(kAddrBroadcastAll.IsBroadcastAll());
  EXPECT_TRUE(kAddrBroadcastSwitches.IsBroadcastSwitches());
  EXPECT_TRUE(kAddrBroadcastHosts.IsBroadcastHosts());
  EXPECT_TRUE(kAddrBroadcastAll.IsBroadcast());
  EXPECT_FALSE(ShortAddress(0x7FC).IsBroadcast());
}

TEST(ShortAddress, SwitchPortSplit) {
  ShortAddress addr = ShortAddress::FromSwitchPort(5, 7);
  EXPECT_EQ(addr.value(), (5u << 4) | 7u);
  EXPECT_EQ(addr.switch_num(), 5);
  EXPECT_EQ(addr.port(), 7);
  EXPECT_TRUE(addr.IsAssignable());
}

TEST(ShortAddress, MaxSwitchNumberStaysAssignable) {
  ShortAddress addr = ShortAddress::FromSwitchPort(kMaxSwitchNum, 12);
  EXPECT_TRUE(addr.IsAssignable());
  // Port 15 of the max switch number would collide with the reserved range;
  // switches only have ports 0..12, so this cannot arise.
  EXPECT_EQ(ShortAddress::FromSwitchPort(kMaxSwitchNum, 12).switch_num(),
            kMaxSwitchNum);
}

TEST(ShortAddress, Masks16BitValuesLikeThePrototype) {
  // Prototype switches interpret only the low-order 11 bits.
  EXPECT_EQ(ShortAddress(0xFFFD).value(), kAddrBroadcastAll.value());
  EXPECT_EQ(ShortAddress(0xFFFF).value(), kAddrBroadcastHosts.value());
}

TEST(PortVector, BasicSetOperations) {
  PortVector v;
  EXPECT_TRUE(v.empty());
  v.Set(3);
  v.Set(12);
  EXPECT_TRUE(v.Test(3));
  EXPECT_TRUE(v.Test(12));
  EXPECT_FALSE(v.Test(4));
  EXPECT_EQ(v.Count(), 2);
  EXPECT_EQ(v.Lowest(), 3);
  v.Clear(3);
  EXPECT_EQ(v.Lowest(), 12);
}

TEST(PortVector, MasksTo13Bits) {
  PortVector v(0xFFFF);
  EXPECT_EQ(v.bits(), 0x1FFF);
  EXPECT_EQ(v.Count(), 13);
}

TEST(PortVector, ForEachVisitsAscending) {
  PortVector v;
  v.Set(9);
  v.Set(0);
  v.Set(4);
  std::vector<PortNum> seen;
  v.ForEach([&](PortNum p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<PortNum>{0, 4, 9}));
}

TEST(PortVector, SetAlgebra) {
  PortVector a = PortVector::Single(1) | PortVector::Single(2);
  PortVector b = PortVector::Single(2) | PortVector::Single(3);
  EXPECT_EQ((a & b), PortVector::Single(2));
  EXPECT_EQ((a | b).Count(), 3);
  EXPECT_FALSE((a & ~b).Test(2));
  EXPECT_TRUE((a & ~b).Test(1));
}

TEST(Packet, WireSizeAccounting) {
  Packet p;
  p.type = PacketType::kEthernetEncap;
  p.payload.assign(100, 0);
  // 32-byte Autonet header + 14-byte encap header + data + 8-byte CRC.
  EXPECT_EQ(p.WireSize(), 32u + 14u + 100u + 8u);

  Packet c;
  c.type = PacketType::kReconfig;
  c.payload.assign(20, 0);
  EXPECT_EQ(c.WireSize(), 32u + 20u + 8u);
}

TEST(Packet, MakePacketAssignsUniqueIds) {
  PacketRef a = MakePacket(Packet{});
  PacketRef b = MakePacket(Packet{});
  EXPECT_NE(a->id, b->id);
}

TEST(Crc64, KnownProperties) {
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  std::uint64_t crc = Crc64::Compute(data, sizeof(data));
  // CRC-64/WE check value for "123456789" (ECMA-182 polynomial with
  // all-ones init and final inversion).
  EXPECT_EQ(crc, 0x62EC59E3F1A4F00Aull);
}

TEST(Crc64, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xAB);
  std::uint64_t before = Crc64::Compute(data.data(), data.size());
  data[17] ^= 0x04;
  EXPECT_NE(before, Crc64::Compute(data.data(), data.size()));
}

TEST(Crc64, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(static_cast<std::uint8_t>(i * 7));
  }
  Crc64 inc;
  inc.Update(data.data(), 100);
  inc.Update(data.data() + 100, 200);
  EXPECT_EQ(inc.Finish(), Crc64::Compute(data.data(), data.size()));
}

TEST(Serialize, RoundTrip) {
  ByteWriter w;
  w.U8(0x12);
  w.U16(0x3456);
  w.U32(0x789ABCDE);
  w.U64(0x1122334455667788ull);
  w.WriteUid(Uid(0xABCDEF));
  w.WriteShortAddress(ShortAddress(0x123));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0x12);
  EXPECT_EQ(r.U16(), 0x3456);
  EXPECT_EQ(r.U32(), 0x789ABCDEu);
  EXPECT_EQ(r.U64(), 0x1122334455667788ull);
  EXPECT_EQ(r.ReadUid(), Uid(0xABCDEF));
  EXPECT_EQ(r.ReadShortAddress(), ShortAddress(0x123));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, TruncatedReadSetsError) {
  ByteWriter w;
  w.U16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.U32(), 7u);  // reads past end: zeros
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, ReaderRefusesTemporaryVectors) {
  // The reader borrows the vector's storage; binding a temporary would
  // leave it dangling before the first read.
  static_assert(
      !std::is_constructible_v<ByteReader, std::vector<std::uint8_t>>,
      "ByteReader must not bind an rvalue vector");
  static_assert(
      std::is_constructible_v<ByteReader, const std::vector<std::uint8_t>&>,
      "ByteReader still binds lvalue vectors");
}

TEST(Serialize, UidWithBitsAboveTheMaskIsAnError) {
  // Only 48 bits of a wire UID field are meaningful and every writer
  // masks, so set high bits can only be corruption.  Constructing the Uid
  // would silently drop them — and the message would re-serialize
  // differently from what was received.
  ByteWriter w;
  w.U64(Uid::kMask + 1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadUid(), Uid(0));
  EXPECT_FALSE(r.ok());

  ByteWriter w2;
  w2.WriteUid(Uid(0xABCDEF));
  ByteReader r2(w2.bytes());
  EXPECT_EQ(r2.ReadUid(), Uid(0xABCDEF));
  EXPECT_TRUE(r2.ok());
}

TEST(Serialize, ShortAddressWithBitsAboveTheMaskIsAnError) {
  ByteWriter w;
  w.U16(static_cast<std::uint16_t>(ShortAddress::kMask + 1));
  ByteReader r(w.bytes());
  r.ReadShortAddress();
  EXPECT_FALSE(r.ok());
}

TEST(EventLog, MergeOrdersByTime) {
  EventLog a("a");
  EventLog b("b");
  a.Log(300, "third");
  b.Log(100, "first");
  a.Log(200, "second");
  auto merged = EventLog::Merge({&a, &b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].message, "first");
  EXPECT_EQ(merged[1].message, "second");
  EXPECT_EQ(merged[2].message, "third");
}

TEST(EventLog, MergeBreaksTimestampTiesBySeq) {
  EventLog a("a");
  EventLog b("b");
  // All four entries share one timestamp; the global seq counter (one
  // fetch_add per Log call, across all logs) must decide the order.
  a.Log(500, "first");
  b.Log(500, "second");
  b.Log(500, "third");
  a.Log(500, "fourth");
  auto merged = EventLog::Merge({&b, &a});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].message, "first");
  EXPECT_EQ(merged[1].message, "second");
  EXPECT_EQ(merged[2].message, "third");
  EXPECT_EQ(merged[3].message, "fourth");
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].seq, merged[i].seq);
  }
}

TEST(EventLog, LogfTruncatesLongMessages) {
  EventLog log("x");
  std::string big(1000, 'y');
  log.Logf(1, "head %s", big.c_str());
  ASSERT_EQ(log.entries().size(), 1u);
  // vsnprintf into the 512-byte stack buffer: 511 characters + NUL.
  const std::string& msg = log.entries().front().message;
  EXPECT_EQ(msg.size(), 511u);
  EXPECT_EQ(msg.substr(0, 5), "head ");
  EXPECT_EQ(msg.back(), 'y');
}

TEST(EventLog, CircularCapacity) {
  EventLog log("x", 4);
  for (int i = 0; i < 10; ++i) {
    log.Logf(i, "entry %d", i);
  }
  ASSERT_EQ(log.entries().size(), 4u);
  EXPECT_EQ(log.entries().front().message, "entry 6");
}

TEST(EventLog, DisabledLogsNothing) {
  EventLog log("x");
  log.set_enabled(false);
  log.Log(1, "dropped");
  EXPECT_TRUE(log.entries().empty());
}

TEST(Histogram, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.51);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.1);
}

TEST(Histogram, MergeIsSampleExact) {
  Histogram a;
  Histogram b;
  Histogram all;
  for (int i = 1; i <= 50; ++i) {
    a.Add(i);
    all.Add(i);
  }
  for (int i = 51; i <= 100; ++i) {
    b.Add(i);
    all.Add(i);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
  EXPECT_DOUBLE_EQ(a.Sum(), all.Sum());
  EXPECT_DOUBLE_EQ(a.Percentile(50), all.Percentile(50));
  EXPECT_DOUBLE_EQ(a.Percentile(99), all.Percentile(99));

  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 100u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 100u);
  EXPECT_DOUBLE_EQ(empty.Min(), 1);
}

TEST(Histogram, P999InterpolatesIntoSparseTail) {
  // One outlier among 1000 samples: p999 should land just off the bulk,
  // not jump straight to the outlier (that is p100's job).
  Histogram h;
  for (int i = 0; i < 999; ++i) {
    h.Add(1.0);
  }
  h.Add(100.0);
  // rank = 0.999 * 999 = 998.001: between the last 1.0 and the outlier.
  EXPECT_NEAR(h.Percentile(99.9), 1.0 + 0.001 * 99.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(Histogram, P999WithFewerSamplesThanATail) {
  // Far fewer than 1000 samples: p999 must interpolate inside the range,
  // never index past the max.
  Histogram h;
  h.Add(5.0);
  h.Add(7.0);
  h.Add(9.0);
  // rank = 0.999 * 2 = 1.998 -> 7 + 0.998 * 2.
  EXPECT_NEAR(h.Percentile(99.9), 8.996, 1e-9);

  Histogram one;
  one.Add(42.0);
  EXPECT_DOUBLE_EQ(one.Percentile(99.9), 42.0);

  Histogram none;
  EXPECT_DOUBLE_EQ(none.Percentile(99.9), 0.0);
}

TEST(Time, PropagationDelayMatchesPaperFormula) {
  // W = 64.1 slots/km: a 2 km link is 128.2 slots one way (section 6.2).
  EXPECT_EQ(PropagationDelayNs(2.0), static_cast<Tick>(128.2 * 80));
}

}  // namespace
}  // namespace autonet
