#include <gtest/gtest.h>

#include <optional>

#include "src/fabric/port_fifo.h"
#include "src/fabric/scheduler.h"
#include "src/fabric/switch.h"
#include "src/host/controller.h"
#include "src/link/slots.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "tests/topo_helpers.h"

namespace autonet {
namespace {

PacketRef DataPacket(ShortAddress dest, ShortAddress src,
                     std::size_t data_bytes = 12) {
  Packet p;
  p.dest = dest;
  p.src = src;
  p.type = PacketType::kEthernetEncap;
  p.payload.assign(data_bytes, 0x5A);
  return MakePacket(std::move(p));
}

// --- PortFifo ---

TEST(PortFifo, CutThroughByteAccounting) {
  PortFifo fifo(64);
  PacketRef pkt = DataPacket(ShortAddress(0x20), ShortAddress(0x10));
  fifo.PushBegin(pkt);
  EXPECT_FALSE(fifo.HeadCaptureReady());
  fifo.PushByte();
  EXPECT_FALSE(fifo.HeadCaptureReady());
  fifo.PushByte();
  EXPECT_TRUE(fifo.HeadCaptureReady());  // two address bytes buffered
  EXPECT_EQ(fifo.occupancy(), 2u);

  // Pop while still receiving (cut-through).
  EXPECT_EQ(fifo.PopByte(), std::optional<std::uint32_t>(0));
  EXPECT_EQ(fifo.occupancy(), 1u);
  fifo.PushByte();
  EXPECT_EQ(fifo.PopByte(), std::optional<std::uint32_t>(1));
  EXPECT_EQ(fifo.PopByte(), std::optional<std::uint32_t>(2));
  EXPECT_EQ(fifo.PopByte(), std::nullopt);  // drained ahead of arrival
  EXPECT_FALSE(fifo.HeadEndReady());

  fifo.PushEnd(EndFlags{});
  EXPECT_TRUE(fifo.HeadEndReady());
  auto end = fifo.TryPopEnd();
  ASSERT_TRUE(end.has_value());
  EXPECT_FALSE(end->corrupted);
  EXPECT_TRUE(fifo.empty());
}

TEST(PortFifo, EndMarkOccupiesASlot) {
  PortFifo fifo(64);
  fifo.PushBegin(DataPacket(ShortAddress(1), ShortAddress(2)));
  fifo.PushByte();
  fifo.PushEnd(EndFlags{});
  EXPECT_EQ(fifo.occupancy(), 2u);  // 1 byte + end mark
}

TEST(PortFifo, OverflowDropsByteAndCorruptsPacket) {
  PortFifo fifo(4);
  fifo.PushBegin(DataPacket(ShortAddress(1), ShortAddress(2)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fifo.PushByte());
  }
  EXPECT_FALSE(fifo.PushByte());  // full
  EXPECT_EQ(fifo.overflow_count(), 1u);
  fifo.PushEnd(EndFlags{});
  for (int i = 0; i < 4; ++i) {
    fifo.PopByte();
  }
  auto end = fifo.TryPopEnd();
  ASSERT_TRUE(end.has_value());
  EXPECT_TRUE(end->corrupted);
}

TEST(PortFifo, HalfFullThreshold) {
  PortFifo fifo(8);
  fifo.PushBegin(DataPacket(ShortAddress(1), ShortAddress(2)));
  for (int i = 0; i < 4; ++i) {
    fifo.PushByte();
  }
  EXPECT_FALSE(fifo.MoreThanHalfFull());
  fifo.PushByte();
  EXPECT_TRUE(fifo.MoreThanHalfFull());
}

TEST(PortFifo, MultiplePacketsQueueInOrder) {
  PortFifo fifo(64);
  PacketRef first = DataPacket(ShortAddress(1), ShortAddress(2));
  PacketRef second = DataPacket(ShortAddress(3), ShortAddress(4));
  fifo.PushBegin(first);
  fifo.PushByte();
  fifo.PushByte();
  fifo.PushEnd(EndFlags{});
  fifo.PushBegin(second);
  fifo.PushByte();
  fifo.PushEnd(EndFlags{});

  EXPECT_EQ(fifo.head().packet->id, first->id);
  fifo.PopByte();
  fifo.PopByte();
  fifo.TryPopEnd();
  EXPECT_EQ(fifo.head().packet->id, second->id);
}

TEST(PortFifo, AbortIncomingTruncates) {
  PortFifo fifo(64);
  fifo.PushBegin(DataPacket(ShortAddress(1), ShortAddress(2)));
  fifo.PushByte();
  fifo.AbortIncoming();
  fifo.PopByte();
  auto end = fifo.TryPopEnd();
  ASSERT_TRUE(end.has_value());
  EXPECT_TRUE(end->truncated);
}

TEST(PortFifo, MaxOccupancyHighWaterMark) {
  PortFifo fifo(32);
  fifo.PushBegin(DataPacket(ShortAddress(1), ShortAddress(2)));
  for (int i = 0; i < 10; ++i) {
    fifo.PushByte();
  }
  for (int i = 0; i < 10; ++i) {
    fifo.PopByte();
  }
  EXPECT_EQ(fifo.occupancy(), 0u);
  EXPECT_EQ(fifo.max_occupancy(), 10u);
}

// --- SchedulerEngine ---

class SchedulerTest : public ::testing::Test {
 protected:
  void Init(bool fcfs = false) {
    engine_.emplace(&sim_, SchedulerEngine::Config{kRouterCycleNs, fcfs});
    engine_->SetHooks([this] { return free_; },
                      [this](const SchedulerEngine::Request& r, PortVector v) {
                        grants_.push_back({r.inport, v});
                      });
  }

  Simulator sim_;
  std::optional<SchedulerEngine> engine_;
  PortVector free_ = PortVector::All();
  std::vector<std::pair<PortNum, PortVector>> grants_;
};

TEST_F(SchedulerTest, GrantsLowestNumberedAlternative) {
  Init();
  PortVector want;
  want.Set(7);
  want.Set(3);
  engine_->Enqueue(1, want, false);
  sim_.Run();
  ASSERT_EQ(grants_.size(), 1u);
  EXPECT_EQ(grants_[0].second, PortVector::Single(3));
}

TEST_F(SchedulerTest, OneGrantPerCycle) {
  Init();
  engine_->Enqueue(1, PortVector::Single(5), false);
  engine_->Enqueue(2, PortVector::Single(6), false);
  sim_.RunUntil(kRouterCycleNs);
  EXPECT_EQ(grants_.size(), 1u);  // 2 M requests/second ceiling
  sim_.RunUntil(2 * kRouterCycleNs);
  EXPECT_EQ(grants_.size(), 2u);
}

TEST_F(SchedulerTest, QueueJumpingServesYoungerRequest) {
  Init();
  free_ = PortVector::Single(6);
  engine_->Enqueue(1, PortVector::Single(5), false);  // blocked: 5 busy
  engine_->Enqueue(2, PortVector::Single(6), false);  // can go now
  sim_.Run();
  ASSERT_EQ(grants_.size(), 1u);
  EXPECT_EQ(grants_[0].first, 2);

  // When port 5 frees, the older request is served.
  free_ = PortVector::Single(5) | PortVector::Single(6);
  engine_->Kick();
  sim_.Run();
  ASSERT_EQ(grants_.size(), 2u);
  EXPECT_EQ(grants_[1].first, 1);
}

TEST_F(SchedulerTest, FcfsBaselineHeadOfLineBlocks) {
  Init(/*fcfs=*/true);
  free_ = PortVector::Single(6);
  engine_->Enqueue(1, PortVector::Single(5), false);
  engine_->Enqueue(2, PortVector::Single(6), false);
  sim_.Run();
  EXPECT_TRUE(grants_.empty());  // younger request starves behind the head
}

TEST_F(SchedulerTest, BroadcastAccumulatesReservations) {
  Init();
  free_ = PortVector::Single(2);
  PortVector want = PortVector::Single(2) | PortVector::Single(3);
  engine_->Enqueue(1, want, true);
  sim_.Run();
  EXPECT_TRUE(grants_.empty());  // port 3 still busy; port 2 reserved

  // A younger request for the reserved port 2 cannot steal it.
  engine_->Enqueue(4, PortVector::Single(2), false);
  sim_.Run();
  EXPECT_TRUE(grants_.empty());

  // When port 3 frees, the broadcast completes with its full set.
  free_ = PortVector::Single(2) | PortVector::Single(3);
  engine_->Kick();
  sim_.Run();
  ASSERT_GE(grants_.size(), 1u);
  EXPECT_EQ(grants_[0].first, 1);
  EXPECT_EQ(grants_[0].second, want);
}

TEST_F(SchedulerTest, RemoveReleasesReservations) {
  Init();
  free_ = PortVector::Single(2);
  engine_->Enqueue(1, PortVector::Single(2) | PortVector::Single(3), true);
  sim_.Run();
  engine_->Enqueue(4, PortVector::Single(2), false);
  engine_->Remove(1);  // broadcast gives up its reservation
  sim_.Run();
  ASSERT_EQ(grants_.size(), 1u);
  EXPECT_EQ(grants_[0].first, 4);
}

// --- End-to-end forwarding through real switches ---

// Two switches, one inter-switch link, one host on each switch.
class MiniNetTest : public ::testing::Test {
 protected:
  static constexpr PortNum kTrunkPort = 1;
  static constexpr PortNum kHostPort = 3;

  void SetUp() override {
    sw_a_ = std::make_unique<Switch>(&sim_, Uid(0x100), "swA");
    sw_b_ = std::make_unique<Switch>(&sim_, Uid(0x101), "swB");
    h1_ = std::make_unique<HostController>(&sim_, Uid(0xAAA), "h1");
    h2_ = std::make_unique<HostController>(&sim_, Uid(0xBBB), "h2");

    trunk_ = std::make_unique<Link>(&sim_, 0.01);
    sw_a_->AttachLink(kTrunkPort, trunk_.get(), Link::Side::kA);
    sw_b_->AttachLink(kTrunkPort, trunk_.get(), Link::Side::kB);

    link1_ = std::make_unique<Link>(&sim_, 0.01);
    h1_->AttachPort(0, link1_.get(), Link::Side::kA);
    sw_a_->AttachLink(kHostPort, link1_.get(), Link::Side::kB);

    link2_ = std::make_unique<Link>(&sim_, 0.01);
    h2_->AttachPort(0, link2_.get(), Link::Side::kA);
    sw_b_->AttachLink(kHostPort, link2_.get(), Link::Side::kB);

    // Build and load up*/down* tables for this 2-switch topology.
    topo_ = EmptyTopology(2);
    topo_.switches[0].links.push_back({kTrunkPort, 1, kTrunkPort});
    topo_.switches[1].links.push_back({kTrunkPort, 0, kTrunkPort});
    topo_.switches[0].host_ports.Set(kHostPort);
    topo_.switches[1].host_ports.Set(kHostPort);
    AssignSwitchNumbers(&topo_);
    SpanningTree tree = ComputeSpanningTree(topo_);
    auto tables = BuildAllForwardingTables(topo_, tree);
    sw_a_->LoadForwardingTable(tables[0]);
    sw_b_->LoadForwardingTable(tables[1]);

    h1_->SetReceiveHandler([this](Delivery d) { h1_rx_.push_back(d); });
    h2_->SetReceiveHandler([this](Delivery d) { h2_rx_.push_back(d); });
  }

  ShortAddress AddrH1() const {
    return ShortAddress::FromSwitchPort(topo_.switches[0].assigned_num,
                                        kHostPort);
  }
  ShortAddress AddrH2() const {
    return ShortAddress::FromSwitchPort(topo_.switches[1].assigned_num,
                                        kHostPort);
  }

  Simulator sim_;
  NetTopology topo_;
  // Links outlive the devices that detach from them on destruction.
  std::unique_ptr<Link> trunk_, link1_, link2_;
  std::unique_ptr<Switch> sw_a_;
  std::unique_ptr<Switch> sw_b_;
  std::unique_ptr<HostController> h1_;
  std::unique_ptr<HostController> h2_;
  std::vector<Delivery> h1_rx_, h2_rx_;
};

TEST_F(MiniNetTest, UnicastDeliveryAcrossTwoSwitches) {
  PacketRef pkt = DataPacket(AddrH2(), AddrH1(), 100);
  EXPECT_TRUE(h1_->Send(pkt));
  sim_.RunUntil(1 * kMillisecond);

  ASSERT_EQ(h2_rx_.size(), 1u);
  EXPECT_EQ(h2_rx_[0].packet->id, pkt->id);
  EXPECT_TRUE(h2_rx_[0].intact());
  EXPECT_EQ(sw_a_->stats().packets_forwarded, 1u);
  EXPECT_EQ(sw_b_->stats().packets_forwarded, 1u);
}

TEST_F(MiniNetTest, CutThroughLatencyIsNotStoreAndForward) {
  // A large packet's end-to-end latency must be near one serialization time
  // plus per-switch cut-through latency, not 3x serialization.
  const std::size_t data = 4000;
  PacketRef pkt = DataPacket(AddrH2(), AddrH1(), data);
  Tick start = sim_.now();
  h1_->Send(pkt);
  sim_.RunUntil(10 * kMillisecond);
  ASSERT_EQ(h2_rx_.size(), 1u);
  Tick latency = h2_rx_[0].delivered_at - start;

  // One serialization: wire bytes at ~80ns each (plus flow slots).
  Tick serialization = static_cast<Tick>(pkt->WireSize()) * kSlotNs;
  EXPECT_GT(latency, serialization);
  EXPECT_LT(latency, serialization + 40 * kMicrosecond)
      << "looks like store-and-forward";
}

TEST_F(MiniNetTest, LocalSwitchDeliveryStaysLocal) {
  // Host to a host on the same switch: only switch A forwards.
  // (Here: h1 -> its own address loops via switch A's host entry.)
  PacketRef pkt = DataPacket(AddrH1(), AddrH1(), 10);
  h1_->Send(pkt);
  sim_.RunUntil(1 * kMillisecond);
  ASSERT_EQ(h1_rx_.size(), 1u);
  EXPECT_EQ(sw_b_->stats().packets_forwarded, 0u);
}

TEST_F(MiniNetTest, LoopbackAddressReflects) {
  PacketRef pkt = DataPacket(kAddrLoopback, AddrH1(), 10);
  h1_->Send(pkt);
  sim_.RunUntil(1 * kMillisecond);
  ASSERT_EQ(h1_rx_.size(), 1u);
  EXPECT_EQ(h1_rx_[0].packet->id, pkt->id);
  EXPECT_TRUE(h2_rx_.empty());
}

TEST_F(MiniNetTest, UnknownAddressDiscarded) {
  // An assignable address no one owns.
  PacketRef pkt = DataPacket(ShortAddress(0x7E0), AddrH1(), 10);
  h1_->Send(pkt);
  sim_.RunUntil(1 * kMillisecond);
  EXPECT_TRUE(h1_rx_.empty());
  EXPECT_TRUE(h2_rx_.empty());
  EXPECT_GE(sw_a_->stats().packets_discarded, 1u);
}

TEST_F(MiniNetTest, BroadcastReachesAllHostsAndCps) {
  std::vector<Delivery> cp_a, cp_b;
  sw_a_->SetCpHandler([&](Delivery d) { cp_a.push_back(d); });
  sw_b_->SetCpHandler([&](Delivery d) { cp_b.push_back(d); });

  PacketRef pkt = DataPacket(kAddrBroadcastAll, AddrH1(), 64);
  h1_->Send(pkt);
  sim_.RunUntil(2 * kMillisecond);

  ASSERT_EQ(h2_rx_.size(), 1u);
  ASSERT_EQ(h1_rx_.size(), 1u);  // flood-down revisits the origin subtree
  EXPECT_EQ(cp_a.size(), 1u);
  EXPECT_EQ(cp_b.size(), 1u);
}

TEST_F(MiniNetTest, BroadcastToSwitchesSkipsHosts) {
  std::vector<Delivery> cp_b;
  sw_b_->SetCpHandler([&](Delivery d) { cp_b.push_back(d); });
  PacketRef pkt = DataPacket(kAddrBroadcastSwitches, AddrH1(), 16);
  h1_->Send(pkt);
  sim_.RunUntil(2 * kMillisecond);
  EXPECT_EQ(cp_b.size(), 1u);
  EXPECT_TRUE(h2_rx_.empty());
}

TEST_F(MiniNetTest, OneHopPacketsBetweenCps) {
  std::vector<Delivery> cp_b;
  sw_b_->SetCpHandler([&](Delivery d) { cp_b.push_back(d); });

  Packet p;
  p.dest = OneHopAddress(kTrunkPort);
  p.src = OneHopAddress(kTrunkPort);
  p.type = PacketType::kReconfig;
  p.payload.assign(20, 1);
  sw_a_->CpSend(MakePacket(std::move(p)));
  sim_.RunUntil(1 * kMillisecond);
  ASSERT_EQ(cp_b.size(), 1u);
  EXPECT_TRUE(cp_b[0].intact());
}

TEST_F(MiniNetTest, ContendingSendersBothDeliver) {
  // Both hosts send two packets to each other simultaneously; full-duplex
  // links let all four flow.
  h1_->Send(DataPacket(AddrH2(), AddrH1(), 500));
  h1_->Send(DataPacket(AddrH2(), AddrH1(), 500));
  h2_->Send(DataPacket(AddrH1(), AddrH2(), 500));
  h2_->Send(DataPacket(AddrH1(), AddrH2(), 500));
  sim_.RunUntil(5 * kMillisecond);
  EXPECT_EQ(h1_rx_.size(), 2u);
  EXPECT_EQ(h2_rx_.size(), 2u);
}

TEST_F(MiniNetTest, TableLoadResetDestroysInFlightPackets) {
  PacketRef pkt = DataPacket(AddrH2(), AddrH1(), 60000);
  h1_->Send(pkt);
  // Let the packet get going, then reset switch B by reloading its table.
  sim_.RunUntil(200 * kMicrosecond);
  sw_b_->LoadForwardingTable(sw_b_->forwarding_table());
  sim_.RunUntil(20 * kMillisecond);
  // The packet is lost or arrives damaged — never intact.
  for (const Delivery& d : h2_rx_) {
    EXPECT_FALSE(d.intact());
  }
  EXPECT_GE(sw_b_->stats().resets, 1u);
}

TEST_F(MiniNetTest, CorruptTrunkMarksCrcFailure) {
  trunk_->SetCorruptionRate(0.05);
  h1_->Send(DataPacket(AddrH2(), AddrH1(), 2000));
  sim_.RunUntil(10 * kMillisecond);
  ASSERT_EQ(h2_rx_.size(), 1u);
  EXPECT_TRUE(h2_rx_[0].corrupted);
  EXPECT_EQ(h2_->stats().rx_crc_errors, 1u);
}

}  // namespace
}  // namespace autonet
