#include <gtest/gtest.h>

#include <limits>

#include "src/autopilot/skeptic.h"

namespace autonet {
namespace {

constexpr Tick kBase = 20 * kMillisecond;
constexpr Tick kMax = 60 * kSecond;
constexpr Tick kForgive = 10 * kSecond;

TEST(Skeptic, StartsAtBaseHolddown) {
  Skeptic s(kBase, kMax, kForgive);
  EXPECT_EQ(s.RequiredHolddown(0), kBase);
}

TEST(Skeptic, EachRelapseDoublesHolddown) {
  Skeptic s(kBase, kMax, kForgive);
  Tick now = 0;
  s.Penalize(now);
  EXPECT_EQ(s.RequiredHolddown(now), 2 * kBase);
  s.Penalize(now += kMillisecond);
  EXPECT_EQ(s.RequiredHolddown(now), 4 * kBase);
  s.Penalize(now += kMillisecond);
  EXPECT_EQ(s.RequiredHolddown(now), 8 * kBase);
}

TEST(Skeptic, HolddownIsCapped) {
  Skeptic s(kBase, kMax, kForgive);
  Tick now = 0;
  for (int i = 0; i < 40; ++i) {
    s.Penalize(now += kMillisecond);
  }
  EXPECT_EQ(s.RequiredHolddown(now), kMax);
}

TEST(Skeptic, GoodServiceEarnsLevelsBack) {
  Skeptic s(kBase, kMax, kForgive);
  Tick now = 0;
  s.Penalize(now);
  s.Penalize(now += kMillisecond);
  EXPECT_EQ(s.level(), 2);
  // One forgiveness period recovers one level.
  EXPECT_EQ(s.RequiredHolddown(now + kForgive), 2 * kBase);
  // Long good service recovers fully.
  EXPECT_EQ(s.RequiredHolddown(now + 10 * kForgive), kBase);
  EXPECT_EQ(s.level(), 0);
}

TEST(Skeptic, PenaltyAfterForgivenessCountsFromReducedLevel) {
  Skeptic s(kBase, kMax, kForgive);
  Tick now = 0;
  for (int i = 0; i < 4; ++i) {
    s.Penalize(now += kMillisecond);
  }
  EXPECT_EQ(s.level(), 4);
  // Two quiet forgiveness periods, then a relapse: 4 - 2 + 1 = 3.
  now += 2 * kForgive;
  s.Penalize(now);
  EXPECT_EQ(s.level(), 3);
}

TEST(Skeptic, ZeroForgivenessNeverDecays) {
  Skeptic s(kBase, kMax, /*forgiveness=*/0);
  Tick now = 0;
  s.Penalize(now);
  s.Penalize(now + kMillisecond);
  EXPECT_EQ(s.RequiredHolddown(now + 1000 * kSecond), 4 * kBase);
}

TEST(Skeptic, ManyPenaltiesWithUnboundedMaxDoNotOverflow) {
  // With max_ near the type limit the doubling loop used to run once per
  // recorded relapse and sign-overflow Tick (UB; observable as a negative
  // holddown).  It must saturate at max_ instead.
  constexpr Tick kHuge = std::numeric_limits<Tick>::max();
  Skeptic s(/*base_holddown=*/3, /*max_holddown=*/kHuge, /*forgiveness=*/0);
  Tick now = 0;
  for (int i = 0; i < 100; ++i) {
    s.Penalize(now += kMillisecond);
  }
  // 3 << 62 would overflow; the doubling loop must saturate instead.
  EXPECT_EQ(s.RequiredHolddown(now), kHuge);
  EXPECT_GT(s.RequiredHolddown(now), 0);
}

TEST(Skeptic, LevelIsCappedSoRelapseDebtStaysBounded) {
  // Beyond kMaxLevel further doublings cannot raise any representable
  // holddown, so the level stops growing — otherwise millennia of
  // forgiveness would be owed after a long fault burst.
  Skeptic s(kBase, kMax, kForgive);
  Tick now = 0;
  for (int i = 0; i < 10000; ++i) {
    s.Penalize(now += kMillisecond);
  }
  EXPECT_LE(s.level(), Skeptic::kMaxLevel);
  EXPECT_EQ(s.RequiredHolddown(now), kMax);
  // The bounded debt forgives back to zero in bounded time.
  EXPECT_EQ(s.RequiredHolddown(now + (Skeptic::kMaxLevel + 1) * kForgive),
            kBase);
}

// Property: the holddown is monotone in the number of recent penalties and
// never leaves [base, max].
TEST(Skeptic, HolddownBounds) {
  Skeptic s(kBase, kMax, kForgive);
  Tick now = 0;
  Tick previous = s.RequiredHolddown(now);
  for (int i = 0; i < 64; ++i) {
    s.Penalize(now += 2 * kMillisecond);
    Tick h = s.RequiredHolddown(now);
    EXPECT_GE(h, kBase);
    EXPECT_LE(h, kMax);
    EXPECT_GE(h, previous);
    previous = h;
  }
}

// Property: the paper's stability requirement — an intermittent resource
// flapping with period P is accepted at most ~T/holddown times over T, so
// the reconfiguration rate decays as the skeptic learns.
TEST(Skeptic, AcceptanceRateDecaysUnderFlapping) {
  Skeptic s(kBase, kMax, kForgive);
  Tick now = 0;
  int accepted_first_half = 0;
  int accepted_second_half = 0;
  const Tick kWindow = 120 * kSecond;
  Tick clean_since = 0;
  while (now < kWindow) {
    now += 100 * kMillisecond;  // flap every 100 ms
    if (now - clean_since >= s.RequiredHolddown(now)) {
      // accepted, then immediately fails again
      (now < kWindow / 2 ? accepted_first_half : accepted_second_half)++;
      s.Penalize(now);
      clean_since = now;
    }
  }
  EXPECT_GT(accepted_first_half, 0);
  EXPECT_LT(accepted_second_half, accepted_first_half);
}

}  // namespace
}  // namespace autonet
