#include <gtest/gtest.h>

#include <vector>

#include "src/link/link.h"
#include "src/link/slots.h"
#include "src/sim/simulator.h"

namespace autonet {
namespace {

// Records everything it receives.
class RecordingEndpoint : public LinkEndpoint {
 public:
  void OnPacketBegin(const PacketRef& packet) override {
    begins.push_back(packet);
  }
  void OnDataByte(const PacketRef&, std::uint32_t offset,
                  bool corrupt) override {
    bytes.push_back(offset);
    if (corrupt) {
      ++corrupt_bytes;
    }
  }
  void OnPacketEnd(EndFlags flags) override { ends.push_back(flags); }
  void OnFlowDirective(FlowDirective d) override { directives.push_back(d); }
  void OnCarrierChange(bool up) override { carrier_changes.push_back(up); }

  std::vector<PacketRef> begins;
  std::vector<std::uint32_t> bytes;
  std::vector<EndFlags> ends;
  std::vector<FlowDirective> directives;
  std::vector<bool> carrier_changes;
  int corrupt_bytes = 0;
};

PacketRef TestPacket() {
  Packet p;
  p.dest = ShortAddress(0x123);
  p.src = ShortAddress(0x456);
  p.type = PacketType::kReconfig;
  p.payload = {1, 2, 3};
  return MakePacket(std::move(p));
}

TEST(Slots, FlowSlotEvery256) {
  EXPECT_TRUE(IsFlowSlot(0));
  EXPECT_FALSE(IsFlowSlot(1));
  EXPECT_TRUE(IsFlowSlot(256));
  EXPECT_EQ(NextFlowSlotAt(0), 0);
  EXPECT_EQ(NextFlowSlotAt(1), 256 * kSlotNs);
  EXPECT_EQ(NextFlowSlotAt(256 * kSlotNs), 256 * kSlotNs);
}

TEST(Slots, NextDataSlotSkipsFlowSlots) {
  // Slot 0 is a flow slot, so the first data slot at t=0 is slot 1.
  EXPECT_EQ(NextDataSlotAt(0), kSlotNs);
  EXPECT_EQ(NextDataSlotAt(kSlotNs), kSlotNs);
  // Just before slot 256 (a flow slot): next data slot is 257.
  EXPECT_EQ(NextDataSlotAt(255 * kSlotNs + 1), 257 * kSlotNs);
  EXPECT_EQ(NextDataSlotAfter(kSlotNs), 2 * kSlotNs);
}

TEST(Link, DeliversSymbolsAfterPropagationDelay) {
  Simulator sim;
  Link link(&sim, 1.0);  // 1 km: 64.1 slots = 5128 ns
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.Attach(Link::Side::kA, &a);
  link.Attach(Link::Side::kB, &b);

  PacketRef pkt = TestPacket();
  link.TransmitBegin(Link::Side::kA, pkt);
  link.TransmitByte(Link::Side::kA, pkt, 0);
  link.TransmitEnd(Link::Side::kA, EndFlags{});
  sim.Run();

  ASSERT_EQ(b.begins.size(), 1u);
  EXPECT_EQ(b.begins[0]->id, pkt->id);
  EXPECT_EQ(b.bytes, (std::vector<std::uint32_t>{0}));
  ASSERT_EQ(b.ends.size(), 1u);
  EXPECT_FALSE(b.ends[0].truncated);
  EXPECT_EQ(sim.now(), PropagationDelayNs(1.0));
  EXPECT_TRUE(a.begins.empty());  // nothing came back
}

TEST(Link, FlowDirectiveChangeQuantizedToFlowSlot) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.Attach(Link::Side::kA, &a);
  link.Attach(Link::Side::kB, &b);

  sim.RunUntil(10 * kSlotNs);  // mid flow-slot period
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStop);
  sim.Run();
  ASSERT_EQ(b.directives.size(), 1u);
  EXPECT_EQ(b.directives[0], FlowDirective::kStop);
  EXPECT_EQ(sim.now(), 256 * kSlotNs + PropagationDelayNs(0.1));
}

TEST(Link, RedundantDirectiveGeneratesNoEvent) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint b;
  link.Attach(Link::Side::kB, &b);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStart);
  sim.Run();
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStart);
  sim.Run();
  EXPECT_EQ(b.directives.size(), 1u);
}

TEST(Link, SupersededDirectiveDeliversOnlyLatest) {
  // Two changes inside the same flow-slot period: the wire only carries the
  // latest latched value, so the receiver must see exactly one directive.
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint b;
  link.Attach(Link::Side::kB, &b);
  sim.RunUntil(10 * kSlotNs);  // mid flow-slot period
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStop);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStart);
  sim.Run();
  ASSERT_EQ(b.directives.size(), 1u);
  EXPECT_EQ(b.directives[0], FlowDirective::kStart);
}

TEST(Link, SupersededDirectiveDeliversOnlyLatestReversedOrder) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint b;
  link.Attach(Link::Side::kB, &b);
  sim.RunUntil(10 * kSlotNs);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStart);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStop);
  sim.Run();
  ASSERT_EQ(b.directives.size(), 1u);
  EXPECT_EQ(b.directives[0], FlowDirective::kStop);
}

TEST(Link, DirectiveSupersededByNoneDeliversNothing) {
  // Reverting to kNone before the flow slot cancels the pending delivery;
  // absence of directives generates no event.
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint b;
  link.Attach(Link::Side::kB, &b);
  sim.RunUntil(10 * kSlotNs);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStop);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kNone);
  sim.Run();
  EXPECT_TRUE(b.directives.empty());
}

TEST(Link, RedeliveryRacingInFlightChangeDoesNotDoubleDeliver) {
  // A redelivery (endpoint attach, mode change) while a changed directive is
  // still waiting for its flow slot must supersede the pending delivery, not
  // add a second one.
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.Attach(Link::Side::kA, &a);
  link.Attach(Link::Side::kB, &b);
  sim.RunUntil(10 * kSlotNs);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStop);
  link.Attach(Link::Side::kB, &b);  // re-attach redelivers latched directives
  sim.Run();
  ASSERT_EQ(b.directives.size(), 1u);
  EXPECT_EQ(b.directives[0], FlowDirective::kStop);
}

TEST(Link, CutSilencesBothSides) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.Attach(Link::Side::kA, &a);
  link.Attach(Link::Side::kB, &b);
  link.SetMode(LinkMode::kCut);

  EXPECT_FALSE(link.CarrierAt(Link::Side::kA));
  EXPECT_FALSE(link.CarrierAt(Link::Side::kB));
  ASSERT_FALSE(a.carrier_changes.empty());
  EXPECT_FALSE(a.carrier_changes.back());

  PacketRef pkt = TestPacket();
  link.TransmitBegin(Link::Side::kA, pkt);
  sim.Run();
  EXPECT_TRUE(b.begins.empty());
}

TEST(Link, ReflectionReturnsOwnSymbols) {
  Simulator sim;
  Link link(&sim, 0.5);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.Attach(Link::Side::kA, &a);
  link.Attach(Link::Side::kB, &b);
  link.SetMode(LinkMode::kReflectA);

  PacketRef pkt = TestPacket();
  link.TransmitBegin(Link::Side::kA, pkt);
  sim.Run();
  // A hears its own transmission after a round trip; B hears nothing.
  ASSERT_EQ(a.begins.size(), 1u);
  EXPECT_TRUE(b.begins.empty());
  EXPECT_EQ(sim.now(), 2 * PropagationDelayNs(0.5));
  EXPECT_TRUE(link.CarrierAt(Link::Side::kA));
  EXPECT_FALSE(link.CarrierAt(Link::Side::kB));
}

TEST(Link, ModeChangeRedeliversLatchedDirective) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.Attach(Link::Side::kA, &a);
  link.Attach(Link::Side::kB, &b);
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kStart);
  sim.Run();
  b.directives.clear();

  link.SetMode(LinkMode::kCut);
  sim.Run();
  EXPECT_TRUE(b.directives.empty());

  link.SetMode(LinkMode::kNormal);  // restore: directive reaches B again
  sim.Run();
  ASSERT_EQ(b.directives.size(), 1u);
  EXPECT_EQ(b.directives[0], FlowDirective::kStart);
}

TEST(Link, MissedDirectiveSlotsCountsSyncOnlyTransmitter) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint a;
  RecordingEndpoint b;
  link.Attach(Link::Side::kA, &a);
  link.Attach(Link::Side::kB, &b);
  // A sends no directives (alternate host port): B misses one directive
  // per flow-slot period.
  Tick period = kFlowSlotPeriod * kSlotNs;
  sim.RunUntil(10 * period + 5);
  EXPECT_EQ(link.MissedDirectiveSlots(Link::Side::kB, 0), 10);
  EXPECT_EQ(link.MissedDirectiveSlots(Link::Side::kB, 5 * period), 5);

  // Once A sends directives, nothing is missed.
  link.SetFlowDirective(Link::Side::kA, FlowDirective::kHost);
  sim.RunUntil(20 * period);
  EXPECT_EQ(link.MissedDirectiveSlots(Link::Side::kB, 15 * period), 0);
}

TEST(Link, CorruptionRateDamagesBytes) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint b;
  link.Attach(Link::Side::kB, &b);
  link.SetCorruptionRate(1.0);

  PacketRef pkt = TestPacket();
  link.TransmitBegin(Link::Side::kA, pkt);
  for (std::uint32_t i = 0; i < 10; ++i) {
    link.TransmitByte(Link::Side::kA, pkt, i);
  }
  link.TransmitEnd(Link::Side::kA, EndFlags{});
  sim.Run();
  EXPECT_EQ(b.corrupt_bytes, 10);
}

TEST(Link, TruncatedEndFlagPropagates) {
  Simulator sim;
  Link link(&sim, 0.1);
  RecordingEndpoint b;
  link.Attach(Link::Side::kB, &b);
  link.TransmitBegin(Link::Side::kA, TestPacket());
  link.TransmitEnd(Link::Side::kA, EndFlags{.truncated = true});
  sim.Run();
  ASSERT_EQ(b.ends.size(), 1u);
  EXPECT_TRUE(b.ends[0].truncated);
}

}  // namespace
}  // namespace autonet
