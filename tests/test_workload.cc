// Tests for the application workload engine (src/workload/): spec grammar,
// per-flow SLO accounting, the engine's three workload kinds on a live
// Network, and the chaos-runner integration (SLO oracles, reproducibility,
// baseline-fingerprint neutrality).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "src/chaos/corpus.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/core/network.h"
#include "src/topo/spec.h"
#include "src/workload/engine.h"
#include "src/workload/slo.h"
#include "src/workload/spec.h"

namespace autonet {
namespace workload {
namespace {

// --- spec grammar -----------------------------------------------------------

TEST(Spec, TextRoundTrip) {
  Spec spec;
  std::string error;
  ASSERT_TRUE(ParseSpecText(
      "rpc bytes 512 response 64 window 4 timeout 100ms", &spec, &error))
      << error;
  EXPECT_EQ(spec.kind, Kind::kRpc);
  EXPECT_EQ(spec.data_bytes, 512u);
  EXPECT_EQ(spec.response_bytes, 64u);
  EXPECT_EQ(spec.window, 4);
  EXPECT_EQ(spec.timeout, 100 * kMillisecond);

  Spec again;
  ASSERT_TRUE(ParseSpecText(spec.ToText(), &again, &error)) << error;
  EXPECT_EQ(again.ToText(), spec.ToText());

  ASSERT_TRUE(ParseSpecText("streams period 5ms deadline 25ms", &spec, &error));
  ASSERT_TRUE(ParseSpecText(spec.ToText(), &again, &error)) << error;
  EXPECT_EQ(again.period, 5 * kMillisecond);
  EXPECT_EQ(again.deadline, 25 * kMillisecond);
}

TEST(Spec, ParseRejectsBadInput) {
  Spec spec;
  std::string error;
  EXPECT_FALSE(ParseSpecText("ftp bytes 100", &spec, &error));
  EXPECT_NE(error.find("unknown workload kind"), std::string::npos);
  EXPECT_FALSE(ParseSpecText("rpc window 100", &spec, &error));  // > 64
  EXPECT_FALSE(ParseSpecText("rpc window", &spec, &error));      // no value
  EXPECT_FALSE(ParseSpecText("rpc color blue", &spec, &error));
  EXPECT_FALSE(ParseSpecText("streams period 0ms", &spec, &error));
  EXPECT_FALSE(ParseSpecText("", &spec, &error));

  ASSERT_TRUE(ParseSpecText("none", &spec, &error)) << error;
  EXPECT_FALSE(spec.enabled());
}

TEST(Spec, ScenarioCarriesAWorkloadLine) {
  std::string error;
  auto scenarios = chaos::ParseScenarios(
      "scenario cut-under-load\n"
      "  workload rpc bytes 256 response 32 window 2\n"
      "  at 100ms cut cable ?a\n",
      &error);
  ASSERT_EQ(scenarios.size(), 1u) << error;
  ASSERT_TRUE(scenarios[0].workload.enabled());
  EXPECT_EQ(scenarios[0].workload.kind, Kind::kRpc);
  EXPECT_EQ(scenarios[0].workload.window, 2);

  // And it round-trips through ToText.
  std::string text = scenarios[0].ToText();
  EXPECT_NE(text.find("workload rpc"), std::string::npos);
  auto again = chaos::ParseScenarios(text, &error);
  ASSERT_EQ(again.size(), 1u) << error;
  EXPECT_EQ(again[0].ToText(), text);
}

// --- per-flow SLO accounting ------------------------------------------------

TEST(FlowSlo, GapAboveFloorIsAnOutageWindow) {
  FlowSlo slo("f", /*outage_floor=*/25 * kMillisecond);
  slo.OnOffered(0, true);
  slo.OnCompleted(100 * kMillisecond, Phase::kSteady, 0.1);
  EXPECT_EQ(slo.outage_windows(), 1);
  EXPECT_DOUBLE_EQ(slo.max_outage_ms(), 100.0);
}

TEST(FlowSlo, SubFloorGapsAreQueueingNotOutage) {
  FlowSlo slo("f", 25 * kMillisecond);
  slo.OnOffered(0, true);
  for (int i = 1; i <= 100; ++i) {
    slo.OnCompleted(i * kMillisecond, Phase::kSteady, 1.0);
  }
  EXPECT_EQ(slo.outage_windows(), 0);
  EXPECT_DOUBLE_EQ(slo.max_outage_ms(), 0.0);
  EXPECT_EQ(slo.completed(), 100u);
}

TEST(FlowSlo, UnserviceableTimeIsExcused) {
  FlowSlo slo("f", 25 * kMillisecond);
  slo.OnOffered(0, true);
  // 60ms of the 80ms gap the flow was physically unserviceable (endpoint
  // off the network): the chargeable gap is 20ms, under the floor.
  slo.Advance(60 * kMillisecond, /*serviceable=*/false);
  slo.OnCompleted(80 * kMillisecond, Phase::kFault, 0.2);
  EXPECT_EQ(slo.outage_windows(), 0);
  EXPECT_DOUBLE_EQ(slo.excused_ms(), 60.0);
}

TEST(FlowSlo, MidRunReconfigurationGapIsNetOfExcusedTime) {
  FlowSlo slo("f", 25 * kMillisecond);
  slo.OnOffered(0, true);
  slo.OnCompleted(10 * kMillisecond, Phase::kSteady, 0.1);
  // A reconfiguration starts: 50ms unserviceable inside a 90ms delivery
  // gap.  Chargeable outage = 40ms, one window.
  slo.Advance(50 * kMillisecond, /*serviceable=*/false);
  slo.Advance(40 * kMillisecond, /*serviceable=*/true);
  slo.OnCompleted(100 * kMillisecond, Phase::kRecovery, 0.3);
  EXPECT_EQ(slo.outage_windows(), 1);
  EXPECT_DOUBLE_EQ(slo.max_outage_ms(), 40.0);
  // Latency landed in the phase the op was sent in.
  EXPECT_EQ(slo.latency_ms(Phase::kSteady).count(), 1u);
  EXPECT_EQ(slo.latency_ms(Phase::kRecovery).count(), 1u);
}

TEST(FlowSlo, FinalizeClosesOnlyOutstandingGaps) {
  FlowSlo busy("busy", 25 * kMillisecond);
  busy.OnOffered(0, true);
  busy.Finalize(200 * kMillisecond, /*outstanding=*/true);
  EXPECT_EQ(busy.outage_windows(), 1);
  EXPECT_DOUBLE_EQ(busy.max_outage_ms(), 200.0);

  // An open gap with nothing outstanding is idleness, not outage.
  FlowSlo idle("idle", 25 * kMillisecond);
  idle.OnOffered(0, true);
  idle.OnCompleted(1 * kMillisecond, Phase::kSteady, 1.0);
  idle.Finalize(200 * kMillisecond, /*outstanding=*/false);
  EXPECT_EQ(idle.outage_windows(), 0);
}

TEST(SloJudge, TripsOnBlownBudgets) {
  SloReport report;
  std::string error;
  ASSERT_TRUE(ParseSpecText("streams period 5ms deadline 25ms", &report.spec,
                            &error));
  report.flows.emplace_back();
  report.flows.back().name = "h0->h1";
  report.budget = ResolveBudget(SloBudgetConfig{}, /*diameter=*/2);
  report.completed = 1000;
  report.max_outage_ms = report.budget.outage_ms + 1;
  report.max_outage_flow = "h0->h1";
  report.recovery_lost = 2;
  report.deadline_miss_steady = 1;
  for (int i = 0; i < 100; ++i) {
    report.steady_latency_ms.Add(1.0);
    report.recovery_latency_ms.Add(10.0);  // 10x steady: blows 2x budget
  }
  auto violations = JudgeSlo(report);
  ASSERT_EQ(violations.size(), 4u);
  EXPECT_EQ(violations[0].first, "slo-outage");
  EXPECT_EQ(violations[1].first, "slo-latency");
  EXPECT_EQ(violations[2].first, "slo-loss");
  EXPECT_EQ(violations[3].first, "slo-deadline");

  SloReport clean;
  clean.spec = report.spec;
  clean.flows = report.flows;
  clean.budget = report.budget;
  clean.completed = 1000;
  clean.max_outage_ms = 5.0;
  for (int i = 0; i < 100; ++i) {
    clean.steady_latency_ms.Add(1.0);
    clean.recovery_latency_ms.Add(1.1);
  }
  EXPECT_TRUE(JudgeSlo(clean).empty());
}

// --- the engine on a live network -------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(MakeLine(3, 1));
    net_->Boot();
    ASSERT_TRUE(net_->WaitForConsistency(60 * kSecond));
    ASSERT_TRUE(
        net_->WaitForHostsRegistered(net_->sim().now() + 30 * kSecond));
  }

  SloReport RunSpec(const std::string& text, Tick duration) {
    Spec spec;
    std::string error;
    EXPECT_TRUE(ParseSpecText(text, &spec, &error)) << error;
    WorkloadEngine engine(net_.get(), spec, SloBudgetConfig{}, /*diameter=*/2);
    engine.Start();
    net_->Run(duration);
    engine.Stop();
    for (int i = 0; i < 100 && !engine.Drained(); ++i) {
      net_->Run(10 * kMillisecond);
    }
    return engine.Finalize();
  }

  std::unique_ptr<Network> net_;
};

TEST_F(EngineTest, RpcSteadyStateHasZeroOutageWindows) {
  SloReport report = RunSpec("rpc bytes 256 response 32 window 2",
                             300 * kMillisecond);
  EXPECT_GT(report.completed, 100u);
  EXPECT_EQ(report.outage_windows, 0);
  EXPECT_DOUBLE_EQ(report.max_outage_ms, 0.0);
  EXPECT_EQ(report.recovery_lost, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_GT(report.steady_latency_ms.count(), 100u);
  EXPECT_TRUE(JudgeSlo(report).empty());
  // The report serializes.
  EXPECT_NE(report.ToJson().find("\"max_outage_ms\""), std::string::npos);
}

TEST_F(EngineTest, AllreduceStepsAdvanceInLockstep) {
  SloReport report = RunSpec("allreduce bytes 512", 300 * kMillisecond);
  EXPECT_GT(report.steps_completed, 10u);
  EXPECT_EQ(report.step_ms.count(), report.steps_completed);
  EXPECT_EQ(report.outage_windows, 0);
  EXPECT_TRUE(JudgeSlo(report).empty());
}

TEST_F(EngineTest, StreamsMeetDeadlinesOnAHealthyNetwork) {
  SloReport report = RunSpec("streams bytes 256 period 5ms deadline 25ms",
                             300 * kMillisecond);
  EXPECT_GT(report.completed, 100u);
  EXPECT_EQ(report.deadline_miss_steady, 0u);
  EXPECT_EQ(report.outage_windows, 0);
  EXPECT_TRUE(JudgeSlo(report).empty());
}

// --- chaos-runner integration -----------------------------------------------

chaos::CampaignConfig SloConfig() {
  chaos::CampaignConfig config;
  std::string error;
  config.topologies.push_back(
      {"small3", chaos::TopologyByName("small3", &error)});
  // Short phases keep the saturating-RPC sim affordable in a unit test.
  config.slo_steady = 150 * kMillisecond;
  config.slo_recovery = 400 * kMillisecond;
  config.slo_drain = 1 * kSecond;
  return config;
}

TEST(Runner, CableCutUnderRpcLoadStaysWithinSloBudget) {
  chaos::CampaignConfig config = SloConfig();
  std::string error;
  auto scenarios = chaos::ParseScenarios(
      "scenario slo-cable-cut\n"
      "  workload rpc bytes 256 response 32 window 2\n"
      "  at 100ms cut cable ?a\n"
      "  at 1200ms restore cable ?a\n",
      &error);
  ASSERT_EQ(scenarios.size(), 1u) << error;

  chaos::RunResult r =
      chaos::RunOne(config, scenarios[0], config.topologies[0], 1);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0].detail);
  EXPECT_EQ(r.workload, scenarios[0].workload.ToText());
  EXPECT_GT(r.slo_ops, 1000u);
  EXPECT_EQ(r.slo_recovery_lost, 0u);
  // The cut pauses delivery long enough to register as an outage, but the
  // budget (base + per-hop * diameter) holds: a pause, not a failure.
  EXPECT_GT(r.slo_max_outage_ms, 0.0);
  SloBudget budget = ResolveBudget(config.slo_budget, /*diameter=*/1);
  EXPECT_LT(r.slo_max_outage_ms, budget.outage_ms);
  // Post-quiescence tail within the oracle's 2x-steady budget (the judge
  // passed, so this is already implied; assert the numbers are present).
  EXPECT_GT(r.slo_steady_p999_ms, 0.0);
  EXPECT_GT(r.slo_recovery_p999_ms, 0.0);
  EXPECT_NE(r.slo_json.find("\"flows\""), std::string::npos);
}

TEST(Runner, BaselineFingerprintsUnchangedWithoutAWorkload) {
  chaos::CampaignConfig config = SloConfig();
  std::string error;
  auto scenarios = chaos::ParseScenarios(
      "scenario cut-restore\n"
      "  at 100ms cut cable ?a\n"
      "  at 700ms restore cable ?a\n",
      &error);
  ASSERT_EQ(scenarios.size(), 1u) << error;

  chaos::RunResult plain_a =
      chaos::RunOne(config, scenarios[0], config.topologies[0], 2);
  chaos::RunResult plain_b =
      chaos::RunOne(config, scenarios[0], config.topologies[0], 2);
  ASSERT_TRUE(plain_a.ok);
  EXPECT_TRUE(plain_a.workload.empty());
  EXPECT_EQ(plain_a.log_hash, plain_b.log_hash);
  EXPECT_EQ(plain_a.metrics_hash, plain_b.metrics_hash);

  // The same run under a campaign-level workload is still deterministic,
  // but its metric fingerprint differs (workload counters exist now) —
  // which is exactly why workloads are opt-in.
  ASSERT_TRUE(ParseSpecText("rpc bytes 128 response 32 window 1",
                            &config.workload, &error))
      << error;
  chaos::RunResult loaded_a =
      chaos::RunOne(config, scenarios[0], config.topologies[0], 2);
  chaos::RunResult loaded_b =
      chaos::RunOne(config, scenarios[0], config.topologies[0], 2);
  EXPECT_TRUE(loaded_a.ok)
      << (loaded_a.violations.empty() ? "" : loaded_a.violations[0].detail);
  EXPECT_EQ(loaded_a.workload, config.workload.ToText());
  EXPECT_EQ(loaded_a.metrics_hash, loaded_b.metrics_hash);
  EXPECT_NE(loaded_a.metrics_hash, plain_a.metrics_hash);
}

TEST(Runner, SloCorpusParsesAndNamesAreUnique) {
  auto scenarios = chaos::SloCorpus();
  ASSERT_GE(scenarios.size(), 6u);
  std::set<std::string> names;
  for (const auto& s : scenarios) {
    EXPECT_TRUE(s.workload.enabled()) << s.name;
    names.insert(s.name);
  }
  EXPECT_EQ(names.size(), scenarios.size());
  // Every name is distinct from the default corpus too: chaosrun looks
  // scenarios up by name across both corpora.
  for (const auto& s : chaos::DefaultCorpus()) {
    EXPECT_EQ(names.count(s.name), 0u) << s.name;
  }
}

}  // namespace
}  // namespace workload
}  // namespace autonet
