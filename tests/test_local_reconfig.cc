// Local reconfiguration (section 7 future work, implemented here): non-tree
// link changes are applied as topology deltas routed to the root and
// redistributed down the standing tree, skipping the full five-step
// reconfiguration — the network never closes.
#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/routing/spanning_tree.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

constexpr Tick kDeadline = 120 * kSecond;

NetworkConfig LocalConfig() {
  NetworkConfig config;
  config.autopilot.enable_local_reconfig = true;
  return config;
}

// On a ring, exactly one link is a non-tree (cross) link: the one closing
// the cycle between the two deepest switches.
int CrossCableOfRing(Network& net) {
  const NetTopology topo = net.HealthyTopology();
  SpanningTree tree = ComputeSpanningTree(topo);
  for (std::size_t c = 0; c < net.spec().cables.size(); ++c) {
    const TopoSpec::CableSpec& cable = net.spec().cables[c];
    bool is_tree = false;
    for (const TopoLink& link : topo.switches[cable.sw_a].links) {
      if (link.local_port == cable.port_a) {
        is_tree = tree.IsTreeLink(topo, cable.sw_a, link);
      }
    }
    if (!is_tree) {
      return static_cast<int>(c);
    }
  }
  return -1;
}

std::uint64_t TotalEpochJoins(Network& net) {
  std::uint64_t total = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    total += net.autopilot_at(i).engine().stats().epochs_joined;
  }
  return total;
}

std::uint64_t TotalLocalUpdates(Network& net) {
  std::uint64_t total = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    total += net.autopilot_at(i).engine().stats().local_updates_applied;
  }
  return total;
}

TEST(LocalReconfig, NonTreeLinkCutAvoidsFullReconfiguration) {
  Network net(MakeRing(6, 1), LocalConfig());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  int cross = CrossCableOfRing(net);
  ASSERT_GE(cross, 0);

  std::uint64_t joins_before = TotalEpochJoins(net);
  std::uint64_t epoch_before = net.autopilot_at(0).epoch();
  net.CutCable(cross);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();

  // No switch joined a new epoch: the change went through the delta path.
  EXPECT_EQ(TotalEpochJoins(net), joins_before);
  EXPECT_EQ(net.autopilot_at(0).epoch(), epoch_before);
  EXPECT_GE(TotalLocalUpdates(net), static_cast<std::uint64_t>(
                                        net.num_switches()));
}

TEST(LocalReconfig, NonTreeLinkRestoreAlsoLocal) {
  Network net(MakeRing(6, 1), LocalConfig());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  int cross = CrossCableOfRing(net);
  ASSERT_GE(cross, 0);
  net.CutCable(cross);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline));

  std::uint64_t joins_before = TotalEpochJoins(net);
  net.RestoreCable(cross);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
  EXPECT_EQ(TotalEpochJoins(net), joins_before);
}

TEST(LocalReconfig, TreeLinkCutFallsBackToFullReconfiguration) {
  Network net(MakeRing(6, 1), LocalConfig());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  int cross = CrossCableOfRing(net);
  ASSERT_GE(cross, 0);
  // Any other ring cable is a tree link.
  int tree_cable = cross == 0 ? 1 : 0;

  std::uint64_t epoch_before = net.autopilot_at(0).epoch();
  net.CutCable(tree_cable);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
  EXPECT_GT(net.autopilot_at(0).epoch(), epoch_before);
}

TEST(LocalReconfig, TrafficSurvivesLocalUpdateButNotFullOne) {
  // The headline property: during a local update the network keeps
  // carrying host packets (no one-hop table clamp), while a full
  // reconfiguration closes it.
  Network net(MakeRing(6, 1), LocalConfig());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  int cross = CrossCableOfRing(net);
  ASSERT_GE(cross, 0);
  const TopoSpec::CableSpec& cable = net.spec().cables[cross];

  // Pick a host pair whose min route does NOT use the cross cable: two
  // hosts adjacent on the tree.
  int src = cable.sw_a;
  int dst = (cable.sw_a + 3) % 6;  // far around; route choice may vary
  // Send a steady stream while the cross link dies.
  int sent = 0;
  net.ClearInboxes();
  for (int i = 0; i < 40; ++i) {
    if (net.SendData(src, dst, 200)) {
      ++sent;
    }
    if (i == 10) {
      net.CutCable(cross);
    }
    net.Run(5 * kMillisecond);
  }
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline));
  int delivered = 0;
  for (const Delivery& d : net.inbox(dst)) {
    delivered += d.intact() ? 1 : 0;
  }
  // Some in-flight packets can die with the prototype's reset-coupled
  // table loads, but the network never closed: the vast majority arrive.
  EXPECT_GE(delivered, sent - 6);
}

TEST(LocalReconfig, SwitchCrashStillFullReconfigures) {
  // A crashed switch takes tree links with it: the delta path must refuse
  // and the full algorithm must still handle it.
  Network net(MakeTorus(2, 3, 1), LocalConfig());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  std::uint64_t epoch_before = net.autopilot_at(0).epoch();
  net.CrashSwitch(4);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
  EXPECT_GT(net.autopilot_at(1).epoch(), epoch_before);
}

TEST(LocalReconfig, DisabledFlagAlwaysFullReconfigures) {
  Network net(MakeRing(6, 1));  // default: local reconfig off
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  int cross = CrossCableOfRing(net);
  ASSERT_GE(cross, 0);
  std::uint64_t epoch_before = net.autopilot_at(0).epoch();
  net.CutCable(cross);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline));
  EXPECT_GT(net.autopilot_at(0).epoch(), epoch_before);
  EXPECT_EQ(TotalLocalUpdates(net), 0u);
}

TEST(LocalReconfig, RepeatedDeltasStayConsistent) {
  // Cut and restore the cross link several times: versions increase, the
  // verifier passes every time, and no epoch churn occurs.
  Network net(MakeTorus(3, 3, 1), LocalConfig());
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  std::uint64_t epoch_before = net.autopilot_at(0).epoch();

  // Find any non-tree cable of the torus.
  const NetTopology topo = net.HealthyTopology();
  SpanningTree tree = ComputeSpanningTree(topo);
  int cross = -1;
  for (std::size_t c = 0; c < net.spec().cables.size(); ++c) {
    const TopoSpec::CableSpec& cable = net.spec().cables[c];
    for (const TopoLink& link : topo.switches[cable.sw_a].links) {
      if (link.local_port == cable.port_a &&
          !tree.IsTreeLink(topo, cable.sw_a, link)) {
        cross = static_cast<int>(c);
      }
    }
    if (cross >= 0) {
      break;
    }
  }
  ASSERT_GE(cross, 0);

  for (int round = 0; round < 3; ++round) {
    net.CutCable(cross);
    ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
        << "cut round " << round << ": " << net.CheckConsistency();
    net.RestoreCable(cross);
    ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
        << "restore round " << round << ": " << net.CheckConsistency();
  }
  EXPECT_EQ(net.autopilot_at(0).epoch(), epoch_before);
}

}  // namespace
}  // namespace autonet
