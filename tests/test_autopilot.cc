#include <gtest/gtest.h>

#include "src/autopilot/messages.h"
#include "src/common/serialize.h"
#include "src/core/network.h"
#include "src/routing/spanning_tree.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

constexpr Tick kDeadline = 60 * kSecond;

// Messages round-trip through their wire format.
TEST(Messages, ConnectivityRoundTrip) {
  ConnectivityMsg m;
  m.kind = ConnectivityMsg::Kind::kReply;
  m.seq = 77;
  m.sender_uid = Uid(0x123);
  m.sender_port = 5;
  m.echo_uid = Uid(0x456);
  m.echo_port = 9;
  m.echo_seq = 76;
  auto parsed = ConnectivityMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 77u);
  EXPECT_EQ(parsed->sender_uid, Uid(0x123));
  EXPECT_EQ(parsed->echo_port, 9);
}

TEST(Messages, ReconfigRoundTrip) {
  ReconfigMsg m;
  m.kind = ReconfigMsg::Kind::kReport;
  m.epoch = 42;
  m.sender_uid = Uid(7);
  m.payload_seq = 3;
  SwitchRecord rec;
  rec.uid = Uid(9);
  rec.proposed_num = 4;
  rec.host_ports = 0x1800;
  rec.links.push_back({2, Uid(7), 3});
  m.records.push_back(rec);
  auto parsed = ReconfigMsg::Parse(m.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->epoch, 42u);
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0].uid, Uid(9));
  ASSERT_EQ(parsed->records[0].links.size(), 1u);
  EXPECT_EQ(parsed->records[0].links[0].remote_uid, Uid(7));
}

TEST(Messages, ParseRejectsTruncated) {
  ReconfigMsg m;
  m.kind = ReconfigMsg::Kind::kConfig;
  m.epoch = 1;
  auto bytes = m.Serialize();
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(ReconfigMsg::Parse(bytes).has_value());
}

TEST(Messages, ParseRejectsTrailingBytes) {
  // A parser that ignores trailing bytes accepts a message that
  // re-serializes differently from what was received — corruption (or a
  // smuggled payload) surviving the parse undetected.
  ConnectivityMsg c;
  c.kind = ConnectivityMsg::Kind::kProbe;
  auto cb = c.Serialize();
  EXPECT_TRUE(ConnectivityMsg::Parse(cb).has_value());
  cb.push_back(0);
  EXPECT_FALSE(ConnectivityMsg::Parse(cb).has_value());

  ReconfigMsg r;
  r.kind = ReconfigMsg::Kind::kPosition;
  auto rb = r.Serialize();
  EXPECT_TRUE(ReconfigMsg::Parse(rb).has_value());
  rb.push_back(0);
  EXPECT_FALSE(ReconfigMsg::Parse(rb).has_value());

  HostAddressMsg h;
  auto hb = h.Serialize();
  EXPECT_TRUE(HostAddressMsg::Parse(hb).has_value());
  hb.push_back(0);
  EXPECT_FALSE(HostAddressMsg::Parse(hb).has_value());

  SrpMsg s;
  auto sb = s.Serialize();
  EXPECT_TRUE(SrpMsg::Parse(sb).has_value());
  sb.push_back(0);
  EXPECT_FALSE(SrpMsg::Parse(sb).has_value());
}

TEST(Messages, ParseRejectsNonCanonicalBools) {
  // A wire bool of 2 would parse as true but re-serialize as 1.
  ReconfigMsg m;
  m.kind = ReconfigMsg::Kind::kPosAck;
  m.is_parent = true;
  auto bytes = m.Serialize();
  EXPECT_TRUE(ReconfigMsg::Parse(bytes).has_value());
  bytes.back() = 2;
  EXPECT_FALSE(ReconfigMsg::Parse(bytes).has_value());

  ReconfigMsg d;
  d.kind = ReconfigMsg::Kind::kDelta;
  d.delta_add = false;
  auto db = d.Serialize();
  // delta_add sits right after kind(1)+epoch(8)+sender(8)+payload_seq(4).
  db[21] = 0xCC;
  EXPECT_FALSE(ReconfigMsg::Parse(db).has_value());
}

TEST(Messages, ParseRejectsUidHighBits) {
  // Wire UIDs are 48-bit; set bits above the mask would be silently
  // dropped by the Uid constructor and vanish on re-serialization.
  ConnectivityMsg c;
  c.sender_uid = Uid(42);
  auto bytes = c.Serialize();
  EXPECT_TRUE(ConnectivityMsg::Parse(bytes).has_value());
  bytes[16] = 0xFF;  // top byte of the little-endian sender_uid field
  EXPECT_FALSE(ConnectivityMsg::Parse(bytes).has_value());
}

TEST(Messages, SrpParseRejectsUnknownOp) {
  SrpMsg m;
  auto bytes = m.Serialize();
  bytes[0] = 5;  // between kGetStats (4) and kReply (100)
  EXPECT_FALSE(SrpMsg::Parse(bytes).has_value());
}

TEST(Messages, RecordsTopologyRoundTrip) {
  NetTopology topo;
  topo.switches.resize(2);
  topo.switches[0].uid = Uid(10);
  topo.switches[1].uid = Uid(20);
  topo.switches[0].links.push_back({1, 1, 2});
  topo.switches[1].links.push_back({2, 0, 1});
  topo.switches[0].host_ports.Set(5);
  auto records = TopologyToRecords(topo);
  NetTopology back = RecordsToTopology(records);
  EXPECT_EQ(back.size(), 2);
  EXPECT_EQ(back.Validate(), "");
  EXPECT_TRUE(back.switches[back.IndexOf(Uid(10))].host_ports.Test(5));
}

// --- full-network convergence ---

class ConvergenceTest : public ::testing::TestWithParam<int> {};

TEST(Reconfig, SingleSwitchConfiguresItself) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddHost(0);
  Network net(std::move(spec));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline))
      << net.CheckConsistency();
  EXPECT_EQ(net.autopilot_at(0).port_state(
                net.spec().hosts[0].primary_port),
            PortState::kHost);
  // The lone switch terminated as its own root.
  EXPECT_GE(net.autopilot_at(0).engine().stats().roots_terminated, 1u);
}

TEST(Reconfig, TwoSwitchesConvergeAndServeHosts) {
  Network net(MakeLine(2, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();

  // Hosts learned their short addresses from their switches.
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  ASSERT_TRUE(net.driver_at(0).HasAddress());
  ASSERT_TRUE(net.driver_at(1).HasAddress());
  EXPECT_NE(net.driver_at(0).short_address(), net.driver_at(1).short_address());

  // Client traffic flows.
  ASSERT_TRUE(net.SendData(0, 1, 256));
  net.Run(5 * kMillisecond);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_TRUE(net.inbox(1)[0].intact());
}

TEST_P(ConvergenceTest, RandomTopologiesConverge) {
  Network net(MakeRandom(8, 5, 1234 + GetParam()));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline))
      << net.CheckConsistency() << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceTest, ::testing::Range(0, 6));

TEST(Reconfig, LineRingTreeTorusConverge) {
  for (auto make : {+[] { return MakeLine(5, 1); }, +[] { return MakeRing(6, 1); },
                    +[] { return MakeTree(2, 2, 1); },
                    +[] { return MakeTorus(3, 4, 1); }}) {
    Network net(make());
    net.Boot();
    ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  }
}

TEST(Reconfig, DistributedTreeMatchesCentralized) {
  Network net(MakeTorus(3, 3, 0));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();

  // Recompute the reference spanning tree from the converged topology and
  // compare every switch's distributed position against it.
  const NetTopology& topo = *net.autopilot_at(0).topology();
  SpanningTree tree = ComputeSpanningTree(topo);
  for (int i = 0; i < net.num_switches(); ++i) {
    Autopilot& ap = net.autopilot_at(i);
    int index = topo.IndexOf(ap.uid());
    ASSERT_GE(index, 0);
    EXPECT_EQ(ap.engine().position_root(), topo.switches[tree.root].uid);
    EXPECT_EQ(ap.engine().position_level(), tree.level[index]);
    if (index != tree.root) {
      EXPECT_EQ(ap.engine().parent_port(), tree.parent_port[index]);
    } else {
      EXPECT_EQ(ap.engine().parent_port(), -1);
    }
  }
}

TEST(Reconfig, CutAndRestoreCable) {
  Network net(MakeTorus(2, 3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  std::uint64_t epoch_before = net.autopilot_at(0).epoch();

  net.CutCable(0);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
  EXPECT_GT(net.autopilot_at(0).epoch(), epoch_before);

  net.RestoreCable(0);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
}

TEST(Reconfig, SwitchNumbersSurviveReconfiguration) {
  Network net(MakeRing(4, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  std::vector<SwitchNum> before;
  for (int i = 0; i < 4; ++i) {
    before.push_back(net.autopilot_at(i).switch_num());
  }
  net.CutCable(0);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline)) << net.CheckConsistency();
  ASSERT_EQ(net.CheckConsistency(), "");
  // Short addresses tend to remain the same from epoch to epoch
  // (section 6.6.3): proposals are honored.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(net.autopilot_at(i).switch_num(), before[i]) << i;
  }
}

TEST(Reconfig, CrashAndRestartSwitch) {
  Network net(MakeTorus(2, 3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();

  net.CrashSwitch(3);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
  for (int i = 0; i < net.num_switches(); ++i) {
    if (i == 3) {
      continue;
    }
    EXPECT_EQ(net.autopilot_at(i).topology()->size(), 5) << i;
  }

  net.RestartSwitch(3);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
  EXPECT_EQ(net.autopilot_at(0).topology()->size(), 6);
}

TEST(Reconfig, PartitionFormsTwoNetworks) {
  // A 6-ring cut in two places partitions into two 3-lines.
  Network net(MakeRing(6, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();

  net.CutCable(0);  // between 0 and 1
  net.CutCable(3);  // between 3 and 4
  // CheckConsistency assumes a connected network; a partition must instead
  // settle into two independently consistent halves.
  ASSERT_TRUE(net.WaitForConvergence(net.sim().now() + kDeadline));

  // Sides {1,2,3} and {4,5,0} each agree internally.
  EXPECT_EQ(net.autopilot_at(1).topology()->size(), 3);
  EXPECT_EQ(net.autopilot_at(4).topology()->size(), 3);
  EXPECT_EQ(net.autopilot_at(1).epoch(), net.autopilot_at(2).epoch());
  EXPECT_EQ(net.autopilot_at(4).epoch(), net.autopilot_at(5).epoch());

  // Healing merges them again.
  net.RestoreCable(0);
  net.RestoreCable(3);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline))
      << net.CheckConsistency();
  EXPECT_EQ(net.autopilot_at(0).topology()->size(), 6);
}

TEST(PortStates, LoopedCableClassifiedLoop) {
  // Cable a switch's port to another port on the same switch.
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.AddHost(0);
  // Hand-build a looped cable on switch 0: ports 2 and 3.
  spec.cables.push_back({0, 2, 0, 3, 0.01});
  Network net(std::move(spec));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline))
      << net.CheckConsistency();
  EXPECT_EQ(net.autopilot_at(0).port_state(2), PortState::kSwitchLoop);
  EXPECT_EQ(net.autopilot_at(0).port_state(3), PortState::kSwitchLoop);
}

TEST(PortStates, ReflectingLinkClassifiedLoop) {
  Network net(MakeLine(2, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  PortNum port_a = net.spec().cables[0].port_a;

  net.SetCableReflecting(0, Link::Side::kA);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline)) << net.CheckConsistency();
  EXPECT_EQ(net.autopilot_at(0).port_state(port_a), PortState::kSwitchLoop);
  // The other side hears silence and declares the port dead.
  EXPECT_EQ(net.autopilot_at(1).port_state(net.spec().cables[0].port_b),
            PortState::kDead);
}

TEST(PortStates, AlternateHostPortClassifiedHost) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.AddHost(0, 1);  // dual-homed
  Network net(std::move(spec));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  const TopoSpec::HostSpec& h = net.spec().hosts[0];
  EXPECT_EQ(net.autopilot_at(h.primary_switch).port_state(h.primary_port),
            PortState::kHost);
  // The alternate port (sync-only) is classified s.host too.
  EXPECT_EQ(net.autopilot_at(h.alt_switch).port_state(h.alt_port),
            PortState::kHost);
}

TEST(Failover, HostSurvivesSwitchCrash) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.Cable(1, 2);
  spec.Cable(2, 0);
  spec.AddHost(0, 1);  // dual-homed host
  spec.AddHost(2);     // peer
  Network net(std::move(spec));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  ASSERT_TRUE(net.SendData(0, 1, 64));
  net.Run(5 * kMillisecond);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  ShortAddress old_addr = net.driver_at(0).short_address();

  net.CrashSwitch(0);  // the host's primary switch dies
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline)) << net.CheckConsistency();
  // The driver failed over to its alternate port and re-registered with a
  // new short address.
  net.Run(15 * kSecond);
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond));
  ASSERT_TRUE(net.driver_at(0).HasAddress());
  EXPECT_GE(net.driver_at(0).stats().failovers, 1u);
  EXPECT_NE(net.driver_at(0).short_address(), old_addr);

  net.ClearInboxes();
  ASSERT_TRUE(net.SendData(0, 1, 64));
  ASSERT_TRUE(net.SendData(1, 0, 64));
  net.Run(10 * kMillisecond);
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(0).size(), 1u);
}

TEST(Skeptic, FlappingLinkCausesBoundedReconfigs) {
  Network net(MakeTorus(2, 3, 0));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();
  std::uint64_t triggers_before = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    triggers_before += net.autopilot_at(i).engine().stats().triggers;
  }

  // Flap cable 0 every 200 ms for 20 seconds of simulated time.
  for (int cycle = 0; cycle < 50; ++cycle) {
    net.CutCable(0);
    net.Run(200 * kMillisecond);
    net.RestoreCable(0);
    net.Run(200 * kMillisecond);
  }
  std::uint64_t triggers_after = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    triggers_after += net.autopilot_at(i).engine().stats().triggers;
  }
  std::uint64_t during = triggers_after - triggers_before;
  // The skeptics must keep the reconfiguration rate well below the flap
  // rate: 50 cycles would naively cause >= 100 triggers network-wide.
  EXPECT_LT(during, 60u);

  // After the flapping stops, the network still heals.
  net.RestoreCable(0);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                                     500 * kMillisecond));
}

TEST(Srp, StateQueryAcrossTwoHops) {
  Network net(MakeLine(3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline)) << net.CheckConsistency();

  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  // Host 0 (on switch 0) asks switch 2 for its state: route = the two
  // trunk ports from switch 0 to switch 2.
  PortNum hop1 = net.spec().cables[0].port_a;  // 0 -> 1 (at switch 0)
  PortNum hop2 = net.spec().cables[1].port_a;  // 1 -> 2 (at switch 1)
  SrpMsg msg;
  msg.op = SrpMsg::Op::kGetState;
  msg.request_id = 99;
  msg.route = {static_cast<std::uint8_t>(hop1),
               static_cast<std::uint8_t>(hop2)};

  std::vector<Delivery> replies;
  net.driver_at(0).SetReceiveHandler([&](Delivery d) {
    if (d.packet->type == PacketType::kSrp) {
      replies.push_back(std::move(d));
    }
  });
  Packet p;
  p.dest = kAddrLocalCp;
  p.type = PacketType::kSrp;
  p.payload = msg.Serialize();
  ASSERT_TRUE(net.driver_at(0).Send(std::move(p)));
  net.Run(2 * kSecond);

  ASSERT_EQ(replies.size(), 1u);
  auto reply = SrpMsg::Parse(replies[0].packet->payload);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->op, SrpMsg::Op::kReply);
  EXPECT_EQ(reply->request_id, 99u);
  ByteReader r(reply->body);
  std::uint64_t epoch = r.U64();
  std::uint16_t num = r.U16();
  Uid uid = r.ReadUid();
  EXPECT_EQ(epoch, net.autopilot_at(2).epoch());
  EXPECT_EQ(num, net.autopilot_at(2).switch_num());
  EXPECT_EQ(uid, net.autopilot_at(2).uid());
}

}  // namespace
}  // namespace autonet
