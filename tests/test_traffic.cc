#include <gtest/gtest.h>

#include "src/core/traffic.h"
#include "src/host/srp_client.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

TEST(TrafficFlows, PermutationSkipsSelf) {
  auto flows = TrafficGenerator::Permutation(4, 2);
  ASSERT_EQ(flows.size(), 4u);
  for (const auto& f : flows) {
    EXPECT_EQ(f.dst_host, (f.src_host + 2) % 4);
  }
  EXPECT_TRUE(TrafficGenerator::Permutation(4, 0).empty());
}

TEST(TrafficFlows, AllToAllCount) {
  EXPECT_EQ(TrafficGenerator::AllToAll(5).size(), 20u);
}

class TrafficNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(MakeTorus(2, 2, 1));
    net_->Boot();
    ASSERT_TRUE(net_->WaitForConsistency(60 * kSecond));
    ASSERT_TRUE(
        net_->WaitForHostsRegistered(net_->sim().now() + 30 * kSecond));
  }
  std::unique_ptr<Network> net_;
};

TEST_F(TrafficNetTest, SaturatingPermutationDeliversAtLinkRate) {
  TrafficGenerator::Config config;
  config.data_bytes = 4000;
  TrafficGenerator gen(net_.get(), config);
  auto report =
      gen.Run(TrafficGenerator::Permutation(net_->num_hosts(), 1),
              20 * kMillisecond);
  EXPECT_GT(report.delivered, 0u);
  EXPECT_EQ(report.damaged, 0u);
  // Four simultaneous streams on a 2x2 torus: aggregate well above one
  // link's bandwidth.
  EXPECT_GT(report.delivered_mbps, 150.0);
  EXPECT_GT(report.latency_us.count(), 0u);
}

TEST_F(TrafficNetTest, PoissonModeRespectsArrivalRate) {
  TrafficGenerator::Config config;
  config.data_bytes = 100;
  config.mean_interarrival = 2 * kMillisecond;
  TrafficGenerator gen(net_.get(), config);
  auto report = gen.Run(TrafficGenerator::Permutation(net_->num_hosts(), 1),
                        200 * kMillisecond);
  // 4 flows x (200ms / 2ms) = ~400 expected arrivals; allow wide slack.
  EXPECT_GT(report.sent, 200u);
  EXPECT_LT(report.sent, 800u);
  EXPECT_EQ(report.DeliveryRate(), 1.0);
}

TEST_F(TrafficNetTest, ZeroMeanInterarrivalIsSaturatingMode) {
  TrafficGenerator::Config config;
  config.data_bytes = 1000;
  config.mean_interarrival = 0;
  TrafficGenerator gen(net_.get(), config);
  auto report =
      gen.Run(TrafficGenerator::Permutation(net_->num_hosts(), 1),
              10 * kMillisecond);
  EXPECT_TRUE(report.error.empty());
  // Saturating mode keeps every source's queue topped up: far more traffic
  // than one packet per flow.
  EXPECT_GT(report.delivered, 4u);
}

TEST_F(TrafficNetTest, NegativeMeanInterarrivalFailsLoudly) {
  TrafficGenerator::Config config;
  config.mean_interarrival = -5 * kMillisecond;
  TrafficGenerator gen(net_.get(), config);
  auto report =
      gen.Run(TrafficGenerator::Permutation(net_->num_hosts(), 1),
              10 * kMillisecond);
  // Refused outright, not silently treated as saturating.
  EXPECT_FALSE(report.error.empty());
  EXPECT_EQ(report.sent, 0u);
  EXPECT_EQ(report.delivered, 0u);
}

TEST_F(TrafficNetTest, TinyPoissonMeanStillMakesProgress) {
  // A 1-tick mean used to make the exponential draw round to a zero
  // increment, wedging Run() in an infinite loop at one sim instant.
  TrafficGenerator::Config config;
  config.data_bytes = 64;
  config.mean_interarrival = 1;  // 1 ns
  TrafficGenerator gen(net_.get(), config);
  auto report = gen.Run({{0, 1}}, 1 * kMillisecond);
  EXPECT_TRUE(report.error.empty());
  EXPECT_GT(report.sent, 0u);
}

TEST(TrafficFlows, RandomPairsNeedsTwoHosts) {
  TrafficGenerator::Config config;
  TrafficGenerator gen(nullptr, config);
  // Fewer than two hosts cannot form a src != dst pair; the old code spun
  // forever (one host) or hit modulo-by-zero UB (zero hosts).
  EXPECT_TRUE(gen.RandomPairs(0, 8).empty());
  EXPECT_TRUE(gen.RandomPairs(1, 8).empty());
}

TEST_F(TrafficNetTest, RandomPairsDeterministicPerSeed) {
  TrafficGenerator::Config config;
  config.seed = 7;
  TrafficGenerator a(net_.get(), config);
  TrafficGenerator b(net_.get(), config);
  auto fa = a.RandomPairs(4, 16);
  auto fb = b.RandomPairs(4, 16);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].src_host, fb[i].src_host);
    EXPECT_EQ(fa[i].dst_host, fb[i].dst_host);
  }
}

// --- SRP client library ---

class SrpClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(MakeLine(3, 1));
    net_->Boot();
    ASSERT_TRUE(net_->WaitForConsistency(60 * kSecond));
    ASSERT_TRUE(
        net_->WaitForHostsRegistered(net_->sim().now() + 30 * kSecond));
    client_ = std::make_unique<SrpClient>(&net_->driver_at(0));
  }
  std::unique_ptr<Network> net_;
  std::unique_ptr<SrpClient> client_;
};

TEST_F(SrpClientTest, EchoLocalSwitch) {
  EXPECT_TRUE(client_->Echo({}));
}

TEST_F(SrpClientTest, GetStateAcrossTwoHops) {
  std::vector<std::uint8_t> route = {
      static_cast<std::uint8_t>(net_->spec().cables[0].port_a),
      static_cast<std::uint8_t>(net_->spec().cables[1].port_a)};
  auto state = client_->GetState(route);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->uid, net_->switch_at(2).uid());
  EXPECT_EQ(state->switch_num, net_->autopilot_at(2).switch_num());
  EXPECT_FALSE(state->reconfig_in_progress);
  EXPECT_EQ(state->port_states.size(), 12u);
}

TEST_F(SrpClientTest, GetTopologyMatchesConvergedView) {
  auto topo = client_->GetTopology({});
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->size(), 3);
  EXPECT_EQ(topo->Validate(), "");
}

TEST_F(SrpClientTest, CrawlVisitsEverySwitch) {
  auto entries = client_->CrawlTopology();
  ASSERT_EQ(entries.size(), 3u);
  std::set<std::uint64_t> uids;
  for (const auto& e : entries) {
    uids.insert(e.state.uid.value());
  }
  EXPECT_EQ(uids.size(), 3u);
}

TEST_F(SrpClientTest, GetLogTailNonEmpty) {
  auto log = client_->GetLogTail({});
  ASSERT_TRUE(log.has_value());
  EXPECT_NE(log->find("config applied"), std::string::npos);
}

TEST_F(SrpClientTest, BadRouteTimesOut) {
  // Port 9 leads nowhere: the packet is discarded; the query times out.
  EXPECT_FALSE(client_->Echo({9}, /*timeout=*/500 * kMillisecond));
}

}  // namespace
}  // namespace autonet
