#include <gtest/gtest.h>

#include "src/host/controller.h"
#include "src/link/link.h"
#include "src/link/slots.h"
#include "src/sim/simulator.h"

namespace autonet {
namespace {

// A switch-side stand-in that records symbols and can throttle the host.
class FakeSwitchPort : public LinkEndpoint {
 public:
  void OnPacketBegin(const PacketRef& packet) override {
    current = packet;
    bytes = 0;
  }
  void OnDataByte(const PacketRef&, std::uint32_t, bool) override { ++bytes; }
  void OnPacketEnd(EndFlags flags) override {
    received.push_back({current, flags.corrupted, flags.truncated});
    byte_counts.push_back(bytes);
    current = nullptr;
  }
  void OnFlowDirective(FlowDirective d) override { directives.push_back(d); }
  void OnCarrierChange(bool) override {}

  struct Rx {
    PacketRef packet;
    bool corrupted;
    bool truncated;
  };
  std::vector<Rx> received;
  std::vector<std::uint32_t> byte_counts;
  std::vector<FlowDirective> directives;
  PacketRef current;
  std::uint32_t bytes = 0;
};

PacketRef SmallPacket(std::size_t data = 16,
                      ShortAddress dest = ShortAddress(0x25)) {
  Packet p;
  p.dest = dest;
  p.src = ShortAddress(0x13);
  p.payload.assign(data, 7);
  return MakePacket(std::move(p));
}

class ControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctl_ = std::make_unique<HostController>(&sim_, Uid(0xC0FFEE), "host");
    link0_ = std::make_unique<Link>(&sim_, 0.01);
    link1_ = std::make_unique<Link>(&sim_, 0.01);
    ctl_->AttachPort(0, link0_.get(), Link::Side::kA);
    ctl_->AttachPort(1, link1_.get(), Link::Side::kA);
    link0_->Attach(Link::Side::kB, &switch0_);
    link1_->Attach(Link::Side::kB, &switch1_);
    // The switch side allows transmission.
    link0_->SetFlowDirective(Link::Side::kB, FlowDirective::kStart);
    link1_->SetFlowDirective(Link::Side::kB, FlowDirective::kStart);
    sim_.RunUntil(30 * kMicrosecond);
  }

  Simulator sim_;
  // Links are declared before the controller: devices detach from their
  // links on destruction, so links must outlive them.
  std::unique_ptr<Link> link0_, link1_;
  FakeSwitchPort switch0_, switch1_;
  std::unique_ptr<HostController> ctl_;
};

TEST_F(ControllerTest, ActivePortSendsHostDirective) {
  ASSERT_FALSE(switch0_.directives.empty());
  EXPECT_EQ(switch0_.directives.back(), FlowDirective::kHost);
  // The alternate port sends only sync: no directives at all.
  EXPECT_TRUE(switch1_.directives.empty());
}

TEST_F(ControllerTest, ImprovedHardwareSendsHostOnAlternate) {
  HostController::Config config;
  config.host_directive_on_alternate = true;
  Link l0(&sim_, 0.01);
  Link l1(&sim_, 0.01);
  FakeSwitchPort s0, s1;
  HostController improved(&sim_, Uid(0xD), "imp", config);
  l0.Attach(Link::Side::kB, &s0);
  l1.Attach(Link::Side::kB, &s1);
  improved.AttachPort(0, &l0, Link::Side::kA);
  improved.AttachPort(1, &l1, Link::Side::kA);
  sim_.RunUntil(sim_.now() + 30 * kMicrosecond);
  ASSERT_FALSE(s1.directives.empty());
  EXPECT_EQ(s1.directives.back(), FlowDirective::kHost);
}

TEST_F(ControllerTest, TransmitsWholePacket) {
  PacketRef pkt = SmallPacket(100);
  EXPECT_TRUE(ctl_->Send(pkt));
  sim_.RunUntil(sim_.now() + 1 * kMillisecond);
  ASSERT_EQ(switch0_.received.size(), 1u);
  EXPECT_EQ(switch0_.received[0].packet->id, pkt->id);
  EXPECT_EQ(switch0_.byte_counts[0], pkt->WireSize());
  EXPECT_EQ(ctl_->stats().packets_sent, 1u);
}

TEST_F(ControllerTest, ObeysStopFromSwitch) {
  link0_->SetFlowDirective(Link::Side::kB, FlowDirective::kStop);
  sim_.RunUntil(sim_.now() + 100 * kMicrosecond);
  ctl_->Send(SmallPacket(50));
  sim_.RunUntil(sim_.now() + 1 * kMillisecond);
  EXPECT_TRUE(switch0_.received.empty());  // throttled

  link0_->SetFlowDirective(Link::Side::kB, FlowDirective::kStart);
  sim_.RunUntil(sim_.now() + 1 * kMillisecond);
  EXPECT_EQ(switch0_.received.size(), 1u);  // resumes on start
}

TEST_F(ControllerTest, BroadcastIgnoresStopMidPacket) {
  PacketRef pkt = SmallPacket(3000, kAddrBroadcastAll);
  ctl_->Send(pkt);
  // Let transmission begin, then stop the link.
  sim_.RunUntil(sim_.now() + 30 * kMicrosecond);
  link0_->SetFlowDirective(Link::Side::kB, FlowDirective::kStop);
  sim_.RunUntil(sim_.now() + 2 * kMillisecond);
  ASSERT_EQ(switch0_.received.size(), 1u);  // completed despite stop
  EXPECT_FALSE(switch0_.received[0].truncated);
}

TEST_F(ControllerTest, PortFailoverSwitchesTransmission) {
  ctl_->SelectPort(1);
  sim_.RunUntil(sim_.now() + 30 * kMicrosecond);
  // Directive roles swap.
  ASSERT_FALSE(switch1_.directives.empty());
  EXPECT_EQ(switch1_.directives.back(), FlowDirective::kHost);

  ctl_->Send(SmallPacket(20));
  sim_.RunUntil(sim_.now() + 1 * kMillisecond);
  EXPECT_TRUE(switch0_.received.empty());
  EXPECT_EQ(switch1_.received.size(), 1u);
}

TEST_F(ControllerTest, FailoverMidPacketTruncates) {
  ctl_->Send(SmallPacket(5000));
  sim_.RunUntil(sim_.now() + 50 * kMicrosecond);  // mid-transmission
  ctl_->SelectPort(1);
  sim_.RunUntil(sim_.now() + 2 * kMillisecond);
  ASSERT_EQ(switch0_.received.size(), 1u);
  EXPECT_TRUE(switch0_.received[0].truncated);
}

TEST_F(ControllerTest, TxBufferRejectsWhenFull) {
  HostController::Config config;
  config.tx_buffer_bytes = 200;
  Link link(&sim_, 0.01);
  HostController small(&sim_, Uid(0xE), "small", config);
  small.AttachPort(0, &link, Link::Side::kA);
  // No start from the far side: use default latch (start) but block pump by
  // stop so packets accumulate.
  link.SetFlowDirective(Link::Side::kB, FlowDirective::kStop);
  sim_.RunUntil(sim_.now() + 100 * kMicrosecond);

  EXPECT_TRUE(small.Send(SmallPacket(50)));   // ~104 wire bytes
  EXPECT_FALSE(small.Send(SmallPacket(50)));  // buffer full
  EXPECT_EQ(small.stats().tx_rejected_full, 1u);
}

TEST_F(ControllerTest, ReceivesAndChecksPackets) {
  std::vector<Delivery> got;
  ctl_->SetReceiveHandler([&](Delivery d) { got.push_back(d); });
  PacketRef pkt = SmallPacket(40);
  // Transmit from the switch side at slot cadence.
  link0_->TransmitBegin(Link::Side::kB, pkt);
  for (std::uint32_t i = 0; i < pkt->WireSize(); ++i) {
    link0_->TransmitByte(Link::Side::kB, pkt, i);
  }
  link0_->TransmitEnd(Link::Side::kB, EndFlags{});
  sim_.RunUntil(sim_.now() + 1 * kMillisecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].intact());
  EXPECT_EQ(ctl_->stats().packets_received, 1u);
}

TEST_F(ControllerTest, SlowHostDiscardsInsteadOfStopping) {
  HostController::Config config;
  config.rx_buffer_bytes = 300;
  config.rx_process_ns_per_packet = 10 * kMillisecond;  // very slow host
  Link link(&sim_, 0.01);
  HostController slow(&sim_, Uid(0xF), "slow", config);
  slow.AttachPort(0, &link, Link::Side::kA);
  sim_.RunUntil(sim_.now() + 30 * kMicrosecond);

  for (int i = 0; i < 5; ++i) {
    PacketRef pkt = SmallPacket(60);
    link.TransmitBegin(Link::Side::kB, pkt);
    for (std::uint32_t b = 0; b < pkt->WireSize(); ++b) {
      link.TransmitByte(Link::Side::kB, pkt, b);
    }
    link.TransmitEnd(Link::Side::kB, EndFlags{});
  }
  sim_.RunUntil(sim_.now() + 1 * kMillisecond);
  EXPECT_GT(slow.stats().rx_discarded_full, 0u);
  // Crucially, the controller never sent stop: hosts may not.
  EXPECT_NE(link.flow_directive(Link::Side::kA), FlowDirective::kStop);
}

TEST_F(ControllerTest, LinkErrorVisibleOnCut) {
  EXPECT_FALSE(ctl_->link_error_on_active());
  link0_->SetMode(LinkMode::kCut);
  EXPECT_TRUE(ctl_->link_error_on_active());
}

}  // namespace
}  // namespace autonet
