#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

constexpr Tick kDeadline = 60 * kSecond;

TEST(Network, HealthyTopologyTracksFaults) {
  Network net(MakeRing(4, 1));
  EXPECT_EQ(net.HealthyTopology().size(), 4);

  net.CutCable(0);
  NetTopology topo = net.HealthyTopology();
  EXPECT_EQ(topo.size(), 4);
  int links = 0;
  for (const auto& sw : topo.switches) {
    links += static_cast<int>(sw.links.size());
  }
  EXPECT_EQ(links, 6);  // 3 cables remain, 2 link records each

  net.CrashSwitch(2);
  topo = net.HealthyTopology();
  EXPECT_EQ(topo.size(), 3);
  EXPECT_EQ(topo.Validate(), "");

  net.RestoreCable(0);
  net.RestartSwitch(2);
  EXPECT_EQ(net.HealthyTopology().size(), 4);
}

TEST(Network, HealthyTopologyDropsHostPortsOfDeadSwitches) {
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.AddHost(0, 1);
  Network net(std::move(spec));
  net.CutHostLink(0, 0);
  NetTopology topo = net.HealthyTopology();
  EXPECT_TRUE(topo.switches[0].host_ports.empty());
  EXPECT_EQ(topo.switches[1].host_ports.Count(), 1);
}

TEST(Network, SendDataFailsBeforeRegistration) {
  Network net(MakeLine(2, 1));
  EXPECT_FALSE(net.SendData(0, 1, 10));
}

TEST(Network, CrashSilencesLinksBothWays) {
  Network net(MakeLine(2, 1));
  net.CrashSwitch(1);
  EXPECT_EQ(net.cable_at(0).mode(), LinkMode::kCut);
  EXPECT_FALSE(net.switch_alive(1));
  net.RestartSwitch(1);
  EXPECT_EQ(net.cable_at(0).mode(), LinkMode::kNormal);
  EXPECT_TRUE(net.switch_alive(1));
}

TEST(Network, CrashIsIdempotent) {
  Network net(MakeLine(2, 1));
  net.CrashSwitch(0);
  net.CrashSwitch(0);
  net.RestartSwitch(0);
  net.RestartSwitch(0);
  EXPECT_TRUE(net.switch_alive(0));
}

TEST(Network, ManualCutSurvivesSwitchRestart) {
  Network net(MakeRing(3, 1));
  net.CutCable(0);
  net.CrashSwitch(0);
  net.RestartSwitch(0);
  // The manual cut must still be in force after the restart refresh.
  EXPECT_EQ(net.cable_at(0).mode(), LinkMode::kCut);
}

TEST(Network, InboxLimitCapsDeliveries) {
  NetworkConfig config;
  config.inbox_limit = 3;
  Network net(MakeLine(2, 1), config);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  for (int i = 0; i < 10; ++i) {
    net.SendData(0, 1, 16);
  }
  net.Run(50 * kMillisecond);
  EXPECT_EQ(net.inbox(1).size(), 3u);
  net.ClearInboxes();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(Network, LastReconfigCoversWholeWave) {
  Network net(MakeTorus(2, 2, 0));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  net.CutCable(0);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline));
  Network::ReconfigTiming timing = net.LastReconfig();
  EXPECT_GT(timing.epoch, 0u);
  EXPECT_GE(timing.start, 0);
  EXPECT_GT(timing.end, timing.start);
  // All alive switches ended on the same epoch.
  for (int i = 0; i < net.num_switches(); ++i) {
    EXPECT_EQ(net.autopilot_at(i).epoch(), timing.epoch);
  }
}

TEST(Network, MergedLogInterleavesAllSwitches) {
  Network net(MakeLine(3, 0));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  auto log = net.MergedLog();
  ASSERT_FALSE(log.empty());
  std::set<std::string> nodes;
  Tick previous = 0;
  for (const LogEntry& e : log) {
    EXPECT_GE(e.time, previous);
    previous = e.time;
    nodes.insert(e.node);
  }
  EXPECT_GE(nodes.size(), 3u);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [] {
    Network net(MakeTorus(2, 3, 1));
    net.Boot();
    net.WaitForConsistency(kDeadline);
    std::uint64_t signature = net.sim().now();
    for (int i = 0; i < net.num_switches(); ++i) {
      signature = signature * 31 + net.autopilot_at(i).epoch();
      signature = signature * 31 + net.autopilot_at(i).switch_num();
      signature = signature * 31 + net.switch_at(i).stats().packets_forwarded;
    }
    return signature;
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, CableCorruptionRateDropsAndHealsTheLink) {
  Network net(MakeRing(4, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  EXPECT_EQ(net.cable_corruption_rate(0), 0.0);

  // Every byte damaged: the monitor must throw the link out of service.
  net.SetCableCorruptionRate(0, 1.0);
  EXPECT_EQ(net.cable_corruption_rate(0), 1.0);
  net.Run(2 * kSecond);
  const TopoSpec::CableSpec& cs = net.spec().cables[0];
  EXPECT_FALSE(
      net.autopilot_at(cs.sw_a).port_state(cs.port_a) ==
          PortState::kSwitchGood &&
      net.autopilot_at(cs.sw_b).port_state(cs.port_b) ==
          PortState::kSwitchGood);

  // Healed: once the skeptic's hold-down is served the full ring is
  // consistent again (CheckConsistency compares against the healthy
  // topology, which includes cable 0).
  net.SetCableCorruptionRate(0, 0.0);
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + 180 * kSecond));
}

TEST(Network, ConsistencyRejectsTamperedTable) {
  Network net(MakeLine(2, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_EQ(net.CheckConsistency(), "");
  // Sabotage one switch's table: verification must notice.
  ForwardingTable bogus = ForwardingTable::OneHopOnly();
  Switch::Config no_reset_cfg = net.switch_at(0).config();
  (void)no_reset_cfg;
  net.switch_at(0).LoadForwardingTable(bogus);
  EXPECT_NE(net.CheckConsistency(), "");
}

}  // namespace
}  // namespace autonet
