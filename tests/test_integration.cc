// End-to-end regression scenarios tying the whole system together: the
// paper's deadlock case, FIFO sizing in vivo, marginal links, the panic
// facility, reflected broadcasts, and reconfiguration under live traffic.
#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/host/ethernet.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

constexpr Tick kDeadline = 120 * kSecond;

// The Figure 9 topology used by bench E7, as a regression test.
TopoSpec Figure9() {
  TopoSpec spec;
  int v = spec.AddSwitch("V");
  int w = spec.AddSwitch("W");
  int x = spec.AddSwitch("X");
  int y = spec.AddSwitch("Y");
  int z = spec.AddSwitch("Z");
  spec.Cable(v, w);
  spec.Cable(v, x);
  spec.Cable(w, y);
  spec.Cable(x, z);
  spec.Cable(y, z);
  spec.AddHost(v);
  spec.AddHost(w);
  spec.AddHost(z);
  spec.AddHost(y);
  return spec;
}

void RunFigure9(bool fix, bool* both_delivered) {
  NetworkConfig config;
  config.switch_config.broadcast_ignores_stop = fix;
  config.switch_config.fifo_capacity = fix ? 4096 : 1024;
  Network net(Figure9(), config);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  net.ClearInboxes();

  net.SendData(3, 2, 2000);  // D occupies Y-Z then Z-C
  net.Run(10 * kMicrosecond);
  net.SendData(1, 2, 60000);  // B's long packet
  net.Run(110 * kMicrosecond);
  Packet bcast;
  bcast.dest = kAddrBroadcastHosts;
  bcast.dest_uid = Uid(kEthernetBroadcastUid);
  bcast.payload.assign(kMaxBridgedData, 0xBB);
  net.driver_at(0).Send(std::move(bcast));

  net.Run(2 * kSecond);
  bool have_long = false;
  bool have_bcast = false;
  for (const Delivery& d : net.inbox(2)) {
    if (!d.intact()) {
      continue;
    }
    have_long |= d.packet->payload.size() == 60000;
    have_bcast |= d.packet->dest.IsBroadcast();
  }
  *both_delivered = have_long && have_bcast;
}

TEST(Figure9Deadlock, BrokenPolicyWedgesFixedPolicyDelivers) {
  bool broken_delivered = true;
  RunFigure9(/*fix=*/false, &broken_delivered);
  EXPECT_FALSE(broken_delivered);

  bool fixed_delivered = false;
  RunFigure9(/*fix=*/true, &fixed_delivered);
  EXPECT_TRUE(fixed_delivered);
}

TEST(FifoSizing, NoOverflowOnLongFiberAtFullLoad) {
  // Two switches joined by a 2 km fiber; continuous bulk traffic.  With
  // the stock 4096-byte FIFO and flow control, nothing may ever overflow
  // (section 6.2).
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1, /*length_km=*/2.0);
  spec.AddHost(0);
  spec.AddHost(1);
  Network net(std::move(spec));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  for (int i = 0; i < 10; ++i) {
    net.SendData(0, 1, 8000);
    net.SendData(1, 0, 8000);
  }
  net.Run(100 * kMillisecond);
  for (int s = 0; s < 2; ++s) {
    for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
      EXPECT_EQ(net.switch_at(s).link_unit(p).fifo().overflow_count(), 0u);
    }
  }
  EXPECT_EQ(net.inbox(0).size(), 10u);
  EXPECT_EQ(net.inbox(1).size(), 10u);
}

TEST(MarginalLink, CorruptedTrafficKillsAndSkepticGates) {
  Network net(MakeTorus(2, 3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));

  // A marginal cable: 2% of bytes damaged.  Control-plane probes fail
  // their CRCs; the status sampler sees the errors; the link dies.
  net.cable_at(0).SetCorruptionRate(0.02);
  const TopoSpec::CableSpec& cable = net.spec().cables[0];
  Tick deadline = net.sim().now() + 120 * kSecond;
  bool died = false;
  while (net.sim().now() < deadline && !died) {
    net.Run(500 * kMillisecond);
    died = net.autopilot_at(cable.sw_a).port_state(cable.port_a) ==
               PortState::kDead ||
           net.autopilot_at(cable.sw_b).port_state(cable.port_b) ==
               PortState::kDead;
  }
  EXPECT_TRUE(died);

  // Repair it; after skeptic holddown the network heals completely.
  net.cable_at(0).SetCorruptionRate(0.0);
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                                     500 * kMillisecond))
      << net.CheckConsistency();
}

TEST(Panic, ClearsRemoteFifoBacklog) {
  // The panic directive (designed in section 6.1, unimplemented in the
  // prototype, implemented here): resets the remote link unit, clearing
  // its receive FIFO.
  Network net(MakeLine(2, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  // Jam switch 1's trunk FIFO: host 1's outbound port goes quiet while a
  // packet for it is in flight... simpler: directly verify the wire
  // behaviour: switch 0 sends panic; switch 1's trunk FIFO is cleared.
  const TopoSpec::CableSpec& cable = net.spec().cables[0];
  // Park some bytes in switch 1's receive FIFO by cutting its drain: load
  // a discard-all table is too blunt — instead send a packet addressed to
  // a dead address so it sits in the FIFO briefly, then panic mid-flight.
  net.SendData(0, 1, 60000);
  net.Run(300 * kMicrosecond);
  EXPECT_GT(net.switch_at(cable.sw_b).link_unit(cable.port_b).fifo()
                .occupancy(),
            0u);
  net.switch_at(cable.sw_a).SendPanic(cable.port_a);
  net.Run(5 * kMillisecond);
  // The long packet was destroyed by the link-unit reset.
  bool long_delivered = false;
  for (const Delivery& d : net.inbox(1)) {
    long_delivered |= d.intact() && d.packet->payload.size() == 60000;
  }
  EXPECT_FALSE(long_delivered);
  // And the network remains healthy afterwards.
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline));
}

TEST(Reflection, ReflectedHostLinkGetsKilledByStatus) {
  // The broadcast-storm anecdote of section 7: an unterminated host link
  // reflects packets.  The remedy in practice: enough bad status (our
  // model: the driver's own reflected traffic plus syntax errors) makes
  // the status sampler remove the link.
  Network net(MakeLine(2, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  const TopoSpec::HostSpec& host = net.spec().hosts[1];

  // Host 1's link starts reflecting at the switch side (host unplugged,
  // cable left dangling at the switch).
  net.host_link(1, 0).SetMode(LinkMode::kReflectB);
  net.Run(10 * kSecond);
  // The switch port must not stay classified s.host forever: its own
  // start directives echo back (IsHost false), so the port leaves s.host;
  // the connectivity monitor then sees its own UID and parks it in
  // s.switch.loop, or status errors kill it.
  PortState state =
      net.autopilot_at(host.primary_switch).port_state(host.primary_port);
  EXPECT_NE(state, PortState::kHost);
  EXPECT_TRUE(state == PortState::kSwitchLoop || state == PortState::kDead ||
              state == PortState::kSwitchWho)
      << PortStateName(state);
}

TEST(LiveTraffic, ReconfigurationUnderLoadRecovers) {
  // Continuous traffic while a cable dies and returns: packets in flight
  // during the reconfiguration are destroyed (the prototype's reset-coupled
  // table load), but traffic resumes afterwards with no manual action.
  Network net(MakeTorus(2, 3, 1));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(kDeadline));
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));

  int sent = 0;
  auto pump = [&](Tick duration) {
    Tick end = net.sim().now() + duration;
    while (net.sim().now() < end) {
      for (int h = 0; h < net.num_hosts(); ++h) {
        if (net.SendData(h, (h + 1) % net.num_hosts(), 256)) {
          ++sent;
        }
      }
      net.Run(5 * kMillisecond);
    }
  };
  pump(200 * kMillisecond);
  net.CutCable(0);
  pump(kSecond);
  net.RestoreCable(0);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + kDeadline));

  // Fresh traffic flows loss-free after recovery.
  net.ClearInboxes();
  int verify_sent = 0;
  for (int h = 0; h < net.num_hosts(); ++h) {
    if (net.SendData(h, (h + 2) % net.num_hosts(), 256)) {
      ++verify_sent;
    }
  }
  net.Run(50 * kMillisecond);
  int delivered = 0;
  for (int h = 0; h < net.num_hosts(); ++h) {
    for (const Delivery& d : net.inbox(h)) {
      delivered += d.intact() ? 1 : 0;
    }
  }
  EXPECT_EQ(delivered, verify_sent);
  EXPECT_GT(sent, 0);
}

TEST(Ablation, ImprovedHardwareLoadsTablesWithoutReset) {
  // Section 7: "The most significant change would be to allow the control
  // processor to update the forwarding table without first resetting the
  // switch."  With reset_on_table_load off, a reconfiguration destroys far
  // fewer in-flight packets.
  auto measure_losses = [](bool reset_on_load) {
    NetworkConfig config;
    config.switch_config.reset_on_table_load = reset_on_load;
    Network net(MakeTorus(2, 3, 1), config);
    net.Boot();
    EXPECT_TRUE(net.WaitForConsistency(kDeadline));
    EXPECT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
    std::uint64_t resets = 0;
    for (int i = 0; i < net.num_switches(); ++i) {
      resets += net.switch_at(i).stats().resets;
    }
    return resets;
  };
  std::uint64_t with_reset = measure_losses(true);
  std::uint64_t without_reset = measure_losses(false);
  EXPECT_GT(with_reset, 0u);
  EXPECT_EQ(without_reset, 0u);
}

TEST(SrcLan, FullServiceNetworkBootsAndVerifies) {
  Network net(MakeSrcLan(20));
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(5 * 60 * kSecond, 200 * kMillisecond))
      << net.CheckConsistency();
  EXPECT_EQ(net.autopilot_at(0).topology()->size(), 30);
  ASSERT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond));
  // A few spot deliveries across the torus.
  ASSERT_TRUE(net.SendData(0, 10, 1000));
  ASSERT_TRUE(net.SendData(5, 15, 1000));
  net.Run(20 * kMillisecond);
  EXPECT_EQ(net.inbox(10).size(), 1u);
  EXPECT_EQ(net.inbox(15).size(), 1u);
}

}  // namespace
}  // namespace autonet
