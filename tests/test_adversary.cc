// The adaptive adversary engine and the hardening it forced: spec/grammar
// round-trips, transcript determinism, fingerprint inertness when disarmed,
// and the corrupted-state recovery battery (Dolev-style self-stabilization
// after register damage).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/adversary/adversary.h"
#include "src/adversary/spec.h"
#include "src/autopilot/reconfig.h"
#include "src/chaos/corpus.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

using adversary::ParseSpecText;
using adversary::Spec;
using adversary::Strategy;
using chaos::CampaignConfig;
using chaos::ParseScenarios;
using chaos::RunOne;
using chaos::RunResult;
using chaos::Scenario;
using chaos::TopologyByName;
using chaos::TopologyCase;

// --- spec format ------------------------------------------------------------

TEST(AdversarySpec, TextRoundTripEveryStrategy) {
  const Strategy all[] = {
      Strategy::kRootChase,     Strategy::kPhaseSnipe,
      Strategy::kStorm,         Strategy::kFlapResonance,
      Strategy::kCorruptTable,  Strategy::kCorruptSkeptic,
      Strategy::kCorruptPort,   Strategy::kCorruptEpoch,
  };
  for (Strategy strategy : all) {
    Spec spec;
    spec.strategy = strategy;
    spec.moves = 7;
    spec.duration = 1500 * kMillisecond;
    spec.period = 250 * kMicrosecond;
    spec.phase = "fanin";
    spec.burst = 9;
    spec.amount = 5;
    std::string error;
    Spec again;
    ASSERT_TRUE(ParseSpecText(spec.ToText(), &again, &error))
        << spec.ToText() << ": " << error;
    EXPECT_EQ(again.strategy, spec.strategy);
    EXPECT_EQ(again.moves, spec.moves);
    EXPECT_EQ(again.duration, spec.duration);
    // ToText omits knobs the strategy does not use, so the canonical-form
    // comparison is text equality after one round trip.
    EXPECT_EQ(again.ToText(), spec.ToText()) << StrategyName(strategy);
  }
}

TEST(AdversarySpec, RejectsBadInput) {
  Spec spec;
  std::string error;
  EXPECT_FALSE(ParseSpecText("evil-strategy", &spec, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseSpecText("storm moves nope", &spec, &error));
  EXPECT_FALSE(ParseSpecText("storm duration 5parsecs", &spec, &error));
  EXPECT_FALSE(ParseSpecText("storm moves", &spec, &error));
}

TEST(AdversarySpec, DefaultIsDisabled) {
  EXPECT_FALSE(Spec().enabled());
  EXPECT_FALSE(Scenario().adversary.enabled());
}

// --- scenario grammar -------------------------------------------------------

TEST(AdversaryScenario, GrammarRoundTrip) {
  for (const Scenario& s : chaos::AdversaryCorpus()) {
    std::string error;
    std::vector<Scenario> again = ParseScenarios(s.ToText(), &error);
    ASSERT_EQ(error, "") << s.name;
    ASSERT_EQ(again.size(), 1u) << s.name;
    EXPECT_EQ(again[0].name, s.name);
    EXPECT_EQ(again[0].adversary.ToText(), s.adversary.ToText()) << s.name;
    EXPECT_EQ(again[0].actions.size(), s.actions.size()) << s.name;
  }
}

TEST(AdversaryScenario, CorpusCoversEveryStrategyFamily) {
  std::set<Strategy> seen;
  for (const Scenario& s : chaos::AdversaryCorpus()) {
    ASSERT_TRUE(s.adversary.enabled()) << s.name;
    seen.insert(s.adversary.strategy);
  }
  // The acceptance bar: at least six distinct strategies, including the
  // full corrupted-state family (the self-stabilization battery).
  EXPECT_GE(seen.size(), 6u);
  EXPECT_TRUE(seen.count(Strategy::kCorruptTable));
  EXPECT_TRUE(seen.count(Strategy::kCorruptSkeptic));
  EXPECT_TRUE(seen.count(Strategy::kCorruptPort));
  EXPECT_TRUE(seen.count(Strategy::kCorruptEpoch));
}

TEST(AdversaryScenario, ParseErrorNamesTheLine) {
  std::string error;
  EXPECT_TRUE(
      ParseScenarios("scenario x\n  adversary warp-core moves 2\n", &error)
          .empty());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// --- determinism ------------------------------------------------------------

Scenario InlineScenario(const std::string& text) {
  std::string error;
  std::vector<Scenario> parsed = ParseScenarios(text, &error);
  EXPECT_EQ(error, "");
  EXPECT_EQ(parsed.size(), 1u);
  return parsed[0];
}

TopologyCase Small3() {
  std::string error;
  TopoSpec spec = TopologyByName("small3", &error);
  EXPECT_EQ(error, "");
  return {"small3", std::move(spec)};
}

TEST(AdversaryRun, TranscriptAndFingerprintAreDeterministic) {
  Scenario s = InlineScenario(
      "scenario det\n"
      "  adversary corrupt-table moves 2 duration 1s\n");
  CampaignConfig config;
  TopologyCase topo = Small3();
  RunResult a = RunOne(config, s, topo, /*seed=*/7);
  RunResult b = RunOne(config, s, topo, /*seed=*/7);
  EXPECT_TRUE(a.ok) << (a.violations.empty() ? "" : a.violations[0].detail);
  EXPECT_FALSE(a.adversary.empty());
  EXPECT_GT(a.adversary_moves, 0);
  EXPECT_EQ(a.adversary_transcript, b.adversary_transcript);
  EXPECT_EQ(a.adversary_hash, b.adversary_hash);
  EXPECT_EQ(a.log_hash, b.log_hash);
  EXPECT_EQ(a.metrics_hash, b.metrics_hash);

  // A different seed must choose a different attack (the transcript embeds
  // the victims); fingerprints may legitimately collide only per seed.
  RunResult c = RunOne(config, s, topo, /*seed=*/8);
  EXPECT_NE(a.adversary_hash, c.adversary_hash);
}

TEST(AdversaryRun, DisarmedAdversaryIsByteInert) {
  // The plumbing guarantee behind the committed chaos baselines: a run with
  // no armed adversary — and even a run whose armed adversary makes zero
  // moves and retires before script end — produces byte-identical log and
  // metrics fingerprints to a run without the adversary member at all.
  Scenario plain = InlineScenario(
      "scenario inert\n"
      "  at 100ms cut cable 0\n"
      "  at 1s restore cable 0\n");
  Scenario armed_idle = plain;
  armed_idle.adversary.strategy = Strategy::kStorm;
  armed_idle.adversary.moves = 0;  // armed, polls, never acts
  armed_idle.adversary.duration = 200 * kMillisecond;
  CampaignConfig config;
  TopologyCase topo = Small3();
  RunResult a = RunOne(config, plain, topo, /*seed=*/3);
  RunResult b = RunOne(config, armed_idle, topo, /*seed=*/3);
  EXPECT_TRUE(a.adversary.empty());
  EXPECT_FALSE(b.adversary.empty());
  EXPECT_EQ(b.adversary_moves, 0);
  EXPECT_EQ(a.log_hash, b.log_hash);
  EXPECT_EQ(a.metrics_hash, b.metrics_hash);
}

TEST(AdversaryRun, ReproducerCarriesCampaignAdversary) {
  Scenario s = InlineScenario(
      "scenario repro\n"
      "  at 100ms cut cable 0\n");
  CampaignConfig config;
  config.oracles = [] {
    std::vector<std::unique_ptr<chaos::Oracle>> empty;
    return empty;
  };
  std::string error;
  ASSERT_TRUE(adversary::ParseSpecText("corrupt-port moves 1 duration 500ms",
                                       &config.adversary, &error))
      << error;
  TopologyCase topo = Small3();
  RunResult r = RunOne(config, s, topo, /*seed=*/2);
  EXPECT_EQ(r.adversary, config.adversary.ToText());
}

// --- corrupted-state recovery (the hardening the adversary forced) ---------

TEST(Hardening, TableScrubRepairsCorruptedBits) {
  TopologyCase topo = Small3();
  Network net(topo.spec);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(40 * kSecond));

  // Flip live route bits in a running switch.  The autopilot's background
  // scrub compares the hardware table against the image it last loaded
  // (every 16th status sample) and reloads on any divergence.
  net.switch_at(0).CorruptTableEntry(2, ShortAddress(0x123), 0x3FFF);
  net.switch_at(0).CorruptTableEntry(0, ShortAddress(0x045), 0x00FF);
  net.Run(2 * kSecond);

  EXPECT_GE(net.sim()
                .metrics()
                .GetCounter("switch.s0.autopilot.table_scrub_repairs")
                ->value(),
            1u);
  EXPECT_EQ(net.CheckConsistency(), "");
}

TEST(Hardening, MisclassifiedSwitchPortRecovers) {
  TopologyCase topo = Small3();
  Network net(topo.spec);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(40 * kSecond));

  // Find a switch-to-switch port and corrupt its state register to kHost.
  // The port sampler sees switch flow control on a "host" port, fails it,
  // and the normal probe cycle reclassifies it.
  const TopoSpec::CableSpec& c = net.spec().cables[0];
  ASSERT_EQ(net.autopilot_at(c.sw_a).port_state(c.port_a),
            PortState::kSwitchGood);
  net.autopilot_at(c.sw_a).CorruptPortState(c.port_a, PortState::kHost);
  net.Run(10 * kSecond);

  EXPECT_EQ(net.autopilot_at(c.sw_a).port_state(c.port_a),
            PortState::kSwitchGood);
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + 40 * kSecond))
      << net.CheckConsistency();
}

TEST(Hardening, SkepticClampsCorruptRegisters) {
  TopologyCase topo = Small3();
  Network net(topo.spec);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(40 * kSecond));

  const TopoSpec::CableSpec& c = net.spec().cables[0];
  // Register damage in both directions: an impossible negative level and a
  // level far beyond the maximum with an event stamp from the future.  An
  // unrepaired negative level would disable hysteresis; an unrepaired huge
  // level (or future stamp) would freeze forgiveness and keep the link out
  // essentially forever.
  net.autopilot_at(c.sw_a).CorruptSkeptic(c.port_a, /*connectivity=*/true,
                                          -1000, 0);
  net.autopilot_at(c.sw_a).CorruptSkeptic(c.port_a, /*connectivity=*/false,
                                          1 << 20,
                                          net.sim().now() + 3600 * kSecond);

  // A fault penalizes the status skeptic, whose self-repair clamps the
  // register back into range before using it.
  net.CutCable(0);
  net.Run(2 * kSecond);
  int status = net.autopilot_at(c.sw_a).skeptic_level(c.port_a, false);
  EXPECT_GE(status, 0);
  EXPECT_LE(status, 62);

  // Re-admission consults both skeptics' RequiredHolddown.  The clamp
  // bounds the damage to ONE maximum hold-down cycle (60 s) rather than
  // the centuries an unclamped 2^20 doublings would demand.
  net.RestoreCable(0);
  net.Run(70 * kSecond);
  EXPECT_EQ(net.autopilot_at(c.sw_a).port_state(c.port_a),
            PortState::kSwitchGood);
  for (bool connectivity : {true, false}) {
    int level = net.autopilot_at(c.sw_a).skeptic_level(c.port_a, connectivity);
    EXPECT_GE(level, 0);
    EXPECT_LE(level, 62);
  }
  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + 60 * kSecond))
      << net.CheckConsistency();
}

TEST(Hardening, RunawayEpochRegisterResyncs) {
  TopologyCase topo = Small3();
  Network net(topo.spec);
  net.Boot();
  ASSERT_TRUE(net.WaitForConsistency(40 * kSecond));
  std::uint64_t epoch0 = net.autopilot_at(0).epoch();

  // Drive switch 0's epoch register past kMaxEpochJump: every neighbor now
  // drops its messages as implausible, and it drops theirs as stale — the
  // freeze-out the stale-resync path must break.
  net.autopilot_at(0).engine().CorruptEpochRegister(
      epoch0 + ReconfigEngine::kMaxEpochJump + 17);

  // A cable fault forces neighbors to talk to the victim.
  net.CutCable(0);
  net.Run(2 * kSecond);
  net.RestoreCable(0);
  net.Run(2 * kSecond);

  ASSERT_TRUE(net.WaitForConsistency(net.sim().now() + 60 * kSecond))
      << net.CheckConsistency();
  for (int i = 0; i < net.num_switches(); ++i) {
    EXPECT_LT(net.autopilot_at(i).epoch(),
              epoch0 + 100000)
        << "switch " << i << " kept (or caught) the runaway epoch";
  }
  std::uint64_t resyncs =
      net.sim().metrics().GetCounter("switch.s0.reconfig.epoch_resyncs")
          ->value();
  EXPECT_GE(resyncs, 1u);
}

TEST(Hardening, CorruptEpochScenarioConvergesUnderOracles) {
  // The full-battery form of the above: the committed regression scenario
  // must reconverge within the diameter-scaled deadline with every oracle
  // green and zero post-quiescence loss.
  Scenario runaway;
  for (const Scenario& s : chaos::AdversaryCorpus()) {
    if (s.name == "adv-regress-epoch-runaway") {
      runaway = s;
    }
  }
  ASSERT_TRUE(runaway.adversary.enabled());
  CampaignConfig config;
  TopologyCase topo = Small3();
  RunResult r = RunOne(config, runaway, topo, /*seed=*/1);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0].detail);
  EXPECT_GE(r.adversary_moves, 1);
}

}  // namespace
}  // namespace autonet
