// Timing-invisibility tests for the event-engine hot path (train events,
// inverted cancellation, pooled event storage).
//
// The engine rework is only allowed to make events *cheaper*, never to move
// or reorder them: same seed must give byte-identical merged EventLog
// output.  These tests replay two fixed scenarios — a multi-hop data
// transfer and a chaos-style cut/heal reconfiguration — and diff the full
// formatted merged log against recordings captured before the rework
// (tests/data/*.log, generated from the pre-train per-byte-event engine).
//
// To regenerate the recordings after an *intentional* behaviour change, run
// with AUTONET_UPDATE_RECORDINGS=1 and commit the new files with an
// explanation of why the timeline legitimately moved.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/event_log.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

#ifndef AUTONET_TEST_DATA_DIR
#define AUTONET_TEST_DATA_DIR "tests/data"
#endif

std::string RecordingPath(const std::string& name) {
  return std::string(AUTONET_TEST_DATA_DIR) + "/" + name;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::string();
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << contents;
  return out.good();
}

// A multi-hop transfer: one host at each end of a 6-switch line, a single
// 1500-byte packet crossing five switch hops (the ISSUE's motivating
// workload: ~7500 per-byte events under the old engine).
std::string RunMultiHopScenario() {
  Network net(MakeLine(6, 1));
  net.Boot();
  EXPECT_TRUE(net.WaitForConsistency(5 * 60 * kSecond));
  EXPECT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  EXPECT_TRUE(net.SendData(0, net.num_hosts() - 1, 1500));
  net.Run(50 * kMillisecond);
  EXPECT_EQ(net.inbox(net.num_hosts() - 1).size(), 1u);
  return EventLog::Format(net.MergedLog());
}

// A chaos-style scenario: cut a cable on a redundant topology, let the net
// reconfigure, push traffic over the detour, heal, reconfigure again.
std::string RunChaosScenario() {
  Network net(MakeTorus(3, 3, 1));
  net.Boot();
  EXPECT_TRUE(net.WaitForConsistency(5 * 60 * kSecond));
  EXPECT_TRUE(net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond));
  net.CutCable(0);
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + 5 * 60 * kSecond));
  EXPECT_TRUE(net.SendData(0, net.num_hosts() - 1, 400));
  net.Run(50 * kMillisecond);
  net.RestoreCable(0);
  EXPECT_TRUE(net.WaitForConsistency(net.sim().now() + 5 * 60 * kSecond));
  return EventLog::Format(net.MergedLog());
}

void CheckAgainstRecording(const std::string& name, const std::string& got) {
  std::string path = RecordingPath(name);
  if (std::getenv("AUTONET_UPDATE_RECORDINGS") != nullptr) {
    ASSERT_TRUE(WriteFile(path, got)) << "cannot write " << path;
    GTEST_SKIP() << "recording updated: " << path;
  }
  std::string want = ReadFileOrEmpty(path);
  ASSERT_FALSE(want.empty())
      << "missing recording " << path
      << " — run with AUTONET_UPDATE_RECORDINGS=1 to create it";
  if (got != want) {
    // Locate the first diverging line so a failure is actionable without
    // dumping two multi-thousand-line logs.
    std::istringstream a(want), b(got);
    std::string la, lb;
    int line = 0;
    while (true) {
      bool ea = !std::getline(a, la);
      bool eb = !std::getline(b, lb);
      ++line;
      if (ea && eb) {
        break;
      }
      if (ea != eb || la != lb) {
        FAIL() << name << ": merged log diverges from recording at line "
               << line << "\n  recorded: " << (ea ? "<eof>" : la)
               << "\n  got:      " << (eb ? "<eof>" : lb);
      }
    }
    FAIL() << name << ": logs differ in length only";
  }
  SUCCEED();
}

TEST(Determinism, MultiHopTransferMatchesPreTrainRecording) {
  CheckAgainstRecording("determinism_multihop.log", RunMultiHopScenario());
}

TEST(Determinism, ChaosScenarioMatchesPreTrainRecording) {
  CheckAgainstRecording("determinism_chaos.log", RunChaosScenario());
}

TEST(Determinism, RepeatedRunsAreByteIdentical) {
  std::string first = RunMultiHopScenario();
  std::string second = RunMultiHopScenario();
  EXPECT_EQ(first, second);
  std::string chaos_first = RunChaosScenario();
  std::string chaos_second = RunChaosScenario();
  EXPECT_EQ(chaos_first, chaos_second);
}

}  // namespace
}  // namespace autonet
