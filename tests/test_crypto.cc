#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/host/crypto.h"
#include "src/host/localnet.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

TEST(PacketCipher, RoundTripsWithSameKeyAndNonce) {
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> original = data;
  PacketCipher::Apply(0xDEADBEEF, 42, &data);
  EXPECT_NE(data, original);  // actually transformed
  PacketCipher::Apply(0xDEADBEEF, 42, &data);
  EXPECT_EQ(data, original);  // self-inverse
}

TEST(PacketCipher, WrongKeyProducesGarbage) {
  std::vector<std::uint8_t> data(64, 0x55);
  std::vector<std::uint8_t> original = data;
  PacketCipher::Apply(1, 7, &data);
  PacketCipher::Apply(2, 7, &data);
  EXPECT_NE(data, original);
}

TEST(PacketCipher, DifferentNoncesDifferentKeystreams) {
  std::vector<std::uint8_t> a(32, 0), b(32, 0);
  PacketCipher::Apply(9, 1, &a);
  PacketCipher::Apply(9, 2, &b);
  EXPECT_NE(a, b);
}

TEST(KeyTable, InstallLookupRemove) {
  KeyTable table;
  EXPECT_FALSE(table.Has(5));
  table.Install(5, 0xABCD);
  EXPECT_TRUE(table.Has(5));
  EXPECT_EQ(table.Get(5), 0xABCDu);
  table.Remove(5);
  EXPECT_FALSE(table.Has(5));
}

class CryptoNetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(MakeLine(2, 1));
    net_->Boot();
    ASSERT_TRUE(net_->WaitForConsistency(60 * kSecond));
    ASSERT_TRUE(
        net_->WaitForHostsRegistered(net_->sim().now() + 30 * kSecond));
    for (int h = 0; h < 2; ++h) {
      ln_.push_back(std::make_unique<LocalNet>(
          &net_->sim(), net_->host_at(h).uid(), "ln" + std::to_string(h)));
      ln_[h]->AttachAutonet(&net_->driver_at(h));
      ln_[h]->SetReceiveHandler([this, h](NetworkId, const Datagram& d) {
        rx_[h].push_back(d);
      });
    }
    // Prime the address caches.
    Datagram hello;
    hello.dest_uid = net_->host_at(1).uid();
    hello.data = {1};
    ln_[0]->Send(NetworkId::kAutonet, hello);
    net_->Run(50 * kMillisecond);
    rx_[0].clear();
    rx_[1].clear();
  }

  Datagram Secret(std::uint32_t key_id) {
    Datagram d;
    d.dest_uid = net_->host_at(1).uid();
    d.ether_type = 0x0800;
    d.data = {'s', 'e', 'c', 'r', 'e', 't'};
    d.encrypted = true;
    d.key_id = key_id;
    return d;
  }

  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<LocalNet>> ln_;
  std::vector<Datagram> rx_[2];
};

TEST_F(CryptoNetTest, SharedKeyDecryptsEndToEnd) {
  ln_[0]->keys().Install(7, 0x1234567890ull);
  ln_[1]->keys().Install(7, 0x1234567890ull);
  ASSERT_TRUE(ln_[0]->Send(NetworkId::kAutonet, Secret(7)));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(rx_[1].size(), 1u);
  EXPECT_TRUE(rx_[1][0].encrypted);
  EXPECT_EQ(rx_[1][0].data,
            (std::vector<std::uint8_t>{'s', 'e', 'c', 'r', 'e', 't'}));
}

TEST_F(CryptoNetTest, MissingKeyDeliversCiphertext) {
  ln_[0]->keys().Install(7, 0x42);
  // Receiver has no key 7.
  ASSERT_TRUE(ln_[0]->Send(NetworkId::kAutonet, Secret(7)));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(rx_[1].size(), 1u);
  EXPECT_NE(rx_[1][0].data,
            (std::vector<std::uint8_t>{'s', 'e', 'c', 'r', 'e', 't'}));
  EXPECT_EQ(ln_[1]->stats().undecryptable, 1u);
}

TEST_F(CryptoNetTest, SendWithoutInstalledKeyFails) {
  EXPECT_FALSE(ln_[0]->Send(NetworkId::kAutonet, Secret(9)));
}

TEST_F(CryptoNetTest, NoLatencyPenaltyForEncryption) {
  // Section 3.10: "encrypted packets to be handled with the same latency
  // and throughput as unencrypted ones".  The cipher runs in the
  // controller pipeline at wire speed, so transit time is identical.
  ln_[0]->keys().Install(7, 0xAA);
  ln_[1]->keys().Install(7, 0xAA);
  std::vector<Tick> arrivals;
  ln_[1]->SetReceiveHandler([&](NetworkId, const Datagram&) {
    arrivals.push_back(net_->sim().now());
  });

  // Align both sends to the same flow-slot phase (the 256-slot period) so
  // the comparison is exact up to one slot of alignment.
  Tick phase = 100 * kFlowSlotPeriod * kSlotNs;
  net_->Run(phase - net_->sim().now() % phase);
  Datagram plain = Secret(7);
  plain.encrypted = false;
  Tick sent_plain = net_->sim().now();
  ln_[0]->Send(NetworkId::kAutonet, plain);
  net_->Run(phase - net_->sim().now() % phase);
  Tick sent_secret = net_->sim().now();
  ln_[0]->Send(NetworkId::kAutonet, Secret(7));
  net_->Run(50 * kMillisecond);

  ASSERT_EQ(arrivals.size(), 2u);
  Tick plain_latency = arrivals[0] - sent_plain;
  Tick secret_latency = arrivals[1] - sent_secret;
  EXPECT_NEAR(static_cast<double>(plain_latency),
              static_cast<double>(secret_latency), kSlotNs);
}

}  // namespace
}  // namespace autonet
