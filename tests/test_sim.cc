#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace autonet {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.ScheduleAt(100, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto id = sim.ScheduleAt(50, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  auto id = sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(Simulator, RunUntilAdvancesClockPastQuietPeriod) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(100, [&] { ++count; });
  sim.ScheduleAt(5000, [&] { ++count; });
  EXPECT_EQ(sim.RunUntil(1000), 1u);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.RunUntil(10000), 1u);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAfter(10, chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, PendingCountTracksLiveEvents) {
  Simulator sim;
  auto a = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ScheduleAtPastClampsToNowAndCounts) {
  Simulator sim;
  sim.RunUntil(1000);
  auto* clamped = sim.metrics().GetCounter("sim.schedule_past_clamped");
  EXPECT_EQ(clamped->value(), 0u);
  Tick fired_at = 0;
  sim.ScheduleAt(200, [&] { fired_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(fired_at, 1000);  // clamped, not fired "in the past"
  EXPECT_EQ(clamped->value(), 1u);
}

TEST(Simulator, RunUntilCancelledHeadBeyondTargetDoesNotBlock) {
  // A cancelled entry may sit at the queue head with a timestamp beyond t;
  // RunUntil must discard it and still advance the clock to t.
  Simulator sim;
  auto id = sim.ScheduleAt(5000, [] {});
  sim.Cancel(id);
  EXPECT_EQ(sim.RunUntil(1000), 0u);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunUntilEmptyQueueAdvancesClock) {
  Simulator sim;
  EXPECT_EQ(sim.RunUntil(750), 0u);
  EXPECT_EQ(sim.now(), 750);
}

TEST(SimulatorTrain, ArithmeticFiringSequence) {
  Simulator sim;
  std::vector<std::pair<std::uint32_t, Tick>> fires;
  sim.ScheduleTrain(100, 10, 5, [&](std::uint32_t k) {
    fires.push_back({k, sim.now()});
    return Simulator::TrainStep::Auto();
  });
  EXPECT_EQ(sim.pending(), 1u);  // one queue entry for the whole sequence
  sim.Run();
  ASSERT_EQ(fires.size(), 5u);
  for (std::uint32_t k = 0; k < 5; ++k) {
    EXPECT_EQ(fires[k].first, k);
    EXPECT_EQ(fires[k].second, 100 + 10 * k);
  }
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTrain, UnboundedTrainEndsOnDone) {
  Simulator sim;
  int fires = 0;
  sim.ScheduleTrain(50, 25, 0, [&](std::uint32_t k) {
    ++fires;
    return k == 3 ? Simulator::TrainStep::Done()
                  : Simulator::TrainStep::Auto();
  });
  sim.Run();
  EXPECT_EQ(fires, 4);
  EXPECT_EQ(sim.now(), 50 + 3 * 25);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTrain, AtOverridesArithmeticAdvance) {
  Simulator sim;
  std::vector<Tick> times;
  sim.ScheduleTrain(100, 10, 4, [&](std::uint32_t k) {
    times.push_back(sim.now());
    // Re-anchor the second firing far away; later firings resume the stride
    // from the re-anchored position.
    return k == 0 ? Simulator::TrainStep::At(500)
                  : Simulator::TrainStep::Auto();
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<Tick>{100, 500, 510, 520}));
}

TEST(SimulatorTrain, ConversionIsTimingInvisible) {
  // A train and a self-rescheduling event chain interleaved with plain
  // events at the same ticks must fire in identical order: the train's
  // re-sift takes a fresh sequence exactly where the chain's re-schedule
  // would have.
  auto run_chain = [](std::vector<int>* order) {
    Simulator sim;
    std::function<void(std::uint32_t)> fire = [&](std::uint32_t k) {
      order->push_back(100 + static_cast<int>(k));
      if (k + 1 < 3) {
        Tick next = sim.now() + 10;
        sim.ScheduleAt(next, [&fire, k] { fire(k + 1); });
      }
    };
    sim.ScheduleAt(10, [&fire] { fire(0); });
    sim.ScheduleAt(20, [&] { order->push_back(1); });  // ties with firing 1
    sim.ScheduleAt(30, [&] { order->push_back(2); });  // ties with firing 2
    sim.Run();
  };
  auto run_train = [](std::vector<int>* order) {
    Simulator sim;
    sim.ScheduleTrain(10, 10, 3, [&](std::uint32_t k) {
      order->push_back(100 + static_cast<int>(k));
      return Simulator::TrainStep::Auto();
    });
    sim.ScheduleAt(20, [&] { order->push_back(1); });
    sim.ScheduleAt(30, [&] { order->push_back(2); });
    sim.Run();
  };
  std::vector<int> chain_order;
  std::vector<int> train_order;
  run_chain(&chain_order);
  run_train(&train_order);
  EXPECT_EQ(train_order, chain_order);
}

TEST(SimulatorTrain, ReservedSeqFixesTieBreakPosition) {
  // A sequence reserved before a later schedule claims the earlier tie-break
  // slot even though the event is pushed afterwards.
  Simulator sim;
  std::vector<int> order;
  std::uint64_t reserved = sim.ReserveSeq();
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.ScheduleAtReserved(100, reserved, [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));

  // Same property via a train's At(when, seq) re-anchor.
  order.clear();
  std::uint64_t train_seq = sim.ReserveSeq();
  Tick t = sim.now() + 100;
  sim.ScheduleTrainAt(t, train_seq, [&](std::uint32_t) {
    order.push_back(1);
    return Simulator::TrainStep::Done();
  });
  sim.ScheduleAt(t, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTrain, CancelStopsRemainingFirings) {
  Simulator sim;
  int fires = 0;
  auto id = sim.ScheduleTrain(100, 10, 0, [&](std::uint32_t) {
    ++fires;
    return Simulator::TrainStep::Auto();
  });
  sim.RunUntil(120);  // firings at 100, 110, 120
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTrain, HandlerMayCancelOwnTrain) {
  Simulator sim;
  Simulator::EventId id{};
  int fires = 0;
  id = sim.ScheduleTrain(100, 10, 0, [&](std::uint32_t k) {
    ++fires;
    if (k == 2) {
      EXPECT_TRUE(sim.Cancel(id));
    }
    return Simulator::TrainStep::Auto();
  });
  sim.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTrain, RawTrainFires) {
  struct Ctx {
    std::vector<std::pair<std::uint64_t, std::uint32_t>> fires;
  } ctx;
  Simulator sim;
  sim.ScheduleTrainRawAt(
      200, 0,
      [](void* self, std::uint64_t arg, std::uint32_t k) {
        static_cast<Ctx*>(self)->fires.push_back({arg, k});
        return Simulator::TrainStep::Auto();
      },
      &ctx, 77, /*stride=*/5, /*count=*/3);
  sim.Run();
  ASSERT_EQ(ctx.fires.size(), 3u);
  for (std::uint32_t k = 0; k < 3; ++k) {
    EXPECT_EQ(ctx.fires[k].first, 77u);
    EXPECT_EQ(ctx.fires[k].second, k);
  }
  EXPECT_EQ(sim.now(), 210);
}

TEST(SimulatorTrain, ParkAndResume) {
  Simulator sim;
  std::vector<Tick> fires;
  auto id = sim.ScheduleTrain(100, 0, 0, [&](std::uint32_t k) {
    fires.push_back(sim.now());
    return k == 0 ? Simulator::TrainStep::Park()
                  : Simulator::TrainStep::Done();
  });
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{100}));
  EXPECT_TRUE(sim.empty());  // parked trains are not pending
  EXPECT_TRUE(sim.ResumeTrain(id, 300));
  EXPECT_FALSE(sim.ResumeTrain(id, 300));  // not parked while queued
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{100, 300}));
  EXPECT_FALSE(sim.ResumeTrain(id, 400));  // train ended; slot released
}

TEST(SimulatorTrain, CancelOfParkedTrainFreesSlot) {
  Simulator sim;
  auto id = sim.ScheduleTrain(10, 0, 0, [&](std::uint32_t) {
    return Simulator::TrainStep::Park();
  });
  sim.Run();
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.ResumeTrain(id, 100));
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTrain, ResumeInPastClampsToNow) {
  Simulator sim;
  std::vector<Tick> fires;
  auto id = sim.ScheduleTrain(100, 0, 0, [&](std::uint32_t k) {
    fires.push_back(sim.now());
    return k == 0 ? Simulator::TrainStep::Park()
                  : Simulator::TrainStep::Done();
  });
  sim.RunUntil(1000);
  auto* clamped = sim.metrics().GetCounter("sim.schedule_past_clamped");
  std::uint64_t before = clamped->value();
  EXPECT_TRUE(sim.ResumeTrain(id, 500));  // in the past
  sim.Run();
  EXPECT_EQ(fires, (std::vector<Tick>{100, 1000}));
  EXPECT_EQ(clamped->value(), before + 1);
}

TEST(Simulator, InterleavedCancelAndDispatchAtSameTick) {
  // Events and a train all at one timestamp, with handlers cancelling
  // not-yet-fired entries at that same tick.  Exercises the stale-entry
  // drain in Step/RunUntil against live dispatches; run under ASan/UBSan in
  // CI this also checks the freed-slot recycling.
  Simulator sim;
  std::vector<int> order;
  std::vector<Simulator::EventId> ids;
  Simulator::EventId train_id{};
  ids.push_back(sim.ScheduleAt(100, [&] {
    order.push_back(0);
    sim.Cancel(ids[2]);      // plain event later at this tick
    sim.Cancel(train_id);    // train later at this tick
  }));
  ids.push_back(sim.ScheduleAt(100, [&] { order.push_back(1); }));
  ids.push_back(sim.ScheduleAt(100, [&] { order.push_back(2); }));
  train_id = sim.ScheduleTrain(100, 10, 0, [&](std::uint32_t) {
    order.push_back(3);
    return Simulator::TrainStep::Auto();
  });
  ids.push_back(sim.ScheduleAt(100, [&] {
    order.push_back(4);
    // Re-use the freed slots at the same tick from inside a handler.
    sim.ScheduleAt(100, [&] { order.push_back(5); });
  }));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 5}));
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ClampedEventRunsAfterSameTickEarlierSeq) {
  // An event clamped out of the past lands at (now, fresh seq): it must
  // fire after events already queued at `now` with earlier seqs, not jump
  // the same-tick line.
  Simulator sim;
  std::vector<int> order;
  sim.RunUntil(1000);
  sim.ScheduleAt(1000, [&] { order.push_back(1); });
  sim.ScheduleAt(1000, [&] { order.push_back(2); });
  auto* clamped = sim.metrics().GetCounter("sim.schedule_past_clamped");
  std::uint64_t before = clamped->value();
  sim.ScheduleAt(400, [&] { order.push_back(3); });  // clamped to 1000
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clamped->value(), before + 1);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(SimulatorTieChooser, ChoiceZeroMatchesBaseline) {
  // A chooser that always takes branch 0 reproduces the default
  // (when, seq) order exactly.
  auto run = [](bool with_chooser) {
    Simulator sim;
    std::vector<int> order;
    if (with_chooser) {
      sim.SetTieChooser([](Tick, std::uint32_t) { return 0u; });
    }
    for (int i = 0; i < 4; ++i) {
      sim.ScheduleAt(100, [&order, i] { order.push_back(i); });
      sim.ScheduleAt(200, [&order, i] { order.push_back(10 + i); });
    }
    sim.ScheduleAt(150, [&order] { order.push_back(99); });
    sim.Run();
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(SimulatorTieChooser, ConsultedOnlyForRealTies) {
  Simulator sim;
  int calls = 0;
  sim.SetTieChooser([&](Tick, std::uint32_t n) {
    ++calls;
    EXPECT_GE(n, 2u);
    return 0u;
  });
  sim.ScheduleAt(100, [] {});
  sim.ScheduleAt(200, [] {});
  sim.Run();
  EXPECT_EQ(calls, 0);
}

TEST(SimulatorTieChooser, PermutesSameTickOrderDeterministically) {
  auto run = [] {
    Simulator sim;
    std::vector<int> order;
    sim.SetTieChooser([](Tick, std::uint32_t n) { return n - 1; });
    for (int i = 0; i < 3; ++i) {
      sim.ScheduleAt(100, [&order, i] { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  std::vector<int> first = run();
  EXPECT_EQ(first, (std::vector<int>{2, 1, 0}));  // always the last branch
  EXPECT_EQ(first, run());                        // and reproducibly so
}

TEST(SimulatorTieChooser, NewSameTickEventsJoinTheTiePool) {
  // An event scheduled *during* a same-tick dispatch becomes part of the
  // remaining tie pool, so the chooser can order it before older peers.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(0); });
  sim.ScheduleAt(100, [&] {
    order.push_back(1);
    sim.ScheduleAt(100, [&] { order.push_back(9); });
  });
  int call = 0;
  sim.SetTieChooser([&](Tick, std::uint32_t n) {
    // First tie: pick the second event (which spawns the third); second
    // tie: pick the freshly spawned one ahead of event 0.
    ++call;
    return n - 1;
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 9, 0}));
  EXPECT_EQ(call, 2);
}

TEST(SimulatorTieChooser, CancelledBatchMembersAreSkipped) {
  Simulator sim;
  std::vector<int> order;
  std::vector<Simulator::EventId> ids;
  ids.push_back(sim.ScheduleAt(100, [&] {
    order.push_back(0);
    sim.Cancel(ids[2]);  // cancel a later member of the current tie pool
  }));
  ids.push_back(sim.ScheduleAt(100, [&] { order.push_back(1); }));
  ids.push_back(sim.ScheduleAt(100, [&] { order.push_back(2); }));
  sim.SetTieChooser([](Tick, std::uint32_t) { return 0u; });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTieChooser, UninstallMidTickFallsBackToSeqOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] {
    order.push_back(0);
    sim.SetTieChooser(nullptr);  // batch flushes back to the queue
  });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.SetTieChooser([](Tick, std::uint32_t) { return 0u; });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTieChooser, TrainFiringsJoinTheTiePool) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(0); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleTrain(100, 10, 2, [&](std::uint32_t k) {
    order.push_back(100 + static_cast<int>(k));
    return Simulator::TrainStep::Auto();
  });
  sim.SetTieChooser([](Tick, std::uint32_t n) { return n - 1; });
  sim.Run();
  // At t=100 the pool is {0, 1, train}; picking the highest seq fires the
  // train first, then 1, then 0; the train's second firing at t=110 is a
  // lone event.
  EXPECT_EQ(order, (std::vector<int>{100, 1, 0, 101}));
}

TEST(Timer, RestartSupersedesPreviousArm) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Start(100);
  t.Start(500);  // re-arm: only the later expiry fires
  sim.Run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Timer, StopPreventsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Start(100);
  t.Stop();
  sim.Run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRestartFromOwnCallback) {
  Simulator sim;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t(&sim, [&] {
    if (++fires < 3) {
      tp->Start(100);
    }
  });
  tp = &t;
  t.Start(100);
  sim.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), 300);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim;
  std::vector<Tick> times;
  PeriodicTask task(&sim, [&] { times.push_back(sim.now()); });
  task.Start(250);
  sim.RunUntil(1000);
  task.Stop();
  sim.Run();
  EXPECT_EQ(times, (std::vector<Tick>{250, 500, 750, 1000}));
}

TEST(PeriodicTask, InitialDelayOverride) {
  Simulator sim;
  std::vector<Tick> times;
  PeriodicTask task(&sim, [&] { times.push_back(sim.now()); });
  task.Start(1000, 10);
  sim.RunUntil(2100);
  task.Stop();
  ASSERT_GE(times.size(), 2u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 1010);
}

TEST(PeriodicTask, CallbackMayStopTask) {
  Simulator sim;
  int fires = 0;
  PeriodicTask* tp = nullptr;
  PeriodicTask task(&sim, [&] {
    if (++fires == 2) {
      tp->Stop();
    }
  });
  tp = &task;
  task.Start(100);
  sim.Run();
  EXPECT_EQ(fires, 2);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng fork = a.Fork();
  EXPECT_NE(a.NextU64(), fork.NextU64());
}

}  // namespace
}  // namespace autonet
