#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace autonet {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(100, [&] { order.push_back(2); });
  sim.ScheduleAt(100, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto id = sim.ScheduleAt(50, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  auto id = sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(Simulator, RunUntilAdvancesClockPastQuietPeriod) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(100, [&] { ++count; });
  sim.ScheduleAt(5000, [&] { ++count; });
  EXPECT_EQ(sim.RunUntil(1000), 1u);
  EXPECT_EQ(sim.now(), 1000);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.RunUntil(10000), 1u);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAfter(10, chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, PendingCountTracksLiveEvents) {
  Simulator sim;
  auto a = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_TRUE(sim.empty());
}

TEST(Timer, RestartSupersedesPreviousArm) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Start(100);
  t.Start(500);  // re-arm: only the later expiry fires
  sim.Run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Timer, StopPreventsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(&sim, [&] { ++fires; });
  t.Start(100);
  t.Stop();
  sim.Run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRestartFromOwnCallback) {
  Simulator sim;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t(&sim, [&] {
    if (++fires < 3) {
      tp->Start(100);
    }
  });
  tp = &t;
  t.Start(100);
  sim.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), 300);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulator sim;
  std::vector<Tick> times;
  PeriodicTask task(&sim, [&] { times.push_back(sim.now()); });
  task.Start(250);
  sim.RunUntil(1000);
  task.Stop();
  sim.Run();
  EXPECT_EQ(times, (std::vector<Tick>{250, 500, 750, 1000}));
}

TEST(PeriodicTask, InitialDelayOverride) {
  Simulator sim;
  std::vector<Tick> times;
  PeriodicTask task(&sim, [&] { times.push_back(sim.now()); });
  task.Start(1000, 10);
  sim.RunUntil(2100);
  task.Stop();
  ASSERT_GE(times.size(), 2u);
  EXPECT_EQ(times[0], 10);
  EXPECT_EQ(times[1], 1010);
}

TEST(PeriodicTask, CallbackMayStopTask) {
  Simulator sim;
  int fires = 0;
  PeriodicTask* tp = nullptr;
  PeriodicTask task(&sim, [&] {
    if (++fires == 2) {
      tp->Stop();
    }
  });
  tp = &task;
  task.Start(100);
  sim.Run();
  EXPECT_EQ(fires, 2);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng fork = a.Fork();
  EXPECT_NE(a.NextU64(), fork.NextU64());
}

}  // namespace
}  // namespace autonet
