#include <gtest/gtest.h>

#include "src/core/network.h"
#include "src/host/ethernet.h"
#include "src/host/localnet.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

// --- Ethernet substrate ---

TEST(Ethernet, DeliversAddressedFrame) {
  Simulator sim;
  EthernetSegment segment(&sim);
  EthernetStation a(&segment, Uid(1), "a");
  EthernetStation b(&segment, Uid(2), "b");
  EthernetStation c(&segment, Uid(3), "c");

  std::vector<EthernetFrame> got_b, got_c;
  b.SetReceiveHandler([&](const EthernetFrame& f) { got_b.push_back(f); });
  c.SetReceiveHandler([&](const EthernetFrame& f) { got_c.push_back(f); });

  EthernetFrame f;
  f.dest_uid = Uid(2);
  f.ether_type = 0x0800;
  f.data.assign(100, 1);
  ASSERT_TRUE(a.Send(std::move(f)));
  sim.Run();
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b[0].src_uid, Uid(1));
  EXPECT_TRUE(got_c.empty());  // filtered by UID
}

TEST(Ethernet, BroadcastReachesAllButSender) {
  Simulator sim;
  EthernetSegment segment(&sim);
  EthernetStation a(&segment, Uid(1), "a");
  EthernetStation b(&segment, Uid(2), "b");
  int got_a = 0, got_b = 0;
  a.SetReceiveHandler([&](const EthernetFrame&) { ++got_a; });
  b.SetReceiveHandler([&](const EthernetFrame&) { ++got_b; });
  EthernetFrame f;
  f.dest_uid = Uid(kEthernetBroadcastUid);
  a.Send(std::move(f));
  sim.Run();
  EXPECT_EQ(got_a, 0);
  EXPECT_EQ(got_b, 1);
}

TEST(Ethernet, SharedMediumSerializes) {
  // Two back-to-back max-size frames take at least two serialization times:
  // the shared segment's aggregate bandwidth is the link bandwidth.
  Simulator sim;
  EthernetSegment segment(&sim);
  EthernetStation a(&segment, Uid(1), "a");
  EthernetStation b(&segment, Uid(2), "b");
  std::vector<Tick> arrivals;
  b.SetReceiveHandler(
      [&](const EthernetFrame&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 2; ++i) {
    EthernetFrame f;
    f.dest_uid = Uid(2);
    f.data.assign(1500, 0);
    a.Send(std::move(f));
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  Tick serialization = (1500 + 18) * 8 * 100;  // ns at 10 Mbit/s
  EXPECT_GE(arrivals[1] - arrivals[0], serialization);
}

TEST(Ethernet, PromiscuousStationSeesEverything) {
  Simulator sim;
  EthernetSegment segment(&sim);
  EthernetStation a(&segment, Uid(1), "a");
  EthernetStation b(&segment, Uid(2), "b");
  EthernetStation bridge(&segment, Uid(3), "bridge");
  bridge.SetPromiscuous(true);
  int seen = 0;
  bridge.SetReceiveHandler([&](const EthernetFrame&) { ++seen; });
  EthernetFrame f;
  f.dest_uid = Uid(2);
  a.Send(std::move(f));
  sim.Run();
  EXPECT_EQ(seen, 1);
  (void)b;
}

TEST(Ethernet, RejectsOversizeFrames) {
  Simulator sim;
  EthernetSegment segment(&sim);
  EthernetStation a(&segment, Uid(1), "a");
  EthernetFrame f;
  f.dest_uid = Uid(2);
  f.data.assign(2000, 0);
  EXPECT_FALSE(a.Send(std::move(f)));
}

// --- LocalNet over a real Autonet ---

class LocalNetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(MakeLine(2, 1));
    net_->Boot();
    ASSERT_TRUE(net_->WaitForConsistency(60 * kSecond));
    ASSERT_TRUE(net_->WaitForHostsRegistered(net_->sim().now() + 30 * kSecond));
    for (int h = 0; h < 2; ++h) {
      localnets_.push_back(std::make_unique<LocalNet>(
          &net_->sim(), net_->host_at(h).uid(), "ln" + std::to_string(h)));
      localnets_[h]->AttachAutonet(&net_->driver_at(h));
      localnets_[h]->SetReceiveHandler(
          [this, h](NetworkId net, const Datagram& d) {
            received_[h].push_back(d);
            (void)net;
          });
    }
  }

  Datagram MakeDatagram(int to, std::size_t size = 64) {
    Datagram d;
    d.dest_uid = net_->host_at(to).uid();
    d.ether_type = 0x0800;
    d.data.assign(size, 0x33);
    return d;
  }

  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<LocalNet>> localnets_;
  std::vector<Datagram> received_[2];
};

TEST_F(LocalNetFixture, FirstPacketUsesBroadcastThenLearns) {
  // First transmission: unknown destination, goes to the broadcast short
  // address.
  ASSERT_TRUE(localnets_[0]->Send(NetworkId::kAutonet, MakeDatagram(1)));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(localnets_[0]->stats().sent_broadcast_addr, 1u);

  // The destination answered with an immediate ARP reply (it saw a
  // broadcast-addressed packet with its own UID), so the second packet
  // goes unicast.
  ASSERT_TRUE(localnets_[0]->Send(NetworkId::kAutonet, MakeDatagram(1)));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(received_[1].size(), 2u);
  EXPECT_EQ(localnets_[0]->stats().sent_unicast, 1u);

  // And the reverse direction learned from the data packet's source fields:
  // host 1 can reply unicast right away.
  ASSERT_TRUE(localnets_[1]->Send(NetworkId::kAutonet, MakeDatagram(0)));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(localnets_[1]->stats().sent_unicast, 1u);
  EXPECT_EQ(localnets_[1]->stats().sent_broadcast_addr, 0u);
}

TEST_F(LocalNetFixture, BroadcastUidDatagramReachesPeer) {
  Datagram d = MakeDatagram(1);
  d.dest_uid = Uid(kEthernetBroadcastUid);
  ASSERT_TRUE(localnets_[0]->Send(NetworkId::kAutonet, d));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(received_[1].size(), 1u);
}

TEST_F(LocalNetFixture, OversizeToUnknownDiscardedWithArp) {
  Datagram big = MakeDatagram(1, 4000);  // exceeds the broadcast limit
  EXPECT_FALSE(localnets_[0]->Send(NetworkId::kAutonet, big));
  EXPECT_EQ(localnets_[0]->stats().discarded_oversize_unknown, 1u);
  EXPECT_GE(localnets_[0]->stats().arp_requests, 1u);

  // The ARP exchange resolves the address; the retry succeeds unicast.
  net_->Run(100 * kMillisecond);
  EXPECT_TRUE(localnets_[0]->Send(NetworkId::kAutonet, big));
  net_->Run(100 * kMillisecond);
  ASSERT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[1][0].data.size(), 4000u);
}

TEST_F(LocalNetFixture, EncryptedDatagramCarriesFlag) {
  // Prime the address.
  localnets_[0]->Send(NetworkId::kAutonet, MakeDatagram(1));
  net_->Run(50 * kMillisecond);

  Datagram secret = MakeDatagram(1);
  secret.encrypted = true;
  localnets_[0]->keys().Install(0, 0xFEED);
  localnets_[1]->keys().Install(0, 0xFEED);
  ASSERT_TRUE(localnets_[0]->Send(NetworkId::kAutonet, secret));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(received_[1].size(), 2u);
  EXPECT_TRUE(received_[1][1].encrypted);
}

TEST_F(LocalNetFixture, StaleEntryRefreshedByArp) {
  localnets_[0]->Send(NetworkId::kAutonet, MakeDatagram(1));
  net_->Run(50 * kMillisecond);
  ASSERT_EQ(localnets_[0]->stats().arp_requests, 0u);

  // After > 2 s of silence the entry is stale; the next use sends a
  // directed ARP request alongside the data packet.
  net_->Run(5 * kSecond);
  localnets_[0]->Send(NetworkId::kAutonet, MakeDatagram(1));
  net_->Run(100 * kMillisecond);
  EXPECT_GE(localnets_[0]->stats().arp_requests, 1u);
  // The peer answered, so the entry did not revert to broadcast.
  const UidCache::Entry* entry =
      localnets_[0]->cache().Find(net_->host_at(1).uid());
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->short_address.IsBroadcast());
}

// --- bridging ---

class BridgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Autonet: 2 switches; host 0 = a workstation, host 1 = the bridge.
    net_ = std::make_unique<Network>(MakeLine(2, 1));
    net_->Boot();
    ASSERT_TRUE(net_->WaitForConsistency(60 * kSecond));
    ASSERT_TRUE(net_->WaitForHostsRegistered(net_->sim().now() + 30 * kSecond));

    segment_ = std::make_unique<EthernetSegment>(&net_->sim());
    ether_host_ = std::make_unique<EthernetStation>(segment_.get(),
                                                    Uid(0xE0001), "ehost");
    bridge_station_ = std::make_unique<EthernetStation>(
        segment_.get(), net_->host_at(1).uid(), "br-eth");

    // LocalNet on the Autonet-only workstation.
    ws_ = std::make_unique<LocalNet>(&net_->sim(), net_->host_at(0).uid(),
                                     "ws");
    ws_->AttachAutonet(&net_->driver_at(0));
    ws_->SetReceiveHandler([this](NetworkId, const Datagram& d) {
      ws_rx_.push_back(d);
    });

    // LocalNet on the bridge (both networks).
    bridge_ = std::make_unique<LocalNet>(&net_->sim(), net_->host_at(1).uid(),
                                         "bridge");
    bridge_->AttachAutonet(&net_->driver_at(1));
    bridge_->AttachEthernet(bridge_station_.get());
    bridge_->StartForwarding();

    // A plain LocalNet for the Ethernet-side host.
    eln_ = std::make_unique<LocalNet>(&net_->sim(), ether_host_->uid(), "eln");
    eln_->AttachEthernet(ether_host_.get());
    eln_->SetReceiveHandler([this](NetworkId, const Datagram& d) {
      e_rx_.push_back(d);
    });
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<EthernetSegment> segment_;
  std::unique_ptr<EthernetStation> ether_host_, bridge_station_;
  std::unique_ptr<LocalNet> ws_, bridge_, eln_;
  std::vector<Datagram> ws_rx_, e_rx_;
};

TEST_F(BridgeFixture, EthernetToAutonetAndBack) {
  // The Ethernet host sends to the workstation's UID: the bridge hears it
  // promiscuously and forwards to the Autonet (broadcast address at first).
  Datagram d;
  d.dest_uid = net_->host_at(0).uid();
  d.ether_type = 0x0800;
  d.data.assign(200, 0x42);
  ASSERT_TRUE(eln_->Send(NetworkId::kEthernet, d));
  net_->Run(100 * kMillisecond);
  ASSERT_EQ(ws_rx_.size(), 1u);
  EXPECT_EQ(ws_rx_[0].src_uid, ether_host_->uid());
  EXPECT_EQ(bridge_->stats().forwarded_to_autonet, 1u);

  // Reply: the workstation sends to the Ethernet host's UID.  The bridge
  // knows that UID lives on the Ethernet and forwards.
  Datagram reply;
  reply.dest_uid = ether_host_->uid();
  reply.ether_type = 0x0800;
  reply.data.assign(100, 0x24);
  ASSERT_TRUE(ws_->Send(NetworkId::kAutonet, reply));
  net_->Run(200 * kMillisecond);
  ASSERT_EQ(e_rx_.size(), 1u);
  EXPECT_EQ(e_rx_[0].src_uid, net_->host_at(0).uid());
  EXPECT_GE(bridge_->stats().forwarded_to_ethernet, 1u);
}

TEST_F(BridgeFixture, BridgeRefusesEncryptedPackets) {
  // Teach the bridge where the Ethernet host lives.
  Datagram hello;
  hello.dest_uid = net_->host_at(0).uid();
  hello.data.assign(10, 0);
  eln_->Send(NetworkId::kEthernet, hello);
  net_->Run(100 * kMillisecond);

  Datagram secret;
  secret.dest_uid = ether_host_->uid();
  secret.encrypted = true;
  secret.data.assign(50, 1);
  ws_->keys().Install(0, 0xFEED);
  ASSERT_TRUE(ws_->Send(NetworkId::kAutonet, secret));
  net_->Run(200 * kMillisecond);
  EXPECT_TRUE(e_rx_.empty());
  EXPECT_GE(bridge_->stats().forward_refused, 1u);
}

TEST_F(BridgeFixture, BridgedPacketsCarryEthernetMark) {
  Datagram d;
  d.dest_uid = net_->host_at(0).uid();
  d.data.assign(20, 0x11);
  eln_->Send(NetworkId::kEthernet, d);
  net_->Run(100 * kMillisecond);
  // The raw inbox isn't visible through LocalNet; check via the workstation
  // cache: the Ethernet host was learned with the *bridge's* short address.
  const UidCache::Entry* entry = ws_->cache().Find(ether_host_->uid());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->short_address, net_->driver_at(1).short_address());
}

TEST_F(BridgeFixture, ProxyArpAnswersForEthernetHosts) {
  // Teach the bridge the Ethernet host's location.
  Datagram hello;
  hello.dest_uid = net_->host_at(0).uid();
  hello.data.assign(10, 0);
  eln_->Send(NetworkId::kEthernet, hello);
  net_->Run(100 * kMillisecond);
  ws_rx_.clear();

  // Workstation broadcast-ARPs for the Ethernet host; the bridge proxies.
  Datagram big;
  big.dest_uid = ether_host_->uid();
  big.data.assign(20, 0);
  ws_->Send(NetworkId::kAutonet, big);
  net_->Run(200 * kMillisecond);
  const UidCache::Entry* entry = ws_->cache().Find(ether_host_->uid());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->short_address, net_->driver_at(1).short_address());
}

}  // namespace
}  // namespace autonet
