// E15 — Local reconfiguration (section 7 future work, implemented here).
//
// Paper: "We are interested in exploring modified algorithms that can
// perform local reconfigurations quickly when global reconfigurations are
// not required."  Our implementation routes non-tree link deltas to the
// root and redistributes the configuration down the standing tree — the
// network never loads the one-hop-only table, so host traffic keeps
// flowing.
//
// We cut a non-tree link of the SRC network under continuous load and
// compare: outage window seen by traffic, update completion time, control
// messages, and in-flight losses — full algorithm vs. delta path, each
// with the prototype's reset-coupled table loads and with the proposed
// no-reset hardware.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/routing/spanning_tree.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

int FindCrossCable(Network& net) {
  const NetTopology topo = net.HealthyTopology();
  SpanningTree tree = ComputeSpanningTree(topo);
  for (std::size_t c = 0; c < net.spec().cables.size(); ++c) {
    const TopoSpec::CableSpec& cable = net.spec().cables[c];
    for (const TopoLink& link : topo.switches[cable.sw_a].links) {
      if (link.local_port == cable.port_a &&
          !tree.IsTreeLink(topo, cable.sw_a, link)) {
        return static_cast<int>(c);
      }
    }
  }
  return -1;
}

void Run(bool local, bool reset_on_load) {
  NetworkConfig config;
  config.autopilot.enable_local_reconfig = local;
  config.switch_config.reset_on_table_load = reset_on_load;
  Network net(MakeSrcLan(20), config);
  net.Boot();
  if (!net.WaitForConsistency(10 * 60 * kSecond, 200 * kMillisecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond)) {
    bench::Row("  FAILED to converge");
    return;
  }
  int cross = FindCrossCable(net);
  if (cross < 0) {
    bench::Row("  no cross link found");
    return;
  }
  std::uint64_t msgs_before = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    msgs_before += net.autopilot_at(i).engine().stats().messages_sent;
  }

  // Continuous light traffic between ten host pairs that do not depend on
  // the cut link being present (up*/down* reroutes around it).
  net.ClearInboxes();
  int sent = 0;
  Tick cut_at = -1;
  Tick loud_start = net.sim().now();
  while (net.sim().now() < loud_start + 3 * kSecond) {
    for (int h = 0; h < 10; ++h) {
      if (net.SendData(h, h + 10, 500)) {
        ++sent;
      }
    }
    if (cut_at < 0 && net.sim().now() >= loud_start + 500 * kMillisecond) {
      cut_at = net.sim().now();
      net.CutCable(cross);
    }
    net.Run(10 * kMillisecond);
  }
  net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                         200 * kMillisecond);
  net.Run(50 * kMillisecond);

  int delivered = 0;
  Tick largest_gap = 0;
  std::vector<Tick> arrivals;
  for (int h = 10; h < 20; ++h) {
    for (const Delivery& d : net.inbox(h)) {
      if (d.intact()) {
        ++delivered;
        arrivals.push_back(d.delivered_at);
      }
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    largest_gap = std::max(largest_gap, arrivals[i] - arrivals[i - 1]);
  }
  std::uint64_t msgs = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    msgs += net.autopilot_at(i).engine().stats().messages_sent;
  }

  Tick update_done = net.LastReconfig().end;
  for (int i = 0; i < net.num_switches(); ++i) {
    update_done =
        std::max(update_done, net.autopilot_at(i).stats().last_table_load);
  }
  bench::Row("  %-10s %-10s %10.0f ms %11.0f ms %8d/%d %10llu",
             local ? "delta" : "full",
             reset_on_load ? "reset" : "no-reset",
             bench::Ms(update_done - cut_at), bench::Ms(largest_gap),
             delivered, sent,
             static_cast<unsigned long long>(msgs - msgs_before));
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E15", "local vs full reconfiguration (sec 7 future work)");
  bench::Row("  %-10s %-10s %13s %14s %10s %11s", "algorithm", "hardware",
             "update time", "traffic gap", "delivered", "ctl msgs");
  Run(/*local=*/false, /*reset_on_load=*/true);
  Run(/*local=*/false, /*reset_on_load=*/false);
  Run(/*local=*/true, /*reset_on_load=*/true);
  Run(/*local=*/true, /*reset_on_load=*/false);
  bench::Row("\nshape check: the delta path updates every table in a");
  bench::Row("fraction of the full algorithm's time with far fewer control");
  bench::Row("messages, and (with no-reset hardware) host traffic never");
  bench::Row("pauses: the network stays open throughout.");
  return 0;
}
