// E4 — Switch transit latency and forwarding rate (sections 5.1, 6.4).
//
// Paper: "The latency from receiving the first bit of a packet on an input
// link to forwarding the first bit on an output link is 26 to 32 clock
// cycles [80 ns each] if the output link and router are not busy", and "the
// packet forwarding rate is about 2 million packets per second" (one
// routing decision per 6 clock cycles = 480 ns).
//
// Part 1 measures idle cut-through transit through one switch by
// subtracting link propagation and serialization from a host-to-host
// latency measurement.  Part 2 saturates the scheduling engine with
// requests from many receive ports and reports the sustained decision rate.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/fabric/scheduler.h"
#include "src/fabric/switch.h"
#include "src/host/controller.h"
#include "src/link/slots.h"
#include "src/sim/simulator.h"

namespace autonet {
namespace {

void TransitLatency() {
  Simulator sim;
  Switch sw(&sim, Uid(0x100), "sw");
  HostController sender(&sim, Uid(0xA), "a");
  HostController receiver(&sim, Uid(0xB), "b");
  // Negligible cable length so propagation is a known small constant.
  Link la(&sim, 0.001);
  Link lb(&sim, 0.001);
  sender.AttachPort(0, &la, Link::Side::kA);
  sw.AttachLink(1, &la, Link::Side::kB);
  receiver.AttachPort(0, &lb, Link::Side::kA);
  sw.AttachLink(2, &lb, Link::Side::kB);

  ForwardingTable table;
  table.Set(1, ShortAddress(0x222),
            ForwardingTable::Entry::Alternatives(PortVector::Single(2)));
  sw.LoadForwardingTable(table);

  Tick first_bit_in = -1;
  Tick first_bit_out = -1;
  // Observe the wire by measuring at the receiving controller and removing
  // the known constants.
  Tick received_at = -1;
  receiver.SetReceiveHandler(
      [&](Delivery d) { received_at = d.delivered_at; });

  Packet p;
  p.dest = ShortAddress(0x222);
  p.src = ShortAddress(0x111);
  p.payload.assign(10, 0);  // minimal client packet
  PacketRef pkt = MakePacket(std::move(p));
  std::size_t wire = pkt->WireSize();
  Tick sent_at = sim.now();
  sender.Send(pkt);
  sim.RunUntil(5 * kMillisecond);
  (void)first_bit_in;
  (void)first_bit_out;

  // end-to-end = tx alignment + serialization (wire+2 framing slots, with
  // flow slots skipped) + 2 propagation + switch transit.  We report the
  // residual as the transit.
  Tick end_to_end = received_at - sent_at;
  Tick serialization = static_cast<Tick>(wire + 2) * kSlotNs;
  Tick propagation = 2 * PropagationDelayNs(0.001);
  Tick transit = end_to_end - serialization - propagation;
  double cycles = static_cast<double>(transit) / kSlotNs;
  bench::Row("  end-to-end        %8.2f us", bench::Us(end_to_end));
  bench::Row("  serialization     %8.2f us  (%zu wire bytes)",
             bench::Us(serialization), wire);
  bench::Row("  switch transit    %8.2f us  = %.0f cycles   (paper: 26-32 "
             "cycles, ~2 us)",
             bench::Us(transit), cycles);
}

void SchedulerRate() {
  Simulator sim;
  SchedulerEngine engine(&sim, SchedulerEngine::Config{});
  PortVector busy;  // all ports free
  std::uint64_t grants = 0;
  engine.SetHooks([&] { return ~busy; },
                  [&](const SchedulerEngine::Request& r, PortVector) {
                    ++grants;
                    // Refill: the same receive port immediately presents the
                    // next packet (back-to-back minimal packets).
                    engine.Enqueue(r.inport, PortVector::Single(r.inport),
                                   false);
                  });
  // 12 receive ports, each wanting a distinct free output forever.
  for (PortNum p = 1; p <= 12; ++p) {
    engine.Enqueue(p, PortVector::Single(p), false);
  }
  const Tick kWindow = 10 * kMillisecond;
  sim.RunUntil(kWindow);
  double rate = static_cast<double>(grants) /
                (static_cast<double>(kWindow) / 1e9);
  bench::Row("  scheduling rate   %8.2f M decisions/s   (paper: ~2 M "
             "packets/s, one per 480 ns)",
             rate / 1e6);
}

void LoadedTransit() {
  // Transit under contention: two senders to the same output port; the
  // second packet waits for the first to drain (head-of-line at the output).
  Simulator sim;
  Switch sw(&sim, Uid(0x100), "sw");
  HostController a(&sim, Uid(0xA), "a");
  HostController b(&sim, Uid(0xB), "b");
  HostController dst(&sim, Uid(0xC), "c");
  Link la(&sim, 0.001), lb(&sim, 0.001), lc(&sim, 0.001);
  a.AttachPort(0, &la, Link::Side::kA);
  sw.AttachLink(1, &la, Link::Side::kB);
  b.AttachPort(0, &lb, Link::Side::kA);
  sw.AttachLink(2, &lb, Link::Side::kB);
  dst.AttachPort(0, &lc, Link::Side::kA);
  sw.AttachLink(3, &lc, Link::Side::kB);

  ForwardingTable table;
  table.SetForAllInports(ShortAddress(0x333),
                         ForwardingTable::Entry::Alternatives(
                             PortVector::Single(3)));
  sw.LoadForwardingTable(table);

  std::vector<Tick> arrivals;
  dst.SetReceiveHandler([&](Delivery d) { arrivals.push_back(d.delivered_at); });
  auto mk = [&](std::size_t bytes) {
    Packet p;
    p.dest = ShortAddress(0x333);
    p.payload.assign(bytes, 0);
    return MakePacket(std::move(p));
  };
  a.Send(mk(1000));
  b.Send(mk(1000));
  sim.RunUntil(10 * kMillisecond);
  if (arrivals.size() == 2) {
    bench::Row("  contended output  %8.2f us between deliveries (second "
               "packet queued at the output port)",
               bench::Us(arrivals[1] - arrivals[0]));
  }
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E4", "switch transit latency and forwarding rate (sec 5.1)");
  TransitLatency();
  SchedulerRate();
  LoadedTransit();
  return 0;
}
