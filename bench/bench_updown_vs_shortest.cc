// E8 — Up*/down* routing vs unrestricted shortest paths (sections 4.2,
// 6.6.4).
//
// Part A analyzes forwarding tables offline: with limited FIFO buffering
// and no packet discard, a cycle in the channel dependency graph is exactly
// the condition for deadlock.  Up*/down* tables are acyclic by
// construction; plain shortest-path tables are usually cyclic on any
// topology with cycles.  We also report channel coverage — the paper's
// "all links can carry packets" property — under the minimum-hop
// restriction.
//
// Part B loads both table sets into real switches on a 6-ring and runs
// simultaneous long transfers around the ring: the shortest-path fabric
// wedges with packets strung across every switch, while up*/down* (with
// its longer detour routes) delivers everything.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/updown.h"
#include "src/routing/verify.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

void StaticAnalysis() {
  bench::Row("part A: channel-dependency cycles on random topologies");
  bench::Row("  %-24s %10s %10s", "", "up*/down*", "shortest");
  int cyclic_updown = 0;
  int cyclic_shortest = 0;
  double coverage_updown = 0;
  double coverage_shortest = 0;
  const int kSeeds = 20;
  for (int seed = 0; seed < kSeeds; ++seed) {
    TopoSpec spec = MakeRandom(16, 12, 42 + seed, 1);
    NetTopology topo = spec.ExpectedTopology();
    AssignSwitchNumbers(&topo);
    SpanningTree tree = ComputeSpanningTree(topo);
    auto updown = BuildAllForwardingTables(topo, tree);
    auto shortest = BuildShortestPathTables(topo);
    if (!CheckChannelDependencies(topo, updown).acyclic) {
      ++cyclic_updown;
    }
    if (!CheckChannelDependencies(topo, shortest).acyclic) {
      ++cyclic_shortest;
    }
    coverage_updown += ChannelCoverage(topo, updown).Fraction();
    coverage_shortest += ChannelCoverage(topo, shortest).Fraction();
  }
  bench::Row("  %-24s %9d/%d %8d/%d", "deadlock-prone (cyclic)",
             cyclic_updown, kSeeds, cyclic_shortest, kSeeds);
  bench::Row("  %-24s %9.0f%% %9.0f%%", "channel coverage",
             100.0 * coverage_updown / kSeeds,
             100.0 * coverage_shortest / kSeeds);
}

struct LiveResult {
  int delivered = 0;
  int expected = 0;
  bool wedged = false;
};

LiveResult LiveRun(bool use_updown) {
  constexpr int kN = 6;
  NetworkConfig config;
  config.start_drivers = false;
  Network net(MakeRing(kN, 1), config);
  // Bypass Autopilot: load the table sets directly (no Boot()).
  NetTopology topo = net.spec().ExpectedTopology();
  AssignSwitchNumbers(&topo);
  std::vector<ForwardingTable> tables;
  if (use_updown) {
    SpanningTree tree = ComputeSpanningTree(topo);
    tables = BuildAllForwardingTables(topo, tree);
  } else {
    tables = BuildShortestPathTables(topo);
  }
  for (int i = 0; i < kN; ++i) {
    net.switch_at(i).LoadForwardingTable(tables[i]);
  }

  // Every host sends a 60 KB transfer two switches clockwise: the packets
  // span several switches at once, loading the ring's channel cycle.
  LiveResult result;
  result.expected = kN;
  for (int i = 0; i < kN; ++i) {
    int dest = (i + 2) % kN;
    Packet p;
    p.dest = ShortAddress::FromSwitchPort(
        topo.switches[dest].assigned_num,
        net.spec().hosts[dest].primary_port);
    p.payload.assign(60000, 0x66);
    net.host_at(i).Send(MakePacket(std::move(p)));
  }
  Tick last_progress = net.sim().now();
  std::size_t last_count = 0;
  while (net.sim().now() - last_progress < kSecond) {
    net.Run(50 * kMillisecond);
    std::size_t count = 0;
    for (int i = 0; i < kN; ++i) {
      count += net.inbox(i).size();
    }
    if (count != last_count) {
      last_count = count;
      last_progress = net.sim().now();
    }
    if (static_cast<int>(count) == result.expected) {
      break;
    }
  }
  result.delivered = static_cast<int>(last_count);
  result.wedged = result.delivered < result.expected;
  return result;
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E8", "up*/down* vs unrestricted shortest-path routing");
  StaticAnalysis();

  bench::Row("\npart B: six simultaneous 60 KB transfers around a 6-ring");
  LiveResult shortest = LiveRun(/*use_updown=*/false);
  LiveResult updown = LiveRun(/*use_updown=*/true);
  bench::Row("  %-14s delivered %d/%d %s", "shortest-path", shortest.delivered,
             shortest.expected, shortest.wedged ? "-> DEADLOCK" : "");
  bench::Row("  %-14s delivered %d/%d %s", "up*/down*", updown.delivered,
             updown.expected, updown.wedged ? "-> DEADLOCK" : "");
  bench::Row("\nshape check: shortest-path tables have dependency cycles and");
  bench::Row("wedge under load; up*/down* trades some longer routes for");
  bench::Row("guaranteed deadlock freedom while still using every link.");
  return 0;
}
