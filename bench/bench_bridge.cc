// E10 — Autonet-to-Ethernet bridge performance (section 6.8.2).
//
// Paper, for the Firefly bridge with two processors dedicated to
// forwarding: "In one second, the bridge can discard about 5000 small
// packets (66 bytes each), or forward over 1000 small packets, or forward
// 200-300 maximum-size Ethernet packets.  The bridge is limited by its CPU
// when dealing with small packets, and by the speed of its I/O bus when
// dealing with large packets.  The latency of the bridge is about a
// millisecond for a small packet."
//
// The bridge host's receive path carries a per-packet CPU cost (discard
// rate); forwarding adds the LocalNet bridge CPU + Q-bus byte cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/host/ethernet.h"
#include "src/host/localnet.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

struct BridgeRig {
  std::unique_ptr<Network> net;
  std::unique_ptr<EthernetSegment> segment;
  std::unique_ptr<EthernetStation> ether_host;
  std::unique_ptr<EthernetStation> bridge_station;
  std::unique_ptr<LocalNet> ws;      // Autonet-side workstation
  std::unique_ptr<LocalNet> bridge;  // the bridge host
  std::unique_ptr<LocalNet> eln;     // Ethernet-side host
  std::vector<Tick> ether_arrivals;

  BridgeRig() {
    NetworkConfig config;
    // The bridge host's receive-path CPU cost: ~200 us/packet means the
    // controller+driver can absorb (and discard) about 5000 small pkt/s.
    config.host_config.rx_process_ns_per_packet = 200 * kMicrosecond;
    net = std::make_unique<Network>(MakeLine(2, 1), config);
    net->Boot();
    net->WaitForConsistency(5 * 60 * kSecond);
    net->WaitForHostsRegistered(net->sim().now() + 60 * kSecond);

    segment = std::make_unique<EthernetSegment>(&net->sim());
    ether_host = std::make_unique<EthernetStation>(segment.get(),
                                                   Uid(0xE0001), "ehost");
    bridge_station = std::make_unique<EthernetStation>(
        segment.get(), net->host_at(1).uid(), "br-eth");

    ws = std::make_unique<LocalNet>(&net->sim(), net->host_at(0).uid(), "ws");
    ws->AttachAutonet(&net->driver_at(0));

    bridge = std::make_unique<LocalNet>(&net->sim(), net->host_at(1).uid(),
                                        "bridge");
    bridge->AttachAutonet(&net->driver_at(1));
    bridge->AttachEthernet(bridge_station.get());
    LocalNet::BridgeConfig bc;
    bc.cpu_per_packet = 750 * kMicrosecond;  // forwarding path CPU work
    bc.bus_per_byte = 2300;                  // two Q-bus crossings + driver
    bridge->StartForwarding(bc);

    eln = std::make_unique<LocalNet>(&net->sim(), ether_host->uid(), "eln");
    eln->AttachEthernet(ether_host.get());

    // Teach the bridge where the Ethernet host lives.
    Datagram hello;
    hello.dest_uid = net->host_at(0).uid();
    hello.data.assign(10, 0);
    eln->Send(NetworkId::kEthernet, hello);
    net->Run(100 * kMillisecond);
  }

  // Streams `data_bytes` datagrams from the workstation to the Ethernet
  // host for one second; returns (forwarded per second, latency of first).
  std::pair<double, double> ForwardRate(std::size_t data_bytes) {
    ether_arrivals.clear();
    eln->SetReceiveHandler([this](NetworkId, const Datagram&) {
      ether_arrivals.push_back(net->sim().now());
    });
    Tick start = net->sim().now();
    Tick first_send = -1;
    const Tick kWindow = kSecond;
    while (net->sim().now() < start + kWindow) {
      Datagram d;
      d.dest_uid = ether_host->uid();
      d.ether_type = 0x0800;
      d.data.assign(data_bytes, 0x10);
      if (ws->Send(NetworkId::kAutonet, d) && first_send < 0) {
        first_send = net->sim().now();
      }
      net->Run(400 * kMicrosecond);
    }
    net->Run(200 * kMillisecond);  // drain
    double rate = static_cast<double>(ether_arrivals.size()) /
                  (static_cast<double>(kWindow) / 1e9);
    double first_latency_ms =
        ether_arrivals.empty()
            ? -1
            : bench::Ms(ether_arrivals.front() - first_send);
    return {rate, first_latency_ms};
  }

  // Floods the bridge's Autonet side with packets it examines and
  // *discards*: they are addressed to a UID the bridge knows lives on the
  // Autonet side, so no forwarding work follows the mandatory look.
  double DiscardRate() {
    bridge->cache().Learn(Uid(0xDEAD), ShortAddress(0x7E0),
                          NetworkId::kAutonet, net->sim().now());
    Tick start = net->sim().now();
    std::uint64_t before = net->host_at(1).stats().packets_received;
    const Tick kWindow = kSecond;
    while (net->sim().now() < start + kWindow) {
      Datagram d;
      d.dest_uid = Uid(0xDEAD);  // on "this" side: examined, not forwarded
      d.data.assign(12, 0x20);   // ~66-byte wire packets
      ws->Send(NetworkId::kAutonet, d);
      net->Run(120 * kMicrosecond);
    }
    std::uint64_t after = net->host_at(1).stats().packets_received;
    return static_cast<double>(after - before) /
           (static_cast<double>(kWindow) / 1e9);
  }
};

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E10", "Autonet-to-Ethernet bridge performance (sec 6.8.2)");

  // Fresh rig per measurement so one phase's backlog cannot pollute the
  // next (the bridge CPU queue drains slowly by design).
  auto [small_rate, small_latency] = BridgeRig().ForwardRate(12);
  auto [large_rate, large_latency] = BridgeRig().ForwardRate(1500);
  double discard = BridgeRig().DiscardRate();

  bench::Row("  %-28s %8.0f pkt/s   (paper: ~5000)", "discard small packets",
             discard);
  bench::Row("  %-28s %8.0f pkt/s   (paper: >1000)", "forward small packets",
             small_rate);
  bench::Row("  %-28s %8.0f pkt/s   (paper: 200-300)", "forward max-size",
             large_rate);
  bench::Row("  %-28s %8.2f ms      (paper: ~1 ms)", "small-packet latency",
             small_latency);
  (void)large_latency;
  bench::Row("\nshape check: small packets are CPU-bound (discarding is ~5x");
  bench::Row("cheaper than forwarding); large packets are bus-bound.");
  return 0;
}
