// E11 — Dynamic learning of short addresses (sections 4.3, 6.8.1).
//
// Paper: the UID cache lets hosts "track the short addresses of various
// destinations without generating many extra packets"; packets go to the
// broadcast short address only for the first packet between a pair, or
// when a host has crashed or changed address; ARP responses after address
// changes keep higher-level protocols from timing out.  ("The learning
// algorithm requires only 15 extra instructions per packet received.")
//
// We run request/response conversations between host pairs on a torus and
// count how transmissions split between learned unicast addresses and the
// broadcast fallback, then crash-and-restart a switch to force address
// changes and watch the caches recover.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/host/localnet.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

struct Fleet {
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<LocalNet>> localnets;
  std::uint64_t responses = 0;

  Fleet() {
    // 3x3 torus with dual-homed hosts, so a switch crash forces failovers
    // and genuine short-address changes.
    TopoSpec spec = MakeTorus(3, 3, 0);
    for (int i = 0; i < 9; ++i) {
      spec.AddHost(i, (i + 1) % 9);
    }
    net = std::make_unique<Network>(std::move(spec));
    net->Boot();
    net->WaitForConsistency(5 * 60 * kSecond);
    net->WaitForHostsRegistered(net->sim().now() + 60 * kSecond);
    for (int h = 0; h < net->num_hosts(); ++h) {
      localnets.push_back(std::make_unique<LocalNet>(
          &net->sim(), net->host_at(h).uid(), "ln" + std::to_string(h)));
      localnets[h]->AttachAutonet(&net->driver_at(h));
      int index = h;
      // Every data packet gets an application-level response (RPC-style).
      localnets[h]->SetReceiveHandler(
          [this, index](NetworkId, const Datagram& d) {
            if (d.ether_type == 0x0800 && !d.data.empty() &&
                d.data[0] == 'Q') {
              Datagram reply;
              reply.dest_uid = d.src_uid;
              reply.ether_type = 0x0800;
              reply.data = {'R'};
              localnets[index]->Send(NetworkId::kAutonet, reply);
            } else if (!d.data.empty() && d.data[0] == 'R') {
              ++responses;
            }
          });
    }
  }

  struct Tally {
    std::uint64_t unicast = 0;
    std::uint64_t broadcast = 0;
    std::uint64_t arp = 0;
  };
  Tally Snapshot() const {
    Tally t;
    for (const auto& ln : localnets) {
      t.unicast += ln->stats().sent_unicast;
      t.broadcast += ln->stats().sent_broadcast_addr;
      t.arp += ln->stats().arp_requests + ln->stats().arp_replies;
    }
    return t;
  }
};

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E11", "short-address learning and ARP traffic (sec 6.8.1)");

  Fleet fleet;
  Network& net = *fleet.net;
  const int n = net.num_hosts();
  Rng rng(99);

  // Phase 1: 400 RPC-style exchanges between random pairs, re-using pairs
  // often (as higher-level protocols do).
  auto run_conversations = [&](int count) {
    for (int i = 0; i < count; ++i) {
      int a = static_cast<int>(rng.UniformInt(0, n - 1));
      int b = static_cast<int>(rng.UniformInt(0, n - 2));
      if (b >= a) {
        ++b;
      }
      Datagram q;
      q.dest_uid = net.host_at(b).uid();
      q.ether_type = 0x0800;
      q.data = {'Q'};
      fleet.localnets[a]->Send(NetworkId::kAutonet, q);
      net.Run(2 * kMillisecond);
    }
  };

  run_conversations(400);
  Fleet::Tally t1 = fleet.Snapshot();
  double pct1 = 100.0 * static_cast<double>(t1.broadcast) /
                static_cast<double>(t1.broadcast + t1.unicast);
  bench::Row("  steady state:   %5llu unicast, %4llu broadcast-addressed "
             "(%.1f%%), %llu ARP",
             static_cast<unsigned long long>(t1.unicast),
             static_cast<unsigned long long>(t1.broadcast), pct1,
             static_cast<unsigned long long>(t1.arp));

  // Phase 2: crash a switch; its hosts fail over to their alternate ports
  // and change short addresses; caches must recover without flooding.
  net.CrashSwitch(4);
  net.WaitForConsistency(net.sim().now() + 5 * 60 * kSecond);
  net.Run(10 * kSecond);  // let the ~3 s failover timers run
  net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond);

  run_conversations(400);
  Fleet::Tally t2 = fleet.Snapshot();
  std::uint64_t uni = t2.unicast - t1.unicast;
  std::uint64_t bc = t2.broadcast - t1.broadcast;
  double pct2 =
      100.0 * static_cast<double>(bc) / static_cast<double>(bc + uni);
  bench::Row("  after failover: %5llu unicast, %4llu broadcast-addressed "
             "(%.1f%%), %llu ARP",
             static_cast<unsigned long long>(uni),
             static_cast<unsigned long long>(bc), pct2,
             static_cast<unsigned long long>(t2.arp - t1.arp));
  bench::Row("  responses delivered: %llu/800",
             static_cast<unsigned long long>(fleet.responses));
  bench::Row("\nshape check: after the first contact between a pair, packets");
  bench::Row("go unicast; broadcast-addressed transmissions and ARPs stay a");
  bench::Row("small fraction even across address-changing failures.");
  return 0;
}
