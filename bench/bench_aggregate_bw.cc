// E6 — Aggregate bandwidth (sections 1, 2, 3.2).
//
// Paper: "With FDDI the aggregate network bandwidth is limited to the link
// bandwidth; with Autonet the aggregate bandwidth can be many times the
// link bandwidth ... in a suitable physical configuration, many pairs of
// hosts can communicate simultaneously at full link bandwidth."
//
// We run permutation traffic (each source streams bulk data to a distinct
// destination) on a 4x4 torus and sweep the number of simultaneously active
// pairs; the Ethernet-like shared segment baseline is pinned at its link
// bandwidth no matter how many pairs talk.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/host/ethernet.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

constexpr Tick kWindow = 20 * kMillisecond;
constexpr std::size_t kChunk = 4000;  // bytes per packet

double AutonetAggregate(int pairs) {
  // 4x4 torus, one host per switch; pair i streams host i -> host i+8.
  Network net(MakeTorus(4, 4, 1));
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond)) {
    return -1;
  }
  net.ClearInboxes();

  // Keep each source's transmit queue topped up for the whole window.
  Tick start = net.sim().now();
  Tick deadline = start + kWindow;
  std::uint64_t delivered_bytes = 0;
  while (net.sim().now() < deadline) {
    for (int i = 0; i < pairs; ++i) {
      while (net.host_at(i).tx_queued_bytes() < 3 * kChunk) {
        if (!net.SendData(i, 8 + i, kChunk)) {
          break;
        }
      }
    }
    net.Run(kMillisecond);
  }
  for (int i = 0; i < pairs; ++i) {
    for (const Delivery& d : net.inbox(8 + i)) {
      if (d.intact() && d.delivered_at <= deadline) {
        delivered_bytes += d.packet->payload.size();
      }
    }
  }
  return static_cast<double>(delivered_bytes) * 8.0 /
         (static_cast<double>(kWindow) / 1e9) / 1e6;  // Mbit/s
}

double EthernetAggregate(int pairs) {
  Simulator sim;
  EthernetSegment segment(&sim, 10.0);
  std::vector<std::unique_ptr<EthernetStation>> stations;
  std::vector<std::uint64_t> delivered(16, 0);
  for (int i = 0; i < 16; ++i) {
    stations.push_back(std::make_unique<EthernetStation>(
        &segment, Uid(0xE000 + i), "e" + std::to_string(i)));
  }
  for (int i = 0; i < 16; ++i) {
    int index = i;
    stations[i]->SetReceiveHandler([&delivered, index](const EthernetFrame& f) {
      delivered[index] += f.data.size();
    });
  }
  Tick deadline = kWindow;
  while (sim.now() < deadline) {
    for (int i = 0; i < pairs; ++i) {
      if (segment.queue_depth() < 4) {
        EthernetFrame f;
        f.dest_uid = stations[8 + i]->uid();
        f.data.assign(1500, 0);
        stations[i]->Send(std::move(f));
      }
    }
    sim.RunUntil(sim.now() + 100 * kMicrosecond);
  }
  std::uint64_t total = 0;
  for (std::uint64_t d : delivered) {
    total += d;
  }
  return static_cast<double>(total) * 8.0 /
         (static_cast<double>(kWindow) / 1e9) / 1e6;
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E6", "aggregate bandwidth vs simultaneously active pairs");
  bench::Row("%6s %18s %22s", "pairs", "Autonet (Mbit/s)",
             "Ethernet seg (Mbit/s)");
  for (int pairs : {1, 2, 4, 8}) {
    double autonet = AutonetAggregate(pairs);
    double ether = EthernetAggregate(pairs);
    bench::Row("%6d %18.1f %22.1f", pairs, autonet, ether);
  }
  bench::Row("\nshape check: the Ethernet-style shared segment is pinned at");
  bench::Row("its 10 Mbit/s link bandwidth; Autonet pairs each approach the");
  bench::Row("100 Mbit/s link rate, so aggregate bandwidth scales with the");
  bench::Row("number of disjoint paths (many times the link bandwidth).");
  return 0;
}
