// Ablations of design choices the paper calls out.
//
// A1 — reset-coupled table loads (section 7): "The most significant change
// would be to allow the control processor to update the forwarding table
// without first resetting the switch.  Resetting destroys all packets in
// the switch.  Coupling resetting with reloading causes the initial
// forwarding table reload of a reconfiguration to destroy some
// tree-position packets, thus making reconfiguration take longer."  We
// compare reconfiguration times and in-flight packet survival with the
// prototype behaviour and with the proposed improved hardware.
//
// A2 — alternate host ports sending `host` flow control (section 7):
// "Another hardware change would be to make host controllers transmit the
// host flow control directive on the alternate port.  This change would
// make it simpler for Autopilot to detect switch ports that are connected
// to alternate host ports."  We measure how long an alternate port takes
// to classify as s.host under both designs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

void ResetAblation(bool reset_on_load) {
  NetworkConfig config;
  config.switch_config.reset_on_table_load = reset_on_load;
  Network net(MakeSrcLan(20), config);
  net.Boot();
  if (!net.WaitForConsistency(10 * 60 * kSecond, 200 * kMillisecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond)) {
    bench::Row("  %-22s FAILED", reset_on_load ? "reset (prototype)" : "no reset");
    return;
  }

  // Keep background traffic flowing, then cut a trunk and count losses.
  auto pump = [&](Tick duration, int* sent) {
    Tick end = net.sim().now() + duration;
    while (net.sim().now() < end) {
      for (int h = 0; h < net.num_hosts(); h += 2) {
        if (net.SendData(h, (h + 7) % net.num_hosts(), 1000)) {
          ++*sent;
        }
      }
      net.Run(4 * kMillisecond);
    }
  };
  net.ClearInboxes();
  int sent = 0;
  pump(100 * kMillisecond, &sent);
  net.CutCable(0);
  pump(kSecond, &sent);
  net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                         200 * kMillisecond);
  net.Run(100 * kMillisecond);

  int delivered = 0;
  int damaged = 0;
  for (int h = 0; h < net.num_hosts(); ++h) {
    for (const Delivery& d : net.inbox(h)) {
      delivered += d.intact() ? 1 : 0;
      damaged += d.intact() ? 0 : 1;
    }
  }
  std::uint64_t resets = 0;
  for (int i = 0; i < net.num_switches(); ++i) {
    resets += net.switch_at(i).stats().resets;
  }
  bench::Row("  %-22s %9.0f ms %10d/%d %9d %12llu",
             reset_on_load ? "reset (prototype)" : "no reset (proposed)",
             bench::Ms(net.LastReconfig().Duration()), delivered, sent,
             damaged, static_cast<unsigned long long>(resets));
}

void AlternatePortAblation(bool host_directive_on_alternate) {
  NetworkConfig config;
  config.host_config.host_directive_on_alternate = host_directive_on_alternate;
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.AddHost(0, 1);  // the alternate port lands on switch 1
  const TopoSpec::HostSpec host = spec.hosts[0];
  Network net(std::move(spec), config);
  net.Boot();
  Tick start = net.sim().now();
  Tick classified = -1;
  while (net.sim().now() < 30 * kSecond) {
    net.Run(5 * kMillisecond);
    if (net.autopilot_at(host.alt_switch).port_state(host.alt_port) ==
        PortState::kHost) {
      classified = net.sim().now() - start;
      break;
    }
  }
  // Which rule classified it?  The switch log records the transition.
  const char* rule = "?";
  for (const LogEntry& e :
       net.switch_at(host.alt_switch).log().entries()) {
    if (e.message.find("-> s.host") != std::string::npos) {
      rule = e.message.find("alternate host pattern") != std::string::npos
                 ? "BadSyntax heuristic"
                 : "IsHost status bit";
    }
  }
  bench::Row("  %-34s %8.0f ms   classified via %s",
             host_directive_on_alternate ? "host directive on alternate"
                                         : "sync-only alternate (shipped)",
             bench::Ms(classified), rule);
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("A1", "ablation: reset-coupled forwarding-table loads (sec 7)");
  bench::Row("  %-22s %12s %12s %10s %13s", "hardware", "reconfig",
             "delivered", "damaged", "switch resets");
  ResetAblation(/*reset_on_load=*/true);
  ResetAblation(/*reset_on_load=*/false);
  bench::Row("\nshape check: without destructive reloads no switch resets");
  bench::Row("occur and no packets arrive truncated by a mid-flight reset.");
  bench::Row("Most of the loss during the outage window is routing discards");
  bench::Row("either way, and the reliable-retransmission layer hides the");
  bench::Row("destroyed tree-position packets, so reconfiguration time is");
  bench::Row("similar — the change buys hitless *incremental* table updates");
  bench::Row("(e.g. the local host-port patches) rather than speed.");

  bench::Title("A2", "ablation: alternate-port flow-control directive (sec 7)");
  AlternatePortAblation(false);
  AlternatePortAblation(true);
  bench::Row("\nshape check: both designs classify within a couple of status");
  bench::Row("samples, but the shipped hardware must infer a host from the");
  bench::Row("fragile 'constant BadSyntax, nothing else' pattern, while the");
  bench::Row("proposed change reads it directly off the IsHost status bit.");
  return 0;
}
