// E5 — Path latency vs topology (section 3.2).
//
// Paper: "a ring has latency proportional to the number of hosts.  A
// reasonably configured Autonet has latency proportional to the log of the
// number of switches."  We measure host-to-host latency between the two
// most distant hosts on rings, binary trees, and tori of growing size: the
// ring series grows linearly with N while the tree series grows with
// log(N) and the torus with sqrt(N).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

// Measures one-way latency for a small packet between hosts `a` and `b`.
double MeasureLatencyUs(TopoSpec spec, int host_a, int host_b, int hops_hint,
                        const char* shape, int switches) {
  Network net(std::move(spec));
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond)) {
    bench::Row("%-6s %9d   FAILED to converge", shape, switches);
    return -1;
  }
  net.ClearInboxes();
  Tick sent_at = net.sim().now();
  if (!net.SendData(host_a, host_b, 10)) {
    bench::Row("%-6s %9d   send failed", shape, switches);
    return -1;
  }
  net.Run(50 * kMillisecond);
  if (net.inbox(host_b).size() != 1) {
    bench::Row("%-6s %9d   no delivery", shape, switches);
    return -1;
  }
  Tick latency = net.inbox(host_b)[0].delivered_at - sent_at;
  bench::Row("%-6s %9d %11d %12.2f us", shape, switches, hops_hint,
             bench::Us(latency));
  return bench::Us(latency);
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E5", "host-to-host latency vs topology and size (sec 3.2)");
  bench::Row("%-6s %9s %11s %15s", "shape", "switches", "hops", "latency");

  // Rings: hosts on opposite sides, distance ~N/2.
  for (int n : {4, 8, 16, 32}) {
    MeasureLatencyUs(MakeRing(n, 1), 0, n / 2, n / 2, "ring", n);
  }
  // Binary trees: leaf to leaf across the root, distance ~2*depth.
  for (int depth : {2, 3, 4}) {
    TopoSpec spec = MakeTree(2, depth, 1);
    int n = static_cast<int>(spec.switches.size());
    // The last two subtree leaves sit at indices n-1 and the leaf of the
    // first branch; use hosts on switch n-1 and the deepest leftmost leaf.
    int left_leaf = 0;
    for (int d = 0, idx = 0; d < depth; ++d) {
      idx = idx * 2 + 1;  // first child chain
      left_leaf = idx;
    }
    MeasureLatencyUs(std::move(spec), left_leaf, n - 1, 2 * depth, "tree", n);
  }
  // Tori: opposite corners, distance ~ (rows+cols)/2.
  MeasureLatencyUs(MakeTorus(2, 2, 1), 0, 3, 2, "torus", 4);
  MeasureLatencyUs(MakeTorus(3, 3, 1), 0, 4, 2, "torus", 9);
  MeasureLatencyUs(MakeTorus(4, 4, 1), 0, 10, 4, "torus", 16);
  MeasureLatencyUs(MakeTorus(4, 8, 1), 0, 19, 6, "torus", 32);

  bench::Row("\nshape check: ring latency grows ~linearly with switch count;");
  bench::Row("tree latency grows with log(N); torus with the grid diameter.");
  bench::Row("Each switch adds only ~2 us of cut-through transit.");
  return 0;
}
