// E9 — The first-come, first-considered port scheduler (section 6.4).
//
// Paper: the FCFC engine "eliminates the problem of starvation": requests
// are considered oldest-first each cycle, but younger requests may capture
// ports useless to older ones (queue jumping), and a broadcast request
// accumulates reservations so its effective priority rises until served.
//
// We compare FCFC against a strict first-come-first-served baseline on an
// adversarial workload: one flow hammers a congested output while another
// flow wants an idle output.  Under FCFS the idle-output flow starves
// behind head-of-line blocking; under FCFC it runs at full rate.  A second
// scenario shows a broadcast request completing despite continuous unicast
// competition for its ports.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/fabric/switch.h"
#include "src/host/controller.h"
#include "src/sim/simulator.h"

namespace autonet {
namespace {

struct SchedRig {
  Simulator sim;
  // Links outlive the devices that detach from them on destruction.
  std::vector<std::unique_ptr<Link>> links;
  std::unique_ptr<Switch> sw;
  std::vector<std::unique_ptr<HostController>> hosts;
  std::vector<int> received;

  explicit SchedRig(bool fcfs, int n_hosts) {
    Switch::Config config;
    config.fcfs_scheduler = fcfs;
    sw = std::make_unique<Switch>(&sim, Uid(0x100), "sw", config);
    received.resize(n_hosts, 0);
    for (int i = 0; i < n_hosts; ++i) {
      hosts.push_back(std::make_unique<HostController>(
          &sim, Uid(0xA0 + i), "h" + std::to_string(i)));
      links.push_back(std::make_unique<Link>(&sim, 0.001));
      hosts[i]->AttachPort(0, links[i].get(), Link::Side::kA);
      sw->AttachLink(i + 1, links[i].get(), Link::Side::kB);
      int index = i;
      hosts[i]->SetReceiveHandler([this, index](Delivery d) {
        if (d.intact()) {
          ++received[index];
        }
      });
    }
    // Host i is addressable at (1, i+1).
    ForwardingTable table;
    for (int i = 0; i < n_hosts; ++i) {
      table.SetForAllInports(ShortAddress::FromSwitchPort(1, i + 1),
                             ForwardingTable::Entry::Alternatives(
                                 PortVector::Single(i + 1)));
    }
    // Broadcast floods to every host port.
    PortVector all_hosts;
    for (int i = 0; i < n_hosts; ++i) {
      all_hosts.Set(i + 1);
    }
    table.SetForAllInports(kAddrBroadcastHosts,
                           ForwardingTable::Entry::Broadcast(all_hosts));
    sw->LoadForwardingTable(table);
  }

  PacketRef To(int host, std::size_t bytes) {
    Packet p;
    p.dest = ShortAddress::FromSwitchPort(1, host + 1);
    p.payload.assign(bytes, 0x77);
    return MakePacket(std::move(p));
  }

  void KeepFed(int src, int dst, std::size_t bytes) {
    if (hosts[src]->tx_queued_bytes() < 4 * bytes) {
      hosts[src]->Send(To(dst, bytes));
    }
  }
};

void HeadOfLineScenario(bool fcfs) {
  // Hosts 0 and 1 both stream to host 2 (congested output); host 3 streams
  // to host 4 (idle output).  Under FCFS, whenever a request for the busy
  // port 2 sits at the queue head, host 3's requests behind it starve.
  SchedRig rig(fcfs, 5);
  const Tick kWindow = 20 * kMillisecond;
  while (rig.sim.now() < kWindow) {
    rig.KeepFed(0, 2, 1500);
    rig.KeepFed(1, 2, 1500);
    rig.KeepFed(3, 4, 1500);
    rig.sim.RunUntil(rig.sim.now() + 100 * kMicrosecond);
  }
  double congested = rig.received[2] / (bench::Ms(kWindow) / 1000.0);
  double idle_path = rig.received[4] / (bench::Ms(kWindow) / 1000.0);
  bench::Row("  %-6s %18.0f pkt/s %22.0f pkt/s", fcfs ? "FCFS" : "FCFC",
             congested, idle_path);
}

void BroadcastPriorityScenario() {
  // Continuous unicast traffic to every host port competes with one
  // broadcast request that needs all of them at once.
  SchedRig rig(/*fcfs=*/false, 4);
  const Tick kWindow = 20 * kMillisecond;
  bool broadcast_sent = false;
  int broadcast_seen_before = 0;
  Tick broadcast_sent_at = 0;
  while (rig.sim.now() < kWindow) {
    rig.KeepFed(0, 1, 1500);
    rig.KeepFed(1, 2, 1500);
    rig.KeepFed(2, 3, 1500);
    if (!broadcast_sent && rig.sim.now() > 5 * kMillisecond) {
      broadcast_sent = true;
      broadcast_sent_at = rig.sim.now();
      broadcast_seen_before = rig.received[3];
      Packet p;
      p.dest = kAddrBroadcastHosts;
      p.payload.assign(200, 0x99);
      rig.hosts[3]->Send(MakePacket(std::move(p)));
    }
    rig.sim.RunUntil(rig.sim.now() + 100 * kMicrosecond);
  }
  (void)broadcast_seen_before;
  // The broadcast reached host 0 (which receives nothing else).
  bench::Row("  broadcast served under full unicast load: %s (%d copies at "
             "quiet host)",
             rig.received[0] > 0 ? "yes" : "NO", rig.received[0]);
  (void)broadcast_sent_at;
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E9", "FCFC scheduling engine vs FCFS baseline (sec 6.4)");
  bench::Row("  %-6s %25s %28s", "policy", "congested output",
             "independent output");
  HeadOfLineScenario(/*fcfs=*/true);
  HeadOfLineScenario(/*fcfs=*/false);
  BroadcastPriorityScenario();
  bench::Row("\nshape check: FCFS head-of-line blocking throttles the flow to");
  bench::Row("the idle output; FCFC queue jumping lets it run at link rate,");
  bench::Row("and reservation accumulation guarantees broadcasts get served.");
  return 0;
}
