// E1 — Reconfiguration time on the SRC service network (section 6.6.5).
//
// Paper: "With the first implementation of Autopilot, reconfiguration took
// about 5 seconds in our 30-switch service network. ... The current version
// reconfigures in about 0.5 seconds.  We believe we can achieve ... under
// 0.2 seconds" (a footnote reports 170 ms for later work).  The network is
// an approximate 4x8 torus with a maximum switch-to-switch distance of 6.
//
// We reproduce the three implementation generations as control-processor
// cost presets and measure the reconfiguration wave (first epoch join to
// last forwarding-table load) triggered by a single link failure, a link
// repair, and a switch power-off.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

struct Generation {
  const char* name;
  AutopilotConfig config;
  const char* paper;
};

Tick MeasureTrigger(Network& net, int cable, bool cut) {
  if (cut) {
    net.CutCable(cable);
  } else {
    net.RestoreCable(cable);
  }
  if (!net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                              200 * kMillisecond)) {
    return -1;
  }
  return net.LastReconfig().Duration();
}

void RunGeneration(const Generation& gen, bench::JsonReport& report) {
  NetworkConfig config;
  config.autopilot = gen.config;
  config.start_drivers = false;  // control-plane measurement only
  Network net(MakeSrcLan(/*hosts=*/60), config);
  net.Boot();
  if (!net.WaitForConsistency(10 * 60 * kSecond, 200 * kMillisecond)) {
    bench::Row("%-8s  FAILED to converge at boot", gen.name);
    return;
  }

  Tick cut = MeasureTrigger(net, 0, /*cut=*/true);
  Tick restore = MeasureTrigger(net, 0, /*cut=*/false);
  net.CrashSwitch(7);
  bool ok = net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                                   200 * kMillisecond);
  Tick crash = ok ? net.LastReconfig().Duration() : -1;

  bench::Row("%-8s  %10.0f ms %12.0f ms %12.0f ms   %s", gen.name,
             bench::Ms(cut), bench::Ms(restore), bench::Ms(crash), gen.paper);
  report.rows().BeginObject();
  report.rows().Key("preset").String(gen.name);
  report.rows().Key("link_cut_ms").Number(bench::Ms(cut));
  report.rows().Key("link_repair_ms").Number(bench::Ms(restore));
  report.rows().Key("switch_crash_ms").Number(bench::Ms(crash));
  report.rows().EndObject();
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E1", "reconfiguration time, 30-switch SRC network (sec 6.6.5)");
  bench::Row("%-8s  %13s %15s %15s   %s", "preset", "link cut", "link repair",
             "switch crash", "paper reports");
  Generation generations[] = {
      {"initial", AutopilotConfig::Initial(), "~5 s (first implementation)"},
      {"tuned", AutopilotConfig::Tuned(), "~0.5 s (current version)"},
      {"fast", AutopilotConfig::Fast(), "~0.17 s (later work)"},
  };
  bench::JsonReport report("E1");
  for (const Generation& gen : generations) {
    RunGeneration(gen, report);
  }
  bench::Row("\nshape check: each generation's software tuning, on the same");
  bench::Row("algorithm and topology, should cut reconfiguration time by");
  bench::Row("roughly an order of magnitude from 'initial' to 'fast'.");
  report.Write();
  return 0;
}
