// Shared helpers for the benchmark harnesses: table formatting and common
// measurement drivers.  Each bench binary regenerates one table/figure of
// the paper's evaluation (see DESIGN.md's experiment index) and prints the
// paper's reported value next to the measured one.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/obs/json.h"

namespace autonet {
namespace bench {

inline void Title(const std::string& id, const std::string& what) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), what.c_str());
}

[[gnu::format(printf, 1, 2)]] inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

inline double Ms(Tick t) { return static_cast<double>(t) / 1e6; }
inline double Us(Tick t) { return static_cast<double>(t) / 1e3; }

// Machine-readable companion to the printed table: accumulates measurement
// rows and writes them as BENCH_<id>.json in the working directory, so
// tooling can track the regenerated figures across runs.
//
//   JsonReport report("E1");
//   report.rows().BeginObject();
//   report.rows().Key("preset").String("tuned").Key("cut_ms").Number(412.0);
//   report.rows().EndObject();
//   ...
//   report.Write();  // {"bench": "E1", "rows": [...]}
class JsonReport {
 public:
  explicit JsonReport(const std::string& id)
      : path_("BENCH_" + id + ".json") {
    writer_.BeginObject();
    writer_.Key("bench").String(id);
    writer_.Key("rows").BeginArray();
  }

  // Append rows through this writer (each row one object in the array).
  JsonWriter& rows() { return writer_; }

  bool Write() {
    writer_.EndArray();
    writer_.EndObject();
    std::string json = writer_.Take();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = std::fclose(f) == 0 && ok;
    if (ok) {
      std::printf("\n[wrote %s]\n", path_.c_str());
    }
    return ok;
  }

 private:
  std::string path_;
  JsonWriter writer_;
};

}  // namespace bench
}  // namespace autonet

#endif  // BENCH_BENCH_UTIL_H_
