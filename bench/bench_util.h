// Shared helpers for the benchmark harnesses: table formatting and common
// measurement drivers.  Each bench binary regenerates one table/figure of
// the paper's evaluation (see DESIGN.md's experiment index) and prints the
// paper's reported value next to the measured one.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace autonet {
namespace bench {

inline void Title(const std::string& id, const std::string& what) {
  std::printf("\n=== %s: %s ===\n", id.c_str(), what.c_str());
}

[[gnu::format(printf, 1, 2)]] inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

inline double Ms(Tick t) { return static_cast<double>(t) / 1e6; }
inline double Us(Tick t) { return static_cast<double>(t) / 1e3; }

}  // namespace bench
}  // namespace autonet

#endif  // BENCH_BENCH_UTIL_H_
