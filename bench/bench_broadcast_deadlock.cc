// E7 — The broadcast deadlock of Figure 9 (section 6.6.6) and its fix.
//
// Five switches V,W,X,Y,Z with spanning tree links V-W and V-X (V is the
// root), tree links W-Y and X-Z, and the cross link Y-Z; hosts A on V, B on
// W, C on Z.  B sends a long packet to C along the legal route B-W-Y-Z-C
// while A floods a broadcast down the tree.  The broadcast seizes link Z-C
// first; B's packet therefore stalls at Z while its tail still occupies
// W-Y; the broadcast in turn needs W-Y at switch W, fills the FIFO, and
// flow control back-pressures V — which also stops the V-X-Z-C copy of the
// broadcast: deadlock.
//
// Autonet's fix: a transmitter of a broadcast packet ignores `stop` until
// the end of the packet (and FIFOs are big enough to absorb one maximal
// broadcast).  With the fix disabled the fabric wedges — until the status
// sampler's progress monitoring declares the blocked ports dead and a
// reconfiguration clears the wreckage, which we also report.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/host/ethernet.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

TopoSpec Figure9Topology() {
  TopoSpec spec;
  int v = spec.AddSwitch("V");
  int w = spec.AddSwitch("W");
  int x = spec.AddSwitch("X");
  int y = spec.AddSwitch("Y");
  int z = spec.AddSwitch("Z");
  spec.Cable(v, w);
  spec.Cable(v, x);
  spec.Cable(w, y);
  spec.Cable(x, z);
  spec.Cable(y, z);
  spec.AddHost(v);  // A
  spec.AddHost(w);  // B
  spec.AddHost(z);  // C
  spec.AddHost(y);  // D, whose traffic briefly occupies Y-Z and Z-C
  return spec;
}

struct Outcome {
  bool long_packet_delivered = false;
  bool broadcast_delivered_to_c = false;
  Tick wedged_for = 0;        // longest period with no delivery progress
  bool recovered = false;     // the monitoring plane cleared the wedge
  std::uint64_t port_deaths = 0;
};

Outcome RunScenario(bool ignore_stop_fix) {
  NetworkConfig config;
  config.switch_config.broadcast_ignores_stop = ignore_stop_fix;
  // The broken configuration is the pre-broadcast-fix hardware: 1024-byte
  // FIFOs (sufficient for unicast per section 6.2) and stop obeyed always.
  // The fix pairs ignore-stop with the 4096-byte FIFO.
  config.switch_config.fifo_capacity = ignore_stop_fix ? 4096 : 1024;
  Network net(Figure9Topology(), config);
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond)) {
    return {};
  }
  net.ClearInboxes();

  // D -> C: a medium packet that occupies Y-Z and then Z-C for ~170 us,
  // so B's packet will stall mid-route with its tail strung across W-Y.
  net.SendData(3, 2, 2000);
  net.Run(10 * kMicrosecond);
  // B -> C: the long packet (60 KB); its head waits at Y behind D's
  // packet while it holds the W-Y link.
  net.SendData(1, 2, 60000);
  net.Run(110 * kMicrosecond);
  // A's broadcast floods down the tree: the V->X->Z copy reaches Z while
  // Z-C is still busy and queues *ahead* of B's delayed packet, so the
  // broadcast seizes Z-C; the V->W copy needs the W-Y link that B holds.
  Packet bcast;
  bcast.dest = kAddrBroadcastHosts;
  bcast.type = PacketType::kEthernetEncap;
  bcast.dest_uid = Uid(kEthernetBroadcastUid);
  bcast.payload.assign(kMaxBridgedData, 0xBB);
  net.driver_at(0).Send(std::move(bcast));

  Outcome outcome;
  Tick last_progress = net.sim().now();
  std::size_t last_count = 0;
  const Tick deadline = net.sim().now() + 30 * kSecond;
  while (net.sim().now() < deadline) {
    net.Run(10 * kMillisecond);
    std::size_t count = net.inbox(2).size();
    if (count != last_count) {
      last_count = count;
      last_progress = net.sim().now();
    }
    outcome.wedged_for =
        std::max(outcome.wedged_for, net.sim().now() - last_progress);
    bool have_long = false;
    bool have_bcast = false;
    for (const Delivery& d : net.inbox(2)) {
      if (!d.intact()) {
        continue;
      }
      if (d.packet->payload.size() == 60000) {
        have_long = true;
      }
      if (d.packet->dest.IsBroadcast()) {
        have_bcast = true;
      }
    }
    if (have_long && have_bcast) {
      outcome.long_packet_delivered = true;
      outcome.broadcast_delivered_to_c = true;
      break;
    }
  }
  for (int i = 0; i < net.num_switches(); ++i) {
    outcome.port_deaths += net.autopilot_at(i).stats().port_deaths;
  }
  outcome.recovered = outcome.port_deaths > 0;
  return outcome;
}

void Report(const char* name, const Outcome& o) {
  bench::Row("%-22s  %-9s %-9s %10.1f ms %12llu", name,
             o.long_packet_delivered ? "yes" : "NO",
             o.broadcast_delivered_to_c ? "yes" : "NO",
             bench::Ms(o.wedged_for),
             static_cast<unsigned long long>(o.port_deaths));
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E7", "Figure 9 broadcast deadlock and the ignore-stop fix");
  bench::Row("%-22s  %-9s %-9s %13s %12s", "flow-control policy",
             "long pkt", "broadcast", "max wedge", "port deaths");
  Outcome broken = RunScenario(/*ignore_stop_fix=*/false);
  Report("obey stop (broken)", broken);
  Outcome fixed = RunScenario(/*ignore_stop_fix=*/true);
  Report("ignore stop (fixed)", fixed);
  bench::Row("\nshape check: with broadcasts obeying stop, the fabric wedges");
  bench::Row("(Figure 9); deliveries stall until the status sampler kills the");
  bench::Row("blocked ports and a reconfiguration destroys the stuck packets.");
  bench::Row("With the section 6.6.6 fix, both packets deliver promptly.");
  return 0;
}
