// E12 — The skeptics (sections 4.4, 6.5.5).
//
// Paper: "Two algorithms in Autopilot prevent links that exhibit
// intermittent errors from causing reconfigurations too frequently...
// faults are responded to quickly but intermittent switches or links are
// ignored for progressively longer periods."
//
// We flap one cable of a 6-switch torus at several periods and count the
// reconfigurations per minute of flapping, with the paper's skeptics
// against a no-hysteresis baseline (constant minimal holddown).  We also
// report the time to accept the link again after the flapping stops — the
// responsiveness/stability trade.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

struct FlapResult {
  double reconfigs_per_minute = 0;
  double reaccept_seconds = 0;
};

FlapResult RunFlap(Tick flap_period, bool with_skeptics) {
  NetworkConfig config;
  config.start_drivers = false;
  if (!with_skeptics) {
    // Baseline: constant, minimal holddowns — every flap is believed.
    config.autopilot.status_holddown_max = config.autopilot.status_holddown_base;
    config.autopilot.conn_holddown_max = config.autopilot.conn_holddown_base;
  }
  Network net(MakeTorus(2, 3, 0), config);
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond)) {
    return {};
  }

  auto total_triggers = [&] {
    std::uint64_t t = 0;
    for (int i = 0; i < net.num_switches(); ++i) {
      t += net.autopilot_at(i).engine().stats().triggers;
    }
    return t;
  };

  std::uint64_t before = total_triggers();
  const Tick kFlapWindow = 30 * kSecond;
  Tick end = net.sim().now() + kFlapWindow;
  while (net.sim().now() < end) {
    net.CutCable(0);
    net.Run(flap_period / 2);
    net.RestoreCable(0);
    net.Run(flap_period / 2);
  }
  std::uint64_t during = total_triggers() - before;

  FlapResult result;
  result.reconfigs_per_minute =
      static_cast<double>(during) * 60.0 /
      (static_cast<double>(kFlapWindow) / 1e9);

  // Flapping over; how long until the link is trusted and the network is
  // whole again?
  net.RestoreCable(0);
  Tick heal_start = net.sim().now();
  if (net.WaitForConsistency(heal_start + 30 * 60 * kSecond,
                             500 * kMillisecond)) {
    result.reaccept_seconds =
        static_cast<double>(net.sim().now() - heal_start) / 1e9;
  } else {
    result.reaccept_seconds = -1;
  }
  return result;
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E12", "skeptic hysteresis under link flapping (sec 6.5.5)");
  bench::Row("  %-12s %22s %22s", "flap period", "reconfigs/min (skeptics)",
             "reconfigs/min (none)");
  for (Tick period : {400 * kMillisecond, kSecond, 4 * kSecond}) {
    FlapResult with = RunFlap(period, /*with_skeptics=*/true);
    FlapResult without = RunFlap(period, /*with_skeptics=*/false);
    bench::Row("  %8.1f s %22.1f %22.1f",
               static_cast<double>(period) / 1e9, with.reconfigs_per_minute,
               without.reconfigs_per_minute);
    bench::Row("  %12s %19.1f s %21.1f s", "(re-accept)",
               with.reaccept_seconds, without.reaccept_seconds);
  }
  bench::Row("\nshape check: without hysteresis every flap costs two network-");
  bench::Row("wide reconfigurations; the skeptics suppress the intermittent");
  bench::Row("link for progressively longer holddowns, at the price of a");
  bench::Row("longer re-acceptance delay once the link is genuinely repaired.");
  return 0;
}
