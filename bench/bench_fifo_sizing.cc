// E3 — Receive-FIFO sizing (section 6.2).
//
// Paper formulas, with S = 256 slots between flow-control slots, f = 0.5
// half-full threshold, and W = 64.1·L slots of propagation per km:
//
//   stop-latency bound:   N >= (S - 1 + 128.2 L) / f      -> 1024 B @ 2 km
//   broadcast bound:      N >= (B + S - 1 + 128.2 L) / f  -> 4096 B @ B=1550
//
// Part 1 drives a continuous stream into a switch whose output is stopped
// and measures the worst-case FIFO occupancy against the analytic bound.
// Part 2 reproduces the broadcast case: a transmitter that began a maximal
// broadcast packet under `start` ignores `stop`, so the FIFO must absorb
// the whole packet on top of its half-full threshold — which is why Autonet
// ships 4096-byte FIFOs instead of 1024.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/fabric/switch.h"
#include "src/host/controller.h"
#include "src/link/slots.h"
#include "src/sim/simulator.h"

namespace autonet {
namespace {

// The far end of the blocked output port: stops the switch permanently.
class Stopper : public LinkEndpoint {
 public:
  void OnPacketBegin(const PacketRef&) override {}
  void OnDataByte(const PacketRef&, std::uint32_t, bool) override {}
  void OnPacketEnd(EndFlags) override {}
  void OnFlowDirective(FlowDirective) override {}
  void OnCarrierChange(bool) override {}
};

struct Rig {
  Simulator sim;
  std::unique_ptr<Link> host_link;
  std::unique_ptr<Link> blocked_link;
  std::unique_ptr<Switch> sw;
  std::unique_ptr<HostController> host;
  Stopper stopper;

  Rig(std::size_t fifo_bytes, double length_km) {
    Switch::Config config;
    config.fifo_capacity = fifo_bytes;
    sw = std::make_unique<Switch>(&sim, Uid(0x100), "sw", config);
    host = std::make_unique<HostController>(&sim, Uid(0xA), "h");

    host_link = std::make_unique<Link>(&sim, length_km);
    host->AttachPort(0, host_link.get(), Link::Side::kA);
    sw->AttachLink(1, host_link.get(), Link::Side::kB);

    blocked_link = std::make_unique<Link>(&sim, 0.01);
    sw->AttachLink(2, blocked_link.get(), Link::Side::kA);
    blocked_link->Attach(Link::Side::kB, &stopper);
    blocked_link->SetFlowDirective(Link::Side::kB, FlowDirective::kStop);

    // Route everything arriving on port 1 out the blocked port 2.
    ForwardingTable table;
    table.Set(1, ShortAddress(0x555),
              ForwardingTable::Entry::Alternatives(PortVector::Single(2)));
    table.Set(1, kAddrBroadcastHosts,
              ForwardingTable::Entry::Broadcast(PortVector::Single(2)));
    sw->LoadForwardingTable(table);
  }

  PacketRef DataPacket(ShortAddress dest, std::size_t data) {
    Packet p;
    p.dest = dest;
    p.src = ShortAddress(0x111);
    p.payload.assign(data, 0xAB);
    return MakePacket(std::move(p));
  }
};

// Part 1: continuous stream against a stopped output.
void StopLatencyCase(double length_km, bench::JsonReport& report) {
  const std::size_t kFifo = 4096;
  Rig rig(kFifo, length_km);
  // Plenty of data: several max-size packets.
  for (int i = 0; i < 3; ++i) {
    rig.host->Send(rig.DataPacket(ShortAddress(0x555), 8000));
  }
  rig.sim.RunUntil(30 * kMillisecond);

  const PortFifo& fifo = rig.sw->link_unit(1).fifo();
  double bound = 0.5 * kFifo + (kFlowSlotPeriod - 1) + 2 * 64.1 * length_km;
  double min_n = ((kFlowSlotPeriod - 1) + 128.2 * length_km) / 0.5;
  bench::Row("  %4.1f km   %6zu B   %8.0f B   %7.0f B   %s", length_km,
             fifo.max_occupancy(), bound, min_n,
             fifo.overflow_count() == 0 ? "no overflow" : "OVERFLOW");
  report.rows().BeginObject();
  report.rows().Key("part").String("stop_latency");
  report.rows().Key("length_km").Number(length_km);
  report.rows().Key("max_occupancy_bytes").UInt(fifo.max_occupancy());
  report.rows().Key("paper_bound_bytes").Number(bound);
  report.rows().Key("overflows").UInt(fifo.overflow_count());
  report.rows().EndObject();
}

// Part 2: a maximal broadcast packet arriving over a half-loaded FIFO.
void BroadcastCase(std::size_t fifo_bytes, bench::JsonReport& report) {
  Rig rig(fifo_bytes, 2.0);
  // Fill to just under the half-full threshold with a completable unicast
  // packet, so `start` is still being sent when the broadcast begins.
  std::size_t fill_wire = fifo_bytes / 2 - 64;
  rig.host->Send(
      rig.DataPacket(ShortAddress(0x555),
                     fill_wire - kAutonetHeaderBytes - kEncapHeaderBytes -
                         kCrcBytes));
  // Maximal broadcast packet: 1500 data bytes (~1554 wire bytes).
  rig.host->Send(rig.DataPacket(kAddrBroadcastHosts, kMaxBridgedData));
  rig.sim.RunUntil(30 * kMillisecond);

  const PortFifo& fifo = rig.sw->link_unit(1).fifo();
  bench::Row("  %6zu B   %9zu B   %11llu   %s", fifo_bytes,
             fifo.max_occupancy(),
             static_cast<unsigned long long>(fifo.overflow_count()),
             fifo.overflow_count() == 0 ? "broadcast absorbed"
                                        : "broadcast OVERFLOWS");
  report.rows().BeginObject();
  report.rows().Key("part").String("broadcast");
  report.rows().Key("fifo_bytes").UInt(fifo_bytes);
  report.rows().Key("max_occupancy_bytes").UInt(fifo.max_occupancy());
  report.rows().Key("overflows").UInt(fifo.overflow_count());
  report.rows().EndObject();
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E3", "receive-FIFO sizing (section 6.2)");
  bench::JsonReport report("E3");

  bench::Row("part 1: stop-latency occupancy, 4096-byte FIFO, f = 0.5");
  bench::Row("  %6s %10s %12s %10s", "length", "max occ", "paper bound",
             "min N");
  for (double km : {0.1, 0.5, 1.0, 2.0}) {
    StopLatencyCase(km, report);
  }
  bench::Row("  (paper: N = 1024 suffices for non-broadcast traffic at 2 km)");

  bench::Row("\npart 2: maximal broadcast (B~1550) onto a half-loaded FIFO, 2 km");
  bench::Row("  %8s %13s %13s", "FIFO", "max occ", "overflows");
  for (std::size_t n : {1024u, 2048u, 4096u}) {
    BroadcastCase(n, report);
  }
  bench::Row("  (paper: supporting low-latency broadcast is why the FIFO");
  bench::Row("   grows from 1024 to 4096 bytes)");
  report.Write();
  return 0;
}
