// E14 — Termination detection vs Perlman's original algorithm (section 4.1).
//
// Paper: Perlman's distributed spanning tree converges, "but no node can
// ever be sure that the computation has finished.  For Autonet, indefinite
// termination is unacceptable, because an Autonet cannot carry host traffic
// while reconfiguration is in progress."  The stability extension notifies
// the root the moment the tree is done, so the network "opens for business"
// immediately.
//
// Without termination detection, a deployment must wait a fixed,
// worst-case-sized timeout before re-enabling host traffic — sized for the
// largest supported installation (the paper targets >= 1000 hosts), with a
// safety factor for retransmissions.  We measure when the root actually
// detects termination on a range of topologies and compare with that fixed
// timeout.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

// The timeout a Perlman-style deployment would have to use: the worst-case
// per-hop convergence cost (one retransmission interval plus processing at
// both ends) times the maximum diameter the product supports (a 128-switch
// line), doubled for the report/acknowledgment round, with a 2x margin.
Tick PerlmanTimeout(const AutopilotConfig& config) {
  const int kMaxDiameter = 127;
  Tick per_hop = config.retransmit_period +
                 2 * (config.cost_packet_process + config.cost_packet_send);
  return 2 * 2 * kMaxDiameter * per_hop;
}

void Measure(const char* shape, TopoSpec spec) {
  NetworkConfig config;
  config.autopilot = AutopilotConfig::Fast();
  config.start_drivers = false;
  int switches = static_cast<int>(spec.switches.size());
  Network net(std::move(spec), config);
  net.Boot();
  if (!net.WaitForConsistency(10 * 60 * kSecond, 200 * kMillisecond)) {
    bench::Row("  %-8s %8d   FAILED", shape, switches);
    return;
  }
  // Trigger a clean reconfiguration and time the wave.
  net.CutCable(0);
  if (!net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                              200 * kMillisecond)) {
    bench::Row("  %-8s %8d   FAILED after cut", shape, switches);
    return;
  }
  Network::ReconfigTiming timing = net.LastReconfig();
  // Find the root's termination instant for the final epoch.
  Tick terminated = -1;
  for (int i = 0; i < net.num_switches(); ++i) {
    terminated = std::max(
        terminated,
        net.autopilot_at(i).engine().stats().last_termination_time);
  }
  Tick detect = terminated - timing.start;
  Tick open = timing.Duration();
  Tick fixed = PerlmanTimeout(config.autopilot);
  bench::Row("  %-8s %8d %14.0f ms %13.0f ms %12.0f ms %9.0fx", shape,
             switches, bench::Ms(detect), bench::Ms(open), bench::Ms(fixed),
             static_cast<double>(fixed) / static_cast<double>(open));
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E14",
               "termination detection vs fixed worst-case timeout (sec 4.1)");
  bench::Row("  %-8s %8s %17s %16s %15s %10s", "shape", "switches",
             "root detects", "network opens", "fixed timeout", "speedup");
  Measure("line", MakeLine(4, 0));
  Measure("line", MakeLine(12, 0));
  Measure("ring", MakeRing(8, 0));
  Measure("ring", MakeRing(16, 0));
  Measure("torus", MakeTorus(4, 4, 0));
  Measure("torus", MakeTorus(4, 8, 0));
  Measure("tree", MakeTree(2, 3, 0));
  bench::Row("\nshape check: with the stability extension the network opens");
  bench::Row("as soon as the actual topology's tree settles — one to two");
  bench::Row("orders of magnitude before a worst-case-sized Perlman timeout");
  bench::Row("would allow, and the gap grows as the installation shrinks.");
  return 0;
}
