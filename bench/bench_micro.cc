// Wall-clock microbenchmarks (google-benchmark) for the simulation
// substrate itself: event queue throughput, FIFO operations, forwarding
// table lookups, route computation, and end-to-end simulated-seconds per
// wall-second for a mid-size network.  These guard the *simulator's*
// performance — the paper-facing measurements live in the other bench
// binaries.
#include <benchmark/benchmark.h>

#include "src/core/network.h"
#include "src/fabric/forwarding_table.h"
#include "src/fabric/port_fifo.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  Simulator sim;
  std::uint64_t count = 0;
  for (auto _ : state) {
    sim.ScheduleAfter(10, [&count] { ++count; });
    sim.Step();
  }
  benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_SimulatorScheduleDispatch);

void BM_SimulatorPendingHeap(benchmark::State& state) {
  // Scheduling into a deep queue (the switch-fabric steady state).
  Simulator sim;
  for (int i = 0; i < 10000; ++i) {
    sim.ScheduleAfter(1000000 + i, [] {});
  }
  for (auto _ : state) {
    auto id = sim.ScheduleAfter(500, [] {});
    sim.Cancel(id);
  }
}
BENCHMARK(BM_SimulatorPendingHeap);

void BM_PortFifoPushPop(benchmark::State& state) {
  PortFifo fifo(4096);
  Packet p;
  p.payload.assign(64, 0);
  PacketRef pkt = MakePacket(std::move(p));
  for (auto _ : state) {
    fifo.PushBegin(pkt);
    for (int i = 0; i < 64; ++i) {
      fifo.PushByte();
    }
    fifo.PushEnd(EndFlags{});
    while (fifo.PopByte().has_value()) {
    }
    fifo.TryPopEnd();
  }
}
BENCHMARK(BM_PortFifoPushPop);

void BM_ForwardingTableLookup(benchmark::State& state) {
  ForwardingTable table = ForwardingTable::OneHopOnly();
  std::uint16_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Lookup(static_cast<PortNum>(addr % 13), ShortAddress(addr)));
    ++addr;
  }
}
BENCHMARK(BM_ForwardingTableLookup);

void BM_BuildForwardingTable(benchmark::State& state) {
  TopoSpec spec = MakeTorus(4, 8, 1);
  NetTopology topo = spec.ExpectedTopology();
  AssignSwitchNumbers(&topo);
  SpanningTree tree = ComputeSpanningTree(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildForwardingTable(topo, tree, 0));
  }
}
BENCHMARK(BM_BuildForwardingTable);

void BM_SpanningTree30Switches(benchmark::State& state) {
  TopoSpec spec = MakeSrcLan(0);
  NetTopology topo = spec.ExpectedTopology();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSpanningTree(topo));
  }
}
BENCHMARK(BM_SpanningTree30Switches);

void BM_NetworkBootConvergence(benchmark::State& state) {
  // Simulated seconds of a 12-switch network boot, per wall iteration.
  for (auto _ : state) {
    Network net(MakeTorus(3, 4, 1));
    net.Boot();
    bool ok = net.WaitForConsistency(5 * 60 * kSecond);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_NetworkBootConvergence)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace autonet

BENCHMARK_MAIN();
