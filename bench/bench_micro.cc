// Wall-clock microbenchmarks (google-benchmark) for the simulation
// substrate itself: event queue throughput, FIFO operations, forwarding
// table lookups, route computation, and end-to-end simulated-seconds per
// wall-second for a mid-size network.  These guard the *simulator's*
// performance — the paper-facing measurements live in the other bench
// binaries.
//
// Besides the google-benchmark tables, the binary always runs four fixed
// workloads — raw event dispatch throughput, schedule/cancel churn, and a
// multi-hop traffic stream with the flight recorder disarmed and armed —
// and writes them to BENCH_SIM.json.  That file is the committed perf
// baseline the CI bench-smoke job diffs against (>20% event-throughput
// regression fails the build; >5% armed-vs-disarmed flight overhead too).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/fabric/forwarding_table.h"
#include "src/workload/engine.h"
#include "src/fabric/port_fifo.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  Simulator sim;
  std::uint64_t count = 0;
  for (auto _ : state) {
    sim.ScheduleAfter(10, [&count] { ++count; });
    sim.Step();
  }
  benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_SimulatorScheduleDispatch);

void BM_SimulatorPendingHeap(benchmark::State& state) {
  // Scheduling into a deep queue (the switch-fabric steady state).
  Simulator sim;
  for (int i = 0; i < 10000; ++i) {
    sim.ScheduleAfter(1000000 + i, [] {});
  }
  for (auto _ : state) {
    auto id = sim.ScheduleAfter(500, [] {});
    sim.Cancel(id);
  }
}
BENCHMARK(BM_SimulatorPendingHeap);

void BM_PortFifoPushPop(benchmark::State& state) {
  PortFifo fifo(4096);
  Packet p;
  p.payload.assign(64, 0);
  PacketRef pkt = MakePacket(std::move(p));
  for (auto _ : state) {
    fifo.PushBegin(pkt);
    for (int i = 0; i < 64; ++i) {
      fifo.PushByte();
    }
    fifo.PushEnd(EndFlags{});
    while (fifo.PopByte().has_value()) {
    }
    fifo.TryPopEnd();
  }
}
BENCHMARK(BM_PortFifoPushPop);

void BM_ForwardingTableLookup(benchmark::State& state) {
  ForwardingTable table = ForwardingTable::OneHopOnly();
  std::uint16_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Lookup(static_cast<PortNum>(addr % 13), ShortAddress(addr)));
    ++addr;
  }
}
BENCHMARK(BM_ForwardingTableLookup);

void BM_BuildForwardingTable(benchmark::State& state) {
  TopoSpec spec = MakeTorus(4, 8, 1);
  NetTopology topo = spec.ExpectedTopology();
  AssignSwitchNumbers(&topo);
  SpanningTree tree = ComputeSpanningTree(topo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildForwardingTable(topo, tree, 0));
  }
}
BENCHMARK(BM_BuildForwardingTable);

void BM_SpanningTree30Switches(benchmark::State& state) {
  TopoSpec spec = MakeSrcLan(0);
  NetTopology topo = spec.ExpectedTopology();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSpanningTree(topo));
  }
}
BENCHMARK(BM_SpanningTree30Switches);

void BM_NetworkBootConvergence(benchmark::State& state) {
  // Simulated seconds of a 12-switch network boot, per wall iteration.
  for (auto _ : state) {
    Network net(MakeTorus(3, 4, 1));
    net.Boot();
    bool ok = net.WaitForConsistency(5 * 60 * kSecond);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_NetworkBootConvergence)->Unit(benchmark::kMillisecond);

// --- BENCH_SIM.json workloads -----------------------------------------
//
// Fixed-size runs timed independently of google-benchmark, so the JSON
// numbers are directly comparable across commits.  Throughput is computed
// from process CPU time, not wall time: these benches run on shared
// machines (CI runners, VMs with steal time) where wall clocks measure the
// neighbours as much as the code, and the >20% CI regression gate needs a
// number that does not move when the host is busy.  Wall time is still
// reported alongside for context.

double WallSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double CpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / 1e9;
}

// Raw engine throughput: 64 self-rescheduling event chains, measuring
// dispatches per wall second with a warm but shallow queue.
void MeasureEventThroughput(bench::JsonReport* report) {
  constexpr int kChains = 64;
  constexpr std::uint64_t kEvents = 4'000'000;
  Simulator sim;
  struct Chain {
    Simulator* sim;
    Tick period;
    std::function<void()> fire;
  };
  std::vector<Chain> chains(kChains);
  for (int i = 0; i < kChains; ++i) {
    Chain& c = chains[i];
    c.sim = &sim;
    c.period = 10 + i;  // staggered periods keep the heap honest
    c.fire = [&c] { c.sim->ScheduleAfter(c.period, [&c] { c.fire(); }); };
    sim.ScheduleAfter(c.period, [&c] { c.fire(); });
  }
  auto t0 = std::chrono::steady_clock::now();
  double c0 = CpuSeconds();
  sim.Run(kEvents);
  double cpu = CpuSeconds() - c0;
  double wall = WallSecondsSince(t0);
  double per_s = static_cast<double>(kEvents) / cpu;
  bench::Row("  event dispatch:   %7.2f M events/s  (%llu events, %.3f cpu-s)",
             per_s / 1e6, static_cast<unsigned long long>(kEvents), cpu);
  report->rows().BeginObject();
  report->rows().Key("workload").String("event_dispatch");
  report->rows().Key("events").UInt(kEvents);
  report->rows().Key("cpu_s").Number(cpu);
  report->rows().Key("wall_s").Number(wall);
  report->rows().Key("events_per_s").Number(per_s);
  report->rows().EndObject();
}

// Schedule/cancel churn: the Autopilot timer pattern (arm, re-arm before
// expiry) that the inverted-cancellation path serves.
void MeasureCancelChurn(bench::JsonReport* report) {
  constexpr std::uint64_t kOps = 4'000'000;
  Simulator sim;
  // A background population so cancelled entries are not always at the top.
  for (int i = 0; i < 4096; ++i) {
    sim.ScheduleAfter(1'000'000'000 + i, [] {});
  }
  auto t0 = std::chrono::steady_clock::now();
  double c0 = CpuSeconds();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    Simulator::EventId id = sim.ScheduleAfter(500, [] {});
    sim.Cancel(id);
  }
  double cpu = CpuSeconds() - c0;
  double wall = WallSecondsSince(t0);
  double per_s = static_cast<double>(kOps) / cpu;
  bench::Row("  schedule+cancel:  %7.2f M pairs/s   (%llu pairs, %.3f cpu-s)",
             per_s / 1e6, static_cast<unsigned long long>(kOps), cpu);
  report->rows().BeginObject();
  report->rows().Key("workload").String("schedule_cancel");
  report->rows().Key("events").UInt(kOps);
  report->rows().Key("cpu_s").Number(cpu);
  report->rows().Key("wall_s").Number(wall);
  report->rows().Key("events_per_s").Number(per_s);
  report->rows().EndObject();
}

// The ISSUE's motivating workload: a stream of 1500-byte packets crossing
// five switch hops on a 6-switch line.  Reports both engine event
// throughput and delivered payload bytes per wall second.  Run twice —
// recorder disarmed (the default) and armed — so the CI gate can bound the
// flight recorder's overhead as a same-run ratio immune to machine speed.
void MeasureMultiHopTraffic(bench::JsonReport* report, bool arm_flight) {
  constexpr int kPackets = 512;
  constexpr std::size_t kBytes = 1500;
  Network net(MakeLine(6, 1));
  if (arm_flight) {
    net.sim().flight().Arm();
  }
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond)) {
    bench::Row("  multi-hop traffic: network failed to boot, skipped");
    return;
  }
  int dst = net.num_hosts() - 1;
  auto t0 = std::chrono::steady_clock::now();
  double c0 = CpuSeconds();
  std::uint64_t ev0 = net.sim().events_processed();
  Tick sim0 = net.sim().now();
  int sent = 0;
  Tick give_up = net.sim().now() + 60 * kSecond;
  while (static_cast<int>(net.inbox(dst).size()) < kPackets &&
         net.sim().now() < give_up) {
    while (sent < kPackets && net.SendData(0, dst, kBytes)) {
      ++sent;
    }
    net.Run(kMillisecond);
  }
  double cpu = CpuSeconds() - c0;
  double wall = WallSecondsSince(t0);
  std::uint64_t events = net.sim().events_processed() - ev0;
  double sim_ms = static_cast<double>(net.sim().now() - sim0) / 1e6;
  std::uint64_t delivered = net.inbox(dst).size() * kBytes;
  double ev_per_s = static_cast<double>(events) / cpu;
  double bytes_per_s = static_cast<double>(delivered) / cpu;
  bench::Row(
      "  multi-hop%s: %7.2f M events/s  %6.2f MB payload/cpu-s  "
      "(%d pkts, %llu events, %.1f sim-ms, %.3f cpu-s)",
      arm_flight ? " (flight)" : "         ", ev_per_s / 1e6,
      bytes_per_s / 1e6, kPackets, static_cast<unsigned long long>(events),
      sim_ms, cpu);
  report->rows().BeginObject();
  report->rows().Key("workload").String(
      arm_flight ? "multihop_traffic_flight" : "multihop_traffic");
  report->rows().Key("packets").Int(kPackets);
  report->rows().Key("events").UInt(events);
  report->rows().Key("cpu_s").Number(cpu);
  report->rows().Key("wall_s").Number(wall);
  report->rows().Key("sim_ms").Number(sim_ms);
  report->rows().Key("events_per_s").Number(ev_per_s);
  report->rows().Key("payload_bytes_per_cpu_s").Number(bytes_per_s);
  report->rows().EndObject();
}

// A closed-loop RPC fleet riding through a cable cut and reconfiguration on
// a 6-switch ring: the workload engine's hot path (delivery hook, tag
// parse, inline reissue) under the event engine, with the SLO accounting
// on.  Guards the engine's per-op cost the same way the other rows guard
// the event queue.
void MeasureRpcReconfigSlo(bench::JsonReport* report) {
  Network net(MakeRing(6, 1));
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond)) {
    bench::Row("  rpc-under-reconfig: network failed to boot, skipped");
    return;
  }
  workload::Spec spec;
  std::string error;
  workload::ParseSpecText("rpc bytes 128 response 32 window 1", &spec,
                          &error);
  workload::WorkloadEngine engine(&net, spec,
                                  workload::SloBudgetConfig{}, /*diameter=*/3);
  auto t0 = std::chrono::steady_clock::now();
  double c0 = CpuSeconds();
  std::uint64_t ev0 = net.sim().events_processed();
  engine.Start();
  net.Run(200 * kMillisecond);
  engine.SetPhase(workload::Phase::kFault);
  net.CutCable(0);
  net.WaitForConsistency(net.sim().now() + 60 * kSecond);
  engine.SetPhase(workload::Phase::kRecovery);
  net.Run(200 * kMillisecond);
  engine.Stop();
  Tick give_up = net.sim().now() + kSecond;
  while (!engine.Drained() && net.sim().now() < give_up) {
    net.Run(10 * kMillisecond);
  }
  workload::SloReport slo = engine.Finalize();
  double cpu = CpuSeconds() - c0;
  double wall = WallSecondsSince(t0);
  std::uint64_t events = net.sim().events_processed() - ev0;
  double ev_per_s = static_cast<double>(events) / cpu;
  bench::Row(
      "  rpc-under-reconfig: %5.2f M events/s  (%llu ops, outage %.1f ms, "
      "p999 %.3f->%.3f ms, %.3f cpu-s)",
      ev_per_s / 1e6, static_cast<unsigned long long>(slo.completed),
      slo.max_outage_ms, slo.steady_latency_ms.Percentile(99.9),
      slo.recovery_latency_ms.Percentile(99.9), cpu);
  report->rows().BeginObject();
  report->rows().Key("workload").String("rpc_reconfig_slo");
  report->rows().Key("events").UInt(events);
  report->rows().Key("cpu_s").Number(cpu);
  report->rows().Key("wall_s").Number(wall);
  report->rows().Key("events_per_s").Number(ev_per_s);
  report->rows().Key("ops").UInt(slo.completed);
  report->rows().Key("max_outage_ms").Number(slo.max_outage_ms);
  report->rows().Key("steady_p999_ms")
      .Number(slo.steady_latency_ms.Percentile(99.9));
  report->rows().Key("recovery_p999_ms")
      .Number(slo.recovery_latency_ms.Percentile(99.9));
  report->rows().EndObject();
}

}  // namespace
}  // namespace autonet

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  autonet::bench::Title("SIM", "event-engine throughput baseline");
  autonet::bench::JsonReport report("SIM");
  autonet::MeasureEventThroughput(&report);
  autonet::MeasureCancelChurn(&report);
  autonet::MeasureMultiHopTraffic(&report, /*arm_flight=*/false);
  autonet::MeasureMultiHopTraffic(&report, /*arm_flight=*/true);
  autonet::MeasureRpcReconfigSlo(&report);
  report.Write();
  return 0;
}
