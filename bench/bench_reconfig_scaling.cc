// E2 — How reconfiguration time varies with network size and topology.
//
// Paper (sections 6.6.5, 7): "We do not yet understand fully how
// reconfiguration times vary with network size and topology, but it should
// be a function of the maximum switch-to-switch distance."  We measure the
// reconfiguration wave for growing networks of several shapes and report it
// against switch count and diameter: the series should track the diameter,
// not the raw switch count.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/routing/spanning_tree.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

int Diameter(const NetTopology& topo) {
  int diameter = 0;
  for (int s = 0; s < topo.size(); ++s) {
    std::vector<int> dist(topo.size(), -1);
    std::vector<int> queue{s};
    dist[s] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      int u = queue[head];
      for (const TopoLink& link : topo.switches[u].links) {
        if (dist[link.remote_switch] < 0) {
          dist[link.remote_switch] = dist[u] + 1;
          queue.push_back(link.remote_switch);
        }
      }
    }
    for (int d : dist) {
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

void Measure(bench::JsonReport& report, const char* shape, TopoSpec spec) {
  NetworkConfig config;
  config.autopilot = AutopilotConfig::Tuned();
  config.start_drivers = false;
  int switches = static_cast<int>(spec.switches.size());
  int diameter = Diameter(spec.ExpectedTopology());
  Network net(std::move(spec), config);
  net.Boot();
  if (!net.WaitForConsistency(10 * 60 * kSecond, 200 * kMillisecond)) {
    bench::Row("%-10s %8d %9d  FAILED", shape, switches, diameter);
    return;
  }
  // Measure a triggered reconfiguration (link cut), not cold boot.
  net.CutCable(0);
  if (!net.WaitForConsistency(net.sim().now() + 10 * 60 * kSecond,
                              200 * kMillisecond)) {
    bench::Row("%-10s %8d %9d  FAILED after cut", shape, switches, diameter);
    return;
  }
  bench::Row("%-10s %8d %9d %12.0f ms", shape, switches, diameter,
             bench::Ms(net.LastReconfig().Duration()));
  report.rows().BeginObject();
  report.rows().Key("shape").String(shape);
  report.rows().Key("switches").Int(switches);
  report.rows().Key("diameter").Int(diameter);
  report.rows()
      .Key("reconfig_ms")
      .Number(bench::Ms(net.LastReconfig().Duration()));
  report.rows().EndObject();
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E2", "reconfiguration time vs size and diameter (sec 6.6.5)");
  bench::Row("%-10s %8s %9s %15s", "topology", "switches", "diameter",
             "reconfig time");
  bench::JsonReport report("E2");
  for (int n : {4, 8, 16, 24, 32}) {
    Measure(report, "line", MakeLine(n, 0));
  }
  for (int n : {4, 8, 16, 24, 32}) {
    Measure(report, "ring", MakeRing(n, 0));
  }
  Measure(report, "torus", MakeTorus(2, 2, 0));
  Measure(report, "torus", MakeTorus(2, 4, 0));
  Measure(report, "torus", MakeTorus(4, 4, 0));
  Measure(report, "torus", MakeTorus(4, 6, 0));
  Measure(report, "torus", MakeTorus(4, 8, 0));
  Measure(report, "tree", MakeTree(2, 2, 0));
  Measure(report, "tree", MakeTree(2, 3, 0));
  Measure(report, "tree", MakeTree(2, 4, 0));
  bench::Row("\nshape check: at equal switch counts, the compact torus");
  bench::Row("reconfigures faster than the long line/ring; time grows with");
  bench::Row("the maximum switch-to-switch distance, not the switch count.");
  report.Write();
  return 0;
}
