// E13 — Host alternate-port failover (sections 3.9, 6.8.3).
//
// Paper: "no failure of a single network component will disconnect any
// host"; the driver pings its switch every few seconds, fails over after
// ~3 seconds of silence, forgets its short address and re-registers via the
// alternate port; "the mechanism is sufficient to allow a switch to fail
// without disrupting higher-level protocols".
//
// We run a continuous RPC-style ping between two hosts on the SRC-style
// network, crash the client's primary switch, and measure: the driver's
// failover delay, the re-registration time, and the total end-to-end
// outage window seen by the application traffic.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace {

void RunFailover(bench::JsonReport& report) {
  // Triangle of switches so the fabric stays connected; the subject host is
  // dual-homed on switches 0 and 1; its peer lives on switch 2.
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.Cable(1, 2);
  spec.Cable(2, 0);
  spec.AddHost(0, 1);
  spec.AddHost(2);
  Network net(std::move(spec));
  net.Boot();
  if (!net.WaitForConsistency(5 * 60 * kSecond) ||
      !net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond)) {
    bench::Row("  FAILED to converge");
    return;
  }

  // Application traffic: host 1 pings host 0 every 20 ms (by short address
  // refreshed from the driver each time, as LocalNet would).
  Tick last_delivery = net.sim().now();
  Tick longest_gap = 0;
  auto pump = [&](Tick duration) {
    Tick end = net.sim().now() + duration;
    while (net.sim().now() < end) {
      net.ClearInboxes();
      net.SendData(1, 0, 32);
      net.Run(20 * kMillisecond);
      if (!net.inbox(0).empty() && net.inbox(0)[0].intact()) {
        Tick gap = net.inbox(0)[0].delivered_at - last_delivery;
        longest_gap = std::max(longest_gap, gap);
        last_delivery = net.inbox(0)[0].delivered_at;
      }
    }
  };
  pump(2 * kSecond);

  std::uint64_t failovers_before = net.driver_at(0).stats().failovers;
  Tick crash_at = net.sim().now();
  net.CrashSwitch(0);

  // Watch for the failover and the re-registration.
  Tick failover_at = -1;
  Tick reregistered_at = -1;
  Tick end = net.sim().now() + 60 * kSecond;
  while (net.sim().now() < end) {
    net.ClearInboxes();
    net.SendData(1, 0, 32);
    net.Run(20 * kMillisecond);
    if (!net.inbox(0).empty() && net.inbox(0)[0].intact()) {
      Tick gap = net.inbox(0)[0].delivered_at - last_delivery;
      longest_gap = std::max(longest_gap, gap);
      last_delivery = net.inbox(0)[0].delivered_at;
    }
    if (failover_at < 0 &&
        net.driver_at(0).stats().failovers > failovers_before) {
      failover_at = net.sim().now();
    }
    if (failover_at >= 0 && reregistered_at < 0 &&
        net.driver_at(0).HasAddress()) {
      reregistered_at = net.sim().now();
      break;
    }
  }
  // Let traffic stabilize and capture the outage window.
  pump(5 * kSecond);

  bench::Row("  %-34s %8.2f s   (paper: ~3 s of silence)",
             "failure detection + port switch",
             static_cast<double>(failover_at - crash_at) / 1e9);
  bench::Row("  %-34s %8.2f s", "re-registration on alternate",
             static_cast<double>(reregistered_at - crash_at) / 1e9);
  bench::Row("  %-34s %8.2f s   (higher-level protocols survive)",
             "application outage window",
             static_cast<double>(longest_gap) / 1e9);
  bench::Row("  %-34s %8llu", "driver failovers",
             static_cast<unsigned long long>(
                 net.driver_at(0).stats().failovers - failovers_before));
  report.rows().BeginObject();
  report.rows().Key("case").String("switch_crash_failover");
  report.rows()
      .Key("failover_s")
      .Number(static_cast<double>(failover_at - crash_at) / 1e9);
  report.rows()
      .Key("reregistration_s")
      .Number(static_cast<double>(reregistered_at - crash_at) / 1e9);
  report.rows()
      .Key("outage_s")
      .Number(static_cast<double>(longest_gap) / 1e9);
  report.rows().Key("failovers").UInt(net.driver_at(0).stats().failovers -
                                      failovers_before);
  report.rows().EndObject();
}

void RunBothLinksDead(bench::JsonReport& report) {
  // Neither link works: the driver alternates ports every ~10 s until a
  // switch answers (section 6.8.3).
  TopoSpec spec;
  spec.AddSwitch();
  spec.AddSwitch();
  spec.Cable(0, 1);
  spec.AddHost(0, 1);
  Network net(std::move(spec));
  net.Boot();
  net.WaitForConsistency(5 * 60 * kSecond);
  net.WaitForHostsRegistered(net.sim().now() + 60 * kSecond);

  net.CutHostLink(0, 0);
  net.CutHostLink(0, 1);
  std::uint64_t failovers_before = net.driver_at(0).stats().failovers;
  net.Run(60 * kSecond);
  std::uint64_t alternations =
      net.driver_at(0).stats().failovers - failovers_before;
  bench::Row("  %-34s %8.1f /min  (paper: once every ten seconds)",
             "dead-host link alternation rate",
             static_cast<double>(alternations));

  // Repair one link: the host comes back.
  net.RestoreHostLink(0, 1);
  Tick repair_at = net.sim().now();
  net.WaitForHostsRegistered(repair_at + 60 * kSecond);
  bench::Row("  %-34s %8.2f s", "recovery after link repair",
             static_cast<double>(net.sim().now() - repair_at) / 1e9);
  report.rows().BeginObject();
  report.rows().Key("case").String("both_links_dead");
  report.rows()
      .Key("alternations_per_min")
      .Number(static_cast<double>(alternations));
  report.rows()
      .Key("recovery_s")
      .Number(static_cast<double>(net.sim().now() - repair_at) / 1e9);
  report.rows().EndObject();
}

}  // namespace
}  // namespace autonet

int main() {
  using namespace autonet;
  bench::Title("E13", "host alternate-port failover (sections 3.9, 6.8.3)");
  bench::JsonReport report("E13");
  RunFailover(report);
  RunBothLinksDead(report);
  bench::Row("\nshape check: a single switch failure never disconnects a");
  bench::Row("dual-homed host; detection takes a few seconds (driver timer");
  bench::Row("bound), and with both links dead the driver alternates ports");
  bench::Row("on the paper's ten-second cycle until a switch answers.");
  report.Write();
  return 0;
}
