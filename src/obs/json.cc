#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace autonet {

// --- writer ---

void JsonWriter::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already emitted the comma
  }
  if (!stack_.empty()) {
    if (stack_.back().has_value) {
      out_ += ',';
    }
    stack_.back().has_value = true;
  }
}

void JsonWriter::Escape(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({'o'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({'a'});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!stack_.empty() && stack_.back().has_value) {
    out_ += ',';
  }
  if (!stack_.empty()) {
    stack_.back().has_value = true;
  }
  Escape(name);
  out_ += ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  Escape(value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

// --- parser ---

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    JsonValue v;
    if (!ParseValue(&v)) {
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return std::nullopt;  // trailing garbage
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->b = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->b = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        char e = text_[pos_++];
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // Only the ASCII range is produced by our writer.
            *out += static_cast<char>(code < 0x80 ? code : '?');
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // consume '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // consume '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace autonet
