#include "src/obs/flight.h"

namespace autonet {
namespace obs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSkepticTrip:
      return "skeptic-trip";
    case FlightEventKind::kPortTransition:
      return "port-transition";
    case FlightEventKind::kLinkChange:
      return "link-change";
    case FlightEventKind::kTrigger:
      return "trigger";
    case FlightEventKind::kEpochJoin:
      return "epoch-join";
    case FlightEventKind::kEpochHeld:
      return "epoch-held";
    case FlightEventKind::kEpochRejected:
      return "epoch-rejected";
    case FlightEventKind::kPositionChange:
      return "position-change";
    case FlightEventKind::kReportSend:
      return "report-send";
    case FlightEventKind::kReportRecv:
      return "report-recv";
    case FlightEventKind::kTermination:
      return "termination";
    case FlightEventKind::kConfigRecv:
      return "config-recv";
    case FlightEventKind::kConfigCompute:
      return "config-compute";
    case FlightEventKind::kRouteInstall:
      return "route-install";
    case FlightEventKind::kEpochResync:
      return "epoch-resync";
    case FlightEventKind::kAdversary:
      return "adversary";
  }
  return "unknown";
}

std::vector<FlightEvent> FlightRing::Chronological() const {
  std::vector<FlightEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = head_; i < events_.size(); ++i) {
    out.push_back(events_[i]);
  }
  for (std::size_t i = 0; i < head_; ++i) {
    out.push_back(events_[i]);
  }
  return out;
}

void FlightRecorder::Arm(std::size_t ring_capacity) {
  armed_ = true;
  ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  for (auto& [name, ring] : rings_) {
    ring->Reset(ring_capacity_);
  }
}

FlightRing* FlightRecorder::Ring(const std::string& node, Uid uid) {
  auto it = rings_.find(node);
  if (it != rings_.end()) {
    return it->second.get();
  }
  auto ring = std::unique_ptr<FlightRing>(
      new FlightRing(node, uid, &armed_, ring_capacity_));
  FlightRing* raw = ring.get();
  rings_.emplace(node, std::move(ring));
  return raw;
}

const FlightRing* FlightRecorder::Find(const std::string& node) const {
  auto it = rings_.find(node);
  return it == rings_.end() ? nullptr : it->second.get();
}

}  // namespace obs
}  // namespace autonet
