// The reconfiguration flight recorder: a bounded per-switch ring buffer of
// causally-tagged control-plane events (skeptic trips, port state
// transitions, epoch adoption with the triggering message's origin,
// topology-report traffic, route installs), stamped with sim time.
//
// The recorder is DISARMED by default and recording is a single predicted
// branch per call site, so instrumented components can record
// unconditionally without perturbing timing, the event log, or the metric
// registry — the determinism goldens and chaos fingerprints are unchanged
// whether a recorder is armed or not, because recording only writes to the
// recorder's own storage.
//
// Each switch owns one ring (keyed by node name, shared by the Autopilot,
// its ReconfigEngine, and the fabric Switch).  Rings are fixed-capacity and
// wrap: `total` counts every event offered, `depth` what is retained, and
// `truncated = total - depth` what the wrap discarded — the accounting the
// SRP GetStats reply and netmon surface.
//
// The post-mortem reconstructor (src/obs/postmortem.h) stitches the rings
// into a network-wide per-epoch timeline.
#ifndef SRC_OBS_FLIGHT_H_
#define SRC_OBS_FLIGHT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace autonet {
namespace obs {

enum class FlightEventKind : std::uint8_t {
  kSkepticTrip = 0,     // a skeptic was penalized; a=skeptic (0 status,
                        // 1 connectivity), b=holddown level after
  kPortTransition,      // port state machine moved; from/to are state names
  kLinkChange,          // usable-link-set change seen by the engine; a=up
  kTrigger,             // local reconfiguration trigger; epoch=new epoch
  kEpochJoin,           // epoch adopted; origin=sender uid (nil: local),
                        // port=inport (-1: local trigger)
  kEpochHeld,           // implausible forward jump held for confirmation
  kEpochRejected,       // forward jump beyond kMaxEpochJump dropped
  kPositionChange,      // tree position improved; a=level, origin=root uid
  kReportSend,          // stable: subtree report sent to parent; a=#records
  kReportRecv,          // topology report received; a=#records
  kTermination,         // root detected termination; a=#switches
  kConfigRecv,          // configuration received from parent
  kConfigCompute,       // route computation queued on the CP
  kRouteInstall,        // forwarding table loaded; a=1 full config, 0 one-hop
  kEpochResync,         // epoch register concluded corrupt; rejoined just
                        // above the neighbors' epoch
  kAdversary,           // an adversary move against this switch; detail
                        // names the strategy (src/adversary/)
};

// Short stable name ("epoch-join", "route-install", ...) for rendering.
const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  Tick time = 0;
  std::uint64_t epoch = 0;
  Uid origin;           // causal tag: message sender / neighbor uid
  std::uint64_t a = 0;  // kind-specific, see FlightEventKind
  std::uint64_t b = 0;
  std::int16_t port = -1;
  FlightEventKind kind = FlightEventKind::kTrigger;
  // Static-lifetime strings only (trigger reasons, port state names): a
  // record never allocates.
  const char* detail = "";
  const char* from = "";
  const char* to = "";
};

class FlightRecorder;

// One switch's ring.  Components keep the handle returned by
// FlightRecorder::Ring and call Record unconditionally; a disarmed
// recorder makes Record a load and a branch.
class FlightRing {
 public:
  void Record(const FlightEvent& e) {
    if (!*armed_) {
      return;
    }
    if (events_.size() < capacity_) {
      events_.push_back(e);
    } else {
      events_[head_] = e;
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    }
    ++total_;
  }

  // True while the owning recorder is armed; call sites that assemble a
  // multi-field event can skip the work entirely when disarmed.
  bool armed() const { return *armed_; }

  const std::string& node() const { return node_; }
  Uid uid() const { return uid_; }
  // Events currently retained / ever offered / discarded by ring wrap.
  std::size_t depth() const { return events_.size(); }
  std::uint64_t total() const { return total_; }
  std::uint64_t truncated() const { return total_ - events_.size(); }

  // Retained events, oldest first (unwraps the ring).
  std::vector<FlightEvent> Chronological() const;

  // The newest retained event, or nullptr when empty — the cheap ring-tail
  // peek for live consumers (the chaos adversary polls this every few
  // milliseconds; Chronological() copies the whole ring).
  const FlightEvent* Last() const {
    if (events_.empty()) {
      return nullptr;
    }
    std::size_t newest = events_.size() < capacity_
                             ? events_.size() - 1
                             : (head_ == 0 ? capacity_ - 1 : head_ - 1);
    return &events_[newest];
  }

 private:
  friend class FlightRecorder;
  FlightRing(std::string node, Uid uid, const bool* armed,
             std::size_t capacity)
      : node_(std::move(node)), uid_(uid), armed_(armed),
        capacity_(capacity) {}

  void Reset(std::size_t capacity) {
    events_.clear();
    head_ = 0;
    total_ = 0;
    capacity_ = capacity;
  }

  std::string node_;
  Uid uid_;
  const bool* armed_;  // the owning recorder's armed flag
  std::size_t capacity_;
  std::size_t head_ = 0;       // oldest retained event once wrapped
  std::uint64_t total_ = 0;
  std::vector<FlightEvent> events_;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  // Arms recording and resets every ring to `ring_capacity`.  Disarm stops
  // recording but keeps the rings for post-mortem reading.
  void Arm(std::size_t ring_capacity = kDefaultRingCapacity);
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  // Create-or-get the ring for a node (never null; the recorder owns it,
  // and it outlives component restarts so a rebooted switch keeps its
  // history).
  FlightRing* Ring(const std::string& node, Uid uid);
  const FlightRing* Find(const std::string& node) const;

  // Visits rings in node-name order (deterministic).
  template <typename Fn>
  void Visit(Fn&& fn) const {
    for (const auto& [name, ring] : rings_) {
      fn(*ring);
    }
  }

  std::size_t ring_count() const { return rings_.size(); }

 private:
  bool armed_ = false;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  // std::map: stable handle addresses and deterministic iteration order.
  std::map<std::string, std::unique_ptr<FlightRing>> rings_;
};

}  // namespace obs
}  // namespace autonet

#endif  // SRC_OBS_FLIGHT_H_
