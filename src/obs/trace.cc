#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"

namespace autonet {
namespace obs {

TraceRecorder::SpanId TraceRecorder::BeginSpan(const std::string& track,
                                               std::string name, Tick now) {
  if (!enabled_ || spans_.size() >= capacity_) {
    if (enabled_) {
      ++dropped_;
    }
    return 0;
  }
  TrackId(track);
  SpanId id = next_id_++;
  open_.emplace(id, spans_.size());
  spans_.push_back(Span{track, std::move(name), now, -1, false});
  return id;
}

void TraceRecorder::EndSpan(SpanId id, Tick now) {
  auto it = open_.find(id);
  if (it == open_.end()) {
    return;
  }
  spans_[it->second].end = now;
  open_.erase(it);
}

void TraceRecorder::Instant(const std::string& track, std::string name,
                            Tick now) {
  if (!enabled_ || spans_.size() >= capacity_) {
    if (enabled_) {
      ++dropped_;
    }
    return;
  }
  TrackId(track);
  spans_.push_back(Span{track, std::move(name), now, now, true});
}

void TraceRecorder::Clear() {
  spans_.clear();
  open_.clear();
  track_ids_.clear();
  dropped_ = 0;
}

int TraceRecorder::TrackId(const std::string& track) {
  auto it = track_ids_.find(track);
  if (it != track_ids_.end()) {
    return it->second;
  }
  int id = static_cast<int>(track_ids_.size()) + 1;
  track_ids_.emplace(track, id);
  return id;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();

  // Thread-name metadata: one Perfetto track per recorder track.
  for (const auto& [track, tid] : track_ids_) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("thread_name");
    w.Key("pid").Int(1);
    w.Key("tid").Int(tid);
    w.Key("args").BeginObject().Key("name").String(track).EndObject();
    w.EndObject();
  }

  // Emit spans sorted by (begin, -duration) so complete events with equal
  // start times nest outer-first in viewers.
  std::vector<const Span*> order;
  order.reserve(spans_.size());
  for (const Span& s : spans_) {
    order.push_back(&s);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Span* a, const Span* b) {
                     if (a->begin != b->begin) {
                       return a->begin < b->begin;
                     }
                     return (a->end - a->begin) > (b->end - b->begin);
                   });

  for (const Span* s : order) {
    auto tid = track_ids_.find(s->track);
    w.BeginObject();
    w.Key("name").String(s->name);
    w.Key("pid").Int(1);
    w.Key("tid").Int(tid == track_ids_.end() ? 0 : tid->second);
    w.Key("ts").Number(static_cast<double>(s->begin) / 1000.0);
    if (s->instant) {
      w.Key("ph").String("i");
      w.Key("s").String("t");  // thread-scoped instant
    } else if (s->open()) {
      w.Key("ph").String("B");
    } else {
      w.Key("ph").String("X");
      w.Key("dur").Number(static_cast<double>(s->end - s->begin) / 1000.0);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool TraceRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string json = ToChromeTraceJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace obs
}  // namespace autonet
