#include "src/obs/metrics.h"

#include "src/obs/json.h"

namespace autonet {
namespace obs {

MetricRegistry::Entry* MetricRegistry::GetOrCreate(const std::string& name,
                                                   MetricKind kind) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second->kind == kind ? it->second.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  Entry* raw = entry.get();
  entries_.emplace(name, std::move(entry));
  return raw;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  Entry* e = GetOrCreate(name, MetricKind::kCounter);
  return e == nullptr ? nullptr : &e->counter;
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  Entry* e = GetOrCreate(name, MetricKind::kGauge);
  return e == nullptr ? nullptr : &e->gauge;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  Entry* e = GetOrCreate(name, MetricKind::kHistogram);
  return e == nullptr ? nullptr : &e->histogram;
}

const MetricRegistry::Entry* MetricRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

void MetricRegistry::Visit(
    const std::string& prefix,
    const std::function<void(const Entry&)>& fn) const {
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    fn(*it->second);
  }
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  for (const auto& [name, entry] : other.entries_) {
    Entry* mine = GetOrCreate(name, entry->kind);
    if (mine == nullptr) {
      continue;  // kind mismatch: skip rather than silently alias
    }
    switch (entry->kind) {
      case MetricKind::kCounter:
        mine->counter.Increment(entry->counter.value());
        break;
      case MetricKind::kGauge:
        mine->gauge.SetMax(entry->gauge.value());
        break;
      case MetricKind::kHistogram:
        mine->histogram.Merge(entry->histogram);
        break;
    }
  }
}

std::string MetricRegistry::SnapshotJson(const std::string& prefix) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  Visit(prefix, [&](const Entry& e) {
    if (e.kind == MetricKind::kCounter) {
      w.Key(e.name).UInt(e.counter.value());
    }
  });
  w.EndObject();
  w.Key("gauges").BeginObject();
  Visit(prefix, [&](const Entry& e) {
    if (e.kind == MetricKind::kGauge) {
      w.Key(e.name).Number(e.gauge.value());
    }
  });
  w.EndObject();
  w.Key("histograms").BeginObject();
  Visit(prefix, [&](const Entry& e) {
    if (e.kind != MetricKind::kHistogram) {
      return;
    }
    w.Key(e.name).BeginObject();
    w.Key("count").UInt(e.histogram.count());
    w.Key("min").Number(e.histogram.Min());
    w.Key("max").Number(e.histogram.Max());
    w.Key("mean").Number(e.histogram.Mean());
    w.Key("sum").Number(e.histogram.Sum());
    w.Key("p50").Number(e.histogram.Percentile(50));
    w.Key("p99").Number(e.histogram.Percentile(99));
    w.EndObject();
  });
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace obs
}  // namespace autonet
