// The metric registry: named Counter/Gauge/Histogram instruments under
// hierarchical dot-separated names (`switch.<name>.fabric.fifo_hwm_bytes`,
// `autopilot.reconfig.epoch_ms`).  Components register instruments once at
// construction and keep the returned handle; updating through a handle is a
// plain field update, cheap enough for per-packet paths in the simulator.
//
// One registry serves a whole simulation (it hangs off the Simulator), so a
// snapshot is network-wide; per-node subsets are selected by name prefix —
// that is what the SRP GetStats query serves remotely.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/histogram.h"

namespace autonet {
namespace obs {

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written level (FIFO occupancy, queue depth, epoch number).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  // High-water-mark update: keeps the largest value ever set.
  void SetMax(double v) { value_ = std::max(value_, v); }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricRegistry {
 public:
  struct Entry {
    std::string name;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  // Registration and lookup: the first call under a name creates the
  // instrument; later calls return the same handle.  A name registered
  // under a different kind returns nullptr (the caller's bug; surfaced in
  // tests rather than silently aliased).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  const Entry* Find(const std::string& name) const;
  std::size_t size() const { return entries_.size(); }

  // Visits entries whose name starts with `prefix` in lexicographic order.
  void Visit(const std::string& prefix,
             const std::function<void(const Entry&)>& fn) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, min,
  // max, mean, sum, p50, p99}}}, restricted to names under `prefix`.
  std::string SnapshotJson(const std::string& prefix = "") const;

  // Folds another registry's instruments into this one by name: counters
  // add, gauges keep the maximum observed level (high-water semantics — the
  // only aggregation that is meaningful across independent runs), and
  // histograms merge sample-exactly.  Same-name entries of a different kind
  // are skipped (the mismatch is the caller's bug, as in GetCounter).  This
  // is how the campaign runner folds per-worker snapshot registries into
  // one campaign-wide view after the workers join.
  void MergeFrom(const MetricRegistry& other);

 private:
  Entry* GetOrCreate(const std::string& name, MetricKind kind);

  // std::map: stable handle addresses and deterministic iteration order.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace obs
}  // namespace autonet

#endif  // SRC_OBS_METRICS_H_
