// Post-mortem reconstruction of reconfiguration runs from the flight
// recorder (src/obs/flight.h): stitches the per-switch rings into a
// network-wide timeline, one entry per epoch, each carrying
//
//   * a blame chain — the root-cause link or skeptic event on the
//     triggering switch, the trigger itself, and the epoch wavefront
//     (every switch's join, hop by hop, with the neighbor that carried
//     the epoch to it);
//   * a phase breakdown — how long the epoch spent in monitoring
//     hold-down, tree construction (the join wavefront), topology-report
//     fan-in, route computation, and route installation;
//   * the full time-sorted event list across all switches.
//
// The reconstruction is read-only over the recorder and deterministic:
// events are ordered by (time, node name, ring position).  Renderers
// produce a human text report and a Perfetto-compatible Chrome trace
// (reusing TraceRecorder's exporter), and the chaos runner attaches the
// per-epoch summaries to failed-oracle entries.
#ifndef SRC_OBS_POSTMORTEM_H_
#define SRC_OBS_POSTMORTEM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/obs/flight.h"

namespace autonet {
namespace obs {

// A flight event paired with the switch whose ring recorded it.
struct PostMortemEvent {
  std::string node;
  Uid node_uid;
  FlightEvent ev;
};

// One hop of the epoch wavefront: `node` joined the epoch at `time`,
// carried there by a message from `from` (empty for the local trigger)
// arriving on `port`.
struct WavefrontHop {
  Tick time = 0;
  std::string node;
  std::string from;
  std::int16_t port = -1;
};

// Durations of the convergence phases of one epoch, in ns of sim time.
// -1 marks a phase whose boundary events were never recorded (the epoch
// was superseded before reaching it, or the cause predates the rings).
struct PhaseBreakdown {
  Tick monitor = -1;  // root-cause fault -> trigger (skeptic hold-down)
  Tick tree = -1;     // first join -> last join (the wavefront)
  Tick fanin = -1;    // last join -> root termination (report fan-in)
  Tick compute = -1;  // termination -> last route computation queued
  Tick install = -1;  // -> last forwarding-table load of the epoch
  Tick total = 0;     // first event -> last event of the epoch
};

// Everything reconstructed about one epoch.
struct EpochTimeline {
  std::uint64_t epoch = 0;
  Tick begin = 0;  // first event attributed to the epoch
  Tick end = 0;    // last event

  // Blame chain, root cause first.
  std::string trigger_node;           // switch whose trigger started the epoch
  std::string trigger_reason;
  Tick trigger_time = -1;
  std::optional<PostMortemEvent> root_cause;   // link change behind the trigger
  std::optional<PostMortemEvent> first_skeptic;  // hold-down that gated it

  std::vector<WavefrontHop> wavefront;  // kEpochJoin events, time-sorted
  PhaseBreakdown phases;
  Tick termination_time = -1;  // root termination, -1 if never reached
  std::size_t switches_joined = 0;
  std::size_t route_installs = 0;

  std::vector<PostMortemEvent> events;  // every event, time-sorted

  // One-line blame chain, e.g.
  // "link down at s2 port 3 (cable cut) -> s2 skeptic level 2 ->
  //  s2 trigger 'port down' -> 5 switches in 3.2ms".
  std::string BlameChain() const;
};

// The reconstruction.  Build once from a (typically disarmed) recorder
// after the run of interest; the result owns copies of everything.
class PostMortem {
 public:
  static PostMortem Build(const FlightRecorder& recorder);

  const std::vector<EpochTimeline>& epochs() const { return epochs_; }
  // The timeline for one epoch, or nullptr.
  const EpochTimeline* FindEpoch(std::uint64_t epoch) const;

  // Human report: per-epoch blame chain, wavefront, and phase breakdown.
  // With `with_events` every reconstructed event is listed.
  std::string RenderText(bool with_events = false) const;
  std::string RenderEpochText(const EpochTimeline& tl,
                              bool with_events = false) const;

  // Chrome trace-event JSON (loads in Perfetto): one track per switch
  // with an instant per flight event, plus a "reconfig" track carrying
  // epoch spans subdivided into phase spans.
  std::string ToChromeTraceJson() const;

 private:
  std::vector<EpochTimeline> epochs_;
};

// "12.345ms" / "870ns" — sim-time duration for reports.
std::string FormatDurationNs(Tick ns);

}  // namespace obs
}  // namespace autonet

#endif  // SRC_OBS_POSTMORTEM_H_
