#include "src/obs/postmortem.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "src/obs/trace.h"

namespace autonet {
namespace obs {

namespace {

std::string FormatTimeNs(Tick ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

bool IsPrecursorKind(FlightEventKind kind) {
  return kind == FlightEventKind::kLinkChange ||
         kind == FlightEventKind::kSkepticTrip;
}

}  // namespace

std::string FormatDurationNs(Tick ns) {
  if (ns < 0) {
    return "n/a";
  }
  char buf[64];
  if (ns < 10 * kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 10 * kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1fus",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms",
                  static_cast<double>(ns) / 1e6);
  }
  return buf;
}

std::string EpochTimeline::BlameChain() const {
  std::string out;
  if (root_cause.has_value()) {
    const FlightEvent& rc = root_cause->ev;
    out += "link ";
    out += rc.a != 0 ? "up" : "down";
    out += " at " + root_cause->node + " port " + std::to_string(rc.port);
    if (rc.detail[0] != '\0') {
      out += std::string(" (") + rc.detail + ")";
    }
    out += " " + FormatTimeNs(rc.time);
  }
  if (first_skeptic.has_value()) {
    const FlightEvent& sk = first_skeptic->ev;
    if (!out.empty()) {
      out += " -> ";
    }
    out += first_skeptic->node + " skeptic trip (";
    out += sk.a == 0 ? "status" : "conn";
    out += ", level " + std::to_string(sk.b) + ") " + FormatTimeNs(sk.time);
  }
  if (!trigger_node.empty()) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += trigger_node + " trigger \"" + trigger_reason + "\" " +
           FormatTimeNs(trigger_time);
  }
  if (out.empty()) {
    out = "no trigger recorded";
  }
  if (!wavefront.empty()) {
    out += " -> " + std::to_string(wavefront.size()) + " switch" +
           (wavefront.size() == 1 ? "" : "es") + " joined";
    if (wavefront.size() > 1) {
      out += " within " +
             FormatDurationNs(wavefront.back().time - wavefront.front().time);
    }
  }
  return out;
}

PostMortem PostMortem::Build(const FlightRecorder& recorder) {
  // Per-switch chronological event lists and a uid -> node name map for
  // resolving causal tags.
  struct RingEvents {
    std::string node;
    Uid uid;
    std::vector<FlightEvent> events;
  };
  std::vector<RingEvents> rings;
  std::unordered_map<std::uint64_t, std::string> uid_to_node;
  recorder.Visit([&](const FlightRing& ring) {
    rings.push_back({ring.node(), ring.uid(), ring.Chronological()});
    uid_to_node[ring.uid().value()] = ring.node();
  });

  // Route installs are recorded by the fabric switch, which does not know
  // the reconfiguration epoch: attribute each to the latest epoch join at
  // or before it on the same ring.
  for (RingEvents& r : rings) {
    std::uint64_t current = 0;
    for (FlightEvent& ev : r.events) {
      if (ev.kind == FlightEventKind::kEpochJoin) {
        current = ev.epoch;
      } else if (ev.kind == FlightEventKind::kRouteInstall) {
        ev.epoch = current;
      }
    }
  }

  // Global order: (time, node name, ring position).  Ring position is
  // implied by a stable sort over per-ring chronological lists.
  std::vector<PostMortemEvent> all;
  for (const RingEvents& r : rings) {
    for (const FlightEvent& ev : r.events) {
      all.push_back({r.node, r.uid, ev});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const PostMortemEvent& a, const PostMortemEvent& b) {
                     if (a.ev.time != b.ev.time) {
                       return a.ev.time < b.ev.time;
                     }
                     return a.node < b.node;
                   });

  // Group by epoch.
  std::map<std::uint64_t, EpochTimeline> by_epoch;
  for (const PostMortemEvent& pe : all) {
    EpochTimeline& tl = by_epoch[pe.ev.epoch];
    if (tl.events.empty()) {
      tl.epoch = pe.ev.epoch;
      tl.begin = pe.ev.time;
    }
    tl.end = pe.ev.time;
    tl.events.push_back(pe);
  }

  PostMortem pm;
  for (auto& [epoch, tl] : by_epoch) {
    // Trigger: the earliest kTrigger of the epoch (ties broken by the
    // deterministic global order).
    for (const PostMortemEvent& pe : tl.events) {
      if (pe.ev.kind == FlightEventKind::kTrigger) {
        tl.trigger_node = pe.node;
        tl.trigger_reason = pe.ev.detail;
        tl.trigger_time = pe.ev.time;
        break;
      }
    }

    // Blame chain: on the trigger switch's own ring, the nearest link
    // change and skeptic trip before (or at) the trigger.  These precursor
    // events carry the *previous* epoch's tag, so the scan runs over the
    // ring, not the epoch group.
    if (!tl.trigger_node.empty()) {
      for (const RingEvents& r : rings) {
        if (r.node != tl.trigger_node) {
          continue;
        }
        // Position of this epoch's trigger in the ring.
        std::size_t trig = r.events.size();
        for (std::size_t i = 0; i < r.events.size(); ++i) {
          if (r.events[i].kind == FlightEventKind::kTrigger &&
              r.events[i].epoch == epoch) {
            trig = i;
            break;
          }
        }
        for (std::size_t i = trig; i-- > 0;) {
          const FlightEvent& ev = r.events[i];
          if (!IsPrecursorKind(ev.kind)) {
            continue;
          }
          if (ev.kind == FlightEventKind::kLinkChange &&
              !tl.root_cause.has_value()) {
            tl.root_cause = PostMortemEvent{r.node, r.uid, ev};
          } else if (ev.kind == FlightEventKind::kSkepticTrip &&
                     !tl.first_skeptic.has_value()) {
            tl.first_skeptic = PostMortemEvent{r.node, r.uid, ev};
          }
          if (tl.root_cause.has_value() && tl.first_skeptic.has_value()) {
            break;
          }
        }
        break;
      }
    }

    // Wavefront and phase boundary marks.
    Tick last_compute = -1;
    Tick last_install = -1;
    for (const PostMortemEvent& pe : tl.events) {
      switch (pe.ev.kind) {
        case FlightEventKind::kEpochJoin: {
          WavefrontHop hop;
          hop.time = pe.ev.time;
          hop.node = pe.node;
          hop.port = pe.ev.port;
          if (!pe.ev.origin.IsNil()) {
            auto it = uid_to_node.find(pe.ev.origin.value());
            hop.from = it != uid_to_node.end() ? it->second
                                               : pe.ev.origin.ToString();
          }
          tl.wavefront.push_back(hop);
          break;
        }
        case FlightEventKind::kTermination:
          tl.termination_time = pe.ev.time;
          break;
        case FlightEventKind::kConfigCompute:
        case FlightEventKind::kConfigRecv:
          last_compute = std::max(last_compute, pe.ev.time);
          break;
        case FlightEventKind::kRouteInstall:
          last_install = std::max(last_install, pe.ev.time);
          ++tl.route_installs;
          break;
        default:
          break;
      }
    }
    tl.switches_joined = tl.wavefront.size();

    PhaseBreakdown& ph = tl.phases;
    if (tl.trigger_time >= 0) {
      if (tl.first_skeptic.has_value()) {
        ph.monitor = tl.trigger_time - tl.first_skeptic->ev.time;
      } else if (tl.root_cause.has_value()) {
        ph.monitor = tl.trigger_time - tl.root_cause->ev.time;
      }
    }
    if (!tl.wavefront.empty()) {
      ph.tree = tl.wavefront.back().time - tl.wavefront.front().time;
      if (tl.termination_time >= 0) {
        ph.fanin = tl.termination_time - tl.wavefront.back().time;
      }
    }
    if (tl.termination_time >= 0 && last_compute >= tl.termination_time) {
      ph.compute = last_compute - tl.termination_time;
    }
    if (last_install >= 0 && last_compute >= 0 &&
        last_install >= last_compute) {
      ph.install = last_install - last_compute;
    }
    ph.total = tl.end - tl.begin;

    pm.epochs_.push_back(std::move(tl));
  }
  return pm;
}

const EpochTimeline* PostMortem::FindEpoch(std::uint64_t epoch) const {
  for (const EpochTimeline& tl : epochs_) {
    if (tl.epoch == epoch) {
      return &tl;
    }
  }
  return nullptr;
}

std::string PostMortem::RenderEpochText(const EpochTimeline& tl,
                                        bool with_events) const {
  std::string out;
  out += "=== epoch " + std::to_string(tl.epoch) + ": " +
         std::to_string(tl.switches_joined) + " switch" +
         (tl.switches_joined == 1 ? "" : "es") + " joined, " +
         std::to_string(tl.events.size()) + " events, span " +
         FormatDurationNs(tl.phases.total) + " ===\n";
  out += "  blame   : " + tl.BlameChain() + "\n";
  if (!tl.wavefront.empty()) {
    out += "  wavefront:\n";
    for (const WavefrontHop& hop : tl.wavefront) {
      out += "    " + FormatTimeNs(hop.time) + "  " + hop.node;
      if (hop.from.empty()) {
        out += "  (local trigger)";
      } else {
        out += "  <- " + hop.from + " (port " + std::to_string(hop.port) + ")";
      }
      out += "\n";
    }
  }
  out += "  phases  : monitor " + FormatDurationNs(tl.phases.monitor) +
         " | tree " + FormatDurationNs(tl.phases.tree) + " | fan-in " +
         FormatDurationNs(tl.phases.fanin) + " | compute " +
         FormatDurationNs(tl.phases.compute) + " | install " +
         FormatDurationNs(tl.phases.install) + "\n";
  if (tl.termination_time >= 0) {
    out += "  outcome : root terminated " + FormatTimeNs(tl.termination_time) +
           ", " + std::to_string(tl.route_installs) + " route install" +
           (tl.route_installs == 1 ? "" : "s") + "\n";
  } else {
    out += "  outcome : never terminated (superseded or still converging)\n";
  }
  if (with_events) {
    out += "  events  :\n";
    for (const PostMortemEvent& pe : tl.events) {
      const FlightEvent& ev = pe.ev;
      out += "    " + FormatTimeNs(ev.time) + "  " + pe.node + "  " +
             FlightEventKindName(ev.kind);
      if (ev.port >= 0) {
        out += " port=" + std::to_string(ev.port);
      }
      if (ev.kind == FlightEventKind::kPortTransition) {
        out += std::string(" ") + ev.from + "->" + ev.to;
      }
      if (ev.detail[0] != '\0') {
        out += std::string(" \"") + ev.detail + "\"";
      }
      if (!ev.origin.IsNil()) {
        auto blame = ev.origin.ToString();
        out += " origin=" + blame;
      }
      out += "\n";
    }
  }
  return out;
}

std::string PostMortem::RenderText(bool with_events) const {
  if (epochs_.empty()) {
    return "flight recorder empty (was it armed?)\n";
  }
  std::string out;
  for (const EpochTimeline& tl : epochs_) {
    out += RenderEpochText(tl, with_events);
  }
  return out;
}

std::string PostMortem::ToChromeTraceJson() const {
  TraceRecorder tr(1 << 20);
  for (const EpochTimeline& tl : epochs_) {
    // The monitor phase begins on the previous epoch's ring (the skeptic
    // trip that gated the trigger), so the epoch span is widened to keep
    // the phase spans nested inside it.
    Tick begin = tl.begin;
    Tick monitor_start = -1;
    if (tl.phases.monitor >= 0 && tl.trigger_time >= 0) {
      monitor_start = tl.trigger_time - tl.phases.monitor;
      begin = std::min(begin, monitor_start);
    }
    const std::string epoch_name = "epoch " + std::to_string(tl.epoch);
    TraceRecorder::SpanId outer = tr.BeginSpan("reconfig", epoch_name, begin);
    auto phase = [&](const char* name, Tick from, Tick to) {
      if (from < 0 || to < from) {
        return;
      }
      TraceRecorder::SpanId id =
          tr.BeginSpan("reconfig.phase", std::string(name), from);
      tr.EndSpan(id, to);
    };
    if (monitor_start >= 0) {
      phase("monitor", monitor_start, tl.trigger_time);
    }
    if (!tl.wavefront.empty()) {
      phase("tree", tl.wavefront.front().time, tl.wavefront.back().time);
      if (tl.termination_time >= 0) {
        phase("fan-in", tl.wavefront.back().time, tl.termination_time);
        if (tl.phases.compute >= 0) {
          phase("compute", tl.termination_time,
                tl.termination_time + tl.phases.compute);
          if (tl.phases.install >= 0) {
            phase("install", tl.termination_time + tl.phases.compute,
                  tl.termination_time + tl.phases.compute +
                      tl.phases.install);
          }
        }
      }
    }
    for (const PostMortemEvent& pe : tl.events) {
      std::string name = FlightEventKindName(pe.ev.kind);
      if (pe.ev.detail[0] != '\0') {
        name += std::string(" ") + pe.ev.detail;
      }
      tr.Instant(pe.node + ".flight", std::move(name), pe.ev.time);
    }
    tr.EndSpan(outer, tl.end);
  }
  return tr.ToChromeTraceJson();
}

}  // namespace obs
}  // namespace autonet
