// Minimal JSON support for the telemetry subsystem: a streaming writer with
// automatic comma/escape handling (metric snapshots, Chrome trace events,
// bench result files) and a small recursive-descent parser used by tests and
// tools to validate those artifacts.  Not a general-purpose JSON library —
// numbers are doubles, no \u escapes are produced, and inputs larger than a
// few megabytes are not the target.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace autonet {

// Streaming JSON writer.  Begin/End calls must nest correctly; inside an
// object every value must be preceded by Key().  Commas are inserted
// automatically.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);  // non-finite values serialize as null
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-serialized JSON (e.g. a registry snapshot) in as one value.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  void Escape(std::string_view s);

  std::string out_;
  // One frame per open container: 'o'/'a', plus whether a value has been
  // emitted at this level (comma needed) and, for objects, whether the next
  // value is a key.
  struct Frame {
    char kind;
    bool has_value = false;
  };
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

// Parsed JSON value (numbers are doubles).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Returns nullopt on malformed input (including trailing garbage).
std::optional<JsonValue> ParseJson(std::string_view text);

}  // namespace autonet

#endif  // SRC_OBS_JSON_H_
