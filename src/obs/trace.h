// Sim-time trace span recorder.  Components open named spans on named
// tracks (one track per switch/subsystem, e.g. `s4.reconfig`) and the
// recorder exports Chrome trace-event JSON that loads directly in Perfetto
// or chrome://tracing, rendering a whole reconfiguration wave — trigger,
// epoch join, stability, root termination, config distribution — as a
// per-switch timeline.
//
// Spans must be properly nested per track (inner spans end before outer
// ones), which the reconfiguration phase instrumentation guarantees by
// construction.  The recorder is bounded: past `capacity` spans new Begin
// calls are dropped (and counted), so long benchmark runs cannot grow
// memory without limit.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"

namespace autonet {
namespace obs {

class TraceRecorder {
 public:
  // 0 is the invalid span id; EndSpan(0) is a no-op, so call sites need no
  // branches for the disabled/full cases.
  using SpanId = std::uint64_t;

  struct Span {
    std::string track;
    std::string name;
    Tick begin = 0;
    Tick end = -1;  // -1 while open
    bool instant = false;
    bool open() const { return !instant && end < 0; }
  };

  explicit TraceRecorder(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  SpanId BeginSpan(const std::string& track, std::string name, Tick now);
  void EndSpan(SpanId id, Tick now);
  // A zero-duration marker event.
  void Instant(const std::string& track, std::string name, Tick now);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t open_count() const { return open_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void Clear();

  // Chrome trace-event JSON: {"traceEvents": [...]} with one complete ("X")
  // event per closed span, a begin ("B") event per still-open span, an
  // instant ("i") event per marker, and thread-name metadata naming each
  // track.  Timestamps are microseconds of simulated time.
  std::string ToChromeTraceJson() const;
  bool WriteChromeTraceFile(const std::string& path) const;

 private:
  int TrackId(const std::string& track);

  bool enabled_ = true;
  std::size_t capacity_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
  std::unordered_map<SpanId, std::size_t> open_;  // id -> index in spans_
  std::map<std::string, int> track_ids_;          // deterministic tids
};

}  // namespace obs
}  // namespace autonet

#endif  // SRC_OBS_TRACE_H_
