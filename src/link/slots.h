// Helpers for the global 80 ns slot grid.  Slot i spans [i*80, (i+1)*80) ns;
// every 256th slot (i % 256 == 0) is a flow-control slot, the rest are data
// slots (section 6.1).  All channels share one slot phase — a simplification
// documented in DESIGN.md; the FIFO-sizing worst case depends only on the
// flow-slot *period*, which is preserved.
#ifndef SRC_LINK_SLOTS_H_
#define SRC_LINK_SLOTS_H_

#include "src/common/time.h"

namespace autonet {

constexpr std::int64_t SlotIndex(Tick t) { return t / kSlotNs; }
constexpr Tick SlotStart(std::int64_t index) { return index * kSlotNs; }
constexpr bool IsFlowSlot(std::int64_t index) {
  return index % kFlowSlotPeriod == 0;
}

// Start time of the first flow-control slot at or after t.
constexpr Tick NextFlowSlotAt(Tick t) {
  std::int64_t index = (t + kSlotNs - 1) / kSlotNs;  // first slot start >= t
  std::int64_t rem = index % kFlowSlotPeriod;
  if (rem != 0) {
    index += kFlowSlotPeriod - rem;
  }
  return SlotStart(index);
}

// Start time of the first *data* slot at or after t (skips flow slots).
constexpr Tick NextDataSlotAt(Tick t) {
  std::int64_t index = (t + kSlotNs - 1) / kSlotNs;
  if (IsFlowSlot(index)) {
    ++index;
  }
  return SlotStart(index);
}

// Start time of the first data slot strictly after t.
constexpr Tick NextDataSlotAfter(Tick t) { return NextDataSlotAt(t + 1); }

}  // namespace autonet

#endif  // SRC_LINK_SLOTS_H_
