#include "src/link/link.h"

#include "src/link/slots.h"

namespace autonet {

const char* FlowDirectiveName(FlowDirective d) {
  switch (d) {
    case FlowDirective::kNone:
      return "none";
    case FlowDirective::kStart:
      return "start";
    case FlowDirective::kStop:
      return "stop";
    case FlowDirective::kHost:
      return "host";
    case FlowDirective::kIdhy:
      return "idhy";
    case FlowDirective::kPanic:
      return "panic";
  }
  return "?";
}

Link::Link(Simulator* sim, double length_km, std::uint64_t corruption_seed)
    : sim_(sim),
      length_km_(length_km),
      propagation_delay_(PropagationDelayNs(length_km)),
      corruption_rng_(corruption_seed) {}

void Link::Attach(Side side, LinkEndpoint* endpoint) {
  endpoints_[static_cast<int>(side)] = endpoint;
  NotifyCarrier();
  RedeliverDirectives();
}

void Link::Detach(Side side) {
  endpoints_[static_cast<int>(side)] = nullptr;
  NotifyCarrier();
}

bool Link::DeliveryTarget(Side from, Side* rx_side, Tick* delay) const {
  switch (mode_) {
    case LinkMode::kNormal:
      *rx_side = Other(from);
      *delay = propagation_delay_;
      return true;
    case LinkMode::kCut:
      return false;
    case LinkMode::kReflectA:
      if (from != Side::kA) {
        return false;
      }
      *rx_side = Side::kA;
      *delay = 2 * propagation_delay_;
      return true;
    case LinkMode::kReflectB:
      if (from != Side::kB) {
        return false;
      }
      *rx_side = Side::kB;
      *delay = 2 * propagation_delay_;
      return true;
  }
  return false;
}

bool Link::CarrierAt(Side rx_side) const {
  switch (mode_) {
    case LinkMode::kNormal:
      return EndpointAt(Other(rx_side)) != nullptr;
    case LinkMode::kCut:
      return false;
    case LinkMode::kReflectA:
      return rx_side == Side::kA && EndpointAt(Side::kA) != nullptr;
    case LinkMode::kReflectB:
      return rx_side == Side::kB && EndpointAt(Side::kB) != nullptr;
  }
  return false;
}

void Link::TransmitBegin(Side from, const PacketRef& packet) {
  tx_[static_cast<int>(from)].in_packet = true;
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  PacketRef copy = packet;
  sim_->ScheduleAfter(delay, [ep, copy] { ep->OnPacketBegin(copy); });
}

void Link::TransmitByte(Side from, const PacketRef& packet,
                        std::uint32_t offset) {
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  bool corrupt =
      corruption_rate_ > 0.0 && corruption_rng_.Bernoulli(corruption_rate_);
  PacketRef copy = packet;
  sim_->ScheduleAfter(
      delay, [ep, copy, offset, corrupt] { ep->OnDataByte(copy, offset, corrupt); });
}

void Link::TransmitEnd(Side from, EndFlags flags) {
  tx_[static_cast<int>(from)].in_packet = false;
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  sim_->ScheduleAfter(delay, [ep, flags] { ep->OnPacketEnd(flags); });
}

void Link::SetFlowDirective(Side from, FlowDirective directive) {
  TxState& tx = tx_[static_cast<int>(from)];
  if (tx.directive == directive) {
    return;
  }
  tx.directive = directive;
  tx.directive_since = sim_->now();
  if (directive == FlowDirective::kNone) {
    // Absence of directives generates no event; the receiving side keeps
    // acting on the last directive it received (the design oversight noted
    // in section 6.2) and the status sampler observes the missing slots via
    // MissedDirectiveSlots().
    return;
  }
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  // The change is transmitted in the next flow-control slot.
  Tick when = NextFlowSlotAt(sim_->now()) + delay;
  sim_->ScheduleAt(when, [ep, directive] { ep->OnFlowDirective(directive); });
}

void Link::SetMode(LinkMode mode) {
  if (mode_ == mode) {
    return;
  }
  mode_ = mode;
  NotifyCarrier();
  RedeliverDirectives();
  // Any physical transition glitches the receivers that still hear a
  // carrier (e.g. a cable coming unterminated and starting to reflect).
  for (Side side : {Side::kA, Side::kB}) {
    if (CarrierAt(side)) {
      if (LinkEndpoint* ep = EndpointAt(side)) {
        ep->OnCodeViolation();
      }
    }
  }
}

// Directives are transmitted continuously in the real hardware, so a mode
// change or endpoint attachment makes the (unchanged) latched directive of
// the now-audible transmitter reach the receiver within one flow-slot
// period.
void Link::RedeliverDirectives() {
  for (Side from : {Side::kA, Side::kB}) {
    const TxState& tx = tx_[static_cast<int>(from)];
    if (tx.directive == FlowDirective::kNone) {
      continue;
    }
    Side rx;
    Tick delay;
    if (!DeliveryTarget(from, &rx, &delay)) {
      continue;
    }
    LinkEndpoint* ep = EndpointAt(rx);
    if (ep == nullptr) {
      continue;
    }
    FlowDirective d = tx.directive;
    Tick when = NextFlowSlotAt(sim_->now()) + delay;
    sim_->ScheduleAt(when, [ep, d] { ep->OnFlowDirective(d); });
  }
}

void Link::NotifyCarrier() {
  for (Side side : {Side::kA, Side::kB}) {
    bool carrier = CarrierAt(side);
    bool& last = last_carrier_[static_cast<int>(side)];
    if (carrier != last) {
      last = carrier;
      if (LinkEndpoint* ep = EndpointAt(side)) {
        ep->OnCarrierChange(carrier);
      }
    }
  }
}

std::int64_t Link::MissedDirectiveSlots(Side rx_side, Tick since) const {
  // Who is the effective transmitter heard by rx_side?
  Side tx_side;
  switch (mode_) {
    case LinkMode::kNormal:
      tx_side = Other(rx_side);
      break;
    case LinkMode::kReflectA:
    case LinkMode::kReflectB:
      tx_side = rx_side;
      break;
    case LinkMode::kCut:
      return 0;  // silence, not sync: shows up as BadCode instead
  }
  if (!CarrierAt(rx_side)) {
    return 0;
  }
  const TxState& tx = tx_[static_cast<int>(tx_side)];
  if (tx.directive != FlowDirective::kNone) {
    return 0;
  }
  Tick from = since > tx.directive_since ? since : tx.directive_since;
  Tick period = kFlowSlotPeriod * kSlotNs;
  Tick now = sim_->now();
  if (now <= from) {
    return 0;
  }
  return now / period - from / period;
}

}  // namespace autonet
