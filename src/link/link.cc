#include "src/link/link.h"

#include <utility>

#include "src/link/slots.h"

namespace autonet {

const char* FlowDirectiveName(FlowDirective d) {
  switch (d) {
    case FlowDirective::kNone:
      return "none";
    case FlowDirective::kStart:
      return "start";
    case FlowDirective::kStop:
      return "stop";
    case FlowDirective::kHost:
      return "host";
    case FlowDirective::kIdhy:
      return "idhy";
    case FlowDirective::kPanic:
      return "panic";
  }
  return "?";
}

Link::Link(Simulator* sim, double length_km, std::uint64_t corruption_seed)
    : sim_(sim),
      length_km_(length_km),
      propagation_delay_(PropagationDelayNs(length_km)),
      corruption_rng_(corruption_seed) {}

Link::~Link() {
  // Channel trains and directive deliveries capture `this`.
  for (Channel& ch : channels_) {
    sim_->Cancel(ch.train);
  }
  for (TxState& tx : tx_) {
    sim_->Cancel(tx.pending_directive);
  }
}

void Link::Attach(Side side, LinkEndpoint* endpoint) {
  endpoints_[static_cast<int>(side)] = endpoint;
  NotifyCarrier();
  RedeliverDirectives();
}

void Link::Detach(Side side) {
  endpoints_[static_cast<int>(side)] = nullptr;
  NotifyCarrier();
}

bool Link::CarrierAt(Side rx_side) const {
  switch (mode_) {
    case LinkMode::kNormal:
      return EndpointAt(Other(rx_side)) != nullptr;
    case LinkMode::kCut:
      return false;
    case LinkMode::kReflectA:
      return rx_side == Side::kA && EndpointAt(Side::kA) != nullptr;
    case LinkMode::kReflectB:
      return rx_side == Side::kB && EndpointAt(Side::kB) != nullptr;
  }
  return false;
}

void Link::FlitRing::Grow() {
  std::size_t cap = buf_.empty() ? 256 : buf_.size() * 2;
  std::vector<Flit> bigger(cap);
  std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    bigger[i] = buf_[(head_ + i) & (buf_.size() - 1)];
  }
  buf_ = std::move(bigger);
  head_ = 0;
  tail_ = n;
}

// Out-of-line slow half of PushFlit (see link.h for the hot half): the
// one-shot bypass fallback for out-of-order arrivals, and train start for a
// channel that has no parked train to resume.
void Link::PushFlitBypass(const Flit& flit, const PacketRef& packet) {
  // The train's queue must stay sorted by arrival, and its packet
  // bookkeeping needs begin/byte/end of a packet to take the same path, so
  // the rest of this packet is delivered the old way.
  LinkEndpoint* ep = flit.ep;
  switch (flit.kind) {
    case Flit::Kind::kBegin: {
      PacketRef copy = packet;
      sim_->ScheduleAtReserved(flit.arrive, flit.seq,
                               [ep, copy] { ep->OnPacketBegin(copy); });
      break;
    }
    case Flit::Kind::kByte: {
      PacketRef copy = packet;
      std::uint32_t offset = flit.offset;
      bool corrupt = flit.corrupt;
      sim_->ScheduleAtReserved(flit.arrive, flit.seq,
                               [ep, copy, offset, corrupt] {
                                 ep->OnDataByte(copy, offset, corrupt);
                               });
      break;
    }
    case Flit::Kind::kEnd: {
      EndFlags flags = flit.flags;
      sim_->ScheduleAtReserved(flit.arrive, flit.seq,
                               [ep, flags] { ep->OnPacketEnd(flags); });
      break;
    }
  }
}

void Link::StartDeliveryTrain(Side from, Channel& ch) {
  const Flit& head = ch.inflight.front();
  ch.train = sim_->ScheduleTrainRawAt(
      head.arrive, head.seq,
      [](void* self, std::uint64_t side, std::uint32_t) {
        return static_cast<Link*>(self)->DeliverStep(static_cast<Side>(side));
      },
      this, static_cast<std::uint64_t>(from));
}

// One train firing: deliver the head flit, then re-anchor the train at the
// next flit's reserved (arrive, seq) position — or park it if the channel
// drained.  The flit is popped before its callback runs, so an endpoint
// reacting by transmitting (which appends to some channel) sees consistent
// state.
Simulator::TrainStep Link::DeliverStep(Side from) {
  Channel& ch = channels_[static_cast<int>(from)];
  Flit f = ch.inflight.front();
  ch.inflight.pop_front();
  switch (f.kind) {
    case Flit::Kind::kBegin:
      ch.rx_packet = std::move(ch.begin_packets.front());
      ch.begin_packets.pop_front();
      f.ep->OnPacketBegin(ch.rx_packet);
      break;
    case Flit::Kind::kByte:
      f.ep->OnDataByte(ch.rx_packet, f.offset, f.corrupt);
      break;
    case Flit::Kind::kEnd:
      ch.rx_packet = PacketRef{};
      f.ep->OnPacketEnd(f.flags);
      break;
  }
  if (ch.inflight.empty()) {
    ch.parked = true;  // keep the slot; the next PushFlit resumes it
    return Simulator::TrainStep::Park();
  }
  return Simulator::TrainStep::At(ch.inflight.front().arrive,
                                  ch.inflight.front().seq);
}

void Link::TransmitBegin(Side from, const PacketRef& packet) {
  tx_[static_cast<int>(from)].in_packet = true;
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  Flit flit{};
  flit.arrive = sim_->now() + delay;
  flit.seq = sim_->ReserveSeq();
  flit.ep = ep;
  flit.kind = Flit::Kind::kBegin;
  PushFlit(from, flit, packet);
}

void Link::TransmitEnd(Side from, EndFlags flags) {
  tx_[static_cast<int>(from)].in_packet = false;
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  Flit flit{};
  flit.arrive = sim_->now() + delay;
  flit.seq = sim_->ReserveSeq();
  flit.ep = ep;
  flit.kind = Flit::Kind::kEnd;
  flit.flags = flags;
  PushFlit(from, flit, PacketRef{});
}

// Out-of-line slow half of SetFlowDirective: the inline wrapper has already
// established that `directive` differs from the latched value.
void Link::SetFlowDirectiveChanged(Side from, FlowDirective directive) {
  TxState& tx = tx_[static_cast<int>(from)];
  tx.directive = directive;
  tx.directive_since = sim_->now();
  // A change that is still waiting for its flow slot is superseded: the
  // wire only ever carries the latest latched value, so delivering the
  // older one too would double-deliver (and could re-order).
  if (tx.pending_directive.valid()) {
    sim_->Cancel(tx.pending_directive);
    tx.pending_directive = Simulator::EventId{};
  }
  if (directive == FlowDirective::kNone) {
    // Absence of directives generates no event; the receiving side keeps
    // acting on the last directive it received (the design oversight noted
    // in section 6.2) and the status sampler observes the missing slots via
    // MissedDirectiveSlots().
    return;
  }
  ScheduleDirective(from, directive);
}

// Schedules delivery of `directive` in the next flow-control slot, replacing
// any still-undelivered previous scheduling for this side.
void Link::ScheduleDirective(Side from, FlowDirective directive) {
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  TxState& tx = tx_[static_cast<int>(from)];
  if (tx.pending_directive.valid()) {
    sim_->Cancel(tx.pending_directive);
  }
  // The change is transmitted in the next flow-control slot.
  Tick when = NextFlowSlotAt(sim_->now()) + delay;
  tx.pending_directive =
      sim_->ScheduleAt(when, [this, from, ep, directive] {
        tx_[static_cast<int>(from)].pending_directive = Simulator::EventId{};
        ep->OnFlowDirective(directive);
      });
}

void Link::SetMode(LinkMode mode) {
  if (mode_ == mode) {
    return;
  }
  mode_ = mode;
  NotifyCarrier();
  RedeliverDirectives();
  // Any physical transition glitches the receivers that still hear a
  // carrier (e.g. a cable coming unterminated and starting to reflect).
  for (Side side : {Side::kA, Side::kB}) {
    if (CarrierAt(side)) {
      if (LinkEndpoint* ep = EndpointAt(side)) {
        ep->OnCodeViolation();
      }
    }
  }
}

// Directives are transmitted continuously in the real hardware, so a mode
// change or endpoint attachment makes the (unchanged) latched directive of
// the now-audible transmitter reach the receiver within one flow-slot
// period.  ScheduleDirective cancels any still-pending delivery for the
// side, so a redelivery racing an in-flight change cannot double-deliver.
void Link::RedeliverDirectives() {
  for (Side from : {Side::kA, Side::kB}) {
    const TxState& tx = tx_[static_cast<int>(from)];
    if (tx.directive == FlowDirective::kNone) {
      continue;
    }
    ScheduleDirective(from, tx.directive);
  }
}

void Link::NotifyCarrier() {
  for (Side side : {Side::kA, Side::kB}) {
    bool carrier = CarrierAt(side);
    bool& last = last_carrier_[static_cast<int>(side)];
    if (carrier != last) {
      last = carrier;
      if (LinkEndpoint* ep = EndpointAt(side)) {
        ep->OnCarrierChange(carrier);
      }
    }
  }
}

std::int64_t Link::MissedDirectiveSlots(Side rx_side, Tick since) const {
  // Who is the effective transmitter heard by rx_side?
  Side tx_side;
  switch (mode_) {
    case LinkMode::kNormal:
      tx_side = Other(rx_side);
      break;
    case LinkMode::kReflectA:
    case LinkMode::kReflectB:
      tx_side = rx_side;
      break;
    case LinkMode::kCut:
      return 0;  // silence, not sync: shows up as BadCode instead
  }
  if (!CarrierAt(rx_side)) {
    return 0;
  }
  const TxState& tx = tx_[static_cast<int>(tx_side)];
  if (tx.directive != FlowDirective::kNone) {
    return 0;
  }
  Tick from = since > tx.directive_since ? since : tx.directive_since;
  Tick period = kFlowSlotPeriod * kSlotNs;
  Tick now = sim_->now();
  if (now <= from) {
    return 0;
  }
  return now / period - from / period;
}

}  // namespace autonet
