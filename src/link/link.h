// Full-duplex point-to-point link model (sections 3.1, 5.3, 6.1).
//
// A Link owns two unidirectional channels between endpoints A and B.  Each
// channel carries a stream of 80 ns symbol slots; data symbols are delivered
// to the remote endpoint after the propagation delay, and flow-control
// directive *changes* are delivered quantized to the next flow-control slot
// (every 256th slot) plus the propagation delay.  Idle channels generate no
// events: "how many directive slots were missed" style questions are
// answered arithmetically from state-change timestamps.
//
// Delivery uses one simulator *train* per channel rather than one event per
// symbol: each transmitted symbol becomes a POD flit in the channel's
// in-flight queue, and a single queue entry re-sifts itself from arrival to
// arrival.  Each flit's tie-break sequence is reserved at transmit time, so
// the global firing order is identical to the event-per-byte engine this
// replaced — only the per-byte std::function, PacketRef copy, and queue
// entry are gone.
//
// Fault modes reproduce the physical behaviours the paper describes:
//   kCut         no symbols arrive in either direction (unplugged cable)
//   kReflectA/B  the coax hybrid reflects the named side's own transmissions
//                back to it (unterminated cable or unpowered remote port,
//                section 5.3); the other side hears silence
// plus a per-byte corruption probability modelling a marginal link.
#ifndef SRC_LINK_LINK_H_
#define SRC_LINK_LINK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/common/packet.h"
#include "src/common/time.h"
#include "src/link/flow.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace autonet {

// Integrity flags accompanying a packet's end command.  `truncated` means
// the packet lost its tail (the upstream switch was reset mid-forward, or
// the cable was cut); `corrupted` means some earlier byte was damaged, so
// the packet's CRC will not verify.
struct EndFlags {
  bool truncated = false;
  bool corrupted = false;
};

// Receive-path callbacks.  Implemented by switch link units and host
// controller ports.  Callbacks run at symbol *arrival* time.
class LinkEndpoint {
 public:
  virtual ~LinkEndpoint() = default;

  virtual void OnPacketBegin(const PacketRef& packet) = 0;
  // One data byte of the current packet.  `corrupt` models a transmission
  // error in this byte (will surface as a CRC failure / BadCode).
  virtual void OnDataByte(const PacketRef& packet, std::uint32_t offset,
                          bool corrupt) = 0;
  virtual void OnPacketEnd(EndFlags flags) = 0;
  virtual void OnFlowDirective(FlowDirective directive) = 0;
  // The link was cut or restored under us (also fired on mode changes that
  // silence our receive channel).
  virtual void OnCarrierChange(bool carrier_up) = 0;
  // A code violation at the receiver: physical-layer glitches such as the
  // terminated->unterminated transition of a coax link (section 7: the
  // transition "almost always causes enough BadCode status ... to classify
  // the link broken").  Default: ignored.
  virtual void OnCodeViolation() {}
};

enum class LinkMode : std::uint8_t {
  kNormal,
  kCut,
  kReflectA,  // side A hears its own transmissions; side B hears silence
  kReflectB,  // side B hears its own transmissions; side A hears silence
};

class Link {
 public:
  enum class Side : int { kA = 0, kB = 1 };
  static constexpr Side Other(Side s) {
    return s == Side::kA ? Side::kB : Side::kA;
  }

  Link(Simulator* sim, double length_km, std::uint64_t corruption_seed = 1);
  ~Link();

  void Attach(Side side, LinkEndpoint* endpoint);
  void Detach(Side side);

  // --- transmit path (called by the owning endpoint of `from`) ---
  void TransmitBegin(Side from, const PacketRef& packet);
  // Inline (defined below the class): runs once per payload byte.
  void TransmitByte(Side from, const PacketRef& packet, std::uint32_t offset);
  void TransmitEnd(Side from, EndFlags flags);

  // Latches the directive this side sends in flow-control slots.  kNone
  // means "send only sync in flow slots" (alternate host port behaviour).
  // The remote side observes the change at the next flow slot plus the
  // propagation delay.  A change made while a previous change is still
  // waiting for its flow slot supersedes it: only the latest latched value
  // is ever delivered.  Inline so the no-change case (re-asserted once per
  // forwarded byte by the FIFO flow logic) costs one compare.
  void SetFlowDirective(Side from, FlowDirective directive) {
    if (tx_[static_cast<int>(from)].directive == directive) {
      return;
    }
    SetFlowDirectiveChanged(from, directive);
  }
  FlowDirective flow_directive(Side from) const {
    return tx_[static_cast<int>(from)].directive;
  }

  // --- fault injection ---
  void SetMode(LinkMode mode);
  LinkMode mode() const { return mode_; }
  // Probability that any individual transmitted byte is damaged.
  void SetCorruptionRate(double per_byte_probability) {
    corruption_rate_ = per_byte_probability;
  }

  // --- state queries ---
  // Whether the named side currently receives a carrier.
  bool CarrierAt(Side rx_side) const;
  // Number of flow-control slots since `since` in which the named receiving
  // side saw sync instead of a directive while carrier was present.  Used by
  // the status sampler to derive BadSyntax counts for alternate host ports.
  std::int64_t MissedDirectiveSlots(Side rx_side, Tick since) const;

  double length_km() const { return length_km_; }
  Tick propagation_delay() const { return propagation_delay_; }

  Simulator* sim() { return sim_; }

 private:
  struct TxState {
    FlowDirective directive = FlowDirective::kNone;
    Tick directive_since = 0;
    bool in_packet = false;
    // The undelivered directive change scheduled for the next flow slot, if
    // any.  Cancelled when a newer change supersedes it.
    Simulator::EventId pending_directive;
  };

  // One in-flight symbol of a channel: receiver and arrival time are
  // captured at transmit time (exactly what the per-byte events captured),
  // as is `seq`, the reserved tie-break position among simultaneous events.
  // Deliberately trivially copyable — the ring buffer below moves these by
  // plain stores; the packet a kBegin introduces rides in the channel's
  // `begin_packets` side queue instead.
  struct Flit {
    enum class Kind : std::uint8_t { kBegin, kByte, kEnd };
    Tick arrive;
    std::uint64_t seq;
    LinkEndpoint* ep;
    std::uint32_t offset;
    Kind kind;
    bool corrupt;
    EndFlags flags;
  };
  static_assert(std::is_trivially_copyable_v<Flit>);

  // Power-of-two ring buffer of in-flight flits: push/pop are an index
  // increment and a masked store/load, with none of std::deque's segment
  // bookkeeping on the per-byte path.
  class FlitRing {
   public:
    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }
    const Flit& front() const { return buf_[head_ & (buf_.size() - 1)]; }
    const Flit& back() const { return buf_[(tail_ - 1) & (buf_.size() - 1)]; }
    void push_back(const Flit& f) {
      if (size() == buf_.size()) {
        Grow();
      }
      buf_[tail_ & (buf_.size() - 1)] = f;
      ++tail_;
    }
    void pop_front() { ++head_; }

   private:
    void Grow();

    std::vector<Flit> buf_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
  };

  // Unidirectional channel state, keyed by the transmitting side.
  struct Channel {
    FlitRing inflight;
    // Packets of the kBegin flits in `inflight`, in order (cut-through
    // keeps this at one or two entries).
    std::deque<PacketRef> begin_packets;
    PacketRef rx_packet;  // packet currently streaming out of the channel
    Simulator::EventId train;
    // The train parked itself when the channel drained (its slot is kept
    // for ResumeTrain); distinguishes an idle train from one whose firing
    // is on the stack right now.
    bool parked = false;
    // A mode change that shortens the path mid-stream makes arrivals
    // non-monotone; such flits (and the rest of their packet) bypass the
    // train as one-shot events until the next packet boundary.
    bool bypass = false;
  };

  // Where do symbols transmitted from `from` end up?  Returns false if they
  // are lost.  Inline: on the per-byte transmit path, and kNormal folds to
  // two stores.
  bool DeliveryTarget(Side from, Side* rx_side, Tick* delay) const {
    switch (mode_) {
      case LinkMode::kNormal:
        *rx_side = Other(from);
        *delay = propagation_delay_;
        return true;
      case LinkMode::kCut:
        return false;
      case LinkMode::kReflectA:
        if (from != Side::kA) {
          return false;
        }
        *rx_side = Side::kA;
        *delay = 2 * propagation_delay_;
        return true;
      case LinkMode::kReflectB:
        if (from != Side::kB) {
          return false;
        }
        *rx_side = Side::kB;
        *delay = 2 * propagation_delay_;
        return true;
    }
    return false;
  }
  LinkEndpoint* EndpointAt(Side side) const {
    return endpoints_[static_cast<int>(side)];
  }
  // `packet` is the packet a kBegin introduces (queued for the train, or
  // captured by the bypass one-shot) and, for a kByte, the packet read only
  // on the rare bypass path; unused for kEnd.  Inline (defined below the
  // class) with the rare halves split out-of-line.
  void PushFlit(Side from, const Flit& flit, const PacketRef& packet);
  // One-shot event fallback for a flit that cannot ride the train (a mode
  // change made arrivals non-monotone mid-packet).
  void PushFlitBypass(const Flit& flit, const PacketRef& packet);
  // Starts the delivery train for a channel whose head flit just arrived
  // and whose train slot is not merely parked.
  void StartDeliveryTrain(Side from, Channel& ch);
  Simulator::TrainStep DeliverStep(Side from);
  void SetFlowDirectiveChanged(Side from, FlowDirective directive);
  void ScheduleDirective(Side from, FlowDirective directive);
  void NotifyCarrier();
  void RedeliverDirectives();

  Simulator* sim_;
  double length_km_;
  Tick propagation_delay_;
  LinkMode mode_ = LinkMode::kNormal;
  double corruption_rate_ = 0.0;
  Rng corruption_rng_;
  std::array<LinkEndpoint*, 2> endpoints_{};
  std::array<TxState, 2> tx_{};
  std::array<Channel, 2> channels_{};
  std::array<bool, 2> last_carrier_{false, false};
};

// Appends a transmitted symbol to its channel's in-flight queue, starting
// (or resuming) the delivery train if the channel was idle.  Every flit
// arrives at its captured (arrive, seq) position whichever path delivers
// it, so the global firing order is identical to the event-per-symbol
// engine.  Inline so the per-byte transmit chain (endpoint -> TransmitByte
// -> PushFlit -> ResumeTrain) compiles as one unit; the bypass fallback and
// cold train start stay out of line.
inline void Link::PushFlit(Side from, const Flit& flit,
                           const PacketRef& packet) {
  Channel& ch = channels_[static_cast<int>(from)];
  bool out_of_order =
      !ch.inflight.empty() && flit.arrive < ch.inflight.back().arrive;
  if (out_of_order) {
    ch.bypass = true;
  } else if (flit.kind == Flit::Kind::kBegin) {
    // A new packet whose begin is in order streams through the train again.
    ch.bypass = false;
  }
  if (ch.bypass) {
    PushFlitBypass(flit, packet);
    return;
  }
  if (flit.kind == Flit::Kind::kBegin) {
    ch.begin_packets.push_back(packet);
  }
  bool was_empty = ch.inflight.empty();
  ch.inflight.push_back(flit);
  if (was_empty) {
    if (ch.parked) {
      // On short links the channel drains after every symbol, so the train
      // parks and resumes once per symbol; reusing the parked slot keeps
      // that to a single heap push.
      ch.parked = false;
      const Flit& head = ch.inflight.front();
      sim_->ResumeTrain(ch.train, head.arrive, head.seq);
    } else if (!ch.train.valid()) {
      StartDeliveryTrain(from, ch);
    }
    // else: a DeliverStep firing for this channel is on the stack (the
    // delivery callback transmitted back into the same channel, e.g. in
    // reflect mode); it will chain to the new head itself.
  }
}

inline void Link::TransmitByte(Side from, const PacketRef& packet,
                               std::uint32_t offset) {
  Side rx;
  Tick delay;
  if (!DeliveryTarget(from, &rx, &delay)) {
    return;
  }
  LinkEndpoint* ep = EndpointAt(rx);
  if (ep == nullptr) {
    return;
  }
  bool corrupt =
      corruption_rate_ > 0.0 && corruption_rng_.Bernoulli(corruption_rate_);
  Flit flit{};
  flit.arrive = sim_->now() + delay;
  flit.seq = sim_->ReserveSeq();
  flit.ep = ep;
  flit.offset = offset;
  flit.kind = Flit::Kind::kByte;
  flit.corrupt = corrupt;
  PushFlit(from, flit, packet);
}

}  // namespace autonet

#endif  // SRC_LINK_LINK_H_
