// Full-duplex point-to-point link model (sections 3.1, 5.3, 6.1).
//
// A Link owns two unidirectional channels between endpoints A and B.  Each
// channel carries a stream of 80 ns symbol slots; data symbols are delivered
// to the remote endpoint after the propagation delay, and flow-control
// directive *changes* are delivered quantized to the next flow-control slot
// (every 256th slot) plus the propagation delay.  Idle channels generate no
// events: "how many directive slots were missed" style questions are
// answered arithmetically from state-change timestamps.
//
// Fault modes reproduce the physical behaviours the paper describes:
//   kCut         no symbols arrive in either direction (unplugged cable)
//   kReflectA/B  the coax hybrid reflects the named side's own transmissions
//                back to it (unterminated cable or unpowered remote port,
//                section 5.3); the other side hears silence
// plus a per-byte corruption probability modelling a marginal link.
#ifndef SRC_LINK_LINK_H_
#define SRC_LINK_LINK_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/common/packet.h"
#include "src/common/time.h"
#include "src/link/flow.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace autonet {

// Integrity flags accompanying a packet's end command.  `truncated` means
// the packet lost its tail (the upstream switch was reset mid-forward, or
// the cable was cut); `corrupted` means some earlier byte was damaged, so
// the packet's CRC will not verify.
struct EndFlags {
  bool truncated = false;
  bool corrupted = false;
};

// Receive-path callbacks.  Implemented by switch link units and host
// controller ports.  Callbacks run at symbol *arrival* time.
class LinkEndpoint {
 public:
  virtual ~LinkEndpoint() = default;

  virtual void OnPacketBegin(const PacketRef& packet) = 0;
  // One data byte of the current packet.  `corrupt` models a transmission
  // error in this byte (will surface as a CRC failure / BadCode).
  virtual void OnDataByte(const PacketRef& packet, std::uint32_t offset,
                          bool corrupt) = 0;
  virtual void OnPacketEnd(EndFlags flags) = 0;
  virtual void OnFlowDirective(FlowDirective directive) = 0;
  // The link was cut or restored under us (also fired on mode changes that
  // silence our receive channel).
  virtual void OnCarrierChange(bool carrier_up) = 0;
  // A code violation at the receiver: physical-layer glitches such as the
  // terminated->unterminated transition of a coax link (section 7: the
  // transition "almost always causes enough BadCode status ... to classify
  // the link broken").  Default: ignored.
  virtual void OnCodeViolation() {}
};

enum class LinkMode : std::uint8_t {
  kNormal,
  kCut,
  kReflectA,  // side A hears its own transmissions; side B hears silence
  kReflectB,  // side B hears its own transmissions; side A hears silence
};

class Link {
 public:
  enum class Side : int { kA = 0, kB = 1 };
  static constexpr Side Other(Side s) {
    return s == Side::kA ? Side::kB : Side::kA;
  }

  Link(Simulator* sim, double length_km, std::uint64_t corruption_seed = 1);

  void Attach(Side side, LinkEndpoint* endpoint);
  void Detach(Side side);

  // --- transmit path (called by the owning endpoint of `from`) ---
  void TransmitBegin(Side from, const PacketRef& packet);
  void TransmitByte(Side from, const PacketRef& packet, std::uint32_t offset);
  void TransmitEnd(Side from, EndFlags flags);

  // Latches the directive this side sends in flow-control slots.  kNone
  // means "send only sync in flow slots" (alternate host port behaviour).
  // The remote side observes the change at the next flow slot plus the
  // propagation delay.
  void SetFlowDirective(Side from, FlowDirective directive);
  FlowDirective flow_directive(Side from) const {
    return tx_[static_cast<int>(from)].directive;
  }

  // --- fault injection ---
  void SetMode(LinkMode mode);
  LinkMode mode() const { return mode_; }
  // Probability that any individual transmitted byte is damaged.
  void SetCorruptionRate(double per_byte_probability) {
    corruption_rate_ = per_byte_probability;
  }

  // --- state queries ---
  // Whether the named side currently receives a carrier.
  bool CarrierAt(Side rx_side) const;
  // Number of flow-control slots since `since` in which the named receiving
  // side saw sync instead of a directive while carrier was present.  Used by
  // the status sampler to derive BadSyntax counts for alternate host ports.
  std::int64_t MissedDirectiveSlots(Side rx_side, Tick since) const;

  double length_km() const { return length_km_; }
  Tick propagation_delay() const { return propagation_delay_; }

  Simulator* sim() { return sim_; }

 private:
  struct TxState {
    FlowDirective directive = FlowDirective::kNone;
    Tick directive_since = 0;
    bool in_packet = false;
  };

  // Where do symbols transmitted from `from` end up?  Returns the receiving
  // side, or nullopt if they are lost.
  bool DeliveryTarget(Side from, Side* rx_side, Tick* delay) const;
  LinkEndpoint* EndpointAt(Side side) const {
    return endpoints_[static_cast<int>(side)];
  }
  void NotifyCarrier();
  void RedeliverDirectives();

  Simulator* sim_;
  double length_km_;
  Tick propagation_delay_;
  LinkMode mode_ = LinkMode::kNormal;
  double corruption_rate_ = 0.0;
  Rng corruption_rng_;
  std::array<LinkEndpoint*, 2> endpoints_{};
  std::array<TxState, 2> tx_{};
  std::array<bool, 2> last_carrier_{false, false};
};

}  // namespace autonet

#endif  // SRC_LINK_LINK_H_
