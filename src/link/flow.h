// Flow-control directives carried in the every-256th-slot flow-control slots
// of a channel (section 6.1).  `host` is sent by host controllers in place
// of `start` so a switch can tell whether a link comes from another switch
// or from a host.  `idhy` ("I don't hear you") forces the neighbor to
// declare a defective link defective as well.  `panic` resets the remote
// link unit (the paper notes panic was designed but not implemented; we
// implement it).
#ifndef SRC_LINK_FLOW_H_
#define SRC_LINK_FLOW_H_

#include <cstdint>

namespace autonet {

enum class FlowDirective : std::uint8_t {
  kNone,   // transmitter is not sending directives (alternate host port)
  kStart,  // receiver FIFO below half: transmission allowed
  kStop,   // receiver FIFO above half: stop sending
  kHost,   // like start, but identifies the sender as a host controller
  kIdhy,   // "I don't hear you": declare this link defective
  kPanic,  // reset the remote link unit
};

const char* FlowDirectiveName(FlowDirective d);

// True if the last-received directive permits transmission on the link.
constexpr bool DirectiveAllowsTransmit(FlowDirective d) {
  return d == FlowDirective::kStart || d == FlowDirective::kHost;
}

}  // namespace autonet

#endif  // SRC_LINK_FLOW_H_
