#include "src/chaos/corpus.h"

#include <cstdio>
#include <cstdlib>

namespace autonet {
namespace chaos {

// Conventions the corpus must respect:
//
//  * Scenarios that raise a cable's corruption rate heal it (rate 0) before
//    the script ends.  The consistency check compares against the healthy
//    topology, which has no notion of a marginal-but-connected cable; the
//    skeptic may legitimately hold a flaky link out of the configuration
//    forever.  Reflecting mode is different: it marks the cable cut, so it
//    may persist.
//
//  * Fault times are topology-generic.  Numeric targets wrap modulo the
//    domain size; `?name` picks resolve per (scenario, topology, seed), so
//    sweeping seeds sweeps victims.
const std::string& DefaultCorpusText() {
  static const std::string kText = R"(# Default chaos corpus: one scenario per fault family, then compounds.

# -- single cable faults ----------------------------------------------------

scenario cable-cut-restore
  at 100ms cut cable ?a
  at 1s restore cable ?a

scenario cable-cut-permanent
  # The network must reconfigure around the missing cable and stay consistent
  # (on a line topology this partitions the network; oracles judge each
  # surviving component on its own).
  at 100ms cut cable ?a

scenario double-cable-cut
  at 100ms cut cable ?a
  at 300ms cut cable ?b
  at 1200ms restore cable ?a
  at 1400ms restore cable ?b

# -- switch faults ----------------------------------------------------------

scenario switch-crash-restart
  at 100ms crash switch ?s
  at 1500ms restart switch ?s

scenario switch-crash-permanent
  at 100ms crash switch ?s

scenario rolling-restarts
  at 100ms crash switch ?s
  at 700ms restart switch ?s
  at 1s crash switch ?t
  at 1600ms restart switch ?t

# -- marginal links (section 6.6.2 skeptic territory) -----------------------

scenario link-flap
  flap cable ?a period 150ms from 100ms until 1300ms

scenario marginal-cable
  at 100ms corrupt cable ?a rate 0.005
  at 1s corrupt cable ?a rate 0

scenario reflecting-cable
  # Unterminated coax: side A hears its own transmissions (section 6.6.3).
  at 100ms reflect cable ?a side a

# -- host connectivity (section 3.9 dual-homing) ----------------------------

scenario host-failover
  at 100ms cut hostlink 0 primary
  at 1500ms restore hostlink 0 primary

# -- correlated multi-fault bursts ------------------------------------------

scenario burst-cables
  at 100ms burst cables 3 until 1200ms

scenario burst-switches
  at 100ms burst switches 2 until 1500ms

# -- compounds --------------------------------------------------------------

scenario flap-under-crash
  flap cable ?a period 200ms from 100ms until 1100ms
  at 300ms crash switch ?s
  at 1300ms restart switch ?s
)";
  return kText;
}

std::vector<Scenario> DefaultCorpus() {
  std::string error;
  std::vector<Scenario> scenarios = ParseScenarios(DefaultCorpusText(), &error);
  if (scenarios.empty()) {
    std::fprintf(stderr, "built-in chaos corpus failed to parse: %s\n",
                 error.c_str());
    std::abort();
  }
  return scenarios;
}

// The SLO corpus keeps fault scripts short (the runner adds steady-state and
// recovery phases around the script) and payloads small: saturating closed
// loops generate load by windowing, not by byte count, and the whole corpus
// must stay cheap enough for CI to sweep on every push.
const std::string& SloCorpusText() {
  static const std::string kText = R"(# SLO corpus: application workloads across faults, judged on app impact.

scenario slo-steady
  # No faults: the baseline.  Any outage window at all is a violation here
  # (CI asserts zero), and the steady p999 anchors the latency budget.
  workload rpc bytes 256 response 32 window 2

scenario slo-cable-cut
  workload rpc bytes 256 response 32 window 2
  at 100ms cut cable ?a
  at 1200ms restore cable ?a

scenario slo-switch-crash
  workload rpc bytes 256 response 32 window 2
  at 100ms crash switch ?s
  at 1400ms restart switch ?s

scenario slo-link-flap
  workload rpc bytes 256 response 32 window 2
  flap cable ?a period 150ms from 100ms until 1s

scenario slo-allreduce-cut
  # The barrier couples every flow: the cut stalls the step until the
  # reconfiguration heals the path, then steps must resume.
  workload allreduce bytes 512
  at 100ms cut cable ?a
  at 1200ms restore cable ?a

scenario slo-streams-cut
  # Deadline misses are legal only during the fault window.
  workload streams bytes 256 period 5ms deadline 25ms
  at 100ms cut cable ?a
  at 1200ms restore cable ?a
)";
  return kText;
}

std::vector<Scenario> SloCorpus() {
  std::string error;
  std::vector<Scenario> scenarios = ParseScenarios(SloCorpusText(), &error);
  if (scenarios.empty()) {
    std::fprintf(stderr, "built-in SLO corpus failed to parse: %s\n",
                 error.c_str());
    std::abort();
  }
  return scenarios;
}

// Adversary corpus conventions:
//
//  * The engine heals every cable it cut when it retires, and the phase-snipe
//    scenarios seed a scripted cut/restore pair so there is a reconfiguration
//    wave to snipe — lasting damage must come from what the *network* got
//    wrong, never from an unfinished attack script.
//
//  * The corrupted-state scenarios are the self-stabilization battery: after
//    arbitrary register damage the run must still pass the full oracle
//    battery within the diameter-scaled deadline.  `adv-regress-*` scenarios
//    pin weaknesses the adversary actually found (see DESIGN.md).
const std::string& AdversaryCorpusText() {
  static const std::string kText = R"(# Adversarial corpus: the feedback-driven attacker vs the hardened protocol.

# -- reactive attack strategies ---------------------------------------------

scenario adv-root-chase
  # Cut a root-adjacent cable the moment each election settles.
  adversary root-chase moves 3 duration 5s

scenario adv-phase-snipe-tree
  # Cut precisely while some switch is mid tree-position exchange.
  adversary phase-snipe phase tree moves 2 duration 5s
  at 100ms cut cable ?a
  at 1s restore cable ?a

scenario adv-phase-snipe-install
  # Cut precisely during table installation — the worst moment: half the
  # network is already loading the new configuration.  (The compute phase is
  # a zero-width event in sim time and cannot be caught by polling.)
  adversary phase-snipe phase install moves 2 duration 5s period 100us
  at 100ms cut cable ?a
  at 1s restore cable ?a

scenario adv-storm
  # Byzantine tree-position floods crafted near the victim's live epoch.
  adversary storm moves 6 burst 8 duration 3s

scenario adv-storm-under-load
  workload rpc bytes 256 response 32 window 2
  adversary storm moves 4 burst 6 duration 3s

scenario adv-flap-resonance
  # Re-cut the instant the skeptic re-admits the link: a flap oscillating at
  # whatever the hold-down currently is.
  adversary flap-resonance moves 4 duration 6s

# -- corrupted-state recovery (self-stabilization battery) ------------------

scenario adv-corrupt-table
  adversary corrupt-table moves 4 duration 3s

scenario adv-corrupt-skeptic
  adversary corrupt-skeptic moves 3 duration 3s

scenario adv-corrupt-port
  adversary corrupt-port moves 3 duration 3s

scenario adv-corrupt-epoch
  # Forward epoch skew, with a scripted wave so the damage must wash out
  # through a real reconfiguration.
  adversary corrupt-epoch moves 3 amount 3 duration 4s
  at 500ms cut cable ?a
  at 1500ms restore cable ?a

# -- regressions for weaknesses the adversary found -------------------------

scenario adv-regress-epoch-runaway
  # A runaway epoch register (past kMaxEpochJump) used to freeze the victim
  # out of every future reconfiguration: neighbors dropped its implausible
  # epoch and it dropped theirs as stale.  The stale-resync path now convicts
  # the local register after repeated implausibly-stale sightings.
  adversary corrupt-epoch moves 1 amount 0 duration 4s
  at 500ms cut cable ?a
  at 1500ms restore cable ?a

scenario adv-regress-table-scrub
  # Silently corrupted forwarding-table bits used to persist until a packet
  # strayed; the autopilot's background scrub now reloads the image.
  adversary corrupt-table moves 6 duration 3s
)";
  return kText;
}

std::vector<Scenario> AdversaryCorpus() {
  std::string error;
  std::vector<Scenario> scenarios =
      ParseScenarios(AdversaryCorpusText(), &error);
  if (scenarios.empty()) {
    std::fprintf(stderr, "built-in adversary corpus failed to parse: %s\n",
                 error.c_str());
    std::abort();
  }
  return scenarios;
}

}  // namespace chaos
}  // namespace autonet
