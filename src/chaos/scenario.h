// Declarative fault scenarios for the chaos campaign engine.
//
// A Scenario is a timed script of fault actions — cut/restore cables, crash/
// restart switches, periodic link flapping, symbol corruption, reflecting
// (unterminated-coax) mode, host-link failover events, and correlated
// multi-fault bursts — executed against an autonet::Network through its
// fault-injection API.  Scenarios are written either programmatically via
// the builder methods or in a small text format (one corpus file can hold
// many scenarios; see ParseScenarios).
//
// Targets are topology-generic: a numeric cable/switch/host index is taken
// modulo the run topology's count, and a `?name` target is resolved to a
// random valid index once per (scenario, topology, seed) — every action in
// the scenario that names the same `?name` hits the same victim, so
// "cut cable ?a ... restore cable ?a" works, and sweeping seeds sweeps
// victims.  This is what lets one committed corpus run unchanged across the
// whole topology matrix.
#ifndef SRC_CHAOS_SCENARIO_H_
#define SRC_CHAOS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/adversary/spec.h"
#include "src/common/time.h"
#include "src/workload/spec.h"

namespace autonet {
namespace chaos {

// Sentinel target: "pick one at random for this run" (the anonymous form of
// a `?name` pick; distinct anonymous picks are independent).
inline constexpr int kRandomTarget = -1;

struct Action {
  enum class Kind : std::uint8_t {
    kCutCable,        // cut `target` at `at`
    kRestoreCable,    // restore `target` at `at`
    kCrashSwitch,     // power off switch `target`
    kRestartSwitch,   // power switch `target` back on (fresh ROM boot)
    kCutHostLink,     // cut host `target`'s link `which` (0 primary, 1 alt)
    kRestoreHostLink,
    kCorruptCable,    // set per-byte corruption probability `rate`
    kReflectCable,    // unterminated coax: side `which` hears itself
    kFlapCable,       // cut/restore `target` every `period` until `until`
    kBurstCables,     // cut `count` distinct random cables; restore at `until`
    kBurstSwitches,   // crash `count` distinct random switches; restart at
                      // `until` (until < at means never)
  };

  Kind kind = Kind::kCutCable;
  Tick at = 0;
  int target = kRandomTarget;
  std::string pick;   // non-empty: named random pick, stable within the run
  int which = 0;      // host-link selector or reflect side (0 = A, 1 = B)
  double rate = 0.0;  // corruption probability (kCorruptCable)
  Tick period = 0;    // flap half-period
  Tick until = 0;     // flap end / burst restore time
  int count = 1;      // burst width
};

struct Scenario {
  std::string name;
  std::vector<Action> actions;
  // Optional application workload to run while the script executes (see
  // src/workload/).  kNone (the default) keeps the run byte-identical to a
  // workload-free run; a scenario-level workload overrides any
  // campaign-level one.
  workload::Spec workload;
  // Optional feedback-driven adversary armed at script start (see
  // src/adversary/).  kNone (the default) keeps the run byte-identical to
  // an adversary-free run; a scenario-level adversary overrides any
  // campaign-level one.
  adversary::Spec adversary;

  // --- programmatic builders (all return *this for chaining) ---
  Scenario& CutCable(Tick at, int cable = kRandomTarget,
                     const std::string& pick = "");
  Scenario& RestoreCable(Tick at, int cable = kRandomTarget,
                         const std::string& pick = "");
  Scenario& CrashSwitch(Tick at, int sw = kRandomTarget,
                        const std::string& pick = "");
  Scenario& RestartSwitch(Tick at, int sw = kRandomTarget,
                          const std::string& pick = "");
  Scenario& CutHostLink(Tick at, int host, int which);
  Scenario& RestoreHostLink(Tick at, int host, int which);
  Scenario& CorruptCable(Tick at, int cable, double rate,
                         const std::string& pick = "");
  Scenario& ReflectCable(Tick at, int cable, int side,
                         const std::string& pick = "");
  Scenario& FlapCable(Tick from, Tick until, Tick period,
                      int cable = kRandomTarget, const std::string& pick = "");
  Scenario& BurstCables(Tick at, int count, Tick restore_at);
  Scenario& BurstSwitches(Tick at, int count, Tick restart_at);

  // The last instant at which this script can act (including flap ends and
  // burst restores).  The campaign runner simulates at least this far before
  // judging the run.
  Tick ScriptEnd() const;

  // Round-trips through ParseScenarios.
  std::string ToText() const;
};

// Parses a scenario corpus.  Grammar (one statement per line, '#' comments):
//
//   scenario <name>
//     workload rpc|allreduce|streams [key value ...]
//     adversary <strategy> [key value ...]     (see adversary::ParseSpec)
//     at <time> cut cable <target>
//     at <time> restore cable <target>
//     at <time> crash switch <target>
//     at <time> restart switch <target>
//     at <time> cut hostlink <host> primary|alternate
//     at <time> restore hostlink <host> primary|alternate
//     at <time> corrupt cable <target> rate <p>
//     at <time> reflect cable <target> side a|b
//     flap cable <target> period <time> from <time> until <time>
//     at <time> burst cables <count> until <time>
//     at <time> burst switches <count> [until <time>]
//
// <time> is a number with unit suffix ns/us/ms/s (e.g. 250ms, 1.5s) and
// <target> is an index, `random`, or a named pick `?a`.  Returns the parsed
// scenarios, or an empty vector with *error set to "line N: why".
std::vector<Scenario> ParseScenarios(const std::string& text,
                                     std::string* error);

// Formats a Tick as the shortest exact time literal ("250ms", "1.5s").
std::string FormatTime(Tick t);

}  // namespace chaos
}  // namespace autonet

#endif  // SRC_CHAOS_SCENARIO_H_
