// The chaos campaign runner: sweeps scenarios x seeds x topologies across a
// std::thread worker pool, one fully independent deterministic Simulator/
// Network per run, evaluates the invariant-oracle battery at each run's
// quiescence point, and aggregates verdicts, reconfiguration timings, and
// merged metric snapshots into a JSON campaign report.
//
// Every run is a pure function of (scenario, topology, seed): a violation is
// reported with a one-line reproducer (`chaosrun --scenario S --topo T
// --seed N`) that replays exactly that run.  Workers accumulate into
// worker-local registries and merge after joining, so runs never contend on
// a lock.
#ifndef SRC_CHAOS_RUNNER_H_
#define SRC_CHAOS_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/oracles.h"
#include "src/chaos/scenario.h"
#include "src/common/histogram.h"
#include "src/core/network.h"
#include "src/obs/metrics.h"
#include "src/topo/spec.h"
#include "src/workload/slo.h"

namespace autonet {
namespace chaos {

struct Violation {
  std::string oracle;
  std::string detail;
  std::string reproducer;  // a chaosrun command line replaying this run
  // Flight-recorder forensics for the failed run (same for every violation
  // of the run): the blame chain of the last reconfiguration epoch and the
  // full per-epoch timeline with phase breakdowns (src/obs/postmortem.h).
  std::string blame;
  std::string timeline;
};

struct TopologyCase {
  std::string name;
  TopoSpec spec;
};

// The named topologies a reproducer line can refer to.  Unknown names leave
// *error set.  StandardTopologyNames() is the default campaign matrix.
TopoSpec TopologyByName(const std::string& name, std::string* error);
std::vector<std::string> StandardTopologyNames();
std::vector<std::string> AllTopologyNames();

struct CampaignConfig {
  std::vector<Scenario> scenarios;
  std::vector<TopologyCase> topologies;
  std::vector<std::uint64_t> seeds;
  int jobs = 0;  // worker threads; 0 = hardware concurrency

  // Convergence deadline per run: base + per_hop * diameter of the healthy
  // topology, following the paper's conjecture that reconfiguration time is
  // a function of the maximum switch-to-switch distance (section 6.6.5,
  // cross-checked by bench E2).
  Tick convergence_base = 30 * kSecond;
  Tick convergence_per_hop = 2 * kSecond;
  Tick quiet = 100 * kMillisecond;

  NetworkConfig network;  // applied to every run's Network

  // Campaign-level application workload (src/workload/): when enabled, every
  // run drives it across the fault script and is additionally judged by the
  // SLO oracles.  A scenario-level `workload` line overrides this.  Disabled
  // by default so baseline campaigns stay byte-identical.
  workload::Spec workload;
  // Campaign-level adversary (src/adversary/): when enabled, every run arms
  // the feedback-driven fault engine at script start and is driven until the
  // engine retires.  A scenario-level `adversary` line overrides this.
  // Disabled by default so baseline campaigns stay byte-identical.
  adversary::Spec adversary;
  workload::SloBudgetConfig slo_budget;
  // Workload phase lengths: steady-state before the script (the latency
  // baseline), recovery after quiescence (the post-reconfiguration sample),
  // and the drain grace for in-flight ops before the books close.
  Tick slo_steady = 400 * kMillisecond;
  Tick slo_recovery = 1200 * kMillisecond;
  Tick slo_drain = 2 * kSecond;

  // Oracle battery factory; default StandardOracles.  Tests substitute
  // deliberately broken oracles here to prove violations are caught.
  std::function<std::vector<std::unique_ptr<Oracle>>()> oracles;

  // Command stem used when formatting reproducer lines.
  std::string reproducer_stem = "chaosrun";
};

struct RunResult {
  std::string scenario;
  std::string topology;
  std::uint64_t seed = 0;
  bool ok = false;
  std::vector<Violation> violations;
  double converge_ms = -1;  // sim time from script start to consistency
  double reconfig_ms = -1;  // duration of the last reconfiguration wave
  std::uint64_t log_hash = 0;      // FNV-1a over the merged event log
  std::uint64_t metrics_hash = 0;  // FNV-1a over the metrics JSON snapshot
  double wall_ms = 0;              // host wall clock for this run
  std::vector<std::string> resolved_actions;

  // Adversary results; `adversary` is empty when the run had none.  The
  // transcript is one line per observation/move and its FNV-1a hash is
  // byte-identical across replays of the same (scenario, topology, seed).
  std::string adversary;
  std::vector<std::string> adversary_transcript;
  std::uint64_t adversary_hash = 0;
  int adversary_moves = 0;

  // Workload / SLO results; `workload` is empty when the run had none.
  std::string workload;
  std::string slo_json;  // full workload::SloReport::ToJson()
  double slo_max_outage_ms = -1;
  double slo_steady_p999_ms = -1;
  double slo_recovery_p999_ms = -1;
  std::uint64_t slo_ops = 0;
  std::uint64_t slo_recovery_lost = 0;
  int slo_outage_windows = 0;
};

struct CampaignReport {
  std::vector<RunResult> runs;
  int passed = 0;
  int failed = 0;
  int jobs = 1;
  double wall_ms = 0;
  // Set by the CLI when it re-runs the campaign single-threaded to record
  // the parallel speedup in the report; negative = not measured.
  double jobs1_wall_ms = -1;

  Histogram reconfig_ms;   // per-run last-wave durations, campaign-wide
  Histogram converge_ms;   // per-run script-to-consistency times
  Histogram run_wall_ms;   // per-run host wall clock
  Histogram slo_outage_ms;  // per-run worst flow outage (workload runs only)
  obs::MetricRegistry metrics;  // all runs' registries, merged

  bool AllPassed() const { return failed == 0; }
  // The one-line reproducers of every violation, in run order.
  std::vector<std::string> ReproducerLines() const;
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;
};

// Executes a single (scenario, topology, seed) run — the reproducer path.
// When `merge_metrics` is non-null the run's full metric registry is merged
// into it before the Network is torn down.
RunResult RunOne(const CampaignConfig& config, const Scenario& scenario,
                 const TopologyCase& topo, std::uint64_t seed,
                 obs::MetricRegistry* merge_metrics = nullptr);

CampaignReport RunCampaign(const CampaignConfig& config);

}  // namespace chaos
}  // namespace autonet

#endif  // SRC_CHAOS_RUNNER_H_
