// Executes a chaos::Scenario against a live autonet::Network: resolves the
// scenario's random/named-pick targets for one (topology, seed) run, then
// schedules every action as a simulator event driving the Network fault API.
//
// Resolution is deterministic: the same (scenario, topology, seed) triple
// always picks the same victims, which is what makes a one-line reproducer
// (`chaosrun --scenario S --topo T --seed N`) sufficient to replay any run.
#ifndef SRC_CHAOS_EXECUTOR_H_
#define SRC_CHAOS_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/scenario.h"
#include "src/core/network.h"
#include "src/sim/random.h"

namespace autonet {
namespace chaos {

class ScenarioExecutor {
 public:
  // Resolves targets immediately; Schedule() arms the script so that action
  // times are relative to `start` (typically "now", after the network has
  // converged from boot).
  ScenarioExecutor(Network* net, const Scenario& scenario, std::uint64_t seed);

  // Schedules all actions at start + action.at.  Must be called at most
  // once; the executor must outlive the simulation of the script.
  void Schedule(Tick start);

  // Absolute sim time after which the script takes no further action.
  Tick script_end() const { return start_ + scenario_.ScriptEnd(); }

  // Human-readable resolved actions ("t=250ms cut cable 3"), in script
  // order.  Stable across replays of the same (scenario, topology, seed);
  // recorded in the campaign report so a reader can see who the random
  // picks hit.
  const std::vector<std::string>& resolved() const { return resolved_; }

 private:
  // Domains for named picks and modulo reduction.
  enum class Domain { kCable, kSwitch, kHost };

  // Returns the resolved index, or -1 when the domain is empty.
  int Resolve(const Action& a, Domain domain);
  int DomainSize(Domain domain) const;
  // `count` distinct random indices from the domain (clamped to its size).
  std::vector<int> ResolveDistinct(int count, Domain domain);

  void Describe(const Action& a, std::size_t index);
  void Execute(const Action& a, int target);
  void FlapStep(int cable, Tick period, Tick until, bool cut_next);

  Network* net_;
  Scenario scenario_;
  Rng rng_;
  Tick start_ = 0;
  std::map<std::pair<int, std::string>, int> picks_;
  std::vector<std::string> resolved_;
  // Pre-resolved targets, one slot per action (bursts use the burst lists).
  std::vector<int> targets_;
  std::vector<std::vector<int>> burst_targets_;
};

}  // namespace chaos
}  // namespace autonet

#endif  // SRC_CHAOS_EXECUTOR_H_
