// The committed scenario corpus: the default fault-script battery that
// chaosrun executes and CI sweeps.  Kept as source (one text constant) so
// the corpus is versioned with the engine that interprets it; `chaosrun
// --dump-corpus` prints it and `--corpus FILE` substitutes an external one.
#ifndef SRC_CHAOS_CORPUS_H_
#define SRC_CHAOS_CORPUS_H_

#include <string>
#include <vector>

#include "src/chaos/scenario.h"

namespace autonet {
namespace chaos {

// The corpus text, in the ParseScenarios grammar.
const std::string& DefaultCorpusText();

// The parsed corpus.  The text is committed and covered by tests, so this
// cannot fail; it aborts if the corpus ever stops parsing.
std::vector<Scenario> DefaultCorpus();

// The SLO corpus: scenarios that run an application workload (saturating
// RPC, ring allreduce, periodic streams) across a fault and judge the run
// on application impact — outage windows vs the diameter-scaled budget,
// post-quiescence tail latency, lost-forever ops, deadline misses.  CI's
// slo-smoke job sweeps this corpus.
const std::string& SloCorpusText();
std::vector<Scenario> SloCorpus();

// The adversarial corpus: every strategy of the feedback-driven fault
// adversary (src/adversary/), including the corrupted-state families that
// demand Dolev-style self-stabilization, plus the regression scenarios for
// weaknesses the adversary found.  CI's adversary-smoke job sweeps this
// corpus; it must run clean post-hardening.
const std::string& AdversaryCorpusText();
std::vector<Scenario> AdversaryCorpus();

}  // namespace chaos
}  // namespace autonet

#endif  // SRC_CHAOS_CORPUS_H_
