// Invariant oracles for chaos campaigns: checkers evaluated once the fault
// script has finished and the control plane has had a chance to settle.
// Each oracle inspects the Network and returns an empty string when its
// invariant holds, or a one-line diagnosis when it is violated; the campaign
// runner turns a diagnosis into a Violation carrying a reproducer line.
//
// The standard battery (StandardOracles) covers the paper's claims:
//   convergence    the control plane reaches a consistent configuration
//                  within a diameter-scaled deadline (liveness, §6.6.5's
//                  "function of the maximum switch-to-switch distance")
//   epochs         all alive switches of each physical component agree on
//                  the epoch number (§6.6.2)
//   routes         the loaded forwarding tables deliver every (origin,
//                  destination) pair legally, loop-free, with broadcasts
//                  reaching every station exactly once (§6.6.4)
//   deadlock       the channel-dependency graph of the loaded tables is
//                  acyclic, so the flow-controlled fabric cannot wedge
//                  (§4.2)
//   delivery       after convergence, fresh client traffic flows intact
//                  between every pair of registered hosts that share a
//                  component ("whatever physical configuration is
//                  available" actually carries packets)
//   ports          port classifications match physical truth: healthy
//                  switch-to-switch cables are s.switch.good at both ends
//                  and faulted ones are not in the configuration — the
//                  skeptic hold-down sanity check (no healthy link is held
//                  down forever, no dead link is trusted)
#ifndef SRC_CHAOS_ORACLES_H_
#define SRC_CHAOS_ORACLES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/network.h"

namespace autonet {
namespace chaos {

struct OracleContext {
  Network* net = nullptr;
  // Absolute sim-time deadline for convergence and the quiet period used to
  // detect it; set by the runner from the topology diameter.
  Tick deadline = 0;
  Tick quiet = 100 * kMillisecond;
  // Filled in by the convergence oracle for the report.
  Tick converged_at = -1;
};

class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual std::string name() const = 0;
  // Empty string when the invariant holds.  Oracles run in battery order;
  // the convergence oracle advances simulated time, the rest are pure
  // inspections.
  virtual std::string Check(OracleContext& ctx) = 0;
};

// The standard battery, in evaluation order (convergence first — it brings
// the network to the quiescence point the others inspect).
std::vector<std::unique_ptr<Oracle>> StandardOracles();

// Maximum switch-to-switch hop distance over the largest component of the
// healthy topology (0 for a single switch or an empty network).
int HealthyDiameter(const Network& net);

// --- individual oracles (exposed for targeted tests) ---
std::unique_ptr<Oracle> MakeConvergenceOracle();
std::unique_ptr<Oracle> MakeEpochAgreementOracle();
std::unique_ptr<Oracle> MakeRouteLegalityOracle();
std::unique_ptr<Oracle> MakeDeadlockFreedomOracle();
std::unique_ptr<Oracle> MakeDeliveryOracle();
std::unique_ptr<Oracle> MakePortSanityOracle();

}  // namespace chaos
}  // namespace autonet

#endif  // SRC_CHAOS_ORACLES_H_
