#include "src/chaos/oracles.h"

#include <algorithm>
#include <map>

#include "src/chaos/scenario.h"
#include "src/routing/verify.h"

namespace autonet {
namespace chaos {

namespace {

// One physically-connected component of the healthy topology, paired with
// the Network switch indices of its members (aligned with part.switches).
// This is the unit every post-convergence oracle judges: section 6.6 says
// physically separated partitions configure as independent operational
// networks.
struct ComponentView {
  NetTopology part;
  std::vector<int> live;  // Network switch index per part switch
};

std::vector<int> ComponentIds(const NetTopology& topo) {
  std::vector<int> component(topo.size(), -1);
  int next = 0;
  for (int start = 0; start < topo.size(); ++start) {
    if (component[start] >= 0) {
      continue;
    }
    int id = next++;
    std::vector<int> stack{start};
    component[start] = id;
    while (!stack.empty()) {
      int node = stack.back();
      stack.pop_back();
      for (const TopoLink& link : topo.switches[node].links) {
        if (component[link.remote_switch] < 0) {
          component[link.remote_switch] = id;
          stack.push_back(link.remote_switch);
        }
      }
    }
  }
  return component;
}

std::vector<ComponentView> BuildComponents(Network& net) {
  NetTopology expected = net.HealthyTopology();
  std::vector<int> component = ComponentIds(expected);
  int count = component.empty()
                  ? 0
                  : *std::max_element(component.begin(), component.end()) + 1;

  std::vector<ComponentView> views(count);
  std::vector<int> new_index(expected.size(), -1);
  for (int i = 0; i < expected.size(); ++i) {
    ComponentView& view = views[component[i]];
    new_index[i] = view.part.size();
    SwitchDescriptor sw = expected.switches[i];
    sw.links.clear();
    view.part.switches.push_back(std::move(sw));
    // Healthy topology only contains alive switches, so a live index exists.
    int live = -1;
    for (int s = 0; s < net.num_switches(); ++s) {
      if (net.switch_alive(s) &&
          net.spec().switches[s].uid == expected.switches[i].uid) {
        live = s;
        break;
      }
    }
    view.live.push_back(live);
  }
  for (int i = 0; i < expected.size(); ++i) {
    ComponentView& view = views[component[i]];
    for (const TopoLink& link : expected.switches[i].links) {
      view.part.switches[new_index[i]].links.push_back(
          {link.local_port, new_index[link.remote_switch], link.remote_port});
    }
  }
  return views;
}

int Diameter(const NetTopology& topo) {
  int diameter = 0;
  for (int s = 0; s < topo.size(); ++s) {
    std::vector<int> dist(topo.size(), -1);
    std::vector<int> queue{s};
    dist[s] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      int u = queue[head];
      for (const TopoLink& link : topo.switches[u].links) {
        if (dist[link.remote_switch] < 0) {
          dist[link.remote_switch] = dist[u] + 1;
          queue.push_back(link.remote_switch);
        }
      }
    }
    for (int d : dist) {
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

class ConvergenceOracle : public Oracle {
 public:
  std::string name() const override { return "convergence"; }
  std::string Check(OracleContext& ctx) override {
    Network& net = *ctx.net;
    if (!net.WaitForConsistency(ctx.deadline, ctx.quiet)) {
      std::string why = net.CheckConsistency();
      return "no consistent configuration by t=" + FormatTime(ctx.deadline) +
             (why.empty() ? ": still quiescing" : ": " + why);
    }
    ctx.converged_at = net.sim().now();
    return "";
  }
};

class EpochAgreementOracle : public Oracle {
 public:
  std::string name() const override { return "epochs"; }
  std::string Check(OracleContext& ctx) override {
    Network& net = *ctx.net;
    for (const ComponentView& view : BuildComponents(net)) {
      std::uint64_t epoch = 0;
      int first = -1;
      for (int live : view.live) {
        const Autopilot& ap = net.autopilot_at(live);
        if (first < 0) {
          epoch = ap.epoch();
          first = live;
        } else if (ap.epoch() != epoch) {
          return net.switch_at(live).name() + " is on epoch " +
                 std::to_string(ap.epoch()) + " while " +
                 net.switch_at(first).name() + " is on " +
                 std::to_string(epoch);
        }
      }
    }
    return "";
  }
};

// Shared collection step for the two table oracles: pulls the loaded tables
// of a component's switches and fills assigned numbers from the autopilots.
std::string CollectTables(Network& net, ComponentView& view,
                          std::vector<ForwardingTable>* tables) {
  for (int i = 0; i < view.part.size(); ++i) {
    int live = view.live[i];
    const Autopilot& ap = net.autopilot_at(live);
    if (!ap.topology().has_value()) {
      return net.switch_at(live).name() + " has no configuration";
    }
    if (ap.switch_num() == 0) {
      return net.switch_at(live).name() + " has no switch number";
    }
    view.part.switches[i].assigned_num = ap.switch_num();
    tables->push_back(net.switch_at(live).forwarding_table());
  }
  return "";
}

class RouteLegalityOracle : public Oracle {
 public:
  std::string name() const override { return "routes"; }
  std::string Check(OracleContext& ctx) override {
    Network& net = *ctx.net;
    for (ComponentView& view : BuildComponents(net)) {
      std::vector<ForwardingTable> tables;
      std::string err = CollectTables(net, view, &tables);
      if (!err.empty()) {
        return err;
      }
      VerifyResult routes = VerifyRoutes(view.part, tables);
      if (!routes.ok) {
        return routes.error;
      }
    }
    return "";
  }
};

class DeadlockFreedomOracle : public Oracle {
 public:
  std::string name() const override { return "deadlock"; }
  std::string Check(OracleContext& ctx) override {
    Network& net = *ctx.net;
    for (ComponentView& view : BuildComponents(net)) {
      std::vector<ForwardingTable> tables;
      std::string err = CollectTables(net, view, &tables);
      if (!err.empty()) {
        return err;
      }
      DependencyCheck deps = CheckChannelDependencies(view.part, tables);
      if (!deps.acyclic) {
        return "channel dependency cycle of length " +
               std::to_string(deps.cycle.size()) + " in loaded tables";
      }
    }
    return "";
  }
};

class DeliveryOracle : public Oracle {
 public:
  std::string name() const override { return "delivery"; }
  std::string Check(OracleContext& ctx) override {
    Network& net = *ctx.net;
    // Let drivers re-register on whatever attachment survives the script.
    net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond);

    // Component id per alive Network switch index.
    NetTopology healthy = net.HealthyTopology();
    std::vector<int> ids = ComponentIds(healthy);
    std::map<std::uint64_t, int> component_of_uid;
    for (int i = 0; i < healthy.size(); ++i) {
      component_of_uid[healthy.switches[i].uid.value()] = ids[i];
    }
    auto host_component = [&](int h) {
      const TopoSpec::HostSpec& hs = net.spec().hosts[h];
      int active = net.driver_at(h).controller()->active_port();
      int sw = active == 0 ? hs.primary_switch : hs.alt_switch;
      if (sw < 0 || !net.switch_alive(sw) ||
          net.host_link(h, active).mode() != LinkMode::kNormal ||
          !net.driver_at(h).HasAddress()) {
        return -1;  // disconnected or unregistered: exempt from the check
      }
      return component_of_uid[net.spec().switches[sw].uid.value()];
    };

    struct Expected {
      int src;
      int dst;
    };
    std::vector<Expected> pending;
    for (int a = 0; a < net.num_hosts(); ++a) {
      int ca = host_component(a);
      if (ca < 0) {
        continue;
      }
      for (int b = 0; b < net.num_hosts(); ++b) {
        if (a == b || host_component(b) != ca) {
          continue;
        }
        pending.push_back({a, b});
      }
    }
    // A host whose switch crashed and restarted inside the driver's ping
    // window still holds a short address from the old epoch; the driver
    // only notices on its next ping cycle (~3 s of silence, sec 6.8.3 --
    // the failover bench measures recovery at ~2.9 s) and re-registers.
    // The paper's claim is that service is *eventually* restored, so retry
    // every outstanding pair in 300 ms rounds across that window.  A
    // refused send (address cleared mid-re-registration) is retried too.
    const Tick deadline = net.sim().now() + 15 * kSecond;
    while (true) {
      net.ClearInboxes();
      for (const Expected& e : pending) {
        net.SendData(e.src, e.dst, 64);
      }
      net.Run(300 * kMillisecond);
      std::vector<Expected> still;
      for (const Expected& e : pending) {
        bool got = false;
        for (const Delivery& d : net.inbox(e.dst)) {
          if (d.intact() && d.packet != nullptr &&
              d.packet->src_uid == net.host_at(e.src).uid()) {
            got = true;
            break;
          }
        }
        if (!got) {
          still.push_back(e);
        }
      }
      pending.swap(still);
      if (pending.empty()) {
        return "";
      }
      if (net.sim().now() >= deadline) {
        return "no intact delivery " + net.host_at(pending.front().src).name() +
               " -> " + net.host_at(pending.front().dst).name() +
               " within the 15s re-registration budget";
      }
    }
  }
};

class PortSanityOracle : public Oracle {
 public:
  std::string name() const override { return "ports"; }
  std::string Check(OracleContext& ctx) override {
    Network& net = *ctx.net;
    std::string detail = Misclassified(net);
    if (detail.empty()) {
      return "";
    }
    // A mis-classified port at the quiescence point is not yet a violation:
    // a link that flapped its way up the skeptic's exponential hold-down is
    // *supposed* to sit below s.switch.good until it has delivered a clean
    // period (section 6.5.5).  The invariant is that no healthy link is
    // held out forever — so grant the skeptic its worst-case budget (both
    // hold-downs can apply in sequence: s.dead -> s.checking, then
    // s.switch.who -> s.switch.good) and re-check as the network runs.
    Tick budget = 10 * kSecond;
    for (int s = 0; s < net.num_switches(); ++s) {
      if (net.switch_alive(s)) {
        const AutopilotConfig& cfg = net.autopilot_at(s).config();
        budget += cfg.status_holddown_max + cfg.conn_holddown_max;
        break;
      }
    }
    Tick waited = 0;
    while (waited < budget) {
      net.Run(kSecond);
      waited += kSecond;
      detail = Misclassified(net);
      if (detail.empty()) {
        return "";
      }
    }
    return detail + " (still after " + FormatTime(waited) +
           " of skeptic budget)";
  }

 private:
  static std::string Misclassified(Network& net) {
    const TopoSpec& spec = net.spec();
    for (std::size_t c = 0; c < spec.cables.size(); ++c) {
      const TopoSpec::CableSpec& cs = spec.cables[c];
      bool ends_alive = net.switch_alive(cs.sw_a) && net.switch_alive(cs.sw_b);
      bool healthy = ends_alive && cs.sw_a != cs.sw_b &&
                     net.cable_at(static_cast<int>(c)).mode() ==
                         LinkMode::kNormal &&
                     net.cable_corruption_rate(static_cast<int>(c)) == 0.0;
      PortState state_a = PortState::kDead;
      PortState state_b = PortState::kDead;
      if (net.switch_alive(cs.sw_a)) {
        state_a = net.autopilot_at(cs.sw_a).port_state(cs.port_a);
      }
      if (net.switch_alive(cs.sw_b)) {
        state_b = net.autopilot_at(cs.sw_b).port_state(cs.port_b);
      }
      if (healthy &&
          (state_a != PortState::kSwitchGood ||
           state_b != PortState::kSwitchGood)) {
        return "healthy cable " + std::to_string(c) + " classified " +
               PortStateName(state_a) + "/" + PortStateName(state_b);
      }
      if (!healthy && ends_alive &&
          net.cable_at(static_cast<int>(c)).mode() == LinkMode::kCut &&
          (state_a == PortState::kSwitchGood ||
           state_b == PortState::kSwitchGood)) {
        return "cut cable " + std::to_string(c) +
               " still classified s.switch.good";
      }
    }
    return "";
  }
};

}  // namespace

int HealthyDiameter(const Network& net) {
  return Diameter(net.HealthyTopology());
}

std::unique_ptr<Oracle> MakeConvergenceOracle() {
  return std::make_unique<ConvergenceOracle>();
}
std::unique_ptr<Oracle> MakeEpochAgreementOracle() {
  return std::make_unique<EpochAgreementOracle>();
}
std::unique_ptr<Oracle> MakeRouteLegalityOracle() {
  return std::make_unique<RouteLegalityOracle>();
}
std::unique_ptr<Oracle> MakeDeadlockFreedomOracle() {
  return std::make_unique<DeadlockFreedomOracle>();
}
std::unique_ptr<Oracle> MakeDeliveryOracle() {
  return std::make_unique<DeliveryOracle>();
}
std::unique_ptr<Oracle> MakePortSanityOracle() {
  return std::make_unique<PortSanityOracle>();
}

std::vector<std::unique_ptr<Oracle>> StandardOracles() {
  std::vector<std::unique_ptr<Oracle>> oracles;
  oracles.push_back(MakeConvergenceOracle());
  oracles.push_back(MakeEpochAgreementOracle());
  oracles.push_back(MakeRouteLegalityOracle());
  oracles.push_back(MakeDeadlockFreedomOracle());
  oracles.push_back(MakeDeliveryOracle());
  oracles.push_back(MakePortSanityOracle());
  return oracles;
}

}  // namespace chaos
}  // namespace autonet
