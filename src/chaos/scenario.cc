#include "src/chaos/scenario.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace autonet {
namespace chaos {

namespace {

Action MakeAction(Action::Kind kind, Tick at, int target,
                  const std::string& pick) {
  Action a;
  a.kind = kind;
  a.at = at;
  a.target = target;
  a.pick = pick;
  return a;
}

}  // namespace

Scenario& Scenario::CutCable(Tick at, int cable, const std::string& pick) {
  actions.push_back(MakeAction(Action::Kind::kCutCable, at, cable, pick));
  return *this;
}

Scenario& Scenario::RestoreCable(Tick at, int cable, const std::string& pick) {
  actions.push_back(MakeAction(Action::Kind::kRestoreCable, at, cable, pick));
  return *this;
}

Scenario& Scenario::CrashSwitch(Tick at, int sw, const std::string& pick) {
  actions.push_back(MakeAction(Action::Kind::kCrashSwitch, at, sw, pick));
  return *this;
}

Scenario& Scenario::RestartSwitch(Tick at, int sw, const std::string& pick) {
  actions.push_back(MakeAction(Action::Kind::kRestartSwitch, at, sw, pick));
  return *this;
}

Scenario& Scenario::CutHostLink(Tick at, int host, int which) {
  Action a = MakeAction(Action::Kind::kCutHostLink, at, host, "");
  a.which = which;
  actions.push_back(a);
  return *this;
}

Scenario& Scenario::RestoreHostLink(Tick at, int host, int which) {
  Action a = MakeAction(Action::Kind::kRestoreHostLink, at, host, "");
  a.which = which;
  actions.push_back(a);
  return *this;
}

Scenario& Scenario::CorruptCable(Tick at, int cable, double rate,
                                 const std::string& pick) {
  Action a = MakeAction(Action::Kind::kCorruptCable, at, cable, pick);
  a.rate = rate;
  actions.push_back(a);
  return *this;
}

Scenario& Scenario::ReflectCable(Tick at, int cable, int side,
                                 const std::string& pick) {
  Action a = MakeAction(Action::Kind::kReflectCable, at, cable, pick);
  a.which = side;
  actions.push_back(a);
  return *this;
}

Scenario& Scenario::FlapCable(Tick from, Tick until, Tick period, int cable,
                              const std::string& pick) {
  Action a = MakeAction(Action::Kind::kFlapCable, from, cable, pick);
  a.period = period;
  a.until = until;
  actions.push_back(a);
  return *this;
}

Scenario& Scenario::BurstCables(Tick at, int count, Tick restore_at) {
  Action a = MakeAction(Action::Kind::kBurstCables, at, kRandomTarget, "");
  a.count = count;
  a.until = restore_at;
  actions.push_back(a);
  return *this;
}

Scenario& Scenario::BurstSwitches(Tick at, int count, Tick restart_at) {
  Action a = MakeAction(Action::Kind::kBurstSwitches, at, kRandomTarget, "");
  a.count = count;
  a.until = restart_at;
  actions.push_back(a);
  return *this;
}

Tick Scenario::ScriptEnd() const {
  Tick end = 0;
  for (const Action& a : actions) {
    end = std::max(end, a.at);
    if (a.kind == Action::Kind::kFlapCable ||
        a.kind == Action::Kind::kBurstCables ||
        a.kind == Action::Kind::kBurstSwitches) {
      end = std::max(end, a.until);
    }
  }
  return end;
}

std::string FormatTime(Tick t) {
  auto exact = [&](Tick unit) { return t % unit == 0; };
  char buf[32];
  if (t != 0 && exact(kSecond)) {
    std::snprintf(buf, sizeof buf, "%llds",
                  static_cast<long long>(t / kSecond));
  } else if (t != 0 && exact(kMillisecond)) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(t / kMillisecond));
  } else if (t != 0 && exact(kMicrosecond)) {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(t / kMicrosecond));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t));
  }
  return buf;
}

namespace {

std::string FormatTarget(const Action& a) {
  if (!a.pick.empty()) {
    return "?" + a.pick;
  }
  return a.target == kRandomTarget ? "random" : std::to_string(a.target);
}

std::string FormatRate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", rate);
  return buf;
}

}  // namespace

std::string Scenario::ToText() const {
  std::ostringstream out;
  out << "scenario " << name << "\n";
  if (workload.enabled()) {
    out << "  workload " << workload.ToText() << "\n";
  }
  if (adversary.enabled()) {
    out << "  adversary " << adversary.ToText() << "\n";
  }
  for (const Action& a : actions) {
    out << "  ";
    switch (a.kind) {
      case Action::Kind::kCutCable:
        out << "at " << FormatTime(a.at) << " cut cable " << FormatTarget(a);
        break;
      case Action::Kind::kRestoreCable:
        out << "at " << FormatTime(a.at) << " restore cable "
            << FormatTarget(a);
        break;
      case Action::Kind::kCrashSwitch:
        out << "at " << FormatTime(a.at) << " crash switch "
            << FormatTarget(a);
        break;
      case Action::Kind::kRestartSwitch:
        out << "at " << FormatTime(a.at) << " restart switch "
            << FormatTarget(a);
        break;
      case Action::Kind::kCutHostLink:
        out << "at " << FormatTime(a.at) << " cut hostlink "
            << FormatTarget(a) << (a.which == 0 ? " primary" : " alternate");
        break;
      case Action::Kind::kRestoreHostLink:
        out << "at " << FormatTime(a.at) << " restore hostlink "
            << FormatTarget(a) << (a.which == 0 ? " primary" : " alternate");
        break;
      case Action::Kind::kCorruptCable:
        out << "at " << FormatTime(a.at) << " corrupt cable "
            << FormatTarget(a) << " rate " << FormatRate(a.rate);
        break;
      case Action::Kind::kReflectCable:
        out << "at " << FormatTime(a.at) << " reflect cable "
            << FormatTarget(a) << " side " << (a.which == 0 ? "a" : "b");
        break;
      case Action::Kind::kFlapCable:
        out << "flap cable " << FormatTarget(a) << " period "
            << FormatTime(a.period) << " from " << FormatTime(a.at)
            << " until " << FormatTime(a.until);
        break;
      case Action::Kind::kBurstCables:
        out << "at " << FormatTime(a.at) << " burst cables " << a.count
            << " until " << FormatTime(a.until);
        break;
      case Action::Kind::kBurstSwitches:
        out << "at " << FormatTime(a.at) << " burst switches " << a.count;
        if (a.until >= a.at) {
          out << " until " << FormatTime(a.until);
        }
        break;
    }
    out << "\n";
  }
  return out.str();
}

// --- parser ---

namespace {

// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : line) {
    if (c == '#') {
      break;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        tokens.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    tokens.push_back(std::move(cur));
  }
  return tokens;
}

bool ParseTimeLiteral(const std::string& tok, Tick* out) {
  std::size_t i = 0;
  while (i < tok.size() &&
         (std::isdigit(static_cast<unsigned char>(tok[i])) || tok[i] == '.')) {
    ++i;
  }
  if (i == 0 || i == tok.size()) {
    return false;
  }
  double value;
  try {
    std::size_t consumed;
    value = std::stod(tok.substr(0, i), &consumed);
    if (consumed != i) {
      return false;
    }
  } catch (...) {
    return false;
  }
  std::string unit = tok.substr(i);
  double scale;
  if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = kMicrosecond;
  } else if (unit == "ms") {
    scale = kMillisecond;
  } else if (unit == "s") {
    scale = kSecond;
  } else {
    return false;
  }
  *out = static_cast<Tick>(std::llround(value * scale));
  return true;
}

// `random`, `?name`, or a non-negative index.
bool ParseTarget(const std::string& tok, int* target, std::string* pick) {
  *target = kRandomTarget;
  pick->clear();
  if (tok == "random") {
    return true;
  }
  if (tok.size() > 1 && tok[0] == '?') {
    *pick = tok.substr(1);
    return true;
  }
  try {
    std::size_t consumed;
    int v = std::stoi(tok, &consumed);
    if (consumed != tok.size() || v < 0) {
      return false;
    }
    *target = v;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::vector<Scenario> ParseScenarios(const std::string& text,
                                     std::string* error) {
  std::vector<Scenario> scenarios;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::vector<Scenario>();
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> t = Tokenize(line);
    if (t.empty()) {
      continue;
    }
    if (t[0] == "scenario") {
      if (t.size() != 2) {
        return fail("expected: scenario <name>");
      }
      scenarios.push_back(Scenario{t[1], {}, {}, {}});
      continue;
    }
    if (scenarios.empty()) {
      return fail("statement before any 'scenario' header");
    }
    Scenario& s = scenarios.back();

    if (t[0] == "workload") {
      std::string why;
      if (!workload::ParseSpec(t, 1, &s.workload, &why)) {
        return fail(why);
      }
      continue;
    }

    if (t[0] == "adversary") {
      std::string why;
      if (!adversary::ParseSpec(t, 1, &s.adversary, &why)) {
        return fail(why);
      }
      continue;
    }

    if (t[0] == "flap") {
      // flap cable <target> period <time> from <time> until <time>
      Action a;
      a.kind = Action::Kind::kFlapCable;
      if (t.size() != 9 || t[1] != "cable" || t[3] != "period" ||
          t[5] != "from" || t[7] != "until" ||
          !ParseTarget(t[2], &a.target, &a.pick) ||
          !ParseTimeLiteral(t[4], &a.period) ||
          !ParseTimeLiteral(t[6], &a.at) ||
          !ParseTimeLiteral(t[8], &a.until)) {
        return fail(
            "expected: flap cable <target> period <t> from <t> until <t>");
      }
      if (a.period <= 0) {
        return fail("flap period must be positive");
      }
      s.actions.push_back(a);
      continue;
    }

    if (t[0] != "at" || t.size() < 3) {
      return fail("expected: at <time> <action> ...");
    }
    Tick at;
    if (!ParseTimeLiteral(t[1], &at)) {
      return fail("bad time literal '" + t[1] + "'");
    }
    const std::string& verb = t[2];

    if ((verb == "cut" || verb == "restore") && t.size() >= 4 &&
        t[3] == "cable") {
      Action a;
      a.kind = verb == "cut" ? Action::Kind::kCutCable
                             : Action::Kind::kRestoreCable;
      a.at = at;
      if (t.size() != 5 || !ParseTarget(t[4], &a.target, &a.pick)) {
        return fail("expected: at <time> " + verb + " cable <target>");
      }
      s.actions.push_back(a);
    } else if ((verb == "crash" || verb == "restart") && t.size() == 5 &&
               t[3] == "switch") {
      Action a;
      a.kind = verb == "crash" ? Action::Kind::kCrashSwitch
                               : Action::Kind::kRestartSwitch;
      a.at = at;
      if (!ParseTarget(t[4], &a.target, &a.pick)) {
        return fail("bad switch target '" + t[4] + "'");
      }
      s.actions.push_back(a);
    } else if ((verb == "cut" || verb == "restore") && t.size() == 6 &&
               t[3] == "hostlink") {
      Action a;
      a.kind = verb == "cut" ? Action::Kind::kCutHostLink
                             : Action::Kind::kRestoreHostLink;
      a.at = at;
      if (!ParseTarget(t[4], &a.target, &a.pick)) {
        return fail("bad host target '" + t[4] + "'");
      }
      if (t[5] == "primary") {
        a.which = 0;
      } else if (t[5] == "alternate") {
        a.which = 1;
      } else {
        return fail("expected 'primary' or 'alternate'");
      }
      s.actions.push_back(a);
    } else if (verb == "corrupt" && t.size() == 7 && t[3] == "cable" &&
               t[5] == "rate") {
      Action a;
      a.kind = Action::Kind::kCorruptCable;
      a.at = at;
      if (!ParseTarget(t[4], &a.target, &a.pick)) {
        return fail("bad cable target '" + t[4] + "'");
      }
      try {
        a.rate = std::stod(t[6]);
      } catch (...) {
        return fail("bad corruption rate '" + t[6] + "'");
      }
      if (a.rate < 0.0 || a.rate > 1.0) {
        return fail("corruption rate must be in [0, 1]");
      }
      s.actions.push_back(a);
    } else if (verb == "reflect" && t.size() == 7 && t[3] == "cable" &&
               t[5] == "side") {
      Action a;
      a.kind = Action::Kind::kReflectCable;
      a.at = at;
      if (!ParseTarget(t[4], &a.target, &a.pick)) {
        return fail("bad cable target '" + t[4] + "'");
      }
      if (t[6] == "a") {
        a.which = 0;
      } else if (t[6] == "b") {
        a.which = 1;
      } else {
        return fail("expected side 'a' or 'b'");
      }
      s.actions.push_back(a);
    } else if (verb == "burst" && t.size() >= 5 && t[3] == "cables") {
      Action a;
      a.kind = Action::Kind::kBurstCables;
      a.at = at;
      if (t.size() != 7 || t[5] != "until" ||
          !ParseTimeLiteral(t[6], &a.until)) {
        return fail("expected: at <time> burst cables <count> until <time>");
      }
      try {
        a.count = std::stoi(t[4]);
      } catch (...) {
        return fail("bad burst count '" + t[4] + "'");
      }
      if (a.count < 1) {
        return fail("burst count must be >= 1");
      }
      s.actions.push_back(a);
    } else if (verb == "burst" && t.size() >= 5 && t[3] == "switches") {
      Action a;
      a.kind = Action::Kind::kBurstSwitches;
      a.at = at;
      a.until = -1;  // never restart by default
      if (t.size() == 7 && t[5] == "until") {
        if (!ParseTimeLiteral(t[6], &a.until)) {
          return fail("bad time literal '" + t[6] + "'");
        }
      } else if (t.size() != 5) {
        return fail(
            "expected: at <time> burst switches <count> [until <time>]");
      }
      try {
        a.count = std::stoi(t[4]);
      } catch (...) {
        return fail("bad burst count '" + t[4] + "'");
      }
      if (a.count < 1) {
        return fail("burst count must be >= 1");
      }
      s.actions.push_back(a);
    } else {
      return fail("unrecognized action '" + verb + "'");
    }
  }
  if (error != nullptr) {
    error->clear();
  }
  return scenarios;
}

}  // namespace chaos
}  // namespace autonet
