#include "src/chaos/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "src/adversary/adversary.h"
#include "src/chaos/executor.h"
#include "src/obs/json.h"
#include "src/obs/postmortem.h"
#include "src/workload/engine.h"

namespace autonet {
namespace chaos {

namespace {

std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t Fnv1a(std::uint64_t h, const std::string& s) {
  return Fnv1a(h, s.data(), s.size());
}

std::uint64_t HashMergedLog(const Network& net) {
  std::uint64_t h = 1469598103934665603ull;
  for (const LogEntry& e : net.MergedLog()) {
    h = Fnv1a(h, &e.time, sizeof e.time);
    h = Fnv1a(h, e.node);
    h = Fnv1a(h, e.message);
  }
  return h;
}

std::string HexU64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double WallMsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

TopoSpec TopologyByName(const std::string& name, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  if (name == "line6") {
    return MakeLine(6, 1);
  }
  if (name == "ring8") {
    return MakeRing(8, 1);
  }
  if (name == "torus3x3") {
    return MakeTorus(3, 3, 1);
  }
  if (name == "torus4x4") {
    return MakeTorus(4, 4, 1);
  }
  if (name == "tree2x3") {
    return MakeTree(2, 3, 1);
  }
  if (name == "random12") {
    return MakeRandom(12, 4, /*seed=*/7, 1);
  }
  if (name == "srclan16") {
    return MakeSrcLan(16);
  }
  if (name == "small3") {
    // A triangle: the smallest topology where a cut leaves redundancy (the
    // SLO smoke topology — a cable cut must be a pause, not a partition).
    TopoSpec spec;
    spec.AddSwitch("s0");
    spec.AddSwitch("s1");
    spec.AddSwitch("s2");
    spec.Cable(0, 1);
    spec.Cable(1, 2);
    spec.Cable(0, 2);
    spec.AddHost(0);
    spec.AddHost(1);
    spec.AddHost(2);
    return spec;
  }
  if (error != nullptr) {
    *error = "unknown topology '" + name + "'";
  }
  return TopoSpec();
}

std::vector<std::string> StandardTopologyNames() {
  return {"line6", "ring8", "torus3x3"};
}

std::vector<std::string> AllTopologyNames() {
  return {"line6",    "ring8",    "torus3x3", "torus4x4",
          "tree2x3",  "random12", "srclan16", "small3"};
}

RunResult RunOne(const CampaignConfig& config, const Scenario& scenario,
                 const TopologyCase& topo, std::uint64_t seed,
                 obs::MetricRegistry* merge_metrics) {
  auto t0 = std::chrono::steady_clock::now();
  RunResult result;
  result.scenario = scenario.name;
  result.topology = topo.name;
  result.seed = seed;

  // Scenario-level workload wins; a campaign-level one must appear in the
  // reproducer line (a scenario-level one replays from the scenario text).
  const workload::Spec& wl =
      scenario.workload.enabled() ? scenario.workload : config.workload;
  const adversary::Spec& adv =
      scenario.adversary.enabled() ? scenario.adversary : config.adversary;
  std::string reproducer = config.reproducer_stem + " --scenario " +
                           scenario.name + " --topo " + topo.name +
                           " --seed " + std::to_string(seed);
  if (config.workload.enabled() && !scenario.workload.enabled()) {
    reproducer += " --workload '" + config.workload.ToText() + "'";
  }
  if (config.adversary.enabled() && !scenario.adversary.enabled()) {
    reproducer += " --adversary '" + config.adversary.ToText() + "'";
  }
  auto violate = [&](const std::string& oracle, const std::string& detail) {
    result.violations.push_back({oracle, detail, reproducer, "", ""});
  };

  Network net(topo.spec, config.network);
  // Arm the flight recorder for every run: recording writes only to the
  // recorder's own rings, so the log and metrics fingerprints are
  // unaffected, and a failed run can be explained post mortem.
  net.sim().flight().Arm();
  // On failure, stamp every violation with the reconstructed epoch
  // timeline and the blame chain of the epoch the oracles judged.
  auto attach_postmortem = [&] {
    if (result.violations.empty()) {
      return;
    }
    obs::PostMortem pm = obs::PostMortem::Build(net.sim().flight());
    std::string timeline = pm.RenderText();
    std::string blame =
        pm.epochs().empty() ? "" : pm.epochs().back().BlameChain();
    for (Violation& v : result.violations) {
      v.blame = blame;
      v.timeline = timeline;
    }
  };
  net.Boot();

  // Bootstrap: the fault script is judged from a converged baseline, so a
  // violation means the *script's* consequences broke an invariant rather
  // than a cold-boot race.
  Tick boot_deadline = config.convergence_base +
                       config.convergence_per_hop * HealthyDiameter(net);
  if (!net.WaitForConsistency(boot_deadline, config.quiet)) {
    violate("bootstrap", "no consistent boot configuration by t=" +
                             FormatTime(boot_deadline));
    attach_postmortem();
    result.ok = false;
    result.wall_ms = WallMsSince(t0);
    return result;
  }
  net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond);

  // Workload phase 1: steady state — the latency baseline and the proof
  // that a quiet network has zero outage windows.
  std::unique_ptr<workload::WorkloadEngine> engine;
  if (wl.enabled()) {
    engine = std::make_unique<workload::WorkloadEngine>(
        &net, wl, config.slo_budget, HealthyDiameter(net));
    engine->Start();
    net.Run(config.slo_steady);
    engine->SetPhase(workload::Phase::kFault);
  }

  ScenarioExecutor executor(&net, scenario, seed);
  Tick script_start = net.sim().now();
  executor.Schedule(script_start);
  // The adversary engine is armed at script start and polls live network
  // state; the run must be driven until it retires (its final heal executes
  // at end()), so the oracle battery judges the network, not an unfinished
  // attack.
  std::unique_ptr<adversary::Engine> adv_engine;
  if (adv.enabled()) {
    adv_engine = std::make_unique<adversary::Engine>(&net, adv, seed);
    adv_engine->Arm(script_start);
  }
  Tick run_until = executor.script_end();
  if (adv_engine != nullptr) {
    run_until = std::max(run_until, adv_engine->end());
  }
  if (run_until > net.sim().now()) {
    net.Run(run_until - net.sim().now());
  }
  result.resolved_actions = executor.resolved();

  OracleContext ctx;
  ctx.net = &net;
  ctx.quiet = config.quiet;
  ctx.deadline = net.sim().now() + config.convergence_base +
                 config.convergence_per_hop * HealthyDiameter(net);

  std::vector<std::unique_ptr<Oracle>> oracles =
      config.oracles ? config.oracles() : StandardOracles();
  for (const auto& oracle : oracles) {
    std::string detail = oracle->Check(ctx);
    if (!detail.empty()) {
      violate(oracle->name(), detail);
    }
  }

  // Workload phases 2+3: the fault phase ran concurrently with the script
  // and the oracle battery's wait for quiescence; now sample recovery,
  // drain, and judge the SLOs.  A run that never converged is judged by the
  // convergence oracle alone — its SLO numbers are reported but not judged
  // (there is no "after quiescence" to hold the workload to).
  if (engine != nullptr) {
    if (ctx.converged_at >= 0) {
      engine->SetPhase(workload::Phase::kRecovery);
      net.Run(config.slo_recovery);
    }
    engine->Stop();
    Tick drain_deadline = net.sim().now() + config.slo_drain;
    while (!engine->Drained() && net.sim().now() < drain_deadline) {
      net.Run(10 * kMillisecond);
    }
    workload::SloReport slo = engine->Finalize();
    result.workload = wl.ToText();
    result.slo_json = slo.ToJson();
    result.slo_max_outage_ms = slo.max_outage_ms;
    result.slo_steady_p999_ms = slo.steady_latency_ms.Percentile(99.9);
    result.slo_recovery_p999_ms = slo.recovery_latency_ms.Percentile(99.9);
    result.slo_ops = slo.completed;
    result.slo_recovery_lost = slo.recovery_lost;
    result.slo_outage_windows = slo.outage_windows;
    if (ctx.converged_at >= 0) {
      for (const auto& [oracle, detail] : workload::JudgeSlo(slo)) {
        violate(oracle, detail);
      }
    }
  }
  if (adv_engine != nullptr) {
    result.adversary = adv.ToText();
    result.adversary_transcript = adv_engine->transcript();
    result.adversary_hash = adv_engine->TranscriptHash();
    result.adversary_moves = adv_engine->moves_made();
  }
  attach_postmortem();

  if (ctx.converged_at >= 0) {
    result.converge_ms =
        static_cast<double>(ctx.converged_at - script_start) / 1e6;
  }
  Tick wave = net.LastReconfig().Duration();
  if (wave >= 0) {
    result.reconfig_ms = static_cast<double>(wave) / 1e6;
  }

  result.log_hash = HashMergedLog(net);
  result.metrics_hash =
      Fnv1a(1469598103934665603ull, net.DumpMetricsJson());
  if (merge_metrics != nullptr) {
    merge_metrics->MergeFrom(net.sim().metrics());
  }
  result.ok = result.violations.empty();
  result.wall_ms = WallMsSince(t0);
  return result;
}

CampaignReport RunCampaign(const CampaignConfig& config) {
  auto t0 = std::chrono::steady_clock::now();
  CampaignReport report;

  struct RunKey {
    const Scenario* scenario;
    const TopologyCase* topo;
    std::uint64_t seed;
  };
  std::vector<RunKey> keys;
  for (const Scenario& s : config.scenarios) {
    for (const TopologyCase& t : config.topologies) {
      for (std::uint64_t seed : config.seeds) {
        keys.push_back({&s, &t, seed});
      }
    }
  }
  report.runs.resize(keys.size());

  int jobs = config.jobs > 0
                 ? config.jobs
                 : static_cast<int>(std::thread::hardware_concurrency());
  jobs = std::max(1, std::min<int>(jobs, static_cast<int>(keys.size())));
  report.jobs = jobs;

  // Work-stealing over the flattened run list.  Each worker owns a metric
  // registry; results land in distinct slots.  No locks anywhere on the run
  // path.
  std::atomic<std::size_t> next{0};
  std::vector<obs::MetricRegistry> worker_metrics(jobs);
  auto worker = [&](int w) {
    for (;;) {
      std::size_t i = next.fetch_add(1);
      if (i >= keys.size()) {
        return;
      }
      const RunKey& key = keys[i];
      report.runs[i] = RunOne(config, *key.scenario, *key.topo, key.seed,
                              &worker_metrics[w]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back(worker, w);
  }
  for (std::thread& t : pool) {
    t.join();
  }

  for (const obs::MetricRegistry& m : worker_metrics) {
    report.metrics.MergeFrom(m);
  }
  for (const RunResult& r : report.runs) {
    if (r.ok) {
      ++report.passed;
    } else {
      ++report.failed;
    }
    if (r.reconfig_ms >= 0) {
      report.reconfig_ms.Add(r.reconfig_ms);
    }
    if (r.converge_ms >= 0) {
      report.converge_ms.Add(r.converge_ms);
    }
    if (!r.workload.empty() && r.slo_max_outage_ms >= 0) {
      report.slo_outage_ms.Add(r.slo_max_outage_ms);
    }
    report.run_wall_ms.Add(r.wall_ms);
  }
  report.wall_ms = WallMsSince(t0);
  return report;
}

std::vector<std::string> CampaignReport::ReproducerLines() const {
  std::vector<std::string> lines;
  for (const RunResult& r : runs) {
    for (const Violation& v : r.violations) {
      lines.push_back(v.reproducer);
    }
  }
  return lines;
}

namespace {

void WriteHistogram(JsonWriter& w, const char* key, const Histogram& h) {
  w.Key(key).BeginObject();
  w.Key("count").UInt(h.count());
  w.Key("min").Number(h.Min());
  w.Key("max").Number(h.Max());
  w.Key("mean").Number(h.Mean());
  w.Key("p50").Number(h.Percentile(50));
  w.Key("p99").Number(h.Percentile(99));
  w.EndObject();
}

}  // namespace

std::string CampaignReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();

  w.Key("campaign").BeginObject();
  w.Key("runs").UInt(runs.size());
  w.Key("passed").Int(passed);
  w.Key("failed").Int(failed);
  w.Key("jobs").Int(jobs);
  w.Key("wall_ms").Number(wall_ms);
  if (jobs1_wall_ms >= 0) {
    w.Key("jobs1_wall_ms").Number(jobs1_wall_ms);
    w.Key("speedup_vs_jobs1")
        .Number(wall_ms > 0 ? jobs1_wall_ms / wall_ms : 0.0);
  }
  w.EndObject();

  // Violation counts per oracle, then the individual violations with their
  // reproducer lines (the campaign's actionable output).
  std::map<std::string, int> per_oracle;
  for (const RunResult& r : runs) {
    for (const Violation& v : r.violations) {
      ++per_oracle[v.oracle];
    }
  }
  w.Key("oracle_violations").BeginObject();
  for (const auto& [oracle, count] : per_oracle) {
    w.Key(oracle).Int(count);
  }
  w.EndObject();

  w.Key("violations").BeginArray();
  for (const RunResult& r : runs) {
    for (const Violation& v : r.violations) {
      w.BeginObject();
      w.Key("scenario").String(r.scenario);
      w.Key("topology").String(r.topology);
      w.Key("seed").UInt(r.seed);
      w.Key("oracle").String(v.oracle);
      w.Key("detail").String(v.detail);
      w.Key("reproducer").String(v.reproducer);
      w.Key("blame").String(v.blame);
      w.Key("timeline").String(v.timeline);
      w.EndObject();
    }
  }
  w.EndArray();

  w.Key("timings").BeginObject();
  WriteHistogram(w, "reconfig_ms", reconfig_ms);
  WriteHistogram(w, "converge_ms", converge_ms);
  WriteHistogram(w, "run_wall_ms", run_wall_ms);
  if (slo_outage_ms.count() > 0) {
    WriteHistogram(w, "slo_outage_ms", slo_outage_ms);
  }
  w.EndObject();

  w.Key("runs").BeginArray();
  for (const RunResult& r : runs) {
    w.BeginObject();
    w.Key("scenario").String(r.scenario);
    w.Key("topology").String(r.topology);
    w.Key("seed").UInt(r.seed);
    w.Key("ok").Bool(r.ok);
    w.Key("converge_ms").Number(r.converge_ms);
    w.Key("reconfig_ms").Number(r.reconfig_ms);
    w.Key("log_hash").String(HexU64(r.log_hash));
    w.Key("metrics_hash").String(HexU64(r.metrics_hash));
    w.Key("wall_ms").Number(r.wall_ms);
    if (!r.workload.empty()) {
      // Resolved workload + full SLO accounting, embedded per run so a
      // report is self-describing about what load the verdicts were under.
      w.Key("workload").String(r.workload);
      w.Key("slo").Raw(r.slo_json);
    }
    if (!r.adversary.empty()) {
      // The armed adversary and its full move transcript, embedded per run
      // so an adversarial report is self-describing about what the network
      // survived (or didn't).
      w.Key("adversary").String(r.adversary);
      w.Key("adversary_hash").String(HexU64(r.adversary_hash));
      w.Key("adversary_moves").Int(r.adversary_moves);
      w.Key("adversary_transcript").BeginArray();
      for (const std::string& line : r.adversary_transcript) {
        w.String(line);
      }
      w.EndArray();
    }
    w.Key("actions").BeginArray();
    for (const std::string& a : r.resolved_actions) {
      w.String(a);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics").Raw(metrics.SnapshotJson());
  w.EndObject();
  return w.Take();
}

bool CampaignReport::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace chaos
}  // namespace autonet
