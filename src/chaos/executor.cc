#include "src/chaos/executor.h"

#include <algorithm>

namespace autonet {
namespace chaos {

namespace {

// Mixes the scenario name into the run seed so the same seed produces
// independent victim choices in different scenarios while staying fully
// determined by (scenario, seed).
std::uint64_t MixSeed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h ^ seed;
}

}  // namespace

ScenarioExecutor::ScenarioExecutor(Network* net, const Scenario& scenario,
                                   std::uint64_t seed)
    : net_(net), scenario_(scenario), rng_(MixSeed(seed, scenario.name)) {
  // Resolve every target up front, in script order, so resolution is a pure
  // function of (scenario, topology shape, seed) and does not depend on how
  // the simulation interleaves the scheduled actions.
  targets_.reserve(scenario_.actions.size());
  burst_targets_.resize(scenario_.actions.size());
  for (std::size_t i = 0; i < scenario_.actions.size(); ++i) {
    const Action& a = scenario_.actions[i];
    switch (a.kind) {
      case Action::Kind::kCrashSwitch:
      case Action::Kind::kRestartSwitch:
        targets_.push_back(Resolve(a, Domain::kSwitch));
        break;
      case Action::Kind::kCutHostLink:
      case Action::Kind::kRestoreHostLink:
        targets_.push_back(Resolve(a, Domain::kHost));
        break;
      case Action::Kind::kBurstCables:
        targets_.push_back(-1);
        burst_targets_[i] = ResolveDistinct(a.count, Domain::kCable);
        break;
      case Action::Kind::kBurstSwitches:
        targets_.push_back(-1);
        burst_targets_[i] = ResolveDistinct(a.count, Domain::kSwitch);
        break;
      default:
        targets_.push_back(Resolve(a, Domain::kCable));
        break;
    }
  }
  // The human-readable record is part of resolution, not execution: it is
  // identical across replays whether or not the script ever runs.
  for (std::size_t i = 0; i < scenario_.actions.size(); ++i) {
    Describe(scenario_.actions[i], i);
  }
}

void ScenarioExecutor::Describe(const Action& a, std::size_t index) {
  int target = targets_[index];
  std::string desc = "t=" + FormatTime(a.at) + " ";
  switch (a.kind) {
    case Action::Kind::kCutCable:
      desc += "cut cable " + std::to_string(target);
      break;
    case Action::Kind::kRestoreCable:
      desc += "restore cable " + std::to_string(target);
      break;
    case Action::Kind::kCrashSwitch:
      desc += "crash switch " + std::to_string(target);
      break;
    case Action::Kind::kRestartSwitch:
      desc += "restart switch " + std::to_string(target);
      break;
    case Action::Kind::kCutHostLink:
      desc += "cut hostlink " + std::to_string(target) +
              (a.which == 0 ? " primary" : " alternate");
      break;
    case Action::Kind::kRestoreHostLink:
      desc += "restore hostlink " + std::to_string(target) +
              (a.which == 0 ? " primary" : " alternate");
      break;
    case Action::Kind::kCorruptCable:
      desc += "corrupt cable " + std::to_string(target) + " rate " +
              std::to_string(a.rate);
      break;
    case Action::Kind::kReflectCable:
      desc += "reflect cable " + std::to_string(target) + " side " +
              (a.which == 0 ? "a" : "b");
      break;
    case Action::Kind::kFlapCable:
      desc += "flap cable " + std::to_string(target) + " period " +
              FormatTime(a.period) + " until " + FormatTime(a.until);
      break;
    case Action::Kind::kBurstCables:
      for (int cable : burst_targets_[index]) {
        resolved_.push_back("t=" + FormatTime(a.at) + " burst-cut cable " +
                            std::to_string(cable) + " until " +
                            FormatTime(a.until));
      }
      return;
    case Action::Kind::kBurstSwitches:
      for (int sw : burst_targets_[index]) {
        resolved_.push_back("t=" + FormatTime(a.at) + " burst-crash switch " +
                            std::to_string(sw) +
                            (a.until >= a.at ? " until " + FormatTime(a.until)
                                             : std::string()));
      }
      return;
  }
  if (target >= 0) {
    resolved_.push_back(std::move(desc));
  }
}

int ScenarioExecutor::DomainSize(Domain domain) const {
  switch (domain) {
    case Domain::kCable:
      return static_cast<int>(net_->spec().cables.size());
    case Domain::kSwitch:
      return net_->num_switches();
    case Domain::kHost:
      return net_->num_hosts();
  }
  return 0;
}

int ScenarioExecutor::Resolve(const Action& a, Domain domain) {
  int n = DomainSize(domain);
  if (n == 0) {
    return -1;
  }
  if (!a.pick.empty()) {
    auto key = std::make_pair(static_cast<int>(domain), a.pick);
    auto it = picks_.find(key);
    if (it != picks_.end()) {
      return it->second;
    }
    int chosen = static_cast<int>(rng_.UniformInt(0, n - 1));
    picks_.emplace(key, chosen);
    return chosen;
  }
  if (a.target == kRandomTarget) {
    return static_cast<int>(rng_.UniformInt(0, n - 1));
  }
  return a.target % n;
}

std::vector<int> ScenarioExecutor::ResolveDistinct(int count, Domain domain) {
  int n = DomainSize(domain);
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) {
    all[i] = i;
  }
  // Partial Fisher-Yates driven by the run rng.
  count = std::min(count, n);
  for (int i = 0; i < count; ++i) {
    int j = static_cast<int>(rng_.UniformInt(i, n - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

void ScenarioExecutor::Schedule(Tick start) {
  start_ = start;
  Simulator& sim = net_->sim();
  for (std::size_t i = 0; i < scenario_.actions.size(); ++i) {
    const Action a = scenario_.actions[i];
    int target = targets_[i];
    switch (a.kind) {
      case Action::Kind::kFlapCable:
        if (target >= 0) {
          sim.ScheduleAt(start_ + a.at, [this, target, a] {
            FlapStep(target, a.period, start_ + a.until, /*cut_next=*/true);
          });
        }
        break;
      case Action::Kind::kBurstCables:
        for (int cable : burst_targets_[i]) {
          sim.ScheduleAt(start_ + a.at, [this, cable] {
            net_->CutCable(cable);
          });
          sim.ScheduleAt(start_ + std::max(a.until, a.at), [this, cable] {
            net_->RestoreCable(cable);
          });
        }
        break;
      case Action::Kind::kBurstSwitches:
        for (int sw : burst_targets_[i]) {
          sim.ScheduleAt(start_ + a.at, [this, sw] {
            net_->CrashSwitch(sw);
          });
          if (a.until >= a.at) {
            sim.ScheduleAt(start_ + a.until, [this, sw] {
              net_->RestartSwitch(sw);
            });
          }
        }
        break;
      default:
        if (target >= 0) {
          Execute(a, target);  // records + schedules the single action
        }
        break;
    }
  }
}

void ScenarioExecutor::Execute(const Action& a, int target) {
  Simulator& sim = net_->sim();
  switch (a.kind) {
    case Action::Kind::kCutCable:
      sim.ScheduleAt(start_ + a.at, [this, target] {
        net_->CutCable(target);
      });
      break;
    case Action::Kind::kRestoreCable:
      sim.ScheduleAt(start_ + a.at, [this, target] {
        net_->RestoreCable(target);
      });
      break;
    case Action::Kind::kCrashSwitch:
      sim.ScheduleAt(start_ + a.at, [this, target] {
        net_->CrashSwitch(target);
      });
      break;
    case Action::Kind::kRestartSwitch:
      sim.ScheduleAt(start_ + a.at, [this, target] {
        net_->RestartSwitch(target);
      });
      break;
    case Action::Kind::kCutHostLink:
      sim.ScheduleAt(start_ + a.at, [this, target, a] {
        net_->CutHostLink(target, a.which);
      });
      break;
    case Action::Kind::kRestoreHostLink:
      sim.ScheduleAt(start_ + a.at, [this, target, a] {
        net_->RestoreHostLink(target, a.which);
      });
      break;
    case Action::Kind::kCorruptCable:
      sim.ScheduleAt(start_ + a.at, [this, target, a] {
        net_->SetCableCorruptionRate(target, a.rate);
      });
      break;
    case Action::Kind::kReflectCable:
      sim.ScheduleAt(start_ + a.at, [this, target, a] {
        net_->SetCableReflecting(target, a.which == 0 ? Link::Side::kA
                                                      : Link::Side::kB);
      });
      break;
    default:
      break;  // flap/burst handled by Schedule()
  }
}

void ScenarioExecutor::FlapStep(int cable, Tick period, Tick until,
                                bool cut_next) {
  Simulator& sim = net_->sim();
  if (sim.now() > until) {
    net_->RestoreCable(cable);  // always leave the link repaired
    return;
  }
  if (cut_next) {
    net_->CutCable(cable);
  } else {
    net_->RestoreCable(cable);
  }
  sim.ScheduleAfter(period, [this, cable, period, until, cut_next] {
    FlapStep(cable, period, until, !cut_next);
  });
}

}  // namespace chaos
}  // namespace autonet
