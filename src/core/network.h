// The top-level harness: instantiates a whole Autonet — switches with
// Autopilot control programs, point-to-point links, dual-homed host
// controllers with failover drivers — from a TopoSpec on one simulator, and
// provides fault injection (cut/restore cables, crash/restart switches,
// reflecting links), convergence detection, and consistency checking.
//
// This is the public entry point a user of the library starts from; see
// examples/quickstart.cc.
#ifndef SRC_CORE_NETWORK_H_
#define SRC_CORE_NETWORK_H_

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/autopilot/autopilot.h"
#include "src/fabric/switch.h"
#include "src/host/controller.h"
#include "src/host/driver.h"
#include "src/link/link.h"
#include "src/sim/simulator.h"
#include "src/topo/spec.h"

namespace autonet {

// Client deliveries with this ether type are routed to the client delivery
// hook only and are never collected into the per-host inboxes, so a
// saturating hook-driven workload cannot evict the probe traffic that tests
// and oracles read from the inboxes.  (The workload engine sends under this
// type; see src/workload/engine.h.)
inline constexpr std::uint16_t kHookOnlyEtherType = 0xAE70;

struct NetworkConfig {
  AutopilotConfig autopilot;       // defaults to the tuned generation
  Switch::Config switch_config;
  HostController::Config host_config;
  AutonetDriver::Config driver_config;
  bool start_drivers = true;       // hosts register automatically on Boot()
  bool collect_deliveries = true;  // keep per-host inboxes for tests/benches
  std::size_t inbox_limit = 4096;
};

class Network {
 public:
  explicit Network(TopoSpec spec);
  Network(TopoSpec spec, NetworkConfig config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }
  const TopoSpec& spec() const { return spec_; }

  int num_switches() const { return static_cast<int>(switches_.size()); }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Switch& switch_at(int i) { return *switches_[i]; }
  Autopilot& autopilot_at(int i) { return *autopilots_[i]; }
  HostController& host_at(int i) { return *hosts_[i]; }
  AutonetDriver& driver_at(int i) { return *drivers_[i]; }
  Link& cable_at(int i) { return *cables_[i]; }
  Link& host_link(int host, int which) { return *host_links_[host][which]; }

  // Boots every switch control program and starts every host driver.
  void Boot();

  // Runs the simulation until the control plane has been quiescent (no
  // reconfiguration in progress, no reliable messages outstanding, no table
  // loads) for `quiet`, or until the deadline.  Returns true on
  // convergence.
  bool WaitForConvergence(Tick deadline, Tick quiet = 100 * kMillisecond);

  // Like WaitForConvergence, but keeps waiting (e.g. for skeptic holddowns
  // to be served) until CheckConsistency() passes or the deadline expires.
  bool WaitForConsistency(Tick deadline, Tick quiet = 100 * kMillisecond);

  // Waits until every host whose active switch is alive has learned its
  // short address from that switch.
  bool WaitForHostsRegistered(Tick deadline);

  // Runs the simulation for the given duration.
  void Run(Tick duration) { sim_.RunUntil(sim_.now() + duration); }

  // Empty string when the converged control plane is consistent: all alive
  // switches agree on the epoch and topology, the topology matches the
  // healthy part of the spec, every pair of hosts is routed, and the
  // channel dependency graph is acyclic.
  std::string CheckConsistency();

  // --- fault injection ---
  void CutCable(int cable);
  void RestoreCable(int cable);
  void SetCableReflecting(int cable, Link::Side powered_side);
  // Marginal-link model: probability that any individual byte transmitted on
  // the cable is damaged in flight (surfaces as CRC failures / BadCode at
  // the receiver).  Rate 0 heals the link.
  void SetCableCorruptionRate(int cable, double per_byte_probability);
  double cable_corruption_rate(int cable) const {
    return cable_corruption_[cable];
  }
  void CutHostLink(int host, int which);
  void RestoreHostLink(int host, int which);
  // Marginal host link (which: 0 primary, 1 alternate).
  void SetHostLinkCorruptionRate(int host, int which,
                                 double per_byte_probability);
  void CrashSwitch(int i);
  void RestartSwitch(int i);
  bool switch_alive(int i) const { return alive_[i]; }

  // Bumped by every fault-injection call above.  Clients caching state
  // derived from the fault set (e.g. the components of HealthyTopology())
  // can key the cache on this instead of re-deriving per query.
  std::uint64_t fault_generation() const { return fault_generation_; }

  // --- traffic helpers ---
  // Sends `data_bytes` of client data from one host to another (requires
  // both drivers registered).  Returns false if not possible yet.
  bool SendData(int src_host, int dst_host, std::size_t data_bytes,
                std::uint16_t ether_type = 0x0800);
  // Like SendData, but writes `tag` into the first 8 payload bytes
  // (big-endian); data_bytes is clamped up to 8 so the tag always fits.
  bool SendTagged(int src_host, int dst_host, std::size_t data_bytes,
                  std::uint16_t ether_type, std::uint64_t tag);
  const std::vector<Delivery>& inbox(int host) const { return inboxes_[host]; }
  void ClearInboxes();

  // Observes every client delivery on every host, before inbox collection.
  // One hook per network (the workload engine claims it while attached);
  // pass nullptr to clear.
  using ClientDeliveryHook = std::function<void(int host, const Delivery&)>;
  void SetClientDeliveryHook(ClientDeliveryHook hook) {
    delivery_hook_ = std::move(hook);
  }

  // --- measurement ---
  // Duration of the most recent reconfiguration wave: from the earliest
  // epoch join to the latest forwarding-table load, over alive switches.
  struct ReconfigTiming {
    std::uint64_t epoch = 0;
    Tick start = -1;
    Tick end = -1;
    Tick Duration() const { return start < 0 || end < 0 ? -1 : end - start; }
  };
  ReconfigTiming LastReconfig() const;

  // The topology the control plane should converge to given current faults.
  NetTopology HealthyTopology() const;

  std::vector<LogEntry> MergedLog() const;

  // --- telemetry export ---
  // Network-wide metric snapshot (optionally restricted by name prefix,
  // e.g. "switch.s4.") and the Chrome-trace view of every reconfiguration
  // span recorded so far; the Write variants put them in files that load
  // directly in Perfetto / chrome://tracing.
  std::string DumpMetricsJson(const std::string& prefix = "") const;
  std::string DumpTraceJson() const;
  bool WriteMetricsJson(const std::string& path) const;
  bool WriteTraceJson(const std::string& path) const;

 private:
  void RefreshLinkMode(int cable);
  bool ControlPlaneIdle() const;
  Tick LastControlActivity() const;

  TopoSpec spec_;
  NetworkConfig config_;
  Simulator sim_;

  // Links are declared before the devices that detach from them on
  // destruction.
  std::vector<std::unique_ptr<Link>> cables_;
  std::vector<std::array<std::unique_ptr<Link>, 2>> host_links_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Autopilot>> autopilots_;
  std::vector<std::unique_ptr<HostController>> hosts_;
  std::vector<std::unique_ptr<AutonetDriver>> drivers_;

  std::vector<bool> alive_;
  std::vector<bool> cable_cut_;
  std::vector<double> cable_corruption_;
  std::vector<std::array<bool, 2>> host_link_cut_;
  std::vector<std::vector<Delivery>> inboxes_;
  ClientDeliveryHook delivery_hook_;
  std::uint64_t fault_generation_ = 0;
};

}  // namespace autonet

#endif  // SRC_CORE_NETWORK_H_
