#include "src/core/network.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>

#include "src/routing/spanning_tree.h"
#include "src/routing/updown.h"
#include "src/routing/verify.h"

namespace autonet {

Network::Network(TopoSpec spec) : Network(std::move(spec), NetworkConfig()) {}

Network::Network(TopoSpec spec, NetworkConfig config)
    : spec_(std::move(spec)), config_(config) {
  assert(spec_.Validate().empty() && "invalid topology spec");

  const int ns = static_cast<int>(spec_.switches.size());
  const int nh = static_cast<int>(spec_.hosts.size());
  alive_.assign(ns, true);
  cable_cut_.assign(spec_.cables.size(), false);
  cable_corruption_.assign(spec_.cables.size(), 0.0);
  host_link_cut_.assign(nh, {false, false});
  inboxes_.resize(nh);

  for (int i = 0; i < ns; ++i) {
    switches_.push_back(std::make_unique<Switch>(
        &sim_, spec_.switches[i].uid, spec_.switches[i].name,
        config_.switch_config));
    autopilots_.push_back(
        std::make_unique<Autopilot>(switches_.back().get(), config_.autopilot));
  }
  for (std::size_t c = 0; c < spec_.cables.size(); ++c) {
    const TopoSpec::CableSpec& cs = spec_.cables[c];
    cables_.push_back(std::make_unique<Link>(&sim_, cs.length_km,
                                             /*corruption_seed=*/c + 1));
    switches_[cs.sw_a]->AttachLink(cs.port_a, cables_.back().get(),
                                   Link::Side::kA);
    // A cable may loop back to another port of the same switch; both ends
    // are always terminated.
    switches_[cs.sw_b]->AttachLink(cs.port_b, cables_.back().get(),
                                   Link::Side::kB);
  }
  for (int h = 0; h < nh; ++h) {
    const TopoSpec::HostSpec& hs = spec_.hosts[h];
    hosts_.push_back(std::make_unique<HostController>(
        &sim_, hs.uid, hs.name, config_.host_config));
    drivers_.push_back(std::make_unique<AutonetDriver>(hosts_.back().get(),
                                                       config_.driver_config));
    host_links_.push_back({});
    auto& links = host_links_.back();
    links[0] = std::make_unique<Link>(&sim_, hs.length_km, 1000 + 2 * h);
    hosts_[h]->AttachPort(0, links[0].get(), Link::Side::kA);
    switches_[hs.primary_switch]->AttachLink(hs.primary_port, links[0].get(),
                                             Link::Side::kB);
    if (hs.alt_switch >= 0) {
      links[1] = std::make_unique<Link>(&sim_, hs.length_km, 1001 + 2 * h);
      hosts_[h]->AttachPort(1, links[1].get(), Link::Side::kA);
      switches_[hs.alt_switch]->AttachLink(hs.alt_port, links[1].get(),
                                           Link::Side::kB);
    }
    drivers_[h]->SetReceiveHandler([this, h](Delivery d) {
      if (delivery_hook_) {
        delivery_hook_(h, d);
      }
      if (config_.collect_deliveries &&
          d.packet->ether_type != kHookOnlyEtherType &&
          inboxes_[h].size() < config_.inbox_limit) {
        inboxes_[h].push_back(std::move(d));
      }
    });
  }
}

Network::~Network() = default;

void Network::Boot() {
  for (auto& ap : autopilots_) {
    ap->Boot();
  }
  if (config_.start_drivers) {
    for (auto& driver : drivers_) {
      driver->Start();
    }
  }
}

bool Network::ControlPlaneIdle() const {
  for (int i = 0; i < num_switches(); ++i) {
    if (!alive_[i]) {
      continue;
    }
    const Autopilot& ap = *autopilots_[i];
    if (ap.reconfig_in_progress() ||
        autopilots_[i]->engine().outstanding_count() > 0) {
      return false;
    }
  }
  return true;
}

Tick Network::LastControlActivity() const {
  Tick last = 0;
  for (int i = 0; i < num_switches(); ++i) {
    if (!alive_[i]) {
      continue;
    }
    last = std::max(last, autopilots_[i]->LastActivity());
  }
  return last;
}

bool Network::WaitForConvergence(Tick deadline, Tick quiet) {
  Tick step = std::max<Tick>(quiet / 4, kMillisecond);
  while (sim_.now() < deadline) {
    sim_.RunUntil(std::min(sim_.now() + step, deadline));
    if (ControlPlaneIdle() && sim_.now() - LastControlActivity() >= quiet) {
      return true;
    }
  }
  return false;
}

bool Network::WaitForConsistency(Tick deadline, Tick quiet) {
  while (sim_.now() < deadline) {
    if (!WaitForConvergence(std::min(sim_.now() + 5 * kSecond, deadline),
                            quiet)) {
      continue;
    }
    if (CheckConsistency().empty()) {
      return true;
    }
    // Quiescent but not yet consistent: a skeptic is still holding a
    // repaired link out of service.  Let time pass.
    sim_.RunUntil(std::min(sim_.now() + kSecond, deadline));
  }
  return CheckConsistency().empty();
}

NetTopology Network::HealthyTopology() const {
  NetTopology topo;
  std::vector<int> index(spec_.switches.size(), -1);
  for (std::size_t i = 0; i < spec_.switches.size(); ++i) {
    if (!alive_[i]) {
      continue;
    }
    index[i] = topo.size();
    SwitchDescriptor sw;
    sw.uid = spec_.switches[i].uid;
    topo.switches.push_back(std::move(sw));
  }
  for (std::size_t c = 0; c < spec_.cables.size(); ++c) {
    const TopoSpec::CableSpec& cs = spec_.cables[c];
    if (cable_cut_[c] || cs.sw_a == cs.sw_b || !alive_[cs.sw_a] ||
        !alive_[cs.sw_b] || cables_[c]->mode() != LinkMode::kNormal) {
      continue;
    }
    topo.switches[index[cs.sw_a]].links.push_back(
        {cs.port_a, index[cs.sw_b], cs.port_b});
    topo.switches[index[cs.sw_b]].links.push_back(
        {cs.port_b, index[cs.sw_a], cs.port_a});
  }
  for (std::size_t h = 0; h < spec_.hosts.size(); ++h) {
    const TopoSpec::HostSpec& hs = spec_.hosts[h];
    if (!host_link_cut_[h][0] && alive_[hs.primary_switch]) {
      topo.switches[index[hs.primary_switch]].host_ports.Set(hs.primary_port);
    }
    if (hs.alt_switch >= 0 && !host_link_cut_[h][1] && alive_[hs.alt_switch]) {
      topo.switches[index[hs.alt_switch]].host_ports.Set(hs.alt_port);
    }
  }
  return topo;
}

namespace {

// Canonical comparison of two topologies (switch sets, link sets), ignoring
// index order.
bool SameTopology(const NetTopology& a, const NetTopology& b,
                  std::string* why) {
  if (a.size() != b.size()) {
    *why = "switch counts differ: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
    return false;
  }
  std::map<std::uint64_t, int> index_b;
  for (int i = 0; i < b.size(); ++i) {
    index_b[b.switches[i].uid.value()] = i;
  }
  for (int i = 0; i < a.size(); ++i) {
    auto it = index_b.find(a.switches[i].uid.value());
    if (it == index_b.end()) {
      *why = "switch " + a.switches[i].uid.ToString() + " missing";
      return false;
    }
    const SwitchDescriptor& sa = a.switches[i];
    const SwitchDescriptor& sb = b.switches[it->second];
    auto canon = [&](const NetTopology& t, const SwitchDescriptor& s) {
      std::vector<std::tuple<PortNum, std::uint64_t, PortNum>> links;
      for (const TopoLink& l : s.links) {
        links.emplace_back(l.local_port, t.switches[l.remote_switch].uid.value(),
                           l.remote_port);
      }
      std::sort(links.begin(), links.end());
      return links;
    };
    if (canon(a, sa) != canon(b, sb)) {
      *why = "links differ at " + sa.uid.ToString();
      return false;
    }
  }
  return true;
}

}  // namespace

std::string Network::CheckConsistency() {
  NetTopology expected = HealthyTopology();
  if (expected.size() == 0) {
    return "";
  }
  // Each connected component of the healthy topology converges as an
  // independent operational network (section 6.6: "the reconfiguration
  // process will configure physically separated partitions as disconnected
  // operational networks").  Check each component on its own.
  std::vector<int> component(expected.size(), -1);
  int components = 0;
  for (int start = 0; start < expected.size(); ++start) {
    if (component[start] >= 0) {
      continue;
    }
    int id = components++;
    std::vector<int> stack{start};
    component[start] = id;
    while (!stack.empty()) {
      int node = stack.back();
      stack.pop_back();
      for (const TopoLink& link : expected.switches[node].links) {
        if (component[link.remote_switch] < 0) {
          component[link.remote_switch] = id;
          stack.push_back(link.remote_switch);
        }
      }
    }
  }

  for (int comp = 0; comp < components; ++comp) {
    // Build the expected sub-topology for this component.
    NetTopology part;
    std::vector<int> new_index(expected.size(), -1);
    for (int i = 0; i < expected.size(); ++i) {
      if (component[i] == comp) {
        new_index[i] = part.size();
        SwitchDescriptor sw = expected.switches[i];
        sw.links.clear();
        part.switches.push_back(std::move(sw));
      }
    }
    for (int i = 0; i < expected.size(); ++i) {
      if (component[i] != comp) {
        continue;
      }
      for (const TopoLink& link : expected.switches[i].links) {
        part.switches[new_index[i]].links.push_back(
            {link.local_port, new_index[link.remote_switch],
             link.remote_port});
      }
    }

    // Locate the live switches of this component, check agreement, and
    // collect their tables.
    std::uint64_t epoch = 0;
    bool first = true;
    std::vector<ForwardingTable> tables;
    for (int i = 0; i < part.size(); ++i) {
      Uid uid = part.switches[i].uid;
      int live_index = -1;
      for (int s = 0; s < num_switches(); ++s) {
        if (alive_[s] && spec_.switches[s].uid == uid) {
          live_index = s;
          break;
        }
      }
      const Autopilot& ap = *autopilots_[live_index];
      if (!ap.topology().has_value()) {
        return switches_[live_index]->name() + " has no configuration";
      }
      if (first) {
        epoch = ap.epoch();
        first = false;
      } else if (ap.epoch() != epoch) {
        return switches_[live_index]->name() + " epoch mismatch";
      }
      std::string why;
      if (!SameTopology(*ap.topology(), part, &why)) {
        return switches_[live_index]->name() + " topology mismatch: " + why;
      }
      if (ap.switch_num() == 0) {
        return switches_[live_index]->name() + " has no switch number";
      }
      part.switches[i].assigned_num = ap.switch_num();
      tables.push_back(switches_[live_index]->forwarding_table());
    }

    // Verify the loaded tables as a set: deliverability, loop freedom,
    // broadcast exactness, and deadlock freedom.
    VerifyResult routes = VerifyRoutes(part, tables);
    if (!routes.ok) {
      return "route verification failed: " + routes.error;
    }
    DependencyCheck deps = CheckChannelDependencies(part, tables);
    if (!deps.acyclic) {
      return "channel dependency cycle in loaded tables";
    }
  }
  return "";
}

bool Network::WaitForHostsRegistered(Tick deadline) {
  while (sim_.now() < deadline) {
    bool all = true;
    for (const auto& driver : drivers_) {
      const TopoSpec::HostSpec& hs = spec_.hosts[&driver - &drivers_[0]];
      int active_switch = driver->controller()->active_port() == 0
                              ? hs.primary_switch
                              : hs.alt_switch;
      if (active_switch >= 0 && alive_[active_switch] &&
          !driver->HasAddress()) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
    sim_.RunUntil(sim_.now() + 50 * kMillisecond);
  }
  return false;
}

// --- fault injection ---

void Network::RefreshLinkMode(int cable) {
  const TopoSpec::CableSpec& cs = spec_.cables[cable];
  bool dead = cable_cut_[cable] || !alive_[cs.sw_a] || !alive_[cs.sw_b];
  cables_[cable]->SetMode(dead ? LinkMode::kCut : LinkMode::kNormal);
}

void Network::CutCable(int cable) {
  ++fault_generation_;
  cable_cut_[cable] = true;
  RefreshLinkMode(cable);
}

void Network::RestoreCable(int cable) {
  ++fault_generation_;
  cable_cut_[cable] = false;
  RefreshLinkMode(cable);
}

void Network::SetCableReflecting(int cable, Link::Side powered_side) {
  ++fault_generation_;
  cable_cut_[cable] = true;  // treated as faulty until restored
  cables_[cable]->SetMode(powered_side == Link::Side::kA ? LinkMode::kReflectA
                                                         : LinkMode::kReflectB);
}

void Network::SetCableCorruptionRate(int cable, double per_byte_probability) {
  ++fault_generation_;
  cable_corruption_[cable] = per_byte_probability;
  cables_[cable]->SetCorruptionRate(per_byte_probability);
}

void Network::SetHostLinkCorruptionRate(int host, int which,
                                        double per_byte_probability) {
  ++fault_generation_;
  if (host_links_[host][which] != nullptr) {
    host_links_[host][which]->SetCorruptionRate(per_byte_probability);
  }
}

void Network::CutHostLink(int host, int which) {
  ++fault_generation_;
  host_link_cut_[host][which] = true;
  if (host_links_[host][which] != nullptr) {
    host_links_[host][which]->SetMode(LinkMode::kCut);
  }
}

void Network::RestoreHostLink(int host, int which) {
  ++fault_generation_;
  host_link_cut_[host][which] = false;
  const TopoSpec::HostSpec& hs = spec_.hosts[host];
  int sw = which == 0 ? hs.primary_switch : hs.alt_switch;
  if (host_links_[host][which] != nullptr && sw >= 0 && alive_[sw]) {
    host_links_[host][which]->SetMode(LinkMode::kNormal);
  }
}

void Network::CrashSwitch(int i) {
  if (!alive_[i]) {
    return;
  }
  ++fault_generation_;
  alive_[i] = false;
  autopilots_[i]->Shutdown();
  // Power-off destroys all packets in the switch and silences its links.
  switches_[i]->LoadForwardingTable(ForwardingTable());
  for (std::size_t c = 0; c < spec_.cables.size(); ++c) {
    if (spec_.cables[c].sw_a == i || spec_.cables[c].sw_b == i) {
      RefreshLinkMode(static_cast<int>(c));
    }
  }
  for (std::size_t h = 0; h < spec_.hosts.size(); ++h) {
    const TopoSpec::HostSpec& hs = spec_.hosts[h];
    if (hs.primary_switch == i && host_links_[h][0] != nullptr) {
      host_links_[h][0]->SetMode(LinkMode::kCut);
    }
    if (hs.alt_switch == i && host_links_[h][1] != nullptr) {
      host_links_[h][1]->SetMode(LinkMode::kCut);
    }
  }
}

void Network::RestartSwitch(int i) {
  if (alive_[i]) {
    return;
  }
  ++fault_generation_;
  alive_[i] = true;
  // Fresh boot from ROM: a brand-new control program instance.
  auto fresh = std::make_unique<Autopilot>(switches_[i].get(),
                                           config_.autopilot);
  fresh->Boot();
  std::swap(autopilots_[i], fresh);
  // `fresh` now holds the old, powered-off instance; destroying it is safe
  // because its scheduled work is guarded.
  for (std::size_t c = 0; c < spec_.cables.size(); ++c) {
    if (spec_.cables[c].sw_a == i || spec_.cables[c].sw_b == i) {
      RefreshLinkMode(static_cast<int>(c));
    }
  }
  for (std::size_t h = 0; h < spec_.hosts.size(); ++h) {
    const TopoSpec::HostSpec& hs = spec_.hosts[h];
    if (hs.primary_switch == i && !host_link_cut_[h][0]) {
      host_links_[h][0]->SetMode(LinkMode::kNormal);
    }
    if (hs.alt_switch == i && !host_link_cut_[h][1]) {
      host_links_[h][1]->SetMode(LinkMode::kNormal);
    }
  }
}

// --- traffic ---

bool Network::SendData(int src_host, int dst_host, std::size_t data_bytes,
                       std::uint16_t ether_type) {
  AutonetDriver& src = *drivers_[src_host];
  AutonetDriver& dst = *drivers_[dst_host];
  if (!src.HasAddress() || !dst.HasAddress()) {
    return false;
  }
  Packet p;
  p.dest = dst.short_address();
  p.type = PacketType::kEthernetEncap;
  p.src_uid = hosts_[src_host]->uid();
  p.dest_uid = hosts_[dst_host]->uid();
  p.ether_type = ether_type;
  p.payload.assign(data_bytes, 0xD5);
  p.created_at = sim_.now();
  return src.Send(std::move(p));
}

bool Network::SendTagged(int src_host, int dst_host, std::size_t data_bytes,
                         std::uint16_t ether_type, std::uint64_t tag) {
  AutonetDriver& src = *drivers_[src_host];
  AutonetDriver& dst = *drivers_[dst_host];
  if (!src.HasAddress() || !dst.HasAddress()) {
    return false;
  }
  Packet p;
  p.dest = dst.short_address();
  p.type = PacketType::kEthernetEncap;
  p.src_uid = hosts_[src_host]->uid();
  p.dest_uid = hosts_[dst_host]->uid();
  p.ether_type = ether_type;
  p.payload.assign(std::max<std::size_t>(data_bytes, 8), 0xD5);
  for (int i = 0; i < 8; ++i) {
    p.payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(tag >> (56 - 8 * i));
  }
  p.created_at = sim_.now();
  return src.Send(std::move(p));
}

void Network::ClearInboxes() {
  for (auto& inbox : inboxes_) {
    inbox.clear();
  }
}

Network::ReconfigTiming Network::LastReconfig() const {
  ReconfigTiming timing;
  for (int i = 0; i < num_switches(); ++i) {
    if (!alive_[i]) {
      continue;
    }
    timing.epoch = std::max(timing.epoch, autopilots_[i]->epoch());
  }
  for (int i = 0; i < num_switches(); ++i) {
    if (!alive_[i] || autopilots_[i]->epoch() != timing.epoch) {
      continue;
    }
    const auto& e = autopilots_[i]->engine().stats();
    if (e.last_join_time >= 0 &&
        (timing.start < 0 || e.last_join_time < timing.start)) {
      timing.start = e.last_join_time;
    }
    Tick loaded = autopilots_[i]->stats().last_table_load;
    if (loaded >= 0 && loaded > timing.end) {
      timing.end = loaded;
    }
  }
  return timing;
}

std::vector<LogEntry> Network::MergedLog() const {
  std::vector<const EventLog*> logs;
  for (const auto& sw : switches_) {
    logs.push_back(&sw->log());
  }
  for (const auto& host : hosts_) {
    logs.push_back(&host->log());
  }
  return EventLog::Merge(logs);
}

std::string Network::DumpMetricsJson(const std::string& prefix) const {
  return sim_.metrics().SnapshotJson(prefix);
}

std::string Network::DumpTraceJson() const {
  return sim_.trace().ToChromeTraceJson();
}

bool Network::WriteMetricsJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string json = DumpMetricsJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool Network::WriteTraceJson(const std::string& path) const {
  return sim_.trace().WriteChromeTraceFile(path);
}

}  // namespace autonet
