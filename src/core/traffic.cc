#include "src/core/traffic.h"

#include <algorithm>

namespace autonet {

std::vector<TrafficGenerator::Flow> TrafficGenerator::Permutation(
    int num_hosts, int stride) {
  std::vector<Flow> flows;
  for (int i = 0; i < num_hosts; ++i) {
    int j = (i + stride) % num_hosts;
    if (j != i) {
      flows.push_back({i, j});
    }
  }
  return flows;
}

std::vector<TrafficGenerator::Flow> TrafficGenerator::AllToAll(int num_hosts) {
  std::vector<Flow> flows;
  for (int i = 0; i < num_hosts; ++i) {
    for (int j = 0; j < num_hosts; ++j) {
      if (i != j) {
        flows.push_back({i, j});
      }
    }
  }
  return flows;
}

std::vector<TrafficGenerator::Flow> TrafficGenerator::RandomPairs(
    int num_hosts, int count) {
  std::vector<Flow> flows;
  if (num_hosts < 2) {
    // No src != dst pair exists; drawing from UniformInt(0, -1) below would
    // be undefined behaviour.
    return flows;
  }
  for (int i = 0; i < count; ++i) {
    int a = static_cast<int>(rng_.UniformInt(0, num_hosts - 1));
    int b = static_cast<int>(rng_.UniformInt(0, num_hosts - 2));
    if (b >= a) {
      ++b;
    }
    flows.push_back({a, b});
  }
  return flows;
}

bool TrafficGenerator::Offer(const Flow& flow) {
  return net_->SendData(flow.src_host, flow.dst_host, config_.data_bytes);
}

TrafficGenerator::Report TrafficGenerator::Run(const std::vector<Flow>& flows,
                                               Tick duration) {
  Report report;
  if (config_.mean_interarrival < 0) {
    report.error = "mean_interarrival must be >= 0 (0 = saturating mode)";
    return report;
  }
  net_->ClearInboxes();
  Tick start = net_->sim().now();
  Tick deadline = start + duration;

  if (config_.mean_interarrival > 0) {
    // Poisson arrivals per flow.  Draws are clamped to at least one tick:
    // Exponential() can round to 0, and a zero increment would spin the
    // arrival loop forever without advancing `when`.
    auto draw = [&] {
      return std::max<Tick>(1, static_cast<Tick>(rng_.Exponential(
                                   static_cast<double>(
                                       config_.mean_interarrival))));
    };
    struct Arrival {
      Tick when;
      std::size_t flow;
    };
    std::vector<Arrival> next;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      next.push_back({start + draw(), f});
    }
    while (net_->sim().now() < deadline) {
      Tick step_end = std::min(net_->sim().now() + kMillisecond, deadline);
      for (Arrival& a : next) {
        while (a.when <= step_end) {
          if (Offer(flows[a.flow])) {
            ++report.sent;
          } else {
            ++report.send_rejected;
          }
          a.when += draw();
        }
      }
      net_->Run(step_end - net_->sim().now());
    }
  } else {
    // Saturating: keep a few packets queued per source.
    while (net_->sim().now() < deadline) {
      for (const Flow& flow : flows) {
        while (net_->host_at(flow.src_host).tx_queued_bytes() <
               3 * config_.data_bytes) {
          if (Offer(flow)) {
            ++report.sent;
          } else {
            ++report.send_rejected;
            break;
          }
        }
      }
      net_->Run(kMillisecond);
    }
  }
  // Drain in-flight deliveries briefly.
  net_->Run(10 * kMillisecond);

  std::uint64_t delivered_bytes = 0;
  for (int h = 0; h < net_->num_hosts(); ++h) {
    for (const Delivery& d : net_->inbox(h)) {
      if (!d.intact()) {
        ++report.damaged;
        continue;
      }
      ++report.delivered;
      delivered_bytes += d.packet->payload.size();
      if (d.packet->created_at > 0) {
        report.latency_us.Add(
            static_cast<double>(d.delivered_at - d.packet->created_at) / 1e3);
      }
    }
  }
  report.delivered_mbps = static_cast<double>(delivered_bytes) * 8.0 /
                          (static_cast<double>(duration) / 1e9) / 1e6;
  return report;
}

}  // namespace autonet
