// Workload generators and measurement for host traffic on a Network:
// permutation streams (the aggregate-bandwidth workload), uniform-random
// request/response pairs, and Poisson arrivals, with delivery accounting
// and latency statistics.  The bench harnesses and examples build their
// workloads from these.
#ifndef SRC_CORE_TRAFFIC_H_
#define SRC_CORE_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/network.h"
#include "src/sim/random.h"

namespace autonet {

class TrafficGenerator {
 public:
  struct Config {
    std::size_t data_bytes = 512;
    // Mean inter-arrival per source for Poisson mode; 0 = saturating mode
    // (keep each source's transmit queue topped up).  Negative is a
    // configuration error: Run() refuses it and sets Report::error rather
    // than silently falling back to saturating mode.
    Tick mean_interarrival = 0;
    std::uint64_t seed = 1;
  };

  struct Flow {
    int src_host;
    int dst_host;
  };

  struct Report {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t damaged = 0;
    std::uint64_t send_rejected = 0;  // driver not ready / buffer full
    Histogram latency_us;
    double delivered_mbps = 0;
    // Non-empty when the configuration was rejected (e.g. negative mean
    // inter-arrival); no traffic was generated in that case.
    std::string error;

    double DeliveryRate() const {
      return sent == 0 ? 0.0
                       : static_cast<double>(delivered) /
                             static_cast<double>(sent);
    }
  };

  TrafficGenerator(Network* net, Config config)
      : net_(net), config_(config), rng_(config.seed) {}

  // --- flow-set builders ---
  // Each host i streams to host (i + stride) mod N.
  static std::vector<Flow> Permutation(int num_hosts, int stride);
  // Every ordered pair once.
  static std::vector<Flow> AllToAll(int num_hosts);
  // `count` random (src, dst) pairs with src != dst; empty when fewer than
  // two hosts exist (there is no valid pair to draw).
  std::vector<Flow> RandomPairs(int num_hosts, int count);

  // Runs the flows for `duration` of simulated time and returns delivery
  // statistics.  In saturating mode each source keeps several packets
  // queued; in Poisson mode packets arrive per-flow at the configured mean
  // rate.  Inboxes are consumed by this call.
  Report Run(const std::vector<Flow>& flows, Tick duration);

 private:
  bool Offer(const Flow& flow);

  Network* net_;
  Config config_;
  Rng rng_;
};

}  // namespace autonet

#endif  // SRC_CORE_TRAFFIC_H_
