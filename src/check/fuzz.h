// The deterministic structure-aware message fuzzer (protocol correctness
// harness, part 1).  It exercises the control-protocol parsers at the
// ByteWriter/ByteReader boundary with three kinds of input:
//
//   identity    a valid serialized body, unmodified — must be accepted and
//               re-serialize to exactly the received bytes
//   mutation    a valid body put through one mutation from a fixed
//               dictionary (bit flips, truncation, trailing junk, field
//               swaps, epoch/UID skew, ...) — may be rejected, but if a
//               parser accepts it, re-serialization must reproduce the
//               received bytes ("no parser accepts a message that
//               round-trips differently": an accepted-but-altered message
//               means corruption survived the parse undetected)
//   injection   mutated bodies delivered as intact packets into the control
//               processors of a live converged network (modeling corruption
//               that escaped the CRC) — the network must stay consistent
//               and its epoch must stay plausible
//
// Everything is a pure function of a seed: any finding reproduces with
// `protocheck --fuzz N --fuzz-seed S` or `--inject N --topo T --seed S`.
#ifndef SRC_CHECK_FUZZ_H_
#define SRC_CHECK_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/random.h"

namespace autonet {
namespace check {

// The four control-protocol wire formats under test.
enum class MsgType {
  kConnectivity = 0,
  kReconfig = 1,
  kHostAddress = 2,
  kSrp = 3,
};
inline constexpr int kNumMsgTypes = 4;

const char* MsgTypeName(MsgType type);
bool MsgTypeFromName(const std::string& name, MsgType* out);

std::string HexEncode(const std::vector<std::uint8_t>& bytes);
bool HexDecode(const std::string& hex, std::vector<std::uint8_t>* out);

// A randomly populated valid message of the given type, serialized.  Field
// values are drawn from `rng`; the result always parses and round-trips.
std::vector<std::uint8_t> GenerateValidBody(MsgType type, Rng& rng);

// Applies one mutation from the dictionary to `bytes` (chosen by `rng`) and
// names it in *mutation.  The identity mutation returns the input unchanged.
std::vector<std::uint8_t> Mutate(std::vector<std::uint8_t> bytes, Rng& rng,
                                 std::string* mutation);

// The round-trip oracle.  Empty string when the invariant holds: the parser
// either rejects `bytes`, or accepts them and Serialize(*parsed) == bytes.
// `must_accept` additionally fails rejection (used for identity cases and
// corpus accept entries — a parser that rejects its own output is broken in
// the other direction).
std::string CheckRoundTrip(MsgType type, const std::vector<std::uint8_t>& bytes,
                           bool must_accept = false);

struct FuzzFinding {
  std::string type;      // message type name
  std::string mutation;  // dictionary entry (or oracle name for injection)
  std::string detail;    // one-line diagnosis
  std::string hex;       // the offending body (empty for injection findings)
  std::string reproducer;
};

struct FuzzReport {
  int cases = 0;
  int accepted = 0;
  int rejected = 0;
  std::vector<FuzzFinding> findings;
  bool ok() const { return findings.empty(); }
};

// Runs `cases_per_type` generate+mutate+check rounds per message type.
// Deterministic in `seed`.
FuzzReport FuzzRoundTrip(std::uint64_t seed, int cases_per_type);

// --- committed corpus ---
//
// Line format: `<type>:<accept|reject>:<hex>` (# comments and blank lines
// ignored).  Accept entries must parse and round-trip byte-identically;
// reject entries must not parse.

struct CorpusEntry {
  MsgType type = MsgType::kConnectivity;
  bool accept = false;
  std::vector<std::uint8_t> bytes;
  int line = 0;  // source line, for diagnostics
};

bool ParseCorpus(const std::string& text, std::vector<CorpusEntry>* out,
                 std::string* error);
bool LoadCorpus(const std::string& path, std::vector<CorpusEntry>* out,
                std::string* error);
FuzzReport CheckCorpus(const std::vector<CorpusEntry>& entries);

// --- live injection ---

struct InjectConfig {
  std::string topo = "small3";  // a check/chaos topology name
  std::uint64_t seed = 1;
  int count = 100;              // packets to inject
  // Which parsers face the barrage: "switch" delivers into switch control
  // processors (the original surface), "host" delivers host-parsed types
  // (kHostAddress replies targeted at registered hosts' UIDs, kSrp bodies
  // that exercise the driver and SRP-client parsers), "all" alternates.
  std::string target = "switch";
  std::string reproducer_stem = "protocheck";
};

struct InjectReport {
  bool booted = false;
  int injected = 0;
  std::uint64_t epoch_before = 0;
  std::uint64_t epoch_after = 0;
  std::vector<FuzzFinding> findings;
  bool ok() const { return booted && findings.empty(); }
};

// Boots the named topology to consistency, then delivers `count` mutated
// control-message bodies as intact packets into the configured target
// parsers (the CRC-escaped-corruption model): switch control processors,
// and/or host-side parsers via fabric-forwarded packets.  Afterwards the
// standard chaos oracle battery must pass, the epoch must stay within a
// small linear burn budget, and every registered host's short address must
// still name its actual attachment point.
InjectReport FuzzInject(const InjectConfig& config);

}  // namespace check
}  // namespace autonet

#endif  // SRC_CHECK_FUZZ_H_
