#include "src/check/fuzz.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <memory>

#include "src/autopilot/messages.h"
#include "src/autopilot/reconfig.h"
#include "src/chaos/oracles.h"
#include "src/check/explore.h"
#include "src/core/network.h"
#include "src/host/srp_client.h"

namespace autonet {
namespace check {

namespace {

constexpr const char* kTypeNames[kNumMsgTypes] = {"connectivity", "reconfig",
                                                  "hostaddress", "srp"};

std::uint8_t RandByte(Rng& rng) {
  return static_cast<std::uint8_t>(rng.UniformInt(0, 255));
}

Uid RandUid(Rng& rng) { return Uid(rng.NextU64()); }

PortNum RandExternalPort(Rng& rng) {
  return static_cast<PortNum>(
      rng.UniformInt(kFirstExternalPort, kPortsPerSwitch - 1));
}

std::vector<SwitchRecord> RandRecords(Rng& rng) {
  std::vector<SwitchRecord> records;
  int n = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < n; ++i) {
    SwitchRecord rec;
    rec.uid = RandUid(rng);
    rec.proposed_num = static_cast<SwitchNum>(rng.UniformInt(1, 200));
    rec.assigned_num = static_cast<SwitchNum>(rng.UniformInt(0, 200));
    rec.host_ports = static_cast<std::uint16_t>(rng.NextU64());
    int nlinks = static_cast<int>(rng.UniformInt(0, 3));
    for (int j = 0; j < nlinks; ++j) {
      rec.links.push_back(SwitchRecord::LinkRec{
          static_cast<std::uint8_t>(RandExternalPort(rng)), RandUid(rng),
          static_cast<std::uint8_t>(RandExternalPort(rng))});
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<std::uint8_t> GenConnectivity(Rng& rng) {
  ConnectivityMsg m;
  m.kind = rng.Bernoulli(0.5) ? ConnectivityMsg::Kind::kReply
                              : ConnectivityMsg::Kind::kProbe;
  m.seq = rng.NextU64();
  m.sender_uid = RandUid(rng);
  m.sender_port = static_cast<std::uint8_t>(RandExternalPort(rng));
  if (m.kind == ConnectivityMsg::Kind::kReply) {
    m.echo_uid = RandUid(rng);
    m.echo_port = static_cast<std::uint8_t>(RandExternalPort(rng));
    m.echo_seq = rng.NextU64();
  }
  return m.Serialize();
}

std::vector<std::uint8_t> GenReconfig(Rng& rng) {
  ReconfigMsg m;
  m.kind = static_cast<ReconfigMsg::Kind>(rng.UniformInt(0, 7));
  m.epoch = rng.NextU64() >> static_cast<int>(rng.UniformInt(0, 56));
  m.sender_uid = RandUid(rng);
  switch (m.kind) {
    case ReconfigMsg::Kind::kPosition:
      m.root_uid = RandUid(rng);
      m.level = static_cast<std::uint16_t>(rng.NextU64());
      m.pos_seq = static_cast<std::uint32_t>(rng.NextU64());
      break;
    case ReconfigMsg::Kind::kPosAck:
      m.ack_seq = static_cast<std::uint32_t>(rng.NextU64());
      m.is_parent = rng.Bernoulli(0.5);
      break;
    case ReconfigMsg::Kind::kReport:
    case ReconfigMsg::Kind::kConfig:
      m.payload_seq = static_cast<std::uint32_t>(rng.NextU64());
      m.records = RandRecords(rng);
      break;
    case ReconfigMsg::Kind::kMinorConfig:
      m.payload_seq = static_cast<std::uint32_t>(rng.NextU64());
      m.config_version = static_cast<std::uint32_t>(rng.NextU64());
      m.records = RandRecords(rng);
      break;
    case ReconfigMsg::Kind::kDelta:
      m.payload_seq = static_cast<std::uint32_t>(rng.NextU64());
      m.delta_add = rng.Bernoulli(0.5);
      m.delta_a_uid = RandUid(rng);
      m.delta_a_port = static_cast<std::uint8_t>(RandExternalPort(rng));
      m.delta_b_uid = RandUid(rng);
      m.delta_b_port = static_cast<std::uint8_t>(RandExternalPort(rng));
      break;
    case ReconfigMsg::Kind::kReportAck:
    case ReconfigMsg::Kind::kConfigAck:
      m.payload_seq = static_cast<std::uint32_t>(rng.NextU64());
      break;
  }
  return m.Serialize();
}

std::vector<std::uint8_t> GenHostAddress(Rng& rng) {
  HostAddressMsg m;
  m.kind = rng.Bernoulli(0.5) ? HostAddressMsg::Kind::kReply
                              : HostAddressMsg::Kind::kRequest;
  m.host_uid = RandUid(rng);
  if (m.kind == HostAddressMsg::Kind::kReply) {
    m.switch_uid = RandUid(rng);
    m.short_address = static_cast<std::uint16_t>(rng.NextU64());
    m.epoch = rng.NextU64();
  }
  return m.Serialize();
}

std::vector<std::uint8_t> GenSrp(Rng& rng) {
  static constexpr SrpMsg::Op kOps[] = {
      SrpMsg::Op::kEcho,   SrpMsg::Op::kGetState, SrpMsg::Op::kGetTopology,
      SrpMsg::Op::kGetLog, SrpMsg::Op::kGetStats, SrpMsg::Op::kReply,
  };
  SrpMsg m;
  m.op = kOps[rng.UniformInt(0, 5)];
  m.request_id = rng.NextU64();
  int nroute = static_cast<int>(rng.UniformInt(0, 6));
  for (int i = 0; i < nroute; ++i) {
    m.route.push_back(static_cast<std::uint8_t>(RandExternalPort(rng)));
  }
  m.position = static_cast<std::uint8_t>(rng.UniformInt(0, nroute));
  int nreverse = static_cast<int>(rng.UniformInt(0, 6));
  for (int i = 0; i < nreverse; ++i) {
    m.reverse_route.push_back(static_cast<std::uint8_t>(RandExternalPort(rng)));
  }
  int nbody = static_cast<int>(rng.UniformInt(0, 32));
  for (int i = 0; i < nbody; ++i) {
    m.body.push_back(RandByte(rng));
  }
  return m.Serialize();
}

// Reserialization for the round-trip comparison.
struct ParseOutcome {
  bool accepted = false;
  std::vector<std::uint8_t> reserialized;
};

ParseOutcome ParseAndReserialize(MsgType type,
                                 const std::vector<std::uint8_t>& bytes) {
  ParseOutcome out;
  switch (type) {
    case MsgType::kConnectivity: {
      auto m = ConnectivityMsg::Parse(bytes);
      if (m) {
        out.accepted = true;
        out.reserialized = m->Serialize();
      }
      break;
    }
    case MsgType::kReconfig: {
      auto m = ReconfigMsg::Parse(bytes);
      if (m) {
        out.accepted = true;
        out.reserialized = m->Serialize();
      }
      break;
    }
    case MsgType::kHostAddress: {
      auto m = HostAddressMsg::Parse(bytes);
      if (m) {
        out.accepted = true;
        out.reserialized = m->Serialize();
      }
      break;
    }
    case MsgType::kSrp: {
      auto m = SrpMsg::Parse(bytes);
      if (m) {
        out.accepted = true;
        out.reserialized = m->Serialize();
      }
      break;
    }
  }
  return out;
}

// --- mutation dictionary ---

using MutationFn = void (*)(std::vector<std::uint8_t>&, Rng&);

void MutIdentity(std::vector<std::uint8_t>&, Rng&) {}

void MutBitFlip(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.empty()) return;
  std::int64_t bit = rng.UniformInt(0, static_cast<std::int64_t>(b.size()) * 8 - 1);
  b[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void MutByteSet(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.empty()) return;
  b[rng.UniformInt(0, b.size() - 1)] = RandByte(rng);
}

void MutTruncate(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.empty()) return;
  std::int64_t k = rng.UniformInt(1, std::min<std::int64_t>(8, b.size()));
  b.resize(b.size() - k);
}

void MutExtend(std::vector<std::uint8_t>& b, Rng& rng) {
  std::int64_t k = rng.UniformInt(1, 4);
  for (std::int64_t i = 0; i < k; ++i) {
    // Bias toward trailing zeros: the historically dangerous case a lax
    // parser accepts without noticing.
    b.push_back(rng.Bernoulli(0.5) ? 0 : RandByte(rng));
  }
}

void MutFieldSwap(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.size() < 8) return;
  std::int64_t a = rng.UniformInt(0, b.size() - 8);
  std::int64_t c = rng.UniformInt(0, b.size() - 8);
  if (a == c) return;
  for (int i = 0; i < 4; ++i) {
    std::swap(b[a + i], b[c + i]);
  }
}

void MutEpochSkew(std::vector<std::uint8_t>& b, Rng& rng) {
  // Overwrite an 8-byte window with 0xFF: a huge value landing in an epoch
  // (or any u64) field.  ReconfigMsg carries its epoch at offset 1.
  if (b.size() < 9) return;
  std::int64_t o = rng.Bernoulli(0.5) ? 1 : rng.UniformInt(0, b.size() - 8);
  if (o + 8 > static_cast<std::int64_t>(b.size())) o = 1;
  for (int i = 0; i < 8; ++i) {
    b[o + i] = 0xFF;
  }
}

void MutUidSkew(std::vector<std::uint8_t>& b, Rng& rng) {
  // Set the top byte of an 8-byte little-endian window: bits above a wire
  // UID's 48-bit mask, which only corruption can set.
  if (b.size() < 8) return;
  std::int64_t o = rng.UniformInt(0, b.size() - 8);
  b[o + 7] |= 0x80;
}

void MutZeroFill(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.empty()) return;
  std::int64_t o = rng.UniformInt(0, b.size() - 1);
  std::int64_t k = std::min<std::int64_t>(rng.UniformInt(1, 8),
                                          static_cast<std::int64_t>(b.size()) - o);
  std::fill(b.begin() + o, b.begin() + o + k, 0);
}

void MutSwapAdjacent(std::vector<std::uint8_t>& b, Rng& rng) {
  if (b.size() < 2) return;
  std::int64_t i = rng.UniformInt(0, b.size() - 2);
  std::swap(b[i], b[i + 1]);
}

struct MutationEntry {
  const char* name;
  MutationFn fn;
};

constexpr MutationEntry kMutations[] = {
    {"identity", MutIdentity},       {"bitflip", MutBitFlip},
    {"byteset", MutByteSet},         {"truncate", MutTruncate},
    {"extend", MutExtend},           {"fieldswap", MutFieldSwap},
    {"epochskew", MutEpochSkew},     {"uidskew", MutUidSkew},
    {"zerofill", MutZeroFill},       {"swapadjacent", MutSwapAdjacent},
};
constexpr int kNumMutations = sizeof(kMutations) / sizeof(kMutations[0]);

}  // namespace

const char* MsgTypeName(MsgType type) {
  return kTypeNames[static_cast<int>(type)];
}

bool MsgTypeFromName(const std::string& name, MsgType* out) {
  for (int i = 0; i < kNumMsgTypes; ++i) {
    if (name == kTypeNames[i]) {
      *out = static_cast<MsgType>(i);
      return true;
    }
  }
  return false;
}

std::string HexEncode(const std::vector<std::uint8_t>& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

bool HexDecode(const std::string& hex, std::vector<std::uint8_t>* out) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) {
    return false;
  }
  out->clear();
  out->reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::vector<std::uint8_t> GenerateValidBody(MsgType type, Rng& rng) {
  switch (type) {
    case MsgType::kConnectivity:
      return GenConnectivity(rng);
    case MsgType::kReconfig:
      return GenReconfig(rng);
    case MsgType::kHostAddress:
      return GenHostAddress(rng);
    case MsgType::kSrp:
      return GenSrp(rng);
  }
  return {};
}

std::vector<std::uint8_t> Mutate(std::vector<std::uint8_t> bytes, Rng& rng,
                                 std::string* mutation) {
  const MutationEntry& m = kMutations[rng.UniformInt(0, kNumMutations - 1)];
  if (mutation != nullptr) {
    *mutation = m.name;
  }
  m.fn(bytes, rng);
  return bytes;
}

std::string CheckRoundTrip(MsgType type, const std::vector<std::uint8_t>& bytes,
                           bool must_accept) {
  ParseOutcome out = ParseAndReserialize(type, bytes);
  if (!out.accepted) {
    if (must_accept) {
      return std::string(MsgTypeName(type)) +
             ": parser rejected a valid serialization: " + HexEncode(bytes);
    }
    return "";
  }
  if (out.reserialized != bytes) {
    return std::string(MsgTypeName(type)) +
           ": accepted message round-trips differently\n  received:     " +
           HexEncode(bytes) + "\n  reserialized: " +
           HexEncode(out.reserialized);
  }
  return "";
}

FuzzReport FuzzRoundTrip(std::uint64_t seed, int cases_per_type) {
  FuzzReport report;
  std::string reproducer = "protocheck --fuzz " +
                           std::to_string(cases_per_type) + " --fuzz-seed " +
                           std::to_string(seed);
  for (int t = 0; t < kNumMsgTypes; ++t) {
    MsgType type = static_cast<MsgType>(t);
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (t + 1)));
    for (int k = 0; k < cases_per_type; ++k) {
      std::vector<std::uint8_t> valid = GenerateValidBody(type, rng);

      // Identity: the parser must take back what the serializer produced.
      std::string identity = CheckRoundTrip(type, valid, /*must_accept=*/true);
      if (!identity.empty()) {
        report.findings.push_back({MsgTypeName(type), "identity",
                                   "case " + std::to_string(k) + ": " +
                                       identity,
                                   HexEncode(valid), reproducer});
      }

      std::string mutation;
      std::vector<std::uint8_t> mutated = Mutate(valid, rng, &mutation);
      ++report.cases;
      ParseOutcome out = ParseAndReserialize(type, mutated);
      if (out.accepted) {
        ++report.accepted;
        if (out.reserialized != mutated) {
          report.findings.push_back(
              {MsgTypeName(type), mutation,
               "case " + std::to_string(k) +
                   ": accepted message round-trips differently (reserialized " +
                   HexEncode(out.reserialized) + ")",
               HexEncode(mutated), reproducer});
        }
      } else {
        ++report.rejected;
      }
    }
  }
  return report;
}

// --- corpus ---

bool ParseCorpus(const std::string& text, std::vector<CorpusEntry>* out,
                 std::string* error) {
  out->clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + what;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    // Trim whitespace and skip comments.
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    std::size_t end = line.find_last_not_of(" \t\r");
    std::string body = line.substr(start, end - start + 1);

    std::size_t c1 = body.find(':');
    std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                             : body.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      return fail("expected <type>:<accept|reject>:<hex>");
    }
    CorpusEntry entry;
    entry.line = lineno;
    if (!MsgTypeFromName(body.substr(0, c1), &entry.type)) {
      return fail("unknown message type '" + body.substr(0, c1) + "'");
    }
    std::string verdict = body.substr(c1 + 1, c2 - c1 - 1);
    if (verdict == "accept") {
      entry.accept = true;
    } else if (verdict == "reject") {
      entry.accept = false;
    } else {
      return fail("expected accept or reject, got '" + verdict + "'");
    }
    if (!HexDecode(body.substr(c2 + 1), &entry.bytes)) {
      return fail("bad hex");
    }
    out->push_back(std::move(entry));
  }
  return true;
}

bool LoadCorpus(const std::string& path, std::vector<CorpusEntry>* out,
                std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream text;
  text << f.rdbuf();
  return ParseCorpus(text.str(), out, error);
}

FuzzReport CheckCorpus(const std::vector<CorpusEntry>& entries) {
  FuzzReport report;
  for (const CorpusEntry& entry : entries) {
    ++report.cases;
    ParseOutcome out = ParseAndReserialize(entry.type, entry.bytes);
    std::string where = "corpus line " + std::to_string(entry.line);
    if (out.accepted) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
    if (entry.accept && !out.accepted) {
      report.findings.push_back({MsgTypeName(entry.type), "corpus",
                                 where + ": expected accept, parser rejected",
                                 HexEncode(entry.bytes), "protocheck --corpus"});
    } else if (!entry.accept && out.accepted) {
      report.findings.push_back({MsgTypeName(entry.type), "corpus",
                                 where + ": expected reject, parser accepted",
                                 HexEncode(entry.bytes), "protocheck --corpus"});
    } else if (entry.accept && out.reserialized != entry.bytes) {
      report.findings.push_back(
          {MsgTypeName(entry.type), "corpus",
           where + ": accepted message round-trips differently (reserialized " +
               HexEncode(out.reserialized) + ")",
           HexEncode(entry.bytes), "protocheck --corpus"});
    }
  }
  return report;
}

// --- live injection ---

InjectReport FuzzInject(const InjectConfig& config) {
  InjectReport report;
  std::string error;
  TopoSpec spec = CheckTopologyByName(config.topo, &error);
  if (!error.empty()) {
    report.findings.push_back({"", "setup", error, "", ""});
    return report;
  }
  bool hit_switches = config.target == "switch" || config.target == "all";
  bool hit_hosts = config.target == "host" || config.target == "all";
  if (!hit_switches && !hit_hosts) {
    report.findings.push_back(
        {"", "setup", "unknown inject target '" + config.target + "'", "",
         ""});
    return report;
  }
  std::string reproducer = config.reproducer_stem + " --inject " +
                           std::to_string(config.count) + " --topo " +
                           config.topo + " --seed " +
                           std::to_string(config.seed);
  if (config.target != "switch") {
    reproducer += " --inject-target " + config.target;
  }

  Network net(spec);
  net.Boot();
  int diameter = chaos::HealthyDiameter(net);
  Tick boot_deadline = 30 * kSecond + 2 * kSecond * diameter;
  if (!net.WaitForConsistency(boot_deadline)) {
    report.findings.push_back(
        {"", "bootstrap", "no consistent boot configuration", "", reproducer});
    return report;
  }
  report.booted = true;
  net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond);

  for (int i = 0; i < net.num_switches(); ++i) {
    report.epoch_before =
        std::max(report.epoch_before, net.autopilot_at(i).epoch());
  }

  // Host-targeted rounds also exercise the SRP client parser: one client
  // per host chained onto the driver's receive handler, parsing every kSrp
  // delivery (unsolicited replies are parsed, then dropped by request-id).
  std::vector<std::unique_ptr<SrpClient>> srp_clients;
  if (hit_hosts) {
    for (int h = 0; h < net.num_hosts(); ++h) {
      srp_clients.push_back(std::make_unique<SrpClient>(&net.driver_at(h)));
    }
  }

  static constexpr PacketType kPacketTypes[kNumMsgTypes] = {
      PacketType::kConnectivity, PacketType::kReconfig,
      PacketType::kHostAddress, PacketType::kSrp};

  Rng rng(config.seed);
  for (int k = 0; k < config.count; ++k) {
    bool host_round = hit_hosts;
    if (hit_switches && hit_hosts) {
      host_round = rng.Bernoulli(0.5);
    }
    std::vector<int> registered;
    if (host_round) {
      for (int h = 0; h < net.num_hosts(); ++h) {
        if (net.driver_at(h).HasAddress()) {
          registered.push_back(h);
        }
      }
      if (registered.empty()) {
        if (!hit_switches) {
          net.Run(2 * kMillisecond);  // nobody registered yet: wait a round
          continue;
        }
        host_round = false;  // fall back to the switch surface this round
      }
    }

    Tick jitter = 200 * kMicrosecond +
                  static_cast<Tick>(rng.UniformInt(0, 1800)) * kMicrosecond;
    if (host_round) {
      // A host-parsed body, fabric-forwarded from a switch control
      // processor to the host's short address: corruption that escaped the
      // CRC on the last hop.  kHostAddress bodies carry the real host UID
      // (so the driver's accept path, not just the parser, is exercised);
      // kSrp bodies land in the chained SRP client.
      int h = registered[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(registered.size()) - 1))];
      int sw = static_cast<int>(rng.UniformInt(0, net.num_switches() - 1));
      MsgType type = rng.Bernoulli(0.5) ? MsgType::kHostAddress : MsgType::kSrp;
      std::vector<std::uint8_t> body;
      if (type == MsgType::kHostAddress) {
        HostAddressMsg m;
        m.kind = HostAddressMsg::Kind::kReply;
        m.host_uid = net.host_at(h).uid();
        m.switch_uid = RandUid(rng);
        m.short_address =
            static_cast<std::uint16_t>(rng.UniformInt(0x010, 0x7EF));
        m.epoch = net.autopilot_at(sw).epoch() + rng.UniformInt(0, 3);
        body = m.Serialize();
      } else {
        body = GenerateValidBody(type, rng);
      }
      std::string mutation;
      body = Mutate(std::move(body), rng, &mutation);

      Packet p;
      p.dest = net.driver_at(h).short_address();
      p.src = ShortAddress::FromSwitchPort(net.autopilot_at(sw).switch_num(),
                                           kCpPort);
      p.type = kPacketTypes[static_cast<int>(type)];
      p.payload = std::move(body);
      PacketRef pkt = MakePacket(std::move(p));
      net.sim().ScheduleAfter(jitter, [&net, sw, pkt] {
        net.switch_at(sw).CpSend(pkt);
      });
    } else {
      MsgType type = static_cast<MsgType>(rng.UniformInt(0, kNumMsgTypes - 1));
      int sw = static_cast<int>(rng.UniformInt(0, net.num_switches() - 1));
      PortNum port = RandExternalPort(rng);
      std::string mutation;
      std::vector<std::uint8_t> body =
          Mutate(GenerateValidBody(type, rng), rng, &mutation);

      Packet p;
      p.dest = kAddrLocalCp;
      p.src = OneHopAddress(port);
      p.type = kPacketTypes[static_cast<int>(type)];
      p.payload = std::move(body);
      PacketRef pkt = MakePacket(std::move(p));

      // Deliver straight into the control processor's reassembly port as an
      // intact packet: corruption that escaped the CRC.  If this clobbers a
      // real in-flight reception, that packet is lost — legal link behavior
      // the protocols already tolerate.
      net.sim().ScheduleAfter(jitter, [&net, sw, port, pkt] {
        CpPort& cp = net.switch_at(sw).cp_port();
        cp.NoteArrivalPort(port);
        cp.SendBegin(pkt);
        for (std::uint32_t i = 0; i < pkt->WireSize(); ++i) {
          cp.SendByte(pkt, i);
        }
        cp.SendEnd(EndFlags{});
      });
    }
    net.Run(2 * kMillisecond + jitter);
    ++report.injected;
  }

  if (hit_hosts) {
    // A mutated reply whose epoch landed plausibly newer can have
    // re-addressed a host; the driver recovers from genuine pings via its
    // hold-then-confirm path within two ping rounds.  Give it that long
    // before judging.
    net.Run(8 * kSecond);
  }

  // The network absorbed the barrage; it must settle back to a consistent
  // configuration and a plausible epoch.
  chaos::OracleContext ctx;
  ctx.net = &net;
  ctx.deadline = net.sim().now() + 30 * kSecond + 2 * kSecond * diameter;
  for (const auto& oracle : chaos::StandardOracles()) {
    std::string detail = oracle->Check(ctx);
    if (!detail.empty()) {
      report.findings.push_back({"", oracle->name(), detail, "", reproducer});
    }
  }

  for (int i = 0; i < net.num_switches(); ++i) {
    report.epoch_after =
        std::max(report.epoch_after, net.autopilot_at(i).epoch());
  }
  // Each injection can advance the epoch only via a believed unit jump —
  // anything larger is held for a confirming second sighting, which a
  // one-shot corrupted field never produces (kEpochConfirmJump == 1) —
  // plus the handful of epochs the triggered wave itself burns.  Growth
  // beyond this small linear budget means a corrupted epoch value moved
  // the register outright: the epoch-burn hole.
  static_assert(ReconfigEngine::kEpochConfirmJump == 1,
                "budget below assumes held-until-confirmed multi-jumps");
  std::uint64_t burn_budget =
      static_cast<std::uint64_t>(config.count) * 4 + 16;
  if (report.epoch_after - report.epoch_before > burn_budget) {
    report.findings.push_back(
        {"", "epoch-plausibility",
         "epoch jumped from " + std::to_string(report.epoch_before) + " to " +
             std::to_string(report.epoch_after) + " (budget " +
             std::to_string(burn_budget) +
             ") — an injected epoch was believed",
         "", reproducer});
  }

  // Host-address integrity: whatever the barrage claimed, every registered
  // host must end up holding the short address of its actual attachment
  // point (a stale or damaged reply that permanently re-addresses a host
  // is exactly the failure the driver's hold-then-confirm prevents).
  for (int h = 0; h < net.num_hosts(); ++h) {
    if (!net.driver_at(h).HasAddress()) {
      continue;
    }
    const TopoSpec::HostSpec& hs = net.spec().hosts[h];
    bool primary = net.host_at(h).active_port() == 0;
    int sw = primary ? hs.primary_switch : hs.alt_switch;
    PortNum port = primary ? hs.primary_port : hs.alt_port;
    if (sw < 0 || !net.switch_alive(sw)) {
      continue;
    }
    ShortAddress expect =
        ShortAddress::FromSwitchPort(net.autopilot_at(sw).switch_num(), port);
    if (net.driver_at(h).short_address() != expect) {
      report.findings.push_back(
          {"", "host-address-integrity",
           "host " + net.host_at(h).name() + " holds address " +
               net.driver_at(h).short_address().ToString() + ", expected " +
               expect.ToString(),
           "", reproducer});
    }
  }
  return report;
}

}  // namespace check
}  // namespace autonet
