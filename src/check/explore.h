// The bounded interleaving explorer (protocol correctness harness, part 2).
//
// A run of the simulator is deterministic, so the only schedule freedom the
// real network has that the simulator normally hides is the ordering of
// *same-tick* events — exactly the races a hardware network would resolve
// arbitrarily.  The explorer drives the timing wheel's tie-break decisions
// through Simulator::SetTieChooser: around an epoch transition (a scripted
// fault, an optional second fault at a swept offset) it systematically
// permutes same-tick orderings and checks the chaos invariant battery after
// each schedule.
//
// A schedule is named by a ScheduleId — topology, fault, fault-offset index,
// and a set of (decision index, branch choice) deviations from the baseline
// order — and every run is a pure function of its id:
//
//     small3:cut0+restore:o3:d12.1
//
// replays as `protocheck --replay small3:cut0+restore:o3:d12.1`.  The sweep
// enumerates, for each fault x offset, the baseline schedule plus every
// single deviation at each recorded decision point (the classic one-change
// delay-bounded search), within an overall schedule budget.
#ifndef SRC_CHECK_EXPLORE_H_
#define SRC_CHECK_EXPLORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/chaos/runner.h"
#include "src/common/time.h"
#include "src/core/network.h"
#include "src/topo/spec.h"

namespace autonet {
namespace check {

// Small topologies sized for exhaustive exploration (2-4 switches), plus
// passthrough to the chaos registry for the larger named ones.
TopoSpec CheckTopologyByName(const std::string& name, std::string* error);
std::vector<std::string> CheckTopologyNames();

// The fault matrix explored on a topology: every single cable cut, cut plus
// restore, switch crash, crash plus restart, and ordered double cut.
std::vector<std::string> FaultMatrix(const TopoSpec& spec);

// The grid of primary-to-secondary fault offsets swept by the explorer.
const std::vector<Tick>& DefaultOffsets();

struct ScheduleId {
  std::string topo;
  std::string fault;     // e.g. "cut0", "crash1+restart", "cut0+cut2"
  int offset_index = 0;  // into the offsets grid
  // Deviations from the baseline order: at decision point `first`, take
  // same-tick branch `second` instead of branch 0.
  std::vector<std::pair<int, std::uint32_t>> deviations;

  // `topo:fault:o<idx>:<devs>` with devs `-` or `d<i>.<c>+d<i>.<c>`.
  std::string ToString() const;
  static std::optional<ScheduleId> FromString(const std::string& text);
};

struct ExploreConfig {
  std::string topo = "small3";
  int budget = 50000;           // total schedules (baselines + deviations)
  int max_decision_points = 64; // decision points recorded per schedule
  int jobs = 0;                 // worker threads; 0 = hardware concurrency
  std::uint64_t seed = 1;       // reserved for future stochastic modes
  std::vector<Tick> offsets;    // empty = DefaultOffsets()
  Tick chooser_window = 2 * kSecond;  // how long ties stay under our control
  Tick convergence_base = 30 * kSecond;
  Tick convergence_per_hop = 2 * kSecond;
  Tick quiet = 100 * kMillisecond;
  NetworkConfig network;
  std::string reproducer_stem = "protocheck";
  // Fill ScheduleResult::postmortem with the reconstructed epoch timeline
  // even when the schedule passes (the `postmortem --schedule` path).
  // Failed schedules always carry a timeline in their violations.
  bool capture_postmortem = false;
};

struct ScheduleResult {
  std::string id;
  bool ok = false;
  std::vector<chaos::Violation> violations;
  // Decision points encountered while the chooser was installed, and the
  // branch factor observed at each recorded one (the deviation space).
  int decision_points = 0;
  int dropped_decisions = 0;  // beyond max_decision_points, not recorded
  std::vector<std::uint32_t> branch_factors;
  std::uint64_t log_hash = 0;  // FNV-1a over the merged event log
  double wall_ms = 0;
  // Epoch timeline text (set when ExploreConfig::capture_postmortem).
  std::string postmortem;
};

struct ExploreReport {
  std::string topo;
  std::vector<ScheduleResult> runs;
  int passed = 0;
  int failed = 0;
  int baselines = 0;
  // Deviation schedules the baselines exposed vs. what the budget allowed.
  std::uint64_t deviations_possible = 0;
  std::uint64_t schedules_skipped = 0;
  // Decision points dropped because a schedule exceeded max_decision_points
  // (their branches were never explored — raise --max-points to cover them).
  std::uint64_t dropped_decisions = 0;
  int jobs = 1;
  double wall_ms = 0;

  bool AllPassed() const { return failed == 0; }
  std::vector<std::string> ReproducerLines() const;
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;
};

// Executes one schedule — the `--replay` path.  Pure function of the id
// (plus the explore tuning in `config`).
ScheduleResult RunSchedule(const ExploreConfig& config, const ScheduleId& id);

// The sweep: baselines over FaultMatrix x offsets, then every single
// deviation each baseline exposed, across a worker pool, within budget.
ExploreReport Explore(const ExploreConfig& config);

}  // namespace check
}  // namespace autonet

#endif  // SRC_CHECK_EXPLORE_H_
