#include "src/check/explore.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "src/obs/json.h"
#include "src/obs/postmortem.h"

namespace autonet {
namespace check {

namespace {

std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t HashMergedLog(const Network& net) {
  std::uint64_t h = 1469598103934665603ull;
  for (const LogEntry& e : net.MergedLog()) {
    h = Fnv1a(h, &e.time, sizeof e.time);
    h = Fnv1a(h, e.node.data(), e.node.size());
    h = Fnv1a(h, e.message.data(), e.message.size());
  }
  return h;
}

std::string HexU64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

double WallMsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// --- fault grammar: "cut<c>", "crash<s>", optionally "+restore",
// "+restart", or "+cut<c2>" ---

struct FaultPlan {
  enum class Primary { kCut, kCrash };
  enum class Secondary { kNone, kRestore, kRestart, kCut2 };
  Primary primary = Primary::kCut;
  int primary_idx = 0;
  Secondary secondary = Secondary::kNone;
  int secondary_idx = 0;
};

bool ParseIndex(const std::string& s, std::size_t pos, int* out) {
  if (pos >= s.size()) {
    return false;
  }
  int v = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return false;
    }
    v = v * 10 + (s[i] - '0');
    if (v > 1000000) {
      return false;
    }
  }
  *out = v;
  return true;
}

bool ParseFault(const std::string& text, const TopoSpec& spec,
                FaultPlan* plan, std::string* error) {
  auto fail = [&](const std::string& what) {
    *error = "bad fault '" + text + "': " + what;
    return false;
  };
  std::size_t plus = text.find('+');
  std::string primary = text.substr(0, plus);
  if (primary.rfind("cut", 0) == 0) {
    plan->primary = FaultPlan::Primary::kCut;
    if (!ParseIndex(primary, 3, &plan->primary_idx) ||
        plan->primary_idx >= static_cast<int>(spec.cables.size())) {
      return fail("cable index out of range");
    }
  } else if (primary.rfind("crash", 0) == 0) {
    plan->primary = FaultPlan::Primary::kCrash;
    if (!ParseIndex(primary, 5, &plan->primary_idx) ||
        plan->primary_idx >= static_cast<int>(spec.switches.size())) {
      return fail("switch index out of range");
    }
  } else {
    return fail("expected cut<N> or crash<N>");
  }
  if (plus == std::string::npos) {
    plan->secondary = FaultPlan::Secondary::kNone;
    return true;
  }
  std::string secondary = text.substr(plus + 1);
  if (secondary == "restore") {
    if (plan->primary != FaultPlan::Primary::kCut) {
      return fail("restore follows only cut");
    }
    plan->secondary = FaultPlan::Secondary::kRestore;
  } else if (secondary == "restart") {
    if (plan->primary != FaultPlan::Primary::kCrash) {
      return fail("restart follows only crash");
    }
    plan->secondary = FaultPlan::Secondary::kRestart;
  } else if (secondary.rfind("cut", 0) == 0) {
    plan->secondary = FaultPlan::Secondary::kCut2;
    if (!ParseIndex(secondary, 3, &plan->secondary_idx) ||
        plan->secondary_idx >= static_cast<int>(spec.cables.size())) {
      return fail("second cable index out of range");
    }
  } else {
    return fail("expected restore, restart, or cut<N> after +");
  }
  return true;
}

void ApplyPrimary(Network& net, const FaultPlan& plan) {
  if (plan.primary == FaultPlan::Primary::kCut) {
    net.CutCable(plan.primary_idx);
  } else {
    net.CrashSwitch(plan.primary_idx);
  }
}

void ApplySecondary(Network& net, const FaultPlan& plan) {
  switch (plan.secondary) {
    case FaultPlan::Secondary::kNone:
      break;
    case FaultPlan::Secondary::kRestore:
      net.RestoreCable(plan.primary_idx);
      break;
    case FaultPlan::Secondary::kRestart:
      net.RestartSwitch(plan.primary_idx);
      break;
    case FaultPlan::Secondary::kCut2:
      net.CutCable(plan.secondary_idx);
      break;
  }
}

// Minimal thread pool over a fixed index space (the chaos runner's
// work-stealing shape).
template <typename Fn>
void RunPool(std::size_t n, int jobs, Fn fn) {
  if (n == 0) {
    return;
  }
  jobs = std::max(1, std::min<int>(jobs, static_cast<int>(n)));
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1);
      if (i >= n) {
        return;
      }
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace

TopoSpec CheckTopologyByName(const std::string& name, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  if (name == "pair2") {
    TopoSpec spec;
    spec.AddSwitch("s0");
    spec.AddSwitch("s1");
    spec.Cable(0, 1);
    spec.AddHost(0);
    spec.AddHost(1);
    return spec;
  }
  if (name == "line3") {
    return MakeLine(3, 1);
  }
  if (name == "small3") {
    // A triangle: the smallest topology where a cut leaves redundancy, so
    // position races have real alternatives to disagree about.
    TopoSpec spec;
    spec.AddSwitch("s0");
    spec.AddSwitch("s1");
    spec.AddSwitch("s2");
    spec.Cable(0, 1);
    spec.Cable(1, 2);
    spec.Cable(0, 2);
    spec.AddHost(0);
    spec.AddHost(1);
    spec.AddHost(2);
    return spec;
  }
  if (name == "ring4") {
    return MakeRing(4, 1);
  }
  return chaos::TopologyByName(name, error);
}

std::vector<std::string> CheckTopologyNames() {
  return {"pair2", "line3", "small3", "ring4"};
}

std::vector<std::string> FaultMatrix(const TopoSpec& spec) {
  std::vector<std::string> faults;
  int cables = static_cast<int>(spec.cables.size());
  int switches = static_cast<int>(spec.switches.size());
  for (int c = 0; c < cables; ++c) {
    faults.push_back("cut" + std::to_string(c));
    faults.push_back("cut" + std::to_string(c) + "+restore");
  }
  for (int s = 0; s < switches; ++s) {
    faults.push_back("crash" + std::to_string(s));
    faults.push_back("crash" + std::to_string(s) + "+restart");
  }
  for (int c = 0; c < cables; ++c) {
    for (int c2 = c + 1; c2 < cables; ++c2) {
      faults.push_back("cut" + std::to_string(c) + "+cut" +
                       std::to_string(c2));
    }
  }
  return faults;
}

const std::vector<Tick>& DefaultOffsets() {
  static const std::vector<Tick> kOffsets = {
      0,
      100 * kMicrosecond,
      1 * kMillisecond,
      5 * kMillisecond,
      20 * kMillisecond,
      60 * kMillisecond,
      120 * kMillisecond,
      250 * kMillisecond,
  };
  return kOffsets;
}

std::string ScheduleId::ToString() const {
  std::string s = topo;
  s += ":";
  s += fault;
  s += ":o";
  s += std::to_string(offset_index);
  s += ":";
  if (deviations.empty()) {
    s += "-";
    return s;
  }
  for (std::size_t i = 0; i < deviations.size(); ++i) {
    if (i > 0) {
      s += "+";
    }
    s += "d" + std::to_string(deviations[i].first) + "." +
         std::to_string(deviations[i].second);
  }
  return s;
}

std::optional<ScheduleId> ScheduleId::FromString(const std::string& text) {
  std::size_t p1 = text.find(':');
  std::size_t p2 = p1 == std::string::npos ? std::string::npos
                                           : text.find(':', p1 + 1);
  std::size_t p3 = p2 == std::string::npos ? std::string::npos
                                           : text.find(':', p2 + 1);
  if (p3 == std::string::npos || text.find(':', p3 + 1) != std::string::npos) {
    return std::nullopt;
  }
  ScheduleId id;
  id.topo = text.substr(0, p1);
  id.fault = text.substr(p1 + 1, p2 - p1 - 1);
  std::string off = text.substr(p2 + 1, p3 - p2 - 1);
  if (off.size() < 2 || off[0] != 'o' ||
      !ParseIndex(off, 1, &id.offset_index)) {
    return std::nullopt;
  }
  std::string devs = text.substr(p3 + 1);
  if (id.topo.empty() || id.fault.empty() || devs.empty()) {
    return std::nullopt;
  }
  if (devs == "-") {
    return id;
  }
  std::size_t pos = 0;
  while (pos < devs.size()) {
    std::size_t plus = devs.find('+', pos);
    std::string one = devs.substr(pos, plus == std::string::npos
                                           ? std::string::npos
                                           : plus - pos);
    std::size_t dot = one.find('.');
    if (one.size() < 4 || one[0] != 'd' || dot == std::string::npos) {
      return std::nullopt;
    }
    int idx = 0;
    int choice = 0;
    if (!ParseIndex(one.substr(0, dot), 1, &idx) ||
        !ParseIndex(one, dot + 1, &choice) || choice < 1) {
      return std::nullopt;
    }
    id.deviations.emplace_back(idx, static_cast<std::uint32_t>(choice));
    pos = plus == std::string::npos ? devs.size() : plus + 1;
  }
  return id;
}

ScheduleResult RunSchedule(const ExploreConfig& config, const ScheduleId& id) {
  auto t0 = std::chrono::steady_clock::now();
  ScheduleResult result;
  result.id = id.ToString();
  std::string reproducer =
      config.reproducer_stem + " --replay " + result.id;
  auto violate = [&](const std::string& oracle, const std::string& detail) {
    result.violations.push_back({oracle, detail, reproducer, "", ""});
  };
  auto finish = [&] {
    result.ok = result.violations.empty();
    result.wall_ms = WallMsSince(t0);
    return result;
  };

  std::string error;
  TopoSpec spec = CheckTopologyByName(id.topo, &error);
  if (!error.empty()) {
    violate("setup", error);
    return finish();
  }
  const std::vector<Tick>& offsets =
      config.offsets.empty() ? DefaultOffsets() : config.offsets;
  if (id.offset_index < 0 ||
      id.offset_index >= static_cast<int>(offsets.size())) {
    violate("setup", "offset index out of range");
    return finish();
  }
  FaultPlan plan;
  if (!ParseFault(id.fault, spec, &plan, &error)) {
    violate("setup", error);
    return finish();
  }

  Network net(spec, config.network);
  net.sim().flight().Arm();
  net.Boot();
  int diameter = chaos::HealthyDiameter(net);
  Tick boot_deadline =
      config.convergence_base + config.convergence_per_hop * diameter;
  if (!net.WaitForConsistency(boot_deadline, config.quiet)) {
    violate("bootstrap", "no consistent boot configuration");
    return finish();
  }
  net.WaitForHostsRegistered(net.sim().now() + 30 * kSecond);

  Simulator& sim = net.sim();
  Tick t_fault = sim.now() + 50 * kMillisecond;
  Tick offset = offsets[id.offset_index];
  Tick t_end = t_fault + offset + config.chooser_window;

  // Decision bookkeeping, shared with the chooser while it is installed.
  struct Recorder {
    int count = 0;
    int dropped = 0;
    std::vector<std::uint32_t> branch;
  } rec;
  std::map<int, std::uint32_t> devmap(id.deviations.begin(),
                                      id.deviations.end());
  int max_points = config.max_decision_points;

  sim.ScheduleAt(t_fault, [&] {
    ApplyPrimary(net, plan);
    sim.SetTieChooser([&rec, &devmap, max_points](Tick, std::uint32_t n) {
      int i = rec.count++;
      if (i >= max_points) {
        ++rec.dropped;
        return 0u;
      }
      rec.branch.push_back(n);
      auto it = devmap.find(i);
      std::uint32_t c = it != devmap.end() ? it->second : 0u;
      return c < n ? c : 0u;
    });
  });
  if (plan.secondary != FaultPlan::Secondary::kNone) {
    sim.ScheduleAt(t_fault + offset, [&] { ApplySecondary(net, plan); });
  }
  sim.ScheduleAt(t_end, [&] { sim.SetTieChooser(nullptr); });
  net.Run(t_end - sim.now() + kMillisecond);

  chaos::OracleContext ctx;
  ctx.net = &net;
  ctx.quiet = config.quiet;
  ctx.deadline = sim.now() + config.convergence_base +
                 config.convergence_per_hop * chaos::HealthyDiameter(net);
  for (const auto& oracle : chaos::StandardOracles()) {
    std::string detail = oracle->Check(ctx);
    if (!detail.empty()) {
      violate(oracle->name(), detail);
    }
  }

  result.decision_points = rec.count;
  result.dropped_decisions = rec.dropped;
  result.branch_factors = std::move(rec.branch);
  result.log_hash = HashMergedLog(net);
  if (config.capture_postmortem || !result.violations.empty()) {
    obs::PostMortem pm = obs::PostMortem::Build(net.sim().flight());
    std::string timeline = pm.RenderText();
    std::string blame =
        pm.epochs().empty() ? "" : pm.epochs().back().BlameChain();
    for (chaos::Violation& v : result.violations) {
      v.blame = blame;
      v.timeline = timeline;
    }
    if (config.capture_postmortem) {
      result.postmortem = std::move(timeline);
    }
  }
  return finish();
}

ExploreReport Explore(const ExploreConfig& config) {
  auto t0 = std::chrono::steady_clock::now();
  ExploreReport report;
  report.topo = config.topo;

  std::string error;
  TopoSpec spec = CheckTopologyByName(config.topo, &error);
  if (!error.empty()) {
    ScheduleResult bad;
    bad.id = config.topo;
    bad.violations.push_back({"setup", error, "", "", ""});
    report.runs.push_back(std::move(bad));
    report.failed = 1;
    report.wall_ms = WallMsSince(t0);
    return report;
  }

  const std::vector<Tick>& offsets =
      config.offsets.empty() ? DefaultOffsets() : config.offsets;
  int jobs = config.jobs > 0
                 ? config.jobs
                 : static_cast<int>(std::thread::hardware_concurrency());
  jobs = std::max(1, jobs);
  report.jobs = jobs;

  // Phase 1: baselines.  Offsets only matter to two-part faults (the offset
  // separates primary from secondary); single faults run at offset 0 only.
  std::vector<ScheduleId> baselines;
  for (const std::string& fault : FaultMatrix(spec)) {
    bool two_part = fault.find('+') != std::string::npos;
    int noffsets = two_part ? static_cast<int>(offsets.size()) : 1;
    for (int oi = 0; oi < noffsets; ++oi) {
      ScheduleId id;
      id.topo = config.topo;
      id.fault = fault;
      id.offset_index = oi;
      baselines.push_back(std::move(id));
    }
  }
  std::uint64_t budget = config.budget > 0 ? config.budget : 1;
  if (baselines.size() > budget) {
    report.schedules_skipped += baselines.size() - budget;
    baselines.resize(budget);
  }
  report.baselines = static_cast<int>(baselines.size());

  std::vector<ScheduleResult> base_results(baselines.size());
  RunPool(baselines.size(), jobs, [&](std::size_t i) {
    base_results[i] = RunSchedule(config, baselines[i]);
  });

  // Phase 2: every single deviation each baseline exposed, until the budget
  // is spent.  Deviations beyond the budget (and decision points beyond
  // max_decision_points) are counted, not silently dropped.
  std::uint64_t remaining = budget - baselines.size();
  std::vector<ScheduleId> deviations;
  for (std::size_t b = 0; b < base_results.size(); ++b) {
    report.dropped_decisions +=
        static_cast<std::uint64_t>(base_results[b].dropped_decisions);
    const std::vector<std::uint32_t>& branch = base_results[b].branch_factors;
    for (std::size_t i = 0; i < branch.size(); ++i) {
      for (std::uint32_t c = 1; c < branch[i]; ++c) {
        ++report.deviations_possible;
        if (deviations.size() < remaining) {
          ScheduleId id = baselines[b];
          id.deviations.emplace_back(static_cast<int>(i), c);
          deviations.push_back(std::move(id));
        }
      }
    }
  }
  report.schedules_skipped +=
      report.deviations_possible - deviations.size();

  std::vector<ScheduleResult> dev_results(deviations.size());
  RunPool(deviations.size(), jobs, [&](std::size_t i) {
    dev_results[i] = RunSchedule(config, deviations[i]);
  });
  // Deviation runs hit max_decision_points too; without this the report
  // undercounted dropped decision points by the whole phase-2 sweep.
  for (const ScheduleResult& r : dev_results) {
    report.dropped_decisions += static_cast<std::uint64_t>(r.dropped_decisions);
  }

  report.runs = std::move(base_results);
  report.runs.insert(report.runs.end(),
                     std::make_move_iterator(dev_results.begin()),
                     std::make_move_iterator(dev_results.end()));
  for (const ScheduleResult& r : report.runs) {
    if (r.ok) {
      ++report.passed;
    } else {
      ++report.failed;
    }
  }
  report.wall_ms = WallMsSince(t0);
  return report;
}

std::vector<std::string> ExploreReport::ReproducerLines() const {
  std::vector<std::string> lines;
  for (const ScheduleResult& r : runs) {
    for (const chaos::Violation& v : r.violations) {
      lines.push_back(v.reproducer);
    }
  }
  return lines;
}

std::string ExploreReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("explore").BeginObject();
  w.Key("topo").String(topo);
  w.Key("schedules").UInt(runs.size());
  w.Key("baselines").Int(baselines);
  w.Key("passed").Int(passed);
  w.Key("failed").Int(failed);
  w.Key("deviations_possible").UInt(deviations_possible);
  w.Key("schedules_skipped").UInt(schedules_skipped);
  w.Key("dropped_decisions").UInt(dropped_decisions);
  w.Key("jobs").Int(jobs);
  w.Key("wall_ms").Number(wall_ms);
  w.EndObject();

  w.Key("violations").BeginArray();
  for (const ScheduleResult& r : runs) {
    for (const chaos::Violation& v : r.violations) {
      w.BeginObject();
      w.Key("schedule").String(r.id);
      w.Key("oracle").String(v.oracle);
      w.Key("detail").String(v.detail);
      w.Key("reproducer").String(v.reproducer);
      w.EndObject();
    }
  }
  w.EndArray();

  w.Key("runs").BeginArray();
  for (const ScheduleResult& r : runs) {
    w.BeginObject();
    w.Key("id").String(r.id);
    w.Key("ok").Bool(r.ok);
    w.Key("decision_points").Int(r.decision_points);
    w.Key("dropped_decisions").Int(r.dropped_decisions);
    w.Key("log_hash").String(HexU64(r.log_hash));
    w.Key("wall_ms").Number(r.wall_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool ExploreReport::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace check
}  // namespace autonet
