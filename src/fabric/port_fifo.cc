#include "src/fabric/port_fifo.h"

#include <utility>

namespace autonet {

PortFifo::PortFifo(std::size_t capacity) : capacity_(capacity) {}

void PortFifo::RecordRing::Grow() {
  std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
  std::vector<PacketRecord> bigger(cap);
  std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    bigger[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
  }
  buf_ = std::move(bigger);
  head_ = 0;
  tail_ = n;
}

void PortFifo::PushBegin(const PacketRef& packet) {
  PacketRecord record;
  record.packet = packet;
  record.capture_addr = packet->dest;
  records_.push_back(std::move(record));
  receiving_ = true;
}

void PortFifo::MarkIncomingCorrupt() {
  if (!records_.empty() && receiving_) {
    records_.back().corrupted = true;
  }
}

void PortFifo::PushEnd(EndFlags flags) {
  receiving_ = false;
  if (records_.empty()) {
    return;
  }
  PacketRecord& record = records_.back();
  record.end_in_fifo = true;
  record.corrupted = record.corrupted || flags.corrupted;
  record.truncated = record.truncated || flags.truncated;
  Account(+1);  // the end mark occupies a FIFO slot
}

void PortFifo::AbortIncoming() {
  if (!receiving_) {
    return;
  }
  PushEnd(EndFlags{.truncated = true, .corrupted = true});
}

bool PortFifo::HeadCaptureReady() const {
  if (records_.empty()) {
    return false;
  }
  const PacketRecord& record = records_.front();
  if (record.bytes_consumed > 0) {
    return false;  // already being forwarded
  }
  return record.bytes_entered >= 2 || record.end_in_fifo;
}

std::optional<EndFlags> PortFifo::TryPopEnd() {
  if (!HeadEndReady()) {
    return std::nullopt;
  }
  PacketRecord record = std::move(records_.front());
  records_.pop_front();
  Account(-1);
  return EndFlags{.truncated = record.truncated, .corrupted = record.corrupted};
}

void PortFifo::Clear() {
  records_.clear();
  occupancy_ = 0;
  receiving_ = false;
}

}  // namespace autonet
