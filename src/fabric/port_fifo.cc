#include "src/fabric/port_fifo.h"

#include <cassert>

namespace autonet {

PortFifo::PortFifo(std::size_t capacity) : capacity_(capacity) {}

void PortFifo::Account(std::ptrdiff_t delta) {
  occupancy_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(occupancy_) + delta);
  if (occupancy_ > max_occupancy_) {
    max_occupancy_ = occupancy_;
  }
}

void PortFifo::PushBegin(const PacketRef& packet) {
  PacketRecord record;
  record.packet = packet;
  record.capture_addr = packet->dest;
  records_.push_back(std::move(record));
  receiving_ = true;
}

bool PortFifo::PushByte() {
  assert(receiving_ && "byte outside packet");
  if (records_.empty()) {
    return false;
  }
  PacketRecord& record = records_.back();
  if (occupancy_ >= capacity_) {
    ++overflow_count_;
    record.corrupted = true;  // a lost byte destroys the packet
    return false;
  }
  ++record.bytes_entered;
  Account(+1);
  return true;
}

void PortFifo::MarkIncomingCorrupt() {
  if (!records_.empty() && receiving_) {
    records_.back().corrupted = true;
  }
}

void PortFifo::PushEnd(EndFlags flags) {
  receiving_ = false;
  if (records_.empty()) {
    return;
  }
  PacketRecord& record = records_.back();
  record.end_in_fifo = true;
  record.corrupted = record.corrupted || flags.corrupted;
  record.truncated = record.truncated || flags.truncated;
  Account(+1);  // the end mark occupies a FIFO slot
}

void PortFifo::AbortIncoming() {
  if (!receiving_) {
    return;
  }
  PushEnd(EndFlags{.truncated = true, .corrupted = true});
}

bool PortFifo::HeadCaptureReady() const {
  if (records_.empty()) {
    return false;
  }
  const PacketRecord& record = records_.front();
  if (record.bytes_consumed > 0) {
    return false;  // already being forwarded
  }
  return record.bytes_entered >= 2 || record.end_in_fifo;
}

std::optional<std::uint32_t> PortFifo::PopByte() {
  if (records_.empty()) {
    return std::nullopt;
  }
  PacketRecord& record = records_.front();
  if (record.bytes_buffered() == 0) {
    return std::nullopt;
  }
  std::uint32_t offset = record.bytes_consumed++;
  Account(-1);
  return offset;
}

bool PortFifo::HeadEndReady() const {
  if (records_.empty()) {
    return false;
  }
  const PacketRecord& record = records_.front();
  return record.end_in_fifo && record.bytes_buffered() == 0;
}

std::optional<EndFlags> PortFifo::TryPopEnd() {
  if (!HeadEndReady()) {
    return std::nullopt;
  }
  PacketRecord record = records_.front();
  records_.pop_front();
  Account(-1);
  return EndFlags{.truncated = record.truncated, .corrupted = record.corrupted};
}

void PortFifo::Clear() {
  records_.clear();
  occupancy_ = 0;
  receiving_ = false;
}

}  // namespace autonet
