// A forwarder is an active crossbar connection: it pumps symbols from one
// receive FIFO to a set of output ports, one byte per data slot (cut-
// through, section 3.5).  A forwarder with no output ports drains and
// discards the head packet (a forwarding-table discard entry).
//
// Flow-control interaction:
//   * transmission does not begin until every chosen output port's last
//     received directive allows it;
//   * an alternatives (unicast) forwarder stalls mid-packet whenever its
//     output port is stopped;
//   * a broadcast forwarder, under the paper's deadlock fix (section 6.6.6),
//     ignores stop once transmission has begun.  Config::broadcast_ignores_
//     stop=false restores the deadlocking behaviour of Figure 9 for the E7
//     baseline.
#ifndef SRC_FABRIC_FORWARDER_H_
#define SRC_FABRIC_FORWARDER_H_

#include <cstdint>

#include "src/common/ids.h"
#include "src/common/port_vector.h"
#include "src/common/time.h"
#include "src/link/link.h"
#include "src/sim/simulator.h"

namespace autonet {

class LinkUnit;
class Port;
class PortFifo;
class Switch;

class Forwarder {
 public:
  Forwarder(Switch* owner, PortNum inport, PortVector outports,
            bool broadcast);
  ~Forwarder();

  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  void Start();

  // New symbols arrived in the input FIFO.  Inline: called once per
  // received byte; while the pump train is scheduled this is one compare.
  void OnFifoActivity() {
    if (!finished_ && !pump_event_.valid()) {
      SchedulePump();
    }
  }
  // An output port's flow-control gate changed.
  void OnThrottleChange();
  // Switch reset: terminate, transmitting a truncated end if mid-packet.
  // The owner destroys the forwarder afterwards.
  void Abort();

  PortNum inport() const { return inport_; }
  PortVector outports() const { return outports_; }
  bool broadcast() const { return broadcast_; }
  bool drain_only() const { return outports_.empty(); }

 private:
  bool OutputsAllowTransmit() const;
  bool StalledByFlowControl() const;
  void SchedulePump();
  Simulator::TrainStep PumpStep();
  void Finish(EndFlags flags);

  Switch* owner_;
  PortNum inport_;
  PortVector outports_;
  bool broadcast_;
  // Hot-path caches, valid for the forwarder's whole life (ports are owned
  // by the switch and outlive every forwarder).  `in_port_` skips the
  // per-byte unique_ptr deref; `fast_out_` is the single external output
  // port of a unicast forwarder (nullptr otherwise), letting the byte pump
  // call the final LinkUnit::SendByte directly instead of iterating the
  // port vector through a virtual call.
  Port* in_port_ = nullptr;
  LinkUnit* fast_out_ = nullptr;
  // Cached OutputsAllowTransmit(): the flow gate is queried once per pumped
  // byte but changes only when a port's received directive flips, which the
  // switch signals via OnThrottleChange.  (CpPort's gate is constant, so
  // directive flips are the only invalidation source.)
  bool outputs_allow_ = false;
  bool begun_ = false;       // begin command sent
  bool finished_ = false;
  std::size_t bytes_moved_ = 0;
  // The pump train: one queue entry that re-anchors itself data slot by
  // data slot while the forwarder is streaming, and ends (TrainStep::Done)
  // when the forwarder parks waiting for bytes or a throttle change.
  Simulator::EventId pump_event_;
};

}  // namespace autonet

#endif  // SRC_FABRIC_FORWARDER_H_
