// A forwarder is an active crossbar connection: it pumps symbols from one
// receive FIFO to a set of output ports, one byte per data slot (cut-
// through, section 3.5).  A forwarder with no output ports drains and
// discards the head packet (a forwarding-table discard entry).
//
// Flow-control interaction:
//   * transmission does not begin until every chosen output port's last
//     received directive allows it;
//   * an alternatives (unicast) forwarder stalls mid-packet whenever its
//     output port is stopped;
//   * a broadcast forwarder, under the paper's deadlock fix (section 6.6.6),
//     ignores stop once transmission has begun.  Config::broadcast_ignores_
//     stop=false restores the deadlocking behaviour of Figure 9 for the E7
//     baseline.
#ifndef SRC_FABRIC_FORWARDER_H_
#define SRC_FABRIC_FORWARDER_H_

#include <cstdint>

#include "src/common/ids.h"
#include "src/common/port_vector.h"
#include "src/common/time.h"
#include "src/link/link.h"
#include "src/sim/simulator.h"

namespace autonet {

class Switch;

class Forwarder {
 public:
  Forwarder(Switch* owner, PortNum inport, PortVector outports,
            bool broadcast);
  ~Forwarder();

  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  void Start();

  // New symbols arrived in the input FIFO.
  void OnFifoActivity();
  // An output port's flow-control gate changed.
  void OnThrottleChange();
  // Switch reset: terminate, transmitting a truncated end if mid-packet.
  // The owner destroys the forwarder afterwards.
  void Abort();

  PortNum inport() const { return inport_; }
  PortVector outports() const { return outports_; }
  bool broadcast() const { return broadcast_; }
  bool drain_only() const { return outports_.empty(); }

 private:
  bool OutputsAllowTransmit() const;
  bool StalledByFlowControl() const;
  void SchedulePump();
  void Pump();
  void Finish(EndFlags flags);

  Switch* owner_;
  PortNum inport_;
  PortVector outports_;
  bool broadcast_;
  bool begun_ = false;       // begin command sent
  bool finished_ = false;
  std::size_t bytes_moved_ = 0;
  Simulator::EventId pump_event_;
};

}  // namespace autonet

#endif  // SRC_FABRIC_FORWARDER_H_
