// The first-come, first-considered scheduling engine (section 6.4,
// Figure 7).  Forwarding requests — one outstanding per receive port, since
// head-of-line blocking means only the packet at the FIFO head is considered
// — are held in arrival order.  Each engine cycle (480 ns, the 6-clock
// decision period giving 2 M requests/second) a vector of free transmit
// ports is matched against the queue, oldest request first:
//
//   * an alternatives request captures any one matching free port (lowest
//     port number on ties) and is granted;
//   * a broadcast request *accumulates* matching free ports, holding them
//     reserved, and is granted once its whole set is captured.  Reserved
//     ports are withheld from younger requests, so a broadcast request's
//     effective priority rises until it is served — the paper's starvation-
//     freedom argument.
//
// Queue jumping: younger requests may be granted ports useless to older
// ones.  A `fcfs` baseline mode (strict in-order service, used by the E9
// bench) shows why that matters.
#ifndef SRC_FABRIC_SCHEDULER_H_
#define SRC_FABRIC_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/ids.h"
#include "src/common/port_vector.h"
#include "src/common/time.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace autonet {

class SchedulerEngine {
 public:
  struct Config {
    Tick cycle_ns = kRouterCycleNs;
    bool fcfs = false;  // baseline: only the oldest request is considered
  };

  struct Request {
    PortNum inport = -1;
    PortVector want;
    bool broadcast = false;
    Tick enqueued_at = 0;
    PortVector reserved;  // broadcast accumulation (internal)
  };

  // Returns the ports currently free for assignment (not busy transmitting).
  using FreePortsFn = std::function<PortVector()>;
  // Called when a request is granted.  `ports` is the single chosen port for
  // an alternatives request or the full set for a broadcast request.
  using GrantFn = std::function<void(const Request&, PortVector ports)>;

  SchedulerEngine(Simulator* sim, Config config)
      : sim_(sim), config_(config) {}

  void SetHooks(FreePortsFn free_ports, GrantFn grant) {
    free_ports_ = std::move(free_ports);
    grant_ = std::move(grant);
  }

  void Enqueue(PortNum inport, PortVector want, bool broadcast);
  bool HasRequest(PortNum inport) const;
  // Removes a pending request (switch reset / link-unit reset), releasing
  // any broadcast reservations.
  void Remove(PortNum inport);
  void Clear();

  // An output port was freed: make sure a matching cycle will run.
  void Kick();

  // Registry instruments, owned by the registry; set by the owning switch.
  // `blocked_cycles` counts engine cycles that ran with a non-empty queue
  // but granted nothing — every request was blocked on busy crossbar slots.
  void SetMetrics(obs::Counter* grants, obs::Counter* blocked_cycles) {
    grants_metric_ = grants;
    blocked_cycles_metric_ = blocked_cycles;
  }

  std::uint64_t grants() const { return grants_; }
  std::size_t queue_length() const { return queue_.size(); }
  Tick total_wait_ns() const { return total_wait_ns_; }

 private:
  void EnsureCycleScheduled();
  void RunCycle();

  Simulator* sim_;
  Config config_;
  FreePortsFn free_ports_;
  GrantFn grant_;
  std::vector<Request> queue_;  // index 0 = oldest
  PortVector reserved_total_;
  bool cycle_scheduled_ = false;
  std::uint64_t grants_ = 0;
  Tick total_wait_ns_ = 0;
  obs::Counter* grants_metric_ = nullptr;
  obs::Counter* blocked_cycles_metric_ = nullptr;
};

}  // namespace autonet

#endif  // SRC_FABRIC_SCHEDULER_H_
