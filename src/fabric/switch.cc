#include "src/fabric/switch.h"

#include <cassert>
#include <utility>

namespace autonet {

Switch::Switch(Simulator* sim, Uid uid, std::string name, Config config)
    : sim_(sim),
      uid_(uid),
      name_(std::move(name)),
      config_(config),
      log_(name_),
      sched_(sim, SchedulerEngine::Config{config.router_cycle_ns,
                                          config.fcfs_scheduler}) {
  const std::string prefix = "switch." + name_ + ".fabric.";
  obs::MetricRegistry& reg = sim_->metrics();
  m_packets_forwarded_ = reg.GetCounter(prefix + "packets_forwarded");
  m_packets_discarded_ = reg.GetCounter(prefix + "packets_discarded");
  m_bytes_forwarded_ = reg.GetCounter(prefix + "bytes_forwarded");
  m_table_loads_ = reg.GetCounter(prefix + "table_loads");
  m_resets_ = reg.GetCounter(prefix + "resets");
  sched_.SetMetrics(reg.GetCounter(prefix + "sched_grants"),
                    reg.GetCounter(prefix + "sched_blocked_cycles"));
  for (PortNum p = 0; p < kPortsPerSwitch; ++p) {
    m_fifo_hwm_[p] = reg.GetGauge(prefix + "port" + std::to_string(p) +
                                  ".fifo_hwm_bytes");
  }
  auto cp = std::make_unique<CpPort>(this, config_.cp_fifo_capacity);
  cp_port_ = cp.get();
  ports_[kCpPort] = std::move(cp);
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    ports_[p] = std::make_unique<LinkUnit>(this, p, config_.fifo_capacity);
  }
  sched_.SetHooks([this] { return FreeOutputPorts(); },
                  [this](const SchedulerEngine::Request& request,
                         PortVector ports) { Grant(request, ports); });
  flight_ = sim_->flight().Ring(name_, uid_);
}

Switch::Switch(Simulator* sim, Uid uid, std::string name)
    : Switch(sim, uid, std::move(name), Config()) {}

Switch::~Switch() {
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    static_cast<LinkUnit*>(ports_[p].get())->DetachLink();
  }
}

void Switch::AttachLink(PortNum port, Link* link, Link::Side side) {
  link_unit(port).AttachLink(link, side);
}

void Switch::DetachLink(PortNum port) { link_unit(port).DetachLink(); }

void Switch::SetCpHandler(CpPort::DeliveryHandler handler) {
  cp_port_->SetDeliveryHandler(std::move(handler));
}

void Switch::CpSend(const PacketRef& packet) { cp_port_->InjectPacket(packet); }

PortStatus Switch::ReadAndClearStatus(PortNum port) {
  return link_unit(port).ReadAndClearStatus();
}

void Switch::SetPortForceIdhy(PortNum port, bool force) {
  link_unit(port).SetForceIdhy(force);
}

void Switch::SendPanic(PortNum port) { link_unit(port).SendPanicPulse(); }

void Switch::LoadForwardingTable(const ForwardingTable& table) {
  table_ = table;
  m_table_loads_->Increment();
  if (flight_->armed()) {
    // The switch does not know the reconfiguration epoch; the post-mortem
    // reconstructor attributes the install to the latest epoch-join at or
    // before this time on the same ring.
    static const ForwardingTable kOneHop = ForwardingTable::OneHopOnly();
    obs::FlightEvent ev;
    ev.time = sim_->now();
    ev.kind = obs::FlightEventKind::kRouteInstall;
    ev.a = (table == kOneHop) ? 0 : 1;  // 0 = one-hop bootstrap, 1 = full
    ev.b = config_.reset_on_table_load ? 1 : 0;
    flight_->Record(ev);
  }
  if (!config_.reset_on_table_load) {
    return;
  }
  // Loading the table resets the switch, destroying every packet in it
  // (section 7): abort all crossbar connections, flush all FIFOs, drop all
  // pending requests and staged control-processor packets.
  m_resets_->Increment();
  sched_.Clear();
  for (PortNum p = 0; p < kPortsPerSwitch; ++p) {
    if (capture_event_[p].valid()) {
      sim_->Cancel(capture_event_[p]);
      capture_event_[p] = {};
    }
    if (forwarders_[p] != nullptr) {
      forwarders_[p]->Abort();
      forwarders_[p]->outports().ForEach(
          [&](PortNum out) { ports_[out]->set_tx_busy(false); });
      forwarders_[p].reset();
    }
    in_state_[p] = InState::kIdle;
  }
  cp_port_->Reset();
  for (PortNum p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    ports_[p]->fifo().Clear();
    link_unit(p).UpdateOutgoingFlow();
  }
  sched_.Kick();
}

PortVector Switch::FreeOutputPorts() const {
  PortVector free;
  for (PortNum p = 0; p < kPortsPerSwitch; ++p) {
    if (!ports_[p]->tx_busy()) {
      free.Set(p);
    }
  }
  return free;
}

Switch::Stats Switch::stats() const {
  Stats s;
  s.packets_forwarded = m_packets_forwarded_->value();
  s.packets_discarded = m_packets_discarded_->value();
  s.bytes_forwarded = m_bytes_forwarded_->value();
  s.table_loads = m_table_loads_->value();
  s.resets = m_resets_->value();
  return s;
}

void Switch::OnXmitOkChange(PortNum p) {
  for (auto& fwd : forwarders_) {
    if (fwd != nullptr && fwd->outports().Test(p)) {
      fwd->OnThrottleChange();
    }
  }
}

void Switch::CancelInputActivity(PortNum p) {
  if (capture_event_[p].valid()) {
    sim_->Cancel(capture_event_[p]);
    capture_event_[p] = {};
  }
  sched_.Remove(p);
  if (forwarders_[p] != nullptr) {
    forwarders_[p]->Abort();
    forwarders_[p]->outports().ForEach(
        [&](PortNum out) { ports_[out]->set_tx_busy(false); });
    forwarders_[p].reset();
    sched_.Kick();
  }
  in_state_[p] = InState::kIdle;
}

void Switch::OnPortReceiveReset(PortNum p) {
  CancelInputActivity(p);
  MaybeCapture(p);
}

void Switch::MaybeCapture(PortNum p) {
  if (in_state_[p] != InState::kIdle || !ports_[p]->fifo().HeadCaptureReady()) {
    return;
  }
  in_state_[p] = InState::kCapturePending;
  capture_event_[p] = sim_->ScheduleAfter(config_.capture_delay_ns, [this, p] {
    capture_event_[p] = {};
    DoCapture(p);
  });
}

void Switch::DoCapture(PortNum p) {
  assert(in_state_[p] == InState::kCapturePending);
  PortFifo& fifo = ports_[p]->fifo();
  if (!fifo.HasHead()) {
    in_state_[p] = InState::kIdle;
    return;
  }
  ForwardingTable::Entry entry = table_.Lookup(p, fifo.head().capture_addr);
  if (entry.IsDiscard()) {
    // Drain and discard the packet.
    StartForwarder(p, PortVector(), false);
    return;
  }
  in_state_[p] = InState::kRequested;
  sched_.Enqueue(p, entry.ports, entry.broadcast);
}

void Switch::Grant(const SchedulerEngine::Request& request, PortVector ports) {
  assert(in_state_[request.inport] == InState::kRequested);
  StartForwarder(request.inport, ports, request.broadcast);
}

void Switch::StartForwarder(PortNum inport, PortVector outports,
                            bool broadcast) {
  in_state_[inport] = InState::kForwarding;
  outports.ForEach([&](PortNum p) { ports_[p]->set_tx_busy(true); });
  forwarders_[inport] =
      std::make_unique<Forwarder>(this, inport, outports, broadcast);
  forwarders_[inport]->Start();
}

void Switch::OnForwarderDone(PortNum inport, bool discarded,
                             std::size_t bytes_moved) {
  std::unique_ptr<Forwarder> done = std::move(forwarders_[inport]);
  done->outports().ForEach(
      [&](PortNum out) { ports_[out]->set_tx_busy(false); });
  in_state_[inport] = InState::kIdle;
  if (discarded) {
    m_packets_discarded_->Increment();
  } else {
    m_packets_forwarded_->Increment();
    m_bytes_forwarded_->Increment(bytes_moved);
  }
  // Keep `done` alive until we return out of its call frame.
  sched_.Kick();
  PortNum p = inport;
  sim_->ScheduleAfter(0, [this, p, keep = std::shared_ptr<Forwarder>(
                                       done.release())] { MaybeCapture(p); });
}

}  // namespace autonet
