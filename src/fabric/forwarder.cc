#include "src/fabric/forwarder.h"

#include "src/fabric/switch.h"
#include "src/link/slots.h"

namespace autonet {

Forwarder::Forwarder(Switch* owner, PortNum inport, PortVector outports,
                     bool broadcast)
    : owner_(owner),
      inport_(inport),
      outports_(outports),
      broadcast_(broadcast) {
  outputs_allow_ = OutputsAllowTransmit();
  in_port_ = &owner_->port(inport_);
  if (outports_.Count() == 1 && outports_.Lowest() >= kFirstExternalPort) {
    fast_out_ = &owner_->link_unit(outports_.Lowest());
  }
}

Forwarder::~Forwarder() {
  if (pump_event_.valid()) {
    owner_->sim()->Cancel(pump_event_);
  }
}

void Forwarder::Start() { SchedulePump(); }

bool Forwarder::OutputsAllowTransmit() const {
  bool ok = true;
  outports_.ForEach([&](PortNum p) {
    if (!owner_->port(p).CanTransmitNow()) {
      ok = false;
    }
  });
  return ok;
}

bool Forwarder::StalledByFlowControl() const {
  if (drain_only()) {
    return false;
  }
  if (!begun_) {
    // Transmission must begin under a start (or host) directive on every
    // chosen output port.
    return !outputs_allow_;
  }
  if (broadcast_ && owner_->config().broadcast_ignores_stop) {
    return false;  // section 6.6.6 fix: ignore stop until end of packet
  }
  return !outputs_allow_;
}

void Forwarder::SchedulePump() {
  if (pump_event_.valid() || finished_) {
    return;
  }
  // One train per streaming burst: each PumpStep re-anchors the single
  // queue entry at the next data slot (flow slots make the grid non-
  // arithmetic, so the handler steers every step) and ends the train when
  // the forwarder parks.
  Tick when = NextDataSlotAfter(owner_->now());
  pump_event_ = owner_->sim()->ScheduleTrainRawAt(
      when, 0,
      [](void* self, std::uint64_t, std::uint32_t) {
        return static_cast<Forwarder*>(self)->PumpStep();
      },
      this, 0);
}

void Forwarder::OnThrottleChange() {
  outputs_allow_ = OutputsAllowTransmit();
  if (!finished_ && !StalledByFlowControl()) {
    SchedulePump();
  }
}

Simulator::TrainStep Forwarder::PumpStep() {
  if (finished_) {
    pump_event_ = {};
    return Simulator::TrainStep::Done();
  }
  if (StalledByFlowControl()) {
    pump_event_ = {};
    return Simulator::TrainStep::Done();  // resume on OnThrottleChange
  }
  if (!begun_) {
    // Transmit the begin command (one slot), then stream bytes.
    PortFifo& fifo = in_port_->fifo();
    if (!fifo.HasHead()) {
      pump_event_ = {};
      return Simulator::TrainStep::Done();  // reset raced us; owner cleans up
    }
    const PacketRef& packet = fifo.head().packet;
    if (outports_.Test(kCpPort)) {
      owner_->NoteCpArrivalPort(inport_);
    }
    outports_.ForEach(
        [&](PortNum p) { owner_->port(p).SendBegin(packet); });
    begun_ = true;
    bytes_moved_ = 0;
    return Simulator::TrainStep::At(NextDataSlotAfter(owner_->now()));
  }
  PortFifo& fifo = in_port_->fifo();
  if (auto offset = fifo.PopByte()) {
    const PacketRef& packet = fifo.head().packet;
    if (fast_out_ != nullptr) {
      fast_out_->SendByte(packet, *offset);
    } else {
      outports_.ForEach(
          [&](PortNum p) { owner_->port(p).SendByte(packet, *offset); });
    }
    ++bytes_moved_;
    owner_->AfterFifoPop(inport_);
    return Simulator::TrainStep::At(NextDataSlotAfter(owner_->now()));
  }
  if (auto end = fifo.TryPopEnd()) {
    owner_->AfterFifoPop(inport_);
    pump_event_ = {};
    // Finish's last action destroys this forwarder (OnForwarderDone), so
    // nothing below may touch members.
    Finish(*end);
    return Simulator::TrainStep::Done();
  }
  // Mid-packet with nothing buffered: the upstream transmitter has been
  // stopped somewhere behind us.  The Underflow status condition.
  owner_->port(inport_).RecordUnderflow();
  pump_event_ = {};
  // Resume when bytes arrive (OnFifoActivity).
  return Simulator::TrainStep::Done();
}

void Forwarder::Finish(EndFlags flags) {
  finished_ = true;
  if (pump_event_.valid()) {
    owner_->sim()->Cancel(pump_event_);
    pump_event_ = {};
  }
  outports_.ForEach([&](PortNum p) { owner_->port(p).SendEnd(flags); });
  // Must be the last action: the owner destroys this forwarder.
  owner_->OnForwarderDone(inport_, drain_only(), bytes_moved_);
}

void Forwarder::Abort() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (pump_event_.valid()) {
    owner_->sim()->Cancel(pump_event_);
    pump_event_ = {};
  }
  if (begun_) {
    // The packet loses its tail; downstream sees a truncated end.
    outports_.ForEach([&](PortNum p) {
      owner_->port(p).SendEnd(EndFlags{.truncated = true, .corrupted = true});
    });
  }
}

}  // namespace autonet
