#include "src/fabric/forwarder.h"

#include "src/fabric/switch.h"
#include "src/link/slots.h"

namespace autonet {

Forwarder::Forwarder(Switch* owner, PortNum inport, PortVector outports,
                     bool broadcast)
    : owner_(owner),
      inport_(inport),
      outports_(outports),
      broadcast_(broadcast) {}

Forwarder::~Forwarder() {
  if (pump_event_.valid()) {
    owner_->sim()->Cancel(pump_event_);
  }
}

void Forwarder::Start() { SchedulePump(); }

bool Forwarder::OutputsAllowTransmit() const {
  bool ok = true;
  outports_.ForEach([&](PortNum p) {
    if (!owner_->port(p).CanTransmitNow()) {
      ok = false;
    }
  });
  return ok;
}

bool Forwarder::StalledByFlowControl() const {
  if (drain_only()) {
    return false;
  }
  if (!begun_) {
    // Transmission must begin under a start (or host) directive on every
    // chosen output port.
    return !OutputsAllowTransmit();
  }
  if (broadcast_ && owner_->config().broadcast_ignores_stop) {
    return false;  // section 6.6.6 fix: ignore stop until end of packet
  }
  return !OutputsAllowTransmit();
}

void Forwarder::SchedulePump() {
  if (pump_event_.valid() || finished_) {
    return;
  }
  Tick when = NextDataSlotAfter(owner_->now());
  pump_event_ = owner_->sim()->ScheduleAt(when, [this] {
    pump_event_ = {};
    Pump();
  });
}

void Forwarder::OnFifoActivity() {
  if (!finished_) {
    SchedulePump();
  }
}

void Forwarder::OnThrottleChange() {
  if (!finished_ && !StalledByFlowControl()) {
    SchedulePump();
  }
}

void Forwarder::Pump() {
  if (finished_) {
    return;
  }
  if (StalledByFlowControl()) {
    return;  // resume on OnThrottleChange
  }
  if (!begun_) {
    // Transmit the begin command (one slot), then stream bytes.
    PortFifo& fifo = owner_->port(inport_).fifo();
    if (!fifo.HasHead()) {
      return;  // reset raced us; owner will clean up
    }
    const PacketRef& packet = fifo.head().packet;
    if (outports_.Test(kCpPort)) {
      owner_->NoteCpArrivalPort(inport_);
    }
    outports_.ForEach(
        [&](PortNum p) { owner_->port(p).SendBegin(packet); });
    begun_ = true;
    bytes_moved_ = 0;
    SchedulePump();
    return;
  }
  PortFifo& fifo = owner_->port(inport_).fifo();
  if (auto offset = fifo.PopByte()) {
    const PacketRef& packet = fifo.head().packet;
    outports_.ForEach(
        [&](PortNum p) { owner_->port(p).SendByte(packet, *offset); });
    ++bytes_moved_;
    owner_->AfterFifoPop(inport_);
    SchedulePump();
    return;
  }
  if (auto end = fifo.TryPopEnd()) {
    owner_->AfterFifoPop(inport_);
    Finish(*end);
    return;
  }
  // Mid-packet with nothing buffered: the upstream transmitter has been
  // stopped somewhere behind us.  The Underflow status condition.
  owner_->port(inport_).RecordUnderflow();
  // Resume when bytes arrive (OnFifoActivity).
}

void Forwarder::Finish(EndFlags flags) {
  finished_ = true;
  if (pump_event_.valid()) {
    owner_->sim()->Cancel(pump_event_);
    pump_event_ = {};
  }
  outports_.ForEach([&](PortNum p) { owner_->port(p).SendEnd(flags); });
  // Must be the last action: the owner destroys this forwarder.
  owner_->OnForwarderDone(inport_, drain_only(), bytes_moved_);
}

void Forwarder::Abort() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (pump_event_.valid()) {
    owner_->sim()->Cancel(pump_event_);
    pump_event_ = {};
  }
  if (begun_) {
    // The packet loses its tail; downstream sees a truncated end.
    outports_.ForEach([&](PortNum p) {
      owner_->port(p).SendEnd(EndFlags{.truncated = true, .corrupted = true});
    });
  }
}

}  // namespace autonet
