// An Autonet switch (section 5.1): 12 external link units and the control-
// processor port joined by a 13x13 crossbar, a forwarding table indexed by
// (receiving port, destination short address), and the first-come, first-
// considered scheduling engine.  The control program (Autopilot) drives the
// switch exclusively through the control-processor interface: packet
// send/receive on port 0, status-bit reads, idhy forcing, and forwarding
// table loads.
#ifndef SRC_FABRIC_SWITCH_H_
#define SRC_FABRIC_SWITCH_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/event_log.h"
#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/fabric/cp_port.h"
#include "src/fabric/forwarder.h"
#include "src/fabric/forwarding_table.h"
#include "src/fabric/link_unit.h"
#include "src/fabric/scheduler.h"
#include "src/sim/simulator.h"

namespace autonet {

class Switch {
 public:
  struct Config {
    std::size_t fifo_capacity = 4096;       // bytes per receive FIFO
    std::size_t cp_fifo_capacity = 1 << 20; // control-processor memory
    // Receive pipeline + address capture time, from the second address byte
    // reaching the FIFO head to the routing request.  Calibrated so the
    // idle cut-through transit lands in the paper's 26..32 cycle window.
    Tick capture_delay_ns = 1360;
    Tick router_cycle_ns = kRouterCycleNs;
    bool fcfs_scheduler = false;            // E9 baseline
    bool broadcast_ignores_stop = true;     // section 6.6.6 deadlock fix
    // The prototype's hardware requires a reset (destroying all packets in
    // the switch) to load the forwarding table — the section 7 lesson.
    // Clearing this models the proposed improved hardware.
    bool reset_on_table_load = true;
  };

  // Snapshot of the switch's registry counters, assembled on demand.  The
  // live values are `switch.<name>.fabric.*` counters in the simulator's
  // metric registry, so they are also visible to JSON snapshots and the
  // SRP GetStats query.
  struct Stats {
    std::uint64_t packets_forwarded = 0;
    std::uint64_t packets_discarded = 0;
    std::uint64_t bytes_forwarded = 0;
    std::uint64_t table_loads = 0;
    std::uint64_t resets = 0;
  };

  Switch(Simulator* sim, Uid uid, std::string name, Config config);
  Switch(Simulator* sim, Uid uid, std::string name);
  ~Switch();

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  Simulator* sim() { return sim_; }
  Tick now() const { return sim_->now(); }
  Uid uid() const { return uid_; }
  const std::string& name() const { return name_; }
  const Config& config() const { return config_; }

  // --- cabling ---
  void AttachLink(PortNum port, Link* link, Link::Side side);
  void DetachLink(PortNum port);
  LinkUnit& link_unit(PortNum port) {
    assert(port >= kFirstExternalPort && port < kPortsPerSwitch);
    return *static_cast<LinkUnit*>(ports_[port].get());
  }
  const LinkUnit& link_unit(PortNum port) const {
    assert(port >= kFirstExternalPort && port < kPortsPerSwitch);
    return *static_cast<const LinkUnit*>(ports_[port].get());
  }
  CpPort& cp_port() { return *cp_port_; }

  // --- control-processor interface ---
  void SetCpHandler(CpPort::DeliveryHandler handler);
  void CpSend(const PacketRef& packet);
  PortStatus ReadAndClearStatus(PortNum port);
  void SetPortForceIdhy(PortNum port, bool force);
  void SendPanic(PortNum port);
  // Loads a new forwarding table.  With reset_on_table_load this resets the
  // switch: every packet in transit through it is destroyed.
  void LoadForwardingTable(const ForwardingTable& table);
  const ForwardingTable& forwarding_table() const { return table_; }
  // Fault-injection surface (see src/adversary/): flips bits in one live
  // table entry in place — no reset, no table-load accounting, exactly a
  // memory fault in the table RAM.  Autopilot's table scrubber is the
  // recovery path.
  void CorruptTableEntry(PortNum inport, ShortAddress addr,
                         std::uint16_t xor_mask) {
    table_.CorruptBits(inport, addr, xor_mask);
  }

  Stats stats() const;
  EventLog& log() { return log_; }
  SchedulerEngine& scheduler() { return sched_; }

  // --- internal plumbing, called by ports and forwarders ---
  Port& port(PortNum p) { return *ports_[p]; }
  // Inline: runs once per received byte on the forwarding hot path.
  void OnFifoActivity(PortNum p) {
    // High-water-mark gauge behind an integer shadow: the gauge is only
    // touched when a new maximum is set, so the steady-state byte costs one
    // integer compare instead of an int->double convert + double max.
    std::size_t occ = ports_[p]->fifo().occupancy();
    if (occ > fifo_hwm_shadow_[p]) {
      fifo_hwm_shadow_[p] = occ;
      m_fifo_hwm_[p]->SetMax(static_cast<double>(occ));
    }
    switch (in_state_[p]) {
      case InState::kIdle:
        MaybeCapture(p);
        break;
      case InState::kForwarding:
        forwarders_[p]->OnFifoActivity();
        break;
      case InState::kCapturePending:
      case InState::kRequested:
        break;
    }
  }
  void OnXmitOkChange(PortNum p);
  void OnPortReceiveReset(PortNum p);
  // Inline: runs once per forwarded byte on the forwarding hot path.
  void AfterFifoPop(PortNum p) {
    if (p == kCpPort) {
      cp_port_->PumpPending();
    } else {
      LinkUnit& unit = link_unit(p);
      unit.NoteBytesForwarded(1);  // ProgressSeen evidence for the sampler
      unit.UpdateOutgoingFlow();
    }
  }
  PortVector FreeOutputPorts() const;
  void NoteCpArrivalPort(PortNum p) { cp_port_->NoteArrivalPort(p); }
  // The forwarder for `inport` completed (sent its end mark or drained a
  // discarded packet).  The switch frees the output ports and destroys it.
  void OnForwarderDone(PortNum inport, bool discarded,
                       std::size_t bytes_moved);

 private:
  enum class InState : std::uint8_t {
    kIdle,            // no packet captured at this receive FIFO's head
    kCapturePending,  // address capture delay running
    kRequested,       // forwarding request queued in the scheduling engine
    kForwarding,      // crossbar connection active
  };

  void MaybeCapture(PortNum p);
  void DoCapture(PortNum p);
  void Grant(const SchedulerEngine::Request& request, PortVector ports);
  void StartForwarder(PortNum inport, PortVector outports, bool broadcast);
  void CancelInputActivity(PortNum p);

  Simulator* sim_;
  Uid uid_;
  std::string name_;
  Config config_;
  EventLog log_;

  std::array<std::unique_ptr<Port>, kPortsPerSwitch> ports_;
  CpPort* cp_port_ = nullptr;  // alias of ports_[0]
  ForwardingTable table_;
  SchedulerEngine sched_;

  std::array<InState, kPortsPerSwitch> in_state_{};
  std::array<Simulator::EventId, kPortsPerSwitch> capture_event_{};
  std::array<std::unique_ptr<Forwarder>, kPortsPerSwitch> forwarders_;

  obs::FlightRing* flight_;  // owned by the simulator's flight recorder

  // Registry instruments (owned by the simulator's registry).
  obs::Counter* m_packets_forwarded_;
  obs::Counter* m_packets_discarded_;
  obs::Counter* m_bytes_forwarded_;
  obs::Counter* m_table_loads_;
  obs::Counter* m_resets_;
  std::array<obs::Gauge*, kPortsPerSwitch> m_fifo_hwm_{};
  std::array<std::size_t, kPortsPerSwitch> fifo_hwm_shadow_{};
};

}  // namespace autonet

#endif  // SRC_FABRIC_SWITCH_H_
