#include "src/fabric/link_unit.h"

#include "src/fabric/switch.h"

namespace autonet {

LinkUnit::LinkUnit(Switch* owner, PortNum port_num, std::size_t fifo_capacity)
    : Port(fifo_capacity), owner_(owner), port_num_(port_num) {
  obs::MetricRegistry& reg = owner_->sim()->metrics();
  const std::string prefix = "switch." + owner_->name() + ".link.";
  m_flow_stops_ = reg.GetCounter(prefix + "flow_stops");
  m_stop_interval_ns_ = reg.GetHistogram(prefix + "stop_interval_ns");
}

void LinkUnit::AttachLink(Link* link, Link::Side side) {
  link_ = link;
  side_ = side;
  link_->Attach(side, this);
  status_.carrier = link_->CarrierAt(side_);
  UpdateOutgoingFlow();
}

void LinkUnit::DetachLink() {
  if (link_ != nullptr) {
    link_->Detach(side_);
    link_ = nullptr;
  }
  status_.carrier = false;
}

PortStatus LinkUnit::ReadAndClearStatus() {
  PortStatus snapshot = status_;
  snapshot.is_host = last_rx_directive_ == FlowDirective::kHost;
  snapshot.xmit_ok = DirectiveAllowsTransmit(last_rx_directive_);
  snapshot.in_packet = tx_in_packet_;
  snapshot.carrier = link_ != nullptr && link_->CarrierAt(side_);
  snapshot.last_rx_directive = last_rx_directive_;
  snapshot.fifo_occupancy = fifo_.occupancy();
  if (link_ != nullptr) {
    // Flow slots that carried sync instead of a directive (alternate host
    // port attached) surface as BadSyntax, which is how the status sampler
    // recognises an alternate host port (section 6.5.3).
    std::int64_t missed =
        link_->MissedDirectiveSlots(side_, last_status_read_);
    snapshot.bad_syntax += static_cast<std::uint32_t>(
        missed > 0xFFFF ? 0xFFFF : missed);
  }
  last_status_read_ = link_ != nullptr ? link_->sim()->now() : last_status_read_;
  // Clear the accumulated counters; keep the currents.
  status_ = PortStatus{};
  status_.carrier = snapshot.carrier;
  return snapshot;
}

void LinkUnit::SetForceIdhy(bool force) {
  if (force_idhy_ == force) {
    return;
  }
  force_idhy_ = force;
  UpdateOutgoingFlow();
}

void LinkUnit::SendPanicPulse() {
  if (link_ == nullptr) {
    return;
  }
  link_->SetFlowDirective(side_, FlowDirective::kPanic);
  // Resume normal flow control after one flow-slot period.
  link_->sim()->ScheduleAfter(kFlowSlotPeriod * kSlotNs,
                              [this] { UpdateOutgoingFlow(); });
}

bool LinkUnit::CanTransmitNow() const {
  return DirectiveAllowsTransmit(last_rx_directive_);
}

void LinkUnit::SendBegin(const PacketRef& packet) {
  tx_in_packet_ = true;
  if (link_ != nullptr) {
    link_->TransmitBegin(side_, packet);
  }
}

void LinkUnit::SendEnd(EndFlags flags) {
  tx_in_packet_ = false;
  if (link_ != nullptr) {
    link_->TransmitEnd(side_, flags);
  }
}

void LinkUnit::OnPacketBegin(const PacketRef& packet) {
  if (fifo_.receiving()) {
    // begin inside a packet: improper framing.
    ++status_.bad_syntax;
    fifo_.AbortIncoming();
  }
  fifo_.PushBegin(packet);
}

void LinkUnit::OnDataByte(const PacketRef& packet, std::uint32_t offset,
                          bool corrupt) {
  (void)packet;
  (void)offset;
  if (!fifo_.receiving()) {
    ++status_.bad_syntax;  // data outside a packet
    return;
  }
  if (corrupt) {
    ++status_.bad_code;
    fifo_.MarkIncomingCorrupt();
  }
  bool was_half = fifo_.MoreThanHalfFull();
  if (!fifo_.PushByte()) {
    ++status_.overflow;
  }
  if (fifo_.MoreThanHalfFull() != was_half) {
    UpdateOutgoingFlow();
  }
  owner_->OnFifoActivity(port_num_);
}

void LinkUnit::OnPacketEnd(EndFlags flags) {
  if (!fifo_.receiving()) {
    ++status_.bad_syntax;
    return;
  }
  fifo_.PushEnd(flags);
  owner_->OnFifoActivity(port_num_);
}

void LinkUnit::OnFlowDirective(FlowDirective directive) {
  switch (directive) {
    case FlowDirective::kStart:
    case FlowDirective::kHost:
      ++status_.start_seen;
      break;
    case FlowDirective::kIdhy:
      ++status_.idhy_seen;
      break;
    case FlowDirective::kPanic:
      ++status_.panic_seen;
      // Panic resets the link unit so reconfiguration packets get through.
      ResetReceiveSide();
      break;
    case FlowDirective::kStop:
    case FlowDirective::kNone:
      break;
  }
  bool could_transmit = DirectiveAllowsTransmit(last_rx_directive_);
  last_rx_directive_ = directive;
  if (DirectiveAllowsTransmit(directive) != could_transmit) {
    owner_->OnXmitOkChange(port_num_);
  }
}

void LinkUnit::OnCarrierChange(bool carrier_up) {
  status_.carrier = carrier_up;
  if (!carrier_up) {
    if (fifo_.receiving()) {
      ++status_.bad_syntax;  // packet truncated by loss of signal
      fifo_.AbortIncoming();
      owner_->OnFifoActivity(port_num_);
    }
    // Loss of signal shows up as code violations at the TAXI receiver.
    ++status_.bad_code;
  }
}

void LinkUnit::NoteDirectiveTransition(FlowDirective d) {
  Tick now = owner_->now();
  if (d == FlowDirective::kStop) {
    m_flow_stops_->Increment();
    stop_began_ = now;
  } else if (last_tx_directive_ == FlowDirective::kStop && stop_began_ >= 0) {
    m_stop_interval_ns_->Add(static_cast<double>(now - stop_began_));
    stop_began_ = -1;
  }
  last_tx_directive_ = d;
}

void LinkUnit::ResetReceiveSide() {
  fifo_.Clear();
  owner_->OnPortReceiveReset(port_num_);
  UpdateOutgoingFlow();
}

}  // namespace autonet
