// One of the 13 crossbar positions of a switch.  A port has an input side —
// a receive FIFO feeding the crossbar — and an output side that transmits
// symbols out of the switch (down a link for external ports; into control-
// processor memory for port 0).
#ifndef SRC_FABRIC_PORT_H_
#define SRC_FABRIC_PORT_H_

#include <cstdint>

#include "src/common/packet.h"
#include "src/fabric/port_fifo.h"
#include "src/link/link.h"

namespace autonet {

class Port {
 public:
  virtual ~Port() = default;

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  PortFifo& fifo() { return fifo_; }
  const PortFifo& fifo() const { return fifo_; }

  bool tx_busy() const { return tx_busy_; }
  void set_tx_busy(bool busy) { tx_busy_ = busy; }

  // Flow-control gate: may the output side transmit right now?  For an
  // external port this reflects the last flow-control directive received on
  // the link (the XmitOK status bit); the control-processor port always may.
  virtual bool CanTransmitNow() const = 0;

  // Output-side transmission, one symbol per call (the forwarder provides
  // the slot cadence).
  virtual void SendBegin(const PacketRef& packet) = 0;
  virtual void SendByte(const PacketRef& packet, std::uint32_t offset) = 0;
  virtual void SendEnd(EndFlags flags) = 0;

  // The input FIFO had data to forward but the crossbar pump found nothing
  // to do (upstream stalled mid-packet): the Underflow status condition.
  virtual void RecordUnderflow() {}

 protected:
  explicit Port(std::size_t fifo_capacity) : fifo_(fifo_capacity) {}

  PortFifo fifo_;
  bool tx_busy_ = false;
};

}  // namespace autonet

#endif  // SRC_FABRIC_PORT_H_
