// A link unit terminates one external full-duplex link of a switch
// (section 5.1): the receive path buffers arriving symbols in the port FIFO
// and derives the flow control sent back on the same link's reverse channel;
// the transmit path carries crossbar output down the link.  The unit also
// maintains the hardware status bits of section 6.5.2 that the status
// sampler reads.
#ifndef SRC_FABRIC_LINK_UNIT_H_
#define SRC_FABRIC_LINK_UNIT_H_

#include <cstdint>
#include <functional>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/fabric/port.h"
#include "src/link/flow.h"
#include "src/link/link.h"
#include "src/obs/metrics.h"

namespace autonet {

class Switch;

// Snapshot of a link unit's status indicators (section 6.5.2).  Current
// conditions are instantaneous; accumulated counts are since the previous
// ReadAndClearStatus() call.
struct PortStatus {
  // Current conditions.
  bool is_host = false;   // last flow control was `host`
  bool xmit_ok = false;   // last flow control allows transmission
  bool in_packet = false; // transmitter is mid-packet
  bool carrier = false;   // receive channel has signal
  FlowDirective last_rx_directive = FlowDirective::kNone;
  std::size_t fifo_occupancy = 0;

  // Accumulated conditions (cleared on read).
  std::uint32_t bad_code = 0;     // damaged symbols / loss of signal
  std::uint32_t bad_syntax = 0;   // framing errors, missing directives
  std::uint32_t overflow = 0;
  std::uint32_t underflow = 0;
  std::uint32_t idhy_seen = 0;
  std::uint32_t panic_seen = 0;
  std::uint32_t start_seen = 0;   // start/host directives received
  std::uint64_t bytes_forwarded = 0;  // progress out of the receive FIFO
};

// LinkEndpoint is deliberately the primary base: the receive path (one
// virtual call per delivered byte) dispatches through LinkEndpoint, so
// keeping it at offset zero makes those calls thunk-free; the Port virtuals
// (begin/end per packet, gated queries) absorb the this-adjustment instead.
class LinkUnit final : public LinkEndpoint, public Port {
 public:
  LinkUnit(Switch* owner, PortNum port_num, std::size_t fifo_capacity);

  void AttachLink(Link* link, Link::Side side);
  void DetachLink();
  Link* link() const { return link_; }
  Link::Side side() const { return side_; }
  bool attached() const { return link_ != nullptr; }
  PortNum port_num() const { return port_num_; }

  // --- control-processor interface ---
  PortStatus ReadAndClearStatus();
  // While a port is classified s.dead, Autopilot forces it to send idhy in
  // place of normal flow control (section 6.5.3).
  void SetForceIdhy(bool force);
  bool force_idhy() const { return force_idhy_; }
  // Sends a momentary panic directive to reset the remote link unit.
  void SendPanicPulse();

  // --- Port (output side, driven by the forwarder) ---
  bool CanTransmitNow() const override;
  void SendBegin(const PacketRef& packet) override;
  // Inline: runs once per forwarded byte; the forwarder's single-output
  // fast path calls it directly (LinkUnit is final), so the whole
  // byte-transmit chain down to Link::PushFlit compiles as one unit.
  void SendByte(const PacketRef& packet, std::uint32_t offset) override {
    if (link_ != nullptr) {
      link_->TransmitByte(side_, packet, offset);
    }
  }
  void SendEnd(EndFlags flags) override;
  void RecordUnderflow() override { ++status_.underflow; }

  // --- LinkEndpoint (receive path) ---
  void OnPacketBegin(const PacketRef& packet) override;
  void OnDataByte(const PacketRef& packet, std::uint32_t offset,
                  bool corrupt) override;
  void OnPacketEnd(EndFlags flags) override;
  void OnFlowDirective(FlowDirective directive) override;
  void OnCarrierChange(bool carrier_up) override;
  void OnCodeViolation() override { ++status_.bad_code; }

  // Recomputes and latches the outgoing flow directive (start/stop/idhy).
  // Called after FIFO occupancy changes and mode changes — once per
  // forwarded byte, so the no-transition case is inline and the telemetry
  // bookkeeping lives out of line.
  void UpdateOutgoingFlow() {
    if (link_ == nullptr) {
      return;
    }
    FlowDirective d;
    if (force_idhy_) {
      d = FlowDirective::kIdhy;
    } else {
      d = fifo_.MoreThanHalfFull() ? FlowDirective::kStop
                                   : FlowDirective::kStart;
    }
    if (d != last_tx_directive_) {
      NoteDirectiveTransition(d);
    }
    link_->SetFlowDirective(side_, d);
  }

  // Hard reset of the receive side (panic handling): clears the FIFO and
  // abandons any packet being forwarded from it.
  void ResetReceiveSide();

  void NoteBytesForwarded(std::uint64_t n) { status_.bytes_forwarded += n; }

 private:
  // Latches a changed outgoing directive and records stop-interval
  // telemetry (out of line; transitions are rare next to recomputations).
  void NoteDirectiveTransition(FlowDirective d);

  Switch* owner_;
  PortNum port_num_;
  Link* link_ = nullptr;
  Link::Side side_ = Link::Side::kA;

  bool force_idhy_ = false;
  bool tx_in_packet_ = false;
  FlowDirective last_rx_directive_ = FlowDirective::kStart;  // power-up latch
  PortStatus status_;
  Tick last_status_read_ = 0;

  // Flow-control telemetry: how often and for how long this unit told its
  // neighbour to stop.  The histogram is shared by all ports of the switch
  // (`switch.<name>.link.stop_interval_ns`).
  FlowDirective last_tx_directive_ = FlowDirective::kNone;
  Tick stop_began_ = -1;
  obs::Counter* m_flow_stops_ = nullptr;
  Histogram* m_stop_interval_ns_ = nullptr;
};

}  // namespace autonet

#endif  // SRC_FABRIC_LINK_UNIT_H_
