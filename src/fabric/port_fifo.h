// The receive FIFO of a switch port (section 5.1): a 4096-slot buffer of
// 9-bit symbols holding data bytes and packet end marks.  Cut-through means
// a packet can be entering at the tail while leaving at the head; the FIFO
// therefore tracks per-packet byte counts instead of storing payload bytes
// (packet contents travel by reference; only *timing* and *occupancy* are
// byte-exact).
//
// Flow-control coupling: the owning link unit consults MoreThanHalfFull()
// to choose between start and stop directives (section 6.2).
#ifndef SRC_FABRIC_PORT_FIFO_H_
#define SRC_FABRIC_PORT_FIFO_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/link/link.h"

namespace autonet {

class PortFifo {
 public:
  // The default 4096-byte capacity is what Autonet shipped with; 1024 is
  // enough for non-broadcast traffic at 2 km (section 6.2) and is what the
  // FIFO-sizing bench sweeps.
  explicit PortFifo(std::size_t capacity = 4096);

  struct PacketRecord {
    PacketRef packet;
    // The destination address as the router will capture it.  Normally the
    // packet's own destination; fault injection may override it to model a
    // corrupted address (section 6.6.4).
    ShortAddress capture_addr;
    std::uint32_t bytes_entered = 0;   // pushed so far
    std::uint32_t bytes_consumed = 0;  // popped so far
    bool end_in_fifo = false;
    bool corrupted = false;
    bool truncated = false;

    std::uint32_t bytes_buffered() const {
      return bytes_entered - bytes_consumed;
    }
  };

  // Power-of-two ring of packet records.  Cut-through keeps this at one or
  // two entries, but its head and tail are touched once per payload byte on
  // the forwarding hot path — a ring keeps those accesses to a masked index
  // into one contiguous buffer, with none of std::deque's segment-map
  // indirection.
  class RecordRing {
   public:
    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }
    PacketRecord& front() { return buf_[head_ & (buf_.size() - 1)]; }
    const PacketRecord& front() const {
      return buf_[head_ & (buf_.size() - 1)];
    }
    PacketRecord& back() { return buf_[(tail_ - 1) & (buf_.size() - 1)]; }
    void push_back(PacketRecord&& r) {
      if (size() == buf_.size()) {
        Grow();
      }
      buf_[tail_ & (buf_.size() - 1)] = std::move(r);
      ++tail_;
    }
    void pop_front() {
      buf_[head_ & (buf_.size() - 1)] = PacketRecord{};  // drop the PacketRef
      ++head_;
    }
    void clear() {
      while (!empty()) {
        pop_front();
      }
    }

   private:
    void Grow();

    std::vector<PacketRecord> buf_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
  };

  // --- enqueue side (link unit receive path) ---
  void PushBegin(const PacketRef& packet);
  // Returns false (and records an overflow) if the FIFO is full; the byte is
  // lost and the incoming packet marked corrupted.  Inline: runs once per
  // payload byte on the forwarding hot path.
  bool PushByte() {
    assert(receiving_ && "byte outside packet");
    if (records_.empty()) {
      return false;
    }
    PacketRecord& record = records_.back();
    if (occupancy_ >= capacity_) {
      ++overflow_count_;
      record.corrupted = true;  // a lost byte destroys the packet
      return false;
    }
    ++record.bytes_entered;
    Account(+1);
    return true;
  }
  void MarkIncomingCorrupt();
  void PushEnd(EndFlags flags);
  // Carrier vanished mid-packet: terminate the incoming packet as truncated.
  void AbortIncoming();
  bool receiving() const { return receiving_; }

  // --- head side (crossbar feed) ---
  bool HasHead() const { return !records_.empty(); }
  const PacketRecord& head() const { return records_.front(); }
  // The router can capture the address once the first two bytes of the head
  // packet are buffered (or the whole runt packet has arrived).
  bool HeadCaptureReady() const;
  // Pops one data byte of the head packet; returns its offset, or nullopt if
  // no byte is buffered.  Inline: runs once per payload byte on the
  // forwarding hot path.
  std::optional<std::uint32_t> PopByte() {
    if (records_.empty()) {
      return std::nullopt;
    }
    PacketRecord& record = records_.front();
    if (record.bytes_buffered() == 0) {
      return std::nullopt;
    }
    std::uint32_t offset = record.bytes_consumed++;
    Account(-1);
    return offset;
  }
  // True when the head packet's end mark is next (all bytes consumed).
  bool HeadEndReady() const {
    if (records_.empty()) {
      return false;
    }
    const PacketRecord& record = records_.front();
    return record.end_in_fifo && record.bytes_buffered() == 0;
  }
  std::optional<EndFlags> TryPopEnd();

  // --- occupancy / statistics ---
  std::size_t occupancy() const { return occupancy_; }
  std::size_t capacity() const { return capacity_; }
  bool MoreThanHalfFull() const { return occupancy_ > capacity_ / 2; }
  std::size_t max_occupancy() const { return max_occupancy_; }
  std::uint64_t overflow_count() const { return overflow_count_; }
  bool empty() const { return records_.empty(); }

  void Clear();

 private:
  void Account(std::ptrdiff_t delta) {
    occupancy_ = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(occupancy_) + delta);
    if (occupancy_ > max_occupancy_) {
      max_occupancy_ = occupancy_;
    }
  }

  std::size_t capacity_;
  std::size_t occupancy_ = 0;  // buffered data bytes + end marks
  std::size_t max_occupancy_ = 0;
  std::uint64_t overflow_count_ = 0;
  bool receiving_ = false;  // a packet is currently arriving
  RecordRing records_;
};

}  // namespace autonet

#endif  // SRC_FABRIC_PORT_FIFO_H_
