// The receive FIFO of a switch port (section 5.1): a 4096-slot buffer of
// 9-bit symbols holding data bytes and packet end marks.  Cut-through means
// a packet can be entering at the tail while leaving at the head; the FIFO
// therefore tracks per-packet byte counts instead of storing payload bytes
// (packet contents travel by reference; only *timing* and *occupancy* are
// byte-exact).
//
// Flow-control coupling: the owning link unit consults MoreThanHalfFull()
// to choose between start and stop directives (section 6.2).
#ifndef SRC_FABRIC_PORT_FIFO_H_
#define SRC_FABRIC_PORT_FIFO_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/link/link.h"

namespace autonet {

class PortFifo {
 public:
  // The default 4096-byte capacity is what Autonet shipped with; 1024 is
  // enough for non-broadcast traffic at 2 km (section 6.2) and is what the
  // FIFO-sizing bench sweeps.
  explicit PortFifo(std::size_t capacity = 4096);

  struct PacketRecord {
    PacketRef packet;
    // The destination address as the router will capture it.  Normally the
    // packet's own destination; fault injection may override it to model a
    // corrupted address (section 6.6.4).
    ShortAddress capture_addr;
    std::uint32_t bytes_entered = 0;   // pushed so far
    std::uint32_t bytes_consumed = 0;  // popped so far
    bool end_in_fifo = false;
    bool corrupted = false;
    bool truncated = false;

    std::uint32_t bytes_buffered() const {
      return bytes_entered - bytes_consumed;
    }
  };

  // --- enqueue side (link unit receive path) ---
  void PushBegin(const PacketRef& packet);
  // Returns false (and records an overflow) if the FIFO is full; the byte is
  // lost and the incoming packet marked corrupted.
  bool PushByte();
  void MarkIncomingCorrupt();
  void PushEnd(EndFlags flags);
  // Carrier vanished mid-packet: terminate the incoming packet as truncated.
  void AbortIncoming();
  bool receiving() const { return receiving_; }

  // --- head side (crossbar feed) ---
  bool HasHead() const { return !records_.empty(); }
  const PacketRecord& head() const { return records_.front(); }
  // The router can capture the address once the first two bytes of the head
  // packet are buffered (or the whole runt packet has arrived).
  bool HeadCaptureReady() const;
  // Pops one data byte of the head packet; returns its offset, or nullopt if
  // no byte is buffered.
  std::optional<std::uint32_t> PopByte();
  // True when the head packet's end mark is next (all bytes consumed).
  bool HeadEndReady() const;
  std::optional<EndFlags> TryPopEnd();

  // --- occupancy / statistics ---
  std::size_t occupancy() const { return occupancy_; }
  std::size_t capacity() const { return capacity_; }
  bool MoreThanHalfFull() const { return occupancy_ > capacity_ / 2; }
  std::size_t max_occupancy() const { return max_occupancy_; }
  std::uint64_t overflow_count() const { return overflow_count_; }
  bool empty() const { return records_.empty(); }

  void Clear();

 private:
  void Account(std::ptrdiff_t delta);

  std::size_t capacity_;
  std::size_t occupancy_ = 0;  // buffered data bytes + end marks
  std::size_t max_occupancy_ = 0;
  std::uint64_t overflow_count_ = 0;
  bool receiving_ = false;  // a packet is currently arriving
  std::deque<PacketRecord> records_;
};

}  // namespace autonet

#endif  // SRC_FABRIC_PORT_FIFO_H_
