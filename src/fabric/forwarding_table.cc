#include "src/fabric/forwarding_table.h"

namespace autonet {

ForwardingTable::ForwardingTable() : entries_(kEntries, Pack(Entry::Discard())) {}

void ForwardingTable::Clear() {
  entries_.assign(kEntries, Pack(Entry::Discard()));
}

void ForwardingTable::SetForAllInports(ShortAddress addr, Entry entry) {
  for (PortNum p = 0; p < kPortsPerSwitch; ++p) {
    Set(p, addr, entry);
  }
}

void ForwardingTable::AddOneHopEntries() {
  for (PortNum out = kFirstExternalPort; out < kPortsPerSwitch; ++out) {
    ShortAddress addr = OneHopAddress(out);
    // From the control processor: transmit on the named local port.
    Set(kCpPort, addr, Entry::Alternatives(PortVector::Single(out)));
    // From any external port: deliver to the control processor.
    for (PortNum in = kFirstExternalPort; in < kPortsPerSwitch; ++in) {
      Set(in, addr, Entry::Alternatives(PortVector::Single(kCpPort)));
    }
  }
  // Address 0x000 from any external port reaches the local control
  // processor (hosts use it to discover their short address).
  for (PortNum in = kFirstExternalPort; in < kPortsPerSwitch; ++in) {
    Set(in, kAddrLocalCp, Entry::Alternatives(PortVector::Single(kCpPort)));
  }
}

ForwardingTable ForwardingTable::OneHopOnly() {
  ForwardingTable table;
  table.AddOneHopEntries();
  return table;
}

}  // namespace autonet
