// The switch forwarding table (section 6.3, Figure 6): 2-byte entries
// indexed by the receiving port number concatenated with the packet's
// destination short address.  Each entry holds a 13-bit port vector and a
// 1-bit broadcast flag:
//
//   broadcast == 0: the vector lists *alternative* ports; the switch uses
//                   the first free one (lowest number wins on ties).
//   broadcast == 1: the vector lists ports that must all forward the packet
//                   simultaneously; an all-zero vector means "discard".
//
// Indexing by receiving port differentiates the up and down phases of
// broadcast flooding, supports one-hop port-addressed packets, and lets a
// switch discard packets whose corrupted address would violate the
// up*/down* rule (section 6.6.4).
#ifndef SRC_FABRIC_FORWARDING_TABLE_H_
#define SRC_FABRIC_FORWARDING_TABLE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/ids.h"
#include "src/common/port_vector.h"

namespace autonet {

class ForwardingTable {
 public:
  struct Entry {
    PortVector ports;
    bool broadcast = false;

    bool IsDiscard() const { return ports.empty(); }
    static Entry Discard() { return Entry{PortVector(), true}; }
    static Entry Alternatives(PortVector v) { return Entry{v, false}; }
    static Entry Broadcast(PortVector v) { return Entry{v, true}; }
  };

  // Tables start out discarding everything.
  ForwardingTable();

  Entry Lookup(PortNum inport, ShortAddress addr) const {
    return Unpack(entries_[Index(inport, addr)]);
  }
  void Set(PortNum inport, ShortAddress addr, Entry entry) {
    entries_[Index(inport, addr)] = Pack(entry);
  }
  void SetForAllInports(ShortAddress addr, Entry entry);
  void Clear();

  // The constant part of every table (section 6.7): one-hop addresses
  // 0x001..0x00F go out the named port when sent by the control processor
  // and to the control processor when received from any external port, and
  // address 0x000 reaches the local control processor from any external
  // port.  This is the table loaded during step 1 of reconfiguration and the
  // reason SRP packets keep working while routing is down.
  static ForwardingTable OneHopOnly();

  // Adds the constant one-hop part to this table.
  void AddOneHopEntries();

  bool operator==(const ForwardingTable& other) const {
    return entries_ == other.entries_;
  }

  // Fault-injection surface (see src/adversary/): XORs raw bits into one
  // packed entry, modeling a memory fault in the table RAM.  Unlike Set this
  // can produce encodings no software path writes.
  void CorruptBits(PortNum inport, ShortAddress addr, std::uint16_t xor_mask) {
    entries_[Index(inport, addr)] ^= xor_mask;
  }

 private:
  static constexpr std::size_t kEntries =
      static_cast<std::size_t>(kPortsPerSwitch) * (ShortAddress::kMask + 1);

  static std::size_t Index(PortNum inport, ShortAddress addr) {
    return static_cast<std::size_t>(inport) * (ShortAddress::kMask + 1) +
           addr.value();
  }
  static std::uint16_t Pack(Entry e) {
    return static_cast<std::uint16_t>(e.ports.bits() |
                                      (e.broadcast ? 0x2000 : 0));
  }
  static Entry Unpack(std::uint16_t bits) {
    return Entry{PortVector(static_cast<std::uint16_t>(bits & 0x1FFF)),
                 (bits & 0x2000) != 0};
  }

  std::vector<std::uint16_t> entries_;
};

}  // namespace autonet

#endif  // SRC_FABRIC_FORWARDING_TABLE_H_
