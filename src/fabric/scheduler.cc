#include "src/fabric/scheduler.h"

#include <algorithm>
#include <cassert>

namespace autonet {

void SchedulerEngine::Enqueue(PortNum inport, PortVector want,
                              bool broadcast) {
  assert(!HasRequest(inport) && "one outstanding request per receive port");
  queue_.push_back(Request{inport, want, broadcast, sim_->now(), PortVector()});
  EnsureCycleScheduled();
}

bool SchedulerEngine::HasRequest(PortNum inport) const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [inport](const Request& r) { return r.inport == inport; });
}

void SchedulerEngine::Remove(PortNum inport) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->inport == inport) {
      reserved_total_ &= ~it->reserved;
      queue_.erase(it);
      // Released reservations may unblock younger requests.
      EnsureCycleScheduled();
      return;
    }
  }
}

void SchedulerEngine::Clear() {
  queue_.clear();
  reserved_total_ = PortVector();
}

void SchedulerEngine::Kick() { EnsureCycleScheduled(); }

void SchedulerEngine::EnsureCycleScheduled() {
  if (cycle_scheduled_ || queue_.empty()) {
    return;
  }
  cycle_scheduled_ = true;
  sim_->ScheduleAfter(config_.cycle_ns, [this] { RunCycle(); });
}

void SchedulerEngine::RunCycle() {
  cycle_scheduled_ = false;
  if (queue_.empty()) {
    return;
  }
  PortVector free = free_ports_() & ~reserved_total_;
  bool progress = false;
  bool granted_one = false;
  std::size_t grant_index = queue_.size();

  for (std::size_t i = 0; i < queue_.size(); ++i) {
    Request& r = queue_[i];
    if (r.broadcast) {
      PortVector need = r.want & ~r.reserved;
      PortVector take = need & free;
      if (!take.empty()) {
        r.reserved |= take;
        reserved_total_ |= take;
        free &= ~take;
        progress = true;
      }
      if (!granted_one && (r.want & ~r.reserved).empty()) {
        granted_one = true;
        grant_index = i;
      }
    } else {
      PortVector match = free & r.want;
      if (!granted_one && !match.empty()) {
        PortNum chosen = match.Lowest();
        free.Clear(chosen);
        r.reserved = PortVector::Single(chosen);
        granted_one = true;
        grant_index = i;
        progress = true;
      }
    }
    if (config_.fcfs) {
      break;  // strict in-order service: only the oldest request considered
    }
  }

  if (granted_one) {
    Request granted = queue_[grant_index];
    reserved_total_ &= ~granted.reserved;
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(grant_index));
    ++grants_;
    total_wait_ns_ += sim_->now() - granted.enqueued_at;
    if (grants_metric_ != nullptr) {
      grants_metric_->Increment();
    }
    PortVector ports = granted.broadcast ? granted.want : granted.reserved;
    grant_(granted, ports);
  } else if (blocked_cycles_metric_ != nullptr) {
    blocked_cycles_metric_->Increment();
  }

  // Only keep cycling while the pass achieved something; otherwise wait for
  // a Kick() (output port freed) or a new request.  The hardware polls
  // continuously, but grantability only changes on those occasions, so this
  // is behaviour-equivalent and keeps the simulation event-driven.
  if (progress && !queue_.empty()) {
    EnsureCycleScheduled();
  }
}

}  // namespace autonet
