#include "src/fabric/cp_port.h"

#include "src/fabric/switch.h"

namespace autonet {

CpPort::CpPort(Switch* owner, std::size_t fifo_capacity)
    : Port(fifo_capacity), owner_(owner) {}

void CpPort::InjectPacket(const PacketRef& packet) {
  pending_.push_back(packet);
  TryStagePending();
}

void CpPort::TryStagePending() {
  while (!pending_.empty()) {
    const PacketRef& packet = pending_.front();
    std::size_t need = packet->WireSize() + 1;  // bytes + end mark
    if (fifo_.occupancy() + need > fifo_.capacity()) {
      return;  // wait until the crossbar drains the FIFO
    }
    fifo_.PushBegin(packet);
    for (std::size_t i = 0; i < packet->WireSize(); ++i) {
      fifo_.PushByte();
    }
    fifo_.PushEnd(EndFlags{});
    pending_.pop_front();
    owner_->OnFifoActivity(kCpPort);
  }
}

void CpPort::Reset() {
  pending_.clear();
  fifo_.Clear();
  rx_packet_ = nullptr;
  rx_bytes_ = 0;
}

void CpPort::SendBegin(const PacketRef& packet) {
  rx_packet_ = packet;
  rx_bytes_ = 0;
}

void CpPort::SendByte(const PacketRef& packet, std::uint32_t offset) {
  (void)packet;
  (void)offset;
  ++rx_bytes_;
}

void CpPort::SendEnd(EndFlags flags) {
  if (rx_packet_ != nullptr && handler_) {
    Delivery delivery;
    delivery.packet = rx_packet_;
    delivery.corrupted = flags.corrupted;
    delivery.truncated =
        flags.truncated || rx_bytes_ != rx_packet_->WireSize();
    delivery.arrival_port = arrival_port_;
    delivery.delivered_at = owner_->now();
    handler_(std::move(delivery));
  }
  rx_packet_ = nullptr;
  rx_bytes_ = 0;
}

}  // namespace autonet
