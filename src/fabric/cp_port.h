// Port 0 of a switch: the special link unit connecting the crossbar to the
// control processor (section 5.1).  The processor's 1 Mbyte of video RAM
// serves as both transmit and receive buffering: the input FIFO feeding the
// crossbar is effectively memory-sized, and the output side reassembles
// arriving symbols into packets delivered to the control program.
#ifndef SRC_FABRIC_CP_PORT_H_
#define SRC_FABRIC_CP_PORT_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/common/packet.h"
#include "src/fabric/port.h"

namespace autonet {

class Switch;

class CpPort final : public Port {
 public:
  using DeliveryHandler = std::function<void(Delivery)>;

  CpPort(Switch* owner, std::size_t fifo_capacity);

  // Queues a packet for transmission from the control processor.  Bytes are
  // staged into the port FIFO at memory speed (instantaneous in the model);
  // the crossbar drains them at link rate.
  void InjectPacket(const PacketRef& packet);

  void SetDeliveryHandler(DeliveryHandler handler) {
    handler_ = std::move(handler);
  }

  // Destroys everything staged or partially received (switch reset).
  void Reset();

  // Retry staging queued packets after the crossbar drained FIFO space.
  void PumpPending() { TryStagePending(); }

  // The switch records which receive port feeds the crossbar connection to
  // port 0, so deliveries can tell the control program their arrival port
  // (section 6.3: "The processor is told the port on which the packet
  // arrived").
  void NoteArrivalPort(PortNum port) { arrival_port_ = port; }

  std::size_t pending_injections() const { return pending_.size(); }

  // --- Port (output side: crossbar -> control processor memory) ---
  bool CanTransmitNow() const override { return true; }
  void SendBegin(const PacketRef& packet) override;
  void SendByte(const PacketRef& packet, std::uint32_t offset) override;
  void SendEnd(EndFlags flags) override;

 private:
  void TryStagePending();

  Switch* owner_;
  DeliveryHandler handler_;
  std::deque<PacketRef> pending_;  // waiting for FIFO space

  // Receive-side reassembly.
  PacketRef rx_packet_;
  std::uint32_t rx_bytes_ = 0;
  PortNum arrival_port_ = -1;
};

}  // namespace autonet

#endif  // SRC_FABRIC_CP_PORT_H_
