#include "src/workload/slo.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"

namespace autonet {
namespace workload {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kSteady:
      return "steady";
    case Phase::kFault:
      return "fault";
    case Phase::kRecovery:
      return "recovery";
  }
  return "steady";
}

SloBudget ResolveBudget(const SloBudgetConfig& config, int diameter) {
  SloBudget b;
  b.outage_ms = static_cast<double>(config.outage_base +
                                    config.outage_per_hop * diameter) /
                1e6;
  b.floor_ms = static_cast<double>(config.outage_floor) / 1e6;
  b.latency_factor = config.latency_factor;
  b.latency_slack_ms = config.latency_slack_ms;
  b.min_latency_samples = config.min_latency_samples;
  b.diameter = diameter;
  return b;
}

void FlowSlo::OnOffered(Tick now, bool accepted) {
  ++offered_;
  if (!accepted) {
    ++rejected_;
  }
  if (anchor_ < 0) {
    anchor_ = now;
    excused_in_gap_ = 0;
  }
}

void FlowSlo::CloseGap(Tick now) {
  if (anchor_ < 0) {
    return;
  }
  Tick gap = now - anchor_ - excused_in_gap_;
  if (gap > floor_) {
    max_outage_ms_ = std::max(max_outage_ms_, static_cast<double>(gap) / 1e6);
    ++outage_windows_;
  }
  anchor_ = now;
  excused_in_gap_ = 0;
}

void FlowSlo::OnCompleted(Tick now, Phase sent_phase, double latency_ms) {
  ++completed_;
  latency_[static_cast<int>(sent_phase)].Add(latency_ms);
  CloseGap(now);
}

void FlowSlo::Advance(Tick dt, bool serviceable) {
  if (!serviceable) {
    excused_total_ += dt;
    if (anchor_ >= 0) {
      excused_in_gap_ += dt;
    }
  }
}

void FlowSlo::Finalize(Tick now, bool outstanding) {
  if (outstanding) {
    CloseGap(now);
  }
  anchor_ = -1;
}

std::string SloReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("workload").String(spec.ToText());
  w.Key("budget").BeginObject();
  w.Key("outage_ms").Number(budget.outage_ms);
  w.Key("floor_ms").Number(budget.floor_ms);
  w.Key("latency_factor").Number(budget.latency_factor);
  w.Key("latency_slack_ms").Number(budget.latency_slack_ms);
  w.Key("min_latency_samples").UInt(budget.min_latency_samples);
  w.Key("diameter").Int(budget.diameter);
  w.EndObject();

  w.Key("offered").UInt(offered);
  w.Key("rejected").UInt(rejected);
  w.Key("completed").UInt(completed);
  w.Key("timeouts").UInt(timeouts);
  w.Key("damaged").UInt(damaged);
  w.Key("recovery_lost").UInt(recovery_lost);
  w.Key("deadline_miss_steady").UInt(deadline_miss_steady);
  w.Key("deadline_miss_fault").UInt(deadline_miss_fault);
  w.Key("deadline_miss_recovery").UInt(deadline_miss_recovery);
  w.Key("max_outage_ms").Number(max_outage_ms);
  w.Key("max_outage_flow").String(max_outage_flow);
  w.Key("outage_windows").Int(outage_windows);

  auto hist = [&](const char* key, const Histogram& h) {
    w.Key(key).BeginObject();
    w.Key("count").UInt(h.count());
    w.Key("p50").Number(h.Percentile(50));
    w.Key("p99").Number(h.Percentile(99));
    w.Key("p999").Number(h.Percentile(99.9));
    w.Key("max").Number(h.Max());
    w.EndObject();
  };
  hist("steady_latency_ms", steady_latency_ms);
  hist("fault_latency_ms", fault_latency_ms);
  hist("recovery_latency_ms", recovery_latency_ms);
  if (spec.kind == Kind::kAllreduce) {
    hist("step_ms", step_ms);
    w.Key("steps_completed").UInt(steps_completed);
  }

  w.Key("flows").BeginArray();
  for (const FlowStats& f : flows) {
    w.BeginObject();
    w.Key("flow").String(f.name);
    w.Key("offered").UInt(f.offered);
    w.Key("rejected").UInt(f.rejected);
    w.Key("completed").UInt(f.completed);
    w.Key("timeouts").UInt(f.timeouts);
    w.Key("deadline_misses").UInt(f.deadline_misses);
    w.Key("max_outage_ms").Number(f.max_outage_ms);
    w.Key("outage_windows").Int(f.outage_windows);
    w.Key("excused_ms").Number(f.excused_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::vector<std::pair<std::string, std::string>> JudgeSlo(
    const SloReport& report) {
  std::vector<std::pair<std::string, std::string>> violations;
  if (!report.spec.enabled() || report.flows.empty()) {
    return violations;
  }
  char buf[256];

  // Outage: the worst per-flow gap must fit the diameter-scaled
  // reconfiguration budget — the "pause, not a failure" bound.
  if (report.max_outage_ms > report.budget.outage_ms) {
    std::snprintf(buf, sizeof buf,
                  "flow %s outage window %.1f ms exceeds budget %.1f ms "
                  "(diameter %d)",
                  report.max_outage_flow.c_str(), report.max_outage_ms,
                  report.budget.outage_ms, report.budget.diameter);
    violations.emplace_back("slo-outage", buf);
  }

  // Tail latency: post-quiescence p999 vs the steady-state baseline.
  if (report.steady_latency_ms.count() >= report.budget.min_latency_samples &&
      report.recovery_latency_ms.count() >=
          report.budget.min_latency_samples) {
    double steady = report.steady_latency_ms.Percentile(99.9);
    double recovery = report.recovery_latency_ms.Percentile(99.9);
    double limit = std::max(steady * report.budget.latency_factor,
                            steady + report.budget.latency_slack_ms);
    if (recovery > limit) {
      std::snprintf(buf, sizeof buf,
                    "recovery p999 %.3f ms exceeds %.3f ms "
                    "(steady p999 %.3f ms, factor %.1f)",
                    recovery, limit, steady, report.budget.latency_factor);
      violations.emplace_back("slo-latency", buf);
    }
  }

  // Loss: nothing sent on a serviceable flow may vanish forever once the
  // network has quiesced.
  if (report.recovery_lost > 0) {
    std::snprintf(buf, sizeof buf,
                  "%llu op(s) lost forever after quiescence",
                  static_cast<unsigned long long>(report.recovery_lost));
    violations.emplace_back("slo-loss", buf);
  }

  // Deadlines: periodic streams may only miss while the fault script is
  // actively disturbing the network.
  std::uint64_t misses =
      report.deadline_miss_steady + report.deadline_miss_recovery;
  if (misses > 0) {
    std::snprintf(buf, sizeof buf,
                  "%llu deadline miss(es) outside the fault window "
                  "(steady %llu, recovery %llu)",
                  static_cast<unsigned long long>(misses),
                  static_cast<unsigned long long>(report.deadline_miss_steady),
                  static_cast<unsigned long long>(
                      report.deadline_miss_recovery));
    violations.emplace_back("slo-deadline", buf);
  }
  return violations;
}

}  // namespace workload
}  // namespace autonet
