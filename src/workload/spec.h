// Workload specification for the application workload engine: which
// structured traffic pattern to run (RPC fleets, ring-allreduce collectives,
// periodic deadline streams) and its knobs.  A Spec has a text form —
// "rpc bytes 256 response 32 window 2 timeout 250ms" — that round-trips
// through ParseSpec, so a chaos scenario can carry its workload inline and a
// reproducer line fully reproduces the SLO numbers.
#ifndef SRC_WORKLOAD_SPEC_H_
#define SRC_WORKLOAD_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace autonet {
namespace workload {

enum class Kind : std::uint8_t {
  kNone,       // workload disabled
  kRpc,        // closed-loop request/response fleet, per-flow window
  kAllreduce,  // ring collective: barrier per step, one slow flow stalls all
  kStreams,    // open-loop periodic frames with per-frame deadlines
};

const char* KindName(Kind kind);

struct Spec {
  Kind kind = Kind::kNone;
  std::size_t data_bytes = 256;     // request / frame / chunk payload
  std::size_t response_bytes = 32;  // RPC response payload
  int window = 2;                   // RPC per-flow outstanding ops
  Tick period = 5 * kMillisecond;   // stream frame period
  Tick deadline = 25 * kMillisecond;  // stream per-frame deadline
  Tick timeout = 250 * kMillisecond;  // RPC / collective retransmit timeout

  bool enabled() const { return kind != Kind::kNone; }

  // The text form, omitting knobs the kind does not use.  Round-trips
  // through ParseSpecText.
  std::string ToText() const;
};

// Parses `tokens[start..]` as `<kind> [key value]...` where keys are
// bytes/response/window/period/deadline/timeout and times take unit
// suffixes (ns/us/ms/s).  Returns false with *error set on a bad token.
bool ParseSpec(const std::vector<std::string>& tokens, std::size_t start,
               Spec* out, std::string* error);

// Convenience: tokenizes `text` (whitespace-separated) and calls ParseSpec.
bool ParseSpecText(const std::string& text, Spec* out, std::string* error);

}  // namespace workload
}  // namespace autonet

#endif  // SRC_WORKLOAD_SPEC_H_
