#include "src/workload/spec.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace autonet {
namespace workload {

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kRpc:
      return "rpc";
    case Kind::kAllreduce:
      return "allreduce";
    case Kind::kStreams:
      return "streams";
  }
  return "none";
}

namespace {

// Same literal forms as the chaos scenario grammar ("250ms", "1.5s"), kept
// local because chaos depends on workload, not the other way around.
std::string TimeText(Tick t) {
  auto exact = [&](Tick unit) { return t % unit == 0; };
  char buf[32];
  if (t != 0 && exact(kSecond)) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(t / kSecond));
  } else if (t != 0 && exact(kMillisecond)) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(t / kMillisecond));
  } else if (t != 0 && exact(kMicrosecond)) {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(t / kMicrosecond));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t));
  }
  return buf;
}

bool ParseTime(const std::string& tok, Tick* out) {
  std::size_t i = 0;
  while (i < tok.size() &&
         (std::isdigit(static_cast<unsigned char>(tok[i])) || tok[i] == '.')) {
    ++i;
  }
  if (i == 0 || i == tok.size()) {
    return false;
  }
  double value;
  try {
    std::size_t consumed;
    value = std::stod(tok.substr(0, i), &consumed);
    if (consumed != i) {
      return false;
    }
  } catch (...) {
    return false;
  }
  std::string unit = tok.substr(i);
  double scale;
  if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = kMicrosecond;
  } else if (unit == "ms") {
    scale = kMillisecond;
  } else if (unit == "s") {
    scale = kSecond;
  } else {
    return false;
  }
  *out = static_cast<Tick>(std::llround(value * scale));
  return true;
}

bool ParseCount(const std::string& tok, long long* out) {
  try {
    std::size_t consumed;
    long long v = std::stoll(tok, &consumed);
    if (consumed != tok.size() || v <= 0) {
      return false;
    }
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string Spec::ToText() const {
  std::ostringstream out;
  out << KindName(kind);
  if (kind == Kind::kNone) {
    return out.str();
  }
  out << " bytes " << data_bytes;
  switch (kind) {
    case Kind::kRpc:
      out << " response " << response_bytes << " window " << window
          << " timeout " << TimeText(timeout);
      break;
    case Kind::kAllreduce:
      out << " timeout " << TimeText(timeout);
      break;
    case Kind::kStreams:
      out << " period " << TimeText(period) << " deadline "
          << TimeText(deadline);
      break;
    case Kind::kNone:
      break;
  }
  return out.str();
}

bool ParseSpec(const std::vector<std::string>& tokens, std::size_t start,
               Spec* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  if (start >= tokens.size()) {
    return fail("expected a workload kind (rpc|allreduce|streams)");
  }
  Spec spec;
  const std::string& kind = tokens[start];
  if (kind == "rpc") {
    spec.kind = Kind::kRpc;
  } else if (kind == "allreduce") {
    spec.kind = Kind::kAllreduce;
  } else if (kind == "streams") {
    spec.kind = Kind::kStreams;
  } else if (kind == "none") {
    spec.kind = Kind::kNone;
  } else {
    return fail("unknown workload kind '" + kind + "'");
  }
  for (std::size_t i = start + 1; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) {
      return fail("workload key '" + tokens[i] + "' is missing a value");
    }
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    long long count = 0;
    Tick t = 0;
    if (key == "bytes") {
      if (!ParseCount(value, &count)) {
        return fail("bad bytes '" + value + "'");
      }
      spec.data_bytes = static_cast<std::size_t>(count);
    } else if (key == "response") {
      if (!ParseCount(value, &count)) {
        return fail("bad response '" + value + "'");
      }
      spec.response_bytes = static_cast<std::size_t>(count);
    } else if (key == "window") {
      if (!ParseCount(value, &count) || count > 64) {
        return fail("bad window '" + value + "' (1..64)");
      }
      spec.window = static_cast<int>(count);
    } else if (key == "period") {
      if (!ParseTime(value, &t) || t <= 0) {
        return fail("bad period '" + value + "'");
      }
      spec.period = t;
    } else if (key == "deadline") {
      if (!ParseTime(value, &t) || t <= 0) {
        return fail("bad deadline '" + value + "'");
      }
      spec.deadline = t;
    } else if (key == "timeout") {
      if (!ParseTime(value, &t) || t <= 0) {
        return fail("bad timeout '" + value + "'");
      }
      spec.timeout = t;
    } else {
      return fail("unknown workload key '" + key + "'");
    }
  }
  if (error != nullptr) {
    error->clear();
  }
  *out = spec;
  return true;
}

bool ParseSpecText(const std::string& text, Spec* out, std::string* error) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        tokens.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    tokens.push_back(std::move(cur));
  }
  return ParseSpec(tokens, 0, out, error);
}

}  // namespace workload
}  // namespace autonet
