// The application workload engine: drives structured traffic with
// dependency semantics over a Network and feeds per-flow SLO accounting.
//
// Three workload kinds (src/workload/spec.h):
//
//   rpc        closed-loop request/response fleet.  Each flow keeps `window`
//              requests outstanding; the destination's engine answers every
//              request with a response, and a completion immediately issues
//              the next request — saturating, self-clocked load.  Requests
//              unanswered for `timeout` are retried under a fresh sequence
//              number (the old response, if it straggles in, is dropped as
//              stale).
//   allreduce  ring collective: every host sends one chunk to its ring
//              neighbour per step, and the next step starts only when ALL
//              chunks of the current step have been delivered — a barrier,
//              so one slow flow stalls the whole step (the MPI pattern).
//              Step times land in a histogram.
//   streams    open-loop periodic frames with a per-frame delivery deadline
//              (the time-sensitive traffic of §4's small-FIFO argument).
//
// Packets are tagged: the first 8 payload bytes carry (magic, class, flow,
// seq) under a dedicated ether type, so the engine's delivery hook can
// match completions exactly even under loss and reordering, and so the
// chaos delivery oracle's probe traffic (plain 0x0800) is never confused
// with workload traffic.
//
// The engine is phase-aware (steady / fault / recovery) and excuses outage
// time while a flow is physically unserviceable — an endpoint off the
// network, or the two endpoints in different components of the healthy
// topology — matching the delivery oracle's serviceability test.  Everything
// is deterministic: no randomness, all work rides one self-rescheduling
// simulator tick.
#ifndef SRC_WORKLOAD_ENGINE_H_
#define SRC_WORKLOAD_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/network.h"
#include "src/obs/metrics.h"
#include "src/workload/slo.h"
#include "src/workload/spec.h"

namespace autonet {
namespace workload {

// Reserved ether type for workload traffic (never used by the baseline
// harness, so runs without a workload are byte-identical to before).  It is
// the Network's hook-only type: workload packets go to the delivery hook and
// never pollute the per-host inboxes that tests and oracles read.
inline constexpr std::uint16_t kWorkloadEtherType = kHookOnlyEtherType;

class WorkloadEngine {
 public:
  // The budget is resolved against `diameter` (healthy topology diameter at
  // workload start; the chaos runner passes HealthyDiameter(net)).
  WorkloadEngine(Network* net, const Spec& spec,
                 const SloBudgetConfig& budget_config, int diameter);
  ~WorkloadEngine();

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  // Builds the flow set, installs the delivery hook, sends the initial
  // window, and starts the engine tick.  Phase starts at kSteady.
  void Start();
  void SetPhase(Phase phase);
  Phase phase() const { return phase_; }

  // Stops issuing new work; in-flight ops keep completing (and counting).
  void Stop();
  // True once no offered work is outstanding (drain complete).
  bool Drained() const;

  // Closes the books and returns the report.  Call once, after Stop() and
  // a drain period; detaches from the Network.
  SloReport Finalize();

  int flow_count() const { return static_cast<int>(flows_.size()); }
  std::uint64_t ops_completed() const { return ops_completed_; }

 private:
  struct Op {
    std::uint32_t seq = 0;
    Tick sent_at = 0;
    Phase phase = Phase::kSteady;
    bool accepted = false;             // driver took the packet
    bool serviceable_at_send = false;  // flow was serviceable when sent
    bool missed = false;               // stream frame already counted missed
  };

  struct Flow {
    int src = -1;
    int dst = -1;
    std::uint16_t id = 0;
    FlowSlo slo;
    std::vector<Op> outstanding;
    std::uint32_t next_seq = 1;
    Tick next_emit = -1;     // streams: next frame emission
    bool step_done = false;  // allreduce: chunk delivered this step
    // Remote counters, registered under the source host's switch so netmon
    // can read them over SRP GetStats.
    obs::Counter* ops_counter = nullptr;
    obs::Counter* timeout_counter = nullptr;
    obs::Counter* miss_counter = nullptr;
    Histogram* op_ms = nullptr;
  };

  void OnTick();
  void OnDelivery(int host, const Delivery& delivery);

  void TickRpc(Flow& flow, Tick now, bool serviceable);
  void TickStreams(Flow& flow, Tick now, bool serviceable);
  void TickAllreduce(Flow& flow, Tick now, bool serviceable);
  void StartStep(Tick now);

  bool SendOp(Flow& flow, Op& op, std::uint8_t cls, std::size_t bytes);
  void CompleteOp(Flow& flow, std::uint32_t seq);

  // Serviceability: both endpoints attached to alive switches in the same
  // component of the healthy topology (the delivery oracle's test).
  void RefreshComponents();
  int HostComponent(int host) const;
  bool Serviceable(const Flow& flow) const;

  Network* net_;
  Spec spec_;
  SloBudget budget_;

  Phase phase_ = Phase::kSteady;
  bool running_ = false;    // Start() called, Finalize() not yet
  bool stopped_ = false;    // no new work
  bool finalized_ = false;
  Tick last_tick_ = 0;
  Simulator::EventId tick_id_{};
  bool tick_armed_ = false;

  std::vector<Flow> flows_;

  // Allreduce step state.
  std::uint32_t step_seq_ = 0;
  Tick step_start_ = 0;
  Histogram step_ms_;
  std::uint64_t steps_completed_ = 0;

  std::uint64_t ops_completed_ = 0;
  std::uint64_t damaged_ = 0;
  std::uint64_t recovery_lost_ = 0;

  // Component cache, recomputed when the Network's fault generation moves.
  std::uint64_t comp_generation_ = ~0ull;
  std::map<std::uint64_t, int> comp_of_uid_;
};

}  // namespace workload
}  // namespace autonet

#endif  // SRC_WORKLOAD_ENGINE_H_
