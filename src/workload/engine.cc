#include "src/workload/engine.h"

#include <algorithm>

#include "src/routing/topology.h"

namespace autonet {
namespace workload {

namespace {

// Engine bookkeeping cadence: timeout checks, stream emissions, excused-time
// accrual.  Completions are handled inline in the delivery hook, so the tick
// does not bound throughput.
constexpr Tick kEngineTick = kMillisecond;

// Tag layout in the first 8 payload bytes: magic | class | flow | seq.
constexpr std::uint8_t kTagMagic = 0x57;
constexpr std::uint8_t kClassRequest = 1;
constexpr std::uint8_t kClassResponse = 2;
constexpr std::uint8_t kClassFrame = 3;
constexpr std::uint8_t kClassChunk = 4;

std::uint64_t MakeTag(std::uint8_t cls, std::uint16_t flow,
                      std::uint32_t seq) {
  return (std::uint64_t{kTagMagic} << 56) | (std::uint64_t{cls} << 48) |
         (std::uint64_t{flow} << 32) | seq;
}

}  // namespace

WorkloadEngine::WorkloadEngine(Network* net, const Spec& spec,
                               const SloBudgetConfig& budget_config,
                               int diameter)
    : net_(net), spec_(spec),
      budget_(ResolveBudget(budget_config, diameter)) {}

WorkloadEngine::~WorkloadEngine() {
  if (!finalized_ && running_) {
    if (tick_armed_) {
      net_->sim().Cancel(tick_id_);
      tick_armed_ = false;
    }
    net_->SetClientDeliveryHook(nullptr);
  }
}

void WorkloadEngine::Start() {
  if (running_ || finalized_ || !spec_.enabled()) {
    return;
  }
  running_ = true;
  const int n = net_->num_hosts();
  // Flow sets per kind.  RPC and streams cross the network (stride ~N/2 so
  // paths span the diameter); the collective runs on the host ring.  A
  // single-host network degrades to an empty fleet.
  if (n >= 2) {
    int stride = spec_.kind == Kind::kAllreduce ? 1 : std::max(1, n / 2);
    obs::MetricRegistry& metrics = net_->sim().metrics();
    for (int i = 0; i < n; ++i) {
      int j = (i + stride) % n;
      if (j == i) {
        continue;
      }
      Flow flow;
      flow.src = i;
      flow.dst = j;
      flow.id = static_cast<std::uint16_t>(flows_.size());
      const TopoSpec& spec = net_->spec();
      flow.slo = FlowSlo(spec.hosts[i].name + "->" + spec.hosts[j].name,
                         static_cast<Tick>(budget_.floor_ms * 1e6));
      std::string prefix =
          "switch." + spec.switches[spec.hosts[i].primary_switch].name +
          ".workload.";
      flow.ops_counter = metrics.GetCounter(prefix + "ops");
      flow.timeout_counter = metrics.GetCounter(prefix + "timeouts");
      flow.miss_counter = metrics.GetCounter(prefix + "deadline_misses");
      flow.op_ms = metrics.GetHistogram(prefix + "op_ms");
      flows_.push_back(std::move(flow));
    }
  }
  net_->SetClientDeliveryHook(
      [this](int host, const Delivery& d) { OnDelivery(host, d); });

  Tick now = net_->sim().now();
  last_tick_ = now;
  RefreshComponents();
  if (spec_.kind == Kind::kAllreduce) {
    if (!flows_.empty()) {
      StartStep(now);
    }
  } else {
    for (Flow& flow : flows_) {
      bool svc = Serviceable(flow);
      if (spec_.kind == Kind::kRpc) {
        TickRpc(flow, now, svc);
      } else {
        flow.next_emit = now;
        TickStreams(flow, now, svc);
      }
    }
  }
  tick_id_ = net_->sim().ScheduleAfter(kEngineTick, [this] { OnTick(); });
  tick_armed_ = true;
}

void WorkloadEngine::SetPhase(Phase phase) { phase_ = phase; }

void WorkloadEngine::Stop() { stopped_ = true; }

bool WorkloadEngine::Drained() const {
  for (const Flow& flow : flows_) {
    if (!flow.outstanding.empty()) {
      return false;
    }
  }
  return true;
}

void WorkloadEngine::OnTick() {
  tick_armed_ = false;
  if (finalized_ || !running_) {
    return;
  }
  Tick now = net_->sim().now();
  Tick dt = now - last_tick_;
  RefreshComponents();
  for (Flow& flow : flows_) {
    bool svc = Serviceable(flow);
    flow.slo.Advance(dt, svc);
    switch (spec_.kind) {
      case Kind::kRpc:
        TickRpc(flow, now, svc);
        break;
      case Kind::kStreams:
        TickStreams(flow, now, svc);
        break;
      case Kind::kAllreduce:
        TickAllreduce(flow, now, svc);
        break;
      case Kind::kNone:
        break;
    }
  }
  last_tick_ = now;
  tick_id_ = net_->sim().ScheduleAfter(kEngineTick, [this] { OnTick(); });
  tick_armed_ = true;
}

bool WorkloadEngine::SendOp(Flow& flow, Op& op, std::uint8_t cls,
                            std::size_t bytes) {
  bool ok = net_->SendTagged(flow.src, flow.dst, bytes, kWorkloadEtherType,
                             MakeTag(cls, flow.id, op.seq));
  flow.slo.OnOffered(net_->sim().now(), ok);
  return ok;
}

void WorkloadEngine::TickRpc(Flow& flow, Tick now, bool serviceable) {
  for (auto it = flow.outstanding.begin(); it != flow.outstanding.end();) {
    Op& op = *it;
    if (!op.accepted) {
      // The driver refused the send (no address / buffer full): retry.
      if (stopped_) {
        it = flow.outstanding.erase(it);
        continue;
      }
      op.sent_at = now;
      op.phase = phase_;
      op.serviceable_at_send = serviceable;
      op.accepted = SendOp(flow, op, kClassRequest, spec_.data_bytes);
      ++it;
    } else if (now - op.sent_at >= spec_.timeout) {
      flow.slo.OnTimeout();
      flow.timeout_counter->Increment();
      if (stopped_) {
        if (op.phase == Phase::kRecovery && op.serviceable_at_send &&
            serviceable) {
          ++recovery_lost_;
        }
        it = flow.outstanding.erase(it);
      } else {
        // Retry under a fresh seq; a straggling old response is stale.
        op.seq = flow.next_seq++;
        op.sent_at = now;
        op.phase = phase_;
        op.serviceable_at_send = serviceable;
        op.accepted = SendOp(flow, op, kClassRequest, spec_.data_bytes);
        ++it;
      }
    } else {
      ++it;
    }
  }
  while (!stopped_ &&
         static_cast<int>(flow.outstanding.size()) < spec_.window) {
    Op op;
    op.seq = flow.next_seq++;
    op.sent_at = now;
    op.phase = phase_;
    op.serviceable_at_send = serviceable;
    op.accepted = SendOp(flow, op, kClassRequest, spec_.data_bytes);
    flow.outstanding.push_back(op);
  }
}

void WorkloadEngine::TickStreams(Flow& flow, Tick now, bool serviceable) {
  const Tick prune_after = std::max(spec_.timeout, 2 * spec_.deadline);
  for (auto it = flow.outstanding.begin(); it != flow.outstanding.end();) {
    Op& op = *it;
    if (!op.missed && now > op.sent_at + spec_.deadline) {
      op.missed = true;
      flow.slo.OnDeadlineMiss(phase_);
      flow.miss_counter->Increment();
    }
    if (now - op.sent_at > prune_after) {
      // Lost in flight; if it was sent and prunes on a serviceable flow
      // after quiescence, it is lost forever.
      if (op.phase == Phase::kRecovery && op.serviceable_at_send &&
          serviceable) {
        ++recovery_lost_;
      }
      it = flow.outstanding.erase(it);
    } else {
      ++it;
    }
  }
  if (stopped_) {
    return;
  }
  if (flow.next_emit < 0) {
    flow.next_emit = now;
  }
  while (flow.next_emit <= now) {
    Op op;
    op.seq = flow.next_seq++;
    op.sent_at = now;
    op.phase = phase_;
    op.serviceable_at_send = serviceable;
    op.accepted = SendOp(flow, op, kClassFrame, spec_.data_bytes);
    if (op.accepted) {
      flow.outstanding.push_back(op);
    }
    flow.next_emit += spec_.period;
  }
}

void WorkloadEngine::TickAllreduce(Flow& flow, Tick now, bool serviceable) {
  if (flow.outstanding.empty()) {
    return;
  }
  Op& op = flow.outstanding.front();
  if (op.accepted && now - op.sent_at < spec_.timeout) {
    return;
  }
  if (op.accepted) {
    flow.slo.OnTimeout();
    flow.timeout_counter->Increment();
  }
  if (stopped_) {
    if (op.accepted && op.phase == Phase::kRecovery &&
        op.serviceable_at_send && serviceable) {
      ++recovery_lost_;
    }
    flow.outstanding.clear();
    return;
  }
  // Retransmit the same chunk (same seq: it still belongs to this step).
  op.sent_at = now;
  op.phase = phase_;
  op.serviceable_at_send = serviceable;
  op.accepted = SendOp(flow, op, kClassChunk, spec_.data_bytes);
}

void WorkloadEngine::StartStep(Tick now) {
  ++step_seq_;
  step_start_ = now;
  for (Flow& flow : flows_) {
    flow.step_done = false;
    Op op;
    op.seq = step_seq_;
    op.sent_at = now;
    op.phase = phase_;
    op.serviceable_at_send = Serviceable(flow);
    op.accepted = SendOp(flow, op, kClassChunk, spec_.data_bytes);
    flow.outstanding.assign(1, op);
  }
}

void WorkloadEngine::CompleteOp(Flow& flow, std::uint32_t seq) {
  auto it = std::find_if(flow.outstanding.begin(), flow.outstanding.end(),
                         [&](const Op& op) { return op.seq == seq; });
  if (it == flow.outstanding.end()) {
    return;  // stale response of a timed-out attempt
  }
  Tick now = net_->sim().now();
  double latency_ms = static_cast<double>(now - it->sent_at) / 1e6;
  flow.slo.OnCompleted(now, it->phase, latency_ms);
  ++ops_completed_;
  flow.ops_counter->Increment();
  flow.op_ms->Add(latency_ms);
  flow.outstanding.erase(it);
  if (!stopped_ && spec_.kind == Kind::kRpc) {
    // Closed loop: a completion immediately clocks out the next request.
    Op op;
    op.seq = flow.next_seq++;
    op.sent_at = now;
    op.phase = phase_;
    op.serviceable_at_send = Serviceable(flow);
    op.accepted = SendOp(flow, op, kClassRequest, spec_.data_bytes);
    flow.outstanding.push_back(op);
  }
}

void WorkloadEngine::OnDelivery(int host, const Delivery& delivery) {
  if (!running_ || finalized_) {
    return;
  }
  const Packet& p = *delivery.packet;
  if (p.ether_type != kWorkloadEtherType) {
    return;
  }
  if (!delivery.intact()) {
    ++damaged_;
    return;
  }
  if (p.payload.size() < 8) {
    return;
  }
  std::uint64_t tag = 0;
  for (int i = 0; i < 8; ++i) {
    tag = tag << 8 | p.payload[static_cast<std::size_t>(i)];
  }
  if (static_cast<std::uint8_t>(tag >> 56) != kTagMagic) {
    return;
  }
  std::uint8_t cls = static_cast<std::uint8_t>(tag >> 48);
  std::uint16_t flow_id = static_cast<std::uint16_t>(tag >> 32);
  std::uint32_t seq = static_cast<std::uint32_t>(tag);
  if (flow_id >= flows_.size()) {
    return;
  }
  Flow& flow = flows_[flow_id];
  Tick now = net_->sim().now();
  switch (cls) {
    case kClassRequest: {
      if (host != flow.dst) {
        return;
      }
      // Server side: answer even after Stop so in-flight requests complete.
      // A refused response surfaces as a client timeout.
      net_->SendTagged(flow.dst, flow.src, spec_.response_bytes,
                       kWorkloadEtherType,
                       MakeTag(kClassResponse, flow_id, seq));
      return;
    }
    case kClassResponse:
      if (host != flow.src) {
        return;
      }
      CompleteOp(flow, seq);
      return;
    case kClassFrame: {
      if (host != flow.dst) {
        return;
      }
      auto it =
          std::find_if(flow.outstanding.begin(), flow.outstanding.end(),
                       [&](const Op& op) { return op.seq == seq; });
      if (it == flow.outstanding.end()) {
        return;
      }
      double latency_ms = static_cast<double>(now - it->sent_at) / 1e6;
      if (!it->missed && now > it->sent_at + spec_.deadline) {
        flow.slo.OnDeadlineMiss(phase_);
        flow.miss_counter->Increment();
      }
      flow.slo.OnCompleted(now, it->phase, latency_ms);
      ++ops_completed_;
      flow.ops_counter->Increment();
      flow.op_ms->Add(latency_ms);
      flow.outstanding.erase(it);
      return;
    }
    case kClassChunk: {
      if (host != flow.dst || flow.step_done || flow.outstanding.empty() ||
          seq != step_seq_ || flow.outstanding.front().seq != seq) {
        return;
      }
      Op op = flow.outstanding.front();
      double latency_ms = static_cast<double>(now - op.sent_at) / 1e6;
      flow.slo.OnCompleted(now, op.phase, latency_ms);
      ++ops_completed_;
      flow.ops_counter->Increment();
      flow.op_ms->Add(latency_ms);
      flow.outstanding.clear();
      flow.step_done = true;
      // Barrier: the next step starts only once every chunk arrived.
      for (const Flow& other : flows_) {
        if (!other.step_done) {
          return;
        }
      }
      ++steps_completed_;
      step_ms_.Add(static_cast<double>(now - step_start_) / 1e6);
      if (!stopped_) {
        StartStep(now);
      }
      return;
    }
    default:
      return;
  }
}

void WorkloadEngine::RefreshComponents() {
  std::uint64_t gen = net_->fault_generation();
  if (gen == comp_generation_) {
    return;
  }
  comp_generation_ = gen;
  NetTopology healthy = net_->HealthyTopology();
  std::vector<int> comp(static_cast<std::size_t>(healthy.size()), -1);
  int next = 0;
  for (int start = 0; start < healthy.size(); ++start) {
    if (comp[start] >= 0) {
      continue;
    }
    int id = next++;
    std::vector<int> stack{start};
    comp[start] = id;
    while (!stack.empty()) {
      int node = stack.back();
      stack.pop_back();
      for (const TopoLink& link : healthy.switches[node].links) {
        if (comp[link.remote_switch] < 0) {
          comp[link.remote_switch] = id;
          stack.push_back(link.remote_switch);
        }
      }
    }
  }
  comp_of_uid_.clear();
  for (int s = 0; s < healthy.size(); ++s) {
    comp_of_uid_[healthy.switches[s].uid.value()] = comp[s];
  }
}

int WorkloadEngine::HostComponent(int host) const {
  const TopoSpec::HostSpec& hs = net_->spec().hosts[host];
  Network* net = net_;
  int active = net->driver_at(host).controller()->active_port();
  int sw = active == 0 ? hs.primary_switch : hs.alt_switch;
  if (sw < 0 || !net->switch_alive(sw) ||
      net->host_link(host, active).mode() != LinkMode::kNormal ||
      !net->driver_at(host).HasAddress()) {
    return -1;
  }
  auto it = comp_of_uid_.find(net->spec().switches[sw].uid.value());
  return it == comp_of_uid_.end() ? -1 : it->second;
}

bool WorkloadEngine::Serviceable(const Flow& flow) const {
  int a = HostComponent(flow.src);
  return a >= 0 && a == HostComponent(flow.dst);
}

SloReport WorkloadEngine::Finalize() {
  SloReport report;
  report.spec = spec_;
  report.budget = budget_;
  if (finalized_) {
    return report;
  }
  finalized_ = true;
  if (tick_armed_) {
    net_->sim().Cancel(tick_id_);
    tick_armed_ = false;
  }
  if (running_) {
    net_->SetClientDeliveryHook(nullptr);
  }
  running_ = false;

  Tick now = net_->sim().now();
  RefreshComponents();
  for (Flow& flow : flows_) {
    bool svc = Serviceable(flow);
    for (const Op& op : flow.outstanding) {
      if (op.accepted && op.phase == Phase::kRecovery &&
          op.serviceable_at_send && svc) {
        ++recovery_lost_;
      }
    }
    flow.slo.Finalize(now, !flow.outstanding.empty());

    SloReport::FlowStats fs;
    fs.name = flow.slo.name();
    fs.offered = flow.slo.offered();
    fs.rejected = flow.slo.rejected();
    fs.completed = flow.slo.completed();
    fs.timeouts = flow.slo.timeouts();
    fs.deadline_misses = flow.slo.deadline_misses(Phase::kSteady) +
                         flow.slo.deadline_misses(Phase::kFault) +
                         flow.slo.deadline_misses(Phase::kRecovery);
    fs.max_outage_ms = flow.slo.max_outage_ms();
    fs.outage_windows = flow.slo.outage_windows();
    fs.excused_ms = flow.slo.excused_ms();
    report.flows.push_back(fs);

    report.offered += fs.offered;
    report.rejected += fs.rejected;
    report.completed += fs.completed;
    report.timeouts += fs.timeouts;
    report.deadline_miss_steady += flow.slo.deadline_misses(Phase::kSteady);
    report.deadline_miss_fault += flow.slo.deadline_misses(Phase::kFault);
    report.deadline_miss_recovery +=
        flow.slo.deadline_misses(Phase::kRecovery);
    report.steady_latency_ms.Merge(flow.slo.latency_ms(Phase::kSteady));
    report.fault_latency_ms.Merge(flow.slo.latency_ms(Phase::kFault));
    report.recovery_latency_ms.Merge(flow.slo.latency_ms(Phase::kRecovery));
    report.outage_windows += fs.outage_windows;
    if (fs.max_outage_ms > report.max_outage_ms) {
      report.max_outage_ms = fs.max_outage_ms;
      report.max_outage_flow = fs.name;
    }
  }
  report.damaged = damaged_;
  report.recovery_lost = recovery_lost_;
  report.step_ms = step_ms_;
  report.steps_completed = steps_completed_;
  return report;
}

}  // namespace workload
}  // namespace autonet
