// Per-flow SLO accounting for the workload engine, and the oracle that
// judges a finished run on application impact.
//
// The paper's availability claim is that a reconfiguration is "a pause, not
// a failure".  This file turns that into checkable numbers:
//
//   outage window   longest per-flow gap with traffic offered but nothing
//                   delivered, net of *excused* time (spans during which the
//                   flow was physically unserviceable — an endpoint off the
//                   network or the endpoints in different components — where
//                   no routing policy could have delivered anything)
//   tail latency    delivery-latency histograms split by phase (steady /
//                   fault / recovery), so post-quiescence p999 can be
//                   compared against the steady-state baseline
//   lost forever    ops sent on a serviceable flow that never completed even
//                   though the flow was serviceable again at the end
//   deadline misses periodic-stream frames missing their deadline outside
//                   the fault window
//
// JudgeSlo() converts a report into violations against a diameter-scaled
// budget, mirroring the convergence oracle's deadline scaling (§6.6.5).
#ifndef SRC_WORKLOAD_SLO_H_
#define SRC_WORKLOAD_SLO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/time.h"
#include "src/workload/spec.h"

namespace autonet {
namespace workload {

// Run phases, in order.  The engine stamps each op with the phase it was
// sent in; latency histograms are per sent-phase.
enum class Phase : std::uint8_t { kSteady = 0, kFault = 1, kRecovery = 2 };
inline constexpr int kNumPhases = 3;

const char* PhaseName(Phase phase);

// Budget knobs (campaign-level configuration).
struct SloBudgetConfig {
  // Outage budget: base + per_hop * diameter of the healthy topology at
  // workload start.  Generous enough to cover legitimate skeptic hold-downs
  // under repeated flapping, yet far below "the application failed".
  Tick outage_base = 10 * kSecond;
  Tick outage_per_hop = 2 * kSecond;
  // Gaps shorter than this are ordinary queueing, not outages; a healthy
  // steady-state run must report zero outage windows.
  Tick outage_floor = 25 * kMillisecond;
  // Recovery p999 must be within max(factor * steady p999, steady p999 +
  // slack) once both phases have min_latency_samples.
  double latency_factor = 2.0;
  double latency_slack_ms = 2.0;
  std::uint64_t min_latency_samples = 64;
};

// The budget resolved against a concrete topology.
struct SloBudget {
  double outage_ms = 0;
  double floor_ms = 0;
  double latency_factor = 2.0;
  double latency_slack_ms = 2.0;
  std::uint64_t min_latency_samples = 64;
  int diameter = 0;
};

SloBudget ResolveBudget(const SloBudgetConfig& config, int diameter);

// Accounts one flow.  The engine drives it: offers, completions, timeouts,
// deadline misses, and a periodic Advance carrying serviceability.
class FlowSlo {
 public:
  FlowSlo() = default;
  FlowSlo(std::string name, Tick outage_floor)
      : name_(std::move(name)), floor_(outage_floor) {}

  void OnOffered(Tick now, bool accepted);
  // `sent_phase` is the phase the op was sent in (latency attribution);
  // completions also close the current outage gap.
  void OnCompleted(Tick now, Phase sent_phase, double latency_ms);
  void OnTimeout() { ++timeouts_; }
  void OnDeadlineMiss(Phase phase) { ++deadline_miss_[static_cast<int>(phase)]; }
  // Periodic bookkeeping: accrues excused time while the flow is physically
  // unserviceable.  `dt` is sim time since the previous Advance.
  void Advance(Tick dt, bool serviceable);
  // Closes the final gap.  `outstanding` says whether offered work is still
  // undelivered (an open gap with nothing outstanding is idleness, not
  // outage).
  void Finalize(Tick now, bool outstanding);

  const std::string& name() const { return name_; }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t deadline_misses(Phase phase) const {
    return deadline_miss_[static_cast<int>(phase)];
  }
  const Histogram& latency_ms(Phase phase) const {
    return latency_[static_cast<int>(phase)];
  }
  double max_outage_ms() const { return max_outage_ms_; }
  int outage_windows() const { return outage_windows_; }
  double excused_ms() const { return static_cast<double>(excused_total_) / 1e6; }

 private:
  void CloseGap(Tick now);

  std::string name_;
  Tick floor_ = 25 * kMillisecond;

  std::uint64_t offered_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t deadline_miss_[kNumPhases] = {0, 0, 0};
  Histogram latency_[kNumPhases];

  // Outage gap state: anchor is the last completion (or the first offer);
  // excused time accrued inside the current gap is subtracted before the
  // gap is judged against the floor.
  Tick anchor_ = -1;
  Tick excused_in_gap_ = 0;
  Tick excused_total_ = 0;
  double max_outage_ms_ = 0;
  int outage_windows_ = 0;
};

// Aggregated per-run result the engine produces at Finalize.
struct SloReport {
  Spec spec;
  SloBudget budget;

  struct FlowStats {
    std::string name;
    std::uint64_t offered = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t deadline_misses = 0;
    double max_outage_ms = 0;
    int outage_windows = 0;
    double excused_ms = 0;
  };
  std::vector<FlowStats> flows;

  // Totals across flows.
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t damaged = 0;
  std::uint64_t deadline_miss_steady = 0;
  std::uint64_t deadline_miss_fault = 0;
  std::uint64_t deadline_miss_recovery = 0;
  // Ops sent while the flow was serviceable that never completed although
  // the flow was serviceable again at finalize ("lost forever").
  std::uint64_t recovery_lost = 0;

  // Merged latency per phase (ms).
  Histogram steady_latency_ms;
  Histogram fault_latency_ms;
  Histogram recovery_latency_ms;

  // Collective step times (allreduce only).
  Histogram step_ms;
  std::uint64_t steps_completed = 0;

  // Worst flow outage, and which flow it was.
  double max_outage_ms = 0;
  std::string max_outage_flow;
  int outage_windows = 0;

  std::string ToJson() const;
};

// Judges a report against its budget; returns (oracle name, detail) pairs,
// empty when every SLO held.  Oracle names: slo-outage, slo-latency,
// slo-loss, slo-deadline.
std::vector<std::pair<std::string, std::string>> JudgeSlo(
    const SloReport& report);

}  // namespace workload
}  // namespace autonet

#endif  // SRC_WORKLOAD_SLO_H_
