// LocalNet, the generic-LAN abstraction of host software (sections 3.11,
// 6.8): presents UID-addressed Ethernet datagrams to clients and hides
// whether an Autonet or an Ethernet carries them.  For Autonet transmission
// it supplies the short addresses using the UID cache and the learning/ARP
// algorithm of section 6.8.1; with StartForwarding() the host becomes an
// Autonet-to-Ethernet bridge (section 6.8.2).
#ifndef SRC_HOST_LOCALNET_H_
#define SRC_HOST_LOCALNET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/event_log.h"
#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/host/crypto.h"
#include "src/host/driver.h"
#include "src/host/ethernet.h"
#include "src/host/uid_cache.h"
#include "src/obs/metrics.h"
#include "src/sim/timer.h"

namespace autonet {

// A UID-addressed Ethernet datagram, the client-visible unit.
struct Datagram {
  Uid dest_uid;
  Uid src_uid;
  std::uint16_t ether_type = 0;
  std::vector<std::uint8_t> data;
  bool encrypted = false;   // Autonet-only capability (section 3.10)
  std::uint32_t key_id = 0; // which controller key encrypts/decrypts it
};

inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

class LocalNet {
 public:
  struct Stats {
    std::uint64_t sent_unicast = 0;
    std::uint64_t sent_broadcast_addr = 0;  // fell back to broadcast address
    std::uint64_t arp_requests = 0;
    std::uint64_t arp_replies = 0;
    std::uint64_t received = 0;
    std::uint64_t forwarded_to_ethernet = 0;
    std::uint64_t forwarded_to_autonet = 0;
    std::uint64_t forward_refused = 0;  // encrypted or oversize
    std::uint64_t discarded_oversize_unknown = 0;
    std::uint64_t undecryptable = 0;    // encrypted with an unknown key
  };

  // Client receive callback: the datagram and the network it arrived on.
  using ReceiveHandler = std::function<void(NetworkId, const Datagram&)>;

  explicit LocalNet(Simulator* sim, Uid host_uid, std::string name);

  // Attach the physical networks (either or both).
  void AttachAutonet(AutonetDriver* driver);
  void AttachEthernet(EthernetStation* station);

  bool autonet_available() const { return driver_ != nullptr; }
  bool ethernet_available() const { return station_ != nullptr; }

  // GetInfo/SetState of Figure 4, reduced to enabling/disabling networks.
  void SetEnabled(NetworkId net, bool enabled);
  bool IsEnabled(NetworkId net) const;

  // Sends a UID-addressed datagram on the given network.
  bool Send(NetworkId net, Datagram datagram);

  void SetReceiveHandler(ReceiveHandler handler) {
    handler_ = std::move(handler);
  }

  // StartForwarding (Figure 4): act as an Autonet-to-Ethernet bridge.
  // Forwarding costs model the Firefly's two dedicated CPUs (one per
  // driver thread, section 6.8.2).
  struct BridgeConfig {
    Tick cpu_per_packet = 800 * kMicrosecond;  // CPU-bound small packets
    Tick bus_per_byte = 570;                   // 14 Mbit/s Q-bus
  };
  void StartForwarding();
  void StartForwarding(BridgeConfig config);
  bool forwarding() const { return forwarding_; }

  UidCache& cache() { return cache_; }
  // The controller's key table (section 3.10); both ends of an encrypted
  // conversation must install the same key under the same id.
  KeyTable& keys() { return keys_; }
  const Stats& stats() const { return stats_; }
  Uid uid() const { return uid_; }

 private:
  void OnAutonetDelivery(const Delivery& delivery);
  void OnEthernetFrame(const EthernetFrame& frame);
  bool TransmitOnAutonet(const Datagram& datagram, ShortAddress dest);
  void SendArpRequest(Uid target, ShortAddress to);
  void SendArpReply(Uid target_uid, NetworkId via);
  void HandleArp(NetworkId net, const Datagram& datagram);
  void ScheduleArpCheck(Uid uid);

  // Bridging.
  void BridgeToEthernet(const Datagram& datagram, bool encrypted);
  void BridgeToAutonet(const Datagram& datagram);
  void RunOnBridgeCpu(NetworkId direction, Tick cost,
                      std::function<void()> fn);

  Simulator* sim_;
  Uid uid_;
  std::string name_;
  EventLog log_;
  AutonetDriver* driver_ = nullptr;
  EthernetStation* station_ = nullptr;
  bool enabled_[2] = {true, true};
  ReceiveHandler handler_;
  UidCache cache_;
  KeyTable keys_;
  std::uint64_t next_iv_ = 1;
  Stats stats_;

  bool forwarding_ = false;
  BridgeConfig bridge_config_;
  Tick bridge_busy_until_[2] = {0, 0};

  // UID-cache effectiveness (`host.<name>.uidcache.{hit,miss}` in the
  // simulator's registry): a miss is a send that had to fall back to the
  // broadcast short address because the destination UID was unknown.
  obs::Counter* m_cache_hit_;
  obs::Counter* m_cache_miss_;
};

// ARP body serialization (requests and replies carry the target UID; the
// Autonet header's source fields carry the binding being advertised).
struct ArpBody {
  enum class Op : std::uint8_t { kRequest = 1, kReply = 2 };
  Op op = Op::kRequest;
  Uid target_uid;

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<ArpBody> Parse(const std::vector<std::uint8_t>& data);
};

}  // namespace autonet

#endif  // SRC_HOST_LOCALNET_H_
