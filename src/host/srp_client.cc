#include "src/host/srp_client.h"

#include <cstring>

#include "src/common/serialize.h"

namespace autonet {

SrpClient::SrpClient(AutonetDriver* driver)
    : driver_(driver),
      sim_(driver->controller()->sim()),
      chained_(driver->receive_handler()) {
  driver_->SetReceiveHandler([this](Delivery d) { OnDelivery(std::move(d)); });
}

void SrpClient::OnDelivery(Delivery d) {
  if (d.packet->type != PacketType::kSrp) {
    // Not ours: pass through to the handler we displaced.  Dropping these
    // would silence every other client on the host (found by host-side
    // injection: the delivery oracle went dark the moment a client was
    // installed, with the driver's address book fully intact).
    if (chained_) {
      chained_(std::move(d));
    }
    return;
  }
  if (!d.intact()) {
    return;
  }
  auto msg = SrpMsg::Parse(d.packet->payload);
  if (msg.has_value() && msg->op == SrpMsg::Op::kReply) {
    replies_[msg->request_id] = std::move(*msg);
  }
}

std::optional<SrpMsg> SrpClient::Query(SrpMsg::Op op,
                                       const std::vector<std::uint8_t>& route,
                                       Tick timeout,
                                       std::vector<std::uint8_t> body) {
  SrpMsg msg;
  msg.op = op;
  msg.request_id = ++next_id_;
  msg.route = route;
  msg.body = std::move(body);
  Packet p;
  p.dest = kAddrLocalCp;
  p.type = PacketType::kSrp;
  p.payload = msg.Serialize();
  if (!driver_->Send(std::move(p))) {
    return std::nullopt;
  }
  Tick deadline = sim_->now() + timeout;
  while (sim_->now() < deadline) {
    sim_->RunUntil(sim_->now() + 5 * kMillisecond);
    auto it = replies_.find(msg.request_id);
    if (it != replies_.end()) {
      SrpMsg reply = std::move(it->second);
      replies_.erase(it);
      return reply;
    }
  }
  return std::nullopt;
}

std::optional<SrpClient::SwitchState> SrpClient::GetState(
    const std::vector<std::uint8_t>& route, Tick timeout) {
  auto reply = Query(SrpMsg::Op::kGetState, route, timeout);
  if (!reply.has_value()) {
    return std::nullopt;
  }
  ByteReader r(reply->body);
  SwitchState state;
  state.epoch = r.U64();
  state.switch_num = r.U16();
  state.uid = r.ReadUid();
  state.reconfig_in_progress = r.U8() != 0;
  for (int p = kFirstExternalPort; p < kPortsPerSwitch; ++p) {
    state.port_states.push_back(r.U8());
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return state;
}

std::optional<NetTopology> SrpClient::GetTopology(
    const std::vector<std::uint8_t>& route, Tick timeout) {
  auto reply = Query(SrpMsg::Op::kGetTopology, route, timeout);
  if (!reply.has_value()) {
    return std::nullopt;
  }
  ByteReader r(reply->body);
  std::vector<SwitchRecord> records;
  if (!ParseSwitchRecords(r, &records)) {
    return std::nullopt;
  }
  return RecordsToTopology(records);
}

std::optional<std::string> SrpClient::GetLogTail(
    const std::vector<std::uint8_t>& route, Tick timeout) {
  auto reply = Query(SrpMsg::Op::kGetLog, route, timeout);
  if (!reply.has_value()) {
    return std::nullopt;
  }
  return std::string(reply->body.begin(), reply->body.end());
}

bool SrpClient::Echo(const std::vector<std::uint8_t>& route, Tick timeout) {
  return Query(SrpMsg::Op::kEcho, route, timeout).has_value();
}

std::optional<std::vector<SrpClient::RemoteStat>> SrpClient::GetStats(
    const std::vector<std::uint8_t>& route, const std::string& filter,
    Tick timeout) {
  std::vector<std::uint8_t> body(filter.begin(), filter.end());
  auto reply =
      Query(SrpMsg::Op::kGetStats, route, timeout, std::move(body));
  if (!reply.has_value()) {
    return std::nullopt;
  }
  ByteReader r(reply->body);
  auto f64 = [](std::uint64_t bits) {
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  };
  std::uint16_t count = r.U16();
  std::vector<RemoteStat> stats;
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    RemoteStat s;
    s.kind = static_cast<obs::MetricKind>(r.U8());
    std::uint16_t len = r.U16();
    for (std::uint16_t j = 0; j < len; ++j) {
      s.name.push_back(static_cast<char>(r.U8()));
    }
    switch (s.kind) {
      case obs::MetricKind::kCounter:
        s.counter = r.U64();
        break;
      case obs::MetricKind::kGauge:
        s.gauge = f64(r.U64());
        break;
      case obs::MetricKind::kHistogram:
        s.hist_count = r.U64();
        s.hist_min = f64(r.U64());
        s.hist_max = f64(r.U64());
        s.hist_mean = f64(r.U64());
        break;
      default:
        return std::nullopt;  // damaged reply
    }
    if (r.ok()) {
      stats.push_back(std::move(s));
    }
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return stats;
}

std::vector<SrpClient::CrawlEntry> SrpClient::CrawlTopology(
    Tick per_query_timeout) {
  std::vector<CrawlEntry> entries;
  auto topo = GetTopology({}, per_query_timeout);
  auto local_state = GetState({}, per_query_timeout);
  if (!topo.has_value() || !local_state.has_value()) {
    return entries;
  }
  int local = topo->IndexOf(local_state->uid);
  if (local < 0) {
    return entries;
  }
  std::vector<std::vector<std::uint8_t>> route_to(topo->switches.size());
  std::vector<bool> seen(topo->switches.size(), false);
  std::vector<int> queue{local};
  seen[local] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    int sw = queue[head];
    if (auto state = GetState(route_to[sw], per_query_timeout)) {
      entries.push_back({route_to[sw], std::move(*state)});
    }
    for (const TopoLink& link : topo->switches[sw].links) {
      if (!seen[link.remote_switch]) {
        seen[link.remote_switch] = true;
        route_to[link.remote_switch] = route_to[sw];
        route_to[link.remote_switch].push_back(
            static_cast<std::uint8_t>(link.local_port));
        queue.push_back(link.remote_switch);
      }
    }
  }
  return entries;
}

}  // namespace autonet
