// The LocalNet UID cache (sections 4.3, 6.8.1): maps 48-bit Ethernet UIDs
// to Autonet short addresses (learned from the source fields of arriving
// packets) and, for bridging hosts, records which network each UID lives on
// (a given UID is on one network or the other, never both).
#ifndef SRC_HOST_UID_CACHE_H_
#define SRC_HOST_UID_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace autonet {

enum class NetworkId : int {
  kAutonet = 0,
  kEthernet = 1,
};

class UidCache {
 public:
  struct Entry {
    ShortAddress short_address;  // broadcast when unknown
    NetworkId location = NetworkId::kAutonet;
    Tick updated_at = 0;
  };

  // Records the (uid -> short address) correspondence observed in a
  // received packet's source fields.
  void Learn(Uid uid, ShortAddress addr, NetworkId location, Tick now) {
    Entry& e = map_[uid];
    e.short_address = addr;
    e.location = location;
    e.updated_at = now;
  }

  const Entry* Find(Uid uid) const {
    auto it = map_.find(uid);
    return it == map_.end() ? nullptr : &it->second;
  }

  // Looks up the short address for a destination, creating a
  // broadcast-valued entry if absent (the transmit algorithm of
  // section 6.8.1).
  Entry& FindOrCreate(Uid uid, ShortAddress broadcast_addr, Tick now) {
    auto [it, inserted] = map_.try_emplace(uid);
    if (inserted) {
      it->second.short_address = broadcast_addr;
      it->second.location = NetworkId::kAutonet;
      it->second.updated_at = now - kSecond;  // stale from birth
    }
    return it->second;
  }

  // Invalidate: equivalent to removing the entry (address reverts to
  // broadcast).
  void Invalidate(Uid uid, ShortAddress broadcast_addr) {
    auto it = map_.find(uid);
    if (it != map_.end()) {
      it->second.short_address = broadcast_addr;
    }
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<Uid, Entry> map_;
};

}  // namespace autonet

#endif  // SRC_HOST_UID_CACHE_H_
