// The Autonet driver (section 6.8.3): owns the controller's two links,
// confirms the host's short address with the local switch every few
// seconds, and fails over to the alternate link when the active one stops
// responding.  Timing follows the paper: after ~3 seconds without a switch
// response the driver switches links, forgets its short address, and
// re-registers; if the new link is also dead it alternates every ~10
// seconds until a switch answers.
#ifndef SRC_HOST_DRIVER_H_
#define SRC_HOST_DRIVER_H_

#include <cstdint>
#include <functional>

#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/host/controller.h"
#include "src/sim/timer.h"

namespace autonet {

class AutonetDriver {
 public:
  struct Config {
    Tick ping_period = 2 * kSecond;       // routine address confirmation
    Tick vigorous_ping_period = 250 * kMillisecond;
    Tick fail_threshold = 3 * kSecond;    // silence before failing over
    Tick alternate_retry = 10 * kSecond;  // per-link dwell when both dead
    Tick check_period = 100 * kMillisecond;
  };

  struct Stats {
    std::uint64_t pings_sent = 0;
    std::uint64_t failovers = 0;
    std::uint64_t address_changes = 0;
    std::uint64_t addresses_held = 0;  // implausible changes awaiting confirm
    std::uint64_t loopback_tests = 0;
    std::uint64_t loopback_failures = 0;
  };

  // Called when the host's short address is (re)learned or changes.
  using AddressChangeHandler = std::function<void(ShortAddress)>;
  // Client packets (everything except the driver's own kHostAddress
  // traffic) are passed through.
  using ReceiveHandler = std::function<void(Delivery)>;

  AutonetDriver(HostController* controller, Config config);
  AutonetDriver(HostController* controller);

  void Start();

  bool HasAddress() const { return has_address_; }
  ShortAddress short_address() const { return address_; }
  std::uint64_t address_epoch() const { return address_epoch_; }
  const Stats& stats() const { return stats_; }
  HostController* controller() { return controller_; }

  void SetReceiveHandler(ReceiveHandler handler) {
    receive_handler_ = std::move(handler);
  }
  // The currently installed handler, for clients (e.g. SrpClient) that
  // interpose on one packet type and chain everything else through.
  const ReceiveHandler& receive_handler() const { return receive_handler_; }
  void SetAddressChangeHandler(AddressChangeHandler handler) {
    address_change_handler_ = std::move(handler);
  }

  // Sends a client packet, stamping the source short address.  Returns
  // false if the address is not yet known or the transmit buffer is full.
  bool Send(Packet&& packet);

  // Lets clients force a link switch (the driver interface of the paper
  // "lets a client program switch the active link on demand").
  void ForceFailover();

  // Loopback self-test (section 6.3: packets sent to 0x7FC "will be looped
  // back to that host.  This feature is used by a host to test its links").
  // Tests the *active* link; the callback reports success.
  using TestResult = std::function<void(bool ok)>;
  void TestActiveLink(TestResult on_result,
                      Tick timeout = 500 * kMillisecond);
  // Section 6.8.3: "the alternate link can be tested, and if necessary
  // replaced, before it is needed."  Switches to the alternate port, runs
  // the loopback test there, and switches back regardless of outcome.
  void TestAlternateLink(TestResult on_result,
                         Tick timeout = 500 * kMillisecond);

 private:
  void OnDelivery(Delivery d);
  void SendPing();
  void Check();
  void FailOver(const char* reason);

  HostController* controller_;
  Config config_;
  PeriodicTask check_task_;

  bool started_ = false;
  bool has_address_ = false;
  ShortAddress address_;
  std::uint64_t address_epoch_ = 0;
  // A re-address reply that did not carry a plausibly newer epoch, held
  // until a second reply names the same address (see OnDelivery): one
  // stale or damaged reply must not strip the host of a working address.
  bool pending_addr_valid_ = false;
  ShortAddress pending_addr_;
  Tick last_response_ = -1;
  Tick last_ping_ = -1;
  Tick active_since_ = 0;
  Stats stats_;

  ReceiveHandler receive_handler_;
  AddressChangeHandler address_change_handler_;

  // Loopback test state.
  void StartLoopback(TestResult on_result, Tick timeout, int restore_port);
  void FinishLoopback(bool ok);
  std::uint64_t loopback_token_ = 0;
  std::uint64_t loopback_expect_ = 0;
  TestResult loopback_result_;
  int loopback_restore_port_ = -1;
  Timer loopback_timer_;
};

}  // namespace autonet

#endif  // SRC_HOST_DRIVER_H_
