#include "src/host/ethernet.h"

#include <algorithm>

namespace autonet {

EthernetSegment::EthernetSegment(Simulator* sim, double mbps)
    : sim_(sim), mbps_(mbps) {}

void EthernetSegment::DetachStation(EthernetStation* station) {
  stations_.erase(std::remove(stations_.begin(), stations_.end(), station),
                  stations_.end());
}

void EthernetSegment::Transmit(const EthernetStation* sender,
                               EthernetFrame frame) {
  queue_.push_back(Pending{sender, std::move(frame)});
  if (!busy_) {
    StartNext();
  }
}

void EthernetSegment::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending pending = std::move(queue_.front());
  queue_.pop_front();
  // Serialization time at the segment's bit rate plus the 9.6 us interframe
  // gap of 10 Mbit/s Ethernet.
  double bits = static_cast<double>(pending.frame.WireSize()) * 8.0;
  Tick duration = static_cast<Tick>(bits / mbps_ * 1000.0) + 9600;
  sim_->ScheduleAfter(duration, [this, pending = std::move(pending)] {
    ++frames_carried_;
    for (EthernetStation* station : stations_) {
      if (station != pending.sender) {
        station->Deliver(pending.frame);
      }
    }
    StartNext();
  });
}

EthernetStation::EthernetStation(EthernetSegment* segment, Uid uid,
                                 std::string name)
    : segment_(segment), uid_(uid), name_(std::move(name)) {
  segment_->AttachStation(this);
}

EthernetStation::~EthernetStation() { segment_->DetachStation(this); }

bool EthernetStation::Send(EthernetFrame frame) {
  frame.src_uid = uid_;
  return SendPreservingSource(std::move(frame));
}

bool EthernetStation::SendPreservingSource(EthernetFrame frame) {
  if (frame.data.size() > kMaxBridgedData) {
    return false;  // oversize for Ethernet
  }
  ++frames_sent_;
  segment_->Transmit(this, std::move(frame));
  return true;
}

void EthernetStation::Deliver(const EthernetFrame& frame) {
  if (!promiscuous_ && !frame.IsBroadcast() && frame.dest_uid != uid_) {
    return;
  }
  ++frames_received_;
  if (handler_) {
    handler_(frame);
  }
}

}  // namespace autonet
