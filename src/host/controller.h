// The Autonet host controller (sections 3.9, 5.2, 6.2): two network ports of
// which exactly one is active at a time, a 128-Kbyte transmit buffer and a
// 128-Kbyte receive buffer, and CRC checking.  Key wire behaviours:
//
//   * the active port sends the `host` flow-control directive in place of
//     `start`, so switches can tell hosts from switches;
//   * the alternate port transmits only sync (no flow directives) — the
//     pattern the status sampler recognises as an alternate host port;
//   * a controller never sends `stop`: a slow host cannot back congestion
//     into the network; instead the controller discards received packets
//     when its receive buffer fills;
//   * the controller obeys `stop` from the switch, except that, like every
//     Autonet transmitter, it ignores stop mid-packet when sending a
//     broadcast packet (section 6.6.6).
#ifndef SRC_HOST_CONTROLLER_H_
#define SRC_HOST_CONTROLLER_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/event_log.h"
#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/link/link.h"
#include "src/sim/simulator.h"

namespace autonet {

class HostController {
 public:
  struct Config {
    std::size_t tx_buffer_bytes = 128 * 1024;
    std::size_t rx_buffer_bytes = 128 * 1024;
    // Host-side packet consumption cost; 0 = the host keeps up with the
    // link.  The bridge benches raise this to model a CPU-bound host.
    Tick rx_process_ns_per_packet = 0;
    Tick rx_process_ns_per_byte = 0;
    // Section 7 proposes making the alternate port send `host` directives
    // too; the shipped hardware sends only sync.  Flag models the proposal.
    bool host_directive_on_alternate = false;
  };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t rx_discarded_full = 0;  // receive buffer overflow
    std::uint64_t rx_crc_errors = 0;
    std::uint64_t rx_truncated = 0;
    std::uint64_t tx_rejected_full = 0;   // transmit buffer overflow
  };

  using ReceiveHandler = std::function<void(Delivery)>;

  HostController(Simulator* sim, Uid uid, std::string name, Config config);
  HostController(Simulator* sim, Uid uid, std::string name);
  ~HostController();

  HostController(const HostController&) = delete;
  HostController& operator=(const HostController&) = delete;

  void AttachPort(int which, Link* link, Link::Side side);
  void DetachPort(int which);

  // Selects the active port (0 or 1); the other becomes the alternate.
  void SelectPort(int which);
  int active_port() const { return active_; }

  // Queues a packet for transmission on the active port.  Returns false if
  // the transmit buffer cannot hold it.
  bool Send(const PacketRef& packet);

  // Delivered packets that failed CRC or arrived truncated are passed to the
  // handler too (flags set) so drivers can count link errors; client-facing
  // layers filter on Delivery::intact().
  void SetReceiveHandler(ReceiveHandler handler) {
    handler_ = std::move(handler);
  }

  Simulator* sim() { return sim_; }
  Uid uid() const { return uid_; }
  const std::string& name() const { return name_; }
  const Stats& stats() const { return stats_; }
  EventLog& log() { return log_; }
  std::size_t tx_queued_bytes() const { return tx_queued_bytes_; }
  bool link_error_on_active() const;

 private:
  class NetPort : public LinkEndpoint {
   public:
    NetPort() = default;
    void Init(HostController* owner, int index) {
      owner_ = owner;
      index_ = index;
    }

    void OnPacketBegin(const PacketRef& packet) override;
    void OnDataByte(const PacketRef& packet, std::uint32_t offset,
                    bool corrupt) override;
    void OnPacketEnd(EndFlags flags) override;
    void OnFlowDirective(FlowDirective directive) override;
    void OnCarrierChange(bool carrier_up) override;

    Link* link = nullptr;
    Link::Side side = Link::Side::kA;
    FlowDirective last_rx_directive = FlowDirective::kStart;
    bool carrier = false;

    // Receive reassembly.
    PacketRef rx_packet;
    std::uint32_t rx_bytes = 0;
    bool rx_corrupted = false;

   private:
    HostController* owner_ = nullptr;
    int index_ = 0;
  };

  void UpdatePortDirectives();
  bool CanTransmitNow() const;
  void SchedulePump();
  Simulator::TrainStep PumpStep();
  void OnThrottleChange();
  void FinishReceive(NetPort& port, EndFlags flags);
  void DrainRxQueue();

  Simulator* sim_;
  Uid uid_;
  std::string name_;
  Config config_;
  EventLog log_;
  ReceiveHandler handler_;
  std::array<NetPort, 2> ports_;
  int active_ = 0;

  // Transmit side.
  std::deque<PacketRef> tx_queue_;
  std::size_t tx_queued_bytes_ = 0;
  std::uint32_t tx_offset_ = 0;  // within the head packet
  bool tx_begun_ = false;
  Simulator::EventId pump_event_;

  // Receive side (modelled buffer + host consumption).
  std::deque<Delivery> rx_queue_;
  std::size_t rx_queued_bytes_ = 0;
  bool rx_draining_ = false;

  Stats stats_;
};

}  // namespace autonet

#endif  // SRC_HOST_CONTROLLER_H_
