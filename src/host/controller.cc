#include "src/host/controller.h"

#include "src/link/slots.h"

namespace autonet {

HostController::HostController(Simulator* sim, Uid uid, std::string name,
                               Config config)
    : sim_(sim),
      uid_(uid),
      name_(std::move(name)),
      config_(config),
      log_(name_) {
  ports_[0].Init(this, 0);
  ports_[1].Init(this, 1);
}

HostController::HostController(Simulator* sim, Uid uid, std::string name)
    : HostController(sim, uid, std::move(name), Config()) {}

HostController::~HostController() {
  DetachPort(0);
  DetachPort(1);
}

void HostController::AttachPort(int which, Link* link, Link::Side side) {
  NetPort& port = ports_[which];
  port.link = link;
  port.side = side;
  link->Attach(side, &port);
  port.carrier = link->CarrierAt(side);
  UpdatePortDirectives();
}

void HostController::DetachPort(int which) {
  NetPort& port = ports_[which];
  if (port.link != nullptr) {
    port.link->Detach(port.side);
    port.link = nullptr;
  }
}

void HostController::SelectPort(int which) {
  if (active_ == which) {
    return;
  }
  active_ = which;
  // Abandon any packet mid-transmission on the old port: it arrives
  // truncated and the destination discards it.
  if (tx_begun_) {
    NetPort& old_port = ports_[1 - which];
    if (old_port.link != nullptr) {
      old_port.link->TransmitEnd(old_port.side,
                                 EndFlags{.truncated = true, .corrupted = true});
    }
    tx_begun_ = false;
    tx_offset_ = 0;
  }
  UpdatePortDirectives();
  SchedulePump();
}

void HostController::UpdatePortDirectives() {
  for (int i = 0; i < 2; ++i) {
    NetPort& port = ports_[i];
    if (port.link == nullptr) {
      continue;
    }
    FlowDirective d;
    if (i == active_) {
      d = FlowDirective::kHost;  // hosts send host in place of start
    } else {
      d = config_.host_directive_on_alternate ? FlowDirective::kHost
                                              : FlowDirective::kNone;
    }
    port.link->SetFlowDirective(port.side, d);
  }
}

bool HostController::Send(const PacketRef& packet) {
  std::size_t size = packet->WireSize();
  if (tx_queued_bytes_ + size > config_.tx_buffer_bytes) {
    ++stats_.tx_rejected_full;
    return false;
  }
  tx_queue_.push_back(packet);
  tx_queued_bytes_ += size;
  SchedulePump();
  return true;
}

bool HostController::CanTransmitNow() const {
  const NetPort& port = ports_[active_];
  if (port.link == nullptr) {
    return false;
  }
  // Broadcast transmissions ignore stop once begun (section 6.6.6).
  if (tx_begun_ && !tx_queue_.empty() && tx_queue_.front()->dest.IsBroadcast()) {
    return true;
  }
  return DirectiveAllowsTransmit(port.last_rx_directive);
}

void HostController::SchedulePump() {
  if (pump_event_.valid() || tx_queue_.empty()) {
    return;
  }
  // One train per transmit burst: PumpStep re-anchors the single queue
  // entry at each next data slot (the handler steers because flow slots
  // make the grid non-arithmetic) and ends it when the queue drains or
  // flow control stops us.
  pump_event_ = sim_->ScheduleTrainRawAt(
      NextDataSlotAfter(sim_->now()), 0,
      [](void* self, std::uint64_t, std::uint32_t) {
        return static_cast<HostController*>(self)->PumpStep();
      },
      this, 0);
}

void HostController::OnThrottleChange() {
  if (!tx_queue_.empty() && CanTransmitNow()) {
    SchedulePump();
  }
}

Simulator::TrainStep HostController::PumpStep() {
  if (tx_queue_.empty()) {
    pump_event_ = {};
    return Simulator::TrainStep::Done();
  }
  if (!CanTransmitNow()) {
    pump_event_ = {};
    return Simulator::TrainStep::Done();  // resume on flow-directive change
  }
  NetPort& port = ports_[active_];
  const PacketRef& packet = tx_queue_.front();
  if (!tx_begun_) {
    port.link->TransmitBegin(port.side, packet);
    tx_begun_ = true;
    tx_offset_ = 0;
    return Simulator::TrainStep::At(NextDataSlotAfter(sim_->now()));
  }
  if (tx_offset_ < packet->WireSize()) {
    port.link->TransmitByte(port.side, packet, tx_offset_++);
    return Simulator::TrainStep::At(NextDataSlotAfter(sim_->now()));
  }
  port.link->TransmitEnd(port.side, EndFlags{});
  ++stats_.packets_sent;
  tx_queued_bytes_ -= packet->WireSize();
  tx_queue_.pop_front();
  tx_begun_ = false;
  tx_offset_ = 0;
  if (tx_queue_.empty()) {
    pump_event_ = {};
    return Simulator::TrainStep::Done();
  }
  return Simulator::TrainStep::At(NextDataSlotAfter(sim_->now()));
}

bool HostController::link_error_on_active() const {
  const NetPort& port = ports_[active_];
  return port.link == nullptr || !port.carrier;
}

// --- receive path ---

void HostController::NetPort::OnPacketBegin(const PacketRef& packet) {
  rx_packet = packet;
  rx_bytes = 0;
  rx_corrupted = false;
}

void HostController::NetPort::OnDataByte(const PacketRef& packet,
                                         std::uint32_t offset, bool corrupt) {
  (void)packet;
  (void)offset;
  if (corrupt) {
    rx_corrupted = true;
  }
  ++rx_bytes;
}

void HostController::NetPort::OnPacketEnd(EndFlags flags) {
  if (index_ != owner_->active_) {
    // The alternate port's receiver is ignored by the host.
    rx_packet = nullptr;
    return;
  }
  owner_->FinishReceive(*this, flags);
}

void HostController::NetPort::OnFlowDirective(FlowDirective directive) {
  last_rx_directive = directive;
  if (index_ == owner_->active_) {
    owner_->OnThrottleChange();
  }
}

void HostController::NetPort::OnCarrierChange(bool carrier_up) {
  carrier = carrier_up;
  if (!carrier_up) {
    rx_packet = nullptr;
  }
}

void HostController::FinishReceive(NetPort& port, EndFlags flags) {
  if (port.rx_packet == nullptr) {
    return;
  }
  Delivery delivery;
  delivery.packet = port.rx_packet;
  delivery.corrupted = flags.corrupted || port.rx_corrupted;
  delivery.truncated =
      flags.truncated || port.rx_bytes != port.rx_packet->WireSize();
  delivery.arrival_port = &port == &ports_[0] ? 0 : 1;
  delivery.delivered_at = sim_->now();
  port.rx_packet = nullptr;

  if (delivery.corrupted) {
    ++stats_.rx_crc_errors;
  }
  if (delivery.truncated) {
    ++stats_.rx_truncated;
  }

  std::size_t size = delivery.packet->WireSize();
  if (rx_queued_bytes_ + size > config_.rx_buffer_bytes) {
    ++stats_.rx_discarded_full;  // slow host: discard, never stop the net
    return;
  }
  rx_queue_.push_back(std::move(delivery));
  rx_queued_bytes_ += size;
  DrainRxQueue();
}

void HostController::DrainRxQueue() {
  if (rx_draining_ || rx_queue_.empty()) {
    return;
  }
  Delivery delivery = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  rx_queued_bytes_ -= delivery.packet->WireSize();

  Tick cost = config_.rx_process_ns_per_packet +
              config_.rx_process_ns_per_byte *
                  static_cast<Tick>(delivery.packet->WireSize());
  if (cost == 0) {
    ++stats_.packets_received;
    if (handler_) {
      handler_(std::move(delivery));
    }
    if (!rx_queue_.empty()) {
      DrainRxQueue();
    }
    return;
  }
  rx_draining_ = true;
  sim_->ScheduleAfter(cost, [this, d = std::move(delivery)]() mutable {
    rx_draining_ = false;
    ++stats_.packets_received;
    if (handler_) {
      handler_(std::move(d));
    }
    DrainRxQueue();
  });
}

}  // namespace autonet
