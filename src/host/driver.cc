#include "src/host/driver.h"

#include "src/autopilot/messages.h"

namespace autonet {

AutonetDriver::AutonetDriver(HostController* controller, Config config)
    : controller_(controller),
      config_(config),
      check_task_(controller->sim(), [this] { Check(); }),
      loopback_timer_(controller->sim(), [this] { FinishLoopback(false); }) {
  controller_->SetReceiveHandler([this](Delivery d) { OnDelivery(std::move(d)); });
}

AutonetDriver::AutonetDriver(HostController* controller)
    : AutonetDriver(controller, Config()) {}

void AutonetDriver::Start() {
  started_ = true;
  active_since_ = controller_->sim()->now();
  last_response_ = controller_->sim()->now();
  SendPing();
  check_task_.Start(config_.check_period);
}

void AutonetDriver::SendPing() {
  // "A host discovers its own short address by sending a packet to address
  // 0000" (section 6.3); the same packet doubles as the liveness ping.
  HostAddressMsg msg;
  msg.kind = HostAddressMsg::Kind::kRequest;
  msg.host_uid = controller_->uid();
  Packet p;
  p.dest = kAddrLocalCp;
  p.src = has_address_ ? address_ : ShortAddress(0);
  p.type = PacketType::kHostAddress;
  p.payload = msg.Serialize();
  ++stats_.pings_sent;
  last_ping_ = controller_->sim()->now();
  controller_->Send(MakePacket(std::move(p)));
}

void AutonetDriver::OnDelivery(Delivery d) {
  if (!d.intact()) {
    return;  // CRC failure: drop (counted by the controller)
  }
  if (d.packet->dest.IsLoopback()) {
    // Our own loopback test packet reflected by the local switch.
    if (loopback_expect_ != 0 && d.packet->payload.size() == 8) {
      std::uint64_t token = 0;
      for (int i = 0; i < 8; ++i) {
        token |= static_cast<std::uint64_t>(d.packet->payload[i]) << (i * 8);
      }
      if (token == loopback_expect_) {
        FinishLoopback(true);
      }
    }
    return;
  }
  if (d.packet->type == PacketType::kHostAddress) {
    auto msg = HostAddressMsg::Parse(d.packet->payload);
    if (!msg.has_value() || msg->kind != HostAddressMsg::Kind::kReply ||
        msg->host_uid != controller_->uid()) {
      return;
    }
    last_response_ = controller_->sim()->now();
    ShortAddress addr(msg->short_address);
    if (has_address_ && addr != address_) {
      // Re-addressing a registered host is drastic: every peer's cached
      // address for it goes stale.  A genuine re-address (the network
      // reconfigured and the switch got a new number) always carries a
      // newer epoch; a reply that does not — a delayed duplicate from the
      // pre-reconfiguration topology, or a damaged address field that beat
      // the CRC — used to re-address the host on the spot.  Hold such a
      // change until a second reply names the same address (the ping
      // cadence produces one within seconds; a one-off stale or corrupted
      // reply never repeats).
      constexpr std::uint64_t kMaxAddressEpochJump = std::uint64_t{1} << 32;
      bool plausibly_newer = msg->epoch > address_epoch_ &&
                             msg->epoch - address_epoch_ <= kMaxAddressEpochJump;
      bool confirmed = pending_addr_valid_ && pending_addr_ == addr;
      if (!plausibly_newer && !confirmed) {
        pending_addr_valid_ = true;
        pending_addr_ = addr;
        ++stats_.addresses_held;
        controller_->log().Logf(
            controller_->sim()->now(),
            "driver: holding address change %s -> %s (epoch %llu, have "
            "%llu) for confirmation",
            address_.ToString().c_str(), addr.ToString().c_str(),
            static_cast<unsigned long long>(msg->epoch),
            static_cast<unsigned long long>(address_epoch_));
        return;
      }
    }
    if (!has_address_ || addr != address_) {
      has_address_ = true;
      address_ = addr;
      ++stats_.address_changes;
      controller_->log().Logf(controller_->sim()->now(),
                              "driver: short address %s (epoch %llu)",
                              addr.ToString().c_str(),
                              static_cast<unsigned long long>(msg->epoch));
      if (address_change_handler_) {
        address_change_handler_(addr);
      }
    }
    pending_addr_valid_ = false;
    address_epoch_ = msg->epoch;
    return;
  }
  if (receive_handler_) {
    receive_handler_(std::move(d));
  }
}

bool AutonetDriver::Send(Packet&& packet) {
  if (!has_address_) {
    return false;
  }
  packet.src = address_;
  return controller_->Send(MakePacket(std::move(packet)));
}

void AutonetDriver::ForceFailover() { FailOver("client request"); }

void AutonetDriver::TestActiveLink(TestResult on_result, Tick timeout) {
  StartLoopback(std::move(on_result), timeout, /*restore_port=*/-1);
}

void AutonetDriver::TestAlternateLink(TestResult on_result, Tick timeout) {
  int original = controller_->active_port();
  controller_->SelectPort(1 - original);
  StartLoopback(std::move(on_result), timeout, original);
}

void AutonetDriver::StartLoopback(TestResult on_result, Tick timeout,
                                  int restore_port) {
  if (loopback_expect_ != 0) {
    on_result(false);  // one test at a time
    return;
  }
  ++stats_.loopback_tests;
  loopback_result_ = std::move(on_result);
  loopback_restore_port_ = restore_port;
  loopback_expect_ = ++loopback_token_ + 0x10F0F0F0F0F0F0F0ull;
  Packet p;
  p.dest = kAddrLoopback;
  p.src = has_address_ ? address_ : ShortAddress(0);
  p.type = PacketType::kEthernetEncap;
  for (int i = 0; i < 8; ++i) {
    p.payload.push_back(
        static_cast<std::uint8_t>(loopback_expect_ >> (i * 8)));
  }
  loopback_timer_.Start(timeout);
  if (!controller_->Send(MakePacket(std::move(p)))) {
    FinishLoopback(false);
  }
}

void AutonetDriver::FinishLoopback(bool ok) {
  if (loopback_expect_ == 0) {
    return;
  }
  loopback_timer_.Stop();
  loopback_expect_ = 0;
  if (!ok) {
    ++stats_.loopback_failures;
  }
  if (loopback_restore_port_ >= 0) {
    controller_->SelectPort(loopback_restore_port_);
    loopback_restore_port_ = -1;
  }
  if (loopback_result_) {
    TestResult cb = std::move(loopback_result_);
    loopback_result_ = nullptr;
    cb(ok);
  }
}

void AutonetDriver::FailOver(const char* reason) {
  ++stats_.failovers;
  controller_->log().Logf(controller_->sim()->now(), "driver: failover (%s)",
                          reason);
  controller_->SelectPort(1 - controller_->active_port());
  // "After switching links, the driver forgets its short address and tries
  // to contact the local switch attached to the new link."
  has_address_ = false;
  pending_addr_valid_ = false;
  active_since_ = controller_->sim()->now();
  last_response_ = controller_->sim()->now();  // restart the silence clock
  SendPing();
}

void AutonetDriver::Check() {
  Tick now = controller_->sim()->now();
  Tick silence = now - last_response_;

  // A registered host fails over after ~3 s of switch silence; while
  // unregistered (both links possibly dead) it alternates between its two
  // links every ~10 s until some switch answers.
  bool should_fail = has_address_
                         ? silence >= config_.fail_threshold
                         : now - active_since_ >= config_.alternate_retry;
  if (should_fail) {
    FailOver(has_address_ ? "switch unresponsive" : "alternate retry");
    return;
  }

  // Ping cadence: routine while healthy, vigorous while suspicious.
  bool suspicious = controller_->link_error_on_active() || !has_address_ ||
                    silence >= config_.ping_period;
  Tick period =
      suspicious ? config_.vigorous_ping_period : config_.ping_period;
  if (now - last_ping_ >= period) {
    SendPing();
  }
}

}  // namespace autonet
