#include "src/host/crypto.h"

namespace autonet {

namespace {
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void PacketCipher::Apply(std::uint64_t key, std::uint64_t nonce,
                         std::vector<std::uint8_t>* data) {
  std::uint64_t state = key ^ (nonce * 0xD1B54A32D192ED03ull);
  std::uint64_t block = 0;
  for (std::size_t i = 0; i < data->size(); ++i) {
    if (i % 8 == 0) {
      block = SplitMix64(state);
    }
    (*data)[i] ^= static_cast<std::uint8_t>(block >> ((i % 8) * 8));
  }
}

}  // namespace autonet
