// A host-side client for SRP, the source-routed debugging and monitoring
// protocol (section 6.7).  SRP packets are forwarded hop by hop by switch
// control processors using only the constant one-hop part of forwarding
// tables, so they keep working during reconfiguration — "a powerful tool
// for discovering functional and performance anomalies".
//
// The client issues a request along an explicit route of outbound switch
// ports and synchronously runs the simulation until the reply returns (or
// the deadline passes).  Higher-level helpers fetch a remote switch's
// state, its topology view, or its event-log tail, and CrawlTopology walks
// the whole fabric from the local switch outward.
#ifndef SRC_HOST_SRP_CLIENT_H_
#define SRC_HOST_SRP_CLIENT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/autopilot/messages.h"
#include "src/host/driver.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace autonet {

class SrpClient {
 public:
  // Takes over the driver's receive handler for kSrp packets; every other
  // delivery chains through to whatever handler was installed before the
  // client (so installing an SRP client never silences other traffic).
  explicit SrpClient(AutonetDriver* driver);

  struct SwitchState {
    std::uint64_t epoch = 0;
    SwitchNum switch_num = 0;
    Uid uid;
    bool reconfig_in_progress = false;
    std::vector<std::uint8_t> port_states;  // PortState per port 1..12
  };

  // `route` lists the outbound port to take at each switch, starting from
  // the host's local switch; an empty route addresses the local switch.
  // Each call runs the simulation until the reply arrives.  `body` carries
  // the op's argument (e.g. the GetStats name filter).
  std::optional<SrpMsg> Query(SrpMsg::Op op,
                              const std::vector<std::uint8_t>& route,
                              Tick timeout = 5 * kSecond,
                              std::vector<std::uint8_t> body = {});

  std::optional<SwitchState> GetState(const std::vector<std::uint8_t>& route,
                                      Tick timeout = 5 * kSecond);
  std::optional<NetTopology> GetTopology(
      const std::vector<std::uint8_t>& route, Tick timeout = 5 * kSecond);
  std::optional<std::string> GetLogTail(const std::vector<std::uint8_t>& route,
                                        Tick timeout = 5 * kSecond);
  bool Echo(const std::vector<std::uint8_t>& route,
            Tick timeout = 5 * kSecond);

  // One instrument fetched from a remote switch's registry slice.  Names
  // are switch-local: the serving switch strips its own
  // `switch.<name>.` prefix.  Exactly the fields for the kind are valid.
  struct RemoteStat {
    obs::MetricKind kind = obs::MetricKind::kCounter;
    std::string name;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    std::uint64_t hist_count = 0;
    double hist_min = 0.0;
    double hist_max = 0.0;
    double hist_mean = 0.0;
  };
  // Fetches the remote switch's metrics whose local names contain
  // `filter` (empty fetches everything that fits in one reply packet).
  std::optional<std::vector<RemoteStat>> GetStats(
      const std::vector<std::uint8_t>& route, const std::string& filter = "",
      Tick timeout = 5 * kSecond);

  struct CrawlEntry {
    std::vector<std::uint8_t> route;  // from the local switch
    SwitchState state;
  };
  // Fetches the local topology view, then queries every reachable switch's
  // state along BFS routes.  Returns the entries in BFS order.
  std::vector<CrawlEntry> CrawlTopology(Tick per_query_timeout = 5 * kSecond);

 private:
  void OnDelivery(Delivery d);

  AutonetDriver* driver_;
  Simulator* sim_;
  AutonetDriver::ReceiveHandler chained_;  // handler displaced at install
  std::uint64_t next_id_ = 0;
  std::map<std::uint64_t, SrpMsg> replies_;
};

}  // namespace autonet

#endif  // SRC_HOST_SRP_CLIENT_H_
