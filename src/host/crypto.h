// Host-controller packet encryption (section 3.10): "we have put a
// pipelined encryption chip in the host controller.  This chip can encrypt
// and decrypt packets as they are sent or received with no increase in
// latency."  The packet header carries 26 bytes of encryption information,
// of which we model the key identifier; the key scheme follows the spirit
// of Herbison's master-key design (section 6.8): hosts hold a table of
// keys indexed by key id.
//
// The cipher is a keyed keystream XOR (splitmix64 over key ⊕ packet id) —
// a stand-in for the AMD 8068 DES pipeline with the properties the
// simulation needs: deterministic, self-inverse with the right key, and
// garbage with the wrong one.  It runs at "wire speed" (zero simulated
// cost), matching the no-penalty claim.
#ifndef SRC_HOST_CRYPTO_H_
#define SRC_HOST_CRYPTO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace autonet {

class PacketCipher {
 public:
  // Applies the keystream in place; encryption and decryption are the same
  // operation.  `nonce` must match between the two ends (we use the
  // packet's wire-visible id field).
  static void Apply(std::uint64_t key, std::uint64_t nonce,
                    std::vector<std::uint8_t>* data);
};

// Per-host key table, indexed by the key id carried in the packet header's
// encryption information.
class KeyTable {
 public:
  void Install(std::uint32_t key_id, std::uint64_t key) {
    keys_[key_id] = key;
  }
  void Remove(std::uint32_t key_id) { keys_.erase(key_id); }
  bool Has(std::uint32_t key_id) const { return keys_.count(key_id) > 0; }
  std::uint64_t Get(std::uint32_t key_id) const {
    auto it = keys_.find(key_id);
    return it == keys_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> keys_;
};

}  // namespace autonet

#endif  // SRC_HOST_CRYPTO_H_
