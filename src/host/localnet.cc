#include "src/host/localnet.h"

#include "src/common/serialize.h"

namespace autonet {

namespace {
constexpr Tick kArpFreshness = 2 * kSecond;  // section 6.8.1's two seconds
}  // namespace

std::vector<std::uint8_t> ArpBody::Serialize() const {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(op));
  w.WriteUid(target_uid);
  return w.Take();
}

std::optional<ArpBody> ArpBody::Parse(const std::vector<std::uint8_t>& data) {
  ByteReader r(data);
  ArpBody body;
  body.op = static_cast<Op>(r.U8());
  body.target_uid = r.ReadUid();
  if (!r.ok() || (body.op != Op::kRequest && body.op != Op::kReply)) {
    return std::nullopt;
  }
  return body;
}

LocalNet::LocalNet(Simulator* sim, Uid host_uid, std::string name)
    : sim_(sim), uid_(host_uid), name_(std::move(name)), log_(name_) {
  const std::string prefix = "host." + name_ + ".uidcache.";
  m_cache_hit_ = sim_->metrics().GetCounter(prefix + "hit");
  m_cache_miss_ = sim_->metrics().GetCounter(prefix + "miss");
}

void LocalNet::AttachAutonet(AutonetDriver* driver) {
  driver_ = driver;
  driver_->SetReceiveHandler(
      [this](Delivery d) { OnAutonetDelivery(d); });
  // When this host's short address changes, broadcast an ARP response so
  // other hosts update their caches immediately (section 6.8.1).
  driver_->SetAddressChangeHandler([this](ShortAddress) {
    SendArpReply(uid_, NetworkId::kAutonet);
  });
}

void LocalNet::AttachEthernet(EthernetStation* station) {
  station_ = station;
  station_->SetReceiveHandler(
      [this](const EthernetFrame& frame) { OnEthernetFrame(frame); });
}

void LocalNet::SetEnabled(NetworkId net, bool enabled) {
  enabled_[static_cast<int>(net)] = enabled;
}

bool LocalNet::IsEnabled(NetworkId net) const {
  return enabled_[static_cast<int>(net)];
}

// --- transmission (section 6.8.1's algorithm) ---

bool LocalNet::Send(NetworkId net, Datagram datagram) {
  datagram.src_uid = uid_;
  if (!IsEnabled(net)) {
    return false;
  }
  if (net == NetworkId::kEthernet) {
    if (station_ == nullptr || datagram.encrypted) {
      return false;  // encryption is an Autonet-only capability
    }
    EthernetFrame frame;
    frame.dest_uid = datagram.dest_uid;
    frame.ether_type = datagram.ether_type;
    frame.data = std::move(datagram.data);
    return station_->Send(std::move(frame));
  }

  if (driver_ == nullptr || !driver_->HasAddress()) {
    return false;
  }
  Tick now = sim_->now();
  if (datagram.dest_uid.value() == kEthernetBroadcastUid) {
    ++stats_.sent_broadcast_addr;
    return TransmitOnAutonet(datagram, kAddrBroadcastHosts);
  }

  UidCache::Entry& entry =
      cache_.FindOrCreate(datagram.dest_uid, kAddrBroadcastHosts, now);
  bool fresh = now - entry.updated_at <= kArpFreshness;
  ShortAddress dest = entry.short_address;
  (dest.IsBroadcast() ? m_cache_miss_ : m_cache_hit_)->Increment();

  if (dest.IsBroadcast() &&
      datagram.data.size() > kMaxBridgedData) {
    // Oversize packet with unknown destination: discard it and send an ARP
    // request in its place (section 6.8.1).
    ++stats_.discarded_oversize_unknown;
    SendArpRequest(datagram.dest_uid, kAddrBroadcastHosts);
    return false;
  }

  bool ok = TransmitOnAutonet(datagram, dest);
  if (dest.IsBroadcast()) {
    ++stats_.sent_broadcast_addr;
  } else {
    ++stats_.sent_unicast;
  }
  if (!fresh) {
    // Stale entry: confirm it (usually by directed ARP to the last known
    // address) and fall back to broadcast if no update follows.
    SendArpRequest(datagram.dest_uid, dest);
    ScheduleArpCheck(datagram.dest_uid);
  }
  return ok;
}

bool LocalNet::TransmitOnAutonet(const Datagram& datagram, ShortAddress dest) {
  Packet p;
  p.dest = dest;
  p.type = PacketType::kEthernetEncap;
  p.dest_uid = datagram.dest_uid;
  p.src_uid = uid_;
  p.ether_type = datagram.ether_type;
  p.payload = datagram.data;
  p.encrypted = datagram.encrypted;
  if (datagram.encrypted) {
    // The controller's encryption pipeline: keystream applied at wire
    // speed, no added latency (section 3.10).
    if (!keys_.Has(datagram.key_id)) {
      return false;  // no such key installed
    }
    p.key_id = datagram.key_id;
    p.crypto_iv = next_iv_++;
    PacketCipher::Apply(keys_.Get(p.key_id), p.crypto_iv, &p.payload);
  }
  p.created_at = sim_->now();
  return driver_->Send(std::move(p));
}

void LocalNet::SendArpRequest(Uid target, ShortAddress to) {
  ++stats_.arp_requests;
  Datagram arp;
  arp.dest_uid = Uid(kEthernetBroadcastUid);
  arp.ether_type = kEtherTypeArp;
  arp.data = ArpBody{ArpBody::Op::kRequest, target}.Serialize();
  TransmitOnAutonet(arp, to);
}

void LocalNet::SendArpReply(Uid advertised_uid, NetworkId via) {
  ++stats_.arp_replies;
  if (via == NetworkId::kAutonet && driver_ != nullptr &&
      driver_->HasAddress()) {
    // The reply's Autonet source fields carry the binding: (advertised UID,
    // this controller's short address).  A bridge impersonates hosts on its
    // other network this way (section 6.8.2).
    Packet p;
    p.dest = kAddrBroadcastHosts;
    p.type = PacketType::kEthernetEncap;
    p.dest_uid = Uid(kEthernetBroadcastUid);
    p.src_uid = advertised_uid;
    p.ether_type = kEtherTypeArp;
    p.payload = ArpBody{ArpBody::Op::kReply, advertised_uid}.Serialize();
    driver_->Send(std::move(p));
  }
}

void LocalNet::ScheduleArpCheck(Uid uid) {
  Tick used_at = sim_->now();
  sim_->ScheduleAfter(kArpFreshness, [this, uid, used_at] {
    const UidCache::Entry* entry = cache_.Find(uid);
    if (entry != nullptr && entry->updated_at <= used_at) {
      // No response within two seconds: revert to broadcast, which is
      // equivalent to removing the entry (section 6.8.1).
      cache_.Invalidate(uid, kAddrBroadcastHosts);
    }
  });
}

// --- reception ---

void LocalNet::OnAutonetDelivery(const Delivery& delivery) {
  if (!delivery.intact() ||
      delivery.packet->type != PacketType::kEthernetEncap) {
    return;
  }
  const Packet& p = *delivery.packet;
  if (driver_->HasAddress() && p.src == driver_->short_address()) {
    return;  // our own broadcast came back down the spanning tree
  }
  Tick now = sim_->now();
  // Learn the (source UID -> source short address) correspondence.
  if (!p.src_uid.IsNil() && p.src.IsAssignable()) {
    cache_.Learn(p.src_uid, p.src, NetworkId::kAutonet, now);
  }

  // "If the packet was sent to the broadcast short address, but was
  // addressed to the UID of the receiving host, the sending host no longer
  // knows the receiver's short address": answer immediately.
  if (p.dest.IsBroadcast() && p.dest_uid == uid_) {
    SendArpReply(uid_, NetworkId::kAutonet);
  }

  Datagram datagram;
  datagram.dest_uid = p.dest_uid;
  datagram.src_uid = p.src_uid;
  datagram.ether_type = p.ether_type;
  datagram.data = p.payload;
  datagram.encrypted = p.encrypted;
  datagram.key_id = p.key_id;
  if (p.encrypted) {
    // The receiving controller decides whether it can decrypt the packet.
    if (keys_.Has(p.key_id)) {
      PacketCipher::Apply(keys_.Get(p.key_id), p.crypto_iv, &datagram.data);
    } else {
      ++stats_.undecryptable;  // delivered as ciphertext; clients reject it
    }
  }

  if (p.ether_type == kEtherTypeArp) {
    HandleArp(NetworkId::kAutonet, datagram);
    return;
  }

  bool for_me = p.dest_uid == uid_ ||
                p.dest_uid.value() == kEthernetBroadcastUid;
  if (for_me) {
    ++stats_.received;
    if (handler_) {
      handler_(NetworkId::kAutonet, datagram);
    }
  }
  if (forwarding_ && p.dest_uid != uid_) {
    // Broadcasts cross the bridge; so do packets sent to the bridge's
    // short address on behalf of a host on the other network.
    const UidCache::Entry* entry = cache_.Find(p.dest_uid);
    bool other_side = entry == nullptr ||
                      entry->location == NetworkId::kEthernet ||
                      p.dest_uid.value() == kEthernetBroadcastUid;
    if (other_side) {
      BridgeToEthernet(datagram, p.encrypted);
    }
  }
}

void LocalNet::OnEthernetFrame(const EthernetFrame& frame) {
  Tick now = sim_->now();
  if (!frame.src_uid.IsNil()) {
    // Ethernet-side hosts are located by observing their client packets.
    cache_.Learn(frame.src_uid, kAddrBroadcastHosts, NetworkId::kEthernet,
                 now);
  }
  Datagram datagram;
  datagram.dest_uid = frame.dest_uid;
  datagram.src_uid = frame.src_uid;
  datagram.ether_type = frame.ether_type;
  datagram.data = frame.data;

  if (frame.ether_type == kEtherTypeArp) {
    HandleArp(NetworkId::kEthernet, datagram);
    return;
  }
  bool for_me =
      frame.dest_uid == uid_ || frame.IsBroadcast();
  if (for_me) {
    ++stats_.received;
    if (handler_) {
      handler_(NetworkId::kEthernet, datagram);
    }
  }
  if (forwarding_ && frame.dest_uid != uid_) {
    const UidCache::Entry* entry = cache_.Find(frame.dest_uid);
    bool other_side = entry == nullptr ||
                      entry->location == NetworkId::kAutonet ||
                      frame.IsBroadcast();
    if (other_side) {
      BridgeToAutonet(datagram);
    }
  }
}

void LocalNet::HandleArp(NetworkId net, const Datagram& datagram) {
  auto body = ArpBody::Parse(datagram.data);
  if (!body.has_value()) {
    return;
  }
  if (body->op == ArpBody::Op::kRequest) {
    if (body->target_uid == uid_) {
      SendArpReply(uid_, net);
      return;
    }
    if (forwarding_ && net == NetworkId::kAutonet) {
      // Proxy-answer for hosts known to live on the Ethernet; ARP requests
      // themselves are never forwarded to the Ethernet (section 6.8.2).
      const UidCache::Entry* entry = cache_.Find(body->target_uid);
      if (entry != nullptr && entry->location == NetworkId::kEthernet) {
        SendArpReply(body->target_uid, NetworkId::kAutonet);
      }
    }
  }
  // Replies carry their information in the source fields, already learned.
}

// --- bridging (section 6.8.2) ---

void LocalNet::StartForwarding() { StartForwarding(BridgeConfig()); }

void LocalNet::StartForwarding(BridgeConfig config) {
  forwarding_ = true;
  bridge_config_ = config;
  if (station_ != nullptr) {
    station_->SetPromiscuous(true);
  }
}

void LocalNet::RunOnBridgeCpu(NetworkId direction, Tick cost,
                              std::function<void()> fn) {
  Tick& busy = bridge_busy_until_[static_cast<int>(direction)];
  Tick start = std::max(sim_->now(), busy);
  busy = start + cost;
  sim_->ScheduleAt(busy, std::move(fn));
}

void LocalNet::BridgeToEthernet(const Datagram& datagram, bool encrypted) {
  if (encrypted || datagram.data.size() > kMaxBridgedData) {
    ++stats_.forward_refused;
    return;
  }
  if (station_ == nullptr) {
    return;
  }
  Tick cost = bridge_config_.cpu_per_packet +
              bridge_config_.bus_per_byte *
                  static_cast<Tick>(datagram.data.size());
  RunOnBridgeCpu(NetworkId::kEthernet, cost, [this, datagram] {
    ++stats_.forwarded_to_ethernet;
    EthernetFrame frame;
    frame.dest_uid = datagram.dest_uid;
    frame.src_uid = datagram.src_uid;  // preserved: bridges are transparent
    frame.ether_type = datagram.ether_type;
    frame.data = datagram.data;
    station_->SendPreservingSource(std::move(frame));
  });
}

void LocalNet::BridgeToAutonet(const Datagram& datagram) {
  if (driver_ == nullptr || !driver_->HasAddress() ||
      datagram.data.size() > kMaxBridgedData) {
    ++stats_.forward_refused;
    return;
  }
  Tick cost = bridge_config_.cpu_per_packet +
              bridge_config_.bus_per_byte *
                  static_cast<Tick>(datagram.data.size());
  RunOnBridgeCpu(NetworkId::kAutonet, cost, [this, datagram] {
    const UidCache::Entry* entry = cache_.Find(datagram.dest_uid);
    ShortAddress dest = kAddrBroadcastHosts;
    if (datagram.dest_uid.value() != kEthernetBroadcastUid &&
        entry != nullptr && entry->location == NetworkId::kAutonet) {
      dest = entry->short_address;
    }
    ++stats_.forwarded_to_autonet;
    Packet p;
    p.dest = dest;
    p.type = PacketType::kEthernetEncap;
    p.dest_uid = datagram.dest_uid;
    p.src_uid = datagram.src_uid;  // preserved across the bridge
    p.ether_type = datagram.ether_type;
    p.payload = datagram.data;
    p.from_ethernet = true;  // marks "no encryption / no long packets"
    p.created_at = sim_->now();
    driver_->Send(std::move(p));
  });
}

}  // namespace autonet
