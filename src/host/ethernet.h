// A minimal Ethernet substrate (the network Autonet replaced and bridges
// to, sections 5.5, 6.8.2): a 10 Mbit/s shared broadcast segment.  Every
// frame is serialized onto the single medium (aggregate bandwidth == link
// bandwidth — the limitation motivating Autonet) and heard by every
// station; stations filter by destination UID, except promiscuous ones
// (bridges observe all traffic to learn host locations).
#ifndef SRC_HOST_ETHERNET_H_
#define SRC_HOST_ETHERNET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace autonet {

// The broadcast destination UID (all-ones 48-bit address).
inline constexpr std::uint64_t kEthernetBroadcastUid = Uid::kMask;

struct EthernetFrame {
  Uid dest_uid;
  Uid src_uid;
  std::uint16_t ether_type = 0;
  std::vector<std::uint8_t> data;  // up to 1500 bytes

  bool IsBroadcast() const { return dest_uid.value() == kEthernetBroadcastUid; }
  std::size_t WireSize() const { return 14 + data.size() + 4; }  // hdr + FCS
};

class EthernetStation;

class EthernetSegment {
 public:
  explicit EthernetSegment(Simulator* sim, double mbps = 10.0);

  Simulator* sim() { return sim_; }

  // Queues a frame for transmission; the segment serializes access (an
  // idealized CSMA/CD without collision loss).  The sending station does
  // not hear its own transmission.
  void Transmit(const EthernetStation* sender, EthernetFrame frame);

  std::uint64_t frames_carried() const { return frames_carried_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  friend class EthernetStation;
  void AttachStation(EthernetStation* station) {
    stations_.push_back(station);
  }
  void DetachStation(EthernetStation* station);
  void StartNext();

  struct Pending {
    const EthernetStation* sender;
    EthernetFrame frame;
  };

  Simulator* sim_;
  double mbps_;
  std::vector<EthernetStation*> stations_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  std::uint64_t frames_carried_ = 0;
};

class EthernetStation {
 public:
  using ReceiveHandler = std::function<void(const EthernetFrame&)>;

  EthernetStation(EthernetSegment* segment, Uid uid, std::string name);
  ~EthernetStation();

  EthernetStation(const EthernetStation&) = delete;
  EthernetStation& operator=(const EthernetStation&) = delete;

  Uid uid() const { return uid_; }
  const std::string& name() const { return name_; }

  // Sends a frame, stamping this station's UID as the source.
  bool Send(EthernetFrame frame);
  // Sends a frame with its source fields untouched (transparent bridging).
  bool SendPreservingSource(EthernetFrame frame);

  // Frames addressed to this station's UID or to broadcast; a promiscuous
  // station (a bridge) receives everything.
  void SetReceiveHandler(ReceiveHandler handler) {
    handler_ = std::move(handler);
  }
  void SetPromiscuous(bool promiscuous) { promiscuous_ = promiscuous; }

  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }

 private:
  friend class EthernetSegment;
  void Deliver(const EthernetFrame& frame);

  EthernetSegment* segment_;
  Uid uid_;
  std::string name_;
  bool promiscuous_ = false;
  ReceiveHandler handler_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace autonet

#endif  // SRC_HOST_ETHERNET_H_
