// Up*/down* route computation (sections 4.2, 6.6.4).  The spanning tree
// assigns each usable link a direction — the "up" end is closer to the root
// (smaller UID on level ties) — and a legal route traverses zero or more
// links up, then zero or more links down.  Because the directed links are
// loop-free, routes restricted this way cannot create a cyclic buffer
// dependency, so the flow-controlled fabric cannot deadlock; and because
// the tree spans all switches, every destination stays reachable.
//
// Autopilot fills forwarding tables with the *minimum-hop* legal routes
// (the paper notes longer legal routes are permissible but unused).  For a
// packet in the "up" phase the minimal continuation may go up or turn down;
// once it has gone down it may only continue down.  Arrival port encodes
// the phase: that is why tables are indexed by (inport, address), and why a
// corrupted address can be caught locally — an entry that would continue up
// after a down arrival is left as a discard.
#ifndef SRC_ROUTING_UPDOWN_H_
#define SRC_ROUTING_UPDOWN_H_

#include <vector>

#include "src/fabric/forwarding_table.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/topology.h"

namespace autonet {

inline constexpr int kUnreachable = 1 << 28;

// Minimal legal-route distances from every switch to `dest`:
//   down[s]: fewest hops from s to dest using only down links;
//   free[s]: fewest hops from s to dest via any legal (up* then down*) route.
struct UpDownDistances {
  std::vector<int> down;
  std::vector<int> free;
};

UpDownDistances ComputeDistances(const NetTopology& topology,
                                 const SpanningTree& tree, int dest);

// Builds the forwarding table switch `self` loads in reconfiguration step 5.
// Requires assigned_num to be filled in (AssignSwitchNumbers).  The table
// contains:
//   * the constant one-hop part;
//   * minimum-hop up*/down* routes to every addressable (switch, port);
//   * broadcast entries: up the spanning tree to the root, flood down
//     (section 6.6.6), with local delivery to host ports and/or the control
//     processor according to the broadcast address;
//   * loopback (0x7FC) entries reflecting packets out their arrival port.
ForwardingTable BuildForwardingTable(const NetTopology& topology,
                                     const SpanningTree& tree, int self);

std::vector<ForwardingTable> BuildAllForwardingTables(
    const NetTopology& topology, const SpanningTree& tree);

}  // namespace autonet

#endif  // SRC_ROUTING_UPDOWN_H_
