#include "src/routing/topology.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <set>

namespace autonet {

int NetTopology::IndexOf(Uid uid) const {
  for (int i = 0; i < size(); ++i) {
    if (switches[i].uid == uid) {
      return i;
    }
  }
  return -1;
}

int NetTopology::RootIndex() const {
  int best = -1;
  for (int i = 0; i < size(); ++i) {
    if (best < 0 || switches[i].uid < switches[best].uid) {
      best = i;
    }
  }
  return best;
}

std::string NetTopology::Validate() const {
  char buf[160];
  for (int i = 0; i < size(); ++i) {
    const SwitchDescriptor& sw = switches[i];
    std::set<PortNum> used;
    for (const TopoLink& link : sw.links) {
      if (link.local_port < kFirstExternalPort ||
          link.local_port >= kPortsPerSwitch || link.remote_switch < 0 ||
          link.remote_switch >= size() || link.remote_port < kFirstExternalPort ||
          link.remote_port >= kPortsPerSwitch) {
        std::snprintf(buf, sizeof(buf), "switch %d: link out of range", i);
        return buf;
      }
      if (!used.insert(link.local_port).second) {
        std::snprintf(buf, sizeof(buf), "switch %d: port %d cabled twice", i,
                      link.local_port);
        return buf;
      }
      if (sw.host_ports.Test(link.local_port)) {
        std::snprintf(buf, sizeof(buf),
                      "switch %d: port %d is both host and switch link", i,
                      link.local_port);
        return buf;
      }
      // Symmetric counterpart must exist.
      const SwitchDescriptor& remote = switches[link.remote_switch];
      bool found = std::any_of(
          remote.links.begin(), remote.links.end(), [&](const TopoLink& r) {
            return r.local_port == link.remote_port &&
                   r.remote_switch == i && r.remote_port == link.local_port;
          });
      if (!found) {
        std::snprintf(buf, sizeof(buf),
                      "switch %d port %d: no symmetric link at switch %d", i,
                      link.local_port, link.remote_switch);
        return buf;
      }
    }
  }
  std::set<std::uint64_t> uids;
  for (const SwitchDescriptor& sw : switches) {
    if (!uids.insert(sw.uid.value()).second) {
      return "duplicate switch UID";
    }
  }
  return "";
}

void NetTopology::SymmetrizeLinks() {
  for (int i = 0; i < size(); ++i) {
    auto& links = switches[i].links;
    links.erase(
        std::remove_if(
            links.begin(), links.end(),
            [&](const TopoLink& link) {
              if (link.remote_switch < 0 || link.remote_switch >= size()) {
                return true;
              }
              const auto& remote = switches[link.remote_switch].links;
              return !std::any_of(remote.begin(), remote.end(),
                                  [&](const TopoLink& r) {
                                    return r.local_port == link.remote_port &&
                                           r.remote_switch == i &&
                                           r.remote_port == link.local_port;
                                  });
            }),
        links.end());
  }
}

std::string NetTopology::ToString() const {
  std::string out;
  char buf[160];
  for (int i = 0; i < size(); ++i) {
    const SwitchDescriptor& sw = switches[i];
    std::snprintf(buf, sizeof(buf), "[%d] %s num=%u hosts=%s links:", i,
                  sw.uid.ToString().c_str(), sw.assigned_num,
                  sw.host_ports.ToString().c_str());
    out += buf;
    for (const TopoLink& link : sw.links) {
      std::snprintf(buf, sizeof(buf), " %d->(%d.%d)", link.local_port,
                    link.remote_switch, link.remote_port);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void AssignSwitchNumbers(NetTopology* topology) {
  auto& switches = topology->switches;
  const int n = static_cast<int>(switches.size());

  // Visit switches in UID order so the smallest UID wins each conflict.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return switches[a].uid < switches[b].uid;
  });

  std::set<SwitchNum> taken;
  std::vector<int> losers;
  for (int idx : order) {
    SwitchNum want = switches[idx].proposed_num;
    if (want >= kFirstSwitchNum && want <= kMaxSwitchNum &&
        taken.insert(want).second) {
      switches[idx].assigned_num = want;
    } else {
      losers.push_back(idx);
    }
  }
  SwitchNum next = kFirstSwitchNum;
  for (int idx : losers) {
    while (taken.count(next) > 0) {
      ++next;
    }
    switches[idx].assigned_num = next;
    taken.insert(next);
  }
}

}  // namespace autonet
