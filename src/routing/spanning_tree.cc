#include "src/routing/spanning_tree.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace autonet {

SpanningTree ComputeSpanningTree(const NetTopology& topology) {
  const int n = topology.size();
  SpanningTree tree;
  tree.parent.assign(n, -1);
  tree.parent_port.assign(n, -1);
  tree.level.assign(n, std::numeric_limits<int>::max());
  if (n == 0) {
    return tree;
  }
  tree.root = topology.RootIndex();
  tree.level[tree.root] = 0;

  // BFS for levels.
  std::deque<int> queue{tree.root};
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (const TopoLink& link : topology.switches[node].links) {
      if (tree.level[link.remote_switch] > tree.level[node] + 1) {
        tree.level[link.remote_switch] = tree.level[node] + 1;
        queue.push_back(link.remote_switch);
      }
    }
  }

  // Parent selection: smallest-UID neighbor one level up, lowest port.
  for (int node = 0; node < n; ++node) {
    if (node == tree.root ||
        tree.level[node] == std::numeric_limits<int>::max()) {
      continue;
    }
    int best_parent = -1;
    PortNum best_port = -1;
    for (const TopoLink& link : topology.switches[node].links) {
      int neighbor = link.remote_switch;
      if (tree.level[neighbor] != tree.level[node] - 1) {
        continue;
      }
      Uid neighbor_uid = topology.switches[neighbor].uid;
      bool better = false;
      if (best_parent < 0) {
        better = true;
      } else if (neighbor_uid < topology.switches[best_parent].uid) {
        better = true;
      } else if (neighbor == best_parent && link.local_port < best_port) {
        better = true;
      }
      if (better) {
        best_parent = neighbor;
        best_port = link.local_port;
      }
    }
    tree.parent[node] = best_parent;
    tree.parent_port[node] = best_port;
  }
  return tree;
}

PortVector SpanningTree::ChildPorts(const NetTopology& topology,
                                    int node) const {
  PortVector ports;
  for (const TopoLink& link : topology.switches[node].links) {
    int neighbor = link.remote_switch;
    if (parent[neighbor] == node && parent_port[neighbor] == link.remote_port) {
      ports.Set(link.local_port);
    }
  }
  return ports;
}

bool SpanningTree::IsTreeLink(const NetTopology& topology, int node,
                              const TopoLink& link) const {
  (void)topology;
  int neighbor = link.remote_switch;
  if (parent[node] == neighbor && parent_port[node] == link.local_port) {
    return true;
  }
  if (parent[neighbor] == node && parent_port[neighbor] == link.remote_port) {
    return true;
  }
  return false;
}

int SpanningTree::Depth() const {
  int depth = 0;
  for (int l : level) {
    if (l != std::numeric_limits<int>::max()) {
      depth = std::max(depth, l);
    }
  }
  return depth;
}

bool TraversesUp(const NetTopology& topology, const SpanningTree& tree,
                 int from, int to) {
  if (tree.level[from] != tree.level[to]) {
    return tree.level[to] < tree.level[from];
  }
  return topology.switches[to].uid < topology.switches[from].uid;
}

}  // namespace autonet
