#include "src/routing/updown.h"

#include <cassert>
#include <deque>

namespace autonet {

UpDownDistances ComputeDistances(const NetTopology& topology,
                                 const SpanningTree& tree, int dest) {
  const int n = topology.size();
  UpDownDistances dist;
  dist.down.assign(n, kUnreachable);
  dist.free.assign(n, kUnreachable);
  dist.down[dest] = 0;
  dist.free[dest] = 0;

  // BFS on the reversed layered graph {(s, down), (s, free)}.  Reversed
  // edges: a down link s->t yields (t,down)->(s,down) and (t,down)->(s,free);
  // an up link s->t yields (t,free)->(s,free).
  struct Node {
    int sw;
    bool free_phase;
  };
  std::deque<Node> queue{{dest, false}, {dest, true}};
  while (!queue.empty()) {
    Node node = queue.front();
    queue.pop_front();
    int t = node.sw;
    int d = node.free_phase ? dist.free[t] : dist.down[t];
    // Find predecessors s with an edge into (t, phase).
    for (const TopoLink& link : topology.switches[t].links) {
      int s = link.remote_switch;  // links are symmetric: s has a link to t
      bool s_to_t_up = TraversesUp(topology, tree, s, t);
      if (!node.free_phase) {
        // (t,down) reached by down links s->t.
        if (!s_to_t_up) {
          if (dist.down[s] > d + 1) {
            dist.down[s] = d + 1;
            queue.push_back({s, false});
          }
          if (dist.free[s] > d + 1) {
            dist.free[s] = d + 1;
            queue.push_back({s, true});
          }
        }
      } else {
        // (t,free) reached by up links s->t.
        if (s_to_t_up && dist.free[s] > d + 1) {
          dist.free[s] = d + 1;
          queue.push_back({s, true});
        }
      }
    }
  }
  return dist;
}

namespace {

// Ports of `self` on a minimal legal continuation toward the destination,
// for a packet in the given phase (free = may still go up).
PortVector NextHops(const NetTopology& topology, const SpanningTree& tree,
                    int self, const UpDownDistances& dist, bool free_phase) {
  PortVector ports;
  int have = free_phase ? dist.free[self] : dist.down[self];
  if (have >= kUnreachable || have == 0) {
    return ports;
  }
  for (const TopoLink& link : topology.switches[self].links) {
    int t = link.remote_switch;
    bool up = TraversesUp(topology, tree, self, t);
    if (free_phase) {
      int via = up ? dist.free[t] : dist.down[t];
      if (via + 1 == have) {
        ports.Set(link.local_port);
      }
    } else {
      if (!up && dist.down[t] + 1 == have) {
        ports.Set(link.local_port);
      }
    }
  }
  return ports;
}

}  // namespace

ForwardingTable BuildForwardingTable(const NetTopology& topology,
                                     const SpanningTree& tree, int self) {
  const SwitchDescriptor& me = topology.switches[self];
  assert(me.assigned_num != 0 && "switch numbers must be assigned first");

  ForwardingTable table;
  table.AddOneHopEntries();

  // Which inports exist, and what phase does a packet arriving there have?
  // origin (CP or host) and up arrivals leave the packet free to go up;
  // down arrivals lock it into the down phase.
  PortVector origin_inports = me.host_ports;
  origin_inports.Set(kCpPort);
  struct SwitchInport {
    PortNum port;
    bool arrives_free;  // true unless the packet came *down* into us
  };
  std::vector<SwitchInport> switch_inports;
  for (const TopoLink& link : me.links) {
    bool remote_to_me_up = TraversesUp(topology, tree, link.remote_switch, self);
    switch_inports.push_back({link.local_port, remote_to_me_up});
  }

  // --- unicast routes to every addressable (switch, port) ---
  // Remote switches route *all 16 port values* of a switch number toward
  // that switch; whether the address is in use is decided at the owning
  // switch ("if the address is not in use, then the forwarding tables will
  // at some point cause the packet to be discarded", section 6.3).  This is
  // what lets a newly attached host become reachable with only a local
  // table patch at its own switch — host-port changes do not trigger
  // network-wide reconfigurations (Figure 8).
  for (int d = 0; d < topology.size(); ++d) {
    const SwitchDescriptor& dest_sw = topology.switches[d];

    UpDownDistances dist;
    PortVector via_free;
    PortVector via_down;
    if (d != self) {
      dist = ComputeDistances(topology, tree, d);
      via_free = NextHops(topology, tree, self, dist, /*free_phase=*/true);
      via_down = NextHops(topology, tree, self, dist, /*free_phase=*/false);
    }

    for (PortNum q = 0; q < 16; ++q) {
      ShortAddress addr = ShortAddress::FromSwitchPort(dest_sw.assigned_num, q);
      if (!addr.IsAssignable()) {
        continue;  // e.g. switch number 0 port values below 0x010
      }
      if (d == self) {
        // Deliver out port q if it is the control processor or a host port;
        // an unused port value means the address is not in use: discard.
        if (q == kCpPort || me.host_ports.Test(q)) {
          table.SetForAllInports(addr,
                                 ForwardingTable::Entry::Alternatives(
                                     PortVector::Single(q)));
        }
        continue;
      }
      if (!via_free.empty()) {
        origin_inports.ForEach([&](PortNum p) {
          table.Set(p, addr, ForwardingTable::Entry::Alternatives(via_free));
        });
      }
      for (const SwitchInport& in : switch_inports) {
        PortVector via = in.arrives_free ? via_free : via_down;
        if (!via.empty()) {
          table.Set(in.port, addr,
                    ForwardingTable::Entry::Alternatives(via));
        }
      }
    }
  }

  // --- broadcast entries (section 6.6.6) ---
  PortVector tree_children = tree.ChildPorts(topology, self);
  bool is_root = tree.root == self;
  struct BroadcastKind {
    ShortAddress addr;
    bool to_hosts;
    bool to_cp;
  };
  const BroadcastKind kinds[] = {
      {kAddrBroadcastAll, true, true},
      {kAddrBroadcastSwitches, false, true},
      {kAddrBroadcastHosts, true, false},
  };
  for (const BroadcastKind& kind : kinds) {
    PortVector flood = tree_children;
    if (kind.to_hosts) {
      flood |= me.host_ports;
    }
    if (kind.to_cp) {
      flood.Set(kCpPort);
    }
    // Up phase: origin ports and tree-child arrivals forward toward the
    // root; at the root the up phase ends and the flood begins.
    PortVector up_inports = origin_inports | tree_children;
    up_inports.ForEach([&](PortNum p) {
      if (is_root) {
        table.Set(p, kind.addr, ForwardingTable::Entry::Broadcast(flood));
      } else {
        table.Set(p, kind.addr,
                  ForwardingTable::Entry::Alternatives(
                      PortVector::Single(tree.parent_port[self])));
      }
    });
    // Down phase: arrival from the parent floods to children and local
    // destinations.  (The root has no parent; non-tree cross links never
    // legally carry broadcasts, so their entries stay discard.)
    if (!is_root) {
      table.Set(tree.parent_port[self], kind.addr,
                ForwardingTable::Entry::Broadcast(flood));
    }
  }

  // --- loopback (0x7FC): reflect out the arrival port ---
  for (PortNum p = 0; p < kPortsPerSwitch; ++p) {
    table.Set(p, kAddrLoopback,
              ForwardingTable::Entry::Alternatives(PortVector::Single(p)));
  }

  return table;
}

std::vector<ForwardingTable> BuildAllForwardingTables(
    const NetTopology& topology, const SpanningTree& tree) {
  std::vector<ForwardingTable> tables;
  tables.reserve(topology.switches.size());
  for (int i = 0; i < topology.size(); ++i) {
    tables.push_back(BuildForwardingTable(topology, tree, i));
  }
  return tables;
}

}  // namespace autonet
