// Offline verification of a set of forwarding tables:
//
//   * VerifyRoutes: follows every alternative of every (origin switch,
//     destination address) pair through the tables, checking delivery to the
//     right port, loop-freedom, and hop bounds — and that broadcast floods
//     reach every host and control processor exactly once.
//
//   * CheckChannelDependencies: builds the channel dependency graph (one
//     node per directed switch-to-switch channel; an edge whenever some
//     table entry forwards from one channel into another) and checks it is
//     acyclic.  With limited FIFO buffering and no packet discard, a cyclic
//     dependency is exactly the condition under which the fabric can
//     deadlock; up*/down* tables must always pass, arbitrary shortest-path
//     tables generally do not (bench E8).
//
//   * ChannelCoverage: the fraction of channels used by at least one
//     minimum-hop route — the paper's "all links can carry packets" claim,
//     modulo the minimal-hop restriction.
#ifndef SRC_ROUTING_VERIFY_H_
#define SRC_ROUTING_VERIFY_H_

#include <string>
#include <vector>

#include "src/fabric/forwarding_table.h"
#include "src/routing/spanning_tree.h"
#include "src/routing/topology.h"

namespace autonet {

struct VerifyResult {
  bool ok = true;
  std::string error;

  static VerifyResult Fail(std::string why) { return {false, std::move(why)}; }
};

VerifyResult VerifyRoutes(const NetTopology& topology,
                          const std::vector<ForwardingTable>& tables);

struct ChannelId {
  int sw = -1;        // switch the channel leaves
  PortNum port = -1;  // its local port

  bool operator==(const ChannelId&) const = default;
};

struct DependencyCheck {
  bool acyclic = true;
  int channels = 0;
  int edges = 0;
  std::vector<ChannelId> cycle;  // a witness cycle when !acyclic
};

DependencyCheck CheckChannelDependencies(
    const NetTopology& topology, const std::vector<ForwardingTable>& tables);

struct CoverageResult {
  int used = 0;
  int total = 0;
  double Fraction() const { return total == 0 ? 1.0 : double(used) / total; }
};

CoverageResult ChannelCoverage(const NetTopology& topology,
                               const std::vector<ForwardingTable>& tables);

// Baseline for E8: plain minimum-hop routing that ignores link directions.
// Deadlock-prone; used to show what up*/down* buys.
std::vector<ForwardingTable> BuildShortestPathTables(
    const NetTopology& topology);

}  // namespace autonet

#endif  // SRC_ROUTING_VERIFY_H_
