#include "src/routing/verify.h"

#include "src/routing/updown.h"

#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <set>

namespace autonet {
namespace {

std::string Describe(const NetTopology& topology, int sw) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "switch %d (%s)", sw,
                topology.switches[sw].uid.ToString().c_str());
  return buf;
}

// Finds the link of `sw` using `port`, or nullptr (host/CP port).
const TopoLink* LinkAt(const NetTopology& topology, int sw, PortNum port) {
  for (const TopoLink& link : topology.switches[sw].links) {
    if (link.local_port == port) {
      return &link;
    }
  }
  return nullptr;
}

// All (address, switch, port) destinations of a topology.
struct Destination {
  ShortAddress addr;
  int sw;
  PortNum port;
};

std::vector<Destination> AllDestinations(const NetTopology& topology) {
  std::vector<Destination> out;
  for (int d = 0; d < topology.size(); ++d) {
    PortVector ports = topology.switches[d].host_ports;
    ports.Set(kCpPort);
    ports.ForEach([&](PortNum q) {
      out.push_back({ShortAddress::FromSwitchPort(
                         topology.switches[d].assigned_num, q),
                     d, q});
    });
  }
  return out;
}

// DFS over (switch, inport) states following every table alternative.
VerifyResult WalkUnicast(const NetTopology& topology,
                         const std::vector<ForwardingTable>& tables,
                         int origin, const Destination& dest) {
  char buf[192];
  const int hop_limit = 4 * topology.size() + 8;
  std::set<std::pair<int, PortNum>> visiting;  // on current DFS path

  std::function<VerifyResult(int, PortNum, int)> walk =
      [&](int sw, PortNum inport, int hops) -> VerifyResult {
    if (hops > hop_limit) {
      return VerifyResult::Fail("hop limit exceeded from " +
                                Describe(topology, origin) + " to " +
                                dest.addr.ToString());
    }
    auto state = std::make_pair(sw, inport);
    if (!visiting.insert(state).second) {
      return VerifyResult::Fail("routing loop at " + Describe(topology, sw) +
                                " for " + dest.addr.ToString());
    }
    ForwardingTable::Entry entry = tables[sw].Lookup(inport, dest.addr);
    VerifyResult result;
    if (entry.IsDiscard()) {
      result = VerifyResult::Fail("packet to " + dest.addr.ToString() +
                                  " discarded at " + Describe(topology, sw) +
                                  " inport " + std::to_string(inport));
    } else if (entry.broadcast) {
      result = VerifyResult::Fail("unexpected broadcast entry for " +
                                  dest.addr.ToString());
    } else {
      bool checked_any = false;
      entry.ports.ForEach([&](PortNum out) {
        if (!result.ok) {
          return;
        }
        checked_any = true;
        if (const TopoLink* link = LinkAt(topology, sw, out)) {
          VerifyResult sub =
              walk(link->remote_switch, link->remote_port, hops + 1);
          if (!sub.ok) {
            result = sub;
          }
        } else {
          // Delivery off the fabric: must be the right switch and port.
          if (sw != dest.sw || out != dest.port) {
            std::snprintf(buf, sizeof(buf),
                          "misdelivery of %s: exits %s port %d",
                          dest.addr.ToString().c_str(),
                          Describe(topology, sw).c_str(), out);
            result = VerifyResult::Fail(buf);
          }
        }
      });
      if (result.ok && !checked_any) {
        result = VerifyResult::Fail("empty alternative set");
      }
    }
    visiting.erase(state);
    return result;
  };

  return walk(origin, kCpPort, 0);
}

VerifyResult WalkBroadcast(const NetTopology& topology,
                           const SpanningTree& tree,
                           const std::vector<ForwardingTable>& tables,
                           int origin, ShortAddress addr, bool expect_hosts,
                           bool expect_cps) {
  (void)tree;
  // Flood traversal; every channel may be crossed at most once.
  std::set<std::pair<int, PortNum>> crossed;  // (switch, outport)
  std::map<std::pair<int, PortNum>, int> delivered;
  const int limit = 16 * topology.size() + 64;
  int steps = 0;

  std::deque<std::pair<int, PortNum>> frontier{{origin, kCpPort}};
  while (!frontier.empty()) {
    if (++steps > limit) {
      return VerifyResult::Fail("broadcast flood does not terminate");
    }
    auto [sw, inport] = frontier.front();
    frontier.pop_front();
    ForwardingTable::Entry entry = tables[sw].Lookup(inport, addr);
    if (entry.IsDiscard()) {
      continue;
    }
    VerifyResult result;
    entry.ports.ForEach([&](PortNum out) {
      if (!result.ok) {
        return;
      }
      if (const TopoLink* link = LinkAt(topology, sw, out)) {
        if (!crossed.insert({sw, out}).second) {
          result = VerifyResult::Fail("broadcast crosses a channel twice at " +
                                      Describe(topology, sw));
          return;
        }
        frontier.push_back({link->remote_switch, link->remote_port});
      } else {
        ++delivered[{sw, out}];
      }
    });
    if (!result.ok) {
      return result;
    }
  }

  // Every expected destination exactly once.
  for (int d = 0; d < topology.size(); ++d) {
    PortVector expect;
    if (expect_hosts) {
      expect |= topology.switches[d].host_ports;
    }
    if (expect_cps) {
      expect.Set(kCpPort);
    }
    VerifyResult result;
    expect.ForEach([&](PortNum q) {
      if (!result.ok) {
        return;
      }
      auto it = delivered.find({d, q});
      int copies = it == delivered.end() ? 0 : it->second;
      if (copies != 1) {
        result = VerifyResult::Fail(
            "broadcast " + addr.ToString() + " delivered " +
            std::to_string(copies) + " copies to " + Describe(topology, d) +
            " port " + std::to_string(q));
      }
    });
    if (!result.ok) {
      return result;
    }
  }
  return {};
}

}  // namespace

VerifyResult VerifyRoutes(const NetTopology& topology,
                          const std::vector<ForwardingTable>& tables) {
  std::vector<Destination> dests = AllDestinations(topology);
  for (int origin = 0; origin < topology.size(); ++origin) {
    for (const Destination& dest : dests) {
      VerifyResult r = WalkUnicast(topology, tables, origin, dest);
      if (!r.ok) {
        return r;
      }
    }
  }
  SpanningTree tree = ComputeSpanningTree(topology);
  for (int origin = 0; origin < topology.size(); ++origin) {
    VerifyResult r;
    r = WalkBroadcast(topology, tree, tables, origin, kAddrBroadcastAll, true,
                      true);
    if (!r.ok) {
      return r;
    }
    r = WalkBroadcast(topology, tree, tables, origin, kAddrBroadcastSwitches,
                      false, true);
    if (!r.ok) {
      return r;
    }
    r = WalkBroadcast(topology, tree, tables, origin, kAddrBroadcastHosts,
                      true, false);
    if (!r.ok) {
      return r;
    }
  }
  return {};
}

DependencyCheck CheckChannelDependencies(
    const NetTopology& topology, const std::vector<ForwardingTable>& tables) {
  // Enumerate channels.
  std::map<std::pair<int, PortNum>, int> channel_index;
  std::vector<ChannelId> channels;
  for (int sw = 0; sw < topology.size(); ++sw) {
    for (const TopoLink& link : topology.switches[sw].links) {
      channel_index[{sw, link.local_port}] =
          static_cast<int>(channels.size());
      channels.push_back({sw, link.local_port});
    }
  }

  // Addresses that can appear in packets.
  std::vector<ShortAddress> addrs;
  for (const SwitchDescriptor& sw : topology.switches) {
    PortVector ports = sw.host_ports;
    ports.Set(kCpPort);
    ports.ForEach([&](PortNum q) {
      addrs.push_back(ShortAddress::FromSwitchPort(sw.assigned_num, q));
    });
  }
  addrs.push_back(kAddrBroadcastAll);
  addrs.push_back(kAddrBroadcastSwitches);
  addrs.push_back(kAddrBroadcastHosts);

  // Dependency edges: channel (n -> m) feeds channel (m -> k) whenever the
  // table at m forwards some address from the arrival port of the first
  // channel out the port of the second.
  std::vector<std::set<int>> out_edges(channels.size());
  int edge_count = 0;
  for (int n = 0; n < topology.size(); ++n) {
    for (const TopoLink& link : topology.switches[n].links) {
      int m = link.remote_switch;
      int from = channel_index[{n, link.local_port}];
      PortNum inport = link.remote_port;
      for (ShortAddress addr : addrs) {
        ForwardingTable::Entry entry = tables[m].Lookup(inport, addr);
        entry.ports.ForEach([&](PortNum out) {
          auto it = channel_index.find({m, out});
          if (it != channel_index.end()) {
            if (out_edges[from].insert(it->second).second) {
              ++edge_count;
            }
          }
        });
      }
    }
  }

  DependencyCheck check;
  check.channels = static_cast<int>(channels.size());
  check.edges = edge_count;

  // Cycle detection (iterative DFS, colors).
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(channels.size(), kWhite);
  std::vector<int> parent(channels.size(), -1);
  for (std::size_t root = 0; root < channels.size(); ++root) {
    if (color[root] != kWhite) {
      continue;
    }
    std::vector<std::pair<int, std::set<int>::iterator>> stack;
    color[root] = kGray;
    stack.push_back({static_cast<int>(root), out_edges[root].begin()});
    while (!stack.empty()) {
      auto& [node, it] = stack.back();
      if (it == out_edges[node].end()) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      int next = *it++;
      if (color[next] == kGray) {
        // Found a cycle: recover it from the stack.
        check.acyclic = false;
        std::vector<ChannelId> cycle;
        bool in_cycle = false;
        for (const auto& frame : stack) {
          if (frame.first == next) {
            in_cycle = true;
          }
          if (in_cycle) {
            cycle.push_back(channels[frame.first]);
          }
        }
        check.cycle = std::move(cycle);
        return check;
      }
      if (color[next] == kWhite) {
        color[next] = kGray;
        stack.push_back({next, out_edges[next].begin()});
      }
    }
  }
  return check;
}

CoverageResult ChannelCoverage(const NetTopology& topology,
                               const std::vector<ForwardingTable>& tables) {
  std::set<std::pair<int, PortNum>> used;
  std::vector<Destination> dests = AllDestinations(topology);

  // Follow all alternatives of all (origin, dest) pairs, marking channels.
  for (int origin = 0; origin < topology.size(); ++origin) {
    for (const Destination& dest : dests) {
      std::set<std::pair<int, PortNum>> visited;
      std::deque<std::pair<int, PortNum>> frontier{{origin, kCpPort}};
      while (!frontier.empty()) {
        auto [sw, inport] = frontier.front();
        frontier.pop_front();
        if (!visited.insert({sw, inport}).second) {
          continue;
        }
        ForwardingTable::Entry entry = tables[sw].Lookup(inport, dest.addr);
        if (entry.IsDiscard() || entry.broadcast) {
          continue;
        }
        entry.ports.ForEach([&](PortNum out) {
          if (const TopoLink* link = LinkAt(topology, sw, out)) {
            used.insert({sw, out});
            frontier.push_back({link->remote_switch, link->remote_port});
          }
        });
      }
    }
  }

  CoverageResult result;
  for (int sw = 0; sw < topology.size(); ++sw) {
    result.total += static_cast<int>(topology.switches[sw].links.size());
  }
  result.used = static_cast<int>(used.size());
  return result;
}

std::vector<ForwardingTable> BuildShortestPathTables(
    const NetTopology& topology) {
  const int n = topology.size();
  // All-pairs BFS distances.
  std::vector<std::vector<int>> dist(n, std::vector<int>(n, kUnreachable));
  for (int s = 0; s < n; ++s) {
    dist[s][s] = 0;
    std::deque<int> queue{s};
    while (!queue.empty()) {
      int u = queue.front();
      queue.pop_front();
      for (const TopoLink& link : topology.switches[u].links) {
        if (dist[s][link.remote_switch] > dist[s][u] + 1) {
          dist[s][link.remote_switch] = dist[s][u] + 1;
          queue.push_back(link.remote_switch);
        }
      }
    }
  }

  std::vector<ForwardingTable> tables;
  tables.reserve(n);
  for (int self = 0; self < n; ++self) {
    ForwardingTable table;
    table.AddOneHopEntries();
    for (int d = 0; d < n; ++d) {
      const SwitchDescriptor& dest_sw = topology.switches[d];
      PortVector dest_ports = dest_sw.host_ports;
      dest_ports.Set(kCpPort);
      PortVector via;
      if (d != self) {
        for (const TopoLink& link : topology.switches[self].links) {
          if (dist[link.remote_switch][d] + 1 == dist[self][d]) {
            via.Set(link.local_port);
          }
        }
      }
      dest_ports.ForEach([&](PortNum q) {
        ShortAddress addr =
            ShortAddress::FromSwitchPort(dest_sw.assigned_num, q);
        if (d == self) {
          table.SetForAllInports(addr, ForwardingTable::Entry::Alternatives(
                                           PortVector::Single(q)));
        } else if (!via.empty()) {
          table.SetForAllInports(addr,
                                 ForwardingTable::Entry::Alternatives(via));
        }
      });
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

}  // namespace autonet
