// Graph-level description of an operational Autonet configuration: the
// switches, the usable switch-to-switch links (those whose both ends are
// classified s.switch.good), and the ports where hosts attach.  This is the
// information that accumulates up the spanning tree in topology reports
// during reconfiguration step 2 and is distributed back down in step 4
// (section 6.6); every switch computes its forwarding table from it.
#ifndef SRC_ROUTING_TOPOLOGY_H_
#define SRC_ROUTING_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/port_vector.h"

namespace autonet {

struct TopoLink {
  PortNum local_port = -1;
  int remote_switch = -1;  // index into NetTopology::switches
  PortNum remote_port = -1;

  bool operator==(const TopoLink&) const = default;
};

struct SwitchDescriptor {
  Uid uid;
  // The switch number this switch used in the previous epoch (1 for a
  // freshly booted switch); the root honours proposals when it can
  // (section 6.6.3).
  SwitchNum proposed_num = 1;
  // Assigned by AssignSwitchNumbers.
  SwitchNum assigned_num = 0;
  std::vector<TopoLink> links;  // usable switch-to-switch links
  PortVector host_ports;        // ports classified s.host

  bool operator==(const SwitchDescriptor&) const = default;
};

struct NetTopology {
  std::vector<SwitchDescriptor> switches;

  int size() const { return static_cast<int>(switches.size()); }
  // Index of the switch with the given UID, or -1.
  int IndexOf(Uid uid) const;
  // The unique root choice of the spanning-tree algorithm: the switch with
  // the smallest UID.
  int RootIndex() const;

  // Structural validation: every link must have a symmetric counterpart and
  // indices/ports must be in range.  Returns an empty string when valid.
  std::string Validate() const;

  // Drops links without a symmetric counterpart (differing connectivity
  // views between the two ends of a marginal link).
  void SymmetrizeLinks();

  std::string ToString() const;

  bool operator==(const NetTopology&) const = default;
};

// Resolves the switch-number proposals into assignments, as the root does in
// reconfiguration step 3 (section 6.6.3): each switch gets its proposed
// number unless several propose the same one, in which case the smallest UID
// wins and the losers receive the lowest unrequested numbers (in UID order).
// Proposals outside [kFirstSwitchNum, kMaxSwitchNum] count as unrequested.
void AssignSwitchNumbers(NetTopology* topology);

}  // namespace autonet

#endif  // SRC_ROUTING_TOPOLOGY_H_
