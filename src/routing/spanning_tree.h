// The unique spanning tree a given topology converges to under the
// distributed algorithm of section 6.6.1.  A switch's tree position is the
// lexicographically best (root UID, level, parent UID, parent port); since
// the ordering has a unique fixpoint, the tree can be recomputed
// deterministically from the topology alone.  The distributed protocol in
// src/autopilot *forms* this tree online (and detects termination); tests
// assert both agree.
#ifndef SRC_ROUTING_SPANNING_TREE_H_
#define SRC_ROUTING_SPANNING_TREE_H_

#include <vector>

#include "src/routing/topology.h"

namespace autonet {

struct SpanningTree {
  int root = -1;
  std::vector<int> parent;          // -1 for the root
  std::vector<PortNum> parent_port; // local port leading to the parent
  std::vector<int> level;           // 0 at the root

  // Ports of `node` that lead to its tree children.
  PortVector ChildPorts(const NetTopology& topology, int node) const;
  bool IsTreeLink(const NetTopology& topology, int node,
                  const TopoLink& link) const;
  int Depth() const;

  bool operator==(const SpanningTree&) const = default;
};

// Computes the spanning tree: root = smallest UID; level = BFS distance from
// the root; parent = the level-(L-1) neighbor with the smallest UID; parent
// port = the lowest local port cabled to that parent.
SpanningTree ComputeSpanningTree(const NetTopology& topology);

// Up end of a link (section 6.6.4): the end closer to the root, with the
// smaller UID breaking level ties.  Returns true if traversing
// from->to goes *up*.
bool TraversesUp(const NetTopology& topology, const SpanningTree& tree,
                 int from, int to);

}  // namespace autonet

#endif  // SRC_ROUTING_SPANNING_TREE_H_
