#include "src/common/port_vector.h"

namespace autonet {

std::string PortVector::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](PortNum p) {
    if (!first) {
      out += ",";
    }
    out += std::to_string(p);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace autonet
