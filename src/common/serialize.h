// Little-endian byte-stream writer/reader used to serialize control-protocol
// message bodies (reconfiguration, connectivity, SRP) into packet payloads.
#ifndef SRC_COMMON_SERIALIZE_H_
#define SRC_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace autonet {

class ByteWriter {
 public:
  void U8(std::uint8_t v) { bytes_.push_back(v); }
  void U16(std::uint16_t v) {
    U8(static_cast<std::uint8_t>(v));
    U8(static_cast<std::uint8_t>(v >> 8));
  }
  void U32(std::uint32_t v) {
    U16(static_cast<std::uint16_t>(v));
    U16(static_cast<std::uint16_t>(v >> 16));
  }
  void U64(std::uint64_t v) {
    U32(static_cast<std::uint32_t>(v));
    U32(static_cast<std::uint32_t>(v >> 32));
  }
  void WriteUid(Uid uid) { U64(uid.value()); }
  void WriteShortAddress(ShortAddress a) { U16(a.value()); }
  void Bytes(const std::uint8_t* data, std::size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Reader with saturating error handling: reading past the end sets ok() to
// false and yields zeros, so malformed (e.g. truncated or corrupted) control
// packets degrade to rejectable messages instead of undefined behavior.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_(bytes.size()) {}
  // The reader borrows the vector's storage, so binding a temporary would
  // leave bytes_ dangling before the first read.
  explicit ByteReader(const std::vector<std::uint8_t>&&) = delete;
  ByteReader(const std::uint8_t* bytes, std::size_t size)
      : bytes_(bytes), size_(size) {}

  std::uint8_t U8() {
    if (pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    return bytes_[pos_++];
  }
  std::uint16_t U16() {
    std::uint16_t lo = U8();
    std::uint16_t hi = U8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t U32() {
    std::uint32_t lo = U16();
    std::uint32_t hi = U16();
    return lo | (hi << 16);
  }
  std::uint64_t U64() {
    std::uint64_t lo = U32();
    std::uint64_t hi = U32();
    return lo | (hi << 32);
  }
  // Wire UIDs occupy 48 bits of a 64-bit field and wire short addresses 11
  // bits of 16; every writer masks, so set bits above the mask can only be
  // corruption.  Constructing the value types would silently drop them and
  // make the accepted message re-serialize differently, so flag them as a
  // read error instead.
  Uid ReadUid() {
    std::uint64_t v = U64();
    if ((v & ~Uid::kMask) != 0) {
      ok_ = false;
    }
    return Uid(v);
  }
  ShortAddress ReadShortAddress() {
    std::uint16_t v = U16();
    if ((v & ~ShortAddress::kMask) != 0) {
      ok_ = false;
    }
    return ShortAddress(v);
  }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace autonet

#endif  // SRC_COMMON_SERIALIZE_H_
