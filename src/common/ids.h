// Fundamental identifier types of the Autonet design: 48-bit UIDs, 11-bit
// short addresses with the switch-number/port-number split of section 6.3 of
// the Autonet paper, and port numbers.
#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace autonet {

// Number of ports on a switch, including the internal control-processor port.
// Port 0 is always the control processor; ports 1..12 terminate external
// links (section 3.4: 12 full-duplex ports plus the 13th crossbar position).
inline constexpr int kPortsPerSwitch = 13;
inline constexpr int kCpPort = 0;
inline constexpr int kFirstExternalPort = 1;

// A port number on a switch or a host controller.  Hosts have 2 ports.
using PortNum = int;

// A switch number assigned by the root during reconfiguration (section
// 6.6.3).  Short addresses are formed as (switch number << 4) | port.
// 0 means "not assigned".
using SwitchNum = std::uint16_t;

// 48-bit unique identifier burned into every switch and host controller ROM
// (section 3.7).  Value 0 is reserved as "nil".
class Uid {
 public:
  static constexpr std::uint64_t kMask = (std::uint64_t{1} << 48) - 1;

  constexpr Uid() = default;
  explicit constexpr Uid(std::uint64_t value) : value_(value & kMask) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool IsNil() const { return value_ == 0; }

  friend constexpr auto operator<=>(Uid a, Uid b) = default;

  std::string ToString() const;

 private:
  std::uint64_t value_ = 0;
};

// An 11-bit short address (section 6.3).  The paper writes addresses as four
// hex digits but prototype switches interpret only the low-order 11 bits; we
// follow the prototype.  The address space layout mirrors the paper's table:
//
//   0x000          from a host: control processor of the local switch
//   0x001..0x00F   one-hop switch-to-switch packets (outbound port number)
//   0x010..0x7EF   a particular host or switch (switch number . port number)
//   0x7F0..0x7FB   reserved; packets discarded
//   0x7FC          loopback (reflected out the receiving port)
//   0x7FD          broadcast: every switch and every host
//   0x7FE          broadcast: every switch
//   0x7FF          broadcast: every host
class ShortAddress {
 public:
  static constexpr std::uint16_t kMask = 0x7FF;
  static constexpr int kPortBits = 4;

  constexpr ShortAddress() = default;
  explicit constexpr ShortAddress(std::uint16_t value) : value_(value & kMask) {}

  static constexpr ShortAddress FromSwitchPort(SwitchNum sw, PortNum port) {
    return ShortAddress(static_cast<std::uint16_t>((sw << kPortBits) |
                                                   (port & 0xF)));
  }

  constexpr std::uint16_t value() const { return value_; }
  constexpr SwitchNum switch_num() const {
    return static_cast<SwitchNum>(value_ >> kPortBits);
  }
  constexpr PortNum port() const { return value_ & 0xF; }

  constexpr bool IsLocalCp() const { return value_ == 0; }
  constexpr bool IsOneHop() const { return value_ >= 0x001 && value_ <= 0x00F; }
  constexpr PortNum OneHopPort() const { return value_; }
  constexpr bool IsAssignable() const {
    return value_ >= 0x010 && value_ <= 0x7EF;
  }
  constexpr bool IsReserved() const {
    return value_ >= 0x7F0 && value_ <= 0x7FB;
  }
  constexpr bool IsLoopback() const { return value_ == 0x7FC; }
  constexpr bool IsBroadcastAll() const { return value_ == 0x7FD; }
  constexpr bool IsBroadcastSwitches() const { return value_ == 0x7FE; }
  constexpr bool IsBroadcastHosts() const { return value_ == 0x7FF; }
  constexpr bool IsBroadcast() const { return value_ >= 0x7FD; }

  friend constexpr auto operator<=>(ShortAddress a, ShortAddress b) = default;

  std::string ToString() const;

 private:
  std::uint16_t value_ = 0;
};

inline constexpr ShortAddress kAddrLocalCp{0x000};
inline constexpr ShortAddress kAddrLoopback{0x7FC};
inline constexpr ShortAddress kAddrBroadcastAll{0x7FD};
inline constexpr ShortAddress kAddrBroadcastSwitches{0x7FE};
inline constexpr ShortAddress kAddrBroadcastHosts{0x7FF};

constexpr ShortAddress OneHopAddress(PortNum port) {
  return ShortAddress(static_cast<std::uint16_t>(port & 0xF));
}

// Highest switch number representable in an 11-bit short address while
// staying inside the assignable range 0x010..0x7EF.
inline constexpr SwitchNum kMaxSwitchNum = 0x7E;
inline constexpr SwitchNum kFirstSwitchNum = 1;

}  // namespace autonet

template <>
struct std::hash<autonet::Uid> {
  std::size_t operator()(autonet::Uid uid) const noexcept {
    return std::hash<std::uint64_t>{}(uid.value());
  }
};

template <>
struct std::hash<autonet::ShortAddress> {
  std::size_t operator()(autonet::ShortAddress a) const noexcept {
    return std::hash<std::uint16_t>{}(a.value());
  }
};

#endif  // SRC_COMMON_IDS_H_
