#include "src/common/ids.h"

#include <cstdio>

namespace autonet {

std::string Uid::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "uid:%012llx",
                static_cast<unsigned long long>(value_));
  return buf;
}

std::string ShortAddress::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%03X", value_);
  return buf;
}

}  // namespace autonet
