// Simulated-time base types shared by every module.  Time is a signed 64-bit
// count of nanoseconds; one link symbol slot is 80 ns (section 5.1: "Most of
// the switch runs on a single 80 ns clock").
#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>

namespace autonet {

using Tick = std::int64_t;  // nanoseconds of simulated time

inline constexpr Tick kMicrosecond = 1000;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

// One symbol slot on a 100 Mbit/s link: one 9-bit symbol per 80 ns.
inline constexpr Tick kSlotNs = 80;

// Every 256th slot on a channel is a flow-control slot (section 6.1).
inline constexpr int kFlowSlotPeriod = 256;

// The scheduling engine makes one forwarding decision every 6 clock cycles
// (480 ns), giving the 2 M packets/second forwarding rate (section 5.1).
inline constexpr Tick kRouterCycleNs = 6 * kSlotNs;

// Propagation delay: W = 64.1 slots per km (section 6.2), i.e. 5128 ns/km.
constexpr Tick PropagationDelayNs(double km) {
  return static_cast<Tick>(64.1 * km * static_cast<double>(kSlotNs));
}

}  // namespace autonet

#endif  // SRC_COMMON_TIME_H_
