// A 13-bit set of switch ports, as stored in forwarding table entries
// (section 6.3: "Each 2-byte forwarding table entry contains a 13-bit port
// vector and a 1-bit broadcast flag").
#ifndef SRC_COMMON_PORT_VECTOR_H_
#define SRC_COMMON_PORT_VECTOR_H_

#include <cstdint>
#include <string>

#include "src/common/ids.h"

namespace autonet {

class PortVector {
 public:
  static constexpr std::uint16_t kMask = (1u << kPortsPerSwitch) - 1;

  constexpr PortVector() = default;
  explicit constexpr PortVector(std::uint16_t bits) : bits_(bits & kMask) {}

  static constexpr PortVector Single(PortNum port) {
    return PortVector(static_cast<std::uint16_t>(1u << port));
  }
  static constexpr PortVector All() { return PortVector(kMask); }

  constexpr std::uint16_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr bool Test(PortNum port) const {
    return (bits_ >> port) & 1u;
  }
  constexpr void Set(PortNum port) {
    bits_ = static_cast<std::uint16_t>(bits_ | (1u << port));
  }
  constexpr void Clear(PortNum port) {
    bits_ = static_cast<std::uint16_t>(bits_ & ~(1u << port));
  }
  constexpr int Count() const { return __builtin_popcount(bits_); }

  // Lowest-numbered port in the set; -1 if empty.  The switch hardware
  // prefers the lowest-numbered free port when several alternatives are free
  // (section 6.3).
  constexpr PortNum Lowest() const {
    return bits_ == 0 ? -1 : __builtin_ctz(bits_);
  }

  constexpr PortVector operator|(PortVector o) const {
    return PortVector(static_cast<std::uint16_t>(bits_ | o.bits_));
  }
  constexpr PortVector operator&(PortVector o) const {
    return PortVector(static_cast<std::uint16_t>(bits_ & o.bits_));
  }
  constexpr PortVector operator~() const {
    return PortVector(static_cast<std::uint16_t>(~bits_));
  }
  constexpr PortVector& operator|=(PortVector o) {
    bits_ = static_cast<std::uint16_t>(bits_ | o.bits_);
    return *this;
  }
  constexpr PortVector& operator&=(PortVector o) {
    bits_ = static_cast<std::uint16_t>(bits_ & o.bits_);
    return *this;
  }

  friend constexpr bool operator==(PortVector a, PortVector b) = default;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::uint16_t b = bits_;
    while (b != 0) {
      PortNum p = __builtin_ctz(b);
      fn(p);
      b = static_cast<std::uint16_t>(b & (b - 1));
    }
  }

  std::string ToString() const;

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace autonet

#endif  // SRC_COMMON_PORT_VECTOR_H_
