// Simple value accumulator for latency/occupancy statistics in tests and
// benches.  Stores samples exactly; percentile queries sort on demand.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace autonet {

class Histogram {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const {
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  double Max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }
  double Mean() const {
    if (samples_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double s : samples_) {
      sum += s;
    }
    return sum / static_cast<double>(samples_.size());
  }

  // p in [0, 100].
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    if (!sorted_) {
      sorted_samples_ = samples_;
      std::sort(sorted_samples_.begin(), sorted_samples_.end());
      sorted_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(sorted_samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = std::min(lo + 1, sorted_samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
  }

  void Clear() {
    samples_.clear();
    sorted_samples_.clear();
    sorted_ = false;
  }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

}  // namespace autonet

#endif  // SRC_COMMON_HISTOGRAM_H_
