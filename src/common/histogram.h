// Simple value accumulator for latency/occupancy statistics in tests,
// benches, and the metric registry.  Min/Max/Mean are maintained as running
// aggregates so they are O(1); samples are stored exactly and sorted on
// demand only for percentile queries.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace autonet {

class Histogram {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const { return samples_.empty() ? 0.0 : min_; }
  double Max() const { return samples_.empty() ? 0.0 : max_; }
  double Sum() const { return sum_; }
  double Mean() const {
    return samples_.empty() ? 0.0
                            : sum_ / static_cast<double>(samples_.size());
  }

  // p in [0, 100].
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    if (!sorted_) {
      sorted_samples_ = samples_;
      std::sort(sorted_samples_.begin(), sorted_samples_.end());
      sorted_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(sorted_samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = std::min(lo + 1, sorted_samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_samples_[lo] * (1.0 - frac) + sorted_samples_[hi] * frac;
  }

  // Folds another histogram's samples into this one (exact: the merged
  // percentile queries see every individual sample).  Used by the chaos
  // campaign runner to aggregate per-worker accumulations after the workers
  // join, so nothing on a hot path ever locks.
  void Merge(const Histogram& other) {
    if (other.samples_.empty()) {
      return;
    }
    // Copy by index after reserving: iterators into `other.samples_` would
    // dangle on reallocation when `other` is `*this` (self-merge doubles).
    std::size_t n = other.samples_.size();
    samples_.reserve(samples_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      samples_.push_back(other.samples_[i]);
    }
    sorted_ = false;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void Clear() {
    samples_.clear();
    sorted_samples_.clear();
    sorted_ = false;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace autonet

#endif  // SRC_COMMON_HISTOGRAM_H_
