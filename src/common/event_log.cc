#include "src/common/event_log.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace autonet {
namespace {
std::atomic<std::uint64_t> g_next_log_seq{1};
}  // namespace

EventLog::EventLog(std::string node_name, std::size_t capacity)
    : node_name_(std::move(node_name)), capacity_(capacity) {}

void EventLog::Log(Tick now, std::string message) {
  if (!enabled_) {
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.pop_front();
  }
  entries_.push_back(LogEntry{now, g_next_log_seq.fetch_add(1), node_name_,
                              std::move(message)});
}

void EventLog::Logf(Tick now, const char* fmt, ...) {
  if (!enabled_) {
    return;
  }
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  Log(now, buf);
}

std::vector<LogEntry> EventLog::Merge(
    const std::vector<const EventLog*>& logs) {
  std::vector<LogEntry> merged;
  for (const EventLog* log : logs) {
    merged.insert(merged.end(), log->entries().begin(), log->entries().end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const LogEntry& a, const LogEntry& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              return a.seq < b.seq;
            });
  return merged;
}

std::string EventLog::Format(const std::vector<LogEntry>& entries) {
  std::string out;
  char buf[96];
  for (const LogEntry& e : entries) {
    std::snprintf(buf, sizeof(buf), "%12.3f us  %-12s ",
                  static_cast<double>(e.time) / 1000.0, e.node.c_str());
    out += buf;
    out += e.message;
    out += '\n';
  }
  return out;
}

}  // namespace autonet
