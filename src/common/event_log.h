// Per-node circular event log, modeled on Autopilot's reconfiguration log
// (section 6.7): each switch keeps a timestamped circular log in memory, and
// the logs of all switches can be merged into a single network-wide history.
// The merged log was the paper's main debugging tool; it plays the same role
// in this reproduction's tests and examples.
#ifndef SRC_COMMON_EVENT_LOG_H_
#define SRC_COMMON_EVENT_LOG_H_

#include <cstdarg>
#include <deque>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace autonet {

struct LogEntry {
  Tick time = 0;
  std::uint64_t seq = 0;  // global tiebreaker for identical timestamps
  std::string node;
  std::string message;
};

class EventLog {
 public:
  explicit EventLog(std::string node_name, std::size_t capacity = 8192);

  void Log(Tick now, std::string message);
  [[gnu::format(printf, 3, 4)]] void Logf(Tick now, const char* fmt, ...);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  const std::deque<LogEntry>& entries() const { return entries_; }
  const std::string& node_name() const { return node_name_; }
  void Clear() { entries_.clear(); }

  // Merge several logs into one time-ordered history (the paper's merged-log
  // debugging technique).
  static std::vector<LogEntry> Merge(const std::vector<const EventLog*>& logs);
  static std::string Format(const std::vector<LogEntry>& entries);

 private:
  std::string node_name_;
  std::size_t capacity_;
  bool enabled_ = true;
  std::deque<LogEntry> entries_;
};

}  // namespace autonet

#endif  // SRC_COMMON_EVENT_LOG_H_
