#include "src/common/crc.h"

#include <array>

namespace autonet {
namespace {

constexpr std::uint64_t kPoly = 0x42F0E1EBA9EA3693;  // ECMA-182

std::array<std::uint64_t, 256> BuildTable() {
  std::array<std::uint64_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint64_t crc = static_cast<std::uint64_t>(i) << 56;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & (std::uint64_t{1} << 63)) {
        crc = (crc << 1) ^ kPoly;
      } else {
        crc <<= 1;
      }
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

const std::uint64_t* Crc64::Table() {
  static const std::array<std::uint64_t, 256> kTable = BuildTable();
  return kTable.data();
}

void Crc64::Update(std::uint8_t byte) {
  const std::uint64_t* table = Table();
  state_ = (state_ << 8) ^ table[((state_ >> 56) ^ byte) & 0xFF];
}

void Crc64::Update(const std::uint8_t* data, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    Update(data[i]);
  }
}

std::uint64_t Crc64::Compute(const std::uint8_t* data, std::size_t size) {
  Crc64 crc;
  crc.Update(data, size);
  return crc.Finish();
}

}  // namespace autonet
