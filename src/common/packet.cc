#include "src/common/packet.h"

#include <atomic>
#include <cstdio>

namespace autonet {

const char* PacketTypeName(PacketType type) {
  switch (type) {
    case PacketType::kEthernetEncap:
      return "encap";
    case PacketType::kReconfig:
      return "reconfig";
    case PacketType::kConnectivity:
      return "connectivity";
    case PacketType::kSrp:
      return "srp";
    case PacketType::kHostAddress:
      return "hostaddr";
  }
  return "unknown";
}

namespace {
std::atomic<std::uint64_t> g_next_packet_id{1};
}  // namespace

PacketRef MakePacket(Packet&& packet) {
  packet.id = g_next_packet_id.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<const Packet>(std::move(packet));
}

std::string Packet::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "pkt#%llu %s %s->%s (%zu bytes)",
                static_cast<unsigned long long>(id), PacketTypeName(type),
                src.ToString().c_str(), dest.ToString().c_str(), WireSize());
  return buf;
}

}  // namespace autonet
