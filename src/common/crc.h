// CRC-64/WE (the ECMA-182 polynomial with all-ones initial value and final
// inversion) used for the 8-byte packet CRC field (section 6.8).  The
// real controller computes CRCs in a Xilinx 3020; switches never touch the
// CRC of forwarded packets, so only hosts and switch control processors
// (which check/generate CRCs in software, section 5.1) use this.
#ifndef SRC_COMMON_CRC_H_
#define SRC_COMMON_CRC_H_

#include <cstddef>
#include <cstdint>

namespace autonet {

class Crc64 {
 public:
  // One-shot CRC of a buffer.
  static std::uint64_t Compute(const std::uint8_t* data, std::size_t size);

  // Incremental interface.
  void Update(const std::uint8_t* data, std::size_t size);
  void Update(std::uint8_t byte);
  std::uint64_t Finish() const { return ~state_; }

 private:
  static const std::uint64_t* Table();
  std::uint64_t state_ = ~std::uint64_t{0};
};

}  // namespace autonet

#endif  // SRC_COMMON_CRC_H_
