// The Autonet packet representation (section 6.8).  On the wire a packet is
//
//   2  destination short address     (the only field switches examine)
//   2  source short address
//   2  Autonet type
//   26 encryption information
//   [ 6 destination UID, 6 source UID, 2 Ethernet type ]   (type 1 only)
//   0..64K data
//   8  CRC
//
// The simulation carries packets as immutable reference-counted objects;
// per-hop metadata (corruption, truncation) travels alongside the reference
// rather than mutating the shared packet.
#ifndef SRC_COMMON_PACKET_H_
#define SRC_COMMON_PACKET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace autonet {

enum class PacketType : std::uint16_t {
  kEthernetEncap = 1,  // encapsulated Ethernet datagram (client traffic, ARP)
  kReconfig = 2,       // distributed reconfiguration protocol
  kConnectivity = 3,   // connectivity monitor probe/reply
  kSrp = 4,            // source-routed debugging/monitoring protocol
  kHostAddress = 5,    // host <-> local switch short-address request/reply
};

const char* PacketTypeName(PacketType type);

// Fixed wire overheads.
inline constexpr std::size_t kAutonetHeaderBytes = 32;  // addrs+type+crypto
inline constexpr std::size_t kEncapHeaderBytes = 14;    // UIDs + Ethernet type
inline constexpr std::size_t kCrcBytes = 8;

// Maximum data payload for broadcast packets and packets bridged to an
// Ethernet (section 6.8): the 1500-byte Ethernet limit.  The receive FIFO is
// sized so that a complete maximal broadcast packet (~1550 bytes of slots)
// fits (section 6.2).
inline constexpr std::size_t kMaxBridgedData = 1500;
inline constexpr std::size_t kMaxData = 64 * 1024;

struct Packet {
  ShortAddress dest;
  ShortAddress src;
  PacketType type = PacketType::kEthernetEncap;

  // Encryption information (part of the 26-byte crypto header).
  bool encrypted = false;
  std::uint32_t key_id = 0;
  std::uint64_t crypto_iv = 0;  // per-packet initialization vector

  // Encapsulated-Ethernet fields; meaningful only for kEthernetEncap.
  Uid dest_uid;
  Uid src_uid;
  std::uint16_t ether_type = 0;

  std::vector<std::uint8_t> payload;

  // Set by an Autonet-to-Ethernet bridge on packets it forwards in from the
  // Ethernet, telling Autonet hosts not to attempt encryption or long
  // packets with the source host (section 6.8.2).
  bool from_ethernet = false;

  // Simulation bookkeeping (not on the wire).
  std::uint64_t id = 0;       // unique per transmitted packet
  Tick created_at = 0;        // when the source handed it to its controller

  // Total bytes transmitted for this packet, excluding the begin/end framing
  // commands (which occupy their own slots).
  std::size_t WireSize() const {
    std::size_t n = kAutonetHeaderBytes + payload.size() + kCrcBytes;
    if (type == PacketType::kEthernetEncap) {
      n += kEncapHeaderBytes;
    }
    return n;
  }

  std::string ToString() const;
};

using PacketRef = std::shared_ptr<const Packet>;

// Builder helpers.
PacketRef MakePacket(Packet&& packet);

// A received packet plus per-delivery integrity metadata.
struct Delivery {
  PacketRef packet;
  bool corrupted = false;   // a data byte was damaged in flight (CRC fails)
  bool truncated = false;   // the packet lost its tail (switch reset, cut)
  PortNum arrival_port = -1;
  Tick delivered_at = 0;

  bool intact() const { return !corrupted && !truncated; }
};

}  // namespace autonet

#endif  // SRC_COMMON_PACKET_H_
