#include "src/autopilot/config.h"

namespace autonet {

AutopilotConfig AutopilotConfig::Initial() {
  AutopilotConfig c;
  // The first implementation was "coded to be easy to understand and
  // debug" (section 6.6.5): everything is slow, including the monitoring
  // timers — which must scale with the processing costs, or the slow
  // control processor starves its own connectivity probes and misdiagnoses
  // healthy links.
  c.status_sample_period = 20 * kMillisecond;
  c.probe_period_unknown = 250 * kMillisecond;
  c.probe_period_good = kSecond;
  c.probe_timeout = 3 * kSecond;
  c.boot_reconfig_delay = 200 * kMillisecond;
  c.retransmit_period = 500 * kMillisecond;
  c.cost_packet_process = 10 * kMillisecond;
  c.cost_packet_send = 2 * kMillisecond;
  c.cost_table_compute = 800 * kMillisecond;
  c.cost_table_load = 100 * kMillisecond;
  return c;
}

AutopilotConfig AutopilotConfig::Tuned() {
  AutopilotConfig c;
  c.cost_table_compute = 180 * kMillisecond;
  c.cost_table_load = 30 * kMillisecond;
  return c;
}

AutopilotConfig AutopilotConfig::Fast() {
  AutopilotConfig c;
  c.retransmit_period = 30 * kMillisecond;
  c.cost_packet_process = 300 * kMicrosecond;
  c.cost_packet_send = 60 * kMicrosecond;
  c.cost_table_compute = 60 * kMillisecond;
  c.cost_table_load = 10 * kMillisecond;
  return c;
}

}  // namespace autonet
