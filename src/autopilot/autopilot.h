// Autopilot, the switch control program (section 5.4): monitors the
// physical condition of the switch's ports, triggers and executes the
// distributed reconfiguration algorithm, answers host short-address
// requests, and serves the SRP debugging protocol.  One instance runs per
// switch, driving the switch solely through the control-processor
// interface, with all work serialized through a single-CPU cost model (the
// 12.5 MHz 68000).
#ifndef SRC_AUTOPILOT_AUTOPILOT_H_
#define SRC_AUTOPILOT_AUTOPILOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/autopilot/config.h"
#include "src/autopilot/messages.h"
#include "src/autopilot/port_state.h"
#include "src/autopilot/reconfig.h"
#include "src/autopilot/skeptic.h"
#include "src/fabric/switch.h"
#include "src/routing/topology.h"
#include "src/sim/timer.h"

namespace autonet {

class Autopilot {
 public:
  struct Stats {
    std::uint64_t probes_sent = 0;
    std::uint64_t probe_replies_handled = 0;
    std::uint64_t probe_timeouts = 0;
    std::uint64_t crc_errors = 0;
    std::uint64_t host_addr_replies = 0;
    std::uint64_t srp_forwarded = 0;
    std::uint64_t srp_served = 0;
    std::uint64_t tables_loaded = 0;
    Tick last_table_load = -1;
    std::uint64_t port_deaths = 0;
  };

  Autopilot(Switch* node, AutopilotConfig config);

  // Powers up the control program: loads the one-hop table, begins
  // monitoring, and schedules the initial reconfiguration.
  void Boot();

  // Powers the control processor off: monitoring stops and all queued CPU
  // work is abandoned.  The harness uses this to model a switch crash; a
  // restart constructs a fresh Autopilot (the ROM boot path).
  void Shutdown();

  // --- introspection (used by tests, benches, and the Network harness) ---
  PortState port_state(PortNum p) const { return monitors_[p].state; }
  Uid neighbor_uid(PortNum p) const { return monitors_[p].neighbor_uid; }
  std::uint64_t epoch() const { return engine_.epoch(); }
  bool reconfig_in_progress() const { return engine_.in_progress(); }
  SwitchNum switch_num() const { return switch_num_; }
  const std::optional<NetTopology>& topology() const { return topology_; }
  ReconfigEngine& engine() { return engine_; }
  const Stats& stats() const { return stats_; }
  Switch* node() { return node_; }
  Uid uid() const { return node_->uid(); }
  EventLog& log() { return node_->log(); }
  const AutopilotConfig& config() const { return config_; }

  // Idle means no reconfiguration in progress and no control-processor work
  // queued — the harness uses this to detect convergence.
  bool Quiescent() const;

  // Timestamp of the most recent control-plane or monitoring activity:
  // epoch joins, table loads, port state transitions, probe streak starts,
  // and queued CPU work.  The harness treats the network as converged when
  // this stops advancing.
  Tick LastActivity() const;

  // --- fault-injection surface (see src/adversary/) ---
  // Each Corrupt* overwrites a raw state register the way a memory fault
  // would, bypassing every transition path (no log line, no flight event,
  // no engine notification).  Recovery must come from the control program's
  // own monitoring: the status sampler and probes reclassify a lying port
  // state, the skeptic Repair clamp bounds corrupt hysteresis registers.
  void CorruptPortState(PortNum p, PortState s) { monitors_[p].state = s; }
  void CorruptSkeptic(PortNum p, bool connectivity, int level,
                      Tick last_event) {
    Skeptic& s = connectivity ? monitors_[p].conn_skeptic
                              : monitors_[p].status_skeptic;
    s.CorruptState(level, last_event);
  }
  int skeptic_level(PortNum p, bool connectivity) const {
    return connectivity ? monitors_[p].conn_skeptic.level()
                        : monitors_[p].status_skeptic.level();
  }

 private:
  struct PortMonitor {
    PortState state = PortState::kDead;
    Tick state_since = 0;
    Tick clean_since = 0;  // last time bad status was seen (s.dead)
    Skeptic status_skeptic;
    Skeptic conn_skeptic;
    int blocked_intervals = 0;  // stop-directive-only sampling intervals
    int stuck_intervals = 0;    // data pending but no progress
    std::uint32_t pending_crc_errors = 0;

    // Connectivity monitor state.
    Uid neighbor_uid;
    PortNum neighbor_port = -1;
    std::uint64_t probe_seq = 0;
    bool probe_outstanding = false;
    Tick probe_sent_at = 0;
    Tick last_probe_at = -1;
    int probe_misses = 0;
    Tick good_streak_start = -1;

    PortMonitor(const AutopilotConfig& cfg)
        : status_skeptic(cfg.status_holddown_base, cfg.status_holddown_max,
                         cfg.skeptic_forgiveness),
          conn_skeptic(cfg.conn_holddown_base, cfg.conn_holddown_max,
                       cfg.skeptic_forgiveness) {}
  };

  // Single-CPU cost model: work items occupy the control processor for
  // `cost` and run when the CPU gets to them.
  void RunOnCpu(Tick cost, std::function<void()> fn);

  void OnCpPacket(Delivery delivery);
  void HandleReconfig(const Delivery& d);
  void HandleConnectivity(const Delivery& d);
  void HandleHostAddress(const Delivery& d);
  void HandleSrp(const Delivery& d);
  void SendSrp(const SrpMsg& msg, PortNum out);

  void SampleStatus();
  void SamplePort(PortNum p, const PortStatus& snap);
  void ScrubTable();
  void ProbePorts();
  void SendProbe(PortNum p);
  void OnProbeReply(PortNum p, const ConnectivityMsg& msg);

  void TransitionPort(PortNum p, PortState next, const char* reason);
  void FailPort(PortNum p, const char* reason);
  PortVector HostPorts() const;
  std::vector<PortNum> GoodPorts() const;

  void SendReconfigMsg(PortNum port, const ReconfigMsg& msg);
  void LoadOneHopTable();
  void ApplyConfig(const NetTopology& topo, int self_index,
                   std::uint64_t epoch);
  void PatchLocalTable(const char* reason);

  Switch* node_;
  AutopilotConfig config_;
  ReconfigEngine engine_;
  obs::FlightRing* flight_;  // owned by the simulator's flight recorder
  std::vector<PortMonitor> monitors_;
  PeriodicTask sampler_task_;
  PeriodicTask probe_task_;
  Timer boot_trigger_;

  Tick cpu_busy_until_ = 0;
  std::size_t cpu_queue_depth_ = 0;
  // Cleared on Shutdown so queued CPU work becomes a no-op even if this
  // object is later destroyed while events remain scheduled.
  std::shared_ptr<bool> powered_ = std::make_shared<bool>(true);

  // Configuration state from the last completed reconfiguration.
  SwitchNum switch_num_ = 0;
  std::optional<NetTopology> topology_;
  int self_index_ = -1;

  // Table scrubber: the image the control program last loaded into the
  // switch.  Every kScrubSampleStride status samples the live table is
  // compared against it; software never diverges them, so a mismatch is a
  // memory fault and the image is reloaded (see ScrubTable).
  static constexpr int kScrubSampleStride = 16;
  ForwardingTable expected_table_;
  int scrub_stride_ = 0;
  obs::Counter* m_table_scrub_repairs_ = nullptr;

  Stats stats_;
};

}  // namespace autonet

#endif  // SRC_AUTOPILOT_AUTOPILOT_H_
