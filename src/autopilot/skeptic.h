// The skeptic hysteresis algorithm (section 6.5.5): prevents links with
// intermittent faults from causing reconfigurations too frequently.  Each
// relapse doubles the clean period required before the resource is trusted
// again, up to a maximum; sustained good service earns levels back, so a
// repaired link eventually regains fast acceptance.
#ifndef SRC_AUTOPILOT_SKEPTIC_H_
#define SRC_AUTOPILOT_SKEPTIC_H_

#include <algorithm>

#include "src/common/time.h"

namespace autonet {

class Skeptic {
 public:
  Skeptic(Tick base_holddown, Tick max_holddown, Tick forgiveness)
      : base_(base_holddown), max_(max_holddown), forgiveness_(forgiveness) {}

  // Doublings beyond this cannot raise the holddown further: 62 doublings
  // of even a 1 ns base already exceed any representable Tick, so capping
  // the level here changes no holddown while keeping relapse bookkeeping
  // (and the forgiveness debt) bounded.
  static constexpr int kMaxLevel = 62;

  // A fault occurred at `now`.
  void Penalize(Tick now) {
    // First account for good service since the last event.
    Forgive(now);
    if (level_ < kMaxLevel) {
      ++level_;
    }
    last_event_ = now;
  }

  // The clean period currently required before trusting the resource.
  Tick RequiredHolddown(Tick now) {
    Forgive(now);
    Tick holddown = base_;
    for (int i = 0; i < level_ && holddown < max_; ++i) {
      if (holddown > max_ / 2) {
        // Doubling would pass max_ (and could overflow Tick when max_ sits
        // near the type limit); the result saturates either way.
        holddown = max_;
        break;
      }
      holddown *= 2;
    }
    return std::min(holddown, max_);
  }

  int level() const { return level_; }

  // Fault-injection surface (see src/adversary/): overwrites the raw level
  // and last-event registers, including values no operation produces.
  // Recovery is the Repair clamp below, applied on the next Penalize or
  // RequiredHolddown — Dolev-style self-stabilization for this state.
  void CorruptState(int level, Tick last_event) {
    level_ = level;
    last_event_ = last_event;
  }

 private:
  // Self-repair of corrupted registers: a level outside [0, kMaxLevel] or
  // an event stamp from the future cannot arise in operation — a negative
  // level would disable hysteresis, an oversized one or a future stamp
  // would freeze forgiveness (and with it, link re-admission) essentially
  // forever.  Clamping into range on every consult bounds the damage of a
  // memory fault to one hold-down cycle.
  void Repair(Tick now) {
    if (level_ < 0) {
      level_ = 0;
    } else if (level_ > kMaxLevel) {
      level_ = kMaxLevel;
    }
    if (last_event_ > now) {
      last_event_ = now;
    }
  }

  void Forgive(Tick now) {
    Repair(now);
    if (forgiveness_ <= 0) {
      return;
    }
    while (level_ > 0 && now - last_event_ >= forgiveness_) {
      --level_;
      last_event_ += forgiveness_;
    }
    if (level_ == 0) {
      last_event_ = now;
    }
  }

  Tick base_;
  Tick max_;
  Tick forgiveness_;
  int level_ = 0;
  Tick last_event_ = 0;
};

}  // namespace autonet

#endif  // SRC_AUTOPILOT_SKEPTIC_H_
