#include "src/autopilot/messages.h"

#include <map>

#include "src/common/serialize.h"

namespace autonet {

// --- ConnectivityMsg ---

std::vector<std::uint8_t> ConnectivityMsg::Serialize() const {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(kind));
  w.U64(seq);
  w.WriteUid(sender_uid);
  w.U8(sender_port);
  w.WriteUid(echo_uid);
  w.U8(echo_port);
  w.U64(echo_seq);
  return w.Take();
}

std::optional<ConnectivityMsg> ConnectivityMsg::Parse(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  ConnectivityMsg m;
  m.kind = static_cast<Kind>(r.U8());
  m.seq = r.U64();
  m.sender_uid = r.ReadUid();
  m.sender_port = r.U8();
  m.echo_uid = r.ReadUid();
  m.echo_port = r.U8();
  m.echo_seq = r.U64();
  if (!r.ok() || !r.AtEnd() ||
      (m.kind != Kind::kProbe && m.kind != Kind::kReply)) {
    return std::nullopt;
  }
  return m;
}

// Wire bools must be canonical (0 or 1): any other value would be accepted,
// then re-serialize differently from what was received — the corruption
// would survive the parse undetected.
namespace {
bool ReadBool(ByteReader& r, bool* out) {
  std::uint8_t v = r.U8();
  *out = v != 0;
  return v <= 1;
}
}  // namespace

// --- ReconfigMsg ---

void SerializeSwitchRecords(ByteWriter& w,
                            const std::vector<SwitchRecord>& records) {
  w.U16(static_cast<std::uint16_t>(records.size()));
  for (const SwitchRecord& rec : records) {
    w.WriteUid(rec.uid);
    w.U16(rec.proposed_num);
    w.U16(rec.assigned_num);
    w.U16(rec.host_ports);
    w.U8(static_cast<std::uint8_t>(rec.links.size()));
    for (const SwitchRecord::LinkRec& link : rec.links) {
      w.U8(link.local_port);
      w.WriteUid(link.remote_uid);
      w.U8(link.remote_port);
    }
  }
}

bool ParseSwitchRecords(ByteReader& r, std::vector<SwitchRecord>* records) {
  std::uint16_t n = r.U16();
  if (n > 512) {
    return false;
  }
  records->reserve(n);
  for (int i = 0; i < n; ++i) {
    SwitchRecord rec;
    rec.uid = r.ReadUid();
    rec.proposed_num = r.U16();
    rec.assigned_num = r.U16();
    rec.host_ports = r.U16();
    std::uint8_t nlinks = r.U8();
    if (nlinks > kPortsPerSwitch) {
      return false;
    }
    for (int j = 0; j < nlinks; ++j) {
      SwitchRecord::LinkRec link;
      link.local_port = r.U8();
      link.remote_uid = r.ReadUid();
      link.remote_port = r.U8();
      rec.links.push_back(link);
    }
    records->push_back(std::move(rec));
  }
  return r.ok();
}

std::vector<std::uint8_t> ReconfigMsg::Serialize() const {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(kind));
  w.U64(epoch);
  w.WriteUid(sender_uid);
  switch (kind) {
    case Kind::kPosition:
      w.WriteUid(root_uid);
      w.U16(level);
      w.U32(pos_seq);
      break;
    case Kind::kPosAck:
      w.U32(ack_seq);
      w.U8(is_parent ? 1 : 0);
      break;
    case Kind::kReport:
    case Kind::kConfig:
      w.U32(payload_seq);
      SerializeSwitchRecords(w, records);
      break;
    case Kind::kMinorConfig:
      w.U32(payload_seq);
      w.U32(config_version);
      SerializeSwitchRecords(w, records);
      break;
    case Kind::kDelta:
      w.U32(payload_seq);
      w.U8(delta_add ? 1 : 0);
      w.WriteUid(delta_a_uid);
      w.U8(delta_a_port);
      w.WriteUid(delta_b_uid);
      w.U8(delta_b_port);
      break;
    case Kind::kReportAck:
    case Kind::kConfigAck:
      w.U32(payload_seq);
      break;
  }
  return w.Take();
}

std::optional<ReconfigMsg> ReconfigMsg::Parse(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  ReconfigMsg m;
  m.kind = static_cast<Kind>(r.U8());
  m.epoch = r.U64();
  m.sender_uid = r.ReadUid();
  switch (m.kind) {
    case Kind::kPosition:
      m.root_uid = r.ReadUid();
      m.level = r.U16();
      m.pos_seq = r.U32();
      break;
    case Kind::kPosAck:
      m.ack_seq = r.U32();
      if (!ReadBool(r, &m.is_parent)) {
        return std::nullopt;
      }
      break;
    case Kind::kReport:
    case Kind::kConfig:
      m.payload_seq = r.U32();
      if (!ParseSwitchRecords(r, &m.records)) {
        return std::nullopt;
      }
      break;
    case Kind::kMinorConfig:
      m.payload_seq = r.U32();
      m.config_version = r.U32();
      if (!ParseSwitchRecords(r, &m.records)) {
        return std::nullopt;
      }
      break;
    case Kind::kDelta:
      m.payload_seq = r.U32();
      if (!ReadBool(r, &m.delta_add)) {
        return std::nullopt;
      }
      m.delta_a_uid = r.ReadUid();
      m.delta_a_port = r.U8();
      m.delta_b_uid = r.ReadUid();
      m.delta_b_port = r.U8();
      break;
    case Kind::kReportAck:
    case Kind::kConfigAck:
      m.payload_seq = r.U32();
      break;
    default:
      return std::nullopt;
  }
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

const char* ReconfigMsg::KindName() const {
  switch (kind) {
    case Kind::kPosition:
      return "position";
    case Kind::kPosAck:
      return "pos-ack";
    case Kind::kReport:
      return "report";
    case Kind::kReportAck:
      return "report-ack";
    case Kind::kConfig:
      return "config";
    case Kind::kConfigAck:
      return "config-ack";
    case Kind::kDelta:
      return "delta";
    case Kind::kMinorConfig:
      return "minor-config";
  }
  return "?";
}

NetTopology RecordsToTopology(const std::vector<SwitchRecord>& records) {
  NetTopology topo;
  std::map<std::uint64_t, int> index;
  for (const SwitchRecord& rec : records) {
    if (index.count(rec.uid.value()) > 0) {
      continue;  // duplicate reports: first wins
    }
    index[rec.uid.value()] = topo.size();
    SwitchDescriptor sw;
    sw.uid = rec.uid;
    sw.proposed_num = rec.proposed_num;
    sw.assigned_num = rec.assigned_num;
    sw.host_ports = PortVector(rec.host_ports);
    topo.switches.push_back(std::move(sw));
  }
  for (const SwitchRecord& rec : records) {
    auto it = index.find(rec.uid.value());
    SwitchDescriptor& sw = topo.switches[it->second];
    if (!sw.links.empty()) {
      continue;  // duplicate record already filled in
    }
    for (const SwitchRecord::LinkRec& link : rec.links) {
      auto remote = index.find(link.remote_uid.value());
      if (remote == index.end()) {
        continue;  // link to a switch outside the stable set
      }
      sw.links.push_back(TopoLink{link.local_port, remote->second,
                                  link.remote_port});
    }
  }
  topo.SymmetrizeLinks();
  return topo;
}

std::vector<SwitchRecord> TopologyToRecords(const NetTopology& topology) {
  std::vector<SwitchRecord> records;
  records.reserve(topology.switches.size());
  for (const SwitchDescriptor& sw : topology.switches) {
    SwitchRecord rec;
    rec.uid = sw.uid;
    rec.proposed_num = sw.proposed_num;
    rec.assigned_num = sw.assigned_num;
    rec.host_ports = sw.host_ports.bits();
    for (const TopoLink& link : sw.links) {
      rec.links.push_back(SwitchRecord::LinkRec{
          static_cast<std::uint8_t>(link.local_port),
          topology.switches[link.remote_switch].uid,
          static_cast<std::uint8_t>(link.remote_port)});
    }
    records.push_back(std::move(rec));
  }
  return records;
}

// --- HostAddressMsg ---

std::vector<std::uint8_t> HostAddressMsg::Serialize() const {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(kind));
  w.WriteUid(host_uid);
  w.WriteUid(switch_uid);
  w.U16(short_address);
  w.U64(epoch);
  return w.Take();
}

std::optional<HostAddressMsg> HostAddressMsg::Parse(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  HostAddressMsg m;
  m.kind = static_cast<Kind>(r.U8());
  m.host_uid = r.ReadUid();
  m.switch_uid = r.ReadUid();
  m.short_address = r.U16();
  m.epoch = r.U64();
  if (!r.ok() || !r.AtEnd() ||
      (m.kind != Kind::kRequest && m.kind != Kind::kReply)) {
    return std::nullopt;
  }
  return m;
}

// --- SrpMsg ---

std::vector<std::uint8_t> SrpMsg::Serialize() const {
  ByteWriter w;
  w.U8(static_cast<std::uint8_t>(op));
  w.U64(request_id);
  w.U8(static_cast<std::uint8_t>(route.size()));
  w.Bytes(route.data(), route.size());
  w.U8(position);
  w.U8(static_cast<std::uint8_t>(reverse_route.size()));
  w.Bytes(reverse_route.data(), reverse_route.size());
  w.U16(static_cast<std::uint16_t>(body.size()));
  w.Bytes(body.data(), body.size());
  return w.Take();
}

std::optional<SrpMsg> SrpMsg::Parse(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  SrpMsg m;
  m.op = static_cast<Op>(r.U8());
  m.request_id = r.U64();
  std::uint8_t nroute = r.U8();
  for (int i = 0; i < nroute; ++i) {
    m.route.push_back(r.U8());
  }
  m.position = r.U8();
  std::uint8_t nreverse = r.U8();
  for (int i = 0; i < nreverse; ++i) {
    m.reverse_route.push_back(r.U8());
  }
  std::uint16_t nbody = r.U16();
  if (nbody > 4096) {
    return std::nullopt;
  }
  for (int i = 0; i < nbody; ++i) {
    m.body.push_back(r.U8());
  }
  switch (m.op) {
    case Op::kEcho:
    case Op::kGetState:
    case Op::kGetTopology:
    case Op::kGetLog:
    case Op::kGetStats:
    case Op::kReply:
      break;
    default:
      return std::nullopt;  // unknown op: likely a corrupted byte
  }
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

}  // namespace autonet
