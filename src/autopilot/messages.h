// Wire formats of Autopilot's control protocols: connectivity probes
// (section 6.5.4), the reconfiguration protocol (section 6.6), host
// short-address service (section 6.3), and the source-routed debugging
// protocol SRP (section 6.7).  All bodies travel as serialized payloads in
// Autonet packets of the corresponding PacketType and are parsed with the
// saturating ByteReader, so damaged packets degrade to rejectable messages.
#ifndef SRC_AUTOPILOT_MESSAGES_H_
#define SRC_AUTOPILOT_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/ids.h"
#include "src/common/packet.h"
#include "src/routing/topology.h"

namespace autonet {

// --- connectivity monitor (PacketType::kConnectivity) ---

struct ConnectivityMsg {
  enum class Kind : std::uint8_t { kProbe = 0, kReply = 1 };
  Kind kind = Kind::kProbe;
  std::uint64_t seq = 0;
  Uid sender_uid;
  std::uint8_t sender_port = 0;
  // Reply only: echo of the probe being answered.
  Uid echo_uid;
  std::uint8_t echo_port = 0;
  std::uint64_t echo_seq = 0;

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<ConnectivityMsg> Parse(
      const std::vector<std::uint8_t>& payload);
};

// --- reconfiguration (PacketType::kReconfig) ---

// One switch's contribution to a topology report or configuration
// description: its identity, proposed/assigned switch number, host ports,
// and its usable switch-to-switch links (remote ends named by UID).
struct SwitchRecord {
  Uid uid;
  SwitchNum proposed_num = 1;
  SwitchNum assigned_num = 0;
  std::uint16_t host_ports = 0;
  struct LinkRec {
    std::uint8_t local_port;
    Uid remote_uid;
    std::uint8_t remote_port;
  };
  std::vector<LinkRec> links;
};

struct ReconfigMsg {
  enum class Kind : std::uint8_t {
    kPosition = 0,   // tree-position packet
    kPosAck = 1,     // ack, carrying the "this is now my parent link" bit
    kReport = 2,     // "I am stable" + stable-subtree topology
    kReportAck = 3,
    kConfig = 4,     // step 4: full topology + switch-number assignments
    kConfigAck = 5,
    // Local reconfiguration (section 7 future work): a link delta routed
    // up the standing tree, and the root's incremental redistribution.
    kDelta = 6,
    kMinorConfig = 7,
  };
  Kind kind = Kind::kPosition;
  std::uint64_t epoch = 0;
  Uid sender_uid;

  // kPosition: the sender's current tree position.
  Uid root_uid;
  std::uint16_t level = 0;
  std::uint32_t pos_seq = 0;  // version, for ack matching

  // kPosAck.
  std::uint32_t ack_seq = 0;
  bool is_parent = false;

  // kReport / kReportAck / kConfig / kConfigAck / kMinorConfig.
  std::uint32_t payload_seq = 0;
  std::vector<SwitchRecord> records;

  // kDelta: one link added to or removed from the configuration.
  bool delta_add = false;
  Uid delta_a_uid;
  std::uint8_t delta_a_port = 0;
  Uid delta_b_uid;
  std::uint8_t delta_b_port = 0;

  // kMinorConfig: monotonically increasing within an epoch.
  std::uint32_t config_version = 0;

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<ReconfigMsg> Parse(
      const std::vector<std::uint8_t>& payload);

  const char* KindName() const;
};

// Record-list serialization, shared by ReconfigMsg and SRP topology
// retrieval.
class ByteWriter;
class ByteReader;
void SerializeSwitchRecords(ByteWriter& w,
                            const std::vector<SwitchRecord>& records);
bool ParseSwitchRecords(ByteReader& r, std::vector<SwitchRecord>* records);

// Builds a NetTopology from config/report records: links are resolved from
// UIDs to indices and one-sided links are dropped.
NetTopology RecordsToTopology(const std::vector<SwitchRecord>& records);
// The inverse, for assembling reports.
std::vector<SwitchRecord> TopologyToRecords(const NetTopology& topology);

// --- host short-address service (PacketType::kHostAddress) ---

struct HostAddressMsg {
  enum class Kind : std::uint8_t { kRequest = 0, kReply = 1 };
  Kind kind = Kind::kRequest;
  Uid host_uid;        // requesting host
  Uid switch_uid;      // reply: the answering switch
  std::uint16_t short_address = 0;  // reply: the host's assigned address
  std::uint64_t epoch = 0;          // reply: configuration epoch

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<HostAddressMsg> Parse(
      const std::vector<std::uint8_t>& payload);
};

// --- SRP, the source-routed debugging/monitoring protocol (section 6.7) ---
//
// The route is a sequence of outbound port numbers; each control processor
// along the path forwards the packet one hop and appends the arrival port
// to the reverse route, so the final switch can send the reply back along
// the recorded reverse path.  Delivery depends only on the constant one-hop
// part of forwarding tables, so SRP works during reconfiguration.

struct SrpMsg {
  enum class Op : std::uint8_t {
    kEcho = 0,
    kGetState = 1,     // epoch, switch number, port states
    kGetTopology = 2,  // the switch's current view of the network
    kGetLog = 3,       // tail of the reconfiguration event log
    kGetStats = 4,     // registry metrics under this switch's name prefix
    kReply = 100,
  };
  Op op = Op::kEcho;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> route;          // outbound ports, source-chosen
  std::uint8_t position = 0;                // next hop index
  std::vector<std::uint8_t> reverse_route;  // arrival ports, accumulated
  std::vector<std::uint8_t> body;           // op argument / reply data

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<SrpMsg> Parse(const std::vector<std::uint8_t>& payload);
};

}  // namespace autonet

#endif  // SRC_AUTOPILOT_MESSAGES_H_
