// The six dynamic port classifications of section 6.5.1 (Figure 8).
#ifndef SRC_AUTOPILOT_PORT_STATE_H_
#define SRC_AUTOPILOT_PORT_STATE_H_

#include <cstdint>

namespace autonet {

enum class PortState : std::uint8_t {
  kDead,        // does not work well enough to use
  kChecking,    // monitored to determine if host or switch is attached
  kHost,        // attached to a host (active or alternate controller port)
  kSwitchWho,   // believed switch-to-switch; neighbor identity unknown
  kSwitchLoop,  // attached to this same switch, or reflecting
  kSwitchGood,  // attached to a responsive neighbor switch
};

constexpr const char* PortStateName(PortState s) {
  switch (s) {
    case PortState::kDead:
      return "s.dead";
    case PortState::kChecking:
      return "s.checking";
    case PortState::kHost:
      return "s.host";
    case PortState::kSwitchWho:
      return "s.switch.who";
    case PortState::kSwitchLoop:
      return "s.switch.loop";
    case PortState::kSwitchGood:
      return "s.switch.good";
  }
  return "?";
}

}  // namespace autonet

#endif  // SRC_AUTOPILOT_PORT_STATE_H_
