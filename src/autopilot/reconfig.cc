#include "src/autopilot/reconfig.h"

#include <algorithm>

#include "src/routing/spanning_tree.h"

namespace autonet {

ReconfigEngine::ReconfigEngine(Simulator* sim, Uid self_uid,
                               const AutopilotConfig* config, EventLog* log,
                               Callbacks callbacks)
    : sim_(sim),
      self_uid_(self_uid),
      config_(config),
      log_(log),
      callbacks_(std::move(callbacks)),
      pos_root_(self_uid),
      retransmit_task_(sim, [this] { Retransmit(); }),
      trace_track_(log->node_name() + ".reconfig") {
  obs::MetricRegistry& reg = sim_->metrics();
  const std::string prefix = "switch." + log->node_name() + ".reconfig.";
  m_epochs_joined_ = reg.GetCounter(prefix + "epochs_joined");
  m_triggers_ = reg.GetCounter(prefix + "triggers");
  m_completions_ = reg.GetCounter(prefix + "completions");
  m_roots_terminated_ = reg.GetCounter(prefix + "roots_terminated");
  m_local_updates_applied_ = reg.GetCounter(prefix + "local_updates_applied");
  m_deltas_originated_ = reg.GetCounter(prefix + "deltas_originated");
  m_deltas_relayed_ = reg.GetCounter(prefix + "deltas_relayed");
  m_local_fallbacks_ = reg.GetCounter(prefix + "local_fallbacks");
  m_messages_sent_ = reg.GetCounter(prefix + "messages_sent");
  m_retransmissions_ = reg.GetCounter(prefix + "retransmissions");
  m_epoch_ms_ = reg.GetHistogram("autopilot.reconfig.epoch_ms");
  flight_ = sim_->flight().Ring(log->node_name(), self_uid);
}

obs::FlightEvent ReconfigEngine::FlightBase(obs::FlightEventKind kind) const {
  obs::FlightEvent e;
  e.time = sim_->now();
  e.epoch = epoch_;
  e.kind = kind;
  return e;
}

ReconfigEngine::Stats ReconfigEngine::stats() const {
  Stats s;
  s.epochs_joined = m_epochs_joined_->value();
  s.triggers = m_triggers_->value();
  s.completions = m_completions_->value();
  s.roots_terminated = m_roots_terminated_->value();
  s.local_updates_applied = m_local_updates_applied_->value();
  s.deltas_originated = m_deltas_originated_->value();
  s.deltas_relayed = m_deltas_relayed_->value();
  s.local_fallbacks = m_local_fallbacks_->value();
  s.messages_sent = m_messages_sent_->value();
  s.retransmissions = m_retransmissions_->value();
  s.last_join_time = last_join_time_;
  s.last_config_time = last_config_time_;
  s.last_termination_time = last_termination_time_;
  return s;
}

void ReconfigEngine::BeginPhaseSpan(const char* phase) {
  obs::TraceRecorder& trace = sim_->trace();
  trace.EndSpan(phase_span_, sim_->now());
  phase_span_ = trace.BeginSpan(trace_track_, phase, sim_->now());
}

void ReconfigEngine::EndSpans() {
  obs::TraceRecorder& trace = sim_->trace();
  trace.EndSpan(phase_span_, sim_->now());
  trace.EndSpan(epoch_span_, sim_->now());
  phase_span_ = 0;
  epoch_span_ = 0;
}

void ReconfigEngine::Shutdown() {
  outgoing_.clear();
  retransmit_task_.Stop();
  in_progress_ = false;
  EndSpans();
}

void ReconfigEngine::Trigger(const char* reason) {
  m_triggers_->Increment();
  sim_->trace().Instant(trace_track_, std::string("trigger: ") + reason,
                        sim_->now());
  if (flight_->armed()) {
    obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kTrigger);
    ev.epoch = epoch_ + 1;
    ev.detail = reason;
    flight_->Record(ev);
  }
  JoinEpoch(epoch_ + 1, reason);
}

void ReconfigEngine::JoinEpoch(std::uint64_t epoch, const char* reason,
                               PortNum inport, Uid origin) {
  epoch_ = epoch;
  in_progress_ = true;
  config_applied_ = false;
  suspect_epochs_.fill(0);
  suspect_next_ = 0;
  implausibly_stale_ = 0;
  if (flight_->armed()) {
    obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kEpochJoin);
    ev.port = static_cast<std::int16_t>(inport);
    ev.origin = origin;
    ev.detail = reason;
    flight_->Record(ev);
  }
  m_epochs_joined_->Increment();
  last_join_time_ = sim_->now();
  // An epoch joined while another is open means the old one was aborted;
  // its spans end where the new epoch's begin.
  EndSpans();
  epoch_span_ = sim_->trace().BeginSpan(
      trace_track_, "epoch " + std::to_string(epoch), sim_->now());
  BeginPhaseSpan("tree");
  log_->Logf(sim_->now(), "reconfig: join epoch %llu (%s)",
             static_cast<unsigned long long>(epoch), reason);

  // Freeze the participant set for this epoch (section 6.6.2).
  participants_ = callbacks_.good_ports();
  for (PortState& ps : ports_) {
    ps = PortState{};
  }
  for (PortNum p : participants_) {
    ports_[p].participant = true;
    ports_[p].neighbor_uid = callbacks_.neighbor_uid(p);
    ports_[p].neighbor_port = callbacks_.neighbor_port(p);
  }

  // Step 1: one-hop-only forwarding (destroys packets in the switch).
  callbacks_.load_one_hop_table();

  // Assume root; tell the neighbors.
  pos_root_ = self_uid_;
  pos_level_ = 0;
  parent_uid_ = Uid();
  parent_port_ = -1;
  ++pos_seq_;
  outgoing_.clear();
  last_report_fingerprint_ = 0;
  applied_topo_.reset();
  applied_version_ = 0;
  for (PortNum p : participants_) {
    SendPositionTo(p);
  }
  // An isolated switch is immediately stable (and its own root).
  CheckStability();
}

void ReconfigEngine::SendPositionTo(PortNum port) {
  ReconfigMsg msg;
  msg.kind = ReconfigMsg::Kind::kPosition;
  msg.epoch = epoch_;
  msg.sender_uid = self_uid_;
  msg.root_uid = pos_root_;
  msg.level = static_cast<std::uint16_t>(pos_level_);
  msg.pos_seq = pos_seq_;
  SendReliable(port, std::move(msg));
}

void ReconfigEngine::SendAckTo(PortNum port, std::uint32_t their_seq) {
  ReconfigMsg ack;
  ack.kind = ReconfigMsg::Kind::kPosAck;
  ack.epoch = epoch_;
  ack.sender_uid = self_uid_;
  ack.ack_seq = their_seq;
  ack.is_parent = parent_port_ == port;
  m_messages_sent_->Increment();
  callbacks_.send(port, ack);
}

void ReconfigEngine::SendReliable(PortNum port, ReconfigMsg msg) {
  // At most one outstanding message of each kind per port.
  outgoing_.erase(std::remove_if(outgoing_.begin(), outgoing_.end(),
                                 [&](const Outgoing& o) {
                                   return o.port == port &&
                                          o.msg.kind == msg.kind;
                                 }),
                  outgoing_.end());
  m_messages_sent_->Increment();
  callbacks_.send(port, msg);
  outgoing_.push_back(Outgoing{port, std::move(msg)});
  if (!retransmit_task_.running()) {
    retransmit_task_.Start(config_->retransmit_period);
  }
}

void ReconfigEngine::RemoveOutgoing(PortNum port, ReconfigMsg::Kind kind,
                                    std::uint32_t seq) {
  outgoing_.erase(
      std::remove_if(outgoing_.begin(), outgoing_.end(),
                     [&](const Outgoing& o) {
                       if (o.port != port || o.msg.kind != kind) {
                         return false;
                       }
                       std::uint32_t sent_seq =
                           kind == ReconfigMsg::Kind::kPosition
                               ? o.msg.pos_seq
                               : o.msg.payload_seq;
                       return sent_seq == seq;
                     }),
      outgoing_.end());
  if (outgoing_.empty()) {
    retransmit_task_.Stop();
  }
}

void ReconfigEngine::Retransmit() {
  if (outgoing_.empty()) {
    retransmit_task_.Stop();
    return;
  }
  for (const Outgoing& o : outgoing_) {
    m_retransmissions_->Increment();
    m_messages_sent_->Increment();
    callbacks_.send(o.port, o.msg);
  }
}

void ReconfigEngine::ReevaluatePosition() {
  // Best position under the (root, level, parent uid, parent port) order.
  Uid best_root = self_uid_;
  int best_level = 0;
  Uid best_parent;
  PortNum best_port = -1;
  for (PortNum p : participants_) {
    const PortState& ps = ports_[p];
    if (!ps.have_their_pos) {
      continue;
    }
    Uid cand_root = ps.their_root;
    int cand_level = ps.their_level + 1;
    Uid cand_parent = ps.their_uid;
    bool better = false;
    if (cand_root != best_root) {
      better = cand_root < best_root;
    } else if (cand_level != best_level) {
      better = cand_level < best_level;
    } else if (cand_parent != best_parent) {
      better = cand_parent < best_parent;
    } else {
      better = p < best_port;
    }
    if (better) {
      best_root = cand_root;
      best_level = cand_level;
      best_parent = cand_parent;
      best_port = p;
    }
  }
  if (best_root == pos_root_ && best_level == pos_level_ &&
      best_parent == parent_uid_ && best_port == parent_port_) {
    return;  // unchanged
  }
  pos_root_ = best_root;
  pos_level_ = best_level;
  parent_uid_ = best_parent;
  parent_port_ = best_port;
  ++pos_seq_;
  log_->Logf(sim_->now(), "reconfig: position root=%llx level=%d parent-port=%d",
             static_cast<unsigned long long>(pos_root_.value()), pos_level_,
             parent_port_);
  if (flight_->armed()) {
    obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kPositionChange);
    ev.a = static_cast<std::uint64_t>(pos_level_);
    ev.port = static_cast<std::int16_t>(parent_port_);
    ev.origin = pos_root_;
    flight_->Record(ev);
  }
  // Everyone must re-ack the new position, and old child claims are void.
  for (PortNum p : participants_) {
    PortState& ps = ports_[p];
    ps.acked_my_pos = false;
    ps.claims_me = false;
    ps.have_report = false;
    ps.report.clear();
    SendPositionTo(p);
    // Re-ack their position with the updated is_parent bit so an ex-parent
    // learns it lost this child.
    if (ps.have_their_pos) {
      SendAckTo(p, ps.their_seq);
    }
  }
  last_report_fingerprint_ = 0;
}

void ReconfigEngine::OnMessage(PortNum inport, const ReconfigMsg& msg) {
  if (msg.epoch < epoch_) {
    if (epoch_ - msg.epoch > kMaxEpochJump) {
      // The sender is implausibly far behind — which convicts *our* epoch
      // register: the stale distance can only exceed kMaxEpochJump when
      // epoch_ itself does, and no healthy network reaches 2^32 epochs
      // (see kMaxEpochJump).  A runaway register would otherwise freeze
      // this switch out forever: every neighbor message looks ancient
      // here, every message we send looks implausibly far ahead there and
      // is dropped.  After a few independent sightings — enough to rule
      // out a single damaged incoming field — rejoin just above the
      // neighbors' epoch (Dolev-style self-stabilization: the register is
      // repaired from the ambient protocol traffic).
      if (++implausibly_stale_ >= kStaleResyncThreshold) {
        if (m_epoch_resyncs_ == nullptr) {
          m_epoch_resyncs_ = sim_->metrics().GetCounter(
              "switch." + log_->node_name() + ".reconfig.epoch_resyncs");
        }
        m_epoch_resyncs_->Increment();
        log_->Logf(sim_->now(),
                   "reconfig: epoch register %llu implausibly ahead of "
                   "neighbors (%llu); resyncing",
                   static_cast<unsigned long long>(epoch_),
                   static_cast<unsigned long long>(msg.epoch));
        if (flight_->armed()) {
          obs::FlightEvent ev =
              FlightBase(obs::FlightEventKind::kEpochResync);
          ev.a = msg.epoch;
          ev.port = static_cast<std::int16_t>(inport);
          ev.origin = msg.sender_uid;
          flight_->Record(ev);
        }
        JoinEpoch(msg.epoch + 1, "epoch register resync", inport,
                  msg.sender_uid);
      }
      return;
    }
    // Ordinarily stale: ignore (section 6.6.2).  One repair: a position
    // from a participant arriving while this switch is fully quiescent
    // means the sender is stuck in an older epoch yet believes the link is
    // usable — a diverged laggard (e.g. a corrupted-then-resynced register
    // landed it below us).  Re-sending our position educates it into the
    // current epoch; live waves never take this path because the protocol
    // here is still in progress while peers are behind.
    if (!in_progress_ && outgoing_.empty() &&
        msg.kind == ReconfigMsg::Kind::kPosition &&
        ports_[inport].participant) {
      SendPositionTo(inport);
    }
    return;
  }
  implausibly_stale_ = 0;
  if (msg.epoch > epoch_) {
    std::uint64_t jump = msg.epoch - epoch_;
    if (jump > kMaxEpochJump) {
      // Legitimate epochs advance by small increments from a network that
      // booted at zero; a jump this large can only be corruption that beat
      // the CRC.  Joining it would poison the whole network with a counter
      // parked near its ceiling (and the next wrap would break the
      // stale-epoch rule), so drop the message instead — retransmission
      // repairs the conversation at the real epoch.
      log_->Logf(sim_->now(),
                 "reconfig: ignored implausible epoch %llu (current %llu)",
                 static_cast<unsigned long long>(msg.epoch),
                 static_cast<unsigned long long>(epoch_));
      if (flight_->armed()) {
        obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kEpochRejected);
        ev.epoch = msg.epoch;
        ev.port = static_cast<std::int16_t>(inport);
        ev.origin = msg.sender_uid;
        flight_->Record(ev);
      }
      return;
    }
    if (jump > kEpochConfirmJump) {
      bool confirmed = false;
      for (std::uint64_t& slot : suspect_epochs_) {
        if (slot != 0 && slot == msg.epoch) {
          slot = 0;
          confirmed = true;
        }
      }
      if (!confirmed) {
        // Beyond anything a live neighbor's protocol produces: hold it
        // until a second sighting of the same value (see
        // kEpochConfirmJump).  A genuine sender's reliable retransmission
        // confirms it; a one-off damaged field never matches and the epoch
        // space stays unburnt.
        suspect_epochs_[suspect_next_] = msg.epoch;
        suspect_next_ = (suspect_next_ + 1) % suspect_epochs_.size();
        if (m_suspect_held_ == nullptr) {
          m_suspect_held_ = sim_->metrics().GetCounter(
              "switch." + log_->node_name() + ".reconfig.suspect_epochs_held");
        }
        m_suspect_held_->Increment();
        log_->Logf(sim_->now(),
                   "reconfig: holding suspect epoch %llu (current %llu) for "
                   "confirmation",
                   static_cast<unsigned long long>(msg.epoch),
                   static_cast<unsigned long long>(epoch_));
        if (flight_->armed()) {
          obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kEpochHeld);
          ev.epoch = msg.epoch;
          ev.port = static_cast<std::int16_t>(inport);
          ev.origin = msg.sender_uid;
          flight_->Record(ev);
        }
        return;
      }
    }
    JoinEpoch(msg.epoch,
              jump > kEpochConfirmJump ? "suspect epoch confirmed"
                                       : "higher epoch seen",
              inport, msg.sender_uid);
  }
  PortState& ps = ports_[inport];
  if (!ps.participant) {
    // The link was not usable when this epoch started here; the port state
    // change will trigger a fresh epoch shortly.
    return;
  }
  switch (msg.kind) {
    case ReconfigMsg::Kind::kPosition: {
      bool new_seq = !ps.have_their_pos || ps.their_seq != msg.pos_seq;
      ps.have_their_pos = true;
      ps.their_root = msg.root_uid;
      ps.their_level = msg.level;
      ps.their_seq = msg.pos_seq;
      ps.their_uid = msg.sender_uid;
      if (new_seq) {
        if (config_applied_) {
          // The tree moved after we configured: something raced.  Start
          // over rather than trusting a stale configuration.
          Trigger("position change after configuration");
          return;
        }
        // Their subtree is in flux; any report they sent is void.
        ps.have_report = false;
        ps.report.clear();
      }
      ReevaluatePosition();
      SendAckTo(inport, msg.pos_seq);
      CheckStability();
      break;
    }
    case ReconfigMsg::Kind::kPosAck: {
      if (msg.ack_seq != pos_seq_) {
        break;  // ack of an obsolete position
      }
      ps.acked_my_pos = true;
      RemoveOutgoing(inport, ReconfigMsg::Kind::kPosition, msg.ack_seq);
      bool was_child = ps.claims_me;
      ps.claims_me = msg.is_parent;
      if (was_child && !ps.claims_me) {
        ps.have_report = false;
        ps.report.clear();
      }
      CheckStability();
      break;
    }
    case ReconfigMsg::Kind::kReport: {
      // Always ack (the ack may have been lost).
      ReconfigMsg ack;
      ack.kind = ReconfigMsg::Kind::kReportAck;
      ack.epoch = epoch_;
      ack.sender_uid = self_uid_;
      ack.payload_seq = msg.payload_seq;
      m_messages_sent_->Increment();
      callbacks_.send(inport, ack);

      if (flight_->armed()) {
        obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kReportRecv);
        ev.a = msg.records.size();
        ev.port = static_cast<std::int16_t>(inport);
        ev.origin = msg.sender_uid;
        flight_->Record(ev);
      }
      std::uint64_t fp = Fingerprint(msg.records);
      bool changed = !ps.have_report || Fingerprint(ps.report) != fp;
      ps.claims_me = true;
      ps.have_report = true;
      ps.report = msg.records;
      if (config_applied_ && changed) {
        Trigger("report change after configuration");
        return;
      }
      if (changed) {
        // Our subtree description changed: if we already reported upward,
        // the fingerprint check in CheckStability will re-report.
        CheckStability();
      }
      break;
    }
    case ReconfigMsg::Kind::kReportAck:
      RemoveOutgoing(inport, ReconfigMsg::Kind::kReport, msg.payload_seq);
      break;
    case ReconfigMsg::Kind::kConfig: {
      ReconfigMsg ack;
      ack.kind = ReconfigMsg::Kind::kConfigAck;
      ack.epoch = epoch_;
      ack.sender_uid = self_uid_;
      ack.payload_seq = msg.payload_seq;
      m_messages_sent_->Increment();
      callbacks_.send(inport, ack);
      if (!config_applied_) {
        if (flight_->armed()) {
          obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kConfigRecv);
          ev.a = msg.records.size();
          ev.port = static_cast<std::int16_t>(inport);
          ev.origin = msg.sender_uid;
          flight_->Record(ev);
        }
        Distribute(msg.records, inport);
      }
      break;
    }
    case ReconfigMsg::Kind::kConfigAck:
      RemoveOutgoing(inport, ReconfigMsg::Kind::kConfig, msg.payload_seq);
      RemoveOutgoing(inport, ReconfigMsg::Kind::kDelta, msg.payload_seq);
      RemoveOutgoing(inport, ReconfigMsg::Kind::kMinorConfig, msg.payload_seq);
      break;
    case ReconfigMsg::Kind::kDelta: {
      // Ack, then relay toward the root (or apply if we are the root).
      ReconfigMsg ack;
      ack.kind = ReconfigMsg::Kind::kConfigAck;
      ack.epoch = epoch_;
      ack.sender_uid = self_uid_;
      ack.payload_seq = msg.payload_seq;
      m_messages_sent_->Increment();
      callbacks_.send(inport, ack);
      if (!config_applied_ || !applied_topo_.has_value()) {
        break;  // a full reconfiguration is already underway
      }
      LinkDelta delta{msg.delta_add, msg.delta_a_uid, msg.delta_a_port,
                      msg.delta_b_uid, msg.delta_b_port};
      if (pos_root_ == self_uid_) {
        ApplyDeltaAsRoot(delta);
      } else {
        m_deltas_relayed_->Increment();
        ReconfigMsg relay = msg;
        relay.sender_uid = self_uid_;
        relay.payload_seq = ++payload_seq_;
        SendReliable(parent_port_, std::move(relay));
      }
      break;
    }
    case ReconfigMsg::Kind::kMinorConfig:
      ApplyMinorConfig(msg, inport);
      break;
  }
}

void ReconfigEngine::OnLinkStateChange(PortNum port, bool up,
                                       Uid neighbor_uid,
                                       PortNum neighbor_port,
                                       const char* reason) {
  if (flight_->armed()) {
    obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kLinkChange);
    ev.a = up ? 1 : 0;
    ev.port = static_cast<std::int16_t>(port);
    ev.origin = neighbor_uid;
    ev.detail = reason;
    flight_->Record(ev);
  }
  if (!config_->enable_local_reconfig || !config_applied_ ||
      !applied_topo_.has_value()) {
    Trigger(reason);
    return;
  }
  LinkDelta delta{up, self_uid_, port, neighbor_uid, neighbor_port};
  if (!DeltaIsLocalizable(delta)) {
    m_local_fallbacks_->Increment();
    Trigger(reason);
    return;
  }
  m_deltas_originated_->Increment();
  log_->Logf(sim_->now(), "reconfig: local delta (%s link at port %d: %s)",
             up ? "add" : "remove", port, reason);
  SendDeltaTowardRoot(delta);
}

bool ReconfigEngine::DeltaIsLocalizable(const LinkDelta& delta) const {
  const NetTopology& topo = *applied_topo_;
  int a = topo.IndexOf(delta.a_uid);
  int b = topo.IndexOf(delta.b_uid);
  if (a < 0 || b < 0 || a == b) {
    return false;  // a new or looped switch always needs a full epoch
  }
  SpanningTree tree = ComputeSpanningTree(topo);
  bool exists = false;
  for (const TopoLink& link : topo.switches[a].links) {
    if (link.local_port == delta.a_port) {
      exists = link.remote_switch == b && link.remote_port == delta.b_port;
      if (!exists) {
        return false;  // the port is recorded cabled elsewhere: inconsistent
      }
    }
  }
  if (delta.add) {
    if (exists) {
      return true;  // already present: idempotent
    }
    // A new link is tree-neutral iff it cannot shorten any BFS level:
    // |level(a) - level(b)| <= 1.  (Equal-or-adjacent levels cannot create
    // a better parent with a smaller UID either only if the candidate
    // parent comparison stays unchanged; to stay conservative, also require
    // that the downhill end's parent choice is not displaced.)
    int la = tree.level[a];
    int lb = tree.level[b];
    if (la > lb) {
      std::swap(la, lb);
      // note: b is now conceptually the lower (deeper or equal) end
    }
    if (lb - la > 1) {
      return false;
    }
    // Parent displacement check: the deeper end must keep its parent.
    int deep = tree.level[a] >= tree.level[b] ? a : b;
    int high = deep == a ? b : a;
    if (tree.level[deep] == tree.level[high] + 1 &&
        topo.switches[high].uid < topo.switches[tree.parent[deep]].uid) {
      return false;  // the new link would become deep's parent link
    }
    return true;
  }
  // Removal: only a *non-tree* link is localizable.
  if (!exists) {
    return true;  // already gone: idempotent
  }
  for (const TopoLink& link : topo.switches[a].links) {
    if (link.local_port == delta.a_port) {
      return !tree.IsTreeLink(topo, a, link);
    }
  }
  return false;
}

void ReconfigEngine::SendDeltaTowardRoot(const LinkDelta& delta) {
  ReconfigMsg msg;
  msg.kind = ReconfigMsg::Kind::kDelta;
  msg.epoch = epoch_;
  msg.sender_uid = self_uid_;
  msg.payload_seq = ++payload_seq_;
  msg.delta_add = delta.add;
  msg.delta_a_uid = delta.a_uid;
  msg.delta_a_port = static_cast<std::uint8_t>(delta.a_port);
  msg.delta_b_uid = delta.b_uid;
  msg.delta_b_port = static_cast<std::uint8_t>(delta.b_port);
  if (pos_root_ == self_uid_) {
    ApplyDeltaAsRoot(delta);
    return;
  }
  SendReliable(parent_port_, std::move(msg));
}

void ReconfigEngine::ApplyDeltaAsRoot(const LinkDelta& delta) {
  NetTopology topo = *applied_topo_;
  int a = topo.IndexOf(delta.a_uid);
  int b = topo.IndexOf(delta.b_uid);
  if (a < 0 || b < 0) {
    Trigger("delta names unknown switch");
    return;
  }
  bool changed = false;
  if (delta.add) {
    bool present = false;
    for (const TopoLink& link : topo.switches[a].links) {
      present |= link.local_port == delta.a_port;
    }
    if (!present) {
      topo.switches[a].links.push_back(
          {delta.a_port, b, delta.b_port});
      topo.switches[b].links.push_back(
          {delta.b_port, a, delta.a_port});
      changed = true;
    }
  } else {
    auto& la = topo.switches[a].links;
    auto before = la.size();
    la.erase(std::remove_if(la.begin(), la.end(),
                            [&](const TopoLink& l) {
                              return l.local_port == delta.a_port;
                            }),
             la.end());
    auto& lb = topo.switches[b].links;
    lb.erase(std::remove_if(lb.begin(), lb.end(),
                            [&](const TopoLink& l) {
                              return l.local_port == delta.b_port;
                            }),
             lb.end());
    changed = la.size() != before;
  }
  if (!changed) {
    return;  // duplicate delta from the other end: already applied
  }
  if (!topo.Validate().empty()) {
    Trigger("delta produced invalid topology");
    return;
  }
  applied_topo_ = topo;
  ++applied_version_;
  log_->Logf(sim_->now(), "reconfig: minor config v%u (%s link)",
             applied_version_, delta.add ? "added" : "removed");

  // Redistribute down the standing tree and apply locally.
  ReconfigMsg msg;
  msg.kind = ReconfigMsg::Kind::kMinorConfig;
  msg.epoch = epoch_;
  msg.sender_uid = self_uid_;
  msg.config_version = applied_version_;
  msg.records = TopologyToRecords(topo);
  for (PortNum p : participants_) {
    if (ports_[p].claims_me) {
      ReconfigMsg copy = msg;
      copy.payload_seq = ++payload_seq_;
      SendReliable(p, std::move(copy));
    }
  }
  m_local_updates_applied_->Increment();
  int self_index = topo.IndexOf(self_uid_);
  callbacks_.apply_config(topo, self_index, epoch_);
}

void ReconfigEngine::ApplyMinorConfig(const ReconfigMsg& msg, PortNum from) {
  ReconfigMsg ack;
  ack.kind = ReconfigMsg::Kind::kConfigAck;
  ack.epoch = epoch_;
  ack.sender_uid = self_uid_;
  ack.payload_seq = msg.payload_seq;
  m_messages_sent_->Increment();
  callbacks_.send(from, ack);

  if (!config_applied_ || msg.config_version <= applied_version_) {
    return;  // stale or superseded
  }
  NetTopology topo = RecordsToTopology(msg.records);
  int self_index = topo.IndexOf(self_uid_);
  if (self_index < 0) {
    Trigger("minor config omits this switch");
    return;
  }
  applied_topo_ = topo;
  applied_version_ = msg.config_version;
  m_local_updates_applied_->Increment();
  log_->Logf(sim_->now(), "reconfig: minor config v%u applied",
             applied_version_);
  // Forward down the standing tree.
  for (PortNum p : participants_) {
    if (p != from && ports_[p].claims_me) {
      ReconfigMsg copy = msg;
      copy.sender_uid = self_uid_;
      copy.payload_seq = ++payload_seq_;
      SendReliable(p, std::move(copy));
    }
  }
  callbacks_.apply_config(topo, self_index, epoch_);
}

void ReconfigEngine::CheckStability() {
  if (config_applied_ || !in_progress_) {
    return;
  }
  for (PortNum p : participants_) {
    const PortState& ps = ports_[p];
    if (!ps.acked_my_pos) {
      return;
    }
    if (ps.claims_me && !ps.have_report) {
      return;
    }
  }
  // Stable.
  if (pos_root_ == self_uid_) {
    Terminate();
    return;
  }
  // Report the stable subtree to the parent, unless the identical report
  // has already been sent for this position.
  std::vector<SwitchRecord> records = BuildSubtreeRecords();
  std::uint64_t fp = Fingerprint(records) ^ (std::uint64_t{pos_seq_} << 32);
  if (fp == last_report_fingerprint_) {
    return;
  }
  last_report_fingerprint_ = fp;
  ReconfigMsg msg;
  msg.kind = ReconfigMsg::Kind::kReport;
  msg.epoch = epoch_;
  msg.sender_uid = self_uid_;
  msg.payload_seq = ++payload_seq_;
  msg.records = std::move(records);
  log_->Logf(sim_->now(), "reconfig: stable, reporting %zu switches to port %d",
             msg.records.size(), parent_port_);
  if (flight_->armed()) {
    obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kReportSend);
    ev.a = msg.records.size();
    ev.port = static_cast<std::int16_t>(parent_port_);
    ev.origin = parent_uid_;
    flight_->Record(ev);
  }
  SendReliable(parent_port_, std::move(msg));
  // The tree phase is over for this switch: it now waits for the root's
  // configuration (a changed subtree reopens the phase via re-report).
  BeginPhaseSpan("await-config");
}

std::vector<SwitchRecord> ReconfigEngine::BuildSubtreeRecords() const {
  std::vector<SwitchRecord> records;
  SwitchRecord self;
  self.uid = self_uid_;
  self.proposed_num = proposed_num_;
  self.host_ports = callbacks_.host_ports().bits();
  for (PortNum p : participants_) {
    const PortState& ps = ports_[p];
    self.links.push_back(SwitchRecord::LinkRec{
        static_cast<std::uint8_t>(p), ps.neighbor_uid,
        static_cast<std::uint8_t>(ps.neighbor_port)});
  }
  records.push_back(std::move(self));
  for (PortNum p : participants_) {
    const PortState& ps = ports_[p];
    if (ps.claims_me && ps.have_report) {
      records.insert(records.end(), ps.report.begin(), ps.report.end());
    }
  }
  return records;
}

std::uint64_t ReconfigEngine::Fingerprint(
    const std::vector<SwitchRecord>& records) const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  for (const SwitchRecord& rec : records) {
    mix(rec.uid.value());
    mix(rec.proposed_num);
    mix(rec.host_ports);
    for (const SwitchRecord::LinkRec& link : rec.links) {
      mix(link.local_port);
      mix(link.remote_uid.value());
      mix(link.remote_port);
    }
  }
  return h;
}

void ReconfigEngine::Terminate() {
  m_roots_terminated_->Increment();
  last_termination_time_ = sim_->now();
  BeginPhaseSpan("distribute");
  std::vector<SwitchRecord> records = BuildSubtreeRecords();
  NetTopology topo = RecordsToTopology(records);
  AssignSwitchNumbers(&topo);
  log_->Logf(sim_->now(),
             "reconfig: root terminated epoch %llu with %d switches",
             static_cast<unsigned long long>(epoch_), topo.size());
  if (flight_->armed()) {
    obs::FlightEvent ev = FlightBase(obs::FlightEventKind::kTermination);
    ev.a = static_cast<std::uint64_t>(topo.size());
    flight_->Record(ev);
  }
  Distribute(TopologyToRecords(topo), /*from=*/-1);
}

void ReconfigEngine::Distribute(const std::vector<SwitchRecord>& records,
                                PortNum from) {
  NetTopology topo = RecordsToTopology(records);
  int self_index = topo.IndexOf(self_uid_);
  if (self_index < 0) {
    log_->Logf(sim_->now(), "reconfig: config omits this switch; retrigger");
    Trigger("config omitted self");
    return;
  }
  config_applied_ = true;
  in_progress_ = false;
  proposed_num_ = topo.switches[self_index].assigned_num;
  applied_topo_ = topo;
  applied_version_ = 0;

  // Step 4 continued: hand the configuration down the tree.
  std::uint32_t seq = ++payload_seq_;
  for (PortNum p : participants_) {
    const PortState& ps = ports_[p];
    if (p == from || !ps.claims_me) {
      continue;
    }
    ReconfigMsg msg;
    msg.kind = ReconfigMsg::Kind::kConfig;
    msg.epoch = epoch_;
    msg.sender_uid = self_uid_;
    msg.payload_seq = seq;
    msg.records = records;
    SendReliable(p, std::move(msg));
  }

  // Step 5: compute and load the local forwarding table.
  m_completions_->Increment();
  last_config_time_ = sim_->now();
  if (last_join_time_ >= 0) {
    m_epoch_ms_->Add(static_cast<double>(sim_->now() - last_join_time_) /
                     1e6);
  }
  EndSpans();
  callbacks_.apply_config(topo, self_index, epoch_);
}

}  // namespace autonet
