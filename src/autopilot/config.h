// Tuning knobs for Autopilot, the switch control program.  The paper's
// reconfiguration time evolved from ~5 s (first, easy-to-debug
// implementation) through ~0.5 s (tuned) to ~0.17 s (later work) purely by
// software tuning on a fixed algorithm (section 6.6.5).  The presets model
// those three generations as per-operation control-processor costs and
// protocol timer settings; bench E1 reproduces the evolution with them.
#ifndef SRC_AUTOPILOT_CONFIG_H_
#define SRC_AUTOPILOT_CONFIG_H_

#include "src/common/time.h"

namespace autonet {

struct AutopilotConfig {
  // --- monitoring task periods ---
  Tick status_sample_period = 5 * kMillisecond;
  // Probe cadence for ports whose neighbor is unknown vs. verification of
  // known-good ports (section 6.5.4: "continuously probes all ports in the
  // three s.switch states").
  Tick probe_period_unknown = 25 * kMillisecond;
  Tick probe_period_good = 200 * kMillisecond;
  Tick probe_timeout = 60 * kMillisecond;
  int probe_misses_to_fail = 3;

  // --- skeptics (section 6.5.5) ---
  // Status skeptic: error-free period required before s.dead -> s.checking;
  // doubles on each relapse up to the max, shrinks after good service.
  Tick status_holddown_base = 20 * kMillisecond;
  Tick status_holddown_max = 60 * kSecond;
  // Connectivity skeptic: period of good probe responses required before
  // s.switch.who -> s.switch.good.
  Tick conn_holddown_base = 25 * kMillisecond;
  Tick conn_holddown_max = 60 * kSecond;
  // Clean service for this long earns one holddown level back.
  Tick skeptic_forgiveness = 10 * kSecond;

  // Consecutive stop-only or no-progress sampling intervals before a port
  // is declared dead (removal of long-term blockages, section 6.5.3).
  int blocked_intervals_to_dead = 40;

  // --- reconfiguration protocol ---
  Tick retransmit_period = 100 * kMillisecond;
  Tick boot_reconfig_delay = 50 * kMillisecond;
  // Section 7 future work, implemented here: when a *non-tree* link is
  // added or removed and the spanning tree is unaffected, route a topology
  // delta to the root and redistribute the configuration down the standing
  // tree instead of running the full five-step reconfiguration.  Any
  // condition the local path cannot prove safe falls back to a full
  // reconfiguration.
  bool enable_local_reconfig = false;

  // --- control-processor cost model ---
  // The 12.5 MHz 68000 handles one thing at a time; each operation occupies
  // the CPU for the given duration and later work queues behind it.
  Tick cost_packet_process = 1 * kMillisecond;   // receive+handle one packet
  Tick cost_packet_send = 200 * kMicrosecond;    // build+enqueue one packet
  Tick cost_table_compute = 100 * kMillisecond;  // route computation (step 5)
  Tick cost_table_load = 20 * kMillisecond;      // writing the 64 KB table

  // The three implementation generations of section 6.6.5.
  static AutopilotConfig Initial();  // first, easy-to-debug implementation
  static AutopilotConfig Tuned();    // the ~0.5 s version (default)
  static AutopilotConfig Fast();     // the later ~0.17 s version
};

}  // namespace autonet

#endif  // SRC_AUTOPILOT_CONFIG_H_
