// The distributed reconfiguration engine (sections 4.1, 6.6): an extension
// of Perlman's spanning-tree algorithm with *termination detection*.
//
// Protocol outline, per epoch:
//   1. On a trigger the switch increments its epoch, reloads the one-hop
//      forwarding table (destroying all packets in the switch — the
//      prototype's reset-coupled reload), assumes it is the root, and sends
//      tree-position packets to every s.switch.good neighbor, reliably.
//   2. Positions improve monotonically under the ordering (root UID, level,
//      parent UID, parent port).  Acks carry the "this is now my parent
//      link" bit, so each switch knows its children.
//   3. A switch is *stable* when every neighbor has acked its current
//      position and every claiming child has delivered a topology report.
//      A stable non-root sends its parent a report containing the stable
//      subtree; a stable self-believed root has detected termination: it
//      knows the whole topology.
//   4. The root assigns switch numbers (honoring previous-epoch proposals)
//      and distributes the configuration down the tree; every switch
//      computes and loads its up*/down* forwarding table from it.
//
// Epochs (section 6.6.2): messages of an older epoch are ignored; a newer
// epoch resets the switch into that epoch.  Any change in the usable link
// set during an epoch triggers epoch+1, so each epoch operates on a frozen
// link set.  As a safety net, protocol traffic that contradicts an applied
// configuration (a fresh position or report after step 4) triggers a new
// epoch rather than being patched in place.
#ifndef SRC_AUTOPILOT_RECONFIG_H_
#define SRC_AUTOPILOT_RECONFIG_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/autopilot/config.h"
#include "src/autopilot/messages.h"
#include "src/common/event_log.h"
#include "src/common/ids.h"
#include "src/obs/flight.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/routing/topology.h"
#include "src/sim/timer.h"

namespace autonet {

class ReconfigEngine {
 public:
  // Largest believable forward epoch jump in a received message.  A network
  // reconfiguring every 100 ms for a decade stays under 2^32 epochs, while
  // a corrupted epoch field that slipped past the CRC is uniform over 64
  // bits — beyond this distance the message is dropped as damaged rather
  // than joined (see OnMessage).
  static constexpr std::uint64_t kMaxEpochJump = std::uint64_t{1} << 32;

  // Forward jumps of exactly one epoch — the only advance a neighbor's live
  // protocol produces — are believed immediately.  Any larger jump below
  // kMaxEpochJump is *plausible* (a boot storm burning several epochs, a
  // restarted switch rejoining after the network advanced while it was
  // down) but is also exactly what a damaged epoch field that slipped past
  // the CRC looks like, so it is held until the same value is seen a second
  // time: the sender's reliable retransmission confirms a genuine message
  // within one retransmit period, while independent corruption essentially
  // never reproduces the same 64-bit value.  Held values sit in a small
  // ring (suspect_epochs_) so interleaved distinct suspects cannot evict
  // each other indefinitely.  Net effect: no single damaged field can move
  // the epoch register at all, at worst one retransmit period of added
  // latency on a genuine multi-epoch jump.
  static constexpr std::uint64_t kEpochConfirmJump = 1;

  struct Callbacks {
    // Queue a reconfiguration message out the given port (the caller
    // applies control-processor send costs).
    std::function<void(PortNum, const ReconfigMsg&)> send;
    // Current set of s.switch.good ports, frozen per epoch at join time.
    std::function<std::vector<PortNum>()> good_ports;
    // Neighbor identity learned by the connectivity monitor.
    std::function<Uid(PortNum)> neighbor_uid;
    std::function<PortNum(PortNum)> neighbor_port;
    // Ports currently classified s.host (for the topology record).
    std::function<PortVector()> host_ports;
    // Step 1: load the one-hop-only forwarding table.
    std::function<void()> load_one_hop_table;
    // Step 5: a configuration arrived (or was produced locally at the
    // root): compute and load the forwarding table.
    std::function<void(const NetTopology&, int self_index,
                       std::uint64_t epoch)>
        apply_config;
  };

  // Snapshot of the engine's registry counters plus the raw sim-time
  // marks, assembled on demand.  The live counters are the
  // `switch.<name>.reconfig.*` instruments in the simulator's metric
  // registry — visible to JSON snapshots and the SRP GetStats query.
  struct Stats {
    std::uint64_t epochs_joined = 0;
    std::uint64_t triggers = 0;
    std::uint64_t completions = 0;   // configs applied
    std::uint64_t roots_terminated = 0;  // times this switch was the root
    std::uint64_t local_updates_applied = 0;   // minor configs applied
    std::uint64_t deltas_originated = 0;
    std::uint64_t deltas_relayed = 0;
    std::uint64_t local_fallbacks = 0;  // delta path refused; full reconfig
    std::uint64_t messages_sent = 0;
    std::uint64_t retransmissions = 0;
    Tick last_join_time = -1;
    Tick last_config_time = -1;
    Tick last_termination_time = -1;  // when this switch, as root, knew
  };

  ReconfigEngine(Simulator* sim, Uid self_uid, const AutopilotConfig* config,
                 EventLog* log, Callbacks callbacks);

  // A relevant port state change was noticed: start a new epoch.
  void Trigger(const char* reason);
  // A switch-to-switch link became usable (up) or unusable (down) at the
  // named port.  With local reconfiguration enabled this applies the
  // change as a topology delta when it provably leaves the spanning tree
  // intact; otherwise (and by default) it triggers a full reconfiguration.
  void OnLinkStateChange(PortNum port, bool up, Uid neighbor_uid,
                         PortNum neighbor_port, const char* reason);
  void OnMessage(PortNum inport, const ReconfigMsg& msg);

  bool in_progress() const { return in_progress_; }
  std::uint64_t epoch() const { return epoch_; }
  // Reliable messages awaiting acknowledgment (0 when the protocol is
  // quiescent).
  std::size_t outstanding_count() const { return outgoing_.size(); }
  // Stops retransmission (switch power-off).
  void Shutdown();
  SwitchNum proposed_num() const { return proposed_num_; }
  void set_proposed_num(SwitchNum num) { proposed_num_ = num; }
  Stats stats() const;

  // This switch's tree position in the current epoch (for tests).
  Uid position_root() const { return pos_root_; }
  int position_level() const { return pos_level_; }
  PortNum parent_port() const { return parent_port_; }

  // Fault-injection surface (see src/adversary/): overwrites the raw epoch
  // register the way a memory fault would, with no protocol action.
  // Recovery is OnMessage's plausibility machinery: a register driven
  // beyond its neighbors resyncs after kStaleResyncThreshold implausibly
  // stale arrivals, one driven behind rejoins via the suspect-epoch
  // confirmation path.
  void CorruptEpochRegister(std::uint64_t value) { epoch_ = value; }

 private:
  struct PortState {
    bool participant = false;
    Uid neighbor_uid;
    PortNum neighbor_port = -1;
    // Their last position.
    bool have_their_pos = false;
    Uid their_root;
    std::uint16_t their_level = 0;
    std::uint32_t their_seq = 0;
    Uid their_uid;
    // Protocol state toward them.
    bool acked_my_pos = false;
    bool claims_me = false;
    bool have_report = false;
    std::vector<SwitchRecord> report;
  };

  struct Outgoing {
    PortNum port;
    ReconfigMsg msg;
  };

  // `inport`/`origin` tag the causal source of the join for the flight
  // recorder: the port and sender UID of the message that carried the
  // higher epoch, or (-1, nil) for a locally triggered epoch.
  void JoinEpoch(std::uint64_t epoch, const char* reason, PortNum inport = -1,
                 Uid origin = Uid());
  // A flight event pre-stamped with the current time and epoch.
  obs::FlightEvent FlightBase(obs::FlightEventKind kind) const;
  // Trace-span phase transitions on this engine's `<name>.reconfig` track:
  // an outer "epoch <N>" span with one inner phase span at a time ("tree",
  // then "await-config" or "distribute").
  void BeginPhaseSpan(const char* phase);
  void EndSpans();
  void ReevaluatePosition();
  void SendPositionTo(PortNum port);
  void SendAckTo(PortNum port, std::uint32_t their_seq);
  void SendReliable(PortNum port, ReconfigMsg msg);
  void RemoveOutgoing(PortNum port, ReconfigMsg::Kind kind, std::uint32_t seq);
  void Retransmit();
  void CheckStability();
  std::vector<SwitchRecord> BuildSubtreeRecords() const;
  void Terminate();
  void Distribute(const std::vector<SwitchRecord>& records, PortNum from);
  std::uint64_t Fingerprint(const std::vector<SwitchRecord>& records) const;

  // --- local reconfiguration ---
  struct LinkDelta {
    bool add;
    Uid a_uid;
    PortNum a_port;
    Uid b_uid;
    PortNum b_port;
  };
  // True if the delta provably leaves the deterministic spanning tree of
  // the applied topology unchanged (non-tree link, level-compatible).
  bool DeltaIsLocalizable(const LinkDelta& delta) const;
  void SendDeltaTowardRoot(const LinkDelta& delta);
  // At the root: mutate the applied topology and redistribute.
  void ApplyDeltaAsRoot(const LinkDelta& delta);
  void ApplyMinorConfig(const ReconfigMsg& msg, PortNum from);

  Simulator* sim_;
  Uid self_uid_;
  const AutopilotConfig* config_;
  EventLog* log_;
  Callbacks callbacks_;

  std::uint64_t epoch_ = 0;
  bool in_progress_ = false;
  bool config_applied_ = false;
  SwitchNum proposed_num_ = 1;
  // Forward jumps beyond kEpochConfirmJump awaiting their second sighting
  // (0 = empty slot), newest overwriting the oldest.  A ring rather than a
  // single register so two genuine senders retransmitting different
  // suspect epochs cannot evict each other forever.  Cleared whenever an
  // epoch is joined.
  static constexpr std::size_t kSuspectSlots = 4;
  std::array<std::uint64_t, kSuspectSlots> suspect_epochs_{};
  std::size_t suspect_next_ = 0;
  // Consecutive arrivals implausibly far below the epoch register.  The
  // stale branch can only see such a message when epoch_ itself exceeds
  // kMaxEpochJump — a value no healthy network reaches — so reaching the
  // threshold convicts the local register, not the senders, and OnMessage
  // rejoins just above the neighbors' epoch.  The threshold guards against
  // acting on a single damaged incoming field.
  static constexpr int kStaleResyncThreshold = 3;
  int implausibly_stale_ = 0;

  // Current position (self-root when pos_root_ == self_uid_).
  Uid pos_root_;
  int pos_level_ = 0;
  Uid parent_uid_;
  PortNum parent_port_ = -1;
  std::uint32_t pos_seq_ = 0;

  std::array<PortState, kPortsPerSwitch> ports_{};
  std::vector<PortNum> participants_;
  std::vector<Outgoing> outgoing_;
  PeriodicTask retransmit_task_;
  std::uint32_t payload_seq_ = 0;
  std::uint64_t last_report_fingerprint_ = 0;

  // The configuration this switch is running (set when a config or minor
  // config is applied); basis for local-reconfiguration decisions.
  std::optional<NetTopology> applied_topo_;
  std::uint32_t applied_version_ = 0;

  // Registry instruments (owned by the simulator's registry) plus the raw
  // sim-time marks that stats() folds into its snapshot.
  obs::Counter* m_epochs_joined_;
  obs::Counter* m_triggers_;
  obs::Counter* m_completions_;
  obs::Counter* m_roots_terminated_;
  obs::Counter* m_local_updates_applied_;
  obs::Counter* m_deltas_originated_;
  obs::Counter* m_deltas_relayed_;
  obs::Counter* m_local_fallbacks_;
  obs::Counter* m_messages_sent_;
  obs::Counter* m_retransmissions_;
  // Created lazily on the first held epoch so clean runs register no new
  // instrument (keeps metric snapshots — and the chaos fingerprints over
  // them — byte-identical).
  obs::Counter* m_suspect_held_ = nullptr;
  // Created lazily on the first epoch-register resync (same reasoning).
  obs::Counter* m_epoch_resyncs_ = nullptr;
  Histogram* m_epoch_ms_;  // network-wide autopilot.reconfig.epoch_ms
  obs::FlightRing* flight_;  // owned by the simulator's flight recorder
  Tick last_join_time_ = -1;
  Tick last_config_time_ = -1;
  Tick last_termination_time_ = -1;

  // Trace spans for the current epoch.
  std::string trace_track_;
  obs::TraceRecorder::SpanId epoch_span_ = 0;
  obs::TraceRecorder::SpanId phase_span_ = 0;
};

}  // namespace autonet

#endif  // SRC_AUTOPILOT_RECONFIG_H_
